//! Owned, growable point storage shared by every index backend.
//!
//! All backends hold their points in one row-major buffer so candidate
//! distances are always computed by the same [`squared_distance`] over
//! identically laid-out slices. That single code path is what makes the
//! tree backends *bit-identical* to the brute-force oracle: both sides
//! evaluate the identical floating-point expression on the identical
//! operands, so equal neighbor sets imply equal distances down to the
//! last ulp.

use crate::error::{Error, Result};
use gssl_linalg::Matrix;

/// Squared Euclidean distance between two coordinate slices.
///
/// This is deliberately the same zip/map/sum expression as
/// `gssl_graph::bandwidth::squared_distance`, so distances computed by an
/// index are bitwise equal to those computed during affinity assembly.
///
/// hot
/// complexity: O(d)
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "points must share a dimension");
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Row-major point buffer: `n` points of dimension `dim`, growable at the
/// back so out-of-sample insertion never reallocates per coordinate.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct PointStore {
    data: Vec<f64>,
    dim: usize,
}

impl PointStore {
    /// Copies a point matrix (rows are points) into owned storage.
    ///
    /// # Errors
    ///
    /// * [`Error::EmptyInput`] when the matrix has no rows or no columns.
    /// * [`Error::NonFiniteCoordinate`] when any entry is NaN/infinite.
    pub fn from_matrix(points: &Matrix) -> Result<Self> {
        if points.rows() == 0 {
            return Err(Error::EmptyInput {
                required: "at least one point",
            });
        }
        if points.cols() == 0 {
            return Err(Error::EmptyInput {
                required: "at least one coordinate per point",
            });
        }
        if let Some(position) = points.as_slice().iter().position(|v| !v.is_finite()) {
            return Err(Error::NonFiniteCoordinate { position });
        }
        Ok(PointStore {
            data: points.as_slice().to_vec(),
            dim: points.cols(),
        })
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        // `from_matrix` rejects zero-column inputs, so `dim >= 1` always.
        debug_assert!(self.dim > 0);
        self.data.len() / self.dim
    }

    /// Point dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrows point `i` as a coordinate slice.
    ///
    /// # Panics
    ///
    /// Panics when `i >= self.len()` — backends only pass ids they
    /// allocated themselves.
    ///
    /// hot
    /// complexity: O(1)
    pub fn point(&self, i: usize) -> &[f64] {
        assert!(i < self.len(), "point index {i} out of range");
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Squared distance from `query` to stored point `i`.
    ///
    /// hot
    /// complexity: O(d)
    pub fn dist2_to(&self, query: &[f64], i: usize) -> f64 {
        squared_distance(query, self.point(i))
    }

    /// Validates a query slice against the stored dimension.
    ///
    /// # Errors
    ///
    /// * [`Error::DimensionMismatch`] when `query.len() != self.dim()`.
    /// * [`Error::NonFiniteCoordinate`] when any coordinate is NaN/inf.
    pub fn check_query(&self, query: &[f64]) -> Result<()> {
        if query.len() != self.dim {
            return Err(Error::DimensionMismatch {
                expected: self.dim,
                actual: query.len(),
            });
        }
        if let Some(position) = query.iter().position(|v| !v.is_finite()) {
            return Err(Error::NonFiniteCoordinate { position });
        }
        Ok(())
    }

    /// Appends a point and returns its id (`old len`).
    ///
    /// # Errors
    ///
    /// Same as [`PointStore::check_query`].
    pub fn push(&mut self, point: &[f64]) -> Result<usize> {
        self.check_query(point)?;
        let id = self.len();
        self.data.extend_from_slice(point);
        Ok(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squared_distance_matches_hand_computation() {
        let a = [1.0, 2.0, 3.0];
        let b = [0.0, 4.0, 1.0];
        assert_eq!(squared_distance(&a, &b), 1.0 + 4.0 + 4.0);
        assert_eq!(squared_distance(&a, &a), 0.0);
    }

    #[test]
    fn store_round_trips_matrix_rows() {
        let m = Matrix::from_fn(5, 3, |i, j| (i * 10 + j) as f64);
        let store = PointStore::from_matrix(&m).unwrap();
        assert_eq!(store.len(), 5);
        assert_eq!(store.dim(), 3);
        for i in 0..5 {
            assert_eq!(store.point(i), m.row(i));
        }
    }

    #[test]
    fn store_validates_inputs() {
        assert!(matches!(
            PointStore::from_matrix(&Matrix::zeros(0, 2)),
            Err(Error::EmptyInput { .. })
        ));
        assert!(matches!(
            PointStore::from_matrix(&Matrix::zeros(2, 0)),
            Err(Error::EmptyInput { .. })
        ));
        let mut bad = Matrix::zeros(2, 2);
        bad.set(1, 0, f64::NAN);
        assert!(matches!(
            PointStore::from_matrix(&bad),
            Err(Error::NonFiniteCoordinate { position: 2 })
        ));
    }

    #[test]
    fn push_appends_and_validates() {
        let m = Matrix::from_fn(2, 2, |i, j| (i + j) as f64);
        let mut store = PointStore::from_matrix(&m).unwrap();
        assert_eq!(store.push(&[9.0, 9.0]).unwrap(), 2);
        assert_eq!(store.len(), 3);
        assert_eq!(store.point(2), &[9.0, 9.0]);
        assert!(matches!(
            store.push(&[1.0]),
            Err(Error::DimensionMismatch { .. })
        ));
        assert!(matches!(
            store.push(&[1.0, f64::INFINITY]),
            Err(Error::NonFiniteCoordinate { position: 1 })
        ));
    }
}
