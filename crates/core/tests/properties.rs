//! Property-style tests for the criteria: the paper's structural claims
//! checked on random graphs.
//!
//! Originally written against `proptest`; the workspace is now fully
//! offline and dependency-free, so each property is exercised over a
//! deterministic sweep of seeded random cases instead of a shrinking
//! strategy. Seeds are fixed, so failures are exactly reproducible.

use gssl::{
    HardCriterion, HardSolver, LabelPropagation, MeanPredictor, NadarayaWatson, Problem,
    SoftCriterion, SweepKind, TransductiveModel,
};
use gssl_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N_LABELED: usize = 3;
const N_UNLABELED: usize = 4;
const TOTAL: usize = N_LABELED + N_UNLABELED;
const CASES: u64 = 24;

/// Random symmetric affinity with strictly positive weights (connected)
/// and unit diagonal, like a Gaussian-kernel graph.
fn affinity(rng: &mut StdRng) -> Matrix {
    let mut w = Matrix::identity(TOTAL);
    for i in 0..TOTAL {
        for j in (i + 1)..TOTAL {
            let v = rng.gen_range(0.05..1.0f64);
            w.set(i, j, v);
            w.set(j, i, v);
        }
    }
    w
}

fn labels(rng: &mut StdRng) -> Vec<f64> {
    (0..N_LABELED).map(|_| rng.gen::<f64>()).collect()
}

/// Runs `body` once per seeded case.
fn for_cases(mut body: impl FnMut(&mut StdRng)) {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xC04E + seed);
        body(&mut rng);
    }
}

#[test]
fn maximum_principle() {
    for_cases(|rng| {
        let (w, y) = (affinity(rng), labels(rng));
        let p = Problem::new(w, y.clone()).unwrap();
        let scores = HardCriterion::new().fit(&p).unwrap();
        let lo = y.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = y.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for &s in scores.unlabeled() {
            assert!(
                s >= lo - 1e-9 && s <= hi + 1e-9,
                "score {s} escapes [{lo}, {hi}]"
            );
        }
    });
}

#[test]
fn harmonicity() {
    for_cases(|rng| {
        // Each unlabeled score equals the weighted average of its
        // neighbours' scores (self-loops cancel in D − W).
        let (w, y) = (affinity(rng), labels(rng));
        let p = Problem::new(w.clone(), y).unwrap();
        let scores = HardCriterion::new().fit(&p).unwrap();
        let f = scores.all();
        for a in N_LABELED..TOTAL {
            let mut mass = 0.0;
            let mut avg = 0.0;
            for j in 0..TOTAL {
                if j != a {
                    mass += w.get(a, j);
                    avg += w.get(a, j) * f[j];
                }
            }
            assert!((f[a] - avg / mass).abs() < 1e-8, "vertex {a} not harmonic");
        }
    });
}

#[test]
fn proposition_ii1_on_random_graphs() {
    for_cases(|rng| {
        let p = Problem::new(affinity(rng), labels(rng)).unwrap();
        let hard = HardCriterion::new().fit(&p).unwrap();
        let soft0 = SoftCriterion::new(0.0).unwrap().fit(&p).unwrap();
        for (h, s) in hard.all().iter().zip(soft0.all()) {
            assert!((h - s).abs() < 1e-8);
        }
    });
}

#[test]
fn soft_block_form_equals_full_system() {
    for_cases(|rng| {
        let p = Problem::new(affinity(rng), labels(rng)).unwrap();
        let lambda = rng.gen_range(0.001..10.0f64);
        let soft = SoftCriterion::new(lambda).unwrap();
        let block = soft.fit(&p).unwrap();
        let full = soft.fit_full_system(&p).unwrap();
        for (a, b) in block.all().iter().zip(full.all()) {
            assert!((a - b).abs() < 1e-7, "{a} vs {b} at lambda {lambda}");
        }
    });
}

#[test]
fn soft_solution_is_objective_optimal() {
    for_cases(|rng| {
        // The soft solution must beat both natural competitors on its own
        // objective: the hard solution and the constant-mean solution.
        let p = Problem::new(affinity(rng), labels(rng)).unwrap();
        let lambda = rng.gen_range(0.01..5.0f64);
        let soft = SoftCriterion::new(lambda).unwrap();
        let solution = soft.fit(&p).unwrap();
        let optimum = soft.objective(&p, solution.all()).unwrap();
        let hard = HardCriterion::new().fit(&p).unwrap();
        assert!(soft.objective(&p, hard.all()).unwrap() >= optimum - 1e-9);
        let mean = MeanPredictor::new().fit(&p).unwrap();
        assert!(soft.objective(&p, mean.all()).unwrap() >= optimum - 1e-9);
    });
}

#[test]
fn hard_solution_minimizes_dirichlet_energy_among_clamped() {
    for_cases(|rng| {
        // Among score vectors agreeing with Y on labeled points, the hard
        // solution minimizes the smoothness penalty (it IS the minimizer).
        let (w, y) = (affinity(rng), labels(rng));
        let p = Problem::new(w.clone(), y).unwrap();
        let scores = HardCriterion::new().fit(&p).unwrap();
        let base =
            gssl_graph::dirichlet_energy(&w, &gssl_linalg::Vector::from(scores.all())).unwrap();
        // Perturb each unlabeled coordinate.
        for a in N_LABELED..TOTAL {
            for &delta in &[0.05, -0.05] {
                let mut perturbed = scores.all().to_vec();
                perturbed[a] += delta;
                let energy = gssl_graph::dirichlet_energy(
                    &w,
                    &gssl_linalg::Vector::from(perturbed.as_slice()),
                )
                .unwrap();
                assert!(energy >= base - 1e-9);
            }
        }
    });
}

#[test]
fn all_hard_backends_agree() {
    for_cases(|rng| {
        let p = Problem::new(affinity(rng), labels(rng)).unwrap();
        let reference = HardCriterion::new().fit(&p).unwrap();
        let backends = [
            HardCriterion::new().solver(HardSolver::Lu),
            HardCriterion::new().solver(HardSolver::ConjugateGradient(Default::default())),
            HardCriterion::new().solver(HardSolver::Propagation(SweepKind::Simultaneous)),
            HardCriterion::new().solver(HardSolver::Propagation(SweepKind::InPlace)),
        ];
        for backend in backends {
            let scores = backend.fit(&p).unwrap();
            for (a, b) in reference.unlabeled().iter().zip(scores.unlabeled()) {
                assert!((a - b).abs() < 1e-5);
            }
        }
    });
}

#[test]
fn propagation_matches_direct_solution() {
    for_cases(|rng| {
        let p = Problem::new(affinity(rng), labels(rng)).unwrap();
        let direct = HardCriterion::new().fit(&p).unwrap();
        let (iterative, sweeps) = LabelPropagation::new()
            .tolerance(1e-12)
            .fit_with_iterations(&p)
            .unwrap();
        assert!(sweeps > 0);
        for (a, b) in direct.unlabeled().iter().zip(iterative.unlabeled()) {
            assert!((a - b).abs() < 1e-8);
        }
    });
}

#[test]
fn nadaraya_watson_respects_label_range() {
    for_cases(|rng| {
        let (w, y) = (affinity(rng), labels(rng));
        let p = Problem::new(w, y.clone()).unwrap();
        let scores = NadarayaWatson::new().fit(&p).unwrap();
        let lo = y.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = y.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for &s in scores.unlabeled() {
            assert!(s >= lo - 1e-12 && s <= hi + 1e-12);
        }
    });
}

#[test]
fn soft_scores_interpolate_between_hard_and_mean() {
    for_cases(|rng| {
        // As λ grows the soft solution moves monotonically (in max-gap)
        // from the hard solution toward the constant mean.
        let p = Problem::new(affinity(rng), labels(rng)).unwrap();
        let mean = MeanPredictor::new().fit(&p).unwrap();
        let mut prev_gap = f64::INFINITY;
        for &lambda in &[0.1, 1.0, 10.0, 100.0] {
            let soft = SoftCriterion::new(lambda).unwrap().fit(&p).unwrap();
            let gap: f64 = soft
                .all()
                .iter()
                .zip(mean.all())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            assert!(gap <= prev_gap + 1e-9, "gap grew at lambda {lambda}");
            prev_gap = gap;
        }
    });
}

#[test]
fn constant_labels_give_constant_scores() {
    for_cases(|rng| {
        // With all labels equal to c, every criterion returns c everywhere
        // (on unlabeled points).
        let c = rng.gen::<f64>();
        let p = Problem::new(affinity(rng), vec![c; N_LABELED]).unwrap();
        let models: Vec<Box<dyn TransductiveModel>> = vec![
            Box::new(HardCriterion::new()),
            Box::new(SoftCriterion::new(0.5).unwrap()),
            Box::new(NadarayaWatson::new()),
            Box::new(MeanPredictor::new()),
        ];
        for model in models {
            let scores = model.fit(&p).unwrap();
            for &s in scores.unlabeled() {
                assert!((s - c).abs() < 1e-8, "{} broke constancy", model.name());
            }
        }
    });
}
