//! The regression (continuous-response) path: recover `sin(2πx)` from
//! noisy labeled samples plus an unlabeled pool, and render the fit as an
//! ASCII strip chart.
//!
//! The paper's theory covers continuous responses too — `E[Y|X]` is the
//! regression function — and the hard criterion inherits Nadaraya–Watson's
//! consistency for it.
//!
//! ```text
//! cargo run --release --example regression_sinusoid
//! ```

use gssl::{HardCriterion, Problem};
use gssl_datasets::synthetic::sinusoidal_regression;
use gssl_graph::{affinity::affinity_matrix, bandwidth::paper_rate, Kernel};
use gssl_stats::metrics::rmse;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (n, m) = (200, 60);
    let mut rng = StdRng::seed_from_u64(7);
    let ds = sinusoidal_regression(n + m, 0.25, &mut rng)?;
    let ssl = ds.arrange_prefix(n)?;
    let truth = ssl.hidden_truth.as_ref().expect("synthetic truth");

    let h = paper_rate(n, 1)?;
    let w = affinity_matrix(&ssl.inputs, Kernel::Gaussian, h)?;
    let problem = Problem::new(w, ssl.labels.clone())?;
    let scores = HardCriterion::new().fit(&problem)?;

    let error = rmse(truth, scores.unlabeled())?;
    println!("recovered sin(2πx) from {n} noisy labels (noise σ = 0.25)");
    println!("RMSE against the true regression function on {m} unlabeled points: {error:.4}\n");

    // ASCII strip chart: x binned into 60 columns, '#' = prediction,
    // '.' = truth, rows span [-1.2, 1.2].
    let columns = 60;
    let rows = 15;
    let mut chart = vec![vec![' '; columns]; rows];
    let to_row = |v: f64| -> usize {
        let clamped = v.clamp(-1.2, 1.2);
        ((1.2 - clamped) / 2.4 * (rows as f64 - 1.0)).round() as usize
    };
    for (i, (&q, &f)) in truth.iter().zip(scores.unlabeled()).enumerate() {
        let x = ssl.inputs.get(n + i, 0);
        let col = ((x * (columns as f64 - 1.0)).round() as usize).min(columns - 1);
        chart[to_row(q)][col] = '.';
        chart[to_row(f)][col] = '#';
    }
    for row in &chart {
        let line: String = row.iter().collect();
        println!("|{line}|");
    }
    println!("  '#' = hard-criterion prediction, '.' = true sin(2πx)\n");

    assert!(error < 0.25, "fit should beat the noise level");
    println!("prediction error ({error:.3}) is below the label noise (0.25) ✓");
    Ok(())
}
