//! The paper's complexity remark, measured: solving the hard criterion
//! costs `O(m³)` while the soft criterion costs `O((m+n)³)` (full system)
//! or `O(n³ + m³)` (block form of Eq. 4). With `n ≫ m` the hard solve is
//! dramatically cheaper — "another advantage of the hard criterion".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gssl::{HardCriterion, HardSolver, Problem, SoftCriterion, SweepKind};
use gssl_datasets::synthetic::{paper_dataset, PaperModel, PAPER_DIM};
use gssl_graph::{affinity::affinity_matrix, bandwidth::paper_rate, Kernel};
use gssl_linalg::{AmgOptions, CsrMatrix, Matrix, SolverPolicy, SparseStrategy};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn build_problem(n: usize, m: usize) -> Problem {
    let mut rng = StdRng::seed_from_u64(1);
    let ds = paper_dataset(PaperModel::Linear, n + m, &mut rng).expect("generation");
    let ssl = ds.arrange_prefix(n).expect("arrangement");
    let h = paper_rate(n, PAPER_DIM).expect("rate");
    let w = affinity_matrix(&ssl.inputs, Kernel::Gaussian, h).expect("affinity");
    Problem::new(w, ssl.labels.clone()).expect("valid problem")
}

/// Hard vs soft at fixed labeled size: the hard criterion only factors
/// the m×m block.
fn bench_hard_vs_soft(c: &mut Criterion) {
    let mut group = c.benchmark_group("hard_vs_soft_n200");
    group.sample_size(10);
    for &m in &[20usize, 50, 100, 200] {
        let problem = build_problem(200, m);
        group.bench_with_input(BenchmarkId::new("hard", m), &problem, |b, p| {
            b.iter(|| HardCriterion::new().fit(p).expect("hard fit"));
        });
        group.bench_with_input(BenchmarkId::new("soft_block", m), &problem, |b, p| {
            let soft = SoftCriterion::new(0.1).expect("lambda");
            b.iter(|| soft.fit(p).expect("soft fit"));
        });
        group.bench_with_input(BenchmarkId::new("soft_full", m), &problem, |b, p| {
            let soft = SoftCriterion::new(0.1).expect("lambda");
            b.iter(|| soft.fit_full_system(p).expect("soft full fit"));
        });
    }
    group.finish();
}

/// The m³ scaling of the hard solve in isolation (n fixed and large).
fn bench_hard_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("hard_scaling_in_m");
    group.sample_size(10);
    for &m in &[25usize, 50, 100, 200] {
        let problem = build_problem(300, m);
        group.bench_with_input(BenchmarkId::from_parameter(m), &problem, |b, p| {
            b.iter(|| HardCriterion::new().fit(p).expect("hard fit"));
        });
    }
    group.finish();
}

/// Backend ablation: direct, CG and propagation backends on one problem.
fn bench_hard_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("hard_backends_n200_m100");
    group.sample_size(10);
    let problem = build_problem(200, 100);
    let backends: Vec<(&str, HardCriterion)> = vec![
        ("cholesky", HardCriterion::new()),
        ("lu", HardCriterion::new().solver(HardSolver::Lu)),
        (
            "conjugate_gradient",
            HardCriterion::new().solver(HardSolver::ConjugateGradient(Default::default())),
        ),
        (
            "propagation_jacobi",
            HardCriterion::new().solver(HardSolver::Propagation(SweepKind::Simultaneous)),
        ),
        (
            "propagation_gauss_seidel",
            HardCriterion::new().solver(HardSolver::Propagation(SweepKind::InPlace)),
        ),
    ];
    for (name, solver) in backends {
        group.bench_with_input(BenchmarkId::from_parameter(name), &solver, |b, s| {
            b.iter(|| s.fit(&problem).expect("fit succeeds"));
        });
    }
    group.finish();
}

/// A banded similarity graph (path plus short-range edges) with `total`
/// vertices — sparse at every size, so it can be held dense or as CSR.
fn banded_graph(total: usize) -> Matrix {
    let mut w = Matrix::zeros(total, total);
    for i in 0..total {
        for d in 1..=3usize {
            if i + d < total {
                let weight = 1.0 / d as f64;
                w.set(i, i + d, weight);
                w.set(i + d, i, weight);
            }
        }
    }
    w
}

/// Dense-direct vs sparse-CG crossover: the same banded problem solved
/// through the dense representation (policy picks a direct factorization
/// below the dimension cutoff) and the CSR representation (policy picks
/// Jacobi-CG once the system is large and sparse). Direct costs `O(m³)`
/// regardless of sparsity; CG costs `O(nnz · iters)` — the crossover in
/// wall time is the point the `SolverPolicy` defaults encode.
fn bench_dense_vs_sparse_cg_crossover(c: &mut Criterion) {
    let mut group = c.benchmark_group("dense_vs_sparse_cg_crossover");
    group.sample_size(10);
    let n_labeled = 8;
    for &total in &[64usize, 128, 256, 512] {
        let w = banded_graph(total);
        let labels: Vec<f64> = (0..n_labeled).map(|i| (i % 2) as f64).collect();
        let dense = Problem::new(w.clone(), labels.clone()).expect("dense problem");
        let sparse =
            Problem::new(CsrMatrix::from_dense(&w, 0.0), labels.clone()).expect("sparse problem");
        let auto = HardCriterion::new().solver(HardSolver::Auto(SolverPolicy::default()));
        group.bench_with_input(BenchmarkId::new("dense_direct", total), &dense, |b, p| {
            let direct = HardCriterion::new().solver(HardSolver::Cholesky);
            b.iter(|| direct.fit(p).expect("dense direct fit"));
        });
        group.bench_with_input(BenchmarkId::new("sparse_cg", total), &sparse, |b, p| {
            let cg = HardCriterion::new().solver(HardSolver::ConjugateGradient(Default::default()));
            b.iter(|| cg.fit(p).expect("sparse cg fit"));
        });
        group.bench_with_input(BenchmarkId::new("auto_dense", total), &dense, |b, p| {
            b.iter(|| auto.fit(p).expect("auto dense fit"));
        });
        group.bench_with_input(BenchmarkId::new("auto_sparse", total), &sparse, |b, p| {
            b.iter(|| auto.fit(p).expect("auto sparse fit"));
        });
    }
    group.finish();
}

/// A policy forcing the given sparse strategy regardless of size, so the
/// preconditioner families can be compared on the same problem.
fn forced(strategy: SparseStrategy) -> HardCriterion {
    HardCriterion::new().solver(HardSolver::Auto(SolverPolicy {
        direct_dim_cutoff: 0,
        density_threshold: 1.0,
        sparse: strategy,
        ..SolverPolicy::default()
    }))
}

/// Preconditioner ablation on the banded graph: plain Jacobi-CG vs
/// block-Jacobi PCG vs IC(0) PCG vs AMG through the forced-strategy
/// policy routes. IC(0) is exact on banded matrices, so its iteration
/// advantage over Jacobi translates directly into wall time here; AMG
/// pays a hierarchy setup that only amortizes at larger sizes (the
/// committed `BENCH_solver.json` sweep shows where).
fn bench_preconditioner_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("preconditioner_ablation");
    group.sample_size(10);
    let n_labeled = 8;
    for &total in &[256usize, 512, 1024] {
        let w = banded_graph(total);
        let labels: Vec<f64> = (0..n_labeled).map(|i| (i % 2) as f64).collect();
        let sparse =
            Problem::new(CsrMatrix::from_dense(&w, 0.0), labels.clone()).expect("sparse problem");
        let strategies: Vec<(&str, HardCriterion)> = vec![
            ("jacobi_cg", forced(SparseStrategy::Jacobi)),
            (
                "block_jacobi_pcg",
                forced(SparseStrategy::BlockJacobi { block_dim: 32 }),
            ),
            ("ic0_pcg", forced(SparseStrategy::Ic0)),
            (
                "amg_pcg",
                forced(SparseStrategy::Amg(AmgOptions::default())),
            ),
        ];
        for (name, criterion) in strategies {
            group.bench_with_input(BenchmarkId::new(name, total), &criterion, |b, s| {
                b.iter(|| s.fit(&sparse).expect("forced-strategy fit"));
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_hard_vs_soft,
    bench_hard_scaling,
    bench_hard_backends,
    bench_dense_vs_sparse_cg_crossover,
    bench_preconditioner_ablation
);
criterion_main!(benches);
