//! Learning with Local and Global Consistency (Zhou et al., 2004) — the
//! normalized-Laplacian variant the paper cites as reference \[12\].
//!
//! LLGC iterates `F ← αSF + (1 − α)Y` with `S = D^{-1/2} W D^{-1/2}`,
//! whose fixed point is
//!
//! ```text
//! F* = (1 − α) (I − αS)⁻¹ Y
//! ```
//!
//! Like the soft criterion it trades label fit against smoothness (α plays
//! the role of λ/(1 + λ) under the normalized Laplacian), so it inherits
//! the same qualitative behaviour the paper analyzes: α → 0 clamps to the
//! labels, α → 1 over-smooths toward a degree-weighted consensus.

use crate::error::{Error, Result};
use crate::problem::{Problem, Scores};
use crate::traits::TransductiveModel;
use gssl_linalg::{Lu, Matrix, Vector};

/// The LLGC criterion with smoothing weight `α ∈ (0, 1)`.
///
/// ```
/// use gssl::{LocalGlobalConsistency, Problem, TransductiveModel};
/// use gssl_linalg::Matrix;
/// # fn main() -> Result<(), gssl::Error> {
/// let w = Matrix::from_rows(&[
///     &[1.0, 0.9, 0.1],
///     &[0.9, 1.0, 0.2],
///     &[0.1, 0.2, 1.0],
/// ])?;
/// let problem = Problem::new(w, vec![1.0])?;
/// let scores = LocalGlobalConsistency::new(0.9)?.fit(&problem)?;
/// // The unlabeled vertex tied to the labeled one scores higher.
/// assert!(scores.unlabeled()[0] > scores.unlabeled()[1]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalGlobalConsistency {
    alpha: f64,
}

impl LocalGlobalConsistency {
    /// Creates the criterion.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `alpha` is outside
    /// `(0, 1)`.
    pub fn new(alpha: f64) -> Result<Self> {
        if !(0.0 < alpha && alpha < 1.0) {
            return Err(Error::InvalidParameter {
                message: format!("alpha must lie strictly in (0, 1), got {alpha}"),
            });
        }
        Ok(LocalGlobalConsistency { alpha })
    }

    /// The smoothing weight α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Solves `(I − αS) F = (1 − α) Y` with `S` the symmetric-normalized
    /// affinity.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidProblem`] when some vertex is isolated (zero
    ///   degree — `S` is undefined).
    /// * [`Error::Linalg`] on numerical failure (never for `α < 1` on a
    ///   valid graph: `I − αS` is strictly diagonally dominated in the
    ///   spectral sense).
    pub fn fit(&self, problem: &Problem) -> Result<Scores> {
        let total = problem.len();
        let n = problem.n_labeled();
        let degrees = problem.degrees();
        let inv_sqrt: Vec<f64> = degrees
            .iter()
            .enumerate()
            .map(|(i, d)| {
                if d > 0.0 {
                    Ok(1.0 / d.sqrt())
                } else {
                    Err(Error::InvalidProblem {
                        message: format!("vertex {i} is isolated; LLGC normalization undefined"),
                    })
                }
            })
            .collect::<Result<_>>()?;

        // System matrix I - α S.
        let w = problem.weights();
        let mut system = Matrix::zeros(total, total);
        for i in 0..total {
            for j in 0..total {
                let s_ij = inv_sqrt[i] * w.get(i, j) * inv_sqrt[j];
                let identity = if i == j { 1.0 } else { 0.0 };
                system.set(i, j, identity - self.alpha * s_ij);
            }
        }
        let mut rhs = Vector::zeros(total);
        for (i, &y) in problem.labels().iter().enumerate() {
            rhs[i] = (1.0 - self.alpha) * y;
        }
        let f = Lu::factor(&system)?.solve(&rhs)?;
        Ok(Scores::from_parts(&f.as_slice()[..n], &f.as_slice()[n..]))
    }

    /// Runs the textbook fixed-point iteration `F ← αSF + (1 − α)Y`
    /// instead of a direct solve; returns scores and iteration count.
    /// Converges geometrically at rate α.
    ///
    /// # Errors
    ///
    /// * Same validation as [`LocalGlobalConsistency::fit`].
    /// * [`Error::Linalg`] wrapping `NotConverged` when `max_iterations`
    ///   sweeps do not reach `tolerance`.
    pub fn fit_iterative(
        &self,
        problem: &Problem,
        max_iterations: usize,
        tolerance: f64,
    ) -> Result<(Scores, usize)> {
        let total = problem.len();
        let n = problem.n_labeled();
        let degrees = problem.degrees();
        for (i, d) in degrees.iter().enumerate() {
            if d <= 0.0 {
                return Err(Error::InvalidProblem {
                    message: format!("vertex {i} is isolated; LLGC normalization undefined"),
                });
            }
        }
        let inv_sqrt: Vec<f64> = degrees.iter().map(|d| 1.0 / d.sqrt()).collect();
        let w = problem.weights();
        let mut base = vec![0.0; total];
        for (i, &y) in problem.labels().iter().enumerate() {
            base[i] = (1.0 - self.alpha) * y;
        }
        let mut f = base.clone();
        let mut next = vec![0.0; total];
        for sweep in 1..=max_iterations {
            let mut change = 0.0f64;
            for i in 0..total {
                let mut sum = 0.0;
                for j in 0..total {
                    sum += inv_sqrt[i] * w.get(i, j) * inv_sqrt[j] * f[j];
                }
                let value = self.alpha * sum + base[i];
                change = change.max((value - f[i]).abs());
                next[i] = value;
            }
            std::mem::swap(&mut f, &mut next);
            if change <= tolerance {
                return Ok((Scores::from_parts(&f[..n], &f[n..]), sweep));
            }
        }
        Err(Error::Linalg(gssl_linalg::Error::NotConverged {
            iterations: max_iterations,
            residual: f64::NAN,
        }))
    }
}

impl TransductiveModel for LocalGlobalConsistency {
    fn fit(&self, problem: &Problem) -> Result<Scores> {
        LocalGlobalConsistency::fit(self, problem)
    }

    fn name(&self) -> String {
        format!("local-global consistency (alpha = {})", self.alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster_problem() -> Problem {
        // Two clusters {0, 2, 3} and {1, 4, 5}; vertices 0 and 1 labeled.
        let mut w = Matrix::identity(6);
        for &(a, b) in &[(0usize, 2usize), (0, 3), (2, 3), (1, 4), (1, 5), (4, 5)] {
            w.set(a, b, 0.9);
            w.set(b, a, 0.9);
        }
        for i in 0..6 {
            for j in 0..6 {
                if i != j && w.get(i, j) == 0.0 {
                    w.set(i, j, 0.05);
                }
            }
        }
        Problem::new(w, vec![1.0, 0.0]).unwrap()
    }

    #[test]
    fn alpha_validation() {
        assert!(LocalGlobalConsistency::new(0.0).is_err());
        assert!(LocalGlobalConsistency::new(1.0).is_err());
        assert!(LocalGlobalConsistency::new(-0.5).is_err());
        assert_eq!(LocalGlobalConsistency::new(0.5).unwrap().alpha(), 0.5);
    }

    #[test]
    fn recovers_cluster_structure() {
        let p = cluster_problem();
        let scores = LocalGlobalConsistency::new(0.9).unwrap().fit(&p).unwrap();
        // Unlabeled order: 2, 3 (cluster of vertex 0), 4, 5 (cluster of 1).
        let u = scores.unlabeled();
        assert!(u[0] > u[2], "cluster-0 member should outscore cluster-1");
        assert!(u[1] > u[3]);
    }

    #[test]
    fn direct_and_iterative_paths_agree() {
        let p = cluster_problem();
        let llgc = LocalGlobalConsistency::new(0.8).unwrap();
        let direct = llgc.fit(&p).unwrap();
        let (iterative, sweeps) = llgc.fit_iterative(&p, 10_000, 1e-12).unwrap();
        assert!(sweeps > 1);
        for (a, b) in direct.all().iter().zip(iterative.all()) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn small_alpha_tracks_labels() {
        let p = cluster_problem();
        let scores = LocalGlobalConsistency::new(0.01).unwrap().fit(&p).unwrap();
        // With tiny α the labeled scores approach (1 - α) Y ≈ Y.
        assert!((scores.labeled()[0] - 1.0).abs() < 0.05);
        assert!(scores.labeled()[1].abs() < 0.05);
    }

    #[test]
    fn rejects_isolated_vertices() {
        let w = Matrix::from_diag(&[0.0, 0.0]);
        let p = Problem::new(w, vec![1.0]).unwrap();
        assert!(matches!(
            LocalGlobalConsistency::new(0.5).unwrap().fit(&p),
            Err(Error::InvalidProblem { .. })
        ));
        assert!(LocalGlobalConsistency::new(0.5)
            .unwrap()
            .fit_iterative(&p, 10, 1e-6)
            .is_err());
    }

    #[test]
    fn iteration_budget_is_enforced() {
        let p = cluster_problem();
        let llgc = LocalGlobalConsistency::new(0.99).unwrap();
        assert!(matches!(
            llgc.fit_iterative(&p, 1, 1e-15),
            Err(Error::Linalg(gssl_linalg::Error::NotConverged { .. }))
        ));
    }

    #[test]
    fn name_mentions_alpha() {
        assert!(LocalGlobalConsistency::new(0.25)
            .unwrap()
            .name()
            .contains("0.25"));
    }
}
