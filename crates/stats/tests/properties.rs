//! Property-based tests for metrics, ROC/AUC and resampling.

use gssl_stats::describe::{mean, median, quantile, std_dev};
use gssl_stats::metrics::{mae, mse, rmse, ConfusionMatrix};
use gssl_stats::roc::{auc, roc_curve, trapezoid_area};
use gssl_stats::split::{labeled_unlabeled_split, KFold};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

fn paired() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (1usize..30).prop_flat_map(|n| {
        (
            prop::collection::vec(-5.0f64..5.0, n),
            prop::collection::vec(-5.0f64..5.0, n),
        )
    })
}

fn scored_labels() -> impl Strategy<Value = (Vec<f64>, Vec<bool>)> {
    (2usize..40)
        .prop_flat_map(|n| {
            (
                prop::collection::vec(0.0f64..1.0, n),
                prop::collection::vec(any::<bool>(), n),
            )
        })
        .prop_filter("need both classes", |(_, labels)| {
            labels.iter().any(|&x| x) && labels.iter().any(|&x| !x)
        })
}

proptest! {
    #[test]
    fn rmse_is_nonnegative_and_zero_iff_equal((truth, est) in paired()) {
        let r = rmse(&truth, &est).unwrap();
        prop_assert!(r >= 0.0);
        let self_r = rmse(&truth, &truth).unwrap();
        prop_assert_eq!(self_r, 0.0);
    }

    #[test]
    fn rmse_dominates_mae((truth, est) in paired()) {
        // Quadratic mean >= arithmetic mean of absolute errors.
        let r = rmse(&truth, &est).unwrap();
        let a = mae(&truth, &est).unwrap();
        prop_assert!(r >= a - 1e-12);
    }

    #[test]
    fn mse_is_symmetric((truth, est) in paired()) {
        prop_assert_eq!(mse(&truth, &est).unwrap(), mse(&est, &truth).unwrap());
    }

    #[test]
    fn auc_in_unit_interval_and_complement((scores, labels) in scored_labels()) {
        let a = auc(&scores, &labels).unwrap();
        prop_assert!((0.0..=1.0).contains(&a));
        // Flipping labels complements the AUC.
        let flipped: Vec<bool> = labels.iter().map(|&y| !y).collect();
        let a_flipped = auc(&scores, &flipped).unwrap();
        prop_assert!((a + a_flipped - 1.0).abs() < 1e-12);
        // Negating scores also complements.
        let negated: Vec<f64> = scores.iter().map(|s| -s).collect();
        let a_neg = auc(&negated, &labels).unwrap();
        prop_assert!((a + a_neg - 1.0).abs() < 1e-12);
    }

    #[test]
    fn auc_equals_trapezoid_area((scores, labels) in scored_labels()) {
        let a = auc(&scores, &labels).unwrap();
        let curve = roc_curve(&scores, &labels).unwrap();
        prop_assert!((a - trapezoid_area(&curve)).abs() < 1e-10);
    }

    #[test]
    fn roc_curve_is_monotone((scores, labels) in scored_labels()) {
        let curve = roc_curve(&scores, &labels).unwrap();
        for w in curve.windows(2) {
            prop_assert!(w[1].false_positive_rate >= w[0].false_positive_rate - 1e-15);
            prop_assert!(w[1].true_positive_rate >= w[0].true_positive_rate - 1e-15);
        }
    }

    #[test]
    fn confusion_matrix_conserves_counts((scores, labels) in scored_labels(),
                                         threshold in 0.0f64..1.0) {
        let cm = ConfusionMatrix::from_scores(&scores, &labels, threshold).unwrap();
        prop_assert_eq!(cm.total(), scores.len());
        let positives = labels.iter().filter(|&&y| y).count();
        prop_assert_eq!(cm.true_positives + cm.false_negatives, positives);
        prop_assert_eq!(cm.false_positives + cm.true_negatives, scores.len() - positives);
        prop_assert!((0.0..=1.0).contains(&cm.accuracy()));
    }

    #[test]
    fn kfold_covers_indices_exactly_once(len in 4usize..60, k in 2usize..5, seed in 0u64..100) {
        prop_assume!(len >= k);
        let mut rng = StdRng::seed_from_u64(seed);
        let folds = KFold::new(k).unwrap().splits(len, &mut rng).unwrap();
        let mut seen = HashSet::new();
        for f in &folds {
            prop_assert_eq!(f.train.len() + f.test.len(), len);
            for &i in &f.test {
                prop_assert!(seen.insert(i));
            }
        }
        prop_assert_eq!(seen.len(), len);
    }

    #[test]
    fn labeled_split_partitions(len in 2usize..80, seed in 0u64..100) {
        let n_labeled = 1 + len / 3;
        let mut rng = StdRng::seed_from_u64(seed);
        let s = labeled_unlabeled_split(len, n_labeled, &mut rng).unwrap();
        prop_assert_eq!(s.train.len(), n_labeled);
        let all: HashSet<usize> = s.train.iter().chain(&s.test).copied().collect();
        prop_assert_eq!(all.len(), len);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded(xs in prop::collection::vec(-10.0f64..10.0, 1..50)) {
        let q25 = quantile(&xs, 0.25).unwrap();
        let q50 = quantile(&xs, 0.5).unwrap();
        let q75 = quantile(&xs, 0.75).unwrap();
        prop_assert!(q25 <= q50 && q50 <= q75);
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(lo <= q25 && q75 <= hi);
        prop_assert_eq!(median(&xs).unwrap(), q50);
    }

    #[test]
    fn mean_is_within_range(xs in prop::collection::vec(-10.0f64..10.0, 2..50)) {
        let m = mean(&xs).unwrap();
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(lo - 1e-12 <= m && m <= hi + 1e-12);
        prop_assert!(std_dev(&xs).unwrap() >= 0.0);
    }
}
