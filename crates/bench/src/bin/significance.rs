//! Statistical backing for the paper's headline claim: across paired
//! Monte-Carlo repetitions, is the hard criterion's RMSE significantly
//! smaller than each soft criterion's? Reports a paired t-test and an
//! exact sign test per (λ, n) cell.

use gssl_bench::experiment::{SyntheticConfig, SYNTHETIC_LAMBDAS};
use gssl_bench::runner::CliArgs;
use gssl_datasets::synthetic::PaperModel;
use gssl_stats::inference::{paired_t_test, sign_test, wilcoxon_signed_rank};

fn main() {
    let args = match CliArgs::parse(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    let reps = args.repetitions.unwrap_or(40);
    let seed = args.seed.unwrap_or(31337);
    let n_grid: &[usize] = if args.full {
        &[30, 100, 300, 1000]
    } else {
        &[30, 100, 300]
    };

    println!("== Paired comparison: hard (λ=0) vs soft, Model 1, m = 30, {reps} reps ==\n");
    println!(
        "{:>6} {:>8} {:>14} {:>12} {:>14} {:>14} {:>14}",
        "n", "lambda", "mean ΔRMSE", "t-test p", "wins/losses", "sign-test p", "wilcoxon p"
    );

    for &n in n_grid {
        let config = SyntheticConfig {
            model: PaperModel::Linear,
            n_labeled: n,
            n_unlabeled: 30,
            lambdas: SYNTHETIC_LAMBDAS.to_vec(),
            repetitions: reps,
            seed,
        };
        // Collect per-repetition RMSE vectors (aligned with lambdas).
        let mut per_rep: Vec<Vec<f64>> = Vec::with_capacity(reps);
        for r in 0..reps {
            match config.run_once(r) {
                Ok(v) => per_rep.push(v),
                Err(error) => {
                    eprintln!("repetition {r} failed at n = {n}: {error}");
                    std::process::exit(1);
                }
            }
        }
        let hard: Vec<f64> = per_rep.iter().map(|v| v[0]).collect();
        for (k, &lambda) in SYNTHETIC_LAMBDAS.iter().enumerate().skip(1) {
            let soft: Vec<f64> = per_rep.iter().map(|v| v[k]).collect();
            let t = paired_t_test(&hard, &soft).expect("distinct samples");
            let s = sign_test(&hard, &soft).expect("non-tied pairs");
            let w = wilcoxon_signed_rank(&hard, &soft).expect("enough pairs");
            println!(
                "{n:>6} {lambda:>8} {:>14.5} {:>12.2e} {:>8}/{:<5} {:>14.2e} {:>14.2e}",
                t.mean_difference, t.p_value, s.wins, s.losses, s.p_value, w.p_value
            );
        }
    }

    println!("\nNegative ΔRMSE means the hard criterion wins; small p-values mean");
    println!("the advantage is statistically significant across repetitions");
    println!("(wins counts repetitions where the SOFT criterion had larger error).");
}
