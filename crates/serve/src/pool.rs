//! A small dependency-free scoped thread pool (`std::thread` only).
//!
//! Batch prediction is embarrassingly parallel: every query reads the
//! shared fitted state and writes one independent result. The pool shards
//! an input slice into contiguous chunks, hands chunks to scoped worker
//! threads through an atomic cursor, and reassembles results in input
//! order. There are no sleeps, channels or timing assumptions — workers
//! run until the cursor is exhausted and `std::thread::scope` joins them —
//! so behaviour is deterministic up to scheduling and results are
//! identical to the sequential loop.

use crate::error::{Error, Result};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// Chunk width used to shard a batch of `len` items across `workers`
/// threads: small enough to balance skewed per-item cost, large enough to
/// amortize the atomic increment. Always at least 1.
///
/// Shared with the deterministic interleaving harness in [`crate::sim`] so
/// the schedules it enumerates exercise exactly the production protocol.
pub(crate) fn chunk_size(len: usize, workers: usize) -> usize {
    let workers = workers.max(1);
    (len / (workers * 4)).max(1)
}

/// One step of the chunk-claim protocol: atomically advances the shared
/// cursor by `chunk` and returns the claimed half-open range, or `None`
/// once the batch is exhausted.
///
/// The single `fetch_add` is the *only* synchronization between claimants;
/// `Ordering::Relaxed` suffices because the read-modify-write total order
/// alone makes claims disjoint and exhaustive (no other memory is
/// published through the cursor — results go through a mutex and the
/// scope join). [`crate::sim::enumerate_schedules`] checks this
/// exhaustively over all bounded interleavings under `strict-checks`.
pub(crate) fn claim(cursor: &AtomicUsize, chunk: usize, len: usize) -> Option<(usize, usize)> {
    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
    if start >= len {
        return None;
    }
    Some((start, (start + chunk).min(len)))
}

/// A fixed-width scoped thread pool.
///
/// The pool owns no threads between calls: each [`ThreadPool::map`] opens
/// a `std::thread::scope`, spawns up to `workers` threads for the duration
/// of the batch and joins them before returning. This keeps the type
/// trivially `Send + Sync` and free of shutdown protocols.
///
/// ```
/// use gssl_serve::ThreadPool;
/// # fn main() -> Result<(), gssl_serve::Error> {
/// let pool = ThreadPool::new(4)?;
/// let squares = pool.map(&[1.0, 2.0, 3.0], |_, x| Ok(x * x))?;
/// assert_eq!(squares, vec![1.0, 4.0, 9.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadPool {
    workers: usize,
}

impl ThreadPool {
    /// Creates a pool with exactly `workers` worker threads per batch.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when `workers == 0`.
    pub fn new(workers: usize) -> Result<Self> {
        if workers == 0 {
            return Err(Error::InvalidConfig {
                message: "thread pool needs at least one worker".to_owned(),
            });
        }
        Ok(ThreadPool { workers })
    }

    /// Creates a pool sized to the host's available parallelism (at least
    /// one worker).
    pub fn with_available_parallelism() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ThreadPool { workers }
    }

    /// Number of worker threads the pool spawns per batch.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Applies `f(index, &item)` to every item, sharding the slice across
    /// the pool's workers, and returns the results in input order.
    ///
    /// `f` runs concurrently on several threads, so it must be `Sync`;
    /// with a single worker (or a batch of at most one item) everything
    /// runs on the calling thread and no threads are spawned.
    ///
    /// # Errors
    ///
    /// When one or more invocations fail, the error of the *lowest input
    /// index* is returned (deterministic regardless of scheduling);
    /// remaining work is still drained and all threads joined first.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Result<Vec<R>>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> Result<R> + Sync,
    {
        if self.workers == 1 || items.len() <= 1 {
            return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
        }

        // Chunked work-stealing via an atomic cursor; see `chunk_size` and
        // `claim` for the protocol and its correctness argument.
        let chunk = chunk_size(items.len(), self.workers);
        let cursor = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<Result<R>>>> =
            Mutex::new((0..items.len()).map(|_| None).collect());

        let threads = self.workers.min(items.len());
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let Some((start, end)) = claim(&cursor, chunk, items.len()) else {
                        break;
                    };
                    // Compute the whole chunk locally, then publish under
                    // one short lock.
                    let mut local = Vec::with_capacity(end - start);
                    for (i, item) in items[start..end].iter().enumerate() {
                        local.push(f(start + i, item));
                    }
                    let mut guard = slots.lock().unwrap_or_else(PoisonError::into_inner);
                    for (offset, outcome) in local.into_iter().enumerate() {
                        guard[start + offset] = Some(outcome);
                    }
                });
            }
        });

        let collected = slots.into_inner().unwrap_or_else(PoisonError::into_inner);
        let mut out = Vec::with_capacity(items.len());
        for (i, slot) in collected.into_iter().enumerate() {
            match slot {
                Some(Ok(value)) => out.push(value),
                Some(Err(e)) => return Err(e),
                None => {
                    return Err(Error::Internal {
                        message: format!("batch item {i} was never claimed by a worker"),
                    })
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_workers() {
        assert!(matches!(
            ThreadPool::new(0),
            Err(Error::InvalidConfig { .. })
        ));
    }

    #[test]
    fn available_parallelism_pool_has_workers() {
        assert!(ThreadPool::with_available_parallelism().workers() >= 1);
    }

    #[test]
    fn preserves_input_order() {
        for workers in [1, 2, 3, 8] {
            let pool = ThreadPool::new(workers).unwrap();
            let items: Vec<usize> = (0..257).collect();
            let out = pool.map(&items, |i, &x| Ok(i * 1000 + x)).unwrap();
            let expected: Vec<usize> = (0..257).map(|i| i * 1000 + i).collect();
            assert_eq!(out, expected, "workers = {workers}");
        }
    }

    #[test]
    fn parallel_results_match_sequential() {
        let items: Vec<f64> = (0..500).map(|i| i as f64 * 0.25).collect();
        let sequential = ThreadPool::new(1)
            .unwrap()
            .map(&items, |_, x| Ok(x.sin() * x.cos()))
            .unwrap();
        let parallel = ThreadPool::new(6)
            .unwrap()
            .map(&items, |_, x| Ok(x.sin() * x.cos()))
            .unwrap();
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn lowest_index_error_wins() {
        let pool = ThreadPool::new(4).unwrap();
        let items: Vec<usize> = (0..100).collect();
        let result: Result<Vec<usize>> = pool.map(&items, |i, &x| {
            if i == 13 || i == 77 {
                Err(Error::UnknownNode { node: i })
            } else {
                Ok(x)
            }
        });
        assert_eq!(result, Err(Error::UnknownNode { node: 13 }));
    }

    #[test]
    fn empty_and_singleton_batches() {
        let pool = ThreadPool::new(4).unwrap();
        let empty: Vec<usize> = Vec::new();
        assert_eq!(
            pool.map(&empty, |_, &x| Ok(x)).unwrap(),
            Vec::<usize>::new()
        );
        assert_eq!(pool.map(&[42usize], |_, &x| Ok(x)).unwrap(), vec![42]);
    }
}
