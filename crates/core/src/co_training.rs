//! Co-training (Blum & Mitchell; the paper's introduction cites the
//! co-training line as reference \[4\]): two models over two *views* of
//! the features teach each other by exchanging confident pseudo-labels.
//!
//! Each round, each view's model is fitted on the labels accumulated so
//! far; the points one view is confident about become pseudo-labels for
//! the *other* view's next round. Included — like [`crate::SelfTraining`]
//! — as a classic baseline the paper positions graph-based methods
//! against; the final score is the average of the two views' scores.

use crate::error::{Error, Result};
use crate::problem::{Problem, Scores};
use crate::traits::TransductiveModel;
use gssl_graph::Kernel;
use gssl_linalg::Matrix;

/// Co-training over two feature views.
///
/// The views are given as column ranges of the input matrix; each view
/// builds its own kernel graph and fits the wrapped model independently.
#[derive(Debug)]
pub struct CoTraining<M> {
    model: M,
    view_split: usize,
    kernel: Kernel,
    bandwidth: f64,
    confidence: f64,
    max_rounds: usize,
}

impl<M: TransductiveModel> CoTraining<M> {
    /// Creates a co-trainer: columns `..view_split` form view 1, columns
    /// `view_split..` form view 2; both views use `kernel` at
    /// `bandwidth`; scores beyond `confidence` (or below
    /// `1 − confidence`) are exchanged as pseudo-labels.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `view_split == 0`,
    /// the confidence is outside `(0.5, 1]`, or the bandwidth is not
    /// positive.
    pub fn new(
        model: M,
        view_split: usize,
        kernel: Kernel,
        bandwidth: f64,
        confidence: f64,
    ) -> Result<Self> {
        if view_split == 0 {
            return Err(Error::InvalidParameter {
                message: "view_split must leave at least one column in view 1".to_owned(),
            });
        }
        if !(0.5 < confidence && confidence <= 1.0) {
            return Err(Error::InvalidParameter {
                message: format!("confidence must be in (0.5, 1], got {confidence}"),
            });
        }
        if !(bandwidth > 0.0) {
            return Err(Error::InvalidParameter {
                message: format!("bandwidth must be positive, got {bandwidth}"),
            });
        }
        Ok(CoTraining {
            model,
            view_split,
            kernel,
            bandwidth,
            confidence,
            max_rounds: 20,
        })
    }

    /// Sets the maximum number of exchange rounds (default 20).
    pub fn max_rounds(mut self, rounds: usize) -> Self {
        self.max_rounds = rounds;
        self
    }

    /// Runs co-training on raw points (labeled rows first), returning the
    /// averaged scores (original layout) and the number of exchange
    /// rounds performed.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidProblem`] when `view_split >= points.cols()` or
    ///   labels are inconsistent with the points.
    /// * Propagates graph-construction and fitting errors.
    pub fn fit_points(&self, points: &Matrix, labels: &[f64]) -> Result<(Scores, usize)> {
        if self.view_split >= points.cols() {
            return Err(Error::InvalidProblem {
                message: format!(
                    "view_split {} leaves no columns for view 2 (inputs have {})",
                    self.view_split,
                    points.cols()
                ),
            });
        }
        if labels.is_empty() || labels.len() > points.rows() {
            return Err(Error::InvalidProblem {
                message: format!("{} labels for {} points", labels.len(), points.rows()),
            });
        }
        let total = points.rows();
        let n0 = labels.len();
        let view1 = points.submatrix(0, total, 0, self.view_split);
        let view2 = points.submatrix(0, total, self.view_split, points.cols());

        // Per-view labeled sets over ORIGINAL indices (views start equal).
        let mut labeled: [Vec<usize>; 2] = [(0..n0).collect(), (0..n0).collect()];
        let mut label_values: [Vec<f64>; 2] = [labels.to_vec(), labels.to_vec()];
        let mut known: [Vec<bool>; 2] = [vec![false; total], vec![false; total]];
        for view in &mut known {
            for flag in view.iter_mut().take(n0) {
                *flag = true;
            }
        }
        let views = [&view1, &view2];
        let mut last_scores: [Vec<f64>; 2] = [vec![0.5; total], vec![0.5; total]];

        let mut rounds = 0;
        loop {
            let mut any_promoted = false;
            for v in 0..2 {
                let unlabeled: Vec<usize> = (0..total).filter(|&i| !known[v][i]).collect();
                let order: Vec<usize> =
                    labeled[v].iter().chain(unlabeled.iter()).copied().collect();
                let arranged = permute_rows(views[v], &order);
                let problem = Problem::from_points(
                    &arranged,
                    label_values[v].clone(),
                    self.kernel,
                    self.bandwidth,
                )?;
                let scores = self.model.fit(&problem)?;
                for (row, &orig) in order.iter().enumerate() {
                    last_scores[v][orig] = scores.all()[row];
                }
                // Confident points teach the OTHER view.
                let other = 1 - v;
                for &orig in &unlabeled {
                    let s = last_scores[v][orig];
                    if known[other][orig] {
                        continue;
                    }
                    let pseudo = if s >= self.confidence {
                        Some(1.0)
                    } else if s <= 1.0 - self.confidence {
                        Some(0.0)
                    } else {
                        None
                    };
                    if let Some(y) = pseudo {
                        labeled[other].push(orig);
                        label_values[other].push(y);
                        known[other][orig] = true;
                        any_promoted = true;
                    }
                }
            }
            if !any_promoted || rounds >= self.max_rounds {
                break;
            }
            rounds += 1;
        }

        let averaged: Vec<f64> = (n0..total)
            .map(|i| 0.5 * (last_scores[0][i] + last_scores[1][i]))
            .collect();
        Ok((Scores::from_parts(labels, &averaged), rounds))
    }
}

fn permute_rows(points: &Matrix, order: &[usize]) -> Matrix {
    let mut out = Matrix::zeros(order.len(), points.cols());
    for (row, &orig) in order.iter().enumerate() {
        out.row_mut(row).copy_from_slice(points.row(orig));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nadaraya_watson::NadarayaWatson;

    /// Two clusters where BOTH views are informative: view 1 = x
    /// coordinate, view 2 = y coordinate, clusters at (0,0) and (4,4).
    fn two_view_points() -> (Matrix, Vec<f64>) {
        let rows: Vec<[f64; 2]> = vec![
            // labeled: one per cluster
            [0.0, 0.0],
            [4.0, 4.0],
            // unlabeled, cluster A
            [0.3, 0.2],
            [0.1, 0.4],
            [0.4, 0.1],
            // unlabeled, cluster B
            [3.7, 3.9],
            [4.2, 3.8],
            [3.9, 4.3],
        ];
        let slices: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        (Matrix::from_rows(&slices).unwrap(), vec![0.0, 1.0])
    }

    #[test]
    fn parameter_validation() {
        let nw = NadarayaWatson::new();
        assert!(CoTraining::new(nw, 0, Kernel::Gaussian, 1.0, 0.8).is_err());
        let nw = NadarayaWatson::new();
        assert!(CoTraining::new(nw, 1, Kernel::Gaussian, 1.0, 0.5).is_err());
        let nw = NadarayaWatson::new();
        assert!(CoTraining::new(nw, 1, Kernel::Gaussian, 0.0, 0.8).is_err());
        let nw = NadarayaWatson::new();
        assert!(CoTraining::new(nw, 1, Kernel::Gaussian, 1.0, 0.8).is_ok());
    }

    #[test]
    fn recovers_clusters_from_either_view() {
        let (points, labels) = two_view_points();
        let co = CoTraining::new(NadarayaWatson::new(), 1, Kernel::Gaussian, 1.0, 0.75).unwrap();
        let (scores, _rounds) = co.fit_points(&points, &labels).unwrap();
        let predictions = scores.unlabeled_predictions(0.5);
        assert_eq!(predictions, vec![false, false, false, true, true, true]);
    }

    #[test]
    fn views_teach_each_other() {
        // View 2 (y coordinate) is noisy for two cluster-A points whose y
        // sits midway; view 1 is clean. Co-training should still solve
        // everything because view 1's confidence transfers.
        let rows: Vec<[f64; 2]> = vec![
            [0.0, 0.0],
            [4.0, 4.0],
            [0.2, 2.0], // ambiguous in view 2, clear in view 1
            [0.3, 2.1],
            [3.8, 3.9],
            [4.1, 4.2],
        ];
        let slices: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let points = Matrix::from_rows(&slices).unwrap();
        let co = CoTraining::new(NadarayaWatson::new(), 1, Kernel::Gaussian, 1.2, 0.8).unwrap();
        let (scores, rounds) = co.fit_points(&points, &[0.0, 1.0]).unwrap();
        assert!(rounds >= 1, "an exchange should happen");
        let predictions = scores.unlabeled_predictions(0.5);
        assert_eq!(predictions, vec![false, false, true, true]);
    }

    #[test]
    fn validates_points_shape() {
        let (points, labels) = two_view_points();
        let co = CoTraining::new(NadarayaWatson::new(), 2, Kernel::Gaussian, 1.0, 0.8).unwrap();
        // view_split = 2 leaves nothing for view 2 (points have 2 cols).
        assert!(co.fit_points(&points, &labels).is_err());
        let co = CoTraining::new(NadarayaWatson::new(), 1, Kernel::Gaussian, 1.0, 0.8).unwrap();
        assert!(co.fit_points(&points, &[]).is_err());
        assert!(co.fit_points(&points, &vec![0.0; 99]).is_err());
    }

    #[test]
    fn round_budget_is_respected() {
        let (points, labels) = two_view_points();
        let co = CoTraining::new(NadarayaWatson::new(), 1, Kernel::Gaussian, 1.0, 0.75)
            .unwrap()
            .max_rounds(0);
        let (_, rounds) = co.fit_points(&points, &labels).unwrap();
        assert_eq!(rounds, 0);
    }
}
