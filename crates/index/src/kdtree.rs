//! An exact KD-tree for low-to-moderate dimension.
//!
//! # Invariants
//!
//! * **Split invariant** — at every `Split { dim, value }` node, all
//!   points in the left subtree have `coord[dim] <= value` and all in
//!   the right have `coord[dim] >= value`. (`value` is the coordinate of
//!   the median under the total order `(coord, id)`, so both subtrees
//!   are nonempty and construction always terminates.)
//! * **Leaf bound** — leaves hold at most `2 * LEAF_CAPACITY` points,
//!   except for degenerate leaves whose points are all identical (no
//!   axis can split them; the scan degrades gracefully to brute force).
//! * **Deterministic build** — the split dimension is the axis of
//!   maximum spread (lowest axis on ties) and the median is selected
//!   under a total order, so the same point matrix always yields the
//!   same tree, node for node.
//!
//! # Exactness of pruning
//!
//! A far subtree is skipped only when `gap² > bound`, where `gap` is the
//! query's axis distance to the splitting plane and `bound` the current
//! k-th best (or radius²) squared distance. Every point beyond the plane
//! has axis distance ≥ `gap`, and IEEE-754 subtraction, squaring and
//! nonnegative summation are monotone under correct rounding, so its
//! *computed* `dist2` is ≥ the *computed* `gap²`: a pruned subtree can
//! never contain a point that beats the bound, and ties at the bound are
//! still visited (the comparison is strict). The tree therefore returns
//! exactly the brute-force neighbor set.

use crate::error::Result;
use crate::neighbor::{check_k, check_radius, KBest, Neighbor, NeighborSearch};
use crate::points::PointStore;
use gssl_linalg::Matrix;

/// Target leaf size; leaves split when they exceed twice this.
const LEAF_CAPACITY: usize = 16;

#[derive(Debug, Clone, PartialEq)]
enum Node {
    /// Point ids, ascending.
    Leaf { ids: Vec<usize> },
    /// Axis-aligned split; both children always exist.
    Split {
        dim: usize,
        value: f64,
        left: usize,
        right: usize,
    },
}

/// Exact KD-tree over a point cloud, with out-of-sample insertion.
///
/// Build is `O(n log n)`; a kNN query visits `O(log n)` nodes plus the
/// leaves intersecting the query ball, which for low dimension is
/// `O(k + log n)` in the average case. High dimension degrades toward a
/// full scan — [`crate::SpatialIndex`] routes those to the cover tree.
#[derive(Debug, Clone, PartialEq)]
pub struct KdTree {
    points: PointStore,
    nodes: Vec<Node>,
    root: usize,
}

/// Builds a subtree over `ids` (reordered in place), appending nodes and
/// returning the subtree root's node id.
fn build_subtree(store: &PointStore, ids: &mut [usize], nodes: &mut Vec<Node>) -> usize {
    debug_assert!(!ids.is_empty(), "subtrees are never built over zero ids");
    if ids.len() <= LEAF_CAPACITY {
        return push_leaf(nodes, ids);
    }
    // Split on the axis of maximum spread; lowest axis wins ties so the
    // choice is deterministic.
    let mut split_dim = 0;
    let mut best_spread = f64::NEG_INFINITY;
    for dim in 0..store.dim() {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &id in ids.iter() {
            let c = coord(store, id, dim);
            lo = lo.min(c);
            hi = hi.max(c);
        }
        let spread = hi - lo;
        if spread > best_spread {
            best_spread = spread;
            split_dim = dim;
        }
    }
    if !(best_spread > 0.0) {
        // All points coincide: no axis separates them. Keep one (large)
        // leaf rather than recurse forever.
        return push_leaf(nodes, ids);
    }
    let mid = ids.len() / 2;
    ids.select_nth_unstable_by(mid, |&a, &b| {
        coord(store, a, split_dim)
            .total_cmp(&coord(store, b, split_dim))
            .then(a.cmp(&b))
    });
    let value = coord(store, ids[mid], split_dim);
    let (lo_ids, hi_ids) = ids.split_at_mut(mid);
    let left = build_subtree(store, lo_ids, nodes);
    let right = build_subtree(store, hi_ids, nodes);
    nodes.push(Node::Split {
        dim: split_dim,
        value,
        left,
        right,
    });
    nodes.len() - 1
}

/// Appends a leaf holding `ids` (sorted ascending for determinism).
fn push_leaf(nodes: &mut Vec<Node>, ids: &mut [usize]) -> usize {
    ids.sort_unstable();
    nodes.push(Node::Leaf { ids: ids.to_vec() });
    nodes.len() - 1
}

/// Coordinate `dim` of stored point `id`.
///
/// hot
/// complexity: O(1)
fn coord(store: &PointStore, id: usize, dim: usize) -> f64 {
    debug_assert!(dim < store.dim(), "split dims come from 0..store.dim()");
    store.point(id)[dim]
}

impl KdTree {
    /// Number of tree nodes (leaves + splits) — a structural fingerprint
    /// used by determinism tests.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// hot
    /// complexity: O(n * d)
    fn search_knn(&self, node: usize, query: &[f64], exclude: Option<usize>, best: &mut KBest) {
        debug_assert!(node < self.nodes.len(), "child ids index self.nodes");
        match &self.nodes[node] {
            Node::Leaf { ids } => {
                for &i in ids {
                    if Some(i) == exclude {
                        continue;
                    }
                    best.offer(Neighbor {
                        index: i,
                        dist2: self.points.dist2_to(query, i),
                    });
                }
            }
            Node::Split {
                dim,
                value,
                left,
                right,
            } => {
                let diff = query[*dim] - value;
                let (near, far) = if diff <= 0.0 {
                    (*left, *right)
                } else {
                    (*right, *left)
                };
                self.search_knn(near, query, exclude, best);
                // Strict prune: visit the far side on ties at the bound so
                // a tied, lower-index neighbor is never lost.
                if diff * diff <= best.bound_dist2() {
                    self.search_knn(far, query, exclude, best);
                }
            }
        }
    }

    /// hot
    /// complexity: O(n * d)
    fn search_radius(&self, node: usize, query: &[f64], r2: f64, hits: &mut Vec<Neighbor>) {
        debug_assert!(node < self.nodes.len(), "child ids index self.nodes");
        match &self.nodes[node] {
            Node::Leaf { ids } => {
                for &i in ids {
                    let dist2 = self.points.dist2_to(query, i);
                    if dist2 <= r2 {
                        hits.push(Neighbor { index: i, dist2 });
                    }
                }
            }
            Node::Split {
                dim,
                value,
                left,
                right,
            } => {
                let diff = query[*dim] - value;
                if diff <= 0.0 {
                    self.search_radius(*left, query, r2, hits);
                    if diff * diff <= r2 {
                        self.search_radius(*right, query, r2, hits);
                    }
                } else {
                    self.search_radius(*right, query, r2, hits);
                    if diff * diff <= r2 {
                        self.search_radius(*left, query, r2, hits);
                    }
                }
            }
        }
    }
}

impl NeighborSearch for KdTree {
    /// complexity: O(n^2 * d)
    fn build(points: &Matrix) -> Result<Self> {
        let store = PointStore::from_matrix(points)?;
        let mut ids: Vec<usize> = (0..store.len()).collect();
        let mut nodes = Vec::new();
        let root = build_subtree(&store, &mut ids, &mut nodes);
        Ok(KdTree {
            points: store,
            nodes,
            root,
        })
    }

    fn len(&self) -> usize {
        self.points.len()
    }

    fn dim(&self) -> usize {
        self.points.dim()
    }

    fn point(&self, i: usize) -> &[f64] {
        self.points.point(i)
    }

    /// complexity: O(n)
    fn insert(&mut self, point: &[f64]) -> Result<usize> {
        let id = self.points.push(point)?;
        // Descend to the leaf that would contain the point (plane ties go
        // left, matching the build invariant left: coord <= value).
        let mut cur = self.root;
        loop {
            debug_assert!(cur < self.nodes.len(), "child ids index self.nodes");
            match &self.nodes[cur] {
                Node::Split {
                    dim,
                    value,
                    left,
                    right,
                    ..
                } => {
                    cur = if coord(&self.points, id, *dim) <= *value {
                        *left
                    } else {
                        *right
                    };
                }
                Node::Leaf { .. } => break,
            }
        }
        let full = match &mut self.nodes[cur] {
            Node::Leaf { ids } => {
                ids.push(id);
                ids.sort_unstable();
                ids.len() > 2 * LEAF_CAPACITY
            }
            Node::Split { .. } => false,
        };
        if full {
            // Rebuild the overflowing leaf into a balanced subtree in
            // place: append the new nodes, then swap the subtree root
            // into the leaf's slot so parent links stay valid.
            let mut ids = match std::mem::replace(&mut self.nodes[cur], Node::Leaf { ids: vec![] })
            {
                Node::Leaf { ids } => ids,
                Node::Split { .. } => Vec::new(),
            };
            let new_root = build_subtree(&self.points, &mut ids, &mut self.nodes);
            self.nodes.swap(cur, new_root);
        }
        Ok(id)
    }

    /// hot
    /// complexity: O(n * d)
    fn k_nearest_excluding(
        &self,
        query: &[f64],
        k: usize,
        exclude: Option<usize>,
    ) -> Result<Vec<Neighbor>> {
        self.points.check_query(query)?;
        check_k(self.len(), k, exclude)?;
        let mut best = KBest::new(k);
        self.search_knn(self.root, query, exclude, &mut best);
        Ok(best.into_sorted())
    }

    /// hot
    /// complexity: O(n * d)
    fn within_radius(&self, query: &[f64], radius: f64) -> Result<Vec<Neighbor>> {
        self.points.check_query(query)?;
        check_radius(radius)?;
        let mut hits = Vec::new();
        self.search_radius(self.root, query, radius * radius, &mut hits);
        hits.sort_by(Neighbor::key_cmp);
        Ok(hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::BruteForce;

    fn cloud(n: usize, d: usize) -> Matrix {
        Matrix::from_fn(n, d, |i, j| {
            (((i * 131 + j * 37 + 11) as f64) * 0.6180339887498949).fract()
        })
    }

    #[test]
    fn splits_respect_the_plane_invariant() {
        let pts = cloud(200, 2);
        let tree = KdTree::build(&pts).unwrap();
        // Walk every split and check both subtrees against the plane.
        fn check(tree: &KdTree, node: usize, f: &mut dyn FnMut(usize, usize, f64, bool)) {
            if let Node::Split {
                dim,
                value,
                left,
                right,
            } = &tree.nodes[node]
            {
                collect(tree, *left, &mut |id| f(id, *dim, *value, true));
                collect(tree, *right, &mut |id| f(id, *dim, *value, false));
                check(tree, *left, f);
                check(tree, *right, f);
            }
        }
        fn collect(tree: &KdTree, node: usize, f: &mut dyn FnMut(usize)) {
            match &tree.nodes[node] {
                Node::Leaf { ids } => ids.iter().for_each(|&i| f(i)),
                Node::Split { left, right, .. } => {
                    collect(tree, *left, f);
                    collect(tree, *right, f);
                }
            }
        }
        let mut checked = 0;
        check(&tree, tree.root, &mut |id, dim, value, is_left| {
            let c = tree.points.point(id)[dim];
            if is_left {
                assert!(c <= value, "left point {id} violates plane");
            } else {
                assert!(c >= value, "right point {id} violates plane");
            }
            checked += 1;
        });
        assert!(checked > 0, "tree must contain at least one split");
    }

    #[test]
    fn build_is_deterministic() {
        let pts = cloud(300, 3);
        let a = KdTree::build(&pts).unwrap();
        let b = KdTree::build(&pts).unwrap();
        assert_eq!(a, b, "same input must build the identical tree");
    }

    #[test]
    fn agrees_with_brute_force_on_a_grid() {
        let pts = cloud(257, 2);
        let tree = KdTree::build(&pts).unwrap();
        let brute = BruteForce::build(&pts).unwrap();
        for qi in 0..40 {
            let q = [(qi as f64) * 0.027 - 0.05, 1.0 - (qi as f64) * 0.024];
            let t = tree.k_nearest(&q, 7).unwrap();
            let b = brute.k_nearest(&q, 7).unwrap();
            assert_eq!(t, b, "query {qi}");
            let tr = tree.within_radius(&q, 0.2).unwrap();
            let br = brute.within_radius(&q, 0.2).unwrap();
            assert_eq!(tr, br, "radius query {qi}");
        }
    }

    #[test]
    fn identical_points_collapse_to_one_leaf() {
        let pts = Matrix::from_fn(100, 2, |_, _| 0.5);
        let tree = KdTree::build(&pts).unwrap();
        assert_eq!(tree.node_count(), 1, "no axis separates identical points");
        let out = tree.k_nearest(&[0.5, 0.5], 3).unwrap();
        // All distances zero: ties broken by index.
        assert_eq!(
            out.iter().map(|n| n.index).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn insert_keeps_queries_exact() {
        let pts = cloud(64, 2);
        let mut tree = KdTree::build(&pts).unwrap();
        let mut brute = BruteForce::build(&pts).unwrap();
        for i in 0..128 {
            let p = [
                ((i * 53 + 7) as f64 * 0.37).fract(),
                ((i * 29 + 3) as f64 * 0.61).fract(),
            ];
            assert_eq!(tree.insert(&p).unwrap(), brute.insert(&p).unwrap());
        }
        assert_eq!(tree.len(), 192);
        for qi in 0..25 {
            let q = [(qi as f64) * 0.04, (qi as f64) * 0.035];
            assert_eq!(
                tree.k_nearest(&q, 9).unwrap(),
                brute.k_nearest(&q, 9).unwrap(),
                "query {qi} after inserts"
            );
        }
    }
}
