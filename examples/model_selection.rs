//! Practical bandwidth selection: sweep h, read the graph diagnostics,
//! and validate on held-out labels.
//!
//! The paper removes the λ tuning burden (use the hard criterion), but the
//! bandwidth still matters: too small strands vertices, too large
//! collapses scores to the labeled mean (see the `spike_formation`
//! experiment). This example shows the workflow a practitioner follows:
//! `GraphReport` warnings first, then small-validation accuracy.
//!
//! ```text
//! cargo run --release --example model_selection
//! ```

use gssl::{HardCriterion, Problem};
use gssl_datasets::synthetic::two_moons;
use gssl_graph::{affinity::affinity_matrix, GraphReport, Kernel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(15);
    let ds = two_moons(240, 0.07, &mut rng)?;
    // 12 labeled points (6 per moon), the rest unlabeled. Use 6 of the 12
    // as a validation set: fit on 6, score the held-out 6.
    let train: Vec<usize> = (0..3).flat_map(|k| [k * 20, 120 + k * 20]).collect();
    let validation: Vec<usize> = (0..3).flat_map(|k| [10 + k * 20, 130 + k * 20]).collect();

    println!("two moons, 240 points, 6 train + 6 validation labels\n");
    println!(
        "{:>8} {:>10} {:>12} {:>12}  notes",
        "h", "components", "saturation", "val. acc"
    );

    let mut best: Option<(f64, f64)> = None;
    for &h in &[0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 3.0, 10.0] {
        // Arrange with only the 6 training labels revealed; the validation
        // points are "unlabeled" to the solver but we know their truth.
        let ssl = ds.arrange(&train)?;
        let w = affinity_matrix(&ssl.inputs, Kernel::Gaussian, h)?;
        let report = GraphReport::compute(&w, 1e-9)?;

        let note = report
            .warnings()
            .first()
            .cloned()
            .unwrap_or_else(|| "ok".to_owned());
        let accuracy =
            match Problem::new(w, ssl.labels.clone()).and_then(|p| HardCriterion::new().fit(&p)) {
                Ok(scores) => {
                    // Locate validation points inside the arranged order.
                    let mut correct = 0;
                    for &v in &validation {
                        let row = ssl
                            .original_order
                            .iter()
                            .position(|&o| o == v)
                            .expect("validation point present");
                        let predicted = scores.all()[row] >= 0.5;
                        if predicted == (ds.targets()[v] > 0.5) {
                            correct += 1;
                        }
                    }
                    let acc = correct as f64 / validation.len() as f64;
                    if best.map_or(true, |(_, b)| acc > b) {
                        best = Some((h, acc));
                    }
                    format!("{acc:.2}")
                }
                Err(error) => format!("fit failed: {error}"),
            };
        println!(
            "{h:>8} {:>10} {:>12.3} {:>12}  {}",
            report.component_count,
            report.saturation,
            accuracy,
            truncate(&note, 48)
        );
    }

    let (h_best, acc_best) = best.expect("at least one bandwidth fits");
    println!("\nselected h = {h_best} (validation accuracy {acc_best:.2})");
    assert!(
        acc_best >= 0.99,
        "some bandwidth should solve the validation set"
    );
    Ok(())
}

fn truncate(text: &str, limit: usize) -> String {
    if text.len() <= limit {
        text.to_owned()
    } else {
        format!("{}…", &text[..limit])
    }
}
