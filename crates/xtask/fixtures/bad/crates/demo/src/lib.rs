// Fixture crate for the gssl-xtask self-test. Every rule the checker
// knows is violated exactly where the integration test expects:
// the root attributes are absent (2x root_attrs), and the items below
// seed one violation each unless noted.

pub fn undocumented() -> usize {
    0
}

/// Calls a panicking accessor in library code.
pub fn risky(v: Option<usize>) -> usize {
    v.unwrap()
}

/// Compares a float against a literal bare.
pub fn zeroish(x: f64) -> bool {
    x == 0.0
}

/// Not `#[non_exhaustive]`, and the variant is undocumented (2x
/// error_enum).
pub enum DemoError {
    Broken,
}

/// Carries an inline marker that no allowlist entry registers.
pub fn suppressed(x: f64) -> bool {
    x != 1.0 // lint: allow(float_eq)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        assert!(super::zeroish(0.0));
        assert_eq!(super::risky(Some(7)), 7);
        let raw = 1.0_f64;
        assert!(raw == 1.0);
    }
}
