//! One-vs-rest multiclass wrapper over any binary transductive criterion.
//!
//! The COIL benchmark is natively a 6-class problem that the paper reduces
//! to binary; this wrapper handles the multiclass case directly, scoring
//! one indicator problem per class and predicting the argmax — the
//! standard extension of harmonic functions to `k` classes.

use crate::error::{Error, Result};
use crate::problem::Problem;
use crate::traits::TransductiveModel;
use gssl_linalg::Matrix;

/// Multiclass scores: one column of per-class evidence per vertex, and the
/// argmax predictions.
#[derive(Debug, Clone, PartialEq)]
pub struct MulticlassScores {
    /// `(n + m) × k` matrix of per-class scores.
    scores: Matrix,
    /// Number of labeled vertices.
    n_labeled: usize,
}

impl MulticlassScores {
    /// Assembles scores from a prebuilt `(n + m) × k` matrix.
    pub(crate) fn from_matrix(scores: Matrix, n_labeled: usize) -> Self {
        MulticlassScores { scores, n_labeled }
    }

    /// Per-class score matrix (rows = vertices, columns = classes).
    /// shape: (n, k)
    pub fn scores(&self) -> &Matrix {
        &self.scores
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.scores.cols()
    }

    /// Argmax class of every vertex.
    pub fn predictions(&self) -> Vec<usize> {
        (0..self.scores.rows())
            .map(|i| {
                let row = self.scores.row(i);
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map_or(0, |(k, _)| k)
            })
            .collect()
    }

    /// Argmax class of the unlabeled vertices only.
    pub fn unlabeled_predictions(&self) -> Vec<usize> {
        self.predictions().split_off(self.n_labeled)
    }
}

/// One-vs-rest reduction: fits the wrapped binary criterion once per class
/// with indicator labels.
#[derive(Debug)]
pub struct OneVsRest<M> {
    model: M,
    class_count: usize,
    executor: gssl_runtime::Executor,
}

impl<M: TransductiveModel> OneVsRest<M> {
    /// Wraps `model` for a `class_count`-way problem.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `class_count < 2`.
    pub fn new(model: M, class_count: usize) -> Result<Self> {
        if class_count < 2 {
            return Err(Error::InvalidParameter {
                message: format!("multiclass needs >= 2 classes, got {class_count}"),
            });
        }
        Ok(OneVsRest {
            model,
            class_count,
            executor: gssl_runtime::Executor::default(),
        })
    }

    /// Borrows the wrapped binary model.
    pub fn model(&self) -> &M {
        &self.model
    }
}

impl<M: TransductiveModel + Sync> OneVsRest<M> {
    /// Fits classes as parallel tasks on `executor` — one indicator
    /// problem per task. Scores are bit-identical to the sequential fit:
    /// every class is solved by exactly one worker with the sequential
    /// code, and columns are assembled in class order.
    #[must_use]
    pub fn with_executor(mut self, executor: gssl_runtime::Executor) -> Self {
        self.executor = executor;
        self
    }

    /// Fits one indicator problem per class (in parallel when an executor
    /// was attached with [`OneVsRest::with_executor`]).
    ///
    /// `class_labels[i]` is the class of labeled vertex `i` and must be
    /// `< class_count`.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidProblem`] when labels are out of range or counts
    ///   mismatch the weight matrix.
    /// * Propagates per-class fitting errors from the wrapped model (the
    ///   lowest-class error wins under parallel execution, matching the
    ///   sequential loop's first failure).
    /// deterministic
    pub fn fit(&self, weights: &Matrix, class_labels: &[usize]) -> Result<MulticlassScores> {
        if let Some(&bad) = class_labels.iter().find(|&&c| c >= self.class_count) {
            return Err(Error::InvalidProblem {
                message: format!(
                    "class label {bad} out of range for {} classes",
                    self.class_count
                ),
            });
        }
        let n = class_labels.len();
        let total = weights.rows();
        let classes: Vec<usize> = (0..self.class_count).collect();
        let columns: Vec<Vec<f64>> = self.executor.map(&classes, |_, &class| {
            let indicator: Vec<f64> = class_labels
                .iter()
                .map(|&c| if c == class { 1.0 } else { 0.0 })
                .collect();
            let problem = Problem::new(weights.clone(), indicator)?;
            Ok::<_, Error>(self.model.fit(&problem)?.all().to_vec())
        })?;
        let mut scores = Matrix::zeros(total, self.class_count);
        for (class, column) in columns.iter().enumerate() {
            for (i, &s) in column.iter().enumerate() {
                scores.set(i, class, s);
            }
        }
        Ok(MulticlassScores {
            scores,
            n_labeled: n,
        })
    }
}

impl OneVsRest<crate::hard::HardCriterion> {
    /// Shared-factorization fast path for the hard criterion: the system
    /// `D₂₂ − W₂₂` does not depend on the class, so it is factored once
    /// and all class right-hand sides are solved through `solve_matrix`.
    /// Produces scores identical to [`OneVsRest::fit`] at `O(m³ + k·m²)`
    /// instead of `O(k·m³)` cost.
    ///
    /// # Errors
    ///
    /// Same contract as [`OneVsRest::fit`].
    /// deterministic
    pub fn fit_factored(
        &self,
        weights: &Matrix,
        class_labels: &[usize],
    ) -> Result<MulticlassScores> {
        self.model
            .fit_multiclass(weights, class_labels, self.class_count)
    }
}

impl<M: TransductiveModel> TransductiveModel for OneVsRest<M> {
    /// Treats the problem's (binary) labels as classes `{0, 1}` and
    /// returns the positive-class scores, making `OneVsRest` usable
    /// wherever a binary model is expected.
    fn fit(&self, problem: &Problem) -> Result<crate::problem::Scores> {
        self.model.fit(problem)
    }

    fn name(&self) -> String {
        format!("one-vs-rest({})", self.model.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hard::HardCriterion;

    /// Three tight clusters of two vertices each; one labeled per cluster.
    fn three_cluster_weights() -> (Matrix, Vec<usize>) {
        let mut w = Matrix::identity(6);
        // Arrange labeled first: vertices 0,1,2 labeled with classes 0,1,2;
        // vertices 3,4,5 unlabeled, each tied to one labeled vertex.
        let ties = [(0usize, 3usize), (1, 4), (2, 5)];
        for &(a, b) in &ties {
            w.set(a, b, 0.9);
            w.set(b, a, 0.9);
        }
        // Weak background connectivity so the graph is connected.
        for i in 0..6 {
            for j in (i + 1)..6 {
                if w.get(i, j) == 0.0 {
                    w.set(i, j, 0.01);
                    w.set(j, i, 0.01);
                }
            }
        }
        (w, vec![0, 1, 2])
    }

    #[test]
    fn recovers_cluster_classes() {
        let (w, labels) = three_cluster_weights();
        let ovr = OneVsRest::new(HardCriterion::new(), 3).unwrap();
        let scores = ovr.fit(&w, &labels).unwrap();
        assert_eq!(scores.class_count(), 3);
        assert_eq!(scores.predictions()[..3], [0, 1, 2]);
        assert_eq!(scores.unlabeled_predictions(), vec![0, 1, 2]);
    }

    #[test]
    fn per_class_scores_are_probability_like() {
        let (w, labels) = three_cluster_weights();
        let ovr = OneVsRest::new(HardCriterion::new(), 3).unwrap();
        let scores = ovr.fit(&w, &labels).unwrap();
        for i in 0..6 {
            let row_sum: f64 = scores.scores().row(i).iter().sum();
            // Harmonic one-vs-rest scores sum to 1 exactly (the indicator
            // vectors sum to the all-ones labeling).
            assert!((row_sum - 1.0).abs() < 1e-9, "row {i} sums to {row_sum}");
        }
    }

    #[test]
    fn shared_factorization_matches_per_class_path() {
        // The satellite contract: factoring `D₂₂ − W₂₂` once and solving
        // all class columns through `solve_matrix` must reproduce the
        // per-class refactoring path score for score.
        let (w, labels) = three_cluster_weights();
        let ovr = OneVsRest::new(HardCriterion::new(), 3).unwrap();
        let per_class = ovr.fit(&w, &labels).unwrap();
        let factored = ovr.fit_factored(&w, &labels).unwrap();
        assert_eq!(factored.class_count(), per_class.class_count());
        for i in 0..6 {
            for c in 0..3 {
                let a = per_class.scores().get(i, c);
                let b = factored.scores().get(i, c);
                assert!(
                    (a - b).abs() < 1e-12,
                    "vertex {i} class {c}: per-class {a} vs factored {b}"
                );
            }
        }
        assert_eq!(factored.predictions(), per_class.predictions());
        assert_eq!(
            factored.unlabeled_predictions(),
            per_class.unlabeled_predictions()
        );
    }

    #[test]
    fn shared_factorization_agrees_across_backends() {
        use crate::hard::HardSolver;
        let (w, labels) = three_cluster_weights();
        let reference = HardCriterion::new().fit_multiclass(&w, &labels, 3).unwrap();
        for solver in [HardSolver::Lu, HardSolver::Cholesky] {
            let scores = HardCriterion::new()
                .solver(solver)
                .fit_multiclass(&w, &labels, 3)
                .unwrap();
            for i in 0..6 {
                for c in 0..3 {
                    assert!(
                        (scores.scores().get(i, c) - reference.scores().get(i, c)).abs() < 1e-10
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_one_vs_rest_is_bit_identical_to_sequential() {
        let (w, labels) = three_cluster_weights();
        let sequential = OneVsRest::new(HardCriterion::new(), 3)
            .unwrap()
            .fit(&w, &labels)
            .unwrap();
        for workers in [1, 2, 4] {
            let parallel = OneVsRest::new(HardCriterion::new(), 3)
                .unwrap()
                .with_executor(gssl_runtime::Executor::with_workers(workers))
                .fit(&w, &labels)
                .unwrap();
            assert_eq!(
                parallel.scores().as_slice(),
                sequential.scores().as_slice(),
                "{workers} workers diverged"
            );
            assert_eq!(parallel.predictions(), sequential.predictions());
        }
    }

    #[test]
    fn fit_multiclass_validates_parameters() {
        let (w, _) = three_cluster_weights();
        assert!(HardCriterion::new().fit_multiclass(&w, &[0, 1], 1).is_err());
        assert!(HardCriterion::new()
            .fit_multiclass(&w, &[0, 1, 7], 3)
            .is_err());
        assert!(HardCriterion::new()
            .fit_multiclass(&Matrix::zeros(2, 3), &[0, 1], 2)
            .is_err());
    }

    #[test]
    fn validates_parameters() {
        assert!(OneVsRest::new(HardCriterion::new(), 1).is_err());
        let (w, _) = three_cluster_weights();
        let ovr = OneVsRest::new(HardCriterion::new(), 2).unwrap();
        assert!(ovr.fit(&w, &[0, 1, 5]).is_err()); // class 5 out of range
    }

    #[test]
    fn name_wraps_inner_model() {
        let ovr = OneVsRest::new(HardCriterion::new(), 3).unwrap();
        assert!(ovr.name().contains("hard"));
        assert!(ovr.model().solver_kind() == &crate::hard::HardSolver::Cholesky);
    }
}
