//! The workspace allowlist for justified lint suppressions.
//!
//! Suppressing a violation takes *two* coordinated artifacts:
//!
//! 1. an inline `// lint: allow(<rule>)` marker on the offending line, and
//! 2. a registration here — one line per file/rule pair in
//!    `crates/xtask/allow.list`, carrying the justification.
//!
//! The checker reconciles the two directions: a marker with no
//! registration is an `allow_unlisted` violation, and a registration whose
//! file no longer carries a marker is `allow_stale`. This keeps the
//! allowlist an accurate, reviewed inventory of every sanctioned
//! exception.

use crate::rules::{InlineAllow, Rule, Violation};

/// One registered exception: a file/rule pair plus its justification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Workspace-relative file path (forward slashes).
    pub file: String,
    /// The rule being allowed in that file.
    pub rule: Rule,
    /// Free-text reason recorded for reviewers.
    pub reason: String,
    /// 1-based line in `allow.list` (for error reporting).
    pub line: usize,
}

/// Parses the allowlist text.
///
/// Format: one entry per line, `<path> <rule> <reason…>`; blank lines and
/// `#` comments are skipped. Malformed lines are returned as violations
/// against the allowlist file itself.
#[must_use]
pub fn parse(text: &str, list_path: &str) -> (Vec<Entry>, Vec<Violation>) {
    let mut entries = Vec::new();
    let mut violations = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, char::is_whitespace);
        let file = parts.next().unwrap_or("").to_owned();
        let rule_key = parts.next().unwrap_or("");
        let reason = parts.next().unwrap_or("").trim().to_owned();
        match Rule::from_key(rule_key) {
            Some(rule) if !reason.is_empty() => entries.push(Entry {
                file,
                rule,
                reason,
                line: i + 1,
            }),
            Some(_) => violations.push(Violation {
                rule: Rule::AllowStale,
                file: list_path.to_owned(),
                line: i + 1,
                message: "allowlist entry has no justification text".to_owned(),
            }),
            None => violations.push(Violation {
                rule: Rule::AllowStale,
                file: list_path.to_owned(),
                line: i + 1,
                message: format!("unknown rule `{rule_key}` in allowlist"),
            }),
        }
    }
    (entries, violations)
}

/// Cross-checks inline markers against registrations.
///
/// Returns `allow_unlisted` for markers without a registration and
/// `allow_stale` for registrations without a marker.
#[must_use]
pub fn reconcile(entries: &[Entry], allows: &[InlineAllow], list_path: &str) -> Vec<Violation> {
    let mut violations = Vec::new();
    for allow in allows {
        let registered = entries
            .iter()
            .any(|e| e.file == allow.file && e.rule == allow.rule);
        if !registered {
            violations.push(Violation {
                rule: Rule::AllowUnlisted,
                file: allow.file.clone(),
                line: allow.line,
                message: format!(
                    "inline `lint: allow({})` is not registered in {list_path}",
                    allow.rule.key()
                ),
            });
        }
    }
    for entry in entries {
        let used = allows
            .iter()
            .any(|a| a.file == entry.file && a.rule == entry.rule);
        if !used {
            violations.push(Violation {
                rule: Rule::AllowStale,
                file: list_path.to_owned(),
                line: entry.line,
                message: format!(
                    "stale allowlist entry: {} no longer carries `lint: allow({})`",
                    entry.file,
                    entry.rule.key()
                ),
            });
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_comments() {
        let text = "# comment\n\ncrates/a/src/lib.rs no_panic structurally valid\n";
        let (entries, violations) = parse(text, "allow.list");
        assert_eq!(entries.len(), 1);
        assert!(violations.is_empty());
        assert_eq!(entries[0].rule, Rule::NoPanic);
        assert_eq!(entries[0].reason, "structurally valid");
    }

    #[test]
    fn rejects_missing_reason_and_unknown_rule() {
        let (entries, violations) = parse("a.rs no_panic\nb.rs bogus_rule why\n", "allow.list");
        assert!(entries.is_empty());
        assert_eq!(violations.len(), 2);
    }

    #[test]
    fn reconcile_finds_unlisted_and_stale() {
        let entries = vec![Entry {
            file: "a.rs".into(),
            rule: Rule::NoPanic,
            reason: "ok".into(),
            line: 1,
        }];
        let allows = vec![InlineAllow {
            file: "b.rs".into(),
            line: 3,
            rule: Rule::FloatEq,
        }];
        let violations = reconcile(&entries, &allows, "allow.list");
        assert_eq!(violations.len(), 2);
        assert!(violations.iter().any(|v| v.rule == Rule::AllowUnlisted));
        assert!(violations.iter().any(|v| v.rule == Rule::AllowStale));
    }

    #[test]
    fn matched_pairs_are_clean() {
        let entries = vec![Entry {
            file: "a.rs".into(),
            rule: Rule::NoPanic,
            reason: "ok".into(),
            line: 1,
        }];
        let allows = vec![InlineAllow {
            file: "a.rs".into(),
            line: 9,
            rule: Rule::NoPanic,
        }];
        assert!(reconcile(&entries, &allows, "allow.list").is_empty());
    }
}
