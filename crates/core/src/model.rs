//! A high-level facade assembling the full pipeline: points → kernel graph
//! → criterion → scores.

use crate::error::{Error, Result};
use crate::hard::HardCriterion;
use crate::llgc::LocalGlobalConsistency;
use crate::mean::MeanPredictor;
use crate::nadaraya_watson::NadarayaWatson;
use crate::plaplacian::PLaplacian;
use crate::problem::{Problem, Scores};
use crate::soft::SoftCriterion;
use crate::traits::TransductiveModel;
use gssl_graph::{Bandwidth, Kernel};
use gssl_linalg::Matrix;

/// Which criterion the model runs.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Criterion {
    /// The hard criterion (Eq. 1) — consistent per Theorem II.1.
    Hard,
    /// The soft criterion (Eq. 2) at the given `λ`.
    Soft(f64),
    /// Nadaraya–Watson kernel regression (Eq. 6).
    NadarayaWatson,
    /// The λ = ∞ labeled-mean predictor (Proposition II.2).
    LabeledMean,
    /// Local and global consistency (Zhou et al., the paper's ref \[12\])
    /// at the given α ∈ (0, 1).
    LocalGlobalConsistency(f64),
    /// ℓp-Laplacian regularization (the paper's ref \[19\]) at the given
    /// exponent p ≥ 1.
    PLaplacian(f64),
}

/// Builder-configured end-to-end model.
///
/// ```
/// use gssl::{Criterion, GsslModel};
/// use gssl_graph::{Bandwidth, Kernel};
/// use gssl_linalg::Matrix;
/// # fn main() -> Result<(), gssl::Error> {
/// let points = Matrix::from_rows(&[&[0.0], &[1.0], &[0.1], &[0.9]])?;
/// let scores = GsslModel::builder()
///     .kernel(Kernel::Gaussian)
///     .bandwidth(Bandwidth::Fixed(0.5))
///     .criterion(Criterion::Hard)
///     .fit(&points, &[0.0, 1.0])?;
/// // The unlabeled point near 0 scores low, the one near 1 scores high.
/// assert!(scores.unlabeled()[0] < 0.5);
/// assert!(scores.unlabeled()[1] > 0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GsslModelBuilder {
    kernel: Kernel,
    bandwidth: Bandwidth,
    criterion: Criterion,
    bandwidth_rate_n: Option<usize>,
}

impl Default for GsslModelBuilder {
    fn default() -> Self {
        GsslModelBuilder {
            kernel: Kernel::Gaussian,
            bandwidth: Bandwidth::MedianHeuristic,
            criterion: Criterion::Hard,
            bandwidth_rate_n: None,
        }
    }
}

impl GsslModelBuilder {
    /// Selects the smoothing kernel (default: Gaussian RBF, as in the
    /// paper's experiments).
    pub fn kernel(&mut self, kernel: Kernel) -> &mut Self {
        self.kernel = kernel;
        self
    }

    /// Selects the bandwidth rule (default: median heuristic).
    pub fn bandwidth(&mut self, bandwidth: Bandwidth) -> &mut Self {
        self.bandwidth = bandwidth;
        self
    }

    /// Overrides the sample size used by [`Bandwidth::PaperRate`] (the
    /// paper resolves its rate with the labeled count `n`).
    pub fn bandwidth_rate_n(&mut self, n: usize) -> &mut Self {
        self.bandwidth_rate_n = Some(n);
        self
    }

    /// Selects the criterion (default: hard).
    pub fn criterion(&mut self, criterion: Criterion) -> &mut Self {
        self.criterion = criterion;
        self
    }

    /// Builds the problem and fits the configured criterion.
    ///
    /// `points` holds all inputs (labeled rows first); `labels` are the
    /// observed responses of the first rows.
    ///
    /// # Errors
    ///
    /// Propagates graph-construction, problem-validation and solver
    /// errors.
    pub fn fit(&self, points: &Matrix, labels: &[f64]) -> Result<Scores> {
        let (problem, _) = self.problem(points, labels)?;
        self.fit_problem(&problem)
    }

    /// Builds the [`Problem`] (resolving the bandwidth rule) without
    /// fitting — exposed so callers can inspect the graph or reuse it
    /// across criteria (as the paper's λ sweeps do). Returns the problem
    /// and the resolved bandwidth.
    ///
    /// # Errors
    ///
    /// Propagates bandwidth-resolution and validation errors.
    pub fn problem(&self, points: &Matrix, labels: &[f64]) -> Result<(Problem, f64)> {
        let rate_n = self.bandwidth_rate_n.unwrap_or(labels.len());
        let h = self
            .bandwidth
            .resolve(points, Some(rate_n))
            .map_err(Error::from)?;
        let problem = Problem::from_points(points, labels.to_vec(), self.kernel, h)?;
        Ok((problem, h))
    }

    /// Fits the configured criterion on a prebuilt problem.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn fit_problem(&self, problem: &Problem) -> Result<Scores> {
        self.to_model()?.fit(problem)
    }

    /// Materializes the configured criterion as a trait object.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for an invalid `λ`.
    pub fn to_model(&self) -> Result<Box<dyn TransductiveModel>> {
        Ok(match self.criterion {
            Criterion::Hard => Box::new(HardCriterion::new()),
            Criterion::Soft(lambda) => Box::new(SoftCriterion::new(lambda)?),
            Criterion::NadarayaWatson => Box::new(NadarayaWatson::new()),
            Criterion::LabeledMean => Box::new(MeanPredictor::new()),
            Criterion::LocalGlobalConsistency(alpha) => {
                Box::new(LocalGlobalConsistency::new(alpha)?)
            }
            Criterion::PLaplacian(p) => Box::new(PLaplacian::new(p)?),
        })
    }
}

/// Entry point for the builder API.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GsslModel {
    _private: (),
}

impl GsslModel {
    /// Starts configuring a model.
    pub fn builder() -> GsslModelBuilder {
        GsslModelBuilder::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_points() -> Matrix {
        Matrix::from_rows(&[&[0.0], &[1.0], &[0.05], &[0.95], &[0.5]]).unwrap()
    }

    #[test]
    fn default_builder_fits_hard_criterion() {
        let scores = GsslModel::builder()
            .fit(&line_points(), &[0.0, 1.0])
            .unwrap();
        assert_eq!(scores.labeled(), &[0.0, 1.0]);
        assert_eq!(scores.unlabeled().len(), 3);
    }

    #[test]
    fn criteria_order_as_paper_predicts() {
        // On an easy geometry the hard criterion tracks the structure while
        // the labeled-mean limit is constant.
        let points = line_points();
        let labels = [0.0, 1.0];
        let mut builder = GsslModel::builder();
        builder
            .kernel(Kernel::Gaussian)
            .bandwidth(Bandwidth::Fixed(0.4));
        builder.criterion(Criterion::Hard);
        let hard = builder.fit(&points, &labels).unwrap();
        builder.criterion(Criterion::LabeledMean);
        let mean = builder.fit(&points, &labels).unwrap();
        assert!(hard.unlabeled()[0] < 0.3);
        assert!(hard.unlabeled()[1] > 0.7);
        for &s in mean.unlabeled() {
            assert!((s - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn problem_exposes_resolved_bandwidth() {
        let mut builder = GsslModel::builder();
        builder.bandwidth(Bandwidth::Fixed(0.7));
        let (problem, h) = builder.problem(&line_points(), &[0.0, 1.0]).unwrap();
        assert_eq!(h, 0.7);
        assert_eq!(problem.n_labeled(), 2);
        assert_eq!(problem.n_unlabeled(), 3);
    }

    #[test]
    fn paper_rate_uses_labeled_count_by_default() {
        let mut builder = GsslModel::builder();
        builder.bandwidth(Bandwidth::PaperRate);
        let (_, h) = builder.problem(&line_points(), &[0.0, 1.0]).unwrap();
        let expected = gssl_graph::bandwidth::paper_rate(2, 1).unwrap();
        assert!((h - expected).abs() < 1e-15);
        builder.bandwidth_rate_n(100);
        let (_, h100) = builder.problem(&line_points(), &[0.0, 1.0]).unwrap();
        assert!((h100 - gssl_graph::bandwidth::paper_rate(100, 1).unwrap()).abs() < 1e-15);
    }

    #[test]
    fn soft_lambda_validation_surfaces() {
        let mut builder = GsslModel::builder();
        builder.criterion(Criterion::Soft(-1.0));
        assert!(builder.fit(&line_points(), &[0.0, 1.0]).is_err());
    }

    #[test]
    fn all_criteria_produce_scores() {
        let criteria = [
            Criterion::Hard,
            Criterion::Soft(0.1),
            Criterion::NadarayaWatson,
            Criterion::LabeledMean,
            Criterion::LocalGlobalConsistency(0.8),
            Criterion::PLaplacian(3.0),
        ];
        for criterion in criteria {
            let mut builder = GsslModel::builder();
            builder
                .bandwidth(Bandwidth::Fixed(0.5))
                .criterion(criterion);
            let scores = builder.fit(&line_points(), &[0.0, 1.0]).unwrap();
            assert_eq!(scores.unlabeled().len(), 3, "{criterion:?}");
        }
    }
}
