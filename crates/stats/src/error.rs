//! Error type for the statistics substrate.

use std::fmt;

/// Errors returned by distributions, metrics and resampling utilities.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// Inputs that must be paired have different lengths.
    LengthMismatch {
        /// Human-readable name of the failing operation.
        operation: &'static str,
        /// Length of the first input.
        left: usize,
        /// Length of the second input.
        right: usize,
    },
    /// The input is empty but the operation needs data.
    EmptyInput {
        /// What the operation needed.
        required: &'static str,
    },
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Description of the violated requirement.
        message: String,
    },
    /// A metric is undefined for the given data (e.g. AUC with a single
    /// class).
    Undefined {
        /// Why the quantity is undefined.
        reason: String,
    },
    /// An underlying linear-algebra operation failed (e.g. a covariance
    /// matrix that is not positive definite).
    Linalg(gssl_linalg::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::LengthMismatch {
                operation,
                left,
                right,
            } => write!(
                f,
                "length mismatch in {operation}: {left} vs {right} elements"
            ),
            Error::EmptyInput { required } => {
                write!(f, "input is too small: {required} required")
            }
            Error::InvalidParameter { message } => write!(f, "invalid parameter: {message}"),
            Error::Undefined { reason } => write!(f, "quantity is undefined: {reason}"),
            Error::Linalg(inner) => write!(f, "linear algebra error: {inner}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Linalg(inner) => Some(inner),
            _ => None,
        }
    }
}

impl From<gssl_linalg::Error> for Error {
    fn from(inner: gssl_linalg::Error) -> Self {
        Error::Linalg(inner)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = Error::LengthMismatch {
            operation: "rmse",
            left: 3,
            right: 4,
        };
        assert!(e.to_string().contains("rmse"));
        assert!(Error::EmptyInput { required: "scores" }
            .to_string()
            .contains("scores"));
        assert!(Error::Undefined {
            reason: "single class".to_owned()
        }
        .to_string()
        .contains("single class"));
    }

    #[test]
    fn from_linalg() {
        let err: Error = gssl_linalg::Error::NotPositiveDefinite { pivot: 2 }.into();
        assert!(err.to_string().contains("positive definite"));
    }
}
