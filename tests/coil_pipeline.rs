//! End-to-end test of the Figure 5 pipeline on the synthetic COIL
//! library: render → median-heuristic RBF graph → criteria → AUC.

use gssl::{HardCriterion, Problem, SoftCriterion};
use gssl_datasets::coil::SyntheticCoil;
use gssl_graph::{affinity::affinity_matrix, bandwidth::median_heuristic, Kernel};
use gssl_stats::roc::auc;
use gssl_stats::split::labeled_unlabeled_split;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct CoilRun {
    hard_auc: f64,
    soft_small_auc: f64,
    soft_large_auc: f64,
}

fn run_pipeline(labeled_fraction: f64, seed: u64) -> CoilRun {
    let mut rng = StdRng::seed_from_u64(seed);
    let coil = SyntheticCoil::builder()
        .images_per_class(25)
        .build(&mut rng)
        .expect("rendering succeeds");
    let dataset = coil.dataset();
    let sigma = median_heuristic(dataset.inputs()).expect("spread pixels");
    let n_labeled = (dataset.len() as f64 * labeled_fraction) as usize;
    let split = labeled_unlabeled_split(dataset.len(), n_labeled, &mut rng).expect("split");
    let ssl = dataset.arrange(&split.train).expect("arrangement");
    let w = affinity_matrix(&ssl.inputs, Kernel::Gaussian, sigma).expect("affinity");
    let problem = Problem::new(w, ssl.labels.clone()).expect("valid problem");
    let truth = ssl.hidden_targets_binary();
    let score = |s: &gssl::Scores| auc(s.unlabeled(), &truth).expect("both classes present");
    CoilRun {
        hard_auc: score(&HardCriterion::new().fit(&problem).expect("hard")),
        soft_small_auc: score(
            &SoftCriterion::new(0.1)
                .unwrap()
                .fit(&problem)
                .expect("soft"),
        ),
        soft_large_auc: score(
            &SoftCriterion::new(5.0)
                .unwrap()
                .fit(&problem)
                .expect("soft"),
        ),
    }
}

#[test]
fn hard_criterion_is_informative_at_80_20() {
    let run = run_pipeline(0.8, 1);
    assert!(
        run.hard_auc > 0.6,
        "AUC should be clearly better than chance, got {}",
        run.hard_auc
    );
}

#[test]
fn auc_ordering_matches_figure_5() {
    // Average three seeds to stabilize the ordering.
    let mut hard = 0.0;
    let mut small = 0.0;
    let mut large = 0.0;
    for seed in 0..3 {
        let run = run_pipeline(0.5, 10 + seed);
        hard += run.hard_auc;
        small += run.soft_small_auc;
        large += run.soft_large_auc;
    }
    assert!(
        hard >= small && small >= large,
        "expected AUC(hard) >= AUC(0.1) >= AUC(5), got {hard} / {small} / {large}"
    );
}

#[test]
fn more_labels_give_higher_hard_auc() {
    let low = run_pipeline(0.1, 3);
    let high = run_pipeline(0.8, 3);
    assert!(
        high.hard_auc > low.hard_auc,
        "80% labels ({}) should beat 10% labels ({})",
        high.hard_auc,
        low.hard_auc
    );
}

#[test]
fn coil_metadata_is_consistent_with_pipeline() {
    let mut rng = StdRng::seed_from_u64(9);
    let coil = SyntheticCoil::builder()
        .images_per_class(10)
        .build(&mut rng)
        .expect("rendering succeeds");
    // Binary grouping covers classes 0-2 as positives, 3-5 as negatives.
    for (&class, &target) in coil.class_labels().iter().zip(coil.dataset().targets()) {
        assert_eq!(target > 0.5, class < 3);
    }
    // Labeled/unlabeled arrangement preserves targets through the split.
    let split = labeled_unlabeled_split(coil.dataset().len(), 30, &mut rng).expect("split");
    let ssl = coil.dataset().arrange(&split.train).expect("arrangement");
    for (&orig_idx, &label) in split.train.iter().zip(&ssl.labels) {
        assert_eq!(coil.dataset().targets()[orig_idx], label);
    }
}
