//! # gssl — graph-based semi-supervised learning
//!
//! A production-quality Rust reproduction of **"On Consistency of
//! Graph-based Semi-supervised Learning"** (Chengan Du, Yunpeng Zhao,
//! Feng Wang — ICDCS 2019, arXiv:1703.06177).
//!
//! Given `n` labeled and `m` unlabeled points joined by a similarity graph
//! `W`, the crate implements both criteria the paper analyzes:
//!
//! * [`HardCriterion`] — minimize `Σ w_ij (f_i − f_j)²` with `f_i = Y_i`
//!   clamped on labeled points; closed form
//!   `f_U = (D₂₂ − W₂₂)⁻¹ W₂₁ Y` (Eq. 5). **Consistent** under the
//!   conditions of Theorem II.1.
//! * [`SoftCriterion`] — the "loss + penalty" relaxation
//!   `Σ(Y_i − f_i)² + (λ/2)Σ w_ij (f_i − f_j)²` with the explicit block
//!   solution of Eq. 4. **Inconsistent** for large λ
//!   (Proposition II.2); equal to the hard criterion at λ = 0
//!   (Proposition II.1).
//! * [`NadarayaWatson`] — the kernel-regression estimator (Eq. 6) the
//!   consistency proof couples the hard criterion to.
//! * [`MeanPredictor`] — the λ = ∞ limit (constant labeled mean).
//! * [`LabelPropagation`] — the iterative harmonic solver, plus CG and
//!   direct backends selectable on [`HardCriterion`].
//! * [`theory`] — measurable versions of the proof's quantities
//!   (tiny-element bound, Neumann truncation, coupling gap).
//! * Extensions: [`OneVsRest`] multiclass, [`cmn`] class-mass
//!   normalization, [`LocalGlobalConsistency`] (the paper's ref \[12\]),
//!   [`PLaplacian`] (ref \[19\]), [`SelfTraining`] (ref \[3\]) and
//!   [`CoTraining`] (ref \[4\]) baselines, and the unified [`Weights`]
//!   representation that lets every criterion run on dense or CSR
//!   kNN/ε graphs through one [`Problem`] type.
//!
//! ## Quickstart
//!
//! ```
//! use gssl::{Criterion, GsslModel};
//! use gssl_graph::{Bandwidth, Kernel};
//! use gssl_linalg::Matrix;
//! # fn main() -> Result<(), gssl::Error> {
//! // Two labeled anchors and three unlabeled points on a line.
//! let points = Matrix::from_rows(&[&[0.0], &[1.0], &[0.1], &[0.9], &[0.5]])?;
//! let scores = GsslModel::builder()
//!     .kernel(Kernel::Gaussian)
//!     .bandwidth(Bandwidth::Fixed(0.5))
//!     .criterion(Criterion::Hard)
//!     .fit(&points, &[0.0, 1.0])?;
//! assert!(scores.unlabeled()[0] < scores.unlabeled()[1]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Class-mass normalization of transductive scores (Zhu et al. 2003).
pub mod cmn;
mod co_training;
mod error;
mod hard;
mod llgc;
mod mean;
mod model;
mod multiclass;
mod nadaraya_watson;
mod plaplacian;
mod problem;
mod propagation;
mod self_training;
mod soft;
mod sparse_problem;
/// Diagnostics for the paper's consistency theory (Neumann tails, spectral gaps).
pub mod theory;
mod traits;
mod weights;

pub use co_training::CoTraining;
pub use error::{Error, Result};
pub use hard::{HardCriterion, HardSolver};
pub use llgc::LocalGlobalConsistency;
pub use mean::MeanPredictor;
pub use model::{Criterion, GsslModel, GsslModelBuilder};
pub use multiclass::{MulticlassScores, OneVsRest};
pub use nadaraya_watson::{kernel_regression, NadarayaWatson};
pub use plaplacian::PLaplacian;
pub use problem::{Problem, Scores};
pub use propagation::{LabelPropagation, SweepKind};
pub use self_training::SelfTraining;
pub use soft::SoftCriterion;
#[allow(deprecated)]
pub use sparse_problem::SparseProblem;
pub use traits::TransductiveModel;
pub use weights::Weights;
