//! Backend-equivalence suite for the unified solver stack: every
//! factorization backend must produce the same hard and soft scores on
//! the same problem, whichever [`Weights`] representation (dense or CSR)
//! the problem holds, to 1e-8. Degenerate shapes — no unlabeled
//! vertices, disconnected unlabeled islands, and the λ = 0 limit of the
//! soft criterion (Proposition II.1) — must behave identically too.

use gssl::{Error, HardCriterion, HardSolver, Problem, Scores, SoftCriterion, Weights};
use gssl_linalg::{AmgOptions, CgOptions, CsrMatrix, Matrix, SolverPolicy, SparseStrategy};

/// Deterministic LCG so the random problems are reproducible.
struct Lcg(u64);

impl Lcg {
    fn next_f64(&mut self) -> f64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((self.0 >> 11) as f64) / ((1u64 << 53) as f64)
    }
}

/// A random connected symmetric graph with zero entries (so dense and
/// CSR representations genuinely differ in storage): a spanning path
/// plus ~25% extra random edges with random positive weights.
fn random_graph(total: usize, seed: u64) -> Matrix {
    let mut rng = Lcg(seed);
    let mut w = Matrix::zeros(total, total);
    for i in 1..total {
        let weight = 0.5 + rng.next_f64();
        w.set(i - 1, i, weight);
        w.set(i, i - 1, weight);
    }
    for i in 0..total {
        for j in (i + 2)..total {
            if rng.next_f64() < 0.25 {
                let weight = 0.2 + rng.next_f64();
                w.set(i, j, weight);
                w.set(j, i, weight);
            }
        }
    }
    w
}

fn random_labels(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = Lcg(seed ^ 0x9e3779b97f4a7c15);
    (0..n).map(|_| f64::from(rng.next_f64() > 0.5)).collect()
}

/// The same graph and labels as two problems: one holding the dense
/// matrix, one holding its CSR conversion.
fn both_representations(w: &Matrix, labels: &[f64]) -> (Problem, Problem) {
    let dense = Problem::new(w.clone(), labels.to_vec()).expect("dense problem");
    let sparse =
        Problem::new(CsrMatrix::from_dense(w, 0.0), labels.to_vec()).expect("sparse problem");
    assert!(!dense.weights().is_sparse());
    assert!(sparse.weights().is_sparse());
    (dense, sparse)
}

fn assert_scores_close(got: &Scores, want: &Scores, tol: f64, context: &str) {
    assert_eq!(got.all().len(), want.all().len(), "{context}: length");
    for (i, (g, w)) in got.all().iter().zip(want.all()).enumerate() {
        assert!(
            (g - w).abs() < tol,
            "{context}: score {i} differs, {g} vs {w}"
        );
    }
}

/// Every hard backend the factorization layer can dispatch to, including
/// a forced-strategy `Auto` route per preconditioner family and AMG.
fn hard_backends() -> Vec<(&'static str, HardSolver)> {
    let mut backends = vec![
        ("cholesky", HardSolver::Cholesky),
        ("lu", HardSolver::Lu),
        (
            "cg",
            HardSolver::ConjugateGradient(CgOptions {
                max_iterations: 0,
                tolerance: 1e-12,
            }),
        ),
        ("auto", HardSolver::Auto(SolverPolicy::default())),
    ];
    for (name, policy) in forced_iterative_policies() {
        backends.push((name, HardSolver::Auto(policy)));
    }
    backends
}

/// A policy whose thresholds force the iterative route even on small
/// dense systems, with the given sparse strategy.
fn force_strategy_policy(strategy: SparseStrategy) -> SolverPolicy {
    SolverPolicy {
        direct_dim_cutoff: 0,
        density_threshold: 1.0,
        cg: CgOptions {
            max_iterations: 0,
            tolerance: 1e-12,
        },
        sparse: strategy,
        ..SolverPolicy::default()
    }
}

/// A policy whose thresholds force the iterative CG backend even on
/// small dense systems, so the soft criterion's CG route is exercised.
fn force_cg_policy() -> SolverPolicy {
    force_strategy_policy(SparseStrategy::Jacobi)
}

/// One forced-iterative policy per solver family the sparse-first stack
/// can dispatch to: Jacobi PCG, block-Jacobi PCG, IC(0) PCG, and AMG.
fn forced_iterative_policies() -> Vec<(&'static str, SolverPolicy)> {
    let tight_cg = CgOptions {
        max_iterations: 0,
        tolerance: 1e-12,
    };
    vec![
        ("forced-jacobi", force_cg_policy()),
        (
            "forced-block-jacobi",
            force_strategy_policy(SparseStrategy::BlockJacobi { block_dim: 8 }),
        ),
        ("forced-ic0", force_strategy_policy(SparseStrategy::Ic0)),
        (
            "forced-amg",
            force_strategy_policy(SparseStrategy::Amg(AmgOptions {
                cg: tight_cg,
                ..AmgOptions::default()
            })),
        ),
    ]
}

#[test]
fn hard_backends_agree_across_representations() {
    for seed in [3, 17, 92] {
        let w = random_graph(24, seed);
        let labels = random_labels(6, seed);
        let (dense, sparse) = both_representations(&w, &labels);
        let reference = HardCriterion::new()
            .solver(HardSolver::Cholesky)
            .fit(&dense)
            .expect("reference fit");
        for (name, solver) in hard_backends() {
            for (rep, problem) in [("dense", &dense), ("sparse", &sparse)] {
                let scores = HardCriterion::new()
                    .solver(solver.clone())
                    .fit(problem)
                    .unwrap_or_else(|e| panic!("seed {seed} {name}/{rep}: {e}"));
                assert_scores_close(
                    &scores,
                    &reference,
                    1e-8,
                    &format!("seed {seed} {name}/{rep}"),
                );
            }
        }
    }
}

#[test]
fn soft_backends_agree_across_representations() {
    for seed in [5, 41] {
        let w = random_graph(20, seed);
        let labels = random_labels(5, seed);
        let (dense, sparse) = both_representations(&w, &labels);
        for lambda in [0.1, 1.0] {
            let reference = SoftCriterion::new(lambda)
                .expect("lambda")
                .fit(&dense)
                .expect("reference fit");
            let mut policies = vec![("default", SolverPolicy::default())];
            policies.extend(forced_iterative_policies());
            for (name, policy) in policies {
                for (rep, problem) in [("dense", &dense), ("sparse", &sparse)] {
                    let scores = SoftCriterion::new(lambda)
                        .expect("lambda")
                        .policy(policy.clone())
                        .fit(problem)
                        .unwrap_or_else(|e| panic!("seed {seed} λ={lambda} {name}/{rep}: {e}"));
                    assert_scores_close(
                        &scores,
                        &reference,
                        1e-8,
                        &format!("seed {seed} λ={lambda} {name}/{rep}"),
                    );
                }
            }
        }
    }
}

/// Proposition II.1: at λ = 0 the soft criterion degenerates to the hard
/// criterion — on either representation, through any policy.
#[test]
fn soft_lambda_zero_matches_hard() {
    let w = random_graph(18, 7);
    let labels = random_labels(5, 7);
    let (dense, sparse) = both_representations(&w, &labels);
    let hard = HardCriterion::new().fit(&dense).expect("hard fit");
    let mut policies = vec![SolverPolicy::default()];
    policies.extend(forced_iterative_policies().into_iter().map(|(_, p)| p));
    for policy in policies {
        for problem in [&dense, &sparse] {
            let soft = SoftCriterion::new(0.0)
                .expect("lambda 0")
                .policy(policy.clone())
                .fit(problem)
                .expect("soft fit");
            assert_scores_close(&soft, &hard, 1e-8, "lambda 0");
        }
    }
}

/// With no unlabeled vertices every backend returns the labels verbatim.
#[test]
fn fully_labeled_problem_is_degenerate_for_every_backend() {
    let w = random_graph(8, 11);
    let labels = random_labels(8, 11);
    let (dense, sparse) = both_representations(&w, &labels);
    for problem in [&dense, &sparse] {
        for (name, solver) in hard_backends() {
            let scores = HardCriterion::new()
                .solver(solver)
                .fit(problem)
                .unwrap_or_else(|e| panic!("m=0 {name}: {e}"));
            assert_eq!(scores.labeled(), labels.as_slice(), "m=0 {name}");
            assert!(scores.unlabeled().is_empty(), "m=0 {name}");
        }
        let soft = SoftCriterion::new(0.5)
            .expect("lambda")
            .fit(problem)
            .expect("m=0 soft fit");
        assert_eq!(soft.all().len(), 8);
        assert!(soft.unlabeled().is_empty());
    }
}

/// An unlabeled island (no path to any label) must be rejected as
/// `UnanchoredUnlabeled` by every backend, on either representation,
/// before any factorization is attempted.
#[test]
fn disconnected_unlabeled_island_is_rejected_by_every_backend() {
    // Vertices 0..4 form a labeled-anchored path; vertices 4..6 form an
    // island with no edge to the rest.
    let mut w = Matrix::zeros(6, 6);
    for i in 1..4 {
        w.set(i - 1, i, 1.0);
        w.set(i, i - 1, 1.0);
    }
    w.set(4, 5, 1.0);
    w.set(5, 4, 1.0);
    let labels = vec![1.0];
    let (dense, sparse) = both_representations(&w, &labels);
    for problem in [&dense, &sparse] {
        for (name, solver) in hard_backends() {
            let err = HardCriterion::new()
                .solver(solver)
                .fit(problem)
                .expect_err("island must be rejected");
            assert!(
                matches!(
                    err,
                    Error::UnanchoredUnlabeled {
                        unlabeled_index: 3 | 4
                    }
                ),
                "{name}: unexpected error {err:?}"
            );
        }
        let err = SoftCriterion::new(0.5)
            .expect("lambda")
            .fit(problem)
            .expect_err("island must be rejected (soft)");
        assert!(matches!(err, Error::UnanchoredUnlabeled { .. }));
    }
}

/// The `Weights` accessors the criteria rely on agree between the two
/// representations on the random graphs used above.
#[test]
fn weights_accessors_agree_on_random_graphs() {
    let w = random_graph(16, 23);
    let dense = Weights::from(w.clone());
    let sparse = Weights::from(CsrMatrix::from_dense(&w, 0.0));
    assert_eq!(dense.nnz(), sparse.nnz());
    assert_eq!(dense.degrees().as_slice(), sparse.degrees().as_slice());
    for i in 0..16 {
        let d: Vec<_> = dense.row_entries(i).collect();
        let s: Vec<_> = sparse.row_entries(i).collect();
        assert_eq!(d, s, "row {i}");
    }
}
