//! The synthetic Columbia Object Image Library (COIL) substitute.
//!
//! The paper's Figure 5 uses the binary COIL benchmark of Chapelle et al.
//! (2006, ch. 21): 24 objects photographed at 72 angles, grouped into six
//! classes, 38 images per class discarded to leave 250 each (1500 total),
//! inputs taken from 16×16 pixels, and the six classes merged 3-vs-3 into
//! a binary task. This module reproduces that pipeline over the procedural
//! renderer in [`crate::shapes`]: 6 shape families × 4 objects × 72 render
//! angles, the same subsampling, the same binary grouping.

use crate::dataset::Dataset;
use crate::error::{Error, Result};
use crate::shapes::{object_catalog, PIXEL_COUNT};
use gssl_linalg::Matrix;
use rand::seq::SliceRandom;
use rand::Rng;

/// Number of viewing angles per object (every 5°, as in COIL).
pub const ANGLES_PER_OBJECT: usize = 72;

/// Number of classes before binary grouping.
pub const CLASS_COUNT: usize = 6;

/// Images kept per class after the benchmark's subsampling.
pub const IMAGES_PER_CLASS: usize = 250;

/// Builder for the synthetic COIL dataset.
///
/// ```
/// use gssl_datasets::coil::SyntheticCoil;
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let coil = SyntheticCoil::builder()
///     .images_per_class(20)
///     .build(&mut rng)
///     .unwrap();
/// assert_eq!(coil.dataset().len(), 120);
/// assert_eq!(coil.dataset().dim(), 256);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticCoilBuilder {
    images_per_class: usize,
    noise_std: f64,
}

impl Default for SyntheticCoilBuilder {
    fn default() -> Self {
        SyntheticCoilBuilder {
            images_per_class: IMAGES_PER_CLASS,
            noise_std: 0.04,
        }
    }
}

impl SyntheticCoilBuilder {
    /// Number of images to keep per class (≤ 288 = 4 objects × 72 angles).
    /// The benchmark value is 250.
    pub fn images_per_class(&mut self, count: usize) -> &mut Self {
        self.images_per_class = count;
        self
    }

    /// Standard deviation of per-pixel Gaussian noise (default 0.04).
    pub fn noise_std(&mut self, std: f64) -> &mut Self {
        self.noise_std = std;
        self
    }

    /// Renders the library and assembles the dataset.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `images_per_class` is 0 or
    /// exceeds the 288 renders available per class, or when
    /// `noise_std < 0`.
    pub fn build(&self, rng: &mut impl Rng) -> Result<SyntheticCoil> {
        let per_class_available = 4 * ANGLES_PER_OBJECT;
        if self.images_per_class == 0 || self.images_per_class > per_class_available {
            return Err(Error::InvalidParameter {
                message: format!(
                    "images_per_class must be in 1..={per_class_available}, got {}",
                    self.images_per_class
                ),
            });
        }
        if self.noise_std < 0.0 {
            return Err(Error::InvalidParameter {
                message: format!("noise_std must be nonnegative, got {}", self.noise_std),
            });
        }

        let catalog = object_catalog();
        // Render everything, grouped by class.
        let mut per_class: Vec<Vec<(Vec<f64>, usize, usize)>> = vec![Vec::new(); CLASS_COUNT];
        for (object_id, spec) in catalog.iter().enumerate() {
            let class = object_id / 4;
            for angle_idx in 0..ANGLES_PER_OBJECT {
                let angle = std::f64::consts::TAU * angle_idx as f64 / ANGLES_PER_OBJECT as f64;
                let pixels = spec.render(angle, self.noise_std, rng)?;
                per_class[class].push((pixels, object_id, angle_idx));
            }
        }

        // Subsample each class down to the requested size (the benchmark
        // "randomly discards 38 images of each class").
        let total = CLASS_COUNT * self.images_per_class;
        let mut inputs = Matrix::zeros(total, PIXEL_COUNT);
        let mut binary_targets = Vec::with_capacity(total);
        let mut class_labels = Vec::with_capacity(total);
        let mut object_ids = Vec::with_capacity(total);
        let mut angle_indices = Vec::with_capacity(total);
        let mut row = 0;
        for (class, images) in per_class.iter_mut().enumerate() {
            images.shuffle(rng);
            images.truncate(self.images_per_class);
            for (pixels, object_id, angle_idx) in images.iter() {
                inputs.row_mut(row).copy_from_slice(pixels);
                // Benchmark grouping: first three classes vs last three.
                binary_targets.push(if class < CLASS_COUNT / 2 { 1.0 } else { 0.0 });
                class_labels.push(class);
                object_ids.push(*object_id);
                angle_indices.push(*angle_idx);
                row += 1;
            }
        }

        let truth = binary_targets.clone();
        let dataset = Dataset::with_truth(inputs, binary_targets, truth)?;
        Ok(SyntheticCoil {
            dataset,
            class_labels,
            object_ids,
            angle_indices,
        })
    }
}

/// The rendered synthetic COIL library.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticCoil {
    dataset: Dataset,
    class_labels: Vec<usize>,
    object_ids: Vec<usize>,
    angle_indices: Vec<usize>,
}

impl SyntheticCoil {
    /// Starts building a library (defaults reproduce the benchmark sizes).
    pub fn builder() -> SyntheticCoilBuilder {
        SyntheticCoilBuilder::default()
    }

    /// Renders the full benchmark-sized library (1500 images).
    ///
    /// # Errors
    ///
    /// Propagates [`SyntheticCoilBuilder::build`] errors (none for the
    /// default parameters).
    pub fn benchmark(rng: &mut impl Rng) -> Result<Self> {
        Self::builder().build(rng)
    }

    /// The binary dataset (targets 1.0 for classes 0–2, 0.0 for 3–5).
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Consumes the library, returning the binary dataset.
    pub fn into_dataset(self) -> Dataset {
        self.dataset
    }

    /// Six-way class label of each image.
    pub fn class_labels(&self) -> &[usize] {
        &self.class_labels
    }

    /// Which of the 24 objects each image renders.
    pub fn object_ids(&self) -> &[usize] {
        &self.object_ids
    }

    /// Rotation-angle index (0..72) of each image.
    pub fn angle_indices(&self) -> &[usize] {
        &self.angle_indices
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(5)
    }

    fn small_coil() -> SyntheticCoil {
        SyntheticCoil::builder()
            .images_per_class(12)
            .noise_std(0.02)
            .build(&mut rng())
            .unwrap()
    }

    #[test]
    fn small_library_shape() {
        let coil = small_coil();
        let ds = coil.dataset();
        assert_eq!(ds.len(), 72);
        assert_eq!(ds.dim(), PIXEL_COUNT);
        assert_eq!(coil.class_labels().len(), 72);
        assert_eq!(coil.object_ids().len(), 72);
        assert_eq!(coil.angle_indices().len(), 72);
    }

    #[test]
    fn classes_are_balanced_and_binary_grouping_is_3v3() {
        let coil = small_coil();
        let mut counts = [0usize; CLASS_COUNT];
        for (&c, &y) in coil.class_labels().iter().zip(coil.dataset().targets()) {
            counts[c] += 1;
            let expected = if c < 3 { 1.0 } else { 0.0 };
            assert_eq!(y, expected, "class {c} grouped wrongly");
        }
        assert!(counts.iter().all(|&c| c == 12));
    }

    #[test]
    fn object_ids_match_classes() {
        let coil = small_coil();
        for (&obj, &class) in coil.object_ids().iter().zip(coil.class_labels()) {
            assert_eq!(obj / 4, class);
            assert!(obj < 24);
        }
    }

    #[test]
    fn pixels_are_normalized() {
        let coil = small_coil();
        for v in coil.dataset().inputs().as_slice() {
            assert!((0.0..=1.0).contains(v));
        }
    }

    #[test]
    fn builder_validates_parameters() {
        assert!(SyntheticCoil::builder()
            .images_per_class(0)
            .build(&mut rng())
            .is_err());
        assert!(SyntheticCoil::builder()
            .images_per_class(289)
            .build(&mut rng())
            .is_err());
        assert!(SyntheticCoil::builder()
            .noise_std(-0.1)
            .build(&mut rng())
            .is_err());
    }

    #[test]
    fn benchmark_constants_match_the_paper() {
        // 4 objects x 72 angles = 288 rendered; paper keeps 250 (drops 38).
        assert_eq!(4 * ANGLES_PER_OBJECT - IMAGES_PER_CLASS, 38);
        assert_eq!(CLASS_COUNT * IMAGES_PER_CLASS, 1500);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = SyntheticCoil::builder()
            .images_per_class(6)
            .build(&mut StdRng::seed_from_u64(9))
            .unwrap();
        let b = SyntheticCoil::builder()
            .images_per_class(6)
            .build(&mut StdRng::seed_from_u64(9))
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn same_class_images_are_closer_than_cross_group() {
        // Average within-object distance (adjacent angles) should be far
        // smaller than the average distance across the binary groups.
        let coil = small_coil();
        let ds = coil.dataset();
        let inputs = ds.inputs();
        let mut within = Vec::new();
        let mut across = Vec::new();
        for i in 0..ds.len() {
            for j in (i + 1)..ds.len() {
                let d2: f64 = inputs
                    .row(i)
                    .iter()
                    .zip(inputs.row(j))
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                if coil.object_ids()[i] == coil.object_ids()[j] {
                    within.push(d2);
                } else if (ds.targets()[i] > 0.5) != (ds.targets()[j] > 0.5) {
                    across.push(d2);
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&within) < mean(&across),
            "manifold structure missing: within {} vs across {}",
            mean(&within),
            mean(&across)
        );
    }
}
