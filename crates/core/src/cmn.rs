//! Class-mass normalization (CMN) — the standard post-processing of
//! Zhu, Ghahramani & Lafferty (2003) for harmonic scores.
//!
//! Raw harmonic scores can be globally biased when the labeled class
//! proportions are unrepresentative. CMN rescales the positive and
//! negative "masses" so the implied class proportions match a prior
//! (usually the labeled frequency):
//!
//! ```text
//! score'_a = q · f_a / Σ_b f_b   vs   (1 − q) · (1 − f_a) / Σ_b (1 − f_b)
//! ```
//!
//! This is an optional extension beyond the paper's experiments (the paper
//! uses raw scores); it is included because any practical deployment of
//! the hard criterion pairs it with CMN.

use crate::error::{Error, Result};
use gssl_linalg::float::{is_exactly_one, is_exactly_zero};

/// Indices of `scores` sorted ascending by the canonical
/// `(score, index)` `total_cmp` key: panic-free on NaN (NaN sorts after
/// every finite value, `-NaN` before), bit-identical to a `partial_cmp`
/// argsort for finite inputs, and stable by construction — ties break on
/// the original index.
/// deterministic
#[must_use]
pub fn argsort_scores(scores: &[f64]) -> Vec<usize> {
    let mut keyed: Vec<(f64, usize)> = scores.iter().copied().zip(0..).collect();
    keyed.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    keyed.into_iter().map(|(_, i)| i).collect()
}

/// Class-mass-normalized positive scores for binary problems.
///
/// For each unlabeled score `f_a ∈ [0, 1]`, computes the normalized
/// positive evidence `q·f_a/Σf` and negative evidence
/// `(1−q)·(1−f_a)/Σ(1−f)` and returns the positive share
/// `pos / (pos + neg)`, which is directly comparable to a 0.5 threshold.
///
/// # Errors
///
/// * [`Error::InvalidParameter`] when `prior_positive` is outside `(0, 1)`
///   or scores leave `[0, 1]`.
/// * [`Error::InvalidProblem`] when `scores` is empty or degenerate (all
///   mass on one side, making a normalization undefined).
/// hot
/// complexity: O(n)
pub fn class_mass_normalize(scores: &[f64], prior_positive: f64) -> Result<Vec<f64>> {
    if scores.is_empty() {
        return Err(Error::InvalidProblem {
            message: "no scores to normalize".to_owned(),
        });
    }
    if !(0.0 < prior_positive && prior_positive < 1.0) {
        return Err(Error::InvalidParameter {
            message: format!("prior must be in (0, 1), got {prior_positive}"),
        });
    }
    if scores.iter().any(|s| !(0.0..=1.0).contains(s)) {
        return Err(Error::InvalidParameter {
            message: "scores must lie in [0, 1] for class-mass normalization".to_owned(),
        });
    }
    let positive_mass: f64 = scores.iter().sum();
    let negative_mass: f64 = scores.iter().map(|s| 1.0 - s).sum();
    if positive_mass <= 0.0 || negative_mass <= 0.0 {
        return Err(Error::InvalidProblem {
            message: "all mass on one class; normalization undefined".to_owned(),
        });
    }
    Ok(scores
        .iter()
        .map(|&f| {
            let pos = prior_positive * f / positive_mass;
            let neg = (1.0 - prior_positive) * (1.0 - f) / negative_mass;
            pos / (pos + neg)
        })
        .collect())
}

/// Estimates the positive-class prior as the labeled frequency of 1s —
/// the usual CMN prior.
///
/// # Errors
///
/// Returns [`Error::InvalidProblem`] for empty labels or a single-class
/// labeled set (prior would leave `(0, 1)`).
pub fn labeled_prior(labels: &[f64]) -> Result<f64> {
    if labels.is_empty() {
        return Err(Error::InvalidProblem {
            message: "no labels to estimate a prior from".to_owned(),
        });
    }
    let prior = labels.iter().filter(|&&y| y > 0.5).count() as f64 / labels.len() as f64;
    if is_exactly_zero(prior) || is_exactly_one(prior) {
        return Err(Error::InvalidProblem {
            message: "labeled set contains a single class; prior degenerate".to_owned(),
        });
    }
    Ok(prior)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_prior_preserves_order() {
        let scores = [0.2, 0.5, 0.9, 0.4];
        let normalized = class_mass_normalize(&scores, 0.5).unwrap();
        // Ranking unchanged by a monotone normalization.
        let order = argsort_scores(&scores);
        let norm_order = argsort_scores(&normalized);
        assert_eq!(order, norm_order);
        for &s in &normalized {
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn argsort_is_canonical_and_nan_safe() {
        // Finite inputs: plain ascending order, ties broken by index.
        assert_eq!(argsort_scores(&[0.2, 0.5, 0.9, 0.4]), vec![0, 3, 1, 2]);
        assert_eq!(argsort_scores(&[0.5, 0.2, 0.5]), vec![1, 0, 2]);
        // A NaN score must not panic (the old `partial_cmp(..).unwrap()`
        // did); under `total_cmp` it sorts after every finite value.
        assert_eq!(argsort_scores(&[0.5, f64::NAN, 0.25]), vec![2, 0, 1]);
        assert_eq!(argsort_scores(&[]), Vec::<usize>::new());
    }

    #[test]
    fn skewed_prior_shifts_decisions() {
        let scores = [0.45, 0.55];
        let toward_positive = class_mass_normalize(&scores, 0.9).unwrap();
        let toward_negative = class_mass_normalize(&scores, 0.1).unwrap();
        assert!(toward_positive[0] > toward_negative[0]);
        assert!(toward_positive[1] > toward_negative[1]);
    }

    #[test]
    fn decision_boundary_matches_closed_form_for_balanced_masses() {
        // When Σf = Σ(1−f) (balanced masses), the normalized score is
        // q·f / (q·f + (1−q)(1−f)), whose 0.5 crossing sits at f = 1 − q.
        let scores: Vec<f64> = (0..=100).map(|i| i as f64 / 100.0).collect();
        let q = 0.7;
        let normalized = class_mass_normalize(&scores, q).unwrap();
        for (f, s) in scores.iter().zip(&normalized) {
            let expected = q * f / (q * f + (1.0 - q) * (1.0 - f));
            assert!((s - expected).abs() < 1e-12, "f = {f}: {s} vs {expected}");
        }
        // Boundary: raw score 1 − q = 0.3 maps to exactly 0.5.
        let boundary = class_mass_normalize(&[0.3, 0.7], q).unwrap();
        assert!((boundary[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn validates_inputs() {
        assert!(class_mass_normalize(&[], 0.5).is_err());
        assert!(class_mass_normalize(&[0.5], 0.0).is_err());
        assert!(class_mass_normalize(&[0.5], 1.0).is_err());
        assert!(class_mass_normalize(&[1.5], 0.5).is_err());
        assert!(class_mass_normalize(&[1.0, 1.0], 0.5).is_err()); // no negative mass
        assert!(class_mass_normalize(&[0.0, 0.0], 0.5).is_err()); // no positive mass
    }

    #[test]
    fn labeled_prior_counts_positives() {
        assert!((labeled_prior(&[1.0, 0.0, 1.0, 0.0]).unwrap() - 0.5).abs() < 1e-15);
        assert!((labeled_prior(&[1.0, 0.0, 0.0, 0.0]).unwrap() - 0.25).abs() < 1e-15);
        assert!(labeled_prior(&[]).is_err());
        assert!(labeled_prior(&[1.0, 1.0]).is_err());
        assert!(labeled_prior(&[0.0]).is_err());
    }
}
