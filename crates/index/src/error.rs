//! Error type shared by every neighbor-search backend.

use std::fmt;

/// Errors produced by index construction, insertion and queries.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// The input was empty where at least one element is required.
    EmptyInput {
        /// What the call needed (for the error message).
        required: &'static str,
    },
    /// A point or query had the wrong number of coordinates.
    DimensionMismatch {
        /// The dimension the index was built with.
        expected: usize,
        /// The dimension actually supplied.
        actual: usize,
    },
    /// A coordinate was NaN or infinite.
    NonFiniteCoordinate {
        /// Zero-based position of the offending coordinate within the
        /// point or query slice.
        position: usize,
    },
    /// A query parameter (`k`, radius, …) was out of range.
    InvalidArgument {
        /// Human-readable description of the violated precondition.
        message: String,
    },
    /// The runtime executor rejected a batched query plan.
    Runtime(gssl_runtime::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::EmptyInput { required } => {
                write!(f, "empty input: the operation requires {required}")
            }
            Error::DimensionMismatch { expected, actual } => write!(
                f,
                "dimension mismatch: index holds {expected}-dimensional points, got {actual}"
            ),
            Error::NonFiniteCoordinate { position } => {
                write!(f, "coordinate {position} is NaN or infinite")
            }
            Error::InvalidArgument { message } => write!(f, "invalid argument: {message}"),
            Error::Runtime(e) => write!(f, "runtime error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Runtime(e) => Some(e),
            _ => None,
        }
    }
}

impl From<gssl_runtime::Error> for Error {
    fn from(e: gssl_runtime::Error) -> Self {
        Error::Runtime(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_name_the_problem() {
        let cases: Vec<(Error, &str)> = vec![
            (
                Error::EmptyInput { required: "points" },
                "empty input: the operation requires points",
            ),
            (
                Error::DimensionMismatch {
                    expected: 3,
                    actual: 2,
                },
                "dimension mismatch: index holds 3-dimensional points, got 2",
            ),
            (
                Error::NonFiniteCoordinate { position: 4 },
                "coordinate 4 is NaN or infinite",
            ),
            (
                Error::InvalidArgument {
                    message: "k must be positive".into(),
                },
                "invalid argument: k must be positive",
            ),
        ];
        for (err, expected) in cases {
            assert_eq!(err.to_string(), expected);
        }
    }

    #[test]
    fn runtime_errors_convert_and_chain() {
        let rt = gssl_runtime::Error::InvalidConfig {
            message: "zero chunk width".into(),
        };
        let err: Error = rt.into();
        assert!(matches!(err, Error::Runtime(_)));
        assert!(std::error::Error::source(&err).is_some());
        assert!(err.to_string().contains("runtime error"));
    }
}
