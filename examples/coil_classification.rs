//! The paper's Figure 5 pipeline in miniature: classify synthetic COIL
//! images with the hard and soft criteria at several labeled ratios and
//! compare AUCs, using the median-heuristic RBF kernel of the paper.
//!
//! ```text
//! cargo run --release --example coil_classification
//! ```

use gssl::{HardCriterion, Problem, SoftCriterion};
use gssl_datasets::coil::SyntheticCoil;
use gssl_graph::{affinity::affinity_matrix, bandwidth::median_heuristic, Kernel};
use gssl_stats::roc::auc;
use gssl_stats::split::labeled_unlabeled_split;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(7);
    let coil = SyntheticCoil::builder()
        .images_per_class(30)
        .build(&mut rng)?;
    let dataset = coil.dataset();
    println!(
        "synthetic COIL: {} images, {} pixels each, 6 classes grouped 3-vs-3\n",
        dataset.len(),
        dataset.dim()
    );

    let sigma = median_heuristic(dataset.inputs())?;
    println!("median-heuristic bandwidth sigma = {sigma:.3}\n");
    println!(
        "{:>16}  {:>12}  {:>12}  {:>12}",
        "labeled share", "hard AUC", "soft λ=0.1", "soft λ=5"
    );

    for &labeled_fraction in &[0.8, 0.2, 0.1] {
        let n_labeled = (dataset.len() as f64 * labeled_fraction) as usize;
        let split = labeled_unlabeled_split(dataset.len(), n_labeled, &mut rng)?;
        let ssl = dataset.arrange(&split.train)?;
        let w = affinity_matrix(&ssl.inputs, Kernel::Gaussian, sigma)?;
        let problem = Problem::new(w, ssl.labels.clone())?;
        let truth = ssl.hidden_targets_binary();

        let hard = HardCriterion::new().fit(&problem)?;
        let soft_01 = SoftCriterion::new(0.1)?.fit(&problem)?;
        let soft_5 = SoftCriterion::new(5.0)?.fit(&problem)?;
        println!(
            "{:>15}%  {:>12.4}  {:>12.4}  {:>12.4}",
            labeled_fraction * 100.0,
            auc(hard.unlabeled(), &truth)?,
            auc(soft_01.unlabeled(), &truth)?,
            auc(soft_5.unlabeled(), &truth)?,
        );
    }

    println!("\nExpected pattern (Figure 5): AUC falls as λ grows and as the");
    println!("labeled share shrinks; the hard criterion is best in every row.");
    Ok(())
}
