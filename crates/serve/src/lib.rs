//! # gssl-serve — fit-once, query-many prediction serving
//!
//! The transductive solvers in [`gssl`] answer one question: given a
//! fixed graph, what are the scores of its unlabeled vertices? A serving
//! deployment asks three more:
//!
//! 1. **Out-of-sample queries.** Points that were never part of the
//!    fitted graph must be scored without refitting. Theorem II.1 of the
//!    paper shows the graph solution converges to the Nadaraya–Watson
//!    kernel regressor, which justifies the extension (Eq. 6)
//!    `f(x) = Σᵢ w(x, xᵢ) fᵢ / Σᵢ w(x, xᵢ)` — an `O(N·d)` weighted
//!    average over the fitted scores, no linear solve involved.
//! 2. **Streaming labels.** When a previously unlabeled vertex reveals
//!    its label, the criterion system changes by exactly rank one, so the
//!    cached inverse is repaired with a Sherman–Morrison-family update in
//!    quadratic time instead of a cubic refit (details in
//!    [`mod@crate::engine`]).
//! 3. **Throughput.** Queries are independent reads of shared fitted
//!    state; the engine shards batches across workers through the shared
//!    [`Executor`] from [`gssl_runtime`] (dependency-free,
//!    `std::thread::scope` only), and [`MetricsSnapshot`] reports p50/p99
//!    latency and sustained throughput via the [`gssl_stats`] descriptive
//!    machinery.
//!
//! [`ServingEngine::fit`] builds the kernel graph and the criterion
//! problem internally from raw points (labeled first), so callers hand
//! over coordinates once and then only exchange queries and labels.
//!
//! Enable the `strict-checks` cargo feature to extend the workspace's
//! numeric sanitizer across the serving boundary: kernel rows, cached
//! scores and batch outputs are then checked for NaN/infinity and
//! reported as [`Error::NonFiniteValue`]. Query coordinates and observed
//! labels are validated unconditionally.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Engine configuration: criterion, kernel parameters, update policy.
pub mod config;
/// The fit-once, query-many serving engine and its rank-1 update math.
pub mod engine;
/// Error type for the serving boundary.
pub mod error;
/// Latency/throughput counters built on `gssl-stats`.
pub mod metrics;

/// Deterministic interleaving harness for the execution layer's
/// chunk-claim protocol, re-exported from [`gssl_runtime`] (where it now
/// lives) so existing `gssl_serve::sim` callers keep compiling.
#[cfg(feature = "strict-checks")]
pub use gssl_runtime::sim;

pub use config::{EngineConfig, EngineSolver, QueryPath, ServeCriterion};
pub use engine::{Prediction, QueryPoint, ServingEngine};
pub use error::{Error, Result};
pub use gssl_runtime::{Executor, ThreadPool};
pub use metrics::MetricsSnapshot;
