//! Self-training (Rosenberg et al. — the paper's introduction cites it as
//! reference \[3\]): a meta-algorithm that repeatedly promotes the most
//! confident unlabeled predictions into the labeled set and refits.
//!
//! Wrapped around a transductive criterion it extends the effective reach
//! of short-range kernels: each round's pseudo-labels anchor the next
//! round's propagation. Included as the classic baseline the paper's
//! introduction positions graph-based methods against.

use crate::error::{Error, Result};
use crate::problem::{Problem, Scores};
use crate::traits::TransductiveModel;
use gssl_linalg::Matrix;

/// Self-training wrapper around a binary transductive model.
///
/// Scores above `confidence` are pseudo-labeled 1, below `1 − confidence`
/// pseudo-labeled 0; rounds continue until no point is confident enough
/// or `max_rounds` is hit. The final [`Scores`] are reported in the
/// *original* problem layout, with promoted points carrying their
/// pseudo-labels.
#[derive(Debug)]
pub struct SelfTraining<M> {
    model: M,
    confidence: f64,
    max_rounds: usize,
}

impl<M: TransductiveModel> SelfTraining<M> {
    /// Wraps `model` with a confidence threshold in `(0.5, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for thresholds outside
    /// `(0.5, 1]`.
    pub fn new(model: M, confidence: f64) -> Result<Self> {
        if !(0.5 < confidence && confidence <= 1.0) {
            return Err(Error::InvalidParameter {
                message: format!("confidence must be in (0.5, 1], got {confidence}"),
            });
        }
        Ok(SelfTraining {
            model,
            confidence,
            max_rounds: 50,
        })
    }

    /// Sets the maximum number of promotion rounds (default 50).
    pub fn max_rounds(mut self, rounds: usize) -> Self {
        self.max_rounds = rounds;
        self
    }

    /// Borrows the wrapped model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Runs self-training, returning the final scores (original layout)
    /// and the number of promotion rounds performed.
    ///
    /// # Errors
    ///
    /// Propagates fitting errors from the wrapped model.
    pub fn fit_with_rounds(&self, problem: &Problem) -> Result<(Scores, usize)> {
        let total = problem.len();
        let n0 = problem.n_labeled();

        // Working state over ORIGINAL indices.
        let mut labeled: Vec<usize> = (0..n0).collect();
        let mut labels: Vec<f64> = problem.labels().to_vec();
        let mut unlabeled: Vec<usize> = (n0..total).collect();
        // Final per-original-vertex scores for the unlabeled block.
        let mut final_scores: Vec<Option<f64>> = vec![None; total];

        let mut rounds = 0;
        loop {
            // Assemble the permuted subproblem: labeled first.
            let order: Vec<usize> = labeled.iter().chain(unlabeled.iter()).copied().collect();
            let weights = permute_weights(problem.weights(), &order);
            let subproblem = Problem::new(weights, labels.clone())?;
            let scores = self.model.fit(&subproblem)?;

            // Record current scores for the still-unlabeled points.
            for (k, &orig) in unlabeled.iter().enumerate() {
                final_scores[orig] = Some(scores.unlabeled()[k]);
            }
            if unlabeled.is_empty() || rounds >= self.max_rounds {
                break;
            }

            // Promote confident points.
            let mut promoted = Vec::new();
            let mut remaining = Vec::new();
            for (k, &orig) in unlabeled.iter().enumerate() {
                let s = scores.unlabeled()[k];
                if s >= self.confidence {
                    promoted.push((orig, 1.0));
                    final_scores[orig] = Some(1.0);
                } else if s <= 1.0 - self.confidence {
                    promoted.push((orig, 0.0));
                    final_scores[orig] = Some(0.0);
                } else {
                    remaining.push(orig);
                }
            }
            if promoted.is_empty() {
                break;
            }
            for (orig, pseudo) in promoted {
                labeled.push(orig);
                labels.push(pseudo);
            }
            unlabeled = remaining;
            rounds += 1;
        }

        let unlabeled_scores: Vec<f64> = (n0..total)
            .map(|orig| {
                final_scores[orig].ok_or_else(|| Error::InvalidProblem {
                    message: "self-training left an unlabeled vertex unscored".to_owned(),
                })
            })
            .collect::<Result<_>>()?;
        Ok((
            Scores::from_parts(problem.labels(), &unlabeled_scores),
            rounds,
        ))
    }
}

impl<M: TransductiveModel> TransductiveModel for SelfTraining<M> {
    fn fit(&self, problem: &Problem) -> Result<Scores> {
        Ok(self.fit_with_rounds(problem)?.0)
    }

    fn name(&self) -> String {
        format!(
            "self-training({}, confidence {})",
            self.model.name(),
            self.confidence
        )
    }
}

/// Symmetric permutation of a weight matrix: entry `(i, j)` of the result
/// is `w[order[i], order[j]]`.
fn permute_weights(weights: &crate::weights::Weights, order: &[usize]) -> Matrix {
    let k = order.len();
    let mut out = Matrix::zeros(k, k);
    for (i, &oi) in order.iter().enumerate() {
        for (j, &oj) in order.iter().enumerate() {
            out.set(i, j, weights.get(oi, oj));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nadaraya_watson::NadarayaWatson;

    /// A chain of points where only immediate neighbours are similar:
    /// vertex 0 labeled 1, vertex 9 labeled 0, the rest unlabeled in
    /// between (arranged labeled-first as positions 0 and 1).
    fn chain_problem() -> Problem {
        // Original order: [left end, right end, middle 2..=9 left-to-right].
        // Geometric positions on a line:
        let positions: [f64; 10] = [0.0, 9.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let total = positions.len();
        let mut w = Matrix::identity(total);
        for i in 0..total {
            for j in 0..total {
                if i != j {
                    let d: f64 = (positions[i] - positions[j]).abs();
                    // Wide kernel: both ends contribute everywhere, so
                    // plain NW scores are lukewarm in the interior.
                    w.set(i, j, (-0.01 * d * d).exp());
                }
            }
        }
        Problem::new(w, vec![1.0, 0.0]).unwrap()
    }

    #[test]
    fn confidence_validation() {
        assert!(SelfTraining::new(NadarayaWatson::new(), 0.5).is_err());
        assert!(SelfTraining::new(NadarayaWatson::new(), 1.1).is_err());
        assert!(SelfTraining::new(NadarayaWatson::new(), 0.9).is_ok());
    }

    #[test]
    fn self_training_sharpens_lukewarm_scores_without_flipping_decisions() {
        let problem = chain_problem();
        // Plain NW on the wide kernel: near-end points are only mildly
        // confident because the far label still carries weight.
        let plain = NadarayaWatson::new().fit(&problem).unwrap();
        let plain_near_positive = plain.unlabeled()[0]; // position 1.0
        assert!(
            (0.55..0.80).contains(&plain_near_positive),
            "expected a lukewarm score at position 1, got {plain_near_positive}"
        );

        // Self-training promotes the most confident points and re-anchors;
        // confidence grows and no decision flips.
        let wrapped = SelfTraining::new(NadarayaWatson::new(), 0.6).unwrap();
        let (scores, rounds) = wrapped.fit_with_rounds(&problem).unwrap();
        assert!(rounds >= 1, "promotion should happen");
        for (k, (&st, &pl)) in scores.unlabeled().iter().zip(plain.unlabeled()).enumerate() {
            assert_eq!(
                st >= 0.5,
                pl >= 0.5,
                "decision flipped at unlabeled index {k}: {pl} -> {st}"
            );
        }
        // Aggregate confidence grows (individual points may wobble when
        // opposite-side pseudo-labels enter, but the mean must not drop).
        let mean_confidence =
            |s: &[f64]| s.iter().map(|v| (v - 0.5).abs()).sum::<f64>() / s.len() as f64;
        assert!(
            mean_confidence(scores.unlabeled()) > mean_confidence(plain.unlabeled()),
            "self-training should raise average confidence"
        );
        // The near-end point ends pinned at its pseudo-label.
        assert!(scores.unlabeled()[0] > 0.95);
    }

    #[test]
    fn fully_confident_round_labels_everything() {
        // Tight cluster around a single positive label: one round promotes
        // everything to 1.
        let w = Matrix::filled(4, 4, 1.0);
        let problem = Problem::new(w, vec![1.0]).unwrap();
        let wrapped = SelfTraining::new(NadarayaWatson::new(), 0.9).unwrap();
        let (scores, rounds) = wrapped.fit_with_rounds(&problem).unwrap();
        assert_eq!(rounds, 1);
        assert_eq!(scores.unlabeled(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn no_confident_points_stops_immediately() {
        // Ambiguous geometry: a point equidistant from both labels.
        let w = Matrix::from_rows(&[&[1.0, 0.0, 0.5], &[0.0, 1.0, 0.5], &[0.5, 0.5, 1.0]]).unwrap();
        let problem = Problem::new(w, vec![1.0, 0.0]).unwrap();
        let wrapped = SelfTraining::new(NadarayaWatson::new(), 0.95).unwrap();
        let (scores, rounds) = wrapped.fit_with_rounds(&problem).unwrap();
        assert_eq!(rounds, 0);
        assert!((scores.unlabeled()[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn round_budget_is_respected() {
        let problem = chain_problem();
        let wrapped = SelfTraining::new(NadarayaWatson::new(), 0.8)
            .unwrap()
            .max_rounds(1);
        let (_, rounds) = wrapped.fit_with_rounds(&problem).unwrap();
        assert!(rounds <= 1);
    }

    #[test]
    fn name_and_accessor() {
        let wrapped = SelfTraining::new(NadarayaWatson::new(), 0.85).unwrap();
        assert!(wrapped.name().contains("self-training"));
        assert!(wrapped.name().contains("0.85"));
        assert_eq!(wrapped.model().name(), "nadaraya-watson");
    }

    #[test]
    fn labeled_scores_match_observations() {
        let problem = chain_problem();
        let wrapped = SelfTraining::new(NadarayaWatson::new(), 0.8).unwrap();
        let scores = wrapped.fit(&problem).unwrap();
        assert_eq!(scores.labeled(), problem.labels());
        assert_eq!(scores.all().len(), problem.len());
    }
}
