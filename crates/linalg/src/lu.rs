//! LU factorization with partial pivoting, and the solves built on it.
//!
//! Both closed-form criteria of the paper reduce to solving dense linear
//! systems (Eq. 4 and Eq. 5); [`Lu`] is the general-purpose direct backend.

use crate::error::{Error, Result};
use crate::float::is_exactly_zero;
use crate::matrix::Matrix;
use crate::strict;
use crate::vector::Vector;

/// Relative pivot threshold below which a matrix is declared singular.
const SINGULARITY_RTOL: f64 = 1e-13;

/// An LU factorization `P A = L U` with partial (row) pivoting.
///
/// ```
/// use gssl_linalg::{Lu, Matrix, Vector};
/// # fn main() -> Result<(), gssl_linalg::Error> {
/// let a = Matrix::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]])?;
/// let lu = Lu::factor(&a)?;
/// let x = lu.solve(&Vector::from(vec![10.0, 12.0]))?;
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Packed L (unit lower, below diagonal) and U (upper, on/above diagonal).
    factors: Matrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation, used by `det`.
    perm_sign: f64,
}

impl Lu {
    /// Factorizes a square matrix.
    ///
    /// # Errors
    ///
    /// * [`Error::NotSquare`] when `a` is not square.
    /// * [`Error::Singular`] when a pivot is (numerically) zero.
    /// * [`Error::NonFiniteValue`] when `a` contains NaN/infinity and the
    ///   `strict-checks` feature is enabled.
    /// hot
    /// complexity: O(n^3)
    /// deterministic
    pub fn factor(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(Error::NotSquare { shape: a.shape() });
        }
        strict::check_finite_matrix("lu.factor input", a)?;
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;
        let scale = a.norm_max().max(f64::MIN_POSITIVE);

        for k in 0..n {
            // Partial pivoting: bring the largest |entry| in column k to row k.
            let mut pivot_row = k;
            let mut pivot_val = lu.get(k, k).abs();
            for i in (k + 1)..n {
                let v = lu.get(i, k).abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val <= SINGULARITY_RTOL * scale {
                return Err(Error::Singular { pivot: k });
            }
            if pivot_row != k {
                lu.swap_rows(k, pivot_row);
                perm.swap(k, pivot_row);
                perm_sign = -perm_sign;
            }
            let pivot = lu.get(k, k);
            let data = lu.as_mut_slice();
            let (head, tail) = data.split_at_mut((k + 1) * n);
            let pivot_row = &head[k * n + k + 1..(k + 1) * n];
            for row in tail.chunks_mut(n) {
                let factor = row[k] / pivot;
                row[k] = factor;
                if !is_exactly_zero(factor) {
                    for (value, u) in row[k + 1..].iter_mut().zip(pivot_row) {
                        *value -= factor * u;
                    }
                }
            }
        }

        Ok(Lu {
            factors: lu,
            perm,
            perm_sign,
        })
    }

    /// Factorizes a square matrix with trailing-block updates parallelized
    /// across `executor`, producing factors **bit-identical** to
    /// [`Lu::factor`].
    ///
    /// The algorithm is a right-looking blocked elimination: each panel of
    /// [`Self::PANEL_WIDTH`] columns is factored sequentially (pivot
    /// searches and row swaps are inherently serial), the panel's rows of
    /// `U` are finished sequentially, and then every trailing row applies
    /// the panel's eliminations independently — one worker per row block.
    /// Bit-identity holds because every element receives exactly the same
    /// subtractions `a[i][j] -= l[i][k] * u[k][j]` in the same (globally
    /// increasing `k`) order as the unblocked loop, pivot decisions read
    /// columns whose values match the unblocked state at decision time,
    /// and rows are assembled by position rather than completion order.
    ///
    /// # Errors
    ///
    /// Same as [`Lu::factor`].
    /// hot
    /// complexity: O(n^3)
    /// deterministic
    pub fn factor_with(a: &Matrix, executor: &gssl_runtime::Executor) -> Result<Self> {
        if executor.is_sequential() {
            return Lu::factor(a);
        }
        if !a.is_square() {
            return Err(Error::NotSquare { shape: a.shape() });
        }
        strict::check_finite_matrix("lu.factor input", a)?;
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;
        let scale = a.norm_max().max(f64::MIN_POSITIVE);

        let mut k0 = 0;
        while k0 < n {
            let k1 = (k0 + Self::PANEL_WIDTH).min(n);
            // Panel factorization: pivot, swap and eliminate columns
            // k0..k1 over the full trailing height. Column k is current
            // with respect to every k' < k (earlier panels via trailing
            // updates, this panel via the loop below), so pivot choices
            // match the unblocked elimination exactly.
            for k in k0..k1 {
                let mut pivot_row = k;
                let mut pivot_val = lu.get(k, k).abs();
                for i in (k + 1)..n {
                    let v = lu.get(i, k).abs();
                    if v > pivot_val {
                        pivot_val = v;
                        pivot_row = i;
                    }
                }
                if pivot_val <= SINGULARITY_RTOL * scale {
                    return Err(Error::Singular { pivot: k });
                }
                if pivot_row != k {
                    lu.swap_rows(k, pivot_row);
                    perm.swap(k, pivot_row);
                    perm_sign = -perm_sign;
                }
                let pivot = lu.get(k, k);
                let data = lu.as_mut_slice();
                let (head, tail) = data.split_at_mut((k + 1) * n);
                let pivot_row = &head[k * n + k + 1..k * n + k1];
                for row in tail.chunks_mut(n) {
                    let factor = row[k] / pivot;
                    row[k] = factor;
                    if !is_exactly_zero(factor) {
                        for (value, u) in row[k + 1..k1].iter_mut().zip(pivot_row) {
                            *value -= factor * u;
                        }
                    }
                }
            }
            if k1 == n {
                break;
            }
            // Finish the panel's U rows (columns k1..): row r applies the
            // eliminations of rows k0..r in increasing k, each reading an
            // already-final U row above it.
            for r in (k0 + 1)..k1 {
                let data = lu.as_mut_slice();
                let (head, tail) = data.split_at_mut(r * n);
                let row = &mut tail[..n];
                for k in k0..r {
                    let factor = row[k];
                    if !is_exactly_zero(factor) {
                        let u_row = &head[k * n + k1..(k + 1) * n];
                        for (value, u) in row[k1..].iter_mut().zip(u_row) {
                            *value -= factor * u;
                        }
                    }
                }
            }
            // Trailing update, parallel by row block: row i (i >= k1)
            // applies the panel's eliminations k0..k1 in increasing k,
            // reading only the finalized U rows (the immutable head split)
            // and its own factors — rows are independent.
            let trailing_rows = n - k1;
            let block_rows = trailing_rows
                .div_ceil(executor.workers().saturating_mul(4))
                .max(1);
            let data = lu.as_mut_slice();
            let (head, tail) = data.split_at_mut(k1 * n);
            let head = &head[..];
            executor.for_each_chunk_mut(tail, block_rows * n, |_, chunk| {
                for row in chunk.chunks_mut(n) {
                    for k in k0..k1 {
                        let factor = row[k];
                        if is_exactly_zero(factor) {
                            continue;
                        }
                        let u_row = &head[k * n + k1..(k + 1) * n];
                        for (o, u) in row[k1..].iter_mut().zip(u_row) {
                            *o -= factor * u;
                        }
                    }
                }
            })?;
            k0 = k1;
        }

        Ok(Lu {
            factors: lu,
            perm,
            perm_sign,
        })
    }

    /// Panel width of the blocked [`Lu::factor_with`] elimination: wide
    /// enough to amortize the sequential panel work, narrow enough that
    /// trailing updates dominate and parallelize.
    const PANEL_WIDTH: usize = 32;

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.factors.rows()
    }

    /// Borrows the packed factors: unit-lower `L` below the diagonal,
    /// `U` on and above it.
    /// shape: (n, n)
    pub fn factors(&self) -> &Matrix {
        &self.factors
    }

    /// Row permutation applied by pivoting: `perm[i]` is the original row
    /// now in position `i`.
    pub fn perm(&self) -> &[usize] {
        &self.perm
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when `b.len() != dim()`, or
    /// [`Error::NonFiniteValue`] under `strict-checks` when the right-hand
    /// side or the computed solution is non-finite.
    /// shape: (b.len,)
    /// hot
    /// complexity: O(n^2)
    pub fn solve(&self, b: &Vector) -> Result<Vector> {
        let n = self.dim();
        if b.len() != n {
            return Err(Error::DimensionMismatch {
                operation: "lu solve",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        strict::check_finite("lu.solve rhs", b.as_slice())?;
        // Apply permutation: y = P b.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        // Forward substitution with unit lower triangle.
        for i in 1..n {
            let mut sum = x[i];
            for (lij, xj) in self.factors.row(i)[..i].iter().zip(&x[..i]) {
                sum -= lij * xj;
            }
            x[i] = sum;
        }
        // Back substitution with upper triangle.
        for i in (0..n).rev() {
            let row = self.factors.row(i);
            let mut sum = x[i];
            for (uij, xj) in row[i + 1..].iter().zip(&x[i + 1..]) {
                sum -= uij * xj;
            }
            x[i] = sum / row[i];
        }
        strict::check_finite("lu.solve output", &x)?;
        Ok(Vector::from(x))
    }

    /// Solves `A X = B` column by column.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when `B.rows() != dim()`.
    /// shape: (b.rows, b.cols)
    /// complexity: O(n^2 * c)
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(Error::DimensionMismatch {
                operation: "lu solve_matrix",
                left: (n, n),
                right: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let x = self.solve(&b.col(j))?;
            for (i, &xi) in x.as_slice().iter().enumerate() {
                out.set(i, j, xi);
            }
        }
        Ok(out)
    }

    /// Determinant of the factored matrix.
    pub fn det(&self) -> f64 {
        let mut det = self.perm_sign;
        for i in 0..self.dim() {
            det *= self.factors.get(i, i);
        }
        det
    }

    /// Inverse of the factored matrix.
    ///
    /// Prefer [`Lu::solve`] when only `A⁻¹ b` is needed; forming the inverse
    /// costs a full `n` extra solves.
    ///
    /// # Errors
    ///
    /// Propagates errors from the underlying solves (none in practice once
    /// factorization succeeded).
    /// shape: (n, n)
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }
}

/// One-shot convenience: factor `a` and solve `a x = b`.
///
/// # Errors
///
/// Propagates factorization and dimension errors from [`Lu`].
/// shape: (a.rows,)
pub fn solve(a: &Matrix, b: &Vector) -> Result<Vector> {
    Lu::factor(a)?.solve(b)
}

/// One-shot convenience: factor `a` and solve `a X = B`.
///
/// # Errors
///
/// Propagates factorization and dimension errors from [`Lu`].
/// shape: (a.rows, b.cols)
pub fn solve_matrix(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    Lu::factor(a)?.solve_matrix(b)
}

/// One-shot convenience: matrix inverse via LU.
///
/// # Errors
///
/// Propagates factorization errors from [`Lu`].
/// shape: (a.rows, a.cols)
pub fn inverse(a: &Matrix) -> Result<Matrix> {
    Lu::factor(a)?.inverse()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &Matrix, x: &Vector, b: &Vector) -> f64 {
        let ax = a.matvec(x).unwrap();
        (&ax - b).norm_max()
    }

    #[test]
    fn solves_known_system() {
        let a =
            Matrix::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]).unwrap();
        let b = Vector::from(vec![8.0, -11.0, -3.0]);
        let x = solve(&a, &b).unwrap();
        assert!(x.approx_eq(&Vector::from(vec![2.0, 3.0, -1.0]), 1e-12));
    }

    #[test]
    fn solve_requires_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(Lu::factor(&a), Err(Error::NotSquare { .. })));
    }

    #[test]
    fn rejects_singular_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(Lu::factor(&a), Err(Error::Singular { .. })));
    }

    #[test]
    fn rejects_zero_matrix() {
        assert!(Lu::factor(&Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = solve(&a, &Vector::from(vec![3.0, 4.0])).unwrap();
        assert!(x.approx_eq(&Vector::from(vec![4.0, 3.0]), 1e-14));
    }

    #[test]
    fn det_matches_closed_form() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let lu = Lu::factor(&a).unwrap();
        assert!((lu.det() + 2.0).abs() < 1e-12);
        // Permutation sign: swapping rows flips determinant sign.
        let swapped = Matrix::from_rows(&[&[3.0, 4.0], &[1.0, 2.0]]).unwrap();
        assert!((Lu::factor(&swapped).unwrap().det() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]).unwrap();
        let inv = inverse(&a).unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(2), 1e-12));
    }

    #[test]
    fn solve_matrix_solves_each_column() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[&[9.0, 4.0], &[8.0, 3.0]]).unwrap();
        let x = solve_matrix(&a, &b).unwrap();
        let back = a.matmul(&x).unwrap();
        assert!(back.approx_eq(&b, 1e-12));
    }

    #[test]
    fn solve_rejects_wrong_rhs_len() {
        let lu = Lu::factor(&Matrix::identity(2)).unwrap();
        assert!(lu.solve(&Vector::zeros(3)).is_err());
        assert!(lu.solve_matrix(&Matrix::zeros(3, 1)).is_err());
    }

    #[test]
    fn factor_with_is_bit_identical_to_sequential() {
        // Larger than one panel so the blocked path crosses panel
        // boundaries, with enough asymmetry to force pivoting.
        let n = 83;
        let a = Matrix::from_fn(n, n, |i, j| {
            let v = ((i * 37 + j * 11) as f64 * 0.29).sin();
            if i == j {
                v + 0.5
            } else {
                v
            }
        });
        let reference = Lu::factor(&a).unwrap();
        for workers in [1, 2, 3, 4] {
            let executor = gssl_runtime::Executor::with_workers(workers);
            let parallel = Lu::factor_with(&a, &executor).unwrap();
            assert_eq!(
                parallel.factors().as_slice(),
                reference.factors().as_slice(),
                "workers = {workers}"
            );
            assert_eq!(parallel.perm(), reference.perm(), "workers = {workers}");
            assert_eq!(parallel.det(), reference.det(), "workers = {workers}");
        }
    }

    #[test]
    fn factor_with_propagates_singularity() {
        let a = Matrix::from_fn(40, 40, |i, _| i as f64);
        let executor = gssl_runtime::Executor::with_workers(4);
        assert!(matches!(
            Lu::factor_with(&a, &executor),
            Err(Error::Singular { .. })
        ));
    }

    #[test]
    fn random_ish_system_has_small_residual() {
        // Deterministic pseudo-random fill (no rand dependency needed here).
        let n = 25;
        let mut state = 1u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let a = Matrix::from_fn(n, n, |i, j| {
            let base = next();
            if i == j {
                base + n as f64 // diagonally dominant, comfortably nonsingular
            } else {
                base
            }
        });
        let b = Vector::from_fn(n, |_| next());
        let x = solve(&a, &b).unwrap();
        assert!(residual(&a, &x, &b) < 1e-10);
    }
}
