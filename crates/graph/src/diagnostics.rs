//! Pre-flight diagnostics for similarity graphs.
//!
//! Both failure modes of graph-based SSL observed in this workspace's
//! experiments — stranded unlabeled vertices (compact kernels at small
//! bandwidths) and over-smoothing collapse (bandwidths past the data
//! scale) — are visible in simple graph statistics before any solve.
//! [`GraphReport`] gathers them in one pass.

use crate::components::connected_components;
use crate::error::{Error, Result};
use gssl_linalg::Matrix;

/// Summary statistics of a (dense) affinity graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphReport {
    /// Number of vertices.
    pub vertex_count: usize,
    /// Number of undirected edges with weight above the threshold
    /// (self-loops not counted).
    pub edge_count: usize,
    /// Smallest degree (full weighted degree, including self-loops).
    pub min_degree: f64,
    /// Largest degree.
    pub max_degree: f64,
    /// Mean degree.
    pub mean_degree: f64,
    /// Number of connected components (edges above the threshold).
    pub component_count: usize,
    /// Vertices with no edge above the threshold to any other vertex.
    pub isolated_count: usize,
    /// Ratio of the mean off-diagonal weight to the maximum possible
    /// weight (1 for the kernels in this workspace). Values near 1 signal
    /// the over-smoothing collapse of the toy example: `W ≈ 11ᵀ`.
    pub saturation: f64,
}

impl GraphReport {
    /// Computes the report for a symmetric affinity matrix, counting
    /// edges with weight strictly greater than `threshold`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArgument`] when `weights` is not square.
    pub fn compute(weights: &Matrix, threshold: f64) -> Result<Self> {
        if !weights.is_square() {
            return Err(Error::InvalidArgument {
                message: format!(
                    "affinity matrix must be square, got {}x{}",
                    weights.rows(),
                    weights.cols()
                ),
            });
        }
        let n = weights.rows();
        let labels = connected_components(weights, threshold)?;
        let component_count = labels.iter().copied().max().map_or(0, |m| m + 1);

        let degrees = weights.row_sums();
        let mut edge_count = 0;
        let mut isolated_count = 0;
        let mut off_diag_sum = 0.0;
        for i in 0..n {
            let mut connected = false;
            for j in 0..n {
                if i != j {
                    off_diag_sum += weights.get(i, j);
                    if j > i && weights.get(i, j) > threshold {
                        edge_count += 1;
                    }
                    if weights.get(i, j) > threshold {
                        connected = true;
                    }
                }
            }
            if !connected {
                isolated_count += 1;
            }
        }
        let off_diag_pairs = (n * n).saturating_sub(n) as f64;
        let saturation = if off_diag_pairs > 0.0 {
            off_diag_sum / off_diag_pairs
        } else {
            0.0
        };

        Ok(GraphReport {
            vertex_count: n,
            edge_count,
            min_degree: degrees.min().unwrap_or(0.0),
            max_degree: degrees.max().unwrap_or(0.0),
            mean_degree: if n > 0 { degrees.sum() / n as f64 } else { 0.0 },
            component_count,
            isolated_count,
            saturation,
        })
    }

    /// Returns `true` when the graph is connected (single component, no
    /// vertices at all counts as connected).
    pub fn is_connected(&self) -> bool {
        self.component_count <= 1
    }

    /// Human-readable warnings about the failure modes the report can
    /// detect. Empty when the graph looks healthy.
    pub fn warnings(&self) -> Vec<String> {
        let mut warnings = Vec::new();
        if self.isolated_count > 0 {
            warnings.push(format!(
                "{} isolated vertices — increase the bandwidth or use a kernel \
                 with wider support (criteria will reject stranded unlabeled points)",
                self.isolated_count
            ));
        }
        if self.component_count > 1 {
            warnings.push(format!(
                "{} connected components — scores cannot propagate across them",
                self.component_count
            ));
        }
        if self.saturation > 0.9 {
            warnings.push(format!(
                "weight saturation {:.2} — the graph is nearly complete with \
                 uniform weights; scores will collapse toward the labeled mean \
                 (decrease the bandwidth)",
                self.saturation
            ));
        }
        warnings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affinity::affinity_matrix;
    use crate::Kernel;

    fn spread_points() -> Matrix {
        Matrix::from_fn(10, 2, |i, j| (i * 2 + j) as f64 * 0.37)
    }

    #[test]
    fn healthy_graph_has_no_warnings() {
        let w = affinity_matrix(&spread_points(), Kernel::Gaussian, 1.0).unwrap();
        let report = GraphReport::compute(&w, 1e-6).unwrap();
        assert_eq!(report.vertex_count, 10);
        assert!(report.is_connected());
        assert_eq!(report.isolated_count, 0);
        assert!(report.min_degree > 0.0);
        assert!(report.min_degree <= report.mean_degree);
        assert!(report.mean_degree <= report.max_degree);
        assert!(report.warnings().is_empty(), "{:?}", report.warnings());
    }

    #[test]
    fn oversmoothed_graph_warns_about_saturation() {
        let w = affinity_matrix(&spread_points(), Kernel::Gaussian, 500.0).unwrap();
        let report = GraphReport::compute(&w, 1e-6).unwrap();
        assert!(report.saturation > 0.99);
        assert!(report.warnings().iter().any(|w| w.contains("saturation")));
    }

    #[test]
    fn fragmented_graph_warns_about_components() {
        // Two far clusters with a compact kernel.
        let points = Matrix::from_rows(&[&[0.0], &[0.1], &[50.0], &[50.1]]).unwrap();
        let w = affinity_matrix(&points, Kernel::Boxcar, 1.0).unwrap();
        let report = GraphReport::compute(&w, 0.0).unwrap();
        assert_eq!(report.component_count, 2);
        assert!(!report.is_connected());
        assert!(report.warnings().iter().any(|w| w.contains("components")));
    }

    #[test]
    fn isolated_vertices_are_counted() {
        let points = Matrix::from_rows(&[&[0.0], &[0.5], &[99.0]]).unwrap();
        let w = affinity_matrix(&points, Kernel::Boxcar, 1.0).unwrap();
        let report = GraphReport::compute(&w, 0.0).unwrap();
        assert_eq!(report.isolated_count, 1);
        assert!(report.warnings().iter().any(|w| w.contains("isolated")));
    }

    #[test]
    fn edge_count_matches_hand_count() {
        // Path graph 0-1-2 (unit weights, no self-loops).
        let w = Matrix::from_rows(&[&[0.0, 1.0, 0.0], &[1.0, 0.0, 1.0], &[0.0, 1.0, 0.0]]).unwrap();
        let report = GraphReport::compute(&w, 0.0).unwrap();
        assert_eq!(report.edge_count, 2);
        assert_eq!(report.mean_degree, 4.0 / 3.0);
    }

    #[test]
    fn validates_shape_and_handles_empty() {
        assert!(GraphReport::compute(&Matrix::zeros(2, 3), 0.0).is_err());
        let report = GraphReport::compute(&Matrix::zeros(0, 0), 0.0).unwrap();
        assert_eq!(report.vertex_count, 0);
        assert!(report.is_connected());
        assert_eq!(report.saturation, 0.0);
    }
}
