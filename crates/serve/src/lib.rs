//! # gssl-serve — fit-once, query-many prediction serving
//!
//! The transductive solvers in [`gssl`] answer one question: given a
//! fixed graph, what are the scores of its unlabeled vertices? A serving
//! deployment asks three more:
//!
//! 1. **Out-of-sample queries.** Points that were never part of the
//!    fitted graph must be scored without refitting. Theorem II.1 of the
//!    paper shows the graph solution converges to the Nadaraya–Watson
//!    kernel regressor, which justifies the extension (Eq. 6)
//!    `f(x) = Σᵢ w(x, xᵢ) fᵢ / Σᵢ w(x, xᵢ)` — an `O(N·d)` weighted
//!    average over the fitted scores, no linear solve involved. The
//!    evaluation lives in one place ([`mod@crate::extend`]) shared by
//!    every engine flavor.
//! 2. **Streaming labels.** When a previously unlabeled vertex reveals
//!    its label, the criterion system changes by exactly rank one, so the
//!    cached inverse is repaired with a Sherman–Morrison-family update in
//!    quadratic time instead of a cubic refit (details in
//!    [`mod@crate::engine`]).
//! 3. **Throughput.** Queries are independent reads of shared fitted
//!    state; the engine shards batches across workers through the shared
//!    [`Executor`] from [`gssl_runtime`] (dependency-free,
//!    `std::thread::scope` only), and [`MetricsSnapshot`] reports p50/p99
//!    latency and sustained throughput via the [`gssl_stats`] descriptive
//!    machinery.
//!
//! Two engines implement this contract:
//!
//! * [`ServingEngine`] — the monolithic reference: one criterion system,
//!   one cached factorization.
//! * [`ShardedEngine`] — the component-decomposed production engine:
//!   both criterion systems are block-diagonal across connected
//!   components of the kernel graph ([`mod@crate::shard`]), so each
//!   component is fitted as an independent task, label folds rebuild
//!   only the affected shard behind an epoch snapshot/swap
//!   ([`mod@crate::sharded`]), and the full fitted state round-trips
//!   through a versioned binary snapshot ([`mod@crate::snapshot`]) for
//!   factorization-free cold starts. Its predictions are
//!   bitwise-identical to the monolithic engine's under the direct
//!   solver route.
//!
//! In front of either engine, [`BatchQueue`] ([`mod@crate::batch`])
//! coalesces individual requests into size/deadline-bounded batches with
//! admission control for overload shedding.
//!
//! [`ServingEngine::fit`] builds the kernel graph and the criterion
//! problem internally from raw points (labeled first), so callers hand
//! over coordinates once and then only exchange queries and labels.
//!
//! Enable the `strict-checks` cargo feature to extend the workspace's
//! numeric sanitizer across the serving boundary: kernel rows, cached
//! scores and batch outputs are then checked for NaN/infinity and
//! reported as [`Error::NonFiniteValue`]. Query coordinates and observed
//! labels are validated unconditionally.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Admission-controlled coalescing of predict traffic into batches.
pub mod batch;
/// Engine configuration: criterion, kernel parameters, update policy.
pub mod config;
/// The fit-once, query-many serving engine and its rank-1 update math.
pub mod engine;
/// Error type for the serving boundary.
pub mod error;
/// The shared out-of-sample (Eq. 6) query plane.
pub(crate) mod extend;
/// Latency/throughput counters built on `gssl-stats`.
pub mod metrics;
/// Component-based shard decomposition of the fitted graph.
pub mod shard;
/// The shard-decomposed engine with epoch snapshot/swap label folding.
pub mod sharded;
/// Versioned binary snapshot/restore of a fitted sharded engine.
pub mod snapshot;
/// Query/prediction value types shared by every engine flavor.
pub mod types;

/// Deterministic interleaving harness for the execution layer's
/// chunk-claim protocol, re-exported from [`gssl_runtime`] (where it now
/// lives) so existing `gssl_serve::sim` callers keep compiling.
#[cfg(feature = "strict-checks")]
pub use gssl_runtime::sim;

pub use batch::{Admission, BatchPolicy, BatchQueue, CoalescedBatch};
pub use config::{EngineConfig, EngineSolver, QueryPath, ServeCriterion};
pub use engine::ServingEngine;
pub use error::{Error, Result};
pub use gssl_runtime::Executor;
pub use metrics::MetricsSnapshot;
pub use shard::{Shard, ShardPlan};
pub use sharded::ShardedEngine;
pub use snapshot::{SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
pub use types::{Prediction, QueryPoint};

/// Scoped thread pool, re-exported from [`gssl_runtime`] (where it now
/// lives).
#[deprecated(
    since = "0.2.0",
    note = "use gssl_runtime::ThreadPool (or gssl_serve::Executor) directly"
)]
pub type ThreadPool = gssl_runtime::ThreadPool;
