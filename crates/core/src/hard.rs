//! The hard criterion (Eq. 1/5 of the paper): harmonic scores with the
//! labeled responses clamped.
//!
//! ```text
//! min_f Σ_ij w_ij (f_i − f_j)²   subject to   f_i = Y_i, i ≤ n
//! ```
//!
//! whose unlabeled solution is `f_U = (D₂₂ − W₂₂)⁻¹ W₂₁ Y_n` (Eq. 5).
//! Theorem II.1 proves this estimator consistent when `h_n → 0`,
//! `n h_n^d → ∞` and `m = o(n h_n^d)`.

use crate::error::{Error, Result};
use crate::multiclass::MulticlassScores;
use crate::problem::{Problem, Scores};
use crate::propagation::{LabelPropagation, SweepKind};
use crate::traits::TransductiveModel;
use crate::weights::Weights;
use gssl_linalg::{
    strict, CgOptions, Cholesky, Factorization, Lu, Matrix, PrecondCg, SolverBackend, SolverPolicy,
};

/// Numerical backend used to solve the `m × m` hard-criterion system.
///
/// Each variant (except `Propagation`) is a thin policy alias resolving to
/// a [`gssl_linalg::Factorization`] backend; the actual solve always runs
/// through that shared layer.
#[derive(Debug, Clone, PartialEq, Default)]
#[non_exhaustive]
pub enum HardSolver {
    /// Cholesky factorization — the default; `D₂₂ − W₂₂` is symmetric
    /// positive definite whenever the problem is anchored.
    #[default]
    Cholesky,
    /// LU with partial pivoting — slightly more robust to borderline
    /// conditioning, twice the work of Cholesky.
    Lu,
    /// Jacobi-preconditioned conjugate gradient over the CSR-assembled
    /// system — never densifies, whatever representation the problem holds.
    ConjugateGradient(CgOptions),
    /// Iterative label propagation (Jacobi or Gauss–Seidel sweeps).
    Propagation(SweepKind),
    /// Let a [`SolverPolicy`] pick the backend from system size, symmetry,
    /// and nonzero density.
    Auto(SolverPolicy),
}

/// The hard criterion solver.
///
/// ```
/// use gssl::{HardCriterion, Problem, TransductiveModel};
/// use gssl_linalg::Matrix;
/// # fn main() -> Result<(), gssl::Error> {
/// // A labeled vertex (y = 1) strongly tied to one unlabeled vertex and
/// // weakly to another.
/// let w = Matrix::from_rows(&[
///     &[1.0, 0.9, 0.1],
///     &[0.9, 1.0, 0.5],
///     &[0.1, 0.5, 1.0],
/// ])?;
/// let problem = Problem::new(w, vec![1.0])?;
/// let scores = HardCriterion::new().fit(&problem)?;
/// // Labeled response is reproduced exactly; unlabeled scores interpolate.
/// assert_eq!(scores.labeled(), &[1.0]);
/// assert!(scores.unlabeled().iter().all(|&s| (0.0..=1.0).contains(&s)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HardCriterion {
    solver: HardSolver,
    executor: gssl_runtime::Executor,
}

impl HardCriterion {
    /// Creates a hard-criterion solver with the default (Cholesky)
    /// backend.
    pub fn new() -> Self {
        HardCriterion::default()
    }

    /// Selects the numerical backend.
    pub fn solver(mut self, solver: HardSolver) -> Self {
        self.solver = solver;
        self
    }

    /// Runs the factorization (and, for CG, the solves' matvecs) on
    /// `executor`. Scores stay bit-identical to the sequential fit at any
    /// worker count.
    #[must_use]
    pub fn with_executor(mut self, executor: gssl_runtime::Executor) -> Self {
        self.executor = executor;
        self
    }

    /// Borrows the configured backend.
    pub fn solver_kind(&self) -> &HardSolver {
        &self.solver
    }

    /// Borrows the executor the factorization runs on.
    pub fn executor(&self) -> &gssl_runtime::Executor {
        &self.executor
    }

    /// Resolves the configured solver to a factored backend for this
    /// problem's `D₂₂ − W₂₂` system. Direct backends assemble densely, the
    /// CG backend assembles in CSR (no densification), and `Auto` defers
    /// to its [`SolverPolicy`] on whichever representation the problem
    /// holds.
    fn factor_for(&self, problem: &Problem) -> Result<SolverBackend> {
        match &self.solver {
            HardSolver::Cholesky => Ok(SolverBackend::Cholesky(Cholesky::factor_with(
                &problem.unlabeled_system()?,
                &self.executor,
            )?)),
            HardSolver::Lu => Ok(SolverBackend::Lu(Lu::factor_with(
                &problem.unlabeled_system()?,
                &self.executor,
            )?)),
            HardSolver::ConjugateGradient(options) => Ok(SolverBackend::Cg(
                PrecondCg::factor_sparse(&problem.unlabeled_system_csr()?, options.clone())?
                    .with_executor(self.executor.clone()),
            )),
            HardSolver::Auto(policy) => {
                // The criterion's executor wins when one was set; otherwise
                // the policy keeps whatever executor it was built with.
                let policy = if self.executor.is_sequential() {
                    policy.clone()
                } else {
                    policy.clone().with_executor(self.executor.clone())
                };
                match problem.weights() {
                    Weights::Dense(_) => Ok(policy.factor_dense(&problem.unlabeled_system()?)?),
                    Weights::Sparse(_) => {
                        Ok(policy.factor_sparse(&problem.unlabeled_system_csr()?)?)
                    }
                }
            }
            HardSolver::Propagation(_) => Err(Error::InvalidParameter {
                message: "the propagation backend solves iteratively and has no factorization"
                    .to_owned(),
            }),
        }
    }

    /// Solves `(D₂₂ − W₂₂) f_U = W₂₁ Y_n` and returns all scores.
    ///
    /// # Errors
    ///
    /// * [`crate::Error::UnanchoredUnlabeled`] when some unlabeled vertex has no
    ///   positive-weight path to a labeled vertex (singular system).
    /// * [`crate::Error::Linalg`] when the backend fails (e.g. CG budget
    ///   exhausted).
    /// deterministic
    pub fn fit(&self, problem: &Problem) -> Result<Scores> {
        problem.require_anchored(0.0)?;
        if problem.n_unlabeled() == 0 {
            return Ok(Scores::from_parts(problem.labels(), &[]));
        }
        if let HardSolver::Propagation(sweep) = &self.solver {
            return LabelPropagation::new().sweep(*sweep).fit(problem);
        }
        let backend = self.factor_for(problem)?;
        let unlabeled = backend.solve(&problem.unlabeled_rhs()?)?;
        strict::check_finite("hard criterion output", unlabeled.as_slice())?;
        Ok(Scores::from_parts(problem.labels(), unlabeled.as_slice()))
    }

    /// One-vs-rest multiclass with a *shared* factorization: the system
    /// `D₂₂ − W₂₂` is identical for every class (only the right-hand side
    /// `W₂₁ Y⁽ᶜ⁾` changes), so it is factored once and all `k` class
    /// columns are solved through `solve_matrix` — `O(m³ + k·m²)` instead
    /// of the `O(k·m³)` of refactoring per class.
    ///
    /// `class_labels[i]` is the class of labeled vertex `i`; classes are
    /// `0..class_count`. Produces the same scores as fitting
    /// [`crate::OneVsRest`] over this criterion class by class.
    ///
    /// Every backend that resolves to a [`gssl_linalg::Factorization`]
    /// (Cholesky, LU, CG, `Auto`) shares one handle across all classes;
    /// only the propagation backend falls back to one fit per class.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidParameter`] when `class_count < 2`.
    /// * [`Error::InvalidProblem`] when a class label is out of range or
    ///   counts mismatch the weight matrix.
    /// * [`Error::UnanchoredUnlabeled`] / [`Error::Linalg`] as in
    ///   [`HardCriterion::fit`].
    /// deterministic
    pub fn fit_multiclass(
        &self,
        weights: &Matrix,
        class_labels: &[usize],
        class_count: usize,
    ) -> Result<MulticlassScores> {
        if class_count < 2 {
            return Err(Error::InvalidParameter {
                message: format!("multiclass needs >= 2 classes, got {class_count}"),
            });
        }
        if let Some(&bad) = class_labels.iter().find(|&&c| c >= class_count) {
            return Err(Error::InvalidProblem {
                message: format!("class label {bad} out of range for {class_count} classes"),
            });
        }
        let n = class_labels.len();
        // `(n + m) × k` indicator targets, labeled rows one-hot.
        let indicators =
            Matrix::from_fn(
                n,
                class_count,
                |i, c| {
                    if class_labels[i] == c {
                        1.0
                    } else {
                        0.0
                    }
                },
            );
        // Validation (shape, symmetry, finiteness, anchoring) happens once
        // through the class-0 problem; every class shares the same graph.
        let problem = Problem::new(weights.clone(), indicators.col(0).into_inner())?;
        problem.require_anchored(0.0)?;
        let total = problem.len();
        let m = problem.n_unlabeled();

        let mut scores = Matrix::zeros(total, class_count);
        for i in 0..n {
            for c in 0..class_count {
                scores.set(i, c, indicators.get(i, c));
            }
        }
        if m == 0 {
            return Ok(MulticlassScores::from_matrix(scores, n));
        }

        let unlabeled = match &self.solver {
            HardSolver::Propagation(sweep) => {
                let mut out = Matrix::zeros(m, class_count);
                for c in 0..class_count {
                    let class_problem =
                        Problem::new(weights.clone(), indicators.col(c).into_inner())?;
                    let fitted = LabelPropagation::new().sweep(*sweep).fit(&class_problem)?;
                    for (a, &s) in fitted.unlabeled().iter().enumerate() {
                        out.set(a, c, s);
                    }
                }
                out
            }
            _ => {
                // One shared factorization for every class: only the RHS
                // block W₂₁ Y_ind changes per class.
                let rhs = problem.weight_blocks()?.a21.matmul(&indicators)?;
                self.factor_for(&problem)?.solve_matrix(&rhs)?
            }
        };
        strict::check_finite_matrix("hard multiclass output", &unlabeled)?;
        for a in 0..m {
            for c in 0..class_count {
                scores.set(n + a, c, unlabeled.get(a, c));
            }
        }
        Ok(MulticlassScores::from_matrix(scores, n))
    }
}

impl TransductiveModel for HardCriterion {
    fn fit(&self, problem: &Problem) -> Result<Scores> {
        HardCriterion::fit(self, problem)
    }

    fn name(&self) -> String {
        "hard criterion (lambda = 0)".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gssl_linalg::Matrix;

    fn sample_problem() -> Problem {
        let w = Matrix::from_rows(&[
            &[1.0, 0.2, 0.7, 0.1],
            &[0.2, 1.0, 0.3, 0.8],
            &[0.7, 0.3, 1.0, 0.4],
            &[0.1, 0.8, 0.4, 1.0],
        ])
        .unwrap();
        Problem::new(w, vec![1.0, 0.0]).unwrap()
    }

    fn all_backends() -> Vec<HardCriterion> {
        vec![
            HardCriterion::new(),
            HardCriterion::new().solver(HardSolver::Lu),
            HardCriterion::new().solver(HardSolver::ConjugateGradient(CgOptions {
                tolerance: 1e-12,
                ..CgOptions::default()
            })),
            HardCriterion::new().solver(HardSolver::Propagation(SweepKind::Simultaneous)),
            HardCriterion::new().solver(HardSolver::Propagation(SweepKind::InPlace)),
            HardCriterion::new().solver(HardSolver::Auto(SolverPolicy::default())),
        ]
    }

    #[test]
    fn all_backends_agree() {
        let p = sample_problem();
        let reference = HardCriterion::new().fit(&p).unwrap();
        for backend in all_backends() {
            let scores = backend.fit(&p).unwrap();
            for (a, b) in reference.unlabeled().iter().zip(scores.unlabeled()) {
                assert!(
                    (a - b).abs() < 1e-6,
                    "{:?} disagrees: {a} vs {b}",
                    backend.solver_kind()
                );
            }
        }
    }

    #[test]
    fn solution_satisfies_normal_equations() {
        let p = sample_problem();
        let scores = HardCriterion::new().fit(&p).unwrap();
        let system = p.unlabeled_system().unwrap();
        let rhs = p.unlabeled_rhs().unwrap();
        let f_u = gssl_linalg::Vector::from(scores.unlabeled());
        let residual = &system.matvec(&f_u).unwrap() - &rhs;
        assert!(residual.norm_max() < 1e-10);
    }

    #[test]
    fn maximum_principle_holds() {
        // Unlabeled harmonic scores lie within [min Y, max Y].
        let p = sample_problem();
        let scores = HardCriterion::new().fit(&p).unwrap();
        for &s in scores.unlabeled() {
            assert!((0.0..=1.0).contains(&s), "score {s} escapes label range");
        }
    }

    #[test]
    fn labeled_scores_equal_observations() {
        let p = sample_problem();
        let scores = HardCriterion::new().fit(&p).unwrap();
        assert_eq!(scores.labeled(), p.labels());
    }

    #[test]
    fn toy_example_identical_inputs_give_label_mean() {
        // Section III of the paper: when all inputs coincide (w_ij ≡ 1),
        // every unlabeled score equals the mean of the observed labels.
        let size = 6;
        let n = 4;
        let w = Matrix::filled(size, size, 1.0);
        let labels = vec![1.0, 0.0, 1.0, 1.0];
        let mean = 3.0 / 4.0;
        let p = Problem::new(w, labels).unwrap();
        let scores = HardCriterion::new().fit(&p).unwrap();
        assert_eq!(scores.unlabeled().len(), size - n);
        for &s in scores.unlabeled() {
            assert!((s - mean).abs() < 1e-10, "expected label mean, got {s}");
        }
    }

    #[test]
    fn toy_example_inverse_matches_closed_form() {
        // The explicit inverse in Section III:
        // (D22 - W22)^{-1} = (n+1)/(n(m+n)) on the diagonal,
        //                    1/(n(m+n)) off the diagonal.
        let n = 3;
        let m = 2;
        let size = n + m;
        let w = Matrix::filled(size, size, 1.0);
        let p = Problem::new(w, vec![1.0; n]).unwrap();
        let system = p.unlabeled_system().unwrap();
        let inv = gssl_linalg::inverse(&system).unwrap();
        let nf = n as f64;
        let total = (n + m) as f64;
        for a in 0..m {
            for b in 0..m {
                let expected = if a == b {
                    (nf + 1.0) / (nf * total)
                } else {
                    1.0 / (nf * total)
                };
                assert!(
                    (inv.get(a, b) - expected).abs() < 1e-12,
                    "inverse entry ({a},{b}) = {} != {expected}",
                    inv.get(a, b)
                );
            }
        }
    }

    #[test]
    fn executor_leaves_fit_bit_identical() {
        // A dense anchored problem large enough to cross the LU/Cholesky
        // panel width, so the parallel trailing updates actually run.
        let size = 72;
        let n = 12;
        let w = Matrix::from_fn(size, size, |i, j| {
            if i == j {
                1.0
            } else {
                (-(((i as f64) - (j as f64)) / 10.0).powi(2)).exp()
            }
        });
        let labels: Vec<f64> = (0..n).map(|i| f64::from(i as u8 % 2)).collect();
        let p = Problem::new(w, labels).unwrap();
        for solver in [
            HardSolver::Cholesky,
            HardSolver::Lu,
            HardSolver::ConjugateGradient(CgOptions::default()),
            HardSolver::Auto(SolverPolicy::default()),
        ] {
            let reference = HardCriterion::new().solver(solver.clone()).fit(&p).unwrap();
            for workers in [1, 2, 4] {
                let scores = HardCriterion::new()
                    .solver(solver.clone())
                    .with_executor(gssl_runtime::Executor::with_workers(workers))
                    .fit(&p)
                    .unwrap();
                assert_eq!(
                    scores.unlabeled(),
                    reference.unlabeled(),
                    "{solver:?} at {workers} workers diverged"
                );
            }
        }
    }

    #[test]
    fn rejects_unanchored_problems() {
        let w = Matrix::from_rows(&[&[1.0, 0.5, 0.0], &[0.5, 1.0, 0.0], &[0.0, 0.0, 1.0]]).unwrap();
        let p = Problem::new(w, vec![1.0]).unwrap();
        for backend in all_backends() {
            assert!(matches!(
                backend.fit(&p),
                Err(Error::UnanchoredUnlabeled { unlabeled_index: 1 })
            ));
        }
    }

    #[test]
    fn fully_labeled_problem_returns_labels() {
        let w = Matrix::filled(2, 2, 1.0);
        let p = Problem::new(w, vec![0.3, 0.9]).unwrap();
        let scores = HardCriterion::new().fit(&p).unwrap();
        assert_eq!(scores.all(), &[0.3, 0.9]);
        assert!(scores.unlabeled().is_empty());
    }

    #[test]
    fn trait_object_usage() {
        let model: Box<dyn TransductiveModel> = Box::new(HardCriterion::new());
        assert!(model.name().contains("hard"));
        let p = sample_problem();
        assert!(model.fit(&p).is_ok());
    }
}
