//! Property-based tests for graph construction invariants.

use gssl_graph::{
    affinity::{affinity_matrix, pairwise_squared_distances},
    components::{connected_components, is_connected},
    degrees, dirichlet_energy, epsilon_graph, knn_graph, laplacian, Kernel, LaplacianKind,
    Symmetrization,
};
use gssl_linalg::{Matrix, Vector};
use proptest::prelude::*;

const N_POINTS: usize = 8;
const DIM: usize = 3;

fn point_cloud() -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-2.0f64..2.0, N_POINTS * DIM)
        .prop_map(|data| Matrix::from_vec(N_POINTS, DIM, data).expect("length fixed"))
}

fn any_kernel() -> impl Strategy<Value = Kernel> {
    prop::sample::select(Kernel::all().to_vec())
}

fn scores() -> impl Strategy<Value = Vector> {
    prop::collection::vec(-1.0f64..1.0, N_POINTS).prop_map(Vector::from)
}

proptest! {
    #[test]
    fn affinity_is_symmetric_in_unit_range(pts in point_cloud(), kernel in any_kernel(),
                                           h in 0.1f64..3.0) {
        let w = affinity_matrix(&pts, kernel, h).unwrap();
        prop_assert!(w.is_symmetric(0.0));
        for i in 0..N_POINTS {
            prop_assert_eq!(w.get(i, i), 1.0);
            for j in 0..N_POINTS {
                let v = w.get(i, j);
                prop_assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn affinity_decreases_with_distance_rank(pts in point_cloud(), h in 0.2f64..2.0) {
        // For the Gaussian kernel, larger distance => no larger weight.
        let d2 = pairwise_squared_distances(&pts).unwrap();
        let w = affinity_matrix(&pts, Kernel::Gaussian, h).unwrap();
        for i in 0..N_POINTS {
            for j in 0..N_POINTS {
                for k in 0..N_POINTS {
                    if d2.get(i, j) <= d2.get(i, k) {
                        prop_assert!(w.get(i, j) >= w.get(i, k) - 1e-15);
                    }
                }
            }
        }
    }

    #[test]
    fn laplacian_rows_sum_to_zero_and_psd(pts in point_cloud(), kernel in any_kernel(),
                                          h in 0.1f64..3.0, f in scores()) {
        let w = affinity_matrix(&pts, kernel, h).unwrap();
        let l = laplacian(&w, LaplacianKind::Unnormalized).unwrap();
        prop_assert!(l.is_symmetric(1e-12));
        for s in l.row_sums().iter() {
            prop_assert!(s.abs() < 1e-10);
        }
        let quad = f.dot(&l.matvec(&f).unwrap()).unwrap();
        prop_assert!(quad >= -1e-10);
        // The paper's penalty is exactly twice the quadratic form.
        let energy = dirichlet_energy(&w, &f).unwrap();
        prop_assert!((energy - 2.0 * quad).abs() <= 1e-9 * energy.abs().max(1.0));
    }

    #[test]
    fn degrees_are_at_least_self_weight(pts in point_cloud(), kernel in any_kernel(),
                                        h in 0.1f64..3.0) {
        let w = affinity_matrix(&pts, kernel, h).unwrap();
        for d in degrees(&w).unwrap().iter() {
            prop_assert!(d >= 1.0 - 1e-15); // w_ii = 1 contributes
        }
    }

    #[test]
    fn knn_graph_is_symmetric_without_self_loops(pts in point_cloud(), k in 1usize..N_POINTS,
                                                 h in 0.2f64..2.0) {
        let g = knn_graph(&pts, k, Kernel::Gaussian, h, Symmetrization::Union).unwrap();
        prop_assert!(g.is_symmetric(1e-12));
        for i in 0..N_POINTS {
            prop_assert_eq!(g.get(i, i), 0.0);
        }
        // Union graph has at least k edges incident per vertex... at least
        // the out-edges survive (Gaussian weight is always positive).
        for i in 0..N_POINTS {
            prop_assert!(g.row_iter(i).count() >= k);
        }
    }

    #[test]
    fn mutual_knn_is_subgraph_of_union(pts in point_cloud(), k in 1usize..N_POINTS,
                                       h in 0.2f64..2.0) {
        let union = knn_graph(&pts, k, Kernel::Gaussian, h, Symmetrization::Union).unwrap();
        let mutual = knn_graph(&pts, k, Kernel::Gaussian, h, Symmetrization::Mutual).unwrap();
        prop_assert!(mutual.nnz() <= union.nnz());
        for i in 0..N_POINTS {
            for (j, v) in mutual.row_iter(i) {
                prop_assert!((union.get(i, j) - v).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn epsilon_graph_edges_respect_radius(pts in point_cloud(), eps in 0.5f64..4.0) {
        let g = epsilon_graph(&pts, eps, Kernel::Gaussian, 1.0).unwrap();
        let d2 = pairwise_squared_distances(&pts).unwrap();
        for i in 0..N_POINTS {
            for (j, _) in g.row_iter(i) {
                prop_assert!(d2.get(i, j) <= eps * eps + 1e-12);
            }
        }
    }

    #[test]
    fn full_gaussian_graph_is_connected(pts in point_cloud(), h in 1.0f64..3.0) {
        // Gaussian weights are strictly positive => one component. (At
        // much smaller bandwidths exp(-d²/h²) underflows to exactly 0 in
        // f64, so the bandwidth range here keeps weights representable.)
        let w = affinity_matrix(&pts, Kernel::Gaussian, h).unwrap();
        prop_assert!(is_connected(&w, 0.0).unwrap());
        let labels = connected_components(&w, 0.0).unwrap();
        prop_assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn component_labels_are_contiguous(pts in point_cloud(), eps in 0.2f64..3.0) {
        let g = epsilon_graph(&pts, eps, Kernel::Boxcar, eps).unwrap();
        let labels = connected_components(&g.to_dense(), 0.0).unwrap();
        let max = labels.iter().copied().max().unwrap();
        for expect in 0..=max {
            prop_assert!(labels.contains(&expect), "label {expect} skipped");
        }
    }
}
