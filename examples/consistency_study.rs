//! A miniature of the paper's Figure 1: watch the hard criterion's RMSE
//! shrink as the labeled sample grows, while larger λ hurts at every n.
//!
//! ```text
//! cargo run --release --example consistency_study
//! ```

use gssl::{HardCriterion, Problem, SoftCriterion};
use gssl_datasets::synthetic::{paper_dataset, PaperModel, PAPER_DIM};
use gssl_graph::{affinity::affinity_matrix, bandwidth::paper_rate, Kernel};
use gssl_stats::metrics::rmse;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let m = 30; // unlabeled points, fixed as in Figure 1
    let reps = 15;
    let lambdas = [0.0, 0.1, 5.0];

    println!("Model 1, m = {m}, {reps} repetitions; sigma = h_n = (log n / n)^(1/5)\n");
    println!(
        "{:>6}  {:>10}  {:>10}  {:>10}",
        "n", "λ=0 (hard)", "λ=0.1", "λ=5"
    );

    for &n in &[20usize, 50, 100, 200, 400] {
        let mut sums = [0.0f64; 3];
        for rep in 0..reps {
            let mut rng = StdRng::seed_from_u64(1000 + rep);
            let ds = paper_dataset(PaperModel::Linear, n + m, &mut rng)?;
            let ssl = ds.arrange_prefix(n)?;
            let truth = ssl.hidden_truth.as_ref().expect("synthetic truth");
            let h = paper_rate(n, PAPER_DIM)?;
            let w = affinity_matrix(&ssl.inputs, Kernel::Gaussian, h)?;
            let problem = Problem::new(w, ssl.labels.clone())?;
            for (k, &lambda) in lambdas.iter().enumerate() {
                let scores = if lambda == 0.0 {
                    HardCriterion::new().fit(&problem)?
                } else {
                    SoftCriterion::new(lambda)?.fit(&problem)?
                };
                sums[k] += rmse(truth, scores.unlabeled())?;
            }
        }
        let avg = sums.map(|s| s / reps as f64);
        println!(
            "{n:>6}  {:>10.4}  {:>10.4}  {:>10.4}",
            avg[0], avg[1], avg[2]
        );
    }

    println!("\nExpected pattern (Theorem II.1 + Figure 1): each column falls");
    println!("with n, and the hard column stays below the soft ones.");
    Ok(())
}
