//! # gssl-datasets
//!
//! Dataset substrate for the `gssl` workspace: every workload used in the
//! evaluation of Du, Zhao & Wang (ICDCS 2019), generated synthetically.
//!
//! * [`synthetic`] — the paper's **Model 1** (linear logit, its Eq. 11) and
//!   **Model 2** (interaction logit) over the paper's truncated
//!   multivariate-normal inputs, plus classic toy problems (two moons,
//!   concentric circles, Gaussian blobs, a 1-D regression).
//! * [`coil`] — a procedurally rendered substitute for the Columbia Object
//!   Image Library benchmark used in the paper's Figure 5 (24 objects × 72
//!   angles × 16×16 pixels, six classes grouped 3-vs-3 into a binary
//!   task). See DESIGN.md for the substitution rationale.
//! * [`Dataset`] / [`SemiSupervisedData`] — containers that keep the true
//!   regression function alongside noisy labels (the paper scores against
//!   `q(X)`, not against `Y`), and the labeled-first arrangement of the
//!   paper's Section II.
//!
//! ## Example
//!
//! ```
//! use gssl_datasets::synthetic::{paper_dataset, PaperModel};
//! use rand::SeedableRng;
//! # fn main() -> Result<(), gssl_datasets::Error> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let ds = paper_dataset(PaperModel::Linear, 130, &mut rng)?;
//! let ssl = ds.arrange_prefix(100)?; // n = 100 labeled, m = 30 unlabeled
//! assert_eq!(ssl.n_labeled(), 100);
//! assert_eq!(ssl.n_unlabeled(), 30);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Synthetic COIL-style rotating-object image library.
pub mod coil;
mod dataset;
mod error;
/// Classic toy datasets: two moons, circles, blobs.
pub mod shapes;
/// The paper's Model 1 / Model 2 generators.
pub mod synthetic;

pub use dataset::{Dataset, SemiSupervisedData};
pub use error::{Error, Result};
