//! The soft criterion (Eq. 2/3/4 of the paper): Laplacian-regularized
//! least squares.
//!
//! ```text
//! min_f Σ_{i≤n} (Y_i − f_i)² + (λ/2) Σ_ij w_ij (f_i − f_j)²
//! ```
//!
//! In matrix form `min_f (f − Y)ᵀ V (f − Y) + λ fᵀ L f` (Eq. 3), with the
//! block-explicit unlabeled solution of Eq. 4:
//!
//! ```text
//! f_U = (D₂₂ − W₂₂ − λ W₂₁ A⁻¹ W₁₂)⁻¹ W₂₁ A⁻¹ Y_n,
//! A = I_n + λ D₁₁ − λ W₁₁.
//! ```
//!
//! Evaluated literally at `λ = 0` this reduces to the hard criterion's
//! Eq. 5 — Proposition II.1. Proposition II.2 shows the criterion is
//! *inconsistent* for large `λ` (at `λ = ∞` it predicts the constant
//! `mean(Y_n)` everywhere on a connected graph).
//!
//! Every linear solve goes through the [`gssl_linalg::Factorization`]
//! backend layer: `A` and the Schur system are symmetric positive definite
//! (strict diagonal dominance), so [`SolverPolicy::factor_spd`] routes them
//! to Cholesky — half the work of the LU factorization earlier revisions
//! hardcoded — and sparse problems solve the CSR-assembled Eq. 3 system
//! without densifying.

use crate::error::{Error, Result};
use crate::problem::{Problem, Scores};
use crate::traits::TransductiveModel;
use gssl_linalg::float::is_exactly_zero;
use gssl_linalg::{strict, Factorization, SolverPolicy, Vector};

/// The soft criterion solver with tuning parameter `λ ≥ 0`.
///
/// ```
/// use gssl::{HardCriterion, Problem, SoftCriterion, TransductiveModel};
/// use gssl_linalg::Matrix;
/// # fn main() -> Result<(), gssl::Error> {
/// let w = Matrix::from_rows(&[
///     &[1.0, 0.6, 0.2],
///     &[0.6, 1.0, 0.5],
///     &[0.2, 0.5, 1.0],
/// ])?;
/// let problem = Problem::new(w, vec![1.0])?;
/// // Proposition II.1: at λ = 0 the soft criterion equals the hard one.
/// let soft0 = SoftCriterion::new(0.0)?.fit(&problem)?;
/// let hard = HardCriterion::new().fit(&problem)?;
/// assert!((soft0.unlabeled()[0] - hard.unlabeled()[0]).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SoftCriterion {
    lambda: f64,
    policy: SolverPolicy,
}

impl SoftCriterion {
    /// Creates a soft-criterion solver with the default backend policy.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `lambda` is negative or
    /// not finite.
    pub fn new(lambda: f64) -> Result<Self> {
        if !lambda.is_finite() || lambda < 0.0 {
            return Err(Error::InvalidParameter {
                message: format!("lambda must be finite and nonnegative, got {lambda}"),
            });
        }
        Ok(SoftCriterion {
            lambda,
            policy: SolverPolicy::default(),
        })
    }

    /// The tuning parameter λ.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Overrides the backend-selection policy (e.g. to tune the CG budget
    /// used on large sparse problems).
    pub fn policy(mut self, policy: SolverPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Borrows the active backend-selection policy.
    pub fn solver_policy(&self) -> &SolverPolicy {
        &self.policy
    }

    /// Solves the criterion: the paper's block form (Eq. 4) on dense
    /// problems, the CSR-assembled full system on sparse ones. Works for
    /// every `λ ≥ 0`, including `λ = 0` where it reproduces the hard
    /// criterion (Proposition II.1).
    ///
    /// # Errors
    ///
    /// * [`Error::UnanchoredUnlabeled`] when the unlabeled block system is
    ///   singular because a component has no labeled anchor.
    /// * [`Error::Linalg`] on numerical failure.
    /// deterministic
    pub fn fit(&self, problem: &Problem) -> Result<Scores> {
        problem.require_anchored(0.0)?;
        let n = problem.n_labeled();
        let m = problem.n_unlabeled();
        let y = problem.labels_vector();
        if m == 0 {
            // No unlabeled block; the criterion reduces to ridge-like
            // smoothing of the labeled scores.
            let f_l = self.labeled_only_scores(problem, &y)?;
            return Ok(Scores::from_parts(f_l.as_slice(), &[]));
        }
        if problem.weights().is_sparse() {
            return self.fit_sparse(problem);
        }

        let blocks = problem.weight_blocks()?;
        let degrees = problem.degrees();

        // A = I_n + λ D₁₁ − λ W₁₁ — SPD by strict diagonal dominance.
        let mut a = blocks.a11.map(|x| -self.lambda * x);
        for i in 0..n {
            a.set(
                i,
                i,
                1.0 + self.lambda * degrees[i] - self.lambda * blocks.a11.get(i, i),
            );
        }
        let a_fact = self.policy.factor_spd(&a)?;

        // A⁻¹ Y and A⁻¹ W₁₂.
        let a_inv_y = a_fact.solve(&y)?;
        let a_inv_w12 = a_fact.solve_matrix(&blocks.a12)?;

        // Schur system: D₂₂ − W₂₂ − λ W₂₁ A⁻¹ W₁₂ — SPD on anchored graphs.
        let base = problem.unlabeled_system()?;
        let correction = blocks.a21.matmul(&a_inv_w12)?;
        let system = &base - &(&correction * self.lambda);
        let rhs = blocks.a21.matvec(&a_inv_y)?;
        let f_u = self.policy.factor_spd(&system)?.solve(&rhs)?;

        // Labeled block: f_L = A⁻¹ (Y + λ W₁₂ f_U).
        let w12_fu = blocks.a12.matvec(&f_u)?;
        let mut rhs_l = y.clone();
        rhs_l.axpy(self.lambda, &w12_fu)?;
        let f_l = a_fact.solve(&rhs_l)?;

        strict::check_finite("soft criterion labeled output", f_l.as_slice())?;
        strict::check_finite("soft criterion unlabeled output", f_u.as_slice())?;
        Ok(Scores::from_parts(f_l.as_slice(), f_u.as_slice()))
    }

    /// Sparse-representation path. At `λ = 0` the criterion *is* the hard
    /// criterion (Proposition II.1), so the CSR-assembled `D₂₂ − W₂₂`
    /// system is solved directly; at `λ > 0` the full Eq. 3 system
    /// `V + λL` is assembled in CSR and routed through the policy, which
    /// keeps large sparse graphs iterative instead of densifying them.
    fn fit_sparse(&self, problem: &Problem) -> Result<Scores> {
        let n = problem.n_labeled();
        if is_exactly_zero(self.lambda) {
            let backend = self
                .policy
                .factor_sparse(&problem.unlabeled_system_csr()?)?;
            let f_u = backend.solve(&problem.unlabeled_rhs()?)?;
            strict::check_finite("soft criterion unlabeled output", f_u.as_slice())?;
            return Ok(Scores::from_parts(problem.labels(), f_u.as_slice()));
        }
        let system = problem.soft_system_csr(self.lambda)?;
        let mut rhs = vec![0.0; problem.len()];
        rhs[..n].copy_from_slice(problem.labels());
        let f = self
            .policy
            .factor_sparse(&system)?
            .solve(&Vector::from(rhs))?;
        strict::check_finite("soft criterion output", f.as_slice())?;
        Ok(Scores::from_parts(&f.as_slice()[..n], &f.as_slice()[n..]))
    }

    /// Solves the criterion by assembling the full `(n+m) × (n+m)` system
    /// `(V + λL) f = (Y; 0)` — the literal Eq. 3. Requires `λ > 0`
    /// (at `λ = 0` the full matrix is singular on the unlabeled block; use
    /// [`SoftCriterion::fit`], which implements the block form).
    ///
    /// Exposed separately because the paper's complexity remark compares
    /// the `O((m+n)³)` cost of this path against the `O(m³)` hard solve.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidParameter`] when `λ = 0`.
    /// * [`Error::Linalg`] when the system is singular.
    /// deterministic
    pub fn fit_full_system(&self, problem: &Problem) -> Result<Scores> {
        if is_exactly_zero(self.lambda) {
            return Err(Error::InvalidParameter {
                message: "the full-system path requires lambda > 0; use fit() for lambda = 0"
                    .to_owned(),
            });
        }
        let n = problem.n_labeled();
        let system = problem.soft_system_csr(self.lambda)?;
        let mut rhs = vec![0.0; problem.len()];
        rhs[..n].copy_from_slice(problem.labels());
        let f = self
            .policy
            .factor_sparse(&system)?
            .solve(&Vector::from(rhs))?;
        strict::check_finite("soft criterion full-system output", f.as_slice())?;
        Ok(Scores::from_parts(&f.as_slice()[..n], &f.as_slice()[n..]))
    }

    /// Scores when every vertex is labeled: `(I + λL) f = Y`. With `V = I`
    /// the CSR assembly of Eq. 3 is exactly that system, on either
    /// representation.
    fn labeled_only_scores(&self, problem: &Problem, y: &Vector) -> Result<Vector> {
        if is_exactly_zero(self.lambda) {
            return Ok(y.clone());
        }
        let system = problem.soft_system_csr(self.lambda)?;
        Ok(self.policy.factor_sparse(&system)?.solve(y)?)
    }

    /// The objective value of Eq. 2 at a given score vector — useful for
    /// verifying optimality in tests and diagnostics.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidProblem`] when `scores` has the wrong
    /// length.
    pub fn objective(&self, problem: &Problem, scores: &[f64]) -> Result<f64> {
        if scores.len() != problem.len() {
            return Err(Error::InvalidProblem {
                message: format!(
                    "scores must have {} entries, got {}",
                    problem.len(),
                    scores.len()
                ),
            });
        }
        let loss: f64 = problem
            .labels()
            .iter()
            .zip(scores)
            .map(|(y, f)| (y - f) * (y - f))
            .sum();
        let energy = problem.weights().dirichlet_energy(&Vector::from(scores))?;
        Ok(loss + 0.5 * self.lambda * energy)
    }
}

impl TransductiveModel for SoftCriterion {
    fn fit(&self, problem: &Problem) -> Result<Scores> {
        SoftCriterion::fit(self, problem)
    }

    fn name(&self) -> String {
        format!("soft criterion (lambda = {})", self.lambda)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hard::HardCriterion;
    use gssl_linalg::{CsrMatrix, Lu, Matrix};

    fn sample_problem() -> Problem {
        let w = Matrix::from_rows(&[
            &[1.0, 0.2, 0.7, 0.1],
            &[0.2, 1.0, 0.3, 0.8],
            &[0.7, 0.3, 1.0, 0.4],
            &[0.1, 0.8, 0.4, 1.0],
        ])
        .unwrap();
        Problem::new(w, vec![1.0, 0.0]).unwrap()
    }

    #[test]
    fn lambda_validation() {
        assert!(SoftCriterion::new(-0.1).is_err());
        assert!(SoftCriterion::new(f64::NAN).is_err());
        assert!(SoftCriterion::new(f64::INFINITY).is_err());
        assert_eq!(SoftCriterion::new(2.0).unwrap().lambda(), 2.0);
    }

    #[test]
    fn proposition_ii1_soft_at_zero_equals_hard() {
        let p = sample_problem();
        let soft = SoftCriterion::new(0.0).unwrap().fit(&p).unwrap();
        let hard = HardCriterion::new().fit(&p).unwrap();
        for (s, h) in soft.unlabeled().iter().zip(hard.unlabeled()) {
            assert!((s - h).abs() < 1e-10);
        }
        // At λ = 0 the labeled scores equal the observations.
        assert_eq!(soft.labeled(), p.labels());
    }

    #[test]
    fn block_form_matches_full_system() {
        let p = sample_problem();
        for &lambda in &[0.01, 0.1, 1.0, 5.0] {
            let soft = SoftCriterion::new(lambda).unwrap();
            let block = soft.fit(&p).unwrap();
            let full = soft.fit_full_system(&p).unwrap();
            for (a, b) in block.all().iter().zip(full.all()) {
                assert!((a - b).abs() < 1e-9, "lambda {lambda}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn cholesky_route_matches_legacy_lu_path() {
        // Earlier revisions factored both A and the Schur system with LU;
        // the policy now routes these SPD systems to Cholesky. Pin the new
        // path to a verbatim reproduction of the old one at 1e-10.
        let p = sample_problem();
        for &lambda in &[0.0, 0.05, 0.5, 2.0] {
            let scores = SoftCriterion::new(lambda).unwrap().fit(&p).unwrap();

            let n = p.n_labeled();
            let blocks = p.weight_blocks().unwrap();
            let degrees = p.degrees();
            let y = p.labels_vector();
            let mut a = blocks.a11.map(|x| -lambda * x);
            for i in 0..n {
                a.set(
                    i,
                    i,
                    1.0 + lambda * degrees[i] - lambda * blocks.a11.get(i, i),
                );
            }
            let a_lu = Lu::factor(&a).unwrap();
            let a_inv_y = a_lu.solve(&y).unwrap();
            let a_inv_w12 = a_lu.solve_matrix(&blocks.a12).unwrap();
            let base = p.unlabeled_system().unwrap();
            let correction = blocks.a21.matmul(&a_inv_w12).unwrap();
            let system = &base - &(&correction * lambda);
            let rhs = blocks.a21.matvec(&a_inv_y).unwrap();
            let f_u = Lu::factor(&system).unwrap().solve(&rhs).unwrap();
            let w12_fu = blocks.a12.matvec(&f_u).unwrap();
            let mut rhs_l = y.clone();
            rhs_l.axpy(lambda, &w12_fu).unwrap();
            let f_l = a_lu.solve(&rhs_l).unwrap();

            for (new, old) in scores.unlabeled().iter().zip(f_u.as_slice()) {
                assert!((new - old).abs() < 1e-10, "lambda {lambda}: {new} vs {old}");
            }
            for (new, old) in scores.labeled().iter().zip(f_l.as_slice()) {
                assert!((new - old).abs() < 1e-10, "lambda {lambda}: {new} vs {old}");
            }
        }
    }

    #[test]
    fn sparse_representation_matches_dense() {
        let dense = sample_problem();
        let csr = CsrMatrix::from_dense(dense.dense_weights().unwrap(), 0.0);
        let sparse = Problem::new(csr, dense.labels().to_vec()).unwrap();
        for &lambda in &[0.0, 0.1, 1.0] {
            let soft = SoftCriterion::new(lambda).unwrap();
            let d = soft.fit(&dense).unwrap();
            let s = soft.fit(&sparse).unwrap();
            for (a, b) in d.all().iter().zip(s.all()) {
                assert!((a - b).abs() < 1e-8, "lambda {lambda}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn full_system_requires_positive_lambda() {
        let p = sample_problem();
        assert!(matches!(
            SoftCriterion::new(0.0).unwrap().fit_full_system(&p),
            Err(Error::InvalidParameter { .. })
        ));
    }

    #[test]
    fn solution_minimizes_the_objective() {
        let p = sample_problem();
        let soft = SoftCriterion::new(0.5).unwrap();
        let scores = soft.fit(&p).unwrap();
        let optimum = soft.objective(&p, scores.all()).unwrap();
        // Perturbing any coordinate must not decrease the objective.
        for i in 0..p.len() {
            for &delta in &[0.01, -0.01, 0.1, -0.1] {
                let mut perturbed = scores.all().to_vec();
                perturbed[i] += delta;
                let value = soft.objective(&p, &perturbed).unwrap();
                assert!(
                    value >= optimum - 1e-12,
                    "perturbation at {i} by {delta} improved the objective"
                );
            }
        }
    }

    #[test]
    fn larger_lambda_pulls_unlabeled_scores_toward_label_mean() {
        let p = sample_problem();
        let mean = 0.5; // labels are {1, 0}
        let near = SoftCriterion::new(0.01).unwrap().fit(&p).unwrap();
        let far = SoftCriterion::new(100.0).unwrap().fit(&p).unwrap();
        let spread = |scores: &Scores| {
            scores
                .unlabeled()
                .iter()
                .map(|s| (s - mean).abs())
                .fold(0.0f64, f64::max)
        };
        assert!(spread(&far) < spread(&near));
        // Proposition II.2 limit: at huge λ all scores approach mean(Y).
        for &s in far.all() {
            assert!((s - mean).abs() < 0.05, "score {s} far from label mean");
        }
    }

    #[test]
    fn soft_criterion_smooths_labeled_scores() {
        // Unlike the hard criterion, λ > 0 lets labeled scores deviate
        // from the observations (trading loss for smoothness).
        let p = sample_problem();
        let scores = SoftCriterion::new(1.0).unwrap().fit(&p).unwrap();
        let deviates = scores
            .labeled()
            .iter()
            .zip(p.labels())
            .any(|(f, y)| (f - y).abs() > 1e-3);
        assert!(deviates);
    }

    #[test]
    fn fully_labeled_problem_is_ridge_smoothing() {
        let w = Matrix::from_rows(&[&[1.0, 0.9], &[0.9, 1.0]]).unwrap();
        let p = Problem::new(w, vec![0.0, 1.0]).unwrap();
        let scores = SoftCriterion::new(0.0).unwrap().fit(&p).unwrap();
        assert_eq!(scores.all(), &[0.0, 1.0]);
        let smoothed = SoftCriterion::new(10.0).unwrap().fit(&p).unwrap();
        // Heavy smoothing pulls both toward the common mean 0.5.
        assert!((smoothed.all()[0] - 0.5).abs() < 0.1);
        assert!((smoothed.all()[1] - 0.5).abs() < 0.1);
    }

    #[test]
    fn objective_validates_length() {
        let p = sample_problem();
        let soft = SoftCriterion::new(1.0).unwrap();
        assert!(soft.objective(&p, &[0.0; 2]).is_err());
    }

    #[test]
    fn name_mentions_lambda() {
        assert!(SoftCriterion::new(0.25).unwrap().name().contains("0.25"));
    }
}
