//! Approximate cross-crate call graph and the panic-reachability pass.
//!
//! Nodes are the functions extracted by [`crate::items`]; edges are
//! name-resolved calls. Resolution is deliberately permissive: a call
//! `Type::name(…)` links to the function whose qualified name matches; a
//! bare or method call `name(…)` / `.name(…)` links to *every* extracted
//! function with that simple name. Over-approximation is the right
//! direction for a reachability lint — a spurious edge can only make the
//! pass more conservative, never hide a panic path.
//!
//! The pass reports each non-test function containing an **unguarded**
//! panic site (see [`crate::items::Site`]) that is reachable from an
//! unrestricted `pub` function, together with one shortest call chain from
//! such a `pub` root (found by reverse BFS from the offending function).

use crate::items::FnInfo;
use std::collections::{HashMap, VecDeque};

/// The assembled workspace call graph.
#[derive(Debug)]
pub struct CallGraph {
    /// All functions, workspace-wide.
    pub fns: Vec<FnInfo>,
    /// `callers[i]` = indices of functions that call `fns[i]`.
    pub callers: Vec<Vec<usize>>,
}

/// One panic-reachability finding.
#[derive(Debug, Clone)]
pub struct PanicPath {
    /// Index of the offending function in [`CallGraph::fns`].
    pub offender: usize,
    /// Call chain from a `pub` root to the offender, as indices
    /// (`chain[0]` is the root, last element is the offender; a chain of
    /// length one means the offender itself is `pub`).
    pub chain: Vec<usize>,
    /// Unguarded site summary, e.g. `"index@41, div@44"`.
    pub sites: String,
}

/// Builds the call graph from every extracted function.
#[must_use]
pub fn build(fns: Vec<FnInfo>) -> CallGraph {
    // Name indexes. Qualified: "Type::name" → idx. Simple: "name" → idxs.
    let mut by_qual: HashMap<&str, Vec<usize>> = HashMap::new();
    let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    for (i, f) in fns.iter().enumerate() {
        by_qual.entry(f.qual.as_str()).or_default().push(i);
        by_name.entry(f.name.as_str()).or_default().push(i);
    }

    let mut callers: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];
    for (caller, f) in fns.iter().enumerate() {
        for call in &f.calls {
            let targets: &[usize] = match &call.qual {
                Some(q) => {
                    let qualified = format!("{q}::{}", call.name);
                    by_qual
                        .get(qualified.as_str())
                        .map_or(&[][..], Vec::as_slice)
                }
                None => by_name
                    .get(call.name.as_str())
                    .map_or(&[][..], Vec::as_slice),
            };
            for &t in targets {
                if t != caller && !callers[t].contains(&caller) {
                    callers[t].push(caller);
                }
            }
        }
    }
    CallGraph { fns, callers }
}

/// Runs the panic-reachability pass: one [`PanicPath`] per non-test
/// function with unguarded sites that a `pub` API can reach.
#[must_use]
pub fn panic_reachability(graph: &CallGraph) -> Vec<PanicPath> {
    let mut out = Vec::new();
    for (i, f) in graph.fns.iter().enumerate() {
        if f.in_test {
            continue;
        }
        let unguarded: Vec<String> = f
            .sites
            .iter()
            .filter(|s| !s.guarded)
            .map(|s| format!("{}@{}", s.kind.key(), s.line))
            .collect();
        if unguarded.is_empty() {
            continue;
        }
        if let Some(chain) = shortest_pub_chain(graph, i) {
            out.push(PanicPath {
                offender: i,
                chain,
                sites: unguarded.join(", "),
            });
        }
    }
    out
}

/// Reverse BFS from `start` over caller edges; returns the shortest chain
/// `pub root → … → start`, or `None` when no `pub` function reaches it.
fn shortest_pub_chain(graph: &CallGraph, start: usize) -> Option<Vec<usize>> {
    if graph.fns[start].is_pub {
        return Some(vec![start]);
    }
    let mut parent: HashMap<usize, usize> = HashMap::new();
    let mut queue = VecDeque::from([start]);
    while let Some(node) = queue.pop_front() {
        for &caller in &graph.callers[node] {
            if caller == start || parent.contains_key(&caller) {
                continue;
            }
            if graph.fns[caller].in_test {
                continue;
            }
            parent.insert(caller, node);
            if graph.fns[caller].is_pub {
                // Reconstruct root → start.
                let mut chain = vec![caller];
                let mut cur = caller;
                while let Some(&next) = parent.get(&cur) {
                    chain.push(next);
                    if next == start {
                        break;
                    }
                    cur = next;
                }
                return Some(chain);
            }
            queue.push_back(caller);
        }
    }
    None
}

/// Renders a chain as `a -> b -> c` using qualified names.
#[must_use]
pub fn render_chain(graph: &CallGraph, chain: &[usize]) -> String {
    chain
        .iter()
        .map(|&i| graph.fns[i].qual.clone())
        .collect::<Vec<_>>()
        .join(" -> ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::extract;
    use crate::scanner::analyze;

    fn graph_of(src: &str) -> CallGraph {
        build(extract("t.rs", &analyze(src)))
    }

    #[test]
    fn pub_fn_with_unguarded_index_is_direct() {
        let g = graph_of("pub fn api(v: &[f64]) -> f64 { v[0] }");
        let paths = panic_reachability(&g);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].chain.len(), 1);
        assert!(paths[0].sites.contains("index@"));
    }

    #[test]
    fn private_offender_reached_through_pub_caller() {
        let src = "pub fn api(v: &[f64]) -> f64 { inner(v) }\n\
                   fn inner(v: &[f64]) -> f64 { v[0] }";
        let g = graph_of(src);
        let paths = panic_reachability(&g);
        assert_eq!(paths.len(), 1);
        assert_eq!(render_chain(&g, &paths[0].chain), "api -> inner");
    }

    #[test]
    fn unreachable_private_offender_is_silent() {
        let g = graph_of("fn orphan(v: &[f64]) -> f64 { v[0] }");
        assert!(panic_reachability(&g).is_empty());
    }

    #[test]
    fn guarded_sites_do_not_fire() {
        let g = graph_of("pub fn api(v: &[f64], i: usize) -> f64 { assert!(i < v.len()); v[i] }");
        assert!(panic_reachability(&g).is_empty());
    }

    #[test]
    fn qualified_calls_resolve_to_methods() {
        let src = "impl Matrix {\n  fn raw(&self, i: usize) -> f64 { self.data[i] }\n}\n\
                   pub fn api(m: &Matrix) -> f64 { Matrix::raw(m, 0) }";
        let g = graph_of(src);
        let paths = panic_reachability(&g);
        assert_eq!(paths.len(), 1);
        assert_eq!(render_chain(&g, &paths[0].chain), "api -> Matrix::raw");
    }

    #[test]
    fn test_callers_do_not_count_as_roots() {
        let src = "#[cfg(test)]\nmod tests {\n  pub fn t(v: &[f64]) -> f64 { inner(v) }\n}\n\
                   fn inner(v: &[f64]) -> f64 { v[0] }";
        let g = graph_of(src);
        assert!(panic_reachability(&g).is_empty());
    }

    #[test]
    fn chain_is_shortest() {
        // Two routes to `deep`: api -> a -> deep and api2 -> deep.
        let src = "pub fn api(v: &[f64]) -> f64 { a(v) }\n\
                   fn a(v: &[f64]) -> f64 { deep(v) }\n\
                   pub fn api2(v: &[f64]) -> f64 { deep(v) }\n\
                   fn deep(v: &[f64]) -> f64 { v[0] }";
        let g = graph_of(src);
        let paths = panic_reachability(&g);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].chain.len(), 2, "BFS must find the 2-hop route");
    }
}
