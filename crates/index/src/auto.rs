//! [`SpatialIndex`]: the backend-selecting facade consumers build when
//! they do not want to commit to a concrete tree.

use crate::cover::CoverTree;
use crate::error::Result;
use crate::kdtree::KdTree;
use crate::neighbor::{Neighbor, NeighborSearch};
use gssl_linalg::Matrix;

/// Above this dimension, KD-tree axis pruning degenerates (the query
/// ball intersects almost every splitting plane) and the cover tree's
/// metric-ball pruning takes over.
pub const KD_MAX_DIM: usize = 16;

/// An exact spatial index that picks its backend from the data: KD-tree
/// for `d <= KD_MAX_DIM`, cover tree above. Both are exact, so the
/// choice affects speed only — results are bit-identical either way.
#[derive(Debug, Clone, PartialEq)]
pub enum SpatialIndex {
    /// Low-dimensional backend.
    Kd(KdTree),
    /// High-dimensional / generic-metric backend.
    Cover(CoverTree),
}

impl SpatialIndex {
    /// Name of the selected backend (for benchmark and log output).
    pub fn backend(&self) -> &'static str {
        match self {
            SpatialIndex::Kd(_) => "kd-tree",
            SpatialIndex::Cover(_) => "cover-tree",
        }
    }
}

impl NeighborSearch for SpatialIndex {
    fn build(points: &Matrix) -> Result<Self> {
        if points.cols() <= KD_MAX_DIM {
            Ok(SpatialIndex::Kd(KdTree::build(points)?))
        } else {
            Ok(SpatialIndex::Cover(CoverTree::build(points)?))
        }
    }

    fn len(&self) -> usize {
        match self {
            SpatialIndex::Kd(t) => t.len(),
            SpatialIndex::Cover(t) => t.len(),
        }
    }

    fn dim(&self) -> usize {
        match self {
            SpatialIndex::Kd(t) => t.dim(),
            SpatialIndex::Cover(t) => t.dim(),
        }
    }

    fn point(&self, i: usize) -> &[f64] {
        match self {
            SpatialIndex::Kd(t) => t.point(i),
            SpatialIndex::Cover(t) => t.point(i),
        }
    }

    fn insert(&mut self, point: &[f64]) -> Result<usize> {
        match self {
            SpatialIndex::Kd(t) => t.insert(point),
            SpatialIndex::Cover(t) => t.insert(point),
        }
    }

    /// hot
    /// complexity: O(n * d)
    fn k_nearest_excluding(
        &self,
        query: &[f64],
        k: usize,
        exclude: Option<usize>,
    ) -> Result<Vec<Neighbor>> {
        match self {
            SpatialIndex::Kd(t) => t.k_nearest_excluding(query, k, exclude),
            SpatialIndex::Cover(t) => t.k_nearest_excluding(query, k, exclude),
        }
    }

    /// hot
    /// complexity: O(n * d)
    fn within_radius(&self, query: &[f64], radius: f64) -> Result<Vec<Neighbor>> {
        match self {
            SpatialIndex::Kd(t) => t.within_radius(query, radius),
            SpatialIndex::Cover(t) => t.within_radius(query, radius),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_selection_follows_dimension() {
        let low = Matrix::from_fn(20, 3, |i, j| (i + j) as f64);
        let high = Matrix::from_fn(20, 17, |i, j| (i * 31 + j) as f64 * 0.1);
        assert_eq!(SpatialIndex::build(&low).unwrap().backend(), "kd-tree");
        assert_eq!(SpatialIndex::build(&high).unwrap().backend(), "cover-tree");
    }

    #[test]
    fn facade_delegates_queries_and_inserts() {
        let pts = Matrix::from_fn(30, 2, |i, j| ((i * 7 + j * 3) as f64 * 0.173).fract());
        let mut idx = SpatialIndex::build(&pts).unwrap();
        assert_eq!(idx.len(), 30);
        assert_eq!(idx.dim(), 2);
        assert!(!idx.is_empty());
        let q = [0.4, 0.6];
        let knn = idx.k_nearest(&q, 5).unwrap();
        assert_eq!(knn.len(), 5);
        let id = idx.insert(&q).unwrap();
        assert_eq!(id, 30);
        let after = idx.k_nearest(&q, 1).unwrap();
        assert_eq!(after[0].index, 30);
        assert_eq!(after[0].dist2, 0.0);
        assert_eq!(idx.point(30), &q);
    }
}
