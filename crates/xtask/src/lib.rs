//! # gssl-xtask
//!
//! Dependency-free static-analysis pass for the `gssl` workspace, run as
//!
//! ```text
//! cargo run -p gssl-xtask -- check
//! ```
//!
//! The checker is a line/token scanner (no `syn`, no network, no build
//! scripts) enforcing the project's correctness conventions on the seven
//! library crates (`runtime`, `linalg`, `graph`, `stats`, `datasets`,
//! `core`, `serve`):
//!
//! * crate roots carry `#![forbid(unsafe_code)]` and
//!   `#![deny(missing_docs)]`, and every `pub` item is documented;
//! * no `unwrap()` / `expect(` / `panic!`-family calls in non-test library
//!   code — fallible paths return `Error`s;
//! * no bare `f64`/`f32` `==` / `!=` comparisons; exact sentinels go
//!   through named helpers (`is_exactly_zero` / `is_exactly_one`);
//! * every `pub enum …Error` stays `#[non_exhaustive]` with documented
//!   variants.
//!
//! Justified exceptions need an inline `// lint: allow(<rule>)` marker
//! *and* a registration with a reason in `crates/xtask/allow.list`;
//! unregistered markers and stale registrations are violations themselves.
//! See `DESIGN.md` ("Correctness tooling") for the full contract.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod allowlist;
pub mod analysis;
pub mod baseline;
pub mod callgraph;
pub mod complexity;
pub mod concurrency;
pub mod determinism;
pub mod items;
pub mod lexer;
pub mod perf;
pub mod rules;
pub mod scanner;
pub mod shape;

use rules::{FileContext, FileOutcome, Rule, Violation};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Crates under `crates/` exempt from the library-crate strict rules: the
/// vendored offline shims (`rand`, `criterion`), the benchmark harness and
/// this checker itself. Their roots are still checked for the mandatory
/// attributes.
const EXEMPT_CRATES: [&str; 4] = ["rand", "criterion", "bench", "xtask"];

/// Workspace-relative location of the allowlist.
const ALLOW_LIST: &str = "crates/xtask/allow.list";

/// Outcome of a full workspace check.
#[derive(Debug)]
pub struct Report {
    /// All violations, in path order.
    pub violations: Vec<Violation>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Whether the tree is clean.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs every check over the workspace rooted at `root`.
///
/// # Errors
///
/// Returns `io::Error` when the tree cannot be read (a *violation* is not
/// an error — inspect the returned [`Report`]).
pub fn check_workspace(root: &Path) -> io::Result<Report> {
    let mut violations = Vec::new();
    let mut files_scanned = 0usize;
    let mut outcome = FileOutcome::default();

    let crates_dir = root.join("crates");
    let mut crate_names: Vec<String> = Vec::new();
    for entry in fs::read_dir(&crates_dir)? {
        let entry = entry?;
        if entry.file_type()?.is_dir() {
            crate_names.push(entry.file_name().to_string_lossy().into_owned());
        }
    }
    crate_names.sort();

    for name in &crate_names {
        let src_dir = crates_dir.join(name).join("src");
        if !src_dir.is_dir() {
            continue;
        }
        let strict = !EXEMPT_CRATES.contains(&name.as_str());
        let mut files = Vec::new();
        collect_rust_files(&src_dir, &mut files)?;
        files.sort();
        for file in files {
            files_scanned += 1;
            let text = fs::read_to_string(&file)?;
            let source = scanner::analyze(&text);
            let rel = relative_path(root, &file);
            let ctx = FileContext {
                path: &rel,
                source: &source,
            };
            if file.file_name().is_some_and(|f| f == "lib.rs") {
                violations.extend(rules::check_root_attrs(&ctx));
            }
            if strict {
                rules::check_no_panic(&ctx, &mut outcome);
                rules::check_float_eq(&ctx, &mut outcome);
                rules::check_missing_docs(&ctx, &mut outcome);
                rules::check_error_enum(&ctx, &mut outcome);
            }
            rules::collect_inline_allows(&ctx, &mut outcome);
        }
    }

    // Umbrella crate root (examples/integration tests live at the top).
    let umbrella = root.join("src").join("lib.rs");
    if umbrella.is_file() {
        files_scanned += 1;
        let text = fs::read_to_string(&umbrella)?;
        let source = scanner::analyze(&text);
        let rel = relative_path(root, &umbrella);
        let ctx = FileContext {
            path: &rel,
            source: &source,
        };
        violations.extend(rules::check_root_attrs(&ctx));
        rules::collect_inline_allows(&ctx, &mut outcome);
    }

    // Allowlist reconciliation.
    let list_path = root.join(ALLOW_LIST);
    let list_text = match fs::read_to_string(&list_path) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(e),
    };
    let (entries, mut list_violations) = allowlist::parse(&list_text, ALLOW_LIST);
    violations.append(&mut list_violations);
    violations.extend(allowlist::reconcile(&entries, &outcome.allows, ALLOW_LIST));
    violations.append(&mut outcome.violations);

    violations.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule.key()).cmp(&(b.file.as_str(), b.line, b.rule.key()))
    });

    Ok(Report {
        violations,
        files_scanned,
    })
}

/// Recursively collects `.rs` files under `dir`.
fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if entry.file_type()?.is_dir() {
            collect_rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `file` relative to `root`, with forward slashes (stable across hosts so
/// allowlist entries match everywhere).
fn relative_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Convenience: count violations of one rule in a report.
#[must_use]
pub fn count_rule(report: &Report, rule: Rule) -> usize {
    report.violations.iter().filter(|v| v.rule == rule).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_paths_use_forward_slashes() {
        let root = Path::new("/ws");
        let file = Path::new("/ws/crates/linalg/src/lib.rs");
        assert_eq!(relative_path(root, file), "crates/linalg/src/lib.rs");
    }
}
