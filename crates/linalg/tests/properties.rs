//! Property-style tests for the linear-algebra substrate.
//!
//! Originally written against `proptest`; the workspace is now fully
//! offline and dependency-free, so each property is exercised over a
//! deterministic sweep of seeded random cases instead of a shrinking
//! strategy. Seeds are fixed, so failures are exactly reproducible.

use gssl_linalg::stationary::{gauss_seidel, jacobi, IterationOptions};
use gssl_linalg::{
    conjugate_gradient, symmetric_eigen, BlockPartition, CgOptions, Cholesky, CsrMatrix,
    EigenOptions, Lu, Matrix, Vector,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DIM: usize = 6;
const CASES: u64 = 32;

/// A square matrix with entries in [-1, 1].
fn square_matrix(n: usize, rng: &mut StdRng) -> Matrix {
    Matrix::from_fn(n, n, |_, _| rng.gen::<f64>() * 2.0 - 1.0)
}

/// A vector with entries in [-1, 1].
fn vector(n: usize, rng: &mut StdRng) -> Vector {
    Vector::from_fn(n, |_| rng.gen::<f64>() * 2.0 - 1.0)
}

/// A strictly diagonally dominant SPD matrix `BᵀB + n·I`.
fn spd_matrix(n: usize, rng: &mut StdRng) -> Matrix {
    let b = square_matrix(n, rng);
    let bt_b = b.transpose().matmul(&b).expect("square product");
    let mut shift = Matrix::identity(n);
    shift.scale(n as f64);
    &bt_b + &shift
}

/// Runs `body` once per seeded case.
fn for_cases(mut body: impl FnMut(&mut StdRng)) {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x11A1 + seed);
        body(&mut rng);
    }
}

#[test]
fn transpose_is_involution() {
    for_cases(|rng| {
        let a = square_matrix(DIM, rng);
        assert_eq!(a.transpose().transpose(), a);
    });
}

#[test]
fn matmul_identity_is_noop() {
    for_cases(|rng| {
        let a = square_matrix(DIM, rng);
        let i = Matrix::identity(DIM);
        assert!(a.matmul(&i).unwrap().approx_eq(&a, 1e-14));
        assert!(i.matmul(&a).unwrap().approx_eq(&a, 1e-14));
    });
}

#[test]
fn matmul_transpose_identity() {
    for_cases(|rng| {
        // (A B)ᵀ = Bᵀ Aᵀ
        let a = square_matrix(DIM, rng);
        let b = square_matrix(DIM, rng);
        let left = a.matmul(&b).unwrap().transpose();
        let right = b.transpose().matmul(&a.transpose()).unwrap();
        assert!(left.approx_eq(&right, 1e-12));
    });
}

#[test]
fn matvec_is_linear() {
    for_cases(|rng| {
        let a = square_matrix(DIM, rng);
        let x = vector(DIM, rng);
        let y = vector(DIM, rng);
        let sum = &x + &y;
        let lhs = a.matvec(&sum).unwrap();
        let rhs = &a.matvec(&x).unwrap() + &a.matvec(&y).unwrap();
        assert!(lhs.approx_eq(&rhs, 1e-12));
    });
}

#[test]
fn dot_is_symmetric_and_cauchy_schwarz() {
    for_cases(|rng| {
        let x = vector(DIM, rng);
        let y = vector(DIM, rng);
        let xy = x.dot(&y).unwrap();
        let yx = y.dot(&x).unwrap();
        assert!((xy - yx).abs() < 1e-14);
        assert!(xy.abs() <= x.norm_l2() * y.norm_l2() + 1e-12);
    });
}

#[test]
fn triangle_inequality() {
    for_cases(|rng| {
        let x = vector(DIM, rng);
        let y = vector(DIM, rng);
        assert!((&x + &y).norm_l2() <= x.norm_l2() + y.norm_l2() + 1e-12);
        assert!((&x + &y).norm_l1() <= x.norm_l1() + y.norm_l1() + 1e-12);
        assert!((&x + &y).norm_max() <= x.norm_max() + y.norm_max() + 1e-12);
    });
}

#[test]
fn lu_solve_roundtrip() {
    for_cases(|rng| {
        let a = spd_matrix(DIM, rng);
        let b = vector(DIM, rng);
        let x = Lu::factor(&a).unwrap().solve(&b).unwrap();
        let back = a.matvec(&x).unwrap();
        assert!(back.approx_eq(&b, 1e-8));
    });
}

#[test]
fn lu_det_of_product() {
    for_cases(|rng| {
        // det(AB) = det(A) det(B), all dets here are >= n^n > 0.
        let a = spd_matrix(DIM, rng);
        let b = spd_matrix(DIM, rng);
        let da = Lu::factor(&a).unwrap().det();
        let db = Lu::factor(&b).unwrap().det();
        let dab = Lu::factor(&a.matmul(&b).unwrap()).unwrap().det();
        assert!((dab - da * db).abs() <= 1e-8 * dab.abs().max(1.0));
    });
}

#[test]
fn cholesky_reconstructs_and_solves() {
    for_cases(|rng| {
        let a = spd_matrix(DIM, rng);
        let b = vector(DIM, rng);
        let chol = Cholesky::factor(&a).unwrap();
        let l = chol.lower();
        assert!(l.matmul(&l.transpose()).unwrap().approx_eq(&a, 1e-10));
        let x = chol.solve(&b).unwrap();
        assert!(a.matvec(&x).unwrap().approx_eq(&b, 1e-8));
    });
}

#[test]
fn all_direct_and_iterative_solvers_agree() {
    for_cases(|rng| {
        let a = spd_matrix(DIM, rng);
        let b = vector(DIM, rng);
        let lu = Lu::factor(&a).unwrap().solve(&b).unwrap();
        let chol = Cholesky::factor(&a).unwrap().solve(&b).unwrap();
        let cg = conjugate_gradient(&a, &b, &CgOptions::default())
            .unwrap()
            .solution;
        let iter_opts = IterationOptions {
            max_iterations: 20_000,
            tolerance: 1e-12,
        };
        let jac = jacobi(&a, &b, None, &iter_opts).unwrap().solution;
        let gs = gauss_seidel(&a, &b, None, &iter_opts).unwrap().solution;
        assert!(lu.approx_eq(&chol, 1e-8));
        assert!(lu.approx_eq(&cg, 1e-6));
        assert!(lu.approx_eq(&jac, 1e-6));
        assert!(lu.approx_eq(&gs, 1e-6));
    });
}

#[test]
fn csr_matvec_matches_dense() {
    for_cases(|rng| {
        let a = square_matrix(DIM, rng);
        let x = vector(DIM, rng);
        let sparse = CsrMatrix::from_dense(&a, 0.0);
        let dense_out = a.matvec(&x).unwrap();
        let sparse_out = sparse.matvec(x.as_slice());
        assert!(Vector::from(sparse_out).approx_eq(&dense_out, 1e-13));
    });
}

#[test]
fn csr_dense_roundtrip() {
    for_cases(|rng| {
        let a = square_matrix(DIM, rng);
        let sparse = CsrMatrix::from_dense(&a, 0.0);
        assert!(sparse.to_dense().approx_eq(&a, 0.0));
        assert!(sparse.transpose().to_dense().approx_eq(&a.transpose(), 0.0));
    });
}

#[test]
fn csr_from_triplets_matches_dense_accumulation() {
    for_cases(|rng| {
        // Reference semantics: duplicates sum, zeros drop.
        let count = rng.gen_range(0..40usize);
        let triplets: Vec<(usize, usize, f64)> = (0..count)
            .map(|_| {
                (
                    rng.gen_range(0..DIM),
                    rng.gen_range(0..DIM),
                    rng.gen::<f64>() * 4.0 - 2.0,
                )
            })
            .collect();
        let mut dense = Matrix::zeros(DIM, DIM);
        for &(r, c, v) in &triplets {
            dense.set(r, c, dense.get(r, c) + v);
        }
        let sparse = CsrMatrix::from_triplets(DIM, DIM, &triplets).unwrap();
        for i in 0..DIM {
            for j in 0..DIM {
                assert!(
                    (sparse.get(i, j) - dense.get(i, j)).abs() < 1e-12,
                    "entry ({i}, {j}): {} vs {}",
                    sparse.get(i, j),
                    dense.get(i, j)
                );
            }
        }
        // matvec agrees too.
        let x = Vector::ones(DIM);
        let dense_out = dense.matvec(&x).unwrap();
        let sparse_out = Vector::from(sparse.matvec(x.as_slice()));
        assert!(sparse_out.approx_eq(&dense_out, 1e-12));
    });
}

#[test]
fn block_partition_roundtrip() {
    for_cases(|rng| {
        let a = square_matrix(DIM, rng);
        let split = rng.gen_range(0..DIM + 1);
        let blocks = BlockPartition::split(&a, split).unwrap();
        assert_eq!(blocks.assemble().unwrap(), a);
    });
}

#[test]
fn spd_matrices_pass_positive_definite_check() {
    for_cases(|rng| {
        let a = spd_matrix(DIM, rng);
        assert!(gssl_linalg::is_positive_definite(&a));
    });
}

#[test]
fn inverse_is_two_sided() {
    for_cases(|rng| {
        let a = spd_matrix(DIM, rng);
        let inv = gssl_linalg::inverse(&a).unwrap();
        let i = Matrix::identity(DIM);
        assert!(a.matmul(&inv).unwrap().approx_eq(&i, 1e-8));
        assert!(inv.matmul(&a).unwrap().approx_eq(&i, 1e-8));
    });
}

#[test]
fn eigendecomposition_reconstructs_symmetric_matrices() {
    for_cases(|rng| {
        let b = square_matrix(DIM, rng);
        let a = &b + &b.transpose();
        let eig = symmetric_eigen(&a, &EigenOptions::default()).unwrap();
        // A = V Λ Vᵀ.
        let v = eig.eigenvectors();
        let lambda = Matrix::from_diag(eig.eigenvalues().as_slice());
        let back = v.matmul(&lambda).unwrap().matmul(&v.transpose()).unwrap();
        assert!(back.approx_eq(&a, 1e-8));
        // Orthonormal eigenvectors and ascending eigenvalues.
        let vtv = v.transpose().matmul(v).unwrap();
        assert!(vtv.approx_eq(&Matrix::identity(DIM), 1e-9));
        for pair in eig.eigenvalues().as_slice().windows(2) {
            assert!(pair[0] <= pair[1] + 1e-12);
        }
        // Trace identity.
        let trace_gap = (eig.eigenvalues().sum() - a.trace().unwrap()).abs();
        assert!(trace_gap < 1e-9);
    });
}

#[test]
fn spd_matrices_have_positive_spectra() {
    for_cases(|rng| {
        let a = spd_matrix(DIM, rng);
        let eig = symmetric_eigen(&a, &EigenOptions::default()).unwrap();
        for v in eig.eigenvalues().iter() {
            assert!(v > 0.0, "SPD matrix produced eigenvalue {v}");
        }
    });
}

#[test]
fn row_sums_equal_matvec_with_ones() {
    for_cases(|rng| {
        let a = square_matrix(DIM, rng);
        let ones = Vector::ones(DIM);
        assert!(a.row_sums().approx_eq(&a.matvec(&ones).unwrap(), 1e-13));
    });
}
