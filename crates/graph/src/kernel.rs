//! Smoothing kernels used to turn distances into edge weights.
//!
//! The paper builds the similarity matrix as `w_ij = K((X_i − X_j)/h_n)`
//! for a radial kernel `K`. Theorem II.1 requires `K` to satisfy:
//!
//! 1. bounded by some `k* < ∞`,
//! 2. compactly supported,
//! 3. `K ≥ β·1_B` on some closed ball `B` of positive radius `δ`.
//!
//! The compactly supported kernels here ([`Kernel::Epanechnikov`],
//! [`Kernel::Boxcar`], [`Kernel::Triangular`], [`Kernel::Tricube`],
//! [`Kernel::Quartic`]) satisfy all three; the Gaussian RBF — what the
//! paper actually uses in its experiments — violates (ii) but behaves the
//! same in practice because its tails are negligible. [`Kernel`] exposes
//! predicates so callers can check the theorem's conditions explicitly.

use crate::error::{Error, Result};

/// A radial smoothing kernel profile `K(u) = k(‖u‖)`.
///
/// All kernels are normalized so `k(0) = 1` (the paper never needs the
/// density-estimation normalizing constants — only ratios of weights enter
/// the criteria).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Kernel {
    /// Gaussian radial basis function `exp(−t²)`. Not compactly supported;
    /// the paper's experiments use it with `σ = h_n`.
    Gaussian,
    /// Epanechnikov profile `(1 − t²)₊`.
    Epanechnikov,
    /// Boxcar (uniform ball) profile `1{t ≤ 1}`.
    Boxcar,
    /// Triangular profile `(1 − t)₊`.
    Triangular,
    /// Tricube profile `((1 − t³)₊)³`.
    Tricube,
    /// Quartic (biweight) profile `((1 − t²)₊)²`.
    Quartic,
}

impl Kernel {
    /// Evaluates the kernel profile at scaled distance `t = ‖x_i − x_j‖/h`.
    ///
    /// Returns a weight in `[0, 1]`; `t` must be nonnegative (negative
    /// inputs are clamped to 0 by symmetry of radial kernels).
    ///
    /// ```
    /// use gssl_graph::Kernel;
    /// assert_eq!(Kernel::Boxcar.profile(0.5), 1.0);
    /// assert_eq!(Kernel::Boxcar.profile(1.5), 0.0);
    /// assert!((Kernel::Gaussian.profile(1.0) - (-1.0f64).exp()).abs() < 1e-15);
    /// ```
    pub fn profile(self, t: f64) -> f64 {
        let t = t.abs();
        match self {
            Kernel::Gaussian => (-t * t).exp(),
            Kernel::Epanechnikov => (1.0 - t * t).max(0.0),
            Kernel::Boxcar => {
                if t <= 1.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Kernel::Triangular => (1.0 - t).max(0.0),
            Kernel::Tricube => {
                let base = (1.0 - t * t * t).max(0.0);
                base * base * base
            }
            Kernel::Quartic => {
                let base = (1.0 - t * t).max(0.0);
                base * base
            }
        }
    }

    /// Edge weight for a *squared* distance and bandwidth:
    /// `w = K(√dist² / h)`.
    ///
    /// Using the squared distance avoids a square root for the Gaussian
    /// kernel, which is evaluated `O((n+m)²)` times per graph.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidBandwidth`] when `bandwidth <= 0` and
    /// [`Error::InvalidArgument`] when `squared_distance < 0`.
    pub fn weight(self, squared_distance: f64, bandwidth: f64) -> Result<f64> {
        if !(bandwidth > 0.0) {
            return Err(Error::InvalidBandwidth { value: bandwidth });
        }
        if squared_distance < 0.0 {
            return Err(Error::InvalidArgument {
                message: format!("squared distance must be nonnegative, got {squared_distance}"),
            });
        }
        Ok(self.weight_unchecked(squared_distance, bandwidth))
    }

    /// [`Kernel::weight`] without the argument validation, for hot loops
    /// that have already checked `bandwidth > 0` and `squared_distance >= 0`
    /// once for the whole batch. Produces bit-identical values to
    /// [`Kernel::weight`] on valid inputs.
    /// hot
    pub fn weight_unchecked(self, squared_distance: f64, bandwidth: f64) -> f64 {
        match self {
            // exp(-d²/h²) without the sqrt.
            Kernel::Gaussian => (-squared_distance / (bandwidth * bandwidth)).exp(),
            _ => self.profile(squared_distance.sqrt() / bandwidth),
        }
    }

    /// Whether the kernel has compact support — condition (ii) of
    /// Theorem II.1.
    pub fn is_compactly_supported(self) -> bool {
        !matches!(self, Kernel::Gaussian)
    }

    /// Upper bound `k*` on the kernel — condition (i). All profiles here
    /// are normalized to peak at 1.
    pub fn upper_bound(self) -> f64 {
        1.0
    }

    /// A pair `(β, δ)` such that `K ≥ β` on the ball of radius `δ` —
    /// condition (iii) of Theorem II.1.
    ///
    /// The choice `δ = 1/2` gives a comfortable positive lower bound for
    /// every profile (including the Gaussian, which satisfies (iii) even
    /// though it fails (ii)).
    pub fn lower_bound_ball(self) -> (f64, f64) {
        let delta = 0.5;
        (self.profile(delta), delta)
    }

    /// Whether the kernel satisfies all three conditions of Theorem II.1.
    pub fn satisfies_consistency_conditions(self) -> bool {
        let (beta, delta) = self.lower_bound_ball();
        self.is_compactly_supported() && self.upper_bound().is_finite() && beta > 0.0 && delta > 0.0
    }

    /// All kernel variants, for sweeps and tests.
    pub fn all() -> [Kernel; 6] {
        [
            Kernel::Gaussian,
            Kernel::Epanechnikov,
            Kernel::Boxcar,
            Kernel::Triangular,
            Kernel::Tricube,
            Kernel::Quartic,
        ]
    }
}

impl std::fmt::Display for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Kernel::Gaussian => "gaussian",
            Kernel::Epanechnikov => "epanechnikov",
            Kernel::Boxcar => "boxcar",
            Kernel::Triangular => "triangular",
            Kernel::Tricube => "tricube",
            Kernel::Quartic => "quartic",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kernels_peak_at_one() {
        for k in Kernel::all() {
            assert_eq!(k.profile(0.0), 1.0, "{k} should peak at 1 at the origin");
        }
    }

    #[test]
    fn all_kernels_are_nonincreasing_on_grid() {
        for k in Kernel::all() {
            let mut prev = f64::INFINITY;
            for step in 0..50 {
                let t = step as f64 * 0.1;
                let v = k.profile(t);
                assert!(v <= prev + 1e-15, "{k} increased at t={t}");
                assert!((0.0..=1.0).contains(&v), "{k} out of [0,1] at t={t}");
                prev = v;
            }
        }
    }

    #[test]
    fn compact_kernels_vanish_beyond_support() {
        for k in Kernel::all() {
            if k.is_compactly_supported() {
                assert_eq!(k.profile(1.0 + 1e-9), 0.0, "{k} nonzero outside support");
                assert_eq!(k.profile(5.0), 0.0);
            }
        }
        assert!(Kernel::Gaussian.profile(5.0) > 0.0);
    }

    #[test]
    fn profile_is_symmetric_in_sign() {
        for k in Kernel::all() {
            assert_eq!(k.profile(-0.5), k.profile(0.5));
        }
    }

    #[test]
    fn gaussian_weight_matches_paper_formula() {
        // Paper: w_ij = exp(-||xi - xj||² / σ²).
        let sigma = 0.7;
        let dist2 = 0.3;
        let w = Kernel::Gaussian.weight(dist2, sigma).unwrap();
        assert!((w - (-dist2 / (sigma * sigma)).exp()).abs() < 1e-15);
    }

    #[test]
    fn weight_equals_profile_of_scaled_distance() {
        for k in Kernel::all() {
            let h = 2.0;
            let d2 = 1.44; // distance 1.2
            let w = k.weight(d2, h).unwrap();
            assert!(
                (w - k.profile(1.2 / 2.0)).abs() < 1e-12,
                "{k} weight/profile mismatch"
            );
        }
    }

    #[test]
    fn weight_validates_arguments() {
        assert!(matches!(
            Kernel::Gaussian.weight(1.0, 0.0),
            Err(Error::InvalidBandwidth { .. })
        ));
        assert!(matches!(
            Kernel::Gaussian.weight(1.0, -1.0),
            Err(Error::InvalidBandwidth { .. })
        ));
        assert!(matches!(
            Kernel::Boxcar.weight(-0.1, 1.0),
            Err(Error::InvalidArgument { .. })
        ));
    }

    #[test]
    fn theorem_conditions() {
        for k in Kernel::all() {
            let (beta, delta) = k.lower_bound_ball();
            assert!(beta > 0.0, "{k} lower bound not positive");
            assert!(delta > 0.0);
            // β really is a lower bound on the ball.
            for step in 0..=10 {
                let t = delta * step as f64 / 10.0;
                assert!(k.profile(t) >= beta - 1e-15, "{k} violates β on ball");
            }
        }
        assert!(Kernel::Epanechnikov.satisfies_consistency_conditions());
        assert!(Kernel::Boxcar.satisfies_consistency_conditions());
        // Gaussian fails compact support, so it does not satisfy the full set.
        assert!(!Kernel::Gaussian.satisfies_consistency_conditions());
    }

    #[test]
    fn display_names() {
        assert_eq!(Kernel::Gaussian.to_string(), "gaussian");
        assert_eq!(Kernel::Tricube.to_string(), "tricube");
    }
}
