//! Spectral utilities: power iteration and spectral-radius estimates.
//!
//! The paper's proof of Theorem II.1 hinges on the Neumann series
//! `(I − D₂₂⁻¹W₂₂)⁻¹ = I + Σ_l (D₂₂⁻¹W₂₂)^l` converging, i.e. on the
//! spectral radius of `D₂₂⁻¹W₂₂` staying below 1. [`spectral_radius`]
//! lets the `gssl::theory` module measure that quantity directly.

use crate::error::{Error, Result};
use gssl_linalg::float::is_exactly_zero;
use gssl_linalg::{LinearOperator, Vector};

/// Options for power iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerIterationOptions {
    /// Maximum iterations (0 means 10_000).
    pub max_iterations: usize,
    /// Convergence threshold on successive eigenvalue estimates.
    pub tolerance: f64,
}

impl Default for PowerIterationOptions {
    fn default() -> Self {
        PowerIterationOptions {
            max_iterations: 0,
            tolerance: 1e-10,
        }
    }
}

/// Result of a power iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerIterationOutcome {
    /// Estimated dominant eigenvalue (by magnitude). For symmetric
    /// operators this is signed via the Rayleigh quotient.
    pub eigenvalue: f64,
    /// The associated unit eigenvector estimate.
    pub eigenvector: Vector,
    /// Iterations performed.
    pub iterations: usize,
}

/// Estimates the dominant eigenpair of `op` by power iteration with a
/// deterministic starting vector.
///
/// # Errors
///
/// * [`Error::InvalidArgument`] when the operator has dimension 0.
/// * [`Error::Linalg`] wrapping `NotConverged` when the budget runs out
///   (e.g. for operators with two dominant eigenvalues of equal modulus).
pub fn power_iteration(
    op: &(impl LinearOperator + ?Sized),
    options: &PowerIterationOptions,
) -> Result<PowerIterationOutcome> {
    let n = op.dim();
    if n == 0 {
        return Err(Error::InvalidArgument {
            message: "power iteration needs a nonempty operator".to_owned(),
        });
    }
    let max_iterations = if options.max_iterations == 0 {
        10_000
    } else {
        options.max_iterations
    };

    // Deterministic, generic starting vector (non-orthogonal to most
    // eigenvectors): pseudo-random unit vector from a fixed LCG.
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut x: Vec<f64> = (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0 + 1e-3
        })
        .collect();
    normalize(&mut x);

    let mut y = vec![0.0; n];
    let mut prev_lambda = f64::INFINITY;
    for iter in 1..=max_iterations {
        op.apply(&x, &mut y);
        // Rayleigh quotient gives a signed estimate.
        let lambda: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        let norm = l2(&y);
        if is_exactly_zero(norm) {
            // x is in the null space and the operator may be 0; eigenvalue 0.
            return Ok(PowerIterationOutcome {
                eigenvalue: 0.0,
                eigenvector: Vector::from(x),
                iterations: iter,
            });
        }
        for (xi, yi) in x.iter_mut().zip(&y) {
            *xi = yi / norm;
        }
        if (lambda - prev_lambda).abs() <= options.tolerance * lambda.abs().max(1.0) {
            return Ok(PowerIterationOutcome {
                eigenvalue: lambda,
                eigenvector: Vector::from(x),
                iterations: iter,
            });
        }
        prev_lambda = lambda;
    }

    Err(Error::Linalg(gssl_linalg::Error::NotConverged {
        iterations: max_iterations,
        residual: f64::NAN,
    }))
}

/// Estimates the spectral radius `ρ(A)` (magnitude of the dominant
/// eigenvalue) of `op`.
///
/// # Errors
///
/// Propagates [`power_iteration`] errors.
pub fn spectral_radius(
    op: &(impl LinearOperator + ?Sized),
    options: &PowerIterationOptions,
) -> Result<f64> {
    Ok(power_iteration(op, options)?.eigenvalue.abs())
}

/// The Fiedler vector of a weighted graph: the eigenvector of the
/// unnormalized Laplacian paired with its second-smallest eigenvalue.
/// Its sign pattern cuts the graph along its sparsest bottleneck — the
/// spectral view of the cluster assumption the paper's introduction
/// invokes.
///
/// # Errors
///
/// * [`Error::InvalidArgument`] when `w` is not square or has fewer than
///   two vertices.
/// * [`Error::Linalg`] when the eigensolver fails to converge.
/// shape: (w.rows,)
pub fn fiedler_vector(w: &gssl_linalg::Matrix) -> Result<Vector> {
    let embedding = spectral_embedding(w, 1)?;
    Ok(embedding.col(0))
}

/// Spectral embedding: the `k` eigenvectors of the unnormalized Laplacian
/// following the trivial constant one, as columns of an `n × k` matrix.
/// Rows are vertex coordinates in the embedded space.
///
/// # Errors
///
/// * [`Error::InvalidArgument`] when `w` is not square or
///   `k >= w.rows()` or `k == 0`.
/// * [`Error::Linalg`] when the eigensolver fails to converge.
/// shape: (w.rows, k)
pub fn spectral_embedding(w: &gssl_linalg::Matrix, k: usize) -> Result<gssl_linalg::Matrix> {
    if !w.is_square() {
        return Err(Error::InvalidArgument {
            message: format!(
                "affinity matrix must be square, got {}x{}",
                w.rows(),
                w.cols()
            ),
        });
    }
    let n = w.rows();
    if k == 0 || k + 1 > n {
        return Err(Error::InvalidArgument {
            message: format!("embedding dimension k must satisfy 1 <= k < n (= {n}), got {k}"),
        });
    }
    let l = crate::laplacian(w, crate::LaplacianKind::Unnormalized)?;
    let eig = gssl_linalg::symmetric_eigen(&l, &gssl_linalg::EigenOptions::default())
        .map_err(Error::Linalg)?;
    // Columns 1..=k (column 0 pairs with the smallest eigenvalue, the
    // constant vector on connected graphs).
    Ok(gssl_linalg::Matrix::from_fn(n, k, |i, j| {
        eig.eigenvectors().get(i, j + 1)
    }))
}

/// Spectral clustering: embed with [`spectral_embedding`] into `k − 1`
/// dimensions (or 1 for `k = 2`) and run Lloyd's k-means with
/// deterministic farthest-point initialization. Returns one cluster id in
/// `0..k` per vertex.
///
/// # Errors
///
/// * [`Error::InvalidArgument`] when `k < 2` or `k > w.rows()`.
/// * Propagates [`spectral_embedding`] errors.
pub fn spectral_clusters(w: &gssl_linalg::Matrix, k: usize) -> Result<Vec<usize>> {
    let n = w.rows();
    if k < 2 || k > n {
        return Err(Error::InvalidArgument {
            message: format!("cluster count must satisfy 2 <= k <= n (= {n}), got {k}"),
        });
    }
    let dims = (k - 1).max(1).min(n.saturating_sub(1).max(1));
    let embedding = spectral_embedding(w, dims)?;
    Ok(lloyd_kmeans(&embedding, k))
}

/// Lloyd's algorithm with farthest-point (k-means++-style, deterministic)
/// initialization on row vectors.
fn lloyd_kmeans(points: &gssl_linalg::Matrix, k: usize) -> Vec<usize> {
    let n = points.rows();
    let d = points.cols();
    let dist2 =
        |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum() };

    // Farthest-point init: start from the vector with the largest norm
    // (deterministic), then greedily add the point farthest from the
    // current centers.
    let mut centers: Vec<Vec<f64>> = Vec::with_capacity(k);
    let first = (0..n)
        .max_by(|&a, &b| {
            let na: f64 = points.row(a).iter().map(|v| v * v).sum();
            let nb: f64 = points.row(b).iter().map(|v| v * v).sum();
            na.total_cmp(&nb)
        })
        .unwrap_or(0);
    centers.push(points.row(first).to_vec());
    while centers.len() < k {
        let next = (0..n)
            .max_by(|&a, &b| {
                let da = centers.iter().map(|c| dist2(points.row(a), c)).fold(
                    f64::INFINITY,
                    |acc, x| {
                        if x.total_cmp(&acc).is_lt() {
                            x
                        } else {
                            acc
                        }
                    },
                );
                let db = centers.iter().map(|c| dist2(points.row(b), c)).fold(
                    f64::INFINITY,
                    |acc, x| {
                        if x.total_cmp(&acc).is_lt() {
                            x
                        } else {
                            acc
                        }
                    },
                );
                da.total_cmp(&db)
            })
            .unwrap_or(0);
        centers.push(points.row(next).to_vec());
    }

    let mut assignment = vec![0usize; n];
    for _ in 0..100 {
        // Assign.
        let mut changed = false;
        for i in 0..n {
            let best = centers
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    dist2(points.row(i), a).total_cmp(&dist2(points.row(i), b))
                })
                .map(|(c, _)| c)
                .unwrap_or(0);
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        // Update.
        for (c, center) in centers.iter_mut().enumerate() {
            let members: Vec<usize> = (0..n).filter(|&i| assignment[i] == c).collect();
            if members.is_empty() {
                continue; // keep the old center for empty clusters
            }
            for (j, value) in center.iter_mut().enumerate().take(d) {
                *value =
                    members.iter().map(|&i| points.get(i, j)).sum::<f64>() / members.len() as f64;
            }
        }
    }
    assignment
}

fn l2(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

fn normalize(x: &mut [f64]) {
    let norm = l2(x);
    if norm > 0.0 {
        for v in x.iter_mut() {
            *v /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gssl_linalg::Matrix;

    #[test]
    fn dominant_eigenvalue_of_diagonal_matrix() {
        let a = Matrix::from_diag(&[1.0, 3.0, -2.0]);
        let out = power_iteration(&a, &PowerIterationOptions::default()).unwrap();
        assert!((out.eigenvalue - 3.0).abs() < 1e-8);
        // Eigenvector concentrates on coordinate 1.
        assert!(out.eigenvector[1].abs() > 0.999);
    }

    #[test]
    fn signed_estimate_for_negative_dominant() {
        let a = Matrix::from_diag(&[-5.0, 2.0]);
        let out = power_iteration(&a, &PowerIterationOptions::default()).unwrap();
        // Power iteration oscillates in sign for negative eigenvalues, but the
        // Rayleigh quotient magnitude converges to 5.
        assert!((out.eigenvalue.abs() - 5.0).abs() < 1e-6);
        assert!(
            (spectral_radius(&a, &PowerIterationOptions::default()).unwrap() - 5.0).abs() < 1e-6
        );
    }

    #[test]
    fn symmetric_matrix_known_spectrum() {
        // Eigenvalues 3 and 1 for [[2,1],[1,2]].
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        let opts = PowerIterationOptions {
            tolerance: 1e-14,
            ..PowerIterationOptions::default()
        };
        let out = power_iteration(&a, &opts).unwrap();
        assert!((out.eigenvalue - 3.0).abs() < 1e-8);
        // The eigenvector converges more slowly than the Rayleigh quotient;
        // a loose check on the direction is enough here.
        let v = &out.eigenvector;
        assert!((v[0].abs() - v[1].abs()).abs() < 1e-4);
    }

    #[test]
    fn zero_matrix_reports_zero() {
        let a = Matrix::zeros(3, 3);
        let out = power_iteration(&a, &PowerIterationOptions::default()).unwrap();
        assert_eq!(out.eigenvalue, 0.0);
    }

    #[test]
    fn row_stochastic_matrix_has_radius_one() {
        // D⁻¹W of a connected graph is row-stochastic: ρ = 1.
        let a = Matrix::from_rows(&[&[0.5, 0.5], &[0.25, 0.75]]).unwrap();
        let rho = spectral_radius(&a, &PowerIterationOptions::default()).unwrap();
        assert!((rho - 1.0).abs() < 1e-8);
    }

    #[test]
    fn substochastic_matrix_has_radius_below_one() {
        // The paper's D₂₂⁻¹W₂₂ is strictly substochastic when labeled mass
        // exists: the Neumann series converges.
        let a = Matrix::from_rows(&[&[0.3, 0.4], &[0.2, 0.5]]).unwrap();
        let rho = spectral_radius(&a, &PowerIterationOptions::default()).unwrap();
        assert!(rho < 1.0);
        assert!(rho > 0.0);
    }

    /// Two cliques of 3 joined by one weak edge.
    fn barbell() -> Matrix {
        let mut w = Matrix::zeros(6, 6);
        for &(a, b) in &[(0usize, 1usize), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5)] {
            w.set(a, b, 1.0);
            w.set(b, a, 1.0);
        }
        w.set(2, 3, 0.05);
        w.set(3, 2, 0.05);
        w
    }

    #[test]
    fn fiedler_vector_cuts_the_bottleneck() {
        let v = fiedler_vector(&barbell()).unwrap();
        // Sign pattern separates {0,1,2} from {3,4,5}.
        let side = |i: usize| v[i] >= 0.0;
        assert_eq!(side(0), side(1));
        assert_eq!(side(0), side(2));
        assert_eq!(side(3), side(4));
        assert_eq!(side(3), side(5));
        assert_ne!(
            side(0),
            side(3),
            "Fiedler vector failed to split the barbell"
        );
    }

    #[test]
    fn spectral_embedding_shapes_and_validation() {
        let w = barbell();
        let e = spectral_embedding(&w, 2).unwrap();
        assert_eq!(e.shape(), (6, 2));
        assert!(spectral_embedding(&w, 0).is_err());
        assert!(spectral_embedding(&w, 6).is_err());
        assert!(spectral_embedding(&Matrix::zeros(2, 3), 1).is_err());
    }

    #[test]
    fn spectral_clusters_recover_the_cliques() {
        let labels = spectral_clusters(&barbell(), 2).unwrap();
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_eq!(labels[3], labels[5]);
        assert_ne!(labels[0], labels[3]);
        assert!(spectral_clusters(&barbell(), 1).is_err());
        assert!(spectral_clusters(&barbell(), 7).is_err());
    }

    #[test]
    fn three_cluster_spectral_recovery() {
        // Three tight pairs, weakly chained.
        let mut w = Matrix::zeros(6, 6);
        for &(a, b) in &[(0usize, 1usize), (2, 3), (4, 5)] {
            w.set(a, b, 1.0);
            w.set(b, a, 1.0);
        }
        for &(a, b) in &[(1usize, 2usize), (3, 4)] {
            w.set(a, b, 0.02);
            w.set(b, a, 0.02);
        }
        let labels = spectral_clusters(&w, 3).unwrap();
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_eq!(labels[4], labels[5]);
        let distinct: std::collections::HashSet<usize> = labels.iter().copied().collect();
        assert_eq!(distinct.len(), 3);
    }

    #[test]
    fn rejects_empty_operator() {
        let a = Matrix::zeros(0, 0);
        assert!(power_iteration(&a, &PowerIterationOptions::default()).is_err());
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        // A one-iteration budget with zero-slack tolerance cannot settle.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        let opts = PowerIterationOptions {
            max_iterations: 1,
            tolerance: f64::MIN_POSITIVE,
        };
        assert!(power_iteration(&a, &opts).is_err());
    }
}
