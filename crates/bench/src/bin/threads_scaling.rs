//! Thread-scaling benchmark for the shared execution layer
//! (`gssl-runtime`): times kernel-matrix assembly, hard- and soft-
//! criterion fits, and batch prediction at 1/2/4/8 workers, verifies the
//! determinism contract (parallel output **bit-identical** to the
//! 1-worker run), and writes `BENCH_parallel.json`.
//!
//! ```text
//! cargo run --release -p gssl-bench --bin threads_scaling [-- --quiet]
//! ```
//!
//! Timing is reported as measured and never gates the exit code: on a
//! ci host with a single hardware thread (see `host_parallelism` in the
//! JSON) every speedup is necessarily ~1×. What gates is the invariant
//! that survives any machine: every stage's output at 2/4/8 workers must
//! equal the 1-worker output byte for byte.

use gssl::{HardCriterion, Problem, SoftCriterion};
use gssl_graph::{Kernel, KernelGraph};
use gssl_linalg::{Matrix, SolverPolicy};
use gssl_runtime::Executor;
use gssl_serve::{EngineConfig, Prediction, QueryPoint, ServingEngine};
use std::process::ExitCode;
use std::time::Instant;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Assembly workload: points for the dense kernel matrix.
const ASSEMBLY_NODES: usize = 1100;
const ASSEMBLY_DIM: usize = 24;

/// Fit workload: a smaller anchored problem (the criterion systems are
/// cubic in the unlabeled count, the assembly only quadratic).
const FIT_NODES: usize = 420;
const FIT_LABELED: usize = 70;

/// Serving workload.
const SERVE_NODES: usize = 260;
const SERVE_LABELED: usize = 52;
const SERVE_QUERIES: usize = 3000;

/// Deterministic quasi-random coordinate in [0, 1) (no RNG state, so
/// every worker-count run sees exactly the same inputs).
fn coord(i: usize, j: usize) -> f64 {
    let x = ((i * 131 + j * 37 + 11) as f64) * 0.6180339887498949;
    x.fract()
}

fn points(n: usize, d: usize) -> Matrix {
    Matrix::from_fn(n, d, coord)
}

/// One stage at one worker count.
struct Sample {
    workers: usize,
    seconds: f64,
    bit_identical: bool,
}

/// A timed stage: name, the number of output elements one run produces
/// (kernel entries, fitted scores, predictions — the unit the throughput
/// figures are denominated in), and per-worker-count samples.
struct Stage {
    name: &'static str,
    elements: usize,
    samples: Vec<Sample>,
}

impl Stage {
    /// Runs `work` once per worker count, comparing each output against
    /// the 1-worker reference with `eq`.
    fn run<R>(
        name: &'static str,
        elements: usize,
        mut work: impl FnMut(&Executor) -> R,
        eq: impl Fn(&R, &R) -> bool,
    ) -> Stage {
        let mut samples = Vec::with_capacity(WORKER_COUNTS.len());
        let mut reference: Option<R> = None;
        for &workers in &WORKER_COUNTS {
            let executor = Executor::with_workers(workers);
            let start = Instant::now();
            let out = work(&executor);
            let seconds = start.elapsed().as_secs_f64();
            let bit_identical = match &reference {
                None => {
                    reference = Some(out);
                    true
                }
                Some(r) => eq(r, &out),
            };
            samples.push(Sample {
                workers,
                seconds,
                bit_identical,
            });
        }
        Stage {
            name,
            elements,
            samples,
        }
    }

    /// Output elements per second for one sample.
    fn throughput(&self, sample: &Sample) -> f64 {
        self.elements as f64 / sample.seconds.max(1e-12)
    }

    fn speedup_at(&self, workers: usize) -> f64 {
        let base = self.samples[0].seconds;
        self.samples
            .iter()
            .find(|s| s.workers == workers)
            .map_or(1.0, |s| base / s.seconds.max(1e-12))
    }

    fn all_identical(&self) -> bool {
        self.samples.iter().all(|s| s.bit_identical)
    }

    fn to_json(&self) -> String {
        let samples: Vec<String> = self
            .samples
            .iter()
            .map(|s| {
                format!(
                    "    {{\"workers\": {}, \"seconds\": {:.6}, \"speedup_vs_1\": {:.3}, \
                     \"throughput_elems_per_sec\": {:.1}, \"bit_identical\": {}}}",
                    s.workers,
                    s.seconds,
                    self.samples[0].seconds / s.seconds.max(1e-12),
                    self.throughput(s),
                    s.bit_identical
                )
            })
            .collect();
        format!(
            "  {{\"stage\": \"{}\", \"elements\": {}, \"samples\": [\n{}\n  ]}}",
            self.name,
            self.elements,
            samples.join(",\n")
        )
    }
}

fn predictions_equal(a: &[Prediction], b: &[Prediction]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.class == y.class
                && x.score.to_bits() == y.score.to_bits()
                && x.per_class.len() == y.per_class.len()
                && x.per_class
                    .iter()
                    .zip(&y.per_class)
                    .all(|(p, q)| p.to_bits() == q.to_bits())
        })
}

fn main() -> ExitCode {
    let quiet = std::env::args().any(|a| a == "--quiet");

    let assembly_pts = points(ASSEMBLY_NODES, ASSEMBLY_DIM);
    let graph = KernelGraph::fit(assembly_pts, Kernel::Gaussian, 0.8).expect("graph fit");
    let assembly = Stage::run(
        "kernel_assembly",
        ASSEMBLY_NODES * ASSEMBLY_NODES,
        |ex| graph.weights_with(ex).expect("weights"),
        |a, b| a.as_slice() == b.as_slice(),
    );

    let fit_pts = points(FIT_NODES, 3);
    let fit_weights = gssl_graph::affinity::affinity_matrix(&fit_pts, Kernel::Gaussian, 0.6)
        .expect("fit affinity");
    let labels: Vec<f64> = (0..FIT_LABELED).map(|i| f64::from(i as u8 % 2)).collect();
    let problem = Problem::new(fit_weights, labels).expect("fit problem");

    let hard_fit = Stage::run(
        "hard_fit",
        FIT_NODES,
        |ex| {
            HardCriterion::new()
                .with_executor(ex.clone())
                .fit(&problem)
                .expect("hard fit")
                .all()
                .to_vec()
        },
        |a, b| a == b,
    );

    let soft_fit = Stage::run(
        "soft_fit",
        FIT_NODES,
        |ex| {
            SoftCriterion::new(0.5)
                .expect("lambda")
                .policy(SolverPolicy::default().with_executor(ex.clone()))
                .fit(&problem)
                .expect("soft fit")
                .all()
                .to_vec()
        },
        |a, b| a == b,
    );

    let serve_pts = points(SERVE_NODES, 2);
    let serve_labels: Vec<f64> = (0..SERVE_LABELED).map(|i| f64::from(i as u8 % 2)).collect();
    let queries: Vec<QueryPoint> = (0..SERVE_QUERIES)
        .map(|q| QueryPoint::new(vec![coord(q, 0) * 1.2 - 0.1, coord(q, 1) * 1.2 - 0.1]))
        .collect();
    let predict_batch = Stage::run(
        "predict_batch",
        SERVE_QUERIES,
        |ex| {
            let config = EngineConfig::new(Kernel::Gaussian, 0.5).workers(ex.workers());
            let engine = ServingEngine::fit(&serve_pts, &serve_labels, config).expect("engine fit");
            engine.predict_batch(&queries).expect("batch predict")
        },
        |a, b| predictions_equal(a, b),
    );

    let stages = [assembly, hard_fit, soft_fit, predict_batch];
    let host_parallelism = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);

    let body = stages
        .iter()
        .map(Stage::to_json)
        .collect::<Vec<_>>()
        .join(",\n");
    let json =
        format!("{{\n\"host_parallelism\": {host_parallelism},\n\"stages\": [\n{body}\n]\n}}\n");
    std::fs::write("BENCH_parallel.json", &json).expect("write BENCH_parallel.json");

    if !quiet {
        println!("== threads_scaling: deterministic parallelism across the stack ==");
        println!("host parallelism: {host_parallelism}\n");
        println!(
            "{:<16} {:>8} {:>12} {:>12} {:>14} {:>14}",
            "stage", "workers", "seconds", "speedup", "elems/sec", "bit_identical"
        );
        for stage in &stages {
            for s in &stage.samples {
                println!(
                    "{:<16} {:>8} {:>12.4} {:>11.2}x {:>14.0} {:>14}",
                    stage.name,
                    s.workers,
                    s.seconds,
                    stage.samples[0].seconds / s.seconds.max(1e-12),
                    stage.throughput(s),
                    s.bit_identical
                );
            }
        }
        println!(
            "\nassembly speedup at 4 workers: {:.2}x (wrote BENCH_parallel.json)",
            stages[0].speedup_at(4)
        );
        if host_parallelism < 4 {
            println!(
                "note: host exposes {host_parallelism} hardware thread(s); wall-clock \
                 speedup at 4 workers cannot exceed ~1x here"
            );
        }
    }

    // Timing never gates; the cross-machine invariant is bit-identity.
    if stages.iter().all(Stage::all_identical) {
        ExitCode::SUCCESS
    } else {
        for stage in &stages {
            for s in stage.samples.iter().filter(|s| !s.bit_identical) {
                eprintln!(
                    "threads_scaling: {} at {} workers diverged from the 1-worker output",
                    stage.name, s.workers
                );
            }
        }
        ExitCode::FAILURE
    }
}
