//! Numerical verification of Theorem II.1: the hard criterion's error on
//! unlabeled data vanishes as the labeled sample grows (with m fixed and
//! the paper's bandwidth rate), while the mean predictor's does not.

use gssl::theory::TheoryDiagnostics;
use gssl::{HardCriterion, MeanPredictor, NadarayaWatson, Problem};
use gssl_datasets::synthetic::{paper_dataset, PaperModel, PAPER_DIM};
use gssl_graph::{affinity::affinity_matrix, bandwidth::paper_rate, Kernel};
use gssl_stats::metrics::rmse;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn average_rmse<F>(n: usize, m: usize, reps: u64, fit: F) -> f64
where
    F: Fn(&Problem) -> Vec<f64>,
{
    let mut total = 0.0;
    for seed in 0..reps {
        let mut rng = StdRng::seed_from_u64(7000 + seed);
        let ds = paper_dataset(PaperModel::Linear, n + m, &mut rng).expect("generation");
        let ssl = ds.arrange_prefix(n).expect("arrangement");
        let truth = ssl.hidden_truth.as_ref().expect("synthetic truth");
        let h = paper_rate(n, PAPER_DIM).expect("rate");
        let w = affinity_matrix(&ssl.inputs, Kernel::Gaussian, h).expect("affinity");
        let problem = Problem::new(w, ssl.labels.clone()).expect("valid problem");
        total += rmse(truth, &fit(&problem)).expect("rmse");
    }
    total / reps as f64
}

#[test]
fn hard_criterion_error_shrinks_with_n() {
    let fit = |p: &Problem| {
        HardCriterion::new()
            .fit(p)
            .expect("fit")
            .unlabeled()
            .to_vec()
    };
    let small = average_rmse(20, 25, 10, fit);
    let large = average_rmse(400, 25, 10, fit);
    assert!(
        large < small * 0.75,
        "RMSE should drop substantially: n=20 gives {small}, n=400 gives {large}"
    );
}

#[test]
fn mean_predictor_error_does_not_vanish() {
    // Proposition II.2's limit: the constant predictor's RMSE is bounded
    // below by the spread of q(X) regardless of n.
    let fit = |p: &Problem| {
        MeanPredictor::new()
            .fit(p)
            .expect("fit")
            .unlabeled()
            .to_vec()
    };
    let large = average_rmse(400, 25, 10, fit);
    assert!(
        large > 0.12,
        "mean predictor should stay near the population spread, got {large}"
    );
}

#[test]
fn hard_beats_mean_predictor_at_large_n() {
    let hard = average_rmse(300, 25, 10, |p| {
        HardCriterion::new()
            .fit(p)
            .expect("fit")
            .unlabeled()
            .to_vec()
    });
    let mean = average_rmse(300, 25, 10, |p| {
        MeanPredictor::new()
            .fit(p)
            .expect("fit")
            .unlabeled()
            .to_vec()
    });
    assert!(hard < mean, "hard {hard} should beat mean {mean}");
}

#[test]
fn hard_tracks_nadaraya_watson_in_the_consistent_regime() {
    // The proof couples the two estimators; with m << n h^d they should
    // nearly coincide.
    let mut rng = StdRng::seed_from_u64(123);
    let (n, m) = (500, 10);
    let ds = paper_dataset(PaperModel::Linear, n + m, &mut rng).expect("generation");
    let ssl = ds.arrange_prefix(n).expect("arrangement");
    let h = paper_rate(n, PAPER_DIM).expect("rate");
    let w = affinity_matrix(&ssl.inputs, Kernel::Gaussian, h).expect("affinity");
    let problem = Problem::new(w, ssl.labels.clone()).expect("valid problem");
    let hard = HardCriterion::new().fit(&problem).expect("hard fit");
    let nw = NadarayaWatson::new().fit(&problem).expect("nw fit");
    let gap = hard
        .unlabeled()
        .iter()
        .zip(nw.unlabeled())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(gap < 0.05, "hard and NW should nearly agree, gap {gap}");
}

#[test]
fn theory_diagnostics_shrink_with_n() {
    let diagnostics = |n: usize, m: usize| {
        let mut rng = StdRng::seed_from_u64(55);
        let ds = paper_dataset(PaperModel::Linear, n + m, &mut rng).expect("generation");
        let ssl = ds.arrange_prefix(n).expect("arrangement");
        let h = paper_rate(n, PAPER_DIM).expect("rate");
        let w = affinity_matrix(&ssl.inputs, Kernel::Gaussian, h).expect("affinity");
        let problem = Problem::new(w, ssl.labels.clone()).expect("valid problem");
        TheoryDiagnostics::compute(&problem, h, PAPER_DIM).expect("diagnostics")
    };
    let small = diagnostics(30, 20);
    let large = diagnostics(400, 20);
    assert!(large.coupling_gap_max < small.coupling_gap_max);
    assert!(large.solution_gap_max < small.solution_gap_max);
    assert!(large.regime_ratio < small.regime_ratio);
    assert!(small.spectral_radius < 1.0 && large.spectral_radius < 1.0);
}

#[test]
fn growing_m_inflates_the_coupling_gap() {
    // The regime the paper conjectures inconsistent: m growing with n
    // fixed drives the proof's coupling quantity up.
    let diagnostics = |m: usize| {
        let mut rng = StdRng::seed_from_u64(66);
        let ds = paper_dataset(PaperModel::Linear, 100 + m, &mut rng).expect("generation");
        let ssl = ds.arrange_prefix(100).expect("arrangement");
        let h = paper_rate(100, PAPER_DIM).expect("rate");
        let w = affinity_matrix(&ssl.inputs, Kernel::Gaussian, h).expect("affinity");
        let problem = Problem::new(w, ssl.labels.clone()).expect("valid problem");
        TheoryDiagnostics::compute(&problem, h, PAPER_DIM).expect("diagnostics")
    };
    let few = diagnostics(10);
    let many = diagnostics(200);
    assert!(many.coupling_gap_max > few.coupling_gap_max);
    assert!(many.regime_ratio > few.regime_ratio);
}
