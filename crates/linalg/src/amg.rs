//! Algebraic multigrid over CSR graph Laplacians.
//!
//! The hard/soft criteria of the paper solve systems in kNN-graph
//! Laplacians whose condition number grows with graph diameter — exactly
//! the regime where one-level preconditioners (Jacobi, IC(0)) degrade.
//! [`AmgCg`] builds a *geometry-free* multigrid hierarchy from the matrix
//! alone:
//!
//! 1. **Coarsening** — greedy heavy-edge matching in row order: each
//!    unmatched vertex pairs with its heaviest (largest `|a_ij|`) unmatched
//!    neighbor; union-find merges the pairs and aggregate ids are assigned
//!    in first-seen order, so the result is independent of thread count
//!    and identical on every run.
//! 2. **Galerkin coarse operators** — with the piecewise-constant
//!    prolongation `P` (each fine vertex injects into its aggregate), the
//!    coarse matrix is the triple product `Aᶜ = Pᵀ A P`, assembled as
//!    triplets `(agg[i], agg[j], a_ij)` and summed deterministically by
//!    the CSR constructor.
//! 3. **V-cycle** — damped-Jacobi pre/post smoothing (simultaneous update,
//!    `x ← x + ω D⁻¹ (r − A x)`), restriction of the residual, recursion,
//!    prolongation of the correction, and a dense direct solve on the
//!    coarsest level. Equal pre/post sweeps with the (symmetric) damped
//!    Jacobi smoother make the cycle a symmetric positive-definite
//!    operator, so it is a valid PCG preconditioner.
//!
//! Rather than iterate V-cycles alone, [`AmgCg::solve`] runs CG
//! preconditioned by one V-cycle per iteration — the standard AMG-PCG
//! combination, which inherits CG's guaranteed convergence on SPD systems
//! while the hierarchy removes the mesh-size dependence of the iteration
//! count. Matvecs on the fine levels are row-sharded across the stored
//! executor with the same fixed chunk claims as every other backend, so
//! parallel solves are bit-identical to sequential ones.

use crate::cg::{preconditioned_cg_with, CgOptions};
use crate::cholesky::Cholesky;
use crate::error::{Error, Result};
use crate::factor::{BackendKind, FactorReport, Factorization};
use crate::lu::Lu;
use crate::ops::LinearOperator;
use crate::precond::{JacobiPrecond, Preconditioner};
use crate::sparse::CsrMatrix;
use crate::vector::Vector;
use gssl_runtime::Executor;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Options controlling hierarchy construction and the outer PCG run.
#[derive(Debug, Clone, PartialEq)]
pub struct AmgOptions {
    /// Maximum number of coarsening steps (hierarchy depth bound).
    pub max_levels: usize,
    /// Stop coarsening once a level has at most this many rows; that level
    /// is densified and factored directly.
    pub coarsest_dim: usize,
    /// Damped-Jacobi sweeps before *and* after each coarse correction
    /// (equal counts keep the cycle symmetric).
    pub smoothing_sweeps: usize,
    /// Jacobi damping factor `ω` in `(0, 1]`.
    pub damping: f64,
    /// Coarsening is considered stalled (and stops) when a step retains
    /// more than this fraction of the rows. Heavy-edge matching halves
    /// well-connected graphs, so a stalled step means the level has
    /// (almost) no off-diagonal mass left to aggregate.
    pub min_coarsening_ratio: f64,
    /// Options for the outer V-cycle-preconditioned CG run.
    pub cg: CgOptions,
}

impl Default for AmgOptions {
    fn default() -> Self {
        AmgOptions {
            max_levels: 16,
            coarsest_dim: 64,
            smoothing_sweeps: 1,
            damping: 0.6,
            min_coarsening_ratio: 0.9,
            cg: CgOptions::default(),
        }
    }
}

/// One level of the hierarchy: the operator, its smoother diagonal, and
/// the aggregate map onto the next (coarser) level.
#[derive(Debug, Clone)]
struct Grid {
    a: CsrMatrix,
    inv_diag: Vec<f64>,
    /// `agg[i]` is the coarse index fine row `i` aggregates into.
    agg: Vec<usize>,
}

/// Direct factorization of the densified coarsest level.
#[derive(Debug, Clone)]
enum CoarseSolve {
    Cholesky(Cholesky),
    Lu(Lu),
}

impl CoarseSolve {
    fn dim(&self) -> usize {
        match self {
            CoarseSolve::Cholesky(f) => f.dim(),
            CoarseSolve::Lu(f) => f.dim(),
        }
    }

    fn solve_into(&self, r: &[f64], out: &mut [f64]) -> Result<()> {
        let rhs = Vector::from(r);
        let x = match self {
            CoarseSolve::Cholesky(f) => f.solve(&rhs)?,
            CoarseSolve::Lu(f) => f.solve(&rhs)?,
        };
        out.copy_from_slice(x.as_slice());
        Ok(())
    }
}

/// Algebraic-multigrid [`Factorization`] backend: V-cycle-preconditioned
/// conjugate gradient over a heavy-edge-matched Galerkin hierarchy.
#[derive(Debug)]
pub struct AmgCg {
    /// `grids[0]` holds the finest operator; the coarsest matrix lives in
    /// `coarse_a` / `coarse` (so a system already at or below
    /// `coarsest_dim` has no grids at all and solves directly).
    grids: Vec<Grid>,
    coarse_a: CsrMatrix,
    coarse: CoarseSolve,
    options: AmgOptions,
    executor: Executor,
    // Last-solve diagnostics, written with SeqCst so concurrent serve
    // readers observe a consistent snapshot; `usize::MAX` / NaN bits mean
    // "no solve recorded yet".
    last_iterations: AtomicUsize,
    last_residual: AtomicU64,
}

impl Clone for AmgCg {
    fn clone(&self) -> Self {
        AmgCg {
            grids: self.grids.clone(),
            coarse_a: self.coarse_a.clone(),
            coarse: self.coarse.clone(),
            options: self.options.clone(),
            executor: self.executor.clone(),
            last_iterations: AtomicUsize::new(self.last_iterations.load(Ordering::SeqCst)),
            last_residual: AtomicU64::new(self.last_residual.load(Ordering::SeqCst)),
        }
    }
}

impl AmgCg {
    /// Builds the multigrid hierarchy for an SPD CSR system.
    ///
    /// Coarsening stops at `coarsest_dim` rows, after `max_levels` steps,
    /// or when a step stalls (see [`AmgOptions::min_coarsening_ratio`]);
    /// whatever level remains is densified and factored directly
    /// (Cholesky, falling back to LU if rounding spoiled definiteness).
    ///
    /// # Errors
    ///
    /// * [`Error::NotSquare`] when `a` is not square.
    /// * [`Error::InvalidArgument`] when an option is out of range.
    /// * [`Error::NotPositiveDefinite`] when a level's diagonal has a
    ///   non-positive entry (the damped-Jacobi smoother needs `D > 0`).
    /// * [`Error::Singular`] when the coarsest system cannot be factored.
    /// deterministic
    pub fn factor_sparse(a: &CsrMatrix, options: AmgOptions) -> Result<Self> {
        if a.rows() != a.cols() {
            return Err(Error::NotSquare {
                shape: (a.rows(), a.cols()),
            });
        }
        validate_options(&options)?;

        let mut grids = Vec::with_capacity(options.max_levels);
        let mut current = a.clone();
        while current.rows() > options.coarsest_dim && grids.len() < options.max_levels {
            let inv_diag = JacobiPrecond::from_csr(&current)?.into_inv_diag();
            let (agg, coarse_n) = heavy_edge_aggregates(&current);
            if (coarse_n as f64) > options.min_coarsening_ratio * (current.rows() as f64) {
                break;
            }
            let coarse = galerkin(&current, &agg, coarse_n)?;
            grids.push(Grid {
                a: current,
                inv_diag,
                agg,
            });
            current = coarse;
        }

        let dense = current.to_dense();
        let coarse = match Cholesky::factor(&dense) {
            Ok(f) => CoarseSolve::Cholesky(f),
            Err(Error::NotPositiveDefinite { .. }) => CoarseSolve::Lu(Lu::factor(&dense)?),
            Err(e) => return Err(e),
        };
        Ok(AmgCg {
            grids,
            coarse_a: current,
            coarse,
            options,
            executor: Executor::default(),
            last_iterations: AtomicUsize::new(usize::MAX),
            last_residual: AtomicU64::new(f64::NAN.to_bits()),
        })
    }

    /// Runs every solve's fine-level matvecs on `executor` (row-sharded,
    /// bit-identical to the sequential backend at any worker count).
    #[must_use]
    pub fn with_executor(mut self, executor: Executor) -> Self {
        self.executor = executor;
        self
    }

    /// Number of levels in the hierarchy, counting the directly-factored
    /// coarsest one.
    pub fn levels(&self) -> usize {
        self.grids.len() + 1
    }

    /// Dimension of the directly-factored coarsest level.
    pub fn coarse_dim(&self) -> usize {
        self.coarse.dim()
    }

    /// The options the hierarchy was built with.
    pub fn options(&self) -> &AmgOptions {
        &self.options
    }

    /// Iterations of the most recent [`Factorization::solve`] call on this
    /// handle (`None` before the first solve; clones start fresh from the
    /// value at clone time).
    pub fn last_iterations(&self) -> Option<usize> {
        let v = self.last_iterations.load(Ordering::SeqCst);
        if v == usize::MAX {
            None
        } else {
            Some(v)
        }
    }

    /// Final residual norm of the most recent solve (`None` before the
    /// first solve).
    pub fn last_residual(&self) -> Option<f64> {
        let v = f64::from_bits(self.last_residual.load(Ordering::SeqCst));
        if v.is_nan() {
            None
        } else {
            Some(v)
        }
    }

    fn record(&self, iterations: usize, residual: f64) {
        self.last_iterations.store(iterations, Ordering::SeqCst);
        self.last_residual
            .store(residual.to_bits(), Ordering::SeqCst);
    }

    fn finest(&self) -> &CsrMatrix {
        self.grids.first().map(|g| &g.a).unwrap_or(&self.coarse_a)
    }

    /// `out = A x` at level `depth`, row-sharded across the executor with
    /// the same fixed chunk claims as every backend (bit-identical to the
    /// sequential matvec at any worker count).
    /// complexity: O(nnz)
    fn matvec(&self, a: &CsrMatrix, x: &[f64], out: &mut [f64]) {
        if self.executor.is_sequential() {
            a.apply(x, out);
            return;
        }
        let block = out
            .len()
            .div_ceil(self.executor.workers().saturating_mul(4))
            .max(1);
        let sharded = self
            .executor
            .for_each_chunk_mut(out, block, |start, chunk| {
                for (local, o) in chunk.iter_mut().enumerate() {
                    let mut sum = 0.0;
                    for (j, v) in a.row_iter(start + local) {
                        sum += v * x[j];
                    }
                    *o = sum;
                }
            });
        if sharded.is_err() {
            // Chunk width is always >= 1 and the closure is infallible, so
            // this arm is unreachable; recompute sequentially rather than
            // panic if it ever fires.
            a.apply(x, out);
        }
    }

    /// One V-cycle: `x ≈ A⁻¹ r` starting from `x = 0` at level `depth`.
    ///
    /// Restriction, prolongation, and smoothing updates are elementwise
    /// sequential (only matvecs shard), so the cycle is bit-identical at
    /// every worker count.
    /// complexity: O(iters * nnz)
    fn vcycle(&self, depth: usize, r: &[f64], x: &mut [f64]) {
        if depth == self.grids.len() {
            if self.coarse.solve_into(r, x).is_err() {
                // Unreachable: dims match by construction and the factors
                // were validated at build time. Fall back to the identity
                // correction instead of panicking.
                x.copy_from_slice(r);
            }
            return;
        }
        let grid = &self.grids[depth];
        let n = grid.a.rows();
        for xi in x.iter_mut() {
            *xi = 0.0;
        }
        let mut tmp = vec![0.0; n];
        // Pre-smooth: x ← x + ω D⁻¹ (r − A x), simultaneous update.
        for _ in 0..self.options.smoothing_sweeps {
            self.matvec(&grid.a, x, &mut tmp);
            for ((xi, ri), (ti, di)) in x.iter_mut().zip(r).zip(tmp.iter().zip(&grid.inv_diag)) {
                *xi += self.options.damping * di * (ri - ti);
            }
        }
        // Coarse-grid correction: restrict the residual (Pᵀ is "sum over
        // the aggregate"), recurse, prolong (P is "copy to every member").
        self.matvec(&grid.a, x, &mut tmp);
        let coarse_n = self
            .grids
            .get(depth + 1)
            .map(|g| g.a.rows())
            .unwrap_or_else(|| self.coarse.dim());
        let mut rc = vec![0.0; coarse_n];
        for (i, (ri, ti)) in r.iter().zip(&tmp).enumerate() {
            rc[grid.agg[i]] += ri - ti;
        }
        let mut xc = vec![0.0; coarse_n];
        self.vcycle(depth + 1, &rc, &mut xc);
        for (xi, &aggi) in x.iter_mut().zip(&grid.agg) {
            *xi += xc[aggi];
        }
        // Post-smooth with the same sweeps, keeping the cycle symmetric.
        for _ in 0..self.options.smoothing_sweeps {
            self.matvec(&grid.a, x, &mut tmp);
            for ((xi, ri), (ti, di)) in x.iter_mut().zip(r).zip(tmp.iter().zip(&grid.inv_diag)) {
                *xi += self.options.damping * di * (ri - ti);
            }
        }
    }
}

/// The V-cycle viewed as a PCG preconditioner (`z = Vcycle(r)`).
struct VCyclePrecond<'a>(&'a AmgCg);

impl Preconditioner for VCyclePrecond<'_> {
    fn dim(&self) -> usize {
        self.0.finest().rows()
    }

    fn apply(&self, r: &[f64], z: &mut [f64]) {
        self.0.vcycle(0, r, z);
    }
}

/// The finest operator with row-sharded matvecs, for the outer CG loop.
struct ShardedFinest<'a>(&'a AmgCg);

impl LinearOperator for ShardedFinest<'_> {
    fn dim(&self) -> usize {
        self.0.finest().rows()
    }

    fn apply(&self, x: &[f64], out: &mut [f64]) {
        self.0.matvec(self.0.finest(), x, out);
    }
}

impl Factorization for AmgCg {
    fn dim(&self) -> usize {
        self.finest().rows()
    }

    /// shape: (b.len,)
    fn solve(&self, b: &Vector) -> Result<Vector> {
        let precond = VCyclePrecond(self);
        let op = ShardedFinest(self);
        match preconditioned_cg_with(&op, b, &precond, &self.options.cg) {
            Ok(out) => {
                self.record(out.iterations, out.residual_norm);
                Ok(out.solution)
            }
            Err(Error::NotConverged {
                iterations,
                residual,
            }) => {
                // Record the failed attempt too, so serve-side diagnostics
                // can observe a refit that hit its iteration cap.
                self.record(iterations, residual);
                Err(Error::NotConverged {
                    iterations,
                    residual,
                })
            }
            Err(e) => Err(e),
        }
    }

    /// Applies the stored finest operator exactly.
    /// shape: (x.len,)
    fn apply(&self, x: &Vector) -> Result<Vector> {
        let n = Factorization::dim(self);
        if x.len() != n {
            return Err(Error::DimensionMismatch {
                operation: "amg apply",
                left: (n, n),
                right: (x.len(), 1),
            });
        }
        let mut out = vec![0.0; n];
        LinearOperator::apply(self.finest(), x.as_slice(), &mut out);
        Ok(Vector::from(out))
    }

    fn kind(&self) -> BackendKind {
        BackendKind::Amg
    }

    fn report(&self) -> FactorReport {
        FactorReport {
            backend: BackendKind::Amg,
            dim: Factorization::dim(self),
            iterations: self.last_iterations(),
            final_residual: self.last_residual(),
        }
    }
}

fn validate_options(options: &AmgOptions) -> Result<()> {
    if !(options.damping > 0.0 && options.damping <= 1.0) {
        return Err(Error::InvalidArgument {
            message: format!("AMG damping must be in (0, 1], got {}", options.damping),
        });
    }
    if options.smoothing_sweeps == 0 {
        return Err(Error::InvalidArgument {
            message: "AMG needs at least one smoothing sweep".to_owned(),
        });
    }
    if options.coarsest_dim == 0 || options.max_levels == 0 {
        return Err(Error::InvalidArgument {
            message: "AMG coarsest_dim and max_levels must be >= 1".to_owned(),
        });
    }
    if !(options.min_coarsening_ratio > 0.0 && options.min_coarsening_ratio <= 1.0) {
        return Err(Error::InvalidArgument {
            message: format!(
                "AMG min_coarsening_ratio must be in (0, 1], got {}",
                options.min_coarsening_ratio
            ),
        });
    }
    Ok(())
}

/// Minimal union-find with path halving; roots are the smallest member of
/// each set, so id assignment below follows row order (same idiom as the
/// connected-components pass in gssl-graph).
struct MatchForest {
    parent: Vec<usize>,
}

impl MatchForest {
    fn new(n: usize) -> Self {
        MatchForest {
            parent: (0..n).collect(),
        }
    }

    fn root(&mut self, mut i: usize) -> usize {
        while self.parent[i] != i {
            self.parent[i] = self.parent[self.parent[i]];
            i = self.parent[i];
        }
        i
    }

    fn merge(&mut self, a: usize, b: usize) {
        let ra = self.root(a);
        let rb = self.root(b);
        if ra != rb {
            // Smaller index wins the root: deterministic and row-ordered.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

/// Greedy heavy-edge matching with leftover absorption: each unmatched
/// row pairs with its heaviest unmatched neighbor (strictly greater
/// `|a_ij|` wins; the first neighbor in CSR order wins ties), visited in
/// row order; rows left unmatched because every neighbor paired earlier
/// are then absorbed into their heaviest neighbor's aggregate in a
/// second row-order sweep, so the coarsening ratio stays near ½ instead
/// of stalling — a stalled level would be densified and factored
/// directly, which is exactly the blow-up the hierarchy exists to avoid.
/// Returns the aggregate map and the number of aggregates. Zero-weight
/// stored entries never match or absorb, so isolated vertices become
/// singleton aggregates.
/// complexity: O(nnz)
fn heavy_edge_aggregates(a: &CsrMatrix) -> (Vec<usize>, usize) {
    let n = a.rows();
    let mut uf = MatchForest::new(n);
    let mut matched = vec![false; n];
    for i in 0..n {
        if matched[i] {
            continue;
        }
        let mut best: Option<usize> = None;
        let mut best_weight = 0.0f64;
        for (j, v) in a.row_iter(i) {
            if j == i || matched[j] {
                continue;
            }
            let w = v.abs();
            if w > best_weight {
                best_weight = w;
                best = Some(j);
            }
        }
        if let Some(j) = best {
            matched[i] = true;
            matched[j] = true;
            uf.merge(i, j);
        }
    }
    // Absorption sweep: vertices whose neighbors all matched before
    // their turn join their heaviest neighbor's pair. Deterministic row
    // order; chains cannot form because only still-unmatched vertices
    // move and they attach to vertices matched in the first sweep.
    for i in 0..n {
        if matched[i] {
            continue;
        }
        let mut best: Option<usize> = None;
        let mut best_weight = 0.0f64;
        for (j, v) in a.row_iter(i) {
            if j == i || !matched[j] {
                continue;
            }
            let w = v.abs();
            if w > best_weight {
                best_weight = w;
                best = Some(j);
            }
        }
        if let Some(j) = best {
            uf.merge(i, j);
        }
    }
    let mut agg = vec![usize::MAX; n];
    let mut root_ids = vec![usize::MAX; n];
    let mut next = 0usize;
    for (i, slot) in agg.iter_mut().enumerate() {
        let r = uf.root(i);
        if root_ids[r] == usize::MAX {
            root_ids[r] = next;
            next += 1;
        }
        *slot = root_ids[r];
    }
    (agg, next)
}

/// Galerkin triple product `Aᶜ = Pᵀ A P` for the piecewise-constant `P`
/// induced by `agg`: every fine entry `a_ij` lands on coarse coordinate
/// `(agg[i], agg[j])`, and the CSR constructor sums duplicates in a fixed
/// order.
/// shape: (coarse_n, coarse_n)
/// complexity: O(nnz)
fn galerkin(a: &CsrMatrix, agg: &[usize], coarse_n: usize) -> Result<CsrMatrix> {
    let mut triplets = Vec::with_capacity(a.nnz());
    for i in 0..a.rows() {
        for (j, v) in a.row_iter(i) {
            triplets.push((agg[i], agg[j], v));
        }
    }
    CsrMatrix::from_triplets(coarse_n, coarse_n, &triplets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::vector::dot_slices;

    /// 2D grid-graph Laplacian plus a diagonal anchor: the canonical
    /// "hard criterion on a mesh" system, SPD with bandwidth ~side.
    fn grid_laplacian(side: usize) -> CsrMatrix {
        let n = side * side;
        let mut triplets = Vec::new();
        for r in 0..side {
            for c in 0..side {
                let i = r * side + c;
                let mut degree = 0.0;
                let push = |j: usize, t: &mut Vec<(usize, usize, f64)>| {
                    t.push((i, j, -1.0));
                };
                if r > 0 {
                    push(i - side, &mut triplets);
                    degree += 1.0;
                }
                if r + 1 < side {
                    push(i + side, &mut triplets);
                    degree += 1.0;
                }
                if c > 0 {
                    push(i - 1, &mut triplets);
                    degree += 1.0;
                }
                if c + 1 < side {
                    push(i + 1, &mut triplets);
                    degree += 1.0;
                }
                triplets.push((i, i, degree + 0.05));
            }
        }
        CsrMatrix::from_triplets(n, n, &triplets).unwrap()
    }

    fn rhs(n: usize) -> Vector {
        Vector::from_fn(n, |i| ((i as f64) * 0.37).sin() + 0.4)
    }

    #[test]
    fn coarsening_halves_connected_graphs() {
        let a = grid_laplacian(12);
        let (agg, coarse_n) = heavy_edge_aggregates(&a);
        assert_eq!(agg.len(), 144);
        // Heavy-edge matching on a grid pairs almost every vertex.
        assert!(coarse_n <= 90, "stalled coarsening: {coarse_n} aggregates");
        assert!(coarse_n >= 72); // pairs only: cannot shrink below n/2
        assert!(agg.iter().all(|&g| g < coarse_n));
        // Aggregate ids appear in first-seen order.
        let mut seen = 0usize;
        for &g in &agg {
            assert!(g <= seen, "ids must be assigned in row order");
            if g == seen {
                seen += 1;
            }
        }
    }

    #[test]
    fn galerkin_preserves_symmetry_and_row_sums() {
        let a = grid_laplacian(8);
        let (agg, coarse_n) = heavy_edge_aggregates(&a);
        let coarse = galerkin(&a, &agg, coarse_n).unwrap();
        assert_eq!(coarse.rows(), coarse_n);
        assert!(coarse.is_symmetric(1e-12));
        // P 1 = 1, so 1ᵀ Aᶜ 1 = 1ᵀ A 1 (total mass is conserved).
        let fine_mass: f64 = a.matvec(&vec![1.0; a.rows()]).iter().sum();
        let coarse_mass: f64 = coarse.matvec(&vec![1.0; coarse_n]).iter().sum();
        assert!((fine_mass - coarse_mass).abs() < 1e-9);
    }

    #[test]
    fn amg_solves_grid_laplacian_to_cg_accuracy() {
        let a = grid_laplacian(14); // n = 196, several levels
        let n = a.rows();
        let b = rhs(n);
        let amg = AmgCg::factor_sparse(&a, AmgOptions::default()).unwrap();
        assert!(amg.levels() >= 2, "hierarchy never coarsened");
        assert!(amg.coarse_dim() <= 64);
        let x = amg.solve(&b).unwrap();
        let exact = crate::lu::solve(&a.to_dense(), &b).unwrap();
        assert!(x.approx_eq(&exact, 1e-7));
        assert!(amg.residual(&x, &b).unwrap() < 1e-7);
        let report = amg.report();
        assert_eq!(report.backend, BackendKind::Amg);
        assert_eq!(report.dim, n);
        assert!(report.iterations.is_some());
        assert!(report.final_residual.unwrap() >= 0.0);
    }

    #[test]
    fn amg_beats_unpreconditioned_iteration_counts() {
        let a = grid_laplacian(20); // n = 400
        let b = rhs(a.rows());
        let amg = AmgCg::factor_sparse(&a, AmgOptions::default()).unwrap();
        amg.solve(&b).unwrap();
        let amg_iters = amg.last_iterations().unwrap();
        let plain = crate::cg::conjugate_gradient(&a, &b, &CgOptions::default()).unwrap();
        assert!(
            amg_iters < plain.iterations,
            "AMG took {amg_iters} iterations vs plain CG's {}",
            plain.iterations
        );
    }

    #[test]
    fn tiny_systems_skip_coarsening_entirely() {
        let a = grid_laplacian(4); // n = 16 <= coarsest_dim
        let b = rhs(16);
        let amg = AmgCg::factor_sparse(&a, AmgOptions::default()).unwrap();
        assert_eq!(amg.levels(), 1);
        assert_eq!(amg.coarse_dim(), 16);
        let x = amg.solve(&b).unwrap();
        // The V-cycle is an exact solve here, so PCG converges immediately.
        assert!(amg.last_iterations().unwrap() <= 2);
        let exact = crate::lu::solve(&a.to_dense(), &b).unwrap();
        assert!(x.approx_eq(&exact, 1e-8));
    }

    #[test]
    fn parallel_solves_are_bit_identical() {
        let a = grid_laplacian(13);
        let b = rhs(a.rows());
        let sequential = AmgCg::factor_sparse(&a, AmgOptions::default())
            .unwrap()
            .solve(&b)
            .unwrap();
        for workers in [2, 4, 8] {
            let parallel = AmgCg::factor_sparse(&a, AmgOptions::default())
                .unwrap()
                .with_executor(Executor::with_workers(workers));
            assert_eq!(
                parallel.solve(&b).unwrap().as_slice(),
                sequential.as_slice(),
                "workers={workers} diverged"
            );
        }
    }

    #[test]
    fn validates_inputs_and_options() {
        assert!(matches!(
            AmgCg::factor_sparse(&CsrMatrix::zeros(2, 3), AmgOptions::default()),
            Err(Error::NotSquare { .. })
        ));
        let a = grid_laplacian(4);
        for bad in [
            AmgOptions {
                damping: 0.0,
                ..AmgOptions::default()
            },
            AmgOptions {
                damping: 1.5,
                ..AmgOptions::default()
            },
            AmgOptions {
                smoothing_sweeps: 0,
                ..AmgOptions::default()
            },
            AmgOptions {
                coarsest_dim: 0,
                ..AmgOptions::default()
            },
            AmgOptions {
                min_coarsening_ratio: 0.0,
                ..AmgOptions::default()
            },
        ] {
            assert!(matches!(
                AmgCg::factor_sparse(&a, bad),
                Err(Error::InvalidArgument { .. })
            ));
        }
        // Non-positive diagonal is rejected at the smoother boundary.
        let indef = CsrMatrix::from_triplets(
            80,
            80,
            &(0..80)
                .map(|i| (i, i, if i == 40 { -1.0 } else { 1.0 }))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        assert!(matches!(
            AmgCg::factor_sparse(&indef, AmgOptions::default()),
            Err(Error::NotPositiveDefinite { pivot: 40 })
        ));
    }

    #[test]
    fn stalled_coarsening_falls_back_to_direct_solve() {
        // A diagonal matrix has no edges: matching stalls immediately and
        // the whole system goes to the dense coarse solve.
        let n = 80;
        let a = CsrMatrix::from_triplets(
            n,
            n,
            &(0..n).map(|i| (i, i, 2.0 + i as f64)).collect::<Vec<_>>(),
        )
        .unwrap();
        let amg = AmgCg::factor_sparse(&a, AmgOptions::default()).unwrap();
        assert_eq!(amg.levels(), 1);
        assert_eq!(amg.coarse_dim(), n);
        let b = rhs(n);
        let x = amg.solve(&b).unwrap();
        for (i, xi) in x.as_slice().iter().enumerate() {
            assert!((xi - b[i] / (2.0 + i as f64)).abs() < 1e-12);
        }
    }

    #[test]
    fn dot_slices_is_linked() {
        // Keep the shared-dot import alive for the sharded operator's
        // future dense path; also sanity-check the helper itself.
        assert!((dot_slices(&[1.0, 2.0], &[3.0, 4.0]) - 11.0).abs() < 1e-15);
    }

    #[test]
    fn apply_matches_matrix_product_and_checks_dims() {
        let a = grid_laplacian(6);
        let amg = AmgCg::factor_sparse(&a, AmgOptions::default()).unwrap();
        let x = rhs(36);
        let ax = Factorization::apply(&amg, &x).unwrap();
        let expect = a.matvec(x.as_slice());
        for (got, want) in ax.as_slice().iter().zip(&expect) {
            assert!((got - want).abs() < 1e-14);
        }
        assert!(Factorization::apply(&amg, &rhs(35)).is_err());
        let cloned = amg.clone();
        assert_eq!(cloned.levels(), amg.levels());
    }

    #[test]
    fn solve_matrix_shares_the_hierarchy() {
        let a = grid_laplacian(7);
        let n = a.rows();
        let amg = AmgCg::factor_sparse(&a, AmgOptions::default()).unwrap();
        let rhs_cols = Matrix::from_fn(n, 3, |i, j| ((i * 3 + j) as f64 * 0.11).cos());
        let x = amg.solve_matrix(&rhs_cols).unwrap();
        let dense = a.to_dense();
        let exact = crate::lu::solve_matrix(&dense, &rhs_cols).unwrap();
        for i in 0..n {
            for j in 0..3 {
                assert!((x.get(i, j) - exact.get(i, j)).abs() < 1e-7);
            }
        }
    }
}
