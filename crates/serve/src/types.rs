//! Value types exchanged across the serving boundary: query points in,
//! predictions out. Shared by the monolithic [`crate::ServingEngine`],
//! the shard-decomposed [`crate::ShardedEngine`] and the admission
//! controlled [`crate::BatchQueue`].

/// An out-of-sample point to be scored by a fitted engine.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPoint {
    pub(crate) coords: Vec<f64>,
}

impl QueryPoint {
    /// Wraps a coordinate vector (must match the fitted dimension).
    pub fn new(coords: Vec<f64>) -> Self {
        QueryPoint { coords }
    }

    /// The query's coordinates.
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }
}

impl From<Vec<f64>> for QueryPoint {
    fn from(coords: Vec<f64>) -> Self {
        QueryPoint::new(coords)
    }
}

impl From<&[f64]> for QueryPoint {
    fn from(coords: &[f64]) -> Self {
        QueryPoint::new(coords.to_vec())
    }
}

/// The engine's answer for one query point.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// Extended score per class column: one entry for a binary engine
    /// (the raw Eq. 6 value), `class_count` entries for a multiclass one.
    pub per_class: Vec<f64>,
    /// Predicted class. Binary engines use the `{0, 1}` label convention
    /// and threshold the score at `1/2`; multiclass engines take the
    /// arg-max over the one-vs-rest columns.
    pub class: usize,
    /// The winning score: the raw extension value for binary engines, the
    /// arg-max column's value for multiclass ones.
    pub score: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_point_conversions() {
        let q: QueryPoint = vec![1.0, 2.0].into();
        assert_eq!(q.coords(), &[1.0, 2.0]);
        let q: QueryPoint = (&[3.0][..]).into();
        assert_eq!(q.coords(), &[3.0]);
    }
}
