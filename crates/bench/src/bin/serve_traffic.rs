//! Open-loop serving-traffic benchmark for the shard-decomposed engine:
//! drives a Poisson arrival stream through the admission-controlled
//! [`BatchQueue`] into a [`ShardedEngine`], replaying the classic
//! open-loop discipline (arrivals never wait for completions, so queueing
//! delay is charged honestly) in virtual time with **measured** batch
//! service times, and records p50/p99/p999 latency, batch occupancy and
//! the snapshot cold-start-vs-refit comparison into `BENCH_serve.json`.
//!
//! ```text
//! cargo run --release -p gssl-bench --bin serve_traffic [-- --ci] [-- --quiet]
//! ```
//!
//! `--ci` shrinks the graph and the arrival horizon so the run finishes
//! in CI milliseconds and writes `BENCH_serve_ci.json` instead, leaving
//! the committed traffic record untouched.
//!
//! Timing is reported as measured and never gates the exit code. What
//! gates is what survives any host:
//!
//! * **agreement** — the sharded engine's predictions are bitwise
//!   identical to the monolithic [`ServingEngine`]'s on a probe set;
//! * **conservation** — every admitted query is served exactly once and
//!   `admitted + rejected == offered`;
//! * **snapshot** — restore reproduces the fitted scores bit for bit.

use gssl_graph::Kernel;
use gssl_linalg::Matrix;
use gssl_serve::{
    Admission, BatchPolicy, BatchQueue, CoalescedBatch, EngineConfig, QueryPoint, ServingEngine,
    ShardedEngine,
};
use gssl_stats::describe::quantile;
use rand::dist::PoissonProcess;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;
use std::time::Instant;

/// Nodes per cluster in the fitted graph (three disconnected clusters).
const FULL_PER_CLUSTER: usize = 200;
/// CI cluster size: same code path, milliseconds not seconds.
const CI_PER_CLUSTER: usize = 30;
/// Open-loop arrival horizon in virtual seconds.
const FULL_HORIZON: f64 = 2.0;
/// CI horizon.
const CI_HORIZON: f64 = 0.25;
/// Poisson arrival intensity (queries per virtual second).
const ARRIVAL_RATE: f64 = 1_000.0;
/// Coalescing policy: release at this many queries…
const MAX_BATCH: usize = 8;
/// …or when the oldest pending query has waited this long (virtual s).
const MAX_DELAY: f64 = 0.004;
/// Admission bound on the pending queue.
const CAPACITY: usize = 64;
/// Arrival-stream seed; fixed so the replay is reproducible.
const SEED: u64 = 0x5e12_7e5e_12c0_ffee;

/// Three well-separated 2-D clusters with interleaved global indices
/// (node `i` in cluster `i % 3`), labeled-first with one seed label per
/// cluster — the compact kernel below disconnects them into three graph
/// components, so the sharded engine gets a genuine decomposition.
fn clustered_points(total: usize) -> Matrix {
    let centers = [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)];
    Matrix::from_fn(total, 2, |i, j| {
        let (cx, cy) = centers[i % 3];
        let jitter = (((i * 37 + j * 131 + 11) as f64) * 0.618_033_988_749_894_9).fract();
        if j == 0 {
            cx + jitter
        } else {
            cy + jitter
        }
    })
}

/// Deterministic in-cluster query for arrival number `k`.
fn query_for(k: usize) -> QueryPoint {
    let centers = [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)];
    let (cx, cy) = centers[k % 3];
    let jx = (((k * 53 + 5) as f64) * 0.618_033_988_749_894_9).fract();
    let jy = (((k * 53 + 29) as f64) * 0.618_033_988_749_894_9).fract();
    QueryPoint::new(vec![cx + jx, cy + jy])
}

fn config() -> EngineConfig {
    EngineConfig::new(Kernel::Epanechnikov, 2.0).workers(2)
}

/// One served batch: occupancy, measured service seconds and the
/// per-query sojourn times (completion − arrival, virtual seconds).
struct ServedBatch {
    occupancy: usize,
    service_seconds: f64,
    sojourns: Vec<f64>,
}

/// Serves a released batch on the single virtual server: service starts
/// when both the batch is released and the server is free; the service
/// *duration* is the measured wall clock of the real `predict_batch`.
fn serve_batch(
    engine: &ShardedEngine,
    batch: &CoalescedBatch,
    server_free: &mut f64,
) -> ServedBatch {
    let start = batch.released_at.max(*server_free);
    let clock = Instant::now();
    let predictions = engine
        .predict_batch(&batch.queries)
        .expect("in-cluster queries are servable");
    let service_seconds = clock.elapsed().as_secs_f64();
    assert_eq!(predictions.len(), batch.queries.len());
    let done = start + service_seconds;
    *server_free = done;
    ServedBatch {
        occupancy: batch.queries.len(),
        service_seconds,
        sojourns: batch.arrivals.iter().map(|&t| done - t).collect(),
    }
}

fn json_f(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.9}")
    } else {
        "null".to_owned()
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let quiet = args.iter().any(|a| a == "--quiet");
    let ci = args.iter().any(|a| a == "--ci");
    let (per_cluster, horizon, out_path) = if ci {
        (CI_PER_CLUSTER, CI_HORIZON, "BENCH_serve_ci.json")
    } else {
        (FULL_PER_CLUSTER, FULL_HORIZON, "BENCH_serve.json")
    };
    let total = 3 * per_cluster;
    let labels = [0.0, 1.0, 1.0];

    if !quiet {
        println!(
            "== serve traffic: {total} nodes / 3 components, Poisson({ARRIVAL_RATE}/s) over {horizon}s ({} mode) ==",
            if ci { "ci" } else { "full" }
        );
    }

    // Fit: monolithic reference (for the agreement gate) and the sharded
    // production engine, timing the sharded fit as the refit baseline the
    // snapshot cold start competes against.
    let points = clustered_points(total);
    let monolithic = ServingEngine::fit(&points, &labels, config()).expect("monolithic fit");
    let clock = Instant::now();
    let engine = ShardedEngine::fit(&points, &labels, config()).expect("sharded fit");
    let fit_seconds = clock.elapsed().as_secs_f64();
    assert_eq!(
        engine.n_shards(),
        3,
        "clusters must decompose into 3 shards"
    );

    // Agreement gate: bitwise identity on a probe set, checked before any
    // traffic so a divergence fails fast.
    let probes: Vec<QueryPoint> = (0..60).map(query_for).collect();
    let mono_out = monolithic.predict_batch(&probes).expect("probe predict");
    let shard_out = engine.predict_batch(&probes).expect("probe predict");
    let agreement = mono_out.len() == shard_out.len()
        && mono_out.iter().zip(&shard_out).all(|(m, s)| {
            m.class == s.class
                && m.per_class.len() == s.per_class.len()
                && m.per_class
                    .iter()
                    .zip(&s.per_class)
                    .all(|(a, b)| a.to_bits() == b.to_bits())
        });

    // Open-loop replay: seeded Poisson arrivals in virtual time; the
    // queue coalesces up to MAX_BATCH / MAX_DELAY; a single virtual
    // server drains released batches with measured service durations.
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut process = PoissonProcess::new(ARRIVAL_RATE);
    let arrivals = process.arrivals_until(&mut rng, horizon);
    let offered = arrivals.len();

    let policy = BatchPolicy::new(MAX_BATCH, MAX_DELAY, CAPACITY);
    let mut queue = BatchQueue::new(policy).expect("policy is valid");
    let mut served: Vec<ServedBatch> = Vec::new();
    let mut server_free = 0.0_f64;
    for (k, &t) in arrivals.iter().enumerate() {
        // Deadline-triggered releases strictly before this arrival.
        while let Some(deadline) = queue.next_deadline() {
            if deadline >= t {
                break;
            }
            match queue.pop_ready(deadline) {
                Some(batch) => served.push(serve_batch(&engine, &batch, &mut server_free)),
                None => break,
            }
        }
        let _admission: Admission = queue.offer(query_for(k), t);
        // Size-triggered releases at the arrival instant.
        while let Some(batch) = queue.pop_ready(t) {
            served.push(serve_batch(&engine, &batch, &mut server_free));
        }
    }
    while let Some(batch) = queue.flush(horizon) {
        served.push(serve_batch(&engine, &batch, &mut server_free));
    }

    let admitted = queue.admitted();
    let rejected = queue.rejected();
    let served_queries: usize = served.iter().map(|b| b.occupancy).sum();
    let conservation = served_queries as u64 == admitted && admitted + rejected == offered as u64;

    let sojourns: Vec<f64> = served
        .iter()
        .flat_map(|b| b.sojourns.iter().copied())
        .collect();
    let p50 = quantile(&sojourns, 0.50).expect("traffic is non-empty");
    let p99 = quantile(&sojourns, 0.99).expect("traffic is non-empty");
    let p999 = quantile(&sojourns, 0.999).expect("traffic is non-empty");
    let occupancies: Vec<f64> = served.iter().map(|b| b.occupancy as f64).collect();
    let mean_occupancy = occupancies.iter().sum::<f64>() / occupancies.len() as f64;
    let max_occupancy = occupancies.iter().fold(0.0_f64, |a, &b| a.max(b));
    let service_seconds: Vec<f64> = served.iter().map(|b| b.service_seconds).collect();
    let mean_service = service_seconds.iter().sum::<f64>() / service_seconds.len() as f64;

    // Cold start: serialize the fitted engine, then restore it — no
    // factorization runs on the restore path — and compare against the
    // measured refit. The bitwise gate rides along.
    let clock = Instant::now();
    let snapshot = engine.snapshot().expect("direct-solver snapshot");
    let snapshot_seconds = clock.elapsed().as_secs_f64();
    let clock = Instant::now();
    let restored = ShardedEngine::restore(&snapshot).expect("restore own snapshot");
    let restore_seconds = clock.elapsed().as_secs_f64();
    let snapshot_bitwise = engine
        .scores()
        .as_slice()
        .iter()
        .zip(restored.scores().as_slice())
        .all(|(a, b)| a.to_bits() == b.to_bits());

    let host_parallelism = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let json = format!(
        "{{\n\"mode\": \"{mode}\",\n\"host_parallelism\": {host_parallelism},\n\
         \"nodes\": {total},\n\"shards\": {shards},\n\
         \"arrival_rate_per_s\": {ARRIVAL_RATE},\n\"horizon_s\": {horizon},\n\
         \"policy\": {{\"max_batch\": {MAX_BATCH}, \"max_delay_s\": {MAX_DELAY}, \"capacity\": {CAPACITY}}},\n\
         \"offered\": {offered},\n\"admitted\": {admitted},\n\"rejected\": {rejected},\n\
         \"batches\": {batches},\n\
         \"occupancy\": {{\"mean\": {mean_occ}, \"max\": {max_occ}}},\n\
         \"latency_s\": {{\"p50\": {p50j}, \"p99\": {p99j}, \"p999\": {p999j}}},\n\
         \"mean_batch_service_s\": {mean_svc},\n\
         \"cold_start\": {{\"refit_s\": {fit}, \"snapshot_s\": {snapj}, \"restore_s\": {restj}, \"snapshot_bytes\": {bytes}}},\n\
         \"gates\": {{\"agreement\": {agreement}, \"conservation\": {conservation}, \"snapshot_bitwise\": {snapshot_bitwise}}}\n}}\n",
        mode = if ci { "ci" } else { "full" },
        shards = engine.n_shards(),
        batches = served.len(),
        mean_occ = json_f(mean_occupancy),
        max_occ = json_f(max_occupancy),
        p50j = json_f(p50),
        p99j = json_f(p99),
        p999j = json_f(p999),
        mean_svc = json_f(mean_service),
        fit = json_f(fit_seconds),
        snapj = json_f(snapshot_seconds),
        restj = json_f(restore_seconds),
        bytes = snapshot.len(),
    );
    std::fs::write(out_path, &json).expect("write serve traffic report");

    if !quiet {
        println!(
            "offered {offered} | admitted {admitted} | rejected {rejected} | {} batches (mean occupancy {mean_occupancy:.2})",
            served.len()
        );
        println!(
            "latency p50 {:.1}µs p99 {:.1}µs p999 {:.1}µs | cold start: refit {:.4}s vs snapshot+restore {:.4}s ({} bytes)",
            p50 * 1e6,
            p99 * 1e6,
            p999 * 1e6,
            fit_seconds,
            snapshot_seconds + restore_seconds,
            snapshot.len()
        );
        println!(
            "gates: agreement {} | conservation {} | snapshot bitwise {}; wrote {out_path}",
            if agreement { "passed" } else { "FAILED" },
            if conservation { "passed" } else { "FAILED" },
            if snapshot_bitwise { "passed" } else { "FAILED" },
        );
    }
    if agreement && conservation && snapshot_bitwise {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
