//! A small owned dense vector of `f64` with the operations the solvers need.

use crate::error::{Error, Result};
use std::fmt;
use std::iter::FromIterator;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// An owned, dense, heap-allocated vector of `f64`.
///
/// `Vector` is a thin newtype over `Vec<f64>` that adds the numerical
/// operations used throughout the workspace (dot products, norms, `axpy`)
/// while still dereferencing cheaply to a slice via [`Vector::as_slice`].
///
/// ```
/// use gssl_linalg::Vector;
/// let v = Vector::from(vec![3.0, 4.0]);
/// assert_eq!(v.norm_l2(), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Vector {
    data: Vec<f64>,
}

impl Vector {
    /// Creates an empty vector.
    /// shape: (0,)
    pub fn new() -> Self {
        Vector { data: Vec::new() }
    }

    /// Creates a vector of `len` zeros.
    ///
    /// ```
    /// use gssl_linalg::Vector;
    /// assert_eq!(Vector::zeros(3).as_slice(), &[0.0, 0.0, 0.0]);
    /// ```
    /// shape: (len,)
    pub fn zeros(len: usize) -> Self {
        Vector {
            data: vec![0.0; len],
        }
    }

    /// Creates a vector of `len` ones.
    /// shape: (len,)
    pub fn ones(len: usize) -> Self {
        Vector {
            data: vec![1.0; len],
        }
    }

    /// Creates a vector filled with `value`.
    /// shape: (len,)
    pub fn filled(len: usize, value: f64) -> Self {
        Vector {
            data: vec![value; len],
        }
    }

    /// Creates a vector by evaluating `f` at each index.
    ///
    /// ```
    /// use gssl_linalg::Vector;
    /// let v = Vector::from_fn(3, |i| i as f64 * 2.0);
    /// assert_eq!(v.as_slice(), &[0.0, 2.0, 4.0]);
    /// ```
    /// shape: (len,)
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> f64) -> Self {
        Vector {
            data: (0..len).map(&mut f).collect(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the elements as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Borrows the elements as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the vector, returning the underlying storage.
    pub fn into_inner(self) -> Vec<f64> {
        self.data
    }

    /// Returns the element at `i`, or `None` when out of bounds.
    pub fn get(&self, i: usize) -> Option<f64> {
        self.data.get(i).copied()
    }

    /// Iterates over the elements by value.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.data.iter().copied()
    }

    /// Dot product with another vector.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when the lengths differ.
    ///
    /// ```
    /// use gssl_linalg::Vector;
    /// # fn main() -> Result<(), gssl_linalg::Error> {
    /// let a = Vector::from(vec![1.0, 2.0, 3.0]);
    /// let b = Vector::from(vec![4.0, 5.0, 6.0]);
    /// assert_eq!(a.dot(&b)?, 32.0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn dot(&self, other: &Vector) -> Result<f64> {
        if self.len() != other.len() {
            return Err(Error::DimensionMismatch {
                operation: "dot",
                left: (self.len(), 1),
                right: (other.len(), 1),
            });
        }
        Ok(dot_slices(&self.data, &other.data))
    }

    /// Euclidean (ℓ2) norm.
    pub fn norm_l2(&self) -> f64 {
        dot_slices(&self.data, &self.data).sqrt()
    }

    /// ℓ1 norm (sum of absolute values).
    pub fn norm_l1(&self) -> f64 {
        self.data.iter().map(|x| x.abs()).sum()
    }

    /// ℓ∞ norm (maximum absolute value); 0 for the empty vector.
    pub fn norm_max(&self) -> f64 {
        self.data.iter().fold(0.0, |acc, x| acc.max(x.abs()))
    }

    /// Sum of the elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of the elements.
    ///
    /// # Panics
    ///
    /// Panics when the vector is empty.
    pub fn mean(&self) -> f64 {
        assert!(!self.is_empty(), "mean of an empty vector");
        self.sum() / self.len() as f64
    }

    /// Smallest element under the `total_cmp` order (canonical for every
    /// input, identical to `f64::min` for finite data); `None` for the
    /// empty vector.
    pub fn min(&self) -> Option<f64> {
        self.data
            .iter()
            .copied()
            .reduce(|a, b| if b.total_cmp(&a).is_lt() { b } else { a })
    }

    /// Largest element under the `total_cmp` order (canonical for every
    /// input, identical to `f64::max` for finite data); `None` for the
    /// empty vector.
    pub fn max(&self) -> Option<f64> {
        self.data
            .iter()
            .copied()
            .reduce(|a, b| if b.total_cmp(&a).is_gt() { b } else { a })
    }

    /// In-place `self += alpha * other` (BLAS `axpy`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when the lengths differ.
    pub fn axpy(&mut self, alpha: f64, other: &Vector) -> Result<()> {
        if self.len() != other.len() {
            return Err(Error::DimensionMismatch {
                operation: "axpy",
                left: (self.len(), 1),
                right: (other.len(), 1),
            });
        }
        for (x, y) in self.data.iter_mut().zip(&other.data) {
            *x += alpha * y;
        }
        Ok(())
    }

    /// Multiplies every element by `alpha` in place.
    pub fn scale(&mut self, alpha: f64) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    /// Returns a new vector with `f` applied to every element.
    /// shape: (self.len,)
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Vector {
        Vector {
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Returns `true` when every pairwise difference is at most `tol` in
    /// absolute value. Vectors of different lengths are never close.
    pub fn approx_eq(&self, other: &Vector, tol: f64) -> bool {
        self.len() == other.len()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }
}

/// Dot product of two equal-length slices (callers check lengths).
/// hot
/// complexity: O(n)
pub(crate) fn dot_slices(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

impl From<Vec<f64>> for Vector {
    fn from(data: Vec<f64>) -> Self {
        Vector { data }
    }
}

impl From<&[f64]> for Vector {
    fn from(data: &[f64]) -> Self {
        Vector {
            data: data.to_vec(),
        }
    }
}

impl FromIterator<f64> for Vector {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Vector {
            data: iter.into_iter().collect(),
        }
    }
}

impl Extend<f64> for Vector {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        self.data.extend(iter);
    }
}

impl Index<usize> for Vector {
    type Output = f64;

    fn index(&self, i: usize) -> &f64 {
        &self.data[i]
    }
}

impl IndexMut<usize> for Vector {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.data[i]
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, x) in self.data.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x:.6}")?;
        }
        write!(f, "]")
    }
}

macro_rules! elementwise_binop {
    ($trait:ident, $method:ident, $op:tt, $name:expr) => {
        impl $trait for &Vector {
            type Output = Vector;

            fn $method(self, rhs: &Vector) -> Vector {
                assert_eq!(
                    self.len(),
                    rhs.len(),
                    concat!("length mismatch in vector ", $name)
                );
                Vector {
                    data: self
                        .data
                        .iter()
                        .zip(&rhs.data)
                        .map(|(a, b)| a $op b)
                        .collect(),
                }
            }
        }

        impl $trait for Vector {
            type Output = Vector;

            fn $method(self, rhs: Vector) -> Vector {
                (&self).$method(&rhs)
            }
        }
    };
}

elementwise_binop!(Add, add, +, "addition");
elementwise_binop!(Sub, sub, -, "subtraction");

impl AddAssign<&Vector> for Vector {
    fn add_assign(&mut self, rhs: &Vector) {
        assert_eq!(self.len(), rhs.len(), "length mismatch in vector +=");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }
}

impl SubAssign<&Vector> for Vector {
    fn sub_assign(&mut self, rhs: &Vector) {
        assert_eq!(self.len(), rhs.len(), "length mismatch in vector -=");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a -= b;
        }
    }
}

impl Mul<f64> for &Vector {
    type Output = Vector;

    fn mul(self, alpha: f64) -> Vector {
        Vector {
            data: self.data.iter().map(|x| x * alpha).collect(),
        }
    }
}

impl Mul<f64> for Vector {
    type Output = Vector;

    fn mul(mut self, alpha: f64) -> Vector {
        self.scale(alpha);
        self
    }
}

impl Neg for Vector {
    type Output = Vector;

    fn neg(mut self) -> Vector {
        self.scale(-1.0);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_ones_filled() {
        assert_eq!(Vector::zeros(2).as_slice(), &[0.0, 0.0]);
        assert_eq!(Vector::ones(2).as_slice(), &[1.0, 1.0]);
        assert_eq!(Vector::filled(2, 7.5).as_slice(), &[7.5, 7.5]);
    }

    #[test]
    fn from_fn_indexes() {
        let v = Vector::from_fn(4, |i| (i * i) as f64);
        assert_eq!(v.as_slice(), &[0.0, 1.0, 4.0, 9.0]);
    }

    #[test]
    fn dot_matches_hand_computation() {
        let a = Vector::from(vec![1.0, -2.0, 3.0]);
        let b = Vector::from(vec![4.0, 0.5, -1.0]);
        assert_eq!(a.dot(&b).unwrap(), 4.0 - 1.0 - 3.0);
    }

    #[test]
    fn dot_rejects_mismatched_lengths() {
        let a = Vector::zeros(2);
        let b = Vector::zeros(3);
        assert!(matches!(
            a.dot(&b),
            Err(Error::DimensionMismatch {
                operation: "dot",
                ..
            })
        ));
    }

    #[test]
    fn norms() {
        let v = Vector::from(vec![-3.0, 4.0]);
        assert_eq!(v.norm_l2(), 5.0);
        assert_eq!(v.norm_l1(), 7.0);
        assert_eq!(v.norm_max(), 4.0);
        assert_eq!(Vector::new().norm_max(), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Vector::from(vec![1.0, 2.0]);
        let b = Vector::from(vec![10.0, 20.0]);
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.as_slice(), &[6.0, 12.0]);
    }

    #[test]
    fn axpy_rejects_mismatch() {
        let mut a = Vector::zeros(1);
        assert!(a.axpy(1.0, &Vector::zeros(2)).is_err());
    }

    #[test]
    fn mean_min_max() {
        let v = Vector::from(vec![1.0, 5.0, 3.0]);
        assert_eq!(v.mean(), 3.0);
        assert_eq!(v.min(), Some(1.0));
        assert_eq!(v.max(), Some(5.0));
        assert_eq!(Vector::new().min(), None);
    }

    #[test]
    #[should_panic(expected = "mean of an empty vector")]
    fn mean_of_empty_panics() {
        Vector::new().mean();
    }

    #[test]
    fn arithmetic_operators() {
        let a = Vector::from(vec![1.0, 2.0]);
        let b = Vector::from(vec![3.0, 5.0]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 7.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 3.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0]);
        assert_eq!((-a.clone()).as_slice(), &[-1.0, -2.0]);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c.as_slice(), &[4.0, 7.0]);
        c -= &b;
        assert!(c.approx_eq(&a, 1e-15));
    }

    #[test]
    fn map_and_collect() {
        let v: Vector = (0..3).map(|i| i as f64).collect();
        assert_eq!(v.map(|x| x + 1.0).as_slice(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn approx_eq_requires_same_len() {
        let a = Vector::zeros(2);
        let b = Vector::zeros(3);
        assert!(!a.approx_eq(&b, 1.0));
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Vector::new().to_string(), "[]");
        assert!(Vector::ones(1).to_string().contains("1.000000"));
    }
}
