//! Synthetic data generators, including the paper's exact Models 1 and 2.
//!
//! Section V.A of the paper draws inputs from a 5-dimensional multivariate
//! normal with mean `(0.5, …, 0.5)` and covariance `0.05·11ᵀ + 0.05·I`
//! (0.1 on the diagonal, 0.05 off-diagonal), truncated to `[0, 1]` by
//! replacing out-of-range coordinates with 0; binary responses follow a
//! logistic model with either a linear (Model 1) or interaction (Model 2)
//! logit.

use crate::dataset::Dataset;
use crate::error::{Error, Result};
use gssl_linalg::{Matrix, Vector};
use gssl_stats::dist::{bernoulli, sigmoid, Normal, TruncatedMvn};
use rand::Rng;

/// Input dimension of the paper's synthetic models.
pub const PAPER_DIM: usize = 5;

/// Which of the paper's two logit models to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaperModel {
    /// Model 1 (Eq. 11): linear logit
    /// `−1.35 + 2x₁ − x₂ + x₃ − x₄ + 2x₅`.
    Linear,
    /// Model 2: Model 1 plus the interactions `x₁x₃ + x₂x₄`.
    Interaction,
}

impl PaperModel {
    /// Evaluates the logit at an input point.
    ///
    /// # Panics
    ///
    /// Panics when `x` does not have [`PAPER_DIM`] coordinates.
    pub fn logit(self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), PAPER_DIM, "paper models use 5-dimensional inputs");
        let linear = -1.35 + 2.0 * x[0] - x[1] + x[2] - x[3] + 2.0 * x[4];
        match self {
            PaperModel::Linear => linear,
            PaperModel::Interaction => linear + x[0] * x[2] + x[1] * x[3],
        }
    }

    /// The true regression function `q(x) = P(Y = 1 | X = x)`.
    ///
    /// # Panics
    ///
    /// Panics when `x` does not have [`PAPER_DIM`] coordinates.
    pub fn probability(self, x: &[f64]) -> f64 {
        sigmoid(self.logit(x))
    }
}

/// The paper's input distribution: truncated `N(0.5·1, 0.05·11ᵀ + 0.05·I)`.
///
/// # Errors
///
/// Propagates construction errors (none occur for the fixed parameters;
/// the covariance is positive definite).
pub fn paper_input_distribution() -> Result<TruncatedMvn> {
    let mean = Vector::filled(PAPER_DIM, 0.5);
    let cov = Matrix::from_fn(PAPER_DIM, PAPER_DIM, |i, j| if i == j { 0.1 } else { 0.05 });
    Ok(TruncatedMvn::new(mean, &cov, 0.0, 1.0)?)
}

/// Generates `count` samples from one of the paper's synthetic models.
///
/// The returned [`Dataset`] carries both the binary responses and the true
/// probabilities `q(X_i)` that the paper's RMSE is measured against.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] when `count == 0`.
///
/// ```
/// use gssl_datasets::synthetic::{paper_dataset, PaperModel};
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let ds = paper_dataset(PaperModel::Linear, 50, &mut rng).unwrap();
/// assert_eq!(ds.len(), 50);
/// assert_eq!(ds.dim(), 5);
/// ```
pub fn paper_dataset(model: PaperModel, count: usize, rng: &mut impl Rng) -> Result<Dataset> {
    if count == 0 {
        return Err(Error::InvalidParameter {
            message: "count must be positive".to_owned(),
        });
    }
    let dist = paper_input_distribution()?;
    let inputs = dist.sample_matrix(rng, count);
    let mut targets = Vec::with_capacity(count);
    let mut truth = Vec::with_capacity(count);
    for i in 0..count {
        let q = model.probability(inputs.row(i));
        truth.push(q);
        targets.push(if bernoulli(rng, q)? { 1.0 } else { 0.0 });
    }
    Dataset::with_truth(inputs, targets, truth)
}

/// Two interleaving half-moons in 2-D — the classic manifold dataset that
/// motivates graph-based methods. Class 0 is the upper moon.
///
/// `noise` is the standard deviation of isotropic Gaussian jitter.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] when `count < 2` or `noise < 0`.
pub fn two_moons(count: usize, noise: f64, rng: &mut impl Rng) -> Result<Dataset> {
    if count < 2 {
        return Err(Error::InvalidParameter {
            message: format!("two_moons needs at least 2 samples, got {count}"),
        });
    }
    let jitter = Normal::new(0.0, noise)?;
    let upper = count / 2;
    let mut inputs = Matrix::zeros(count, 2);
    let mut targets = Vec::with_capacity(count);
    let mut truth = Vec::with_capacity(count);
    for i in 0..count {
        let is_upper = i < upper;
        let steps = if is_upper { upper } else { count - upper };
        let pos = if is_upper { i } else { i - upper };
        let t = std::f64::consts::PI * pos as f64 / (steps.max(2) - 1) as f64;
        let (x, y) = if is_upper {
            (t.cos(), t.sin())
        } else {
            (1.0 - t.cos(), 0.5 - t.sin())
        };
        inputs.set(i, 0, x + jitter.sample(rng));
        inputs.set(i, 1, y + jitter.sample(rng));
        targets.push(if is_upper { 0.0 } else { 1.0 });
        truth.push(if is_upper { 0.0 } else { 1.0 });
    }
    Dataset::with_truth(inputs, targets, truth)
}

/// Two concentric circles in 2-D; class 1 is the inner circle.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] when `count < 2`, `noise < 0`, or
/// the radii are not `0 < inner < outer`.
pub fn concentric_circles(
    count: usize,
    inner_radius: f64,
    outer_radius: f64,
    noise: f64,
    rng: &mut impl Rng,
) -> Result<Dataset> {
    if count < 2 {
        return Err(Error::InvalidParameter {
            message: format!("concentric_circles needs at least 2 samples, got {count}"),
        });
    }
    if !(0.0 < inner_radius && inner_radius < outer_radius) {
        return Err(Error::InvalidParameter {
            message: format!(
                "radii must satisfy 0 < inner < outer, got {inner_radius}, {outer_radius}"
            ),
        });
    }
    let jitter = Normal::new(0.0, noise)?;
    let inner_count = count / 2;
    let mut inputs = Matrix::zeros(count, 2);
    let mut targets = Vec::with_capacity(count);
    for i in 0..count {
        let is_inner = i < inner_count;
        let radius = if is_inner { inner_radius } else { outer_radius };
        let angle = rng.gen::<f64>() * std::f64::consts::TAU;
        inputs.set(i, 0, radius * angle.cos() + jitter.sample(rng));
        inputs.set(i, 1, radius * angle.sin() + jitter.sample(rng));
        targets.push(if is_inner { 1.0 } else { 0.0 });
    }
    let truth = targets.clone();
    Dataset::with_truth(inputs, targets, truth)
}

/// Isotropic Gaussian blobs with the given centers; the class of a sample
/// is the index of the center it was drawn around.
///
/// Targets are the class index as `f64` (0, 1, 2, …), suitable for the
/// one-vs-rest multiclass wrapper.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] on empty inputs, mismatched center
/// dimensions, or `std_dev < 0`.
pub fn gaussian_blobs(
    samples_per_blob: usize,
    centers: &[Vec<f64>],
    std_dev: f64,
    rng: &mut impl Rng,
) -> Result<Dataset> {
    if samples_per_blob == 0 || centers.is_empty() {
        return Err(Error::InvalidParameter {
            message: "need at least one center and one sample per blob".to_owned(),
        });
    }
    let dim = centers[0].len();
    if dim == 0 || centers.iter().any(|c| c.len() != dim) {
        return Err(Error::InvalidParameter {
            message: "all centers must share a positive dimension".to_owned(),
        });
    }
    let jitter = Normal::new(0.0, std_dev)?;
    let total = samples_per_blob * centers.len();
    let mut inputs = Matrix::zeros(total, dim);
    let mut targets = Vec::with_capacity(total);
    for (class, center) in centers.iter().enumerate() {
        for s in 0..samples_per_blob {
            let row = class * samples_per_blob + s;
            for (j, &c) in center.iter().enumerate() {
                inputs.set(row, j, c + jitter.sample(rng));
            }
            targets.push(class as f64);
        }
    }
    let truth = targets.clone();
    Dataset::with_truth(inputs, targets, truth)
}

/// A Swiss-roll-style 2-D manifold embedded in 3-D: points along a spiral
/// `(t cos t, height, t sin t)`, labeled by whether they sit on the inner
/// or outer half of the roll. Euclidean neighbours across adjacent sheets
/// belong to different classes, so kernel regression fails while graph
/// propagation along the manifold succeeds — the classic illustration of
/// the manifold assumption the paper's introduction invokes.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] when `count < 2` or `noise < 0`.
pub fn swiss_roll(count: usize, noise: f64, rng: &mut impl Rng) -> Result<Dataset> {
    if count < 2 {
        return Err(Error::InvalidParameter {
            message: format!("swiss_roll needs at least 2 samples, got {count}"),
        });
    }
    let jitter = Normal::new(0.0, noise)?;
    let mut inputs = Matrix::zeros(count, 3);
    let mut targets = Vec::with_capacity(count);
    let t_min = 1.5 * std::f64::consts::PI;
    let t_max = 4.5 * std::f64::consts::PI;
    for i in 0..count {
        let u: f64 = rng.gen();
        let t = t_min + u * (t_max - t_min);
        let height: f64 = rng.gen::<f64>() * 10.0;
        inputs.set(i, 0, t * t.cos() + jitter.sample(rng));
        inputs.set(i, 1, height + jitter.sample(rng));
        inputs.set(i, 2, t * t.sin() + jitter.sample(rng));
        targets.push(if u < 0.5 { 0.0 } else { 1.0 });
    }
    let truth = targets.clone();
    Ok(Dataset::with_truth(inputs, targets, truth)?)
}

/// A 1-D noisy regression problem `y = sin(2πx) + ε` on `[0, 1]` — used to
/// exercise the regression (continuous-response) path of the criteria.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] when `count == 0` or
/// `noise_std < 0`.
pub fn sinusoidal_regression(count: usize, noise_std: f64, rng: &mut impl Rng) -> Result<Dataset> {
    if count == 0 {
        return Err(Error::InvalidParameter {
            message: "count must be positive".to_owned(),
        });
    }
    let noise = Normal::new(0.0, noise_std)?;
    let mut inputs = Matrix::zeros(count, 1);
    let mut targets = Vec::with_capacity(count);
    let mut truth = Vec::with_capacity(count);
    for i in 0..count {
        let x: f64 = rng.gen();
        let q = (std::f64::consts::TAU * x).sin();
        inputs.set(i, 0, x);
        truth.push(q);
        targets.push(q + noise.sample(rng));
    }
    Dataset::with_truth(inputs, targets, truth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(2024)
    }

    #[test]
    fn model1_logit_matches_eq_11() {
        let x = [1.0, 0.5, 0.25, 0.75, 0.1];
        let expected = -1.35 + 2.0 * 1.0 - 0.5 + 0.25 - 0.75 + 2.0 * 0.1;
        assert!((PaperModel::Linear.logit(&x) - expected).abs() < 1e-15);
    }

    #[test]
    fn model2_adds_interactions() {
        let x = [0.2, 0.4, 0.6, 0.8, 1.0];
        let diff = PaperModel::Interaction.logit(&x) - PaperModel::Linear.logit(&x);
        assert!((diff - (0.2 * 0.6 + 0.4 * 0.8)).abs() < 1e-15);
    }

    #[test]
    fn probabilities_are_valid() {
        let x = [0.5; 5];
        for model in [PaperModel::Linear, PaperModel::Interaction] {
            let p = model.probability(&x);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn paper_dataset_shape_and_support() {
        let ds = paper_dataset(PaperModel::Linear, 200, &mut rng()).unwrap();
        assert_eq!(ds.len(), 200);
        assert_eq!(ds.dim(), PAPER_DIM);
        // All inputs on the compact support [0, 1]^5.
        for v in ds.inputs().as_slice() {
            assert!((0.0..=1.0).contains(v));
        }
        // Targets are binary; truth in (0, 1).
        for (&y, &q) in ds.targets().iter().zip(ds.true_probabilities().unwrap()) {
            assert!(y == 0.0 || y == 1.0);
            assert!((0.0..1.0).contains(&q) || q == 0.0 || q < 1.0);
        }
    }

    #[test]
    fn paper_dataset_label_frequency_tracks_truth() {
        let ds = paper_dataset(PaperModel::Linear, 5_000, &mut rng()).unwrap();
        let mean_label: f64 = ds.targets().iter().sum::<f64>() / ds.len() as f64;
        let mean_truth: f64 =
            ds.true_probabilities().unwrap().iter().sum::<f64>() / ds.len() as f64;
        assert!((mean_label - mean_truth).abs() < 0.03);
    }

    #[test]
    fn paper_dataset_validates_count() {
        assert!(paper_dataset(PaperModel::Linear, 0, &mut rng()).is_err());
    }

    #[test]
    fn two_moons_classes_are_separated_without_noise() {
        let ds = two_moons(100, 0.0, &mut rng()).unwrap();
        assert_eq!(ds.len(), 100);
        // Upper moon has y >= 0; lower moon has y <= 0.5.
        for i in 0..ds.len() {
            let y = ds.inputs().get(i, 1);
            if ds.targets()[i] == 0.0 {
                assert!(y >= -1e-12);
            } else {
                assert!(y <= 0.5 + 1e-12);
            }
        }
    }

    #[test]
    fn circles_have_expected_radii() {
        let ds = concentric_circles(200, 1.0, 3.0, 0.0, &mut rng()).unwrap();
        for i in 0..ds.len() {
            let r = (ds.inputs().get(i, 0).powi(2) + ds.inputs().get(i, 1).powi(2)).sqrt();
            if ds.targets()[i] == 1.0 {
                assert!((r - 1.0).abs() < 1e-9);
            } else {
                assert!((r - 3.0).abs() < 1e-9);
            }
        }
        assert!(concentric_circles(100, 3.0, 1.0, 0.0, &mut rng()).is_err());
    }

    #[test]
    fn blobs_cluster_around_centers() {
        let centers = vec![vec![0.0, 0.0], vec![10.0, 10.0]];
        let ds = gaussian_blobs(50, &centers, 0.5, &mut rng()).unwrap();
        assert_eq!(ds.len(), 100);
        for i in 0..ds.len() {
            let class = ds.targets()[i] as usize;
            let c = &centers[class];
            let d2: f64 = (0..2).map(|j| (ds.inputs().get(i, j) - c[j]).powi(2)).sum();
            assert!(d2.sqrt() < 5.0, "sample {i} strayed from its center");
        }
        assert!(gaussian_blobs(0, &centers, 0.5, &mut rng()).is_err());
        assert!(gaussian_blobs(5, &[], 0.5, &mut rng()).is_err());
        assert!(gaussian_blobs(5, &[vec![0.0], vec![0.0, 1.0]], 0.5, &mut rng()).is_err());
    }

    #[test]
    fn swiss_roll_lives_on_the_spiral() {
        let ds = swiss_roll(300, 0.0, &mut rng()).unwrap();
        assert_eq!(ds.dim(), 3);
        for i in 0..ds.len() {
            let x = ds.inputs().get(i, 0);
            let z = ds.inputs().get(i, 2);
            let radius = (x * x + z * z).sqrt();
            // Radius equals the spiral parameter t in [1.5π, 4.5π].
            let t_min = 1.5 * std::f64::consts::PI;
            let t_max = 4.5 * std::f64::consts::PI;
            assert!(radius >= t_min - 1e-9 && radius <= t_max + 1e-9);
            // Class is determined by the radius midpoint.
            let expected = if radius < (t_min + t_max) / 2.0 {
                0.0
            } else {
                1.0
            };
            assert_eq!(ds.targets()[i], expected, "sample {i} at radius {radius}");
        }
        assert!(swiss_roll(1, 0.0, &mut rng()).is_err());
        assert!(swiss_roll(10, -0.1, &mut rng()).is_err());
    }

    #[test]
    fn swiss_roll_has_both_classes() {
        let ds = swiss_roll(200, 0.05, &mut rng()).unwrap();
        let positives = ds.targets().iter().filter(|&&y| y > 0.5).count();
        assert!(positives > 50 && positives < 150);
    }

    #[test]
    fn sinusoid_truth_is_noise_free() {
        let ds = sinusoidal_regression(100, 0.3, &mut rng()).unwrap();
        for i in 0..ds.len() {
            let x = ds.inputs().get(i, 0);
            let q = ds.true_probabilities().unwrap()[i];
            assert!((q - (std::f64::consts::TAU * x).sin()).abs() < 1e-12);
        }
    }

    #[test]
    fn generators_are_deterministic_under_seed() {
        let a = paper_dataset(PaperModel::Interaction, 30, &mut StdRng::seed_from_u64(9)).unwrap();
        let b = paper_dataset(PaperModel::Interaction, 30, &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(a, b);
    }
}
