//! The unified factorization backend layer.
//!
//! Every solver in the workspace — the hard criterion's `D₂₂ − W₂₂`, the
//! soft criterion's `V + λL`, and the serving engine's cached systems —
//! reduces to "factor once, solve many". [`Factorization`] captures that
//! contract behind one object-safe trait, implemented by the dense direct
//! backends ([`Cholesky`], [`Lu`]) and by [`JacobiCg`], a Jacobi-
//! preconditioned conjugate-gradient backend that keeps sparse systems in
//! CSR form and never forms a factor at all. [`SolverPolicy`] picks among
//! them from size, symmetry, and nonzero density, so callers can stay
//! representation-agnostic.

use crate::cg::{preconditioned_conjugate_gradient, CgOptions};
use crate::cholesky::Cholesky;
use crate::error::{Error, Result};
use crate::lu::Lu;
use crate::matrix::Matrix;
use crate::ops::LinearOperator;
use crate::sparse::CsrMatrix;
use crate::strict;
use crate::vector::{dot_slices, Vector};
use gssl_runtime::Executor;

/// A factored (or factor-free iterative) linear system `A x = b`, ready to
/// solve against many right-hand sides.
///
/// The trait is object-safe: downstream layers can hold a
/// `Box<dyn Factorization>` when the backend is chosen at runtime, though
/// most callers use the concrete [`SolverBackend`] enum.
pub trait Factorization {
    /// Dimension of the factored system.
    fn dim(&self) -> usize;

    /// Solves `A x = b` for a single right-hand side.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when `b.len() != dim()`, and
    /// backend-specific errors (e.g. [`Error::NotConverged`] from the
    /// iterative backend).
    /// shape: (b.len,)
    fn solve(&self, b: &Vector) -> Result<Vector>;

    /// Solves `A X = B` column by column against the same factorization.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when `b.rows() != dim()`, plus
    /// any per-column error from [`Factorization::solve`].
    /// shape: (b.rows, b.cols)
    fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(Error::DimensionMismatch {
                operation: "factorization solve_matrix",
                left: (n, n),
                right: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let x = self.solve(&b.col(j))?;
            for i in 0..n {
                out.set(i, j, x[i]);
            }
        }
        Ok(out)
    }

    /// Applies the *original* operator: computes `A x` from the stored
    /// factors (direct backends reconstruct it as `L(Lᵀx)` / `Pᵀ(L(Ux))`;
    /// the iterative backend applies the stored system exactly).
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when `x.len() != dim()`.
    /// shape: (x.len,)
    fn apply(&self, x: &Vector) -> Result<Vector>;

    /// Residual report `‖A x − b‖∞` for a candidate solution, computed
    /// through [`Factorization::apply`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when lengths disagree with
    /// `dim()`.
    fn residual(&self, x: &Vector, b: &Vector) -> Result<f64> {
        let n = self.dim();
        if b.len() != n {
            return Err(Error::DimensionMismatch {
                operation: "factorization residual",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        let ax = self.apply(x)?;
        let mut worst = 0.0f64;
        for (ai, bi) in ax.as_slice().iter().zip(b.as_slice()) {
            worst = worst.max((ai - bi).abs());
        }
        Ok(worst)
    }

    /// Inverse of the factored matrix, formed column by column.
    ///
    /// Direct backends pay `n` extra solves; the iterative backend pays `n`
    /// full CG runs — prefer [`Factorization::solve`] whenever only
    /// `A⁻¹ b` is needed.
    ///
    /// # Errors
    ///
    /// Propagates errors from the underlying solves.
    /// shape: (n, n)
    fn inverse(&self) -> Result<Matrix> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }

    /// Which concrete backend is behind this factorization.
    fn kind(&self) -> BackendKind;

    /// Structured summary of the factorization for logs and diagnostics.
    fn report(&self) -> FactorReport {
        FactorReport {
            backend: self.kind(),
            dim: self.dim(),
        }
    }
}

/// The concrete backend a [`SolverPolicy`] selected (or a caller forced).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Dense Cholesky (`A = LLᵀ`); symmetric positive-definite systems.
    DenseCholesky,
    /// Dense LU with partial pivoting; general nonsingular systems.
    DenseLu,
    /// Jacobi-preconditioned conjugate gradient over a (usually sparse)
    /// operator; SPD systems too large or too sparse to factor densely.
    SparseCg,
}

impl BackendKind {
    /// Stable lowercase identifier (used by JSON diagnostics).
    pub fn as_str(self) -> &'static str {
        match self {
            BackendKind::DenseCholesky => "dense-cholesky",
            BackendKind::DenseLu => "dense-lu",
            BackendKind::SparseCg => "sparse-cg",
        }
    }

    /// Whether the backend solves iteratively (no stored factor).
    pub fn is_iterative(self) -> bool {
        matches!(self, BackendKind::SparseCg)
    }
}

/// Summary of a factorization, as returned by [`Factorization::report`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FactorReport {
    /// The backend that produced the factorization.
    pub backend: BackendKind,
    /// Dimension of the factored system.
    pub dim: usize,
}

impl Factorization for Cholesky {
    fn dim(&self) -> usize {
        Cholesky::dim(self)
    }

    /// shape: (b.len,)
    fn solve(&self, b: &Vector) -> Result<Vector> {
        Cholesky::solve(self, b)
    }

    /// shape: (b.rows, b.cols)
    fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        Cholesky::solve_matrix(self, b)
    }

    /// Computes `A x = L (Lᵀ x)` from the stored factor.
    /// shape: (x.len,)
    fn apply(&self, x: &Vector) -> Result<Vector> {
        let n = Cholesky::dim(self);
        if x.len() != n {
            return Err(Error::DimensionMismatch {
                operation: "cholesky apply",
                left: (n, n),
                right: (x.len(), 1),
            });
        }
        let l = self.lower();
        // y = Lᵀ x (upper-triangular product), then out = L y.
        let mut y = vec![0.0; n];
        for (i, yi) in y.iter_mut().enumerate() {
            let mut sum = 0.0;
            for (j, &xj) in x.as_slice().iter().enumerate().skip(i) {
                sum += l.get(j, i) * xj;
            }
            *yi = sum;
        }
        let mut out = vec![0.0; n];
        for (i, oi) in out.iter_mut().enumerate() {
            let mut sum = 0.0;
            for (j, yj) in y.iter().enumerate().take(i + 1) {
                sum += l.get(i, j) * yj;
            }
            *oi = sum;
        }
        Ok(Vector::from(out))
    }

    fn kind(&self) -> BackendKind {
        BackendKind::DenseCholesky
    }
}

impl Factorization for Lu {
    fn dim(&self) -> usize {
        Lu::dim(self)
    }

    /// shape: (b.len,)
    fn solve(&self, b: &Vector) -> Result<Vector> {
        Lu::solve(self, b)
    }

    /// shape: (b.rows, b.cols)
    fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        Lu::solve_matrix(self, b)
    }

    /// Computes `A x = Pᵀ (L (U x))` from the packed factors.
    /// shape: (x.len,)
    fn apply(&self, x: &Vector) -> Result<Vector> {
        let n = Lu::dim(self);
        if x.len() != n {
            return Err(Error::DimensionMismatch {
                operation: "lu apply",
                left: (n, n),
                right: (x.len(), 1),
            });
        }
        let f = self.factors();
        // y = U x (upper triangle, including the diagonal).
        let mut y = vec![0.0; n];
        for (i, yi) in y.iter_mut().enumerate() {
            let mut sum = 0.0;
            for (fij, xj) in f.row(i)[i..].iter().zip(&x.as_slice()[i..]) {
                sum += fij * xj;
            }
            *yi = sum;
        }
        // z = L y (unit lower triangle).
        let mut z = vec![0.0; n];
        for (i, zi) in z.iter_mut().enumerate() {
            let mut sum = y[i];
            for (j, yj) in y.iter().enumerate().take(i) {
                sum += f.get(i, j) * yj;
            }
            *zi = sum;
        }
        // Undo the row permutation: (P A) x = L U x, so (A x)[perm[i]] = z[i].
        let mut out = vec![0.0; n];
        for (&p, &zi) in self.perm().iter().zip(&z) {
            out[p] = zi;
        }
        Ok(Vector::from(out))
    }

    fn kind(&self) -> BackendKind {
        BackendKind::DenseLu
    }
}

/// The system held by the iterative backend: dense or CSR, applied as a
/// [`LinearOperator`] without ever factoring.
#[derive(Debug, Clone)]
pub enum CgSystem {
    /// Dense system matrix.
    Dense(Matrix),
    /// Sparse CSR system matrix.
    Sparse(CsrMatrix),
}

impl LinearOperator for CgSystem {
    fn dim(&self) -> usize {
        match self {
            CgSystem::Dense(a) => a.rows(),
            CgSystem::Sparse(a) => a.rows(),
        }
    }

    fn apply(&self, x: &[f64], out: &mut [f64]) {
        match self {
            CgSystem::Dense(a) => a.apply(x, out),
            CgSystem::Sparse(a) => a.apply(x, out),
        }
    }
}

/// A [`CgSystem`] whose matvec is sharded across an [`Executor`].
///
/// Each output element is one row's dot product, computed by exactly one
/// worker with the same operations as the sequential
/// `LinearOperator::apply` — so CG sees bit-identical iterates regardless
/// of worker count.
struct ShardedCgSystem<'a> {
    system: &'a CgSystem,
    executor: &'a Executor,
}

impl LinearOperator for ShardedCgSystem<'_> {
    fn dim(&self) -> usize {
        LinearOperator::dim(self.system)
    }

    fn apply(&self, x: &[f64], out: &mut [f64]) {
        let rows = out.len();
        let block = rows
            .div_ceil(self.executor.workers().saturating_mul(4))
            .max(1);
        let sharded = self
            .executor
            .for_each_chunk_mut(out, block, |start, chunk| {
                for (local, o) in chunk.iter_mut().enumerate() {
                    let i = start + local;
                    *o = match self.system {
                        CgSystem::Dense(a) => dot_slices(a.row(i), x),
                        CgSystem::Sparse(a) => {
                            let mut sum = 0.0;
                            for (j, v) in a.row_iter(i) {
                                sum += v * x[j];
                            }
                            sum
                        }
                    };
                }
            });
        if sharded.is_err() {
            // `LinearOperator::apply` is infallible and the chunk width is
            // always >= 1, so this arm is unreachable in practice; recompute
            // sequentially rather than panic if it ever fires.
            self.system.apply(x, out);
        }
    }
}

/// Jacobi-preconditioned conjugate-gradient backend.
///
/// "Factoring" just validates the system and extracts the inverse diagonal
/// (the Jacobi preconditioner); every [`JacobiCg::solve`] call then runs
/// [`preconditioned_conjugate_gradient`] against the stored operator. The
/// system must be symmetric positive definite — CG reports
/// [`Error::NotConverged`] otherwise.
#[derive(Debug, Clone)]
pub struct JacobiCg {
    system: CgSystem,
    inv_diag: Vec<f64>,
    options: CgOptions,
    executor: Executor,
}

impl JacobiCg {
    /// Builds the iterative backend around a dense system.
    ///
    /// # Errors
    ///
    /// * [`Error::NotSquare`] when `a` is not square.
    /// * [`Error::NotPositiveDefinite`] when a diagonal entry is `<= 0` or
    ///   non-finite (an SPD matrix has a strictly positive diagonal).
    pub fn factor_dense(a: &Matrix, options: CgOptions) -> Result<Self> {
        if !a.is_square() {
            return Err(Error::NotSquare { shape: a.shape() });
        }
        strict::check_finite_matrix("jacobi_cg.factor input", a)?;
        let inv_diag = inverse_diagonal((0..a.rows()).map(|i| a.get(i, i)))?;
        Ok(JacobiCg {
            system: CgSystem::Dense(a.clone()),
            inv_diag,
            options,
            executor: Executor::default(),
        })
    }

    /// Builds the iterative backend around a CSR system.
    ///
    /// # Errors
    ///
    /// * [`Error::NotSquare`] when `a` is not square.
    /// * [`Error::NotPositiveDefinite`] when a diagonal entry is `<= 0` or
    ///   non-finite.
    pub fn factor_sparse(a: &CsrMatrix, options: CgOptions) -> Result<Self> {
        if a.rows() != a.cols() {
            return Err(Error::NotSquare {
                shape: (a.rows(), a.cols()),
            });
        }
        let inv_diag = inverse_diagonal((0..a.rows()).map(|i| a.get(i, i)))?;
        Ok(JacobiCg {
            system: CgSystem::Sparse(a.clone()),
            inv_diag,
            options,
            executor: Executor::default(),
        })
    }

    /// Runs every solve's matvecs on `executor` (row-sharded, with output
    /// bit-identical to the sequential backend at any worker count).
    #[must_use]
    pub fn with_executor(mut self, executor: Executor) -> Self {
        self.executor = executor;
        self
    }

    /// Borrows the stored system operator.
    pub fn system(&self) -> &CgSystem {
        &self.system
    }

    /// The executor the matvecs of every solve run on.
    pub fn executor(&self) -> &Executor {
        &self.executor
    }

    /// The CG options every solve runs with.
    pub fn options(&self) -> &CgOptions {
        &self.options
    }
}

/// Inverts a diagonal for the Jacobi preconditioner, rejecting non-positive
/// pivots (an SPD matrix cannot have them).
fn inverse_diagonal(diag: impl Iterator<Item = f64>) -> Result<Vec<f64>> {
    let mut inv = Vec::with_capacity(diag.size_hint().0);
    for (i, d) in diag.enumerate() {
        if !(d > 0.0) || !d.is_finite() {
            return Err(Error::NotPositiveDefinite { pivot: i });
        }
        inv.push(1.0 / d);
    }
    Ok(inv)
}

impl Factorization for JacobiCg {
    fn dim(&self) -> usize {
        LinearOperator::dim(&self.system)
    }

    /// shape: (b.len,)
    fn solve(&self, b: &Vector) -> Result<Vector> {
        if self.executor.is_sequential() {
            let out =
                preconditioned_conjugate_gradient(&self.system, b, &self.inv_diag, &self.options)?;
            return Ok(out.solution);
        }
        let sharded = ShardedCgSystem {
            system: &self.system,
            executor: &self.executor,
        };
        let out = preconditioned_conjugate_gradient(&sharded, b, &self.inv_diag, &self.options)?;
        Ok(out.solution)
    }

    /// Applies the stored system exactly.
    /// shape: (x.len,)
    fn apply(&self, x: &Vector) -> Result<Vector> {
        let n = Factorization::dim(self);
        if x.len() != n {
            return Err(Error::DimensionMismatch {
                operation: "jacobi_cg apply",
                left: (n, n),
                right: (x.len(), 1),
            });
        }
        let mut out = vec![0.0; n];
        LinearOperator::apply(&self.system, x.as_slice(), &mut out);
        Ok(Vector::from(out))
    }

    fn kind(&self) -> BackendKind {
        BackendKind::SparseCg
    }
}

/// One factored system behind a single concrete type: what
/// [`SolverPolicy`] hands back, and what downstream layers cache.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum SolverBackend {
    /// Dense Cholesky factorization.
    Cholesky(Cholesky),
    /// Dense LU factorization.
    Lu(Lu),
    /// Jacobi-preconditioned CG (no stored factor).
    Cg(JacobiCg),
}

impl Factorization for SolverBackend {
    fn dim(&self) -> usize {
        match self {
            SolverBackend::Cholesky(f) => Factorization::dim(f),
            SolverBackend::Lu(f) => Factorization::dim(f),
            SolverBackend::Cg(f) => Factorization::dim(f),
        }
    }

    /// shape: (b.len,)
    fn solve(&self, b: &Vector) -> Result<Vector> {
        match self {
            SolverBackend::Cholesky(f) => Factorization::solve(f, b),
            SolverBackend::Lu(f) => Factorization::solve(f, b),
            SolverBackend::Cg(f) => Factorization::solve(f, b),
        }
    }

    /// shape: (b.rows, b.cols)
    fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        match self {
            SolverBackend::Cholesky(f) => Factorization::solve_matrix(f, b),
            SolverBackend::Lu(f) => Factorization::solve_matrix(f, b),
            SolverBackend::Cg(f) => Factorization::solve_matrix(f, b),
        }
    }

    /// shape: (x.len,)
    fn apply(&self, x: &Vector) -> Result<Vector> {
        match self {
            SolverBackend::Cholesky(f) => Factorization::apply(f, x),
            SolverBackend::Lu(f) => Factorization::apply(f, x),
            SolverBackend::Cg(f) => Factorization::apply(f, x),
        }
    }

    fn kind(&self) -> BackendKind {
        match self {
            SolverBackend::Cholesky(f) => Factorization::kind(f),
            SolverBackend::Lu(f) => Factorization::kind(f),
            SolverBackend::Cg(f) => Factorization::kind(f),
        }
    }
}

/// Auto-selection policy: dense Cholesky vs dense LU vs sparse CG, decided
/// from system size, symmetry, and nonzero density.
///
/// The decision rule (see [`SolverPolicy::select_dense`] /
/// [`SolverPolicy::select_sparse`]): systems with at least
/// `direct_dim_cutoff` rows whose density is at or below
/// `density_threshold` go to the iterative CSR backend; everything else is
/// factored directly — Cholesky when symmetric within
/// `symmetry_tolerance`, LU otherwise.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverPolicy {
    /// Systems smaller than this are always factored directly, regardless
    /// of sparsity (direct factorization is cheap at small dimensions).
    pub direct_dim_cutoff: usize,
    /// Fraction of nonzero entries (`nnz / n²`) at or below which a large
    /// system is routed to the iterative sparse backend.
    pub density_threshold: f64,
    /// Absolute entrywise tolerance used to classify a system as symmetric
    /// (and hence Cholesky-eligible).
    pub symmetry_tolerance: f64,
    /// Options for the iterative backend's CG runs.
    pub cg: CgOptions,
    /// Executor every selected backend factors (and, for CG, solves) on.
    /// Sequential by default; parallel executors leave results bit-identical.
    pub executor: Executor,
}

impl Default for SolverPolicy {
    fn default() -> Self {
        SolverPolicy {
            direct_dim_cutoff: 128,
            density_threshold: 0.25,
            symmetry_tolerance: 1e-9,
            cg: CgOptions::default(),
            executor: Executor::default(),
        }
    }
}

/// Counts entries of a dense matrix with magnitude above zero.
fn dense_nnz(a: &Matrix) -> usize {
    let mut nnz = 0;
    for i in 0..a.rows() {
        for v in a.row(i) {
            if v.abs() > 0.0 {
                nnz += 1;
            }
        }
    }
    nnz
}

/// Fraction of stored entries relative to a full `rows × cols` matrix
/// (defined as 1.0 for empty shapes).
fn density(nnz: usize, rows: usize, cols: usize) -> f64 {
    if rows == 0 || cols == 0 {
        return 1.0;
    }
    nnz as f64 / (rows as f64 * cols as f64)
}

impl SolverPolicy {
    /// Policy with a custom CG configuration for the iterative backend.
    pub fn with_cg(cg: CgOptions) -> Self {
        SolverPolicy {
            cg,
            ..SolverPolicy::default()
        }
    }

    /// Runs every factorization this policy selects on `executor`.
    ///
    /// Backend choice is unaffected — only how the chosen backend computes.
    /// Parallel executors keep factors and solves bit-identical to the
    /// sequential ones.
    #[must_use]
    pub fn with_executor(mut self, executor: Executor) -> Self {
        self.executor = executor;
        self
    }

    /// Which backend [`SolverPolicy::factor_dense`] would pick for `a`.
    pub fn select_dense(&self, a: &Matrix) -> BackendKind {
        if a.rows() >= self.direct_dim_cutoff
            && density(dense_nnz(a), a.rows(), a.cols()) <= self.density_threshold
        {
            return BackendKind::SparseCg;
        }
        if a.is_symmetric(self.symmetry_tolerance) {
            BackendKind::DenseCholesky
        } else {
            BackendKind::DenseLu
        }
    }

    /// Which backend [`SolverPolicy::factor_sparse`] would pick for `a`.
    pub fn select_sparse(&self, a: &CsrMatrix) -> BackendKind {
        if a.rows() >= self.direct_dim_cutoff
            && density(a.nnz(), a.rows(), a.cols()) <= self.density_threshold
        {
            return BackendKind::SparseCg;
        }
        if a.is_symmetric(self.symmetry_tolerance) {
            BackendKind::DenseCholesky
        } else {
            BackendKind::DenseLu
        }
    }

    /// Factors a dense system with the auto-selected backend.
    ///
    /// A symmetric system that turns out not to be positive definite falls
    /// back from Cholesky to LU instead of failing.
    ///
    /// # Errors
    ///
    /// * [`Error::NotSquare`] when `a` is not square.
    /// * [`Error::Singular`] when the (LU-factored) system is singular.
    /// * [`Error::NotPositiveDefinite`] when the iterative backend sees a
    ///   non-positive diagonal.
    /// deterministic
    pub fn factor_dense(&self, a: &Matrix) -> Result<SolverBackend> {
        match self.select_dense(a) {
            BackendKind::SparseCg => {
                let csr = CsrMatrix::from_dense(a, 0.0);
                Ok(SolverBackend::Cg(
                    JacobiCg::factor_sparse(&csr, self.cg.clone())?
                        .with_executor(self.executor.clone()),
                ))
            }
            BackendKind::DenseCholesky => match Cholesky::factor_with(a, &self.executor) {
                Ok(f) => Ok(SolverBackend::Cholesky(f)),
                Err(Error::NotPositiveDefinite { .. }) => {
                    Ok(SolverBackend::Lu(Lu::factor_with(a, &self.executor)?))
                }
                Err(e) => Err(e),
            },
            BackendKind::DenseLu => Ok(SolverBackend::Lu(Lu::factor_with(a, &self.executor)?)),
        }
    }

    /// Factors a CSR system with the auto-selected backend (densifying
    /// first when the system is small or dense enough for direct methods).
    ///
    /// # Errors
    ///
    /// Same as [`SolverPolicy::factor_dense`].
    /// deterministic
    pub fn factor_sparse(&self, a: &CsrMatrix) -> Result<SolverBackend> {
        match self.select_sparse(a) {
            BackendKind::SparseCg => Ok(SolverBackend::Cg(
                JacobiCg::factor_sparse(a, self.cg.clone())?.with_executor(self.executor.clone()),
            )),
            _ => self.factor_dense(&a.to_dense()),
        }
    }

    /// Factors a dense system *known* to be symmetric positive definite
    /// (e.g. the soft criterion's `V + λL`): Cholesky first, LU as a
    /// robustness fallback when rounding pushed a pivot non-positive, CG
    /// when the system qualifies as large and sparse.
    ///
    /// # Errors
    ///
    /// Same as [`SolverPolicy::factor_dense`].
    /// deterministic
    pub fn factor_spd(&self, a: &Matrix) -> Result<SolverBackend> {
        if a.rows() >= self.direct_dim_cutoff
            && density(dense_nnz(a), a.rows(), a.cols()) <= self.density_threshold
        {
            let csr = CsrMatrix::from_dense(a, 0.0);
            return Ok(SolverBackend::Cg(
                JacobiCg::factor_sparse(&csr, self.cg.clone())?
                    .with_executor(self.executor.clone()),
            ));
        }
        match Cholesky::factor_with(a, &self.executor) {
            Ok(f) => Ok(SolverBackend::Cholesky(f)),
            Err(Error::NotPositiveDefinite { .. }) => {
                Ok(SolverBackend::Lu(Lu::factor_with(a, &self.executor)?))
            }
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd_sample(n: usize) -> Matrix {
        // Diagonally dominant symmetric tridiagonal: SPD at every size.
        Matrix::from_fn(n, n, |i, j| {
            if i == j {
                3.0 + (i as f64) * 0.1
            } else if i.abs_diff(j) == 1 {
                -1.0
            } else {
                0.0
            }
        })
    }

    fn rhs(n: usize) -> Vector {
        Vector::from_fn(n, |i| ((i as f64) * 0.7).sin() + 0.2)
    }

    #[test]
    fn all_backends_solve_the_same_system() {
        let a = spd_sample(12);
        let b = rhs(12);
        let reference = crate::lu::solve(&a, &b).unwrap();

        let chol = Cholesky::factor(&a).unwrap();
        let lu = Lu::factor(&a).unwrap();
        let cg = JacobiCg::factor_dense(&a, CgOptions::default()).unwrap();
        for backend in [
            SolverBackend::Cholesky(chol),
            SolverBackend::Lu(lu),
            SolverBackend::Cg(cg),
        ] {
            let x = backend.solve(&b).unwrap();
            assert!(
                x.approx_eq(&reference, 1e-8),
                "{:?} disagrees",
                backend.kind()
            );
            assert!(backend.residual(&x, &b).unwrap() < 1e-8);
            assert_eq!(Factorization::dim(&backend), 12);
        }
    }

    #[test]
    fn apply_reconstructs_operator_for_every_backend() {
        // Use an asymmetric matrix for LU to exercise the permutation path.
        let asym =
            Matrix::from_rows(&[&[0.0, 2.0, 1.0], &[3.0, 1.0, 0.5], &[1.0, -1.0, 4.0]]).unwrap();
        let x = Vector::from(vec![1.0, -2.0, 0.5]);
        let lu = Lu::factor(&asym).unwrap();
        let ax = Factorization::apply(&lu, &x).unwrap();
        assert!(ax.approx_eq(&asym.matvec(&x).unwrap(), 1e-12));

        let spd = spd_sample(5);
        let x5 = rhs(5);
        let chol = Cholesky::factor(&spd).unwrap();
        let ax = Factorization::apply(&chol, &x5).unwrap();
        assert!(ax.approx_eq(&spd.matvec(&x5).unwrap(), 1e-12));

        let cg = JacobiCg::factor_dense(&spd, CgOptions::default()).unwrap();
        let ax = Factorization::apply(&cg, &x5).unwrap();
        assert!(ax.approx_eq(&spd.matvec(&x5).unwrap(), 1e-14));
    }

    #[test]
    fn solve_matrix_and_inverse_agree_across_backends() {
        let a = spd_sample(6);
        let id = Matrix::identity(6);
        for backend in [
            SolverPolicy::default().factor_dense(&a).unwrap(),
            SolverBackend::Cg(JacobiCg::factor_dense(&a, CgOptions::default()).unwrap()),
        ] {
            let inv = backend.inverse().unwrap();
            assert!(a.matmul(&inv).unwrap().approx_eq(&id, 1e-7));
        }
    }

    #[test]
    fn jacobi_cg_rejects_nonpositive_diagonal() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 0.0]]).unwrap();
        assert!(matches!(
            JacobiCg::factor_dense(&a, CgOptions::default()),
            Err(Error::NotPositiveDefinite { pivot: 1 })
        ));
        let csr = CsrMatrix::from_triplets(2, 2, &[(0, 0, -1.0), (1, 1, 1.0)]).unwrap();
        assert!(matches!(
            JacobiCg::factor_sparse(&csr, CgOptions::default()),
            Err(Error::NotPositiveDefinite { pivot: 0 })
        ));
    }

    #[test]
    fn jacobi_cg_rejects_non_square() {
        assert!(matches!(
            JacobiCg::factor_dense(&Matrix::zeros(2, 3), CgOptions::default()),
            Err(Error::NotSquare { .. })
        ));
        assert!(matches!(
            JacobiCg::factor_sparse(&CsrMatrix::zeros(2, 3), CgOptions::default()),
            Err(Error::NotSquare { .. })
        ));
    }

    #[test]
    fn policy_picks_cholesky_for_small_symmetric() {
        let a = spd_sample(10);
        let policy = SolverPolicy::default();
        assert_eq!(policy.select_dense(&a), BackendKind::DenseCholesky);
        assert!(matches!(
            policy.factor_dense(&a).unwrap(),
            SolverBackend::Cholesky(_)
        ));
    }

    #[test]
    fn policy_picks_lu_for_asymmetric() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 3.0]]).unwrap();
        let policy = SolverPolicy::default();
        assert_eq!(policy.select_dense(&a), BackendKind::DenseLu);
        assert!(matches!(
            policy.factor_dense(&a).unwrap(),
            SolverBackend::Lu(_)
        ));
    }

    #[test]
    fn policy_picks_cg_for_large_sparse() {
        let n = 200;
        let a = spd_sample(n); // tridiagonal: density ~ 3/n << 0.25
        let policy = SolverPolicy::default();
        assert_eq!(policy.select_dense(&a), BackendKind::SparseCg);
        let backend = policy.factor_dense(&a).unwrap();
        assert!(matches!(backend, SolverBackend::Cg(_)));
        let b = rhs(n);
        let x = backend.solve(&b).unwrap();
        assert!(backend.residual(&x, &b).unwrap() < 1e-7);

        let csr = CsrMatrix::from_dense(&a, 0.0);
        assert_eq!(policy.select_sparse(&csr), BackendKind::SparseCg);
        let sparse_backend = policy.factor_sparse(&csr).unwrap();
        let xs = sparse_backend.solve(&b).unwrap();
        assert!(xs.approx_eq(&x, 1e-8));
    }

    #[test]
    fn policy_densifies_small_sparse_systems() {
        let a = spd_sample(8);
        let csr = CsrMatrix::from_dense(&a, 0.0);
        let policy = SolverPolicy::default();
        assert_eq!(policy.select_sparse(&csr), BackendKind::DenseCholesky);
        let backend = policy.factor_sparse(&csr).unwrap();
        assert!(matches!(backend, SolverBackend::Cholesky(_)));
    }

    #[test]
    fn spd_route_falls_back_to_lu_on_indefinite() {
        // Symmetric but indefinite: Cholesky fails, LU must take over.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        let policy = SolverPolicy::default();
        let backend = policy.factor_spd(&a).unwrap();
        assert!(matches!(backend, SolverBackend::Lu(_)));
        let b = Vector::from(vec![1.0, 0.0]);
        let x = backend.solve(&b).unwrap();
        assert!(backend.residual(&x, &b).unwrap() < 1e-12);
    }

    #[test]
    fn policy_with_executor_is_bit_identical_across_worker_counts() {
        // Small dense SPD (Cholesky route) and large sparse (CG route):
        // both must produce byte-for-byte the sequential solution.
        for n in [40, 200] {
            let a = spd_sample(n);
            let b = rhs(n);
            let sequential = SolverPolicy::default()
                .factor_dense(&a)
                .unwrap()
                .solve(&b)
                .unwrap();
            for workers in [1, 2, 4] {
                let policy = SolverPolicy::default().with_executor(Executor::with_workers(workers));
                let backend = policy.factor_dense(&a).unwrap();
                // The executor must not change which backend is selected.
                assert_eq!(backend.kind(), SolverPolicy::default().select_dense(&a));
                let x = backend.solve(&b).unwrap();
                assert_eq!(
                    x.as_slice(),
                    sequential.as_slice(),
                    "n={n} workers={workers} diverged from sequential"
                );
            }
        }
    }

    #[test]
    fn jacobi_cg_with_executor_matches_sequential_matvec_path() {
        let a = spd_sample(64);
        let b = rhs(64);
        let sequential = JacobiCg::factor_dense(&a, CgOptions::default())
            .unwrap()
            .solve(&b)
            .unwrap();
        let parallel = JacobiCg::factor_dense(&a, CgOptions::default())
            .unwrap()
            .with_executor(Executor::with_workers(3));
        assert_eq!(parallel.executor().workers(), 3);
        assert_eq!(
            parallel.solve(&b).unwrap().as_slice(),
            sequential.as_slice()
        );
    }

    #[test]
    fn report_names_the_backend() {
        let a = spd_sample(4);
        let backend = SolverPolicy::default().factor_dense(&a).unwrap();
        let report = backend.report();
        assert_eq!(report.backend, BackendKind::DenseCholesky);
        assert_eq!(report.dim, 4);
        assert_eq!(report.backend.as_str(), "dense-cholesky");
        assert!(!report.backend.is_iterative());
        assert!(BackendKind::SparseCg.is_iterative());
    }

    #[test]
    fn works_as_trait_object() {
        let a = spd_sample(5);
        let b = rhs(5);
        let boxed: Box<dyn Factorization> = Box::new(Cholesky::factor(&a).unwrap());
        let x = boxed.solve(&b).unwrap();
        assert!(boxed.residual(&x, &b).unwrap() < 1e-10);
    }
}
