//! The concurrency pass over thread-using files (the `gssl-runtime` pool
//! and executor, and the `gssl-serve` engine that consumes them):
//! memory-ordering, lock-discipline and `Sync`-evidence lints.
//!
//! Three rules, all scoped to files that actually use `std::thread`
//! primitives (`thread::scope`, `spawn`, `join`):
//!
//! * `relaxed_ordering` — any `Ordering::Relaxed` on an atomic in a
//!   threaded file. Relaxed is only sound when the RMW itself carries the
//!   whole protocol (e.g. a claim-only `fetch_add` cursor whose results
//!   are published under a lock and fenced by scope join); such proven
//!   sites are baselined with a written justification, everything else
//!   must use Acquire/Release.
//! * `lock_across_join` — a `lock()`/`read()`/`write()` guard binding
//!   still live at a `join(`/`scope(`/`spawn(` call in the same scope:
//!   holding a lock while blocking on other threads is the classic
//!   self-deadlock shape.
//! * `non_sync_shared` — interior-mutability types without `Sync`
//!   (`RefCell`, `Cell`, `Rc`, `UnsafeCell`) appearing in a threaded
//!   file; sharing one into `std::thread::scope` is either a compile
//!   error waiting to happen or evidence of an unsound wrapper.

use crate::lexer::{Tok, TokKind};
use crate::scanner::SourceFile;

/// Which concurrency rule fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConcRule {
    /// `Ordering::Relaxed` in a threaded file.
    RelaxedOrdering,
    /// Lock guard live across a join/scope/spawn call.
    LockAcrossJoin,
    /// Interior mutability type in a threaded file.
    NonSyncShared,
}

impl ConcRule {
    /// Stable key used in findings and the baseline.
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            ConcRule::RelaxedOrdering => "relaxed_ordering",
            ConcRule::LockAcrossJoin => "lock_across_join",
            ConcRule::NonSyncShared => "non_sync_shared",
        }
    }
}

/// One concurrency finding.
#[derive(Debug, Clone)]
pub struct ConcFinding {
    /// Which rule fired.
    pub rule: ConcRule,
    /// 1-based line.
    pub line: usize,
    /// Description.
    pub message: String,
}

/// Whether the file uses threading primitives at all (the pass is a no-op
/// otherwise — `Ordering::Relaxed` on a single-threaded counter is fine).
#[must_use]
pub fn is_threaded(source: &SourceFile) -> bool {
    let toks = &source.tokens;
    toks.iter().enumerate().any(|(i, t)| {
        t.kind == TokKind::Ident
            && (t.is_ident("spawn")
                || (t.is_ident("scope")
                    && i >= 2
                    && toks[i - 1].is_punct(':')
                    && toks[i - 2].is_punct(':'))
                || t.is_ident("JoinHandle"))
    })
}

/// Runs all three concurrency rules over one file.
#[must_use]
pub fn check(source: &SourceFile) -> Vec<ConcFinding> {
    if !is_threaded(source) {
        return Vec::new();
    }
    let toks: Vec<&Tok> = source
        .tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::Comment | TokKind::Doc))
        .collect();
    let in_test = |line: usize| {
        source
            .test_mask
            .get(line.saturating_sub(1))
            .copied()
            .unwrap_or(false)
    };

    let mut out = Vec::new();
    // Live lock-guard bindings: (name, brace depth at binding).
    let mut guards: Vec<(String, usize)> = Vec::new();
    let mut depth = 0usize;

    let mut k = 0;
    while k < toks.len() {
        let t = toks[k];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            guards.retain(|&(_, d)| d <= depth);
        }

        if in_test(t.line) {
            k += 1;
            continue;
        }

        // Ordering::Relaxed
        if t.is_ident("Relaxed")
            && k >= 3
            && toks[k - 1].is_punct(':')
            && toks[k - 2].is_punct(':')
            && toks[k - 3].is_ident("Ordering")
        {
            out.push(ConcFinding {
                rule: ConcRule::RelaxedOrdering,
                line: t.line,
                message: "`Ordering::Relaxed` on an atomic in a threaded file; use \
                          Acquire/Release or baseline with a proof of why Relaxed is sound"
                    .to_owned(),
            });
        }

        // `let name = … .lock()/.read()/.write() …;` — track the guard.
        if t.is_ident("let") {
            let mut n = k + 1;
            if toks.get(n).is_some_and(|t| t.is_ident("mut")) {
                n += 1;
            }
            if let Some(name_tok) = toks.get(n).filter(|t| t.kind == TokKind::Ident) {
                // Scan the initializer (to `;` at this depth) for a lock
                // acquisition method call.
                let mut m = n + 1;
                let mut local_depth = 0i32;
                let mut is_guard = false;
                while m < toks.len() {
                    let tm = toks[m];
                    if tm.is_punct('(') || tm.is_punct('{') || tm.is_punct('[') {
                        local_depth += 1;
                    } else if tm.is_punct(')') || tm.is_punct('}') || tm.is_punct(']') {
                        local_depth -= 1;
                        if local_depth < 0 {
                            break;
                        }
                    } else if tm.is_punct(';') && local_depth == 0 {
                        break;
                    } else if tm.kind == TokKind::Ident
                        && matches!(tm.text.as_str(), "lock" | "read" | "write")
                        && m >= 1
                        && toks[m - 1].is_punct('.')
                        && toks.get(m + 1).is_some_and(|p| p.is_punct('('))
                    {
                        is_guard = true;
                    }
                    m += 1;
                }
                if is_guard {
                    guards.push((name_tok.text.clone(), depth));
                }
            }
        }

        // Explicit `drop(name)` releases a tracked guard.
        if t.is_ident("drop")
            && toks.get(k + 1).is_some_and(|p| p.is_punct('('))
            && toks.get(k + 2).is_some_and(|n| n.kind == TokKind::Ident)
        {
            let name = &toks[k + 2].text;
            guards.retain(|(g, _)| g != name);
        }

        // Blocking thread calls while a guard is live.
        if t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "join" | "spawn" | "scope")
            && toks.get(k + 1).is_some_and(|p| p.is_punct('('))
        {
            if let Some((name, _)) = guards.first() {
                out.push(ConcFinding {
                    rule: ConcRule::LockAcrossJoin,
                    line: t.line,
                    message: format!(
                        "lock guard `{name}` is live across `{}(`; release it before \
                         blocking on other threads",
                        t.text
                    ),
                });
            }
        }

        // Interior mutability without Sync.
        if t.kind == TokKind::Ident && matches!(t.text.as_str(), "RefCell" | "Rc" | "UnsafeCell") {
            out.push(ConcFinding {
                rule: ConcRule::NonSyncShared,
                line: t.line,
                message: format!(
                    "`{}` (not Sync) in a threaded file; use Mutex/RwLock/atomics for \
                     state that crosses `thread::scope`",
                    t.text
                ),
            });
        }
        // Bare `Cell<` (but not RefCell/UnsafeCell which matched above).
        if t.is_ident("Cell") && toks.get(k + 1).is_some_and(|p| p.is_punct('<')) {
            out.push(ConcFinding {
                rule: ConcRule::NonSyncShared,
                line: t.line,
                message: "`Cell` (not Sync) in a threaded file; use atomics for state \
                          that crosses `thread::scope`"
                    .to_owned(),
            });
        }

        k += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::analyze;

    const THREADED: &str = "fn run() { std::thread::scope(|s| { s.spawn(|| {}); }); }\n";

    #[test]
    fn non_threaded_files_are_skipped() {
        let src = "fn f(c: &AtomicUsize) { c.fetch_add(1, Ordering::Relaxed); }";
        assert!(check(&analyze(src)).is_empty());
    }

    #[test]
    fn relaxed_in_threaded_file_fires() {
        let src =
            format!("{THREADED}fn f(c: &AtomicUsize) {{ c.fetch_add(1, Ordering::Relaxed); }}");
        let out = check(&analyze(&src));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, ConcRule::RelaxedOrdering);
    }

    #[test]
    fn guard_across_join_fires() {
        let src =
            format!("{THREADED}fn f(m: &Mutex<u32>, h: Handle) {{ let g = m.lock(); h.join(); }}");
        let out = check(&analyze(&src));
        assert!(out.iter().any(|f| f.rule == ConcRule::LockAcrossJoin));
    }

    #[test]
    fn dropped_guard_is_fine() {
        let src = format!(
            "{THREADED}fn f(m: &Mutex<u32>, h: Handle) {{ let g = m.lock(); drop(g); h.join(); }}"
        );
        let out = check(&analyze(&src));
        assert!(out.iter().all(|f| f.rule != ConcRule::LockAcrossJoin));
    }

    #[test]
    fn scope_closed_guard_is_fine() {
        let src = format!(
            "{THREADED}fn f(m: &Mutex<u32>, h: Handle) {{ {{ let g = m.lock(); }} h.join(); }}"
        );
        let out = check(&analyze(&src));
        assert!(out.iter().all(|f| f.rule != ConcRule::LockAcrossJoin));
    }

    #[test]
    fn guard_inside_spawned_closure_is_fine() {
        // pool.rs shape: the guard is taken *inside* the worker closure,
        // at deeper depth than the spawn call.
        let src = "fn run(m: &Mutex<u32>) { std::thread::scope(|s| { s.spawn(|| { let g = m.lock(); }); }); }";
        let out = check(&analyze(src));
        assert!(out.iter().all(|f| f.rule != ConcRule::LockAcrossJoin));
    }

    #[test]
    fn refcell_in_threaded_file_fires() {
        let src = format!("{THREADED}struct S {{ inner: RefCell<u32> }}");
        let out = check(&analyze(&src));
        assert!(out.iter().any(|f| f.rule == ConcRule::NonSyncShared));
    }

    #[test]
    fn test_code_is_exempt() {
        let src = format!(
            "{THREADED}#[cfg(test)]\nmod tests {{\n fn t(c: &AtomicUsize) {{ c.store(1, Ordering::Relaxed); }}\n}}"
        );
        assert!(check(&analyze(&src)).is_empty());
    }
}
