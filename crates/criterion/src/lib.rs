//! Workspace-local stand-in for the slice of the `criterion` bench API the
//! workspace uses.
//!
//! The build environment is offline, so the real crates-io `criterion`
//! cannot be fetched. This crate keeps the bench targets compiling and
//! running with the same source: it measures wall-clock time per iteration
//! with `std::time::Instant`, prints a one-line summary per benchmark, and
//! skips criterion's statistical machinery (outlier analysis, HTML reports).
//! Numbers are indicative, not publication-grade.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque hint preventing the optimizer from deleting a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A two-part id `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id carrying only the swept parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            id: name.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// The bench driver handed to every registered bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
        }
    }
}

/// A group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Registers and immediately runs a benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into(), &mut f);
        self
    }

    /// Registers and immediately runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into(), &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (no-op in the shim; kept for API parity).
    pub fn finish(self) {}

    fn run(&mut self, id: BenchmarkId, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let summary = bencher.summarize();
        println!("  {:<40} {summary}", id.id);
    }
}

/// Collects timed iterations of one benchmark body.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` executions of `body` (after one warm-up call).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        std::hint::black_box(body());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            let out = body();
            self.samples.push(start.elapsed());
            std::hint::black_box(out);
        }
    }

    fn summarize(&self) -> String {
        if self.samples.is_empty() {
            return "no samples (bencher.iter was never called)".to_owned();
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().copied().unwrap_or_default();
        let max = self.samples.iter().max().copied().unwrap_or_default();
        format!(
            "mean {mean:>12.3?}  min {min:>12.3?}  max {max:>12.3?}  ({} samples)",
            self.samples.len()
        )
    }
}

/// Declares a bench group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_bodies_and_counts_samples() {
        let mut c = Criterion::default();
        let mut calls = 0usize;
        {
            let mut group = c.benchmark_group("shim");
            group.sample_size(3);
            group.bench_function("counting", |b| {
                b.iter(|| {
                    calls += 1;
                    black_box(calls)
                });
            });
            group.finish();
        }
        // One warm-up call plus three timed samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn bench_with_input_passes_the_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("double", 21), &21u64, |b, &x| {
            b.iter(|| black_box(x * 2));
        });
        group.finish();
    }

    #[test]
    fn ids_render_as_expected() {
        assert_eq!(BenchmarkId::new("a", 3).id, "a/3");
        assert_eq!(BenchmarkId::from_parameter("p").id, "p");
        assert_eq!(BenchmarkId::from("name").id, "name");
    }
}
