//! Error types shared by every decomposition and solver in this crate.

use std::fmt;

/// Errors returned by matrix constructors, decompositions and solvers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// Operand shapes are incompatible for the requested operation.
    DimensionMismatch {
        /// Human-readable name of the failing operation (e.g. `"matmul"`).
        operation: &'static str,
        /// Shape of the left / primary operand as `(rows, cols)`.
        left: (usize, usize),
        /// Shape of the right / secondary operand as `(rows, cols)`.
        right: (usize, usize),
    },
    /// The matrix is singular (or numerically singular) and cannot be
    /// factorized or inverted.
    Singular {
        /// Index of the pivot at which factorization broke down.
        pivot: usize,
    },
    /// A Cholesky factorization was requested for a matrix that is not
    /// symmetric positive definite.
    NotPositiveDefinite {
        /// Index of the leading minor that failed.
        pivot: usize,
    },
    /// The matrix must be square for the requested operation.
    NotSquare {
        /// Actual shape of the offending matrix.
        shape: (usize, usize),
    },
    /// An iterative solver exhausted its iteration budget before reaching
    /// the requested tolerance.
    NotConverged {
        /// Iterations performed.
        iterations: usize,
        /// Residual norm at the final iterate.
        residual: f64,
    },
    /// A constructor was given data whose length is inconsistent with the
    /// requested shape.
    InvalidLength {
        /// Expected number of elements.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// An argument was outside its valid domain (e.g. a negative tolerance).
    InvalidArgument {
        /// Description of the violated requirement.
        message: String,
    },
    /// A NaN or infinite value crossed a solver boundary.
    ///
    /// Produced by the runtime numeric sanitizer (the `strict-checks`
    /// feature); see [`crate::strict`]. Reports the boundary at which the
    /// value was first observed rather than letting it propagate.
    NonFiniteValue {
        /// The guarded boundary (e.g. `"cholesky.factor input"`).
        context: &'static str,
        /// Flat (row-major for matrices) index of the first offender.
        index: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DimensionMismatch {
                operation,
                left,
                right,
            } => write!(
                f,
                "dimension mismatch in {operation}: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            Error::Singular { pivot } => {
                write!(f, "matrix is singular at pivot {pivot}")
            }
            Error::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (leading minor {pivot})")
            }
            Error::NotSquare { shape } => {
                write!(f, "matrix must be square, got {}x{}", shape.0, shape.1)
            }
            Error::NotConverged {
                iterations,
                residual,
            } => write!(
                f,
                "iterative solver failed to converge after {iterations} iterations \
                 (residual {residual:.3e})"
            ),
            Error::InvalidLength { expected, actual } => write!(
                f,
                "invalid data length: expected {expected} elements, got {actual}"
            ),
            Error::InvalidArgument { message } => {
                write!(f, "invalid argument: {message}")
            }
            Error::NonFiniteValue { context, index } => write!(
                f,
                "non-finite value (NaN or infinity) at {context}, element {index}"
            ),
        }
    }
}

impl std::error::Error for Error {}

impl From<gssl_runtime::Error> for Error {
    fn from(inner: gssl_runtime::Error) -> Self {
        // Runtime failures (zero chunk width, a lost batch slot) are
        // configuration/protocol problems, not numerical ones.
        Error::InvalidArgument {
            message: inner.to_string(),
        }
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch() {
        let err = Error::DimensionMismatch {
            operation: "matmul",
            left: (2, 3),
            right: (4, 5),
        };
        let text = err.to_string();
        assert!(text.contains("matmul"));
        assert!(text.contains("2x3"));
        assert!(text.contains("4x5"));
    }

    #[test]
    fn display_singular() {
        assert_eq!(
            Error::Singular { pivot: 3 }.to_string(),
            "matrix is singular at pivot 3"
        );
    }

    #[test]
    fn display_not_positive_definite() {
        let text = Error::NotPositiveDefinite { pivot: 1 }.to_string();
        assert!(text.contains("positive definite"));
    }

    #[test]
    fn display_not_converged_mentions_residual() {
        let text = Error::NotConverged {
            iterations: 10,
            residual: 0.5,
        }
        .to_string();
        assert!(text.contains("10"));
        assert!(text.contains("5.000e-1"));
    }

    #[test]
    fn display_non_finite_value() {
        let text = Error::NonFiniteValue {
            context: "lu.factor input",
            index: 4,
        }
        .to_string();
        assert!(text.contains("lu.factor input"));
        assert!(text.contains("4"));
        assert!(text.contains("non-finite"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_error<E: std::error::Error>(_: E) {}
        takes_error(Error::Singular { pivot: 0 });
    }

    #[test]
    fn runtime_errors_convert_to_invalid_argument() {
        let e: Error = gssl_runtime::Error::InvalidConfig {
            message: "chunk width must be at least one item".into(),
        }
        .into();
        assert!(matches!(e, Error::InvalidArgument { .. }));
        assert!(e.to_string().contains("chunk width"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(Error::Singular { pivot: 1 }, Error::Singular { pivot: 1 });
        assert_ne!(Error::Singular { pivot: 1 }, Error::Singular { pivot: 2 });
    }
}
