//! Analyze fixture: a threaded file carrying one of each concurrency
//! violation — a relaxed atomic, a lock guard held across a join, and
//! non-`Sync` interior mutability.

/// Spawns one worker and commits all three concurrency sins.
pub fn run() -> f64 {
    let shared = std::cell::RefCell::new(0.0f64);
    let lock = std::sync::Mutex::new(0u32);
    let counter = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| {
            counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
        let guard = lock.lock().unwrap();
        handle.join().ok();
        drop(guard);
    });
    *shared.borrow()
}
