//! Connectivity analysis of weighted graphs.
//!
//! Proposition II.2 (inconsistency of the soft criterion at large λ)
//! assumes `W` represents a *connected* graph; [`is_connected`] makes that
//! hypothesis checkable, and [`connected_components`] is used by the hard
//! criterion to detect unlabeled components with no labeled anchor (where
//! `D₂₂ − W₂₂` is singular).

use crate::error::{Error, Result};
use gssl_linalg::Matrix;

/// A disjoint-set (union–find) structure over `0..len`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Creates `len` singleton sets.
    pub fn new(len: usize) -> Self {
        UnionFind {
            parent: (0..len).collect(),
            rank: vec![0; len],
            components: len,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` when the structure tracks no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of the set containing `x`, with path compression.
    ///
    /// # Panics
    ///
    /// Panics when `x` is out of bounds.
    pub fn find(&mut self, x: usize) -> usize {
        assert!(x < self.parent.len(), "element out of bounds");
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets containing `a` and `b`; returns `true` when they
    /// were previously separate.
    ///
    /// # Panics
    ///
    /// Panics when either index is out of bounds.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.components -= 1;
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// Number of disjoint sets currently tracked.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Returns `true` when `a` and `b` are in the same set.
    ///
    /// # Panics
    ///
    /// Panics when either index is out of bounds.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

/// Labels each vertex of the weighted graph `w` with a component id in
/// `0..k` (ids are assigned in order of first appearance). Edges with
/// weight `> threshold` connect vertices.
///
/// # Errors
///
/// Returns [`Error::InvalidArgument`] when `w` is not square.
pub fn connected_components(w: &Matrix, threshold: f64) -> Result<Vec<usize>> {
    if !w.is_square() {
        return Err(Error::InvalidArgument {
            message: format!(
                "affinity matrix must be square, got {}x{}",
                w.rows(),
                w.cols()
            ),
        });
    }
    let n = w.rows();
    let mut uf = UnionFind::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if w.get(i, j) > threshold || w.get(j, i) > threshold {
                uf.union(i, j);
            }
        }
    }
    let mut labels = vec![usize::MAX; n];
    let mut next = 0;
    for v in 0..n {
        let root = uf.find(v);
        if labels[root] == usize::MAX {
            labels[root] = next;
            next += 1;
        }
        labels[v] = labels[root];
    }
    Ok(labels)
}

/// Partitions the vertices of `w` into connected components in canonical
/// order: components are sorted by their smallest member, and the members
/// of each component are listed in ascending order.
///
/// This is the shard-extraction API used by `gssl-serve`'s sharded engine
/// (each component is an independent sub-problem: the hard system
/// `D₂₂ − W₂₂` and the soft system `V + λL` are both block-diagonal
/// across components) and is the canonical ordering contract any
/// component-based decomposition in the workspace should follow. Edges
/// with weight `> threshold` connect vertices.
///
/// Because [`connected_components`] assigns ids in order of first
/// appearance, id order already equals smallest-member order; this
/// function only groups the labels.
///
/// ```
/// use gssl_graph::components::component_partition;
/// use gssl_linalg::Matrix;
/// # fn main() -> Result<(), gssl_graph::Error> {
/// let w = Matrix::from_rows(&[
///     &[0.0, 0.0, 1.0],
///     &[0.0, 0.0, 0.0],
///     &[1.0, 0.0, 0.0],
/// ])?;
/// assert_eq!(component_partition(&w, 0.0)?, vec![vec![0, 2], vec![1]]);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns [`Error::InvalidArgument`] when `w` is not square.
///
/// complexity: O(n^2)
/// deterministic
pub fn component_partition(w: &Matrix, threshold: f64) -> Result<Vec<Vec<usize>>> {
    let labels = connected_components(w, threshold)?;
    let count = labels.iter().copied().max().map_or(0, |m| m + 1);
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); count];
    for (vertex, &label) in labels.iter().enumerate() {
        members[label].push(vertex);
    }
    Ok(members)
}

/// Returns `true` when the graph with edges of weight `> threshold` is
/// connected (vacuously true for empty and single-vertex graphs).
///
/// # Errors
///
/// Returns [`Error::InvalidArgument`] when `w` is not square.
pub fn is_connected(w: &Matrix, threshold: f64) -> Result<bool> {
    let labels = connected_components(w, threshold)?;
    Ok(labels.iter().all(|&l| l == 0))
}

/// Returns `true` when every unlabeled vertex (index `>= n_labeled`) is in
/// the same component as at least one labeled vertex.
///
/// This is exactly the condition under which the hard-criterion system
/// `D₂₂ − W₂₂` is nonsingular.
///
/// # Errors
///
/// Returns [`Error::InvalidArgument`] when `w` is not square or
/// `n_labeled > w.rows()`.
pub fn unlabeled_anchored(w: &Matrix, n_labeled: usize, threshold: f64) -> Result<bool> {
    if n_labeled > w.rows() {
        return Err(Error::InvalidArgument {
            message: format!(
                "n_labeled ({n_labeled}) exceeds vertex count ({})",
                w.rows()
            ),
        });
    }
    let labels = connected_components(w, threshold)?;
    let anchored: std::collections::HashSet<usize> = labels[..n_labeled].iter().copied().collect();
    Ok(labels[n_labeled..].iter().all(|l| anchored.contains(l)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cliques() -> Matrix {
        // Vertices {0,1} and {2,3} fully connected within, no cross edges.
        Matrix::from_rows(&[
            &[0.0, 1.0, 0.0, 0.0],
            &[1.0, 0.0, 0.0, 0.0],
            &[0.0, 0.0, 0.0, 1.0],
            &[0.0, 0.0, 1.0, 0.0],
        ])
        .unwrap()
    }

    #[test]
    fn union_find_merges_and_counts() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.component_count(), 4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(0, 2));
        uf.union(2, 3);
        uf.union(0, 3);
        assert_eq!(uf.component_count(), 1);
        assert_eq!(uf.len(), 4);
        assert!(!uf.is_empty());
    }

    #[test]
    fn components_of_two_cliques() {
        let labels = connected_components(&two_cliques(), 0.0).unwrap();
        assert_eq!(labels, vec![0, 0, 1, 1]);
        assert!(!is_connected(&two_cliques(), 0.0).unwrap());
    }

    #[test]
    fn threshold_cuts_weak_edges() {
        let mut w = two_cliques();
        w.set(1, 2, 0.05);
        w.set(2, 1, 0.05);
        assert!(is_connected(&w, 0.0).unwrap());
        assert!(!is_connected(&w, 0.1).unwrap());
    }

    #[test]
    fn single_vertex_and_empty_graphs_are_connected() {
        assert!(is_connected(&Matrix::zeros(1, 1), 0.0).unwrap());
        assert!(is_connected(&Matrix::zeros(0, 0), 0.0).unwrap());
    }

    #[test]
    fn anchoring_detects_stranded_unlabeled_vertices() {
        // Labeled: {0, 1} (first clique). Unlabeled {2, 3} form their own
        // component => not anchored.
        assert!(!unlabeled_anchored(&two_cliques(), 2, 0.0).unwrap());
        // Labeled = one vertex from each clique => anchored.
        // Reorder: vertices 0 and 2 labeled means n_labeled = 2 only works
        // with a permuted matrix; build it directly.
        let w = Matrix::from_rows(&[
            &[0.0, 0.0, 1.0, 0.0],
            &[0.0, 0.0, 0.0, 1.0],
            &[1.0, 0.0, 0.0, 0.0],
            &[0.0, 1.0, 0.0, 0.0],
        ])
        .unwrap();
        assert!(unlabeled_anchored(&w, 2, 0.0).unwrap());
    }

    #[test]
    fn partition_is_canonical() {
        // Interleaved cliques {0,2} and {1,3}: smallest-member order puts
        // the even clique first, members ascending within each.
        let w = Matrix::from_rows(&[
            &[0.0, 0.0, 1.0, 0.0],
            &[0.0, 0.0, 0.0, 1.0],
            &[1.0, 0.0, 0.0, 0.0],
            &[0.0, 1.0, 0.0, 0.0],
        ])
        .unwrap();
        assert_eq!(
            component_partition(&w, 0.0).unwrap(),
            vec![vec![0, 2], vec![1, 3]]
        );
        assert_eq!(
            component_partition(&two_cliques(), 0.0).unwrap(),
            vec![vec![0, 1], vec![2, 3]]
        );
        assert_eq!(
            component_partition(&Matrix::zeros(0, 0), 0.0).unwrap(),
            Vec::<Vec<usize>>::new()
        );
        assert!(component_partition(&Matrix::zeros(2, 3), 0.0).is_err());
    }

    #[test]
    fn partition_agrees_with_labels() {
        let mut w = two_cliques();
        w.set(1, 2, 0.5);
        w.set(2, 1, 0.5);
        let labels = connected_components(&w, 0.0).unwrap();
        let parts = component_partition(&w, 0.0).unwrap();
        for (id, part) in parts.iter().enumerate() {
            for &v in part {
                assert_eq!(labels[v], id);
            }
        }
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), labels.len());
    }

    #[test]
    fn anchoring_validates_arguments() {
        assert!(unlabeled_anchored(&two_cliques(), 9, 0.0).is_err());
        assert!(connected_components(&Matrix::zeros(2, 3), 0.0).is_err());
    }

    #[test]
    fn fully_labeled_graph_is_trivially_anchored() {
        assert!(unlabeled_anchored(&two_cliques(), 4, 0.0).unwrap());
    }
}
