//! The [`NeighborSearch`] trait, its canonical result type, and the
//! deterministic batched-query helpers built on `gssl-runtime`.
//!
//! # Canonical ordering
//!
//! Every query returns neighbors sorted ascending by `(dist2, index)`
//! using `f64::total_cmp` — the same tie-break the brute-force scan in
//! `gssl-graph` has always used (its stable sort preserves index order
//! among equal distances). Two backends that return the same neighbor
//! *set* therefore return the same neighbor *sequence*, which is what
//! lets the tree backends replace the oracle without perturbing a single
//! bit of downstream graph assembly.

use crate::error::{Error, Result};
use gssl_linalg::Matrix;
use gssl_runtime::Executor;
use std::cmp::Ordering;

/// One query result: the id of a stored point and its squared distance
/// to the query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Id of the stored point (row index at build time, or the id
    /// returned by [`NeighborSearch::insert`]).
    pub index: usize,
    /// Squared Euclidean distance to the query.
    pub dist2: f64,
}

impl Neighbor {
    /// Total order: ascending `dist2` (via `total_cmp`), ties broken by
    /// ascending `index`. Distinct stored points never compare equal.
    pub fn key_cmp(&self, other: &Neighbor) -> Ordering {
        self.dist2
            .total_cmp(&other.dist2)
            .then(self.index.cmp(&other.index))
    }
}

/// Bounded best-`k` accumulator: a sorted insertion buffer.
///
/// For the small `k` of kNN graphs (≤ a few dozen) a sorted `Vec` with
/// `binary_search` + `insert` beats a binary heap: no index arithmetic,
/// no sift code, and the buffer doubles as the final sorted output.
#[derive(Debug)]
pub(crate) struct KBest {
    cap: usize,
    items: Vec<Neighbor>,
}

impl KBest {
    /// Creates an accumulator that retains the `cap` smallest offers.
    /// Callers validate `cap >= 1` before constructing.
    pub fn new(cap: usize) -> Self {
        debug_assert!(cap >= 1, "KBest capacity must be positive");
        KBest {
            cap,
            items: Vec::with_capacity(cap.saturating_add(1)),
        }
    }

    /// Squared distance a candidate must beat to be admitted:
    /// the current worst retained distance, or `+inf` while underfull.
    ///
    /// hot
    /// complexity: O(1)
    pub fn bound_dist2(&self) -> f64 {
        if self.items.len() < self.cap {
            f64::INFINITY
        } else {
            self.items.last().map_or(f64::INFINITY, |n| n.dist2)
        }
    }

    /// Whether `cap` neighbors have been retained.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.cap
    }

    /// Offers a candidate; keeps the best `cap` under [`Neighbor::key_cmp`].
    ///
    /// hot
    /// complexity: O(k)
    pub fn offer(&mut self, cand: Neighbor) {
        if self.is_full() {
            // Fast reject without touching the buffer: strictly worse than
            // the current worst (or equal — equal keys cannot occur for
            // distinct ids, and re-offering the same id is a backend bug).
            if self
                .items
                .last()
                .is_some_and(|worst| cand.key_cmp(worst) != Ordering::Less)
            {
                return;
            }
        }
        let pos = match self.items.binary_search_by(|probe| probe.key_cmp(&cand)) {
            Ok(pos) | Err(pos) => pos,
        };
        self.items.insert(pos, cand);
        self.items.truncate(self.cap);
    }

    /// Consumes the accumulator, yielding neighbors in canonical order.
    pub fn into_sorted(self) -> Vec<Neighbor> {
        self.items
    }
}

/// Exact nearest-neighbor search over a fixed-dimension point set.
///
/// All implementations in this crate are *exact*: for any query they
/// return precisely the neighbors the brute-force scan would, in the
/// canonical `(dist2, index)` order, with bitwise-equal distances (see
/// the module docs for why). `build` is deterministic — the same point
/// matrix always produces the same tree — and [`NeighborSearch::insert`]
/// supports out-of-sample growth after construction.
pub trait NeighborSearch: Sized {
    /// Builds an index over `points` (rows are points).
    ///
    /// # Errors
    ///
    /// * [`Error::EmptyInput`] when `points` has no rows or no columns.
    /// * [`Error::NonFiniteCoordinate`] when any coordinate is NaN/inf.
    /// deterministic
    fn build(points: &Matrix) -> Result<Self>;

    /// Number of indexed points.
    fn len(&self) -> usize;

    /// Whether the index holds no points (impossible after `build`).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dimension of the indexed points.
    fn dim(&self) -> usize;

    /// Borrows the coordinates of stored point `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i >= self.len()`.
    fn point(&self, i: usize) -> &[f64];

    /// Appends an out-of-sample point, returning its id. The id sequence
    /// continues from the build-time row indices (`len()` before the
    /// call), so graph vertices and index ids never diverge.
    ///
    /// # Errors
    ///
    /// * [`Error::DimensionMismatch`] on wrong query dimension.
    /// * [`Error::NonFiniteCoordinate`] on NaN/inf coordinates.
    fn insert(&mut self, point: &[f64]) -> Result<usize>;

    /// The `k` nearest stored points to `query`, optionally excluding one
    /// id (a point querying its own neighborhood excludes itself).
    ///
    /// Results are sorted ascending by `(dist2, index)`.
    ///
    /// # Errors
    ///
    /// * [`Error::DimensionMismatch`] / [`Error::NonFiniteCoordinate`]
    ///   on an invalid query.
    /// * [`Error::InvalidArgument`] when `k == 0` or `k` exceeds the
    ///   number of eligible candidates.
    /// deterministic
    fn k_nearest_excluding(
        &self,
        query: &[f64],
        k: usize,
        exclude: Option<usize>,
    ) -> Result<Vec<Neighbor>>;

    /// The `k` nearest stored points to `query`.
    ///
    /// # Errors
    ///
    /// Same as [`NeighborSearch::k_nearest_excluding`].
    /// deterministic
    fn k_nearest(&self, query: &[f64], k: usize) -> Result<Vec<Neighbor>> {
        self.k_nearest_excluding(query, k, None)
    }

    /// Every stored point within `radius` of `query` (inclusive:
    /// `dist <= radius`), sorted ascending by `(dist2, index)`.
    ///
    /// The inclusive boundary matches the compactly supported kernels in
    /// `gssl-graph`, whose profiles are nonzero at `t = 1` for the boxcar
    /// case — a support-radius query must therefore keep `dist == h`.
    ///
    /// # Errors
    ///
    /// * [`Error::DimensionMismatch`] / [`Error::NonFiniteCoordinate`]
    ///   on an invalid query.
    /// * [`Error::InvalidArgument`] when `radius` is negative or non-finite.
    /// deterministic
    fn within_radius(&self, query: &[f64], radius: f64) -> Result<Vec<Neighbor>>;
}

/// Validates the shared `k_nearest` preconditions; returns the number of
/// eligible candidates.
pub(crate) fn check_k(len: usize, k: usize, exclude: Option<usize>) -> Result<usize> {
    let candidates = match exclude {
        Some(e) if e < len => len - 1,
        _ => len,
    };
    if k == 0 {
        return Err(Error::InvalidArgument {
            message: "k must be at least 1".into(),
        });
    }
    if k > candidates {
        return Err(Error::InvalidArgument {
            message: format!("k = {k} exceeds the {candidates} eligible points"),
        });
    }
    Ok(candidates)
}

/// Validates a radius-query precondition.
pub(crate) fn check_radius(radius: f64) -> Result<()> {
    if !radius.is_finite() || radius < 0.0 {
        return Err(Error::InvalidArgument {
            message: format!("radius must be finite and nonnegative, got {radius}"),
        });
    }
    Ok(())
}

/// Chunk width used by the batched helpers: ~4 chunks per worker bounds
/// the tail-latency imbalance while keeping per-chunk overhead small.
fn batch_block(len: usize, executor: &Executor) -> usize {
    len.div_ceil(executor.workers().saturating_mul(4).max(1))
        .max(1)
}

/// `k_nearest` for every row of `queries`, executed in fixed chunks on
/// `executor`. Each query is answered by a pure function of the frozen
/// index and its own row, and chunk results are reassembled in input
/// order, so the output is **bit-identical at every worker count**.
///
/// # Errors
///
/// Any per-query error from [`NeighborSearch::k_nearest`], plus
/// [`Error::DimensionMismatch`] when `queries.cols() != index.dim()`.
///
/// hot
/// complexity: O(q * n * d)
/// deterministic
pub fn k_nearest_batch<I: NeighborSearch + Sync>(
    index: &I,
    queries: &Matrix,
    k: usize,
    executor: &Executor,
) -> Result<Vec<Vec<Neighbor>>> {
    if queries.cols() != index.dim() {
        return Err(Error::DimensionMismatch {
            expected: index.dim(),
            actual: queries.cols(),
        });
    }
    let n = queries.rows();
    if n == 0 {
        return Ok(Vec::new());
    }
    executor.map_chunks(n, batch_block(n, executor), |range| {
        range
            .map(|qi| index.k_nearest(queries.row(qi), k))
            .collect::<Result<Vec<_>>>()
    })
}

/// The self-join kNN: for every stored point `i`, its `k` nearest *other*
/// stored points — the exact neighbor lists kNN graph assembly consumes.
/// Deterministic across worker counts for the same reason as
/// [`k_nearest_batch`].
///
/// # Errors
///
/// Same as [`NeighborSearch::k_nearest_excluding`].
///
/// hot
/// complexity: O(n^2 * d)
/// deterministic
pub fn self_k_nearest_batch<I: NeighborSearch + Sync>(
    index: &I,
    k: usize,
    executor: &Executor,
) -> Result<Vec<Vec<Neighbor>>> {
    let n = index.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    executor.map_chunks(n, batch_block(n, executor), |range| {
        range
            .map(|i| index.k_nearest_excluding(index.point(i), k, Some(i)))
            .collect::<Result<Vec<_>>>()
    })
}

/// The self-join range query: for every stored point `i`, all *other*
/// stored points within `radius` — the neighbor lists ε-graph assembly
/// consumes. Deterministic across worker counts.
///
/// # Errors
///
/// Same as [`NeighborSearch::within_radius`].
///
/// hot
/// complexity: O(n^2 * d)
/// deterministic
pub fn self_within_radius_batch<I: NeighborSearch + Sync>(
    index: &I,
    radius: f64,
    executor: &Executor,
) -> Result<Vec<Vec<Neighbor>>> {
    let n = index.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    executor.map_chunks(n, batch_block(n, executor), |range| {
        range
            .map(|i| {
                let mut list = index.within_radius(index.point(i), radius)?;
                list.retain(|nb| nb.index != i);
                Ok(list)
            })
            .collect::<Result<Vec<_>>>()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nb(index: usize, dist2: f64) -> Neighbor {
        Neighbor { index, dist2 }
    }

    #[test]
    fn key_cmp_orders_by_distance_then_index() {
        assert_eq!(nb(5, 1.0).key_cmp(&nb(0, 2.0)), Ordering::Less);
        assert_eq!(nb(5, 2.0).key_cmp(&nb(0, 2.0)), Ordering::Greater);
        assert_eq!(nb(0, 2.0).key_cmp(&nb(5, 2.0)), Ordering::Less);
        assert_eq!(nb(3, 2.0).key_cmp(&nb(3, 2.0)), Ordering::Equal);
    }

    #[test]
    fn kbest_retains_smallest_k_in_order() {
        let mut best = KBest::new(3);
        assert_eq!(best.bound_dist2(), f64::INFINITY);
        for (i, d) in [(0, 5.0), (1, 1.0), (2, 4.0), (3, 2.0), (4, 9.0), (5, 1.0)] {
            best.offer(nb(i, d));
        }
        assert!(best.is_full());
        assert_eq!(best.bound_dist2(), 2.0);
        let out = best.into_sorted();
        assert_eq!(
            out,
            vec![nb(1, 1.0), nb(5, 1.0), nb(3, 2.0)],
            "ties broken by index, worst trimmed"
        );
    }

    #[test]
    fn kbest_rejects_equal_or_worse_when_full() {
        let mut best = KBest::new(2);
        best.offer(nb(0, 1.0));
        best.offer(nb(1, 3.0));
        // Worse than the current worst: rejected.
        best.offer(nb(2, 4.0));
        // Same distance, higher index than the worst: rejected by tie-break.
        best.offer(nb(9, 3.0));
        // Same distance, lower index: admitted, evicting index 1.
        best.offer(nb(0, 3.0));
        // (Re-offering id 0 is a backend bug in real use; here it just
        // exercises the comparator.)
        let out = best.into_sorted();
        assert_eq!(out, vec![nb(0, 1.0), nb(0, 3.0)]);
    }

    #[test]
    fn check_k_enforces_bounds() {
        assert!(check_k(5, 0, None).is_err());
        assert!(check_k(5, 6, None).is_err());
        assert_eq!(check_k(5, 5, None).unwrap(), 5);
        assert!(check_k(5, 5, Some(2)).is_err());
        assert_eq!(check_k(5, 4, Some(2)).unwrap(), 4);
        // An exclusion id beyond the stored range excludes nothing.
        assert_eq!(check_k(5, 5, Some(17)).unwrap(), 5);
    }

    #[test]
    fn check_radius_enforces_bounds() {
        assert!(check_radius(-1.0).is_err());
        assert!(check_radius(f64::NAN).is_err());
        assert!(check_radius(f64::INFINITY).is_err());
        assert!(check_radius(0.0).is_ok());
        assert!(check_radius(2.5).is_ok());
    }
}
