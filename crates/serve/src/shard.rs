//! Component-based shard decomposition of a fitted weight matrix.
//!
//! Both criterion systems of the paper are block-diagonal across
//! connected components of the kernel graph: the hard system
//! `A = D₂₂ − W₂₂` has `A_ab = −w_ab = 0` whenever `a` and `b` sit in
//! different components (and the degree diagonal is a row sum whose
//! cross-component terms are exactly `0.0`), and the soft system
//! `V + λL` inherits the Laplacian's block structure. A
//! [`ShardPlan`] makes that structure explicit: one shard per connected
//! component, discovered through the graph crate's canonical
//! [`gssl_graph::component_partition`], so each shard can be fitted,
//! refitted and snapshotted independently while the assembled
//! predictions stay bit-identical to the monolithic engine (see the
//! module docs of [`crate::sharded`] for the proof obligations).

use crate::error::{Error, Result};
use gssl_graph::component_partition;
use gssl_linalg::Matrix;

/// One connected component of the fitted graph, in canonical order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shard {
    /// Global node indices of the members, strictly ascending.
    members: Vec<usize>,
    /// How many members carry an observed label at fit time. Because the
    /// engine's labeled-first convention puts all labeled globals below
    /// `n_labeled`, the labeled members are exactly the first
    /// `n_labeled` entries of the ascending `members` list.
    n_labeled: usize,
}

impl Shard {
    /// Global node indices of this shard's members, strictly ascending.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Number of members that were labeled at fit time (a prefix of
    /// [`Shard::members`] under the labeled-first convention).
    pub fn n_labeled(&self) -> usize {
        self.n_labeled
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the shard has no members (never true for plan shards).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The local (within-shard) index of a global node, if it belongs to
    /// this shard. `O(log s)` — members are sorted.
    pub fn local_index_of(&self, node: usize) -> Option<usize> {
        self.members.binary_search(&node).ok()
    }

    /// Extracts the member rows of an `N × d` matrix into a dense
    /// `s × d` sub-matrix (points or targets restricted to this shard).
    pub(crate) fn extract_rows(&self, full: &Matrix) -> Matrix {
        Matrix::from_fn(self.members.len(), full.cols(), |i, j| {
            full.get(self.members[i], j)
        })
    }

    /// Extracts the rows of the first `take` (labeled) members — the
    /// labeled-first target block handed to the per-shard fit.
    pub(crate) fn extract_labeled_rows(&self, full: &Matrix, take: usize) -> Matrix {
        Matrix::from_fn(take, full.cols(), |i, j| full.get(self.members[i], j))
    }
}

/// The full decomposition: every node assigned to exactly one shard,
/// shards in the canonical smallest-member-first component order.
///
/// ```
/// use gssl_linalg::Matrix;
/// use gssl_serve::ShardPlan;
/// # fn main() -> Result<(), gssl_serve::Error> {
/// // Two components: {0, 2} and {1, 3}.
/// let w = Matrix::from_rows(&[
///     &[0.0, 0.0, 1.0, 0.0],
///     &[0.0, 0.0, 0.0, 1.0],
///     &[1.0, 0.0, 0.0, 0.0],
///     &[0.0, 1.0, 0.0, 0.0],
/// ]).map_err(gssl_serve::Error::Linalg)?;
/// let plan = ShardPlan::new(&w, 2)?;
/// assert_eq!(plan.n_shards(), 2);
/// assert_eq!(plan.shards()[0].members(), &[0, 2]);
/// assert_eq!(plan.shard_of(3), Some(1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    shards: Vec<Shard>,
    /// Global node index → shard index.
    node_to_shard: Vec<usize>,
}

impl ShardPlan {
    /// Decomposes a fitted `N × N` weight matrix into connected
    /// components (edges are entries `> 0`), recording for each shard how
    /// many of its members fall below the labeled-first boundary
    /// `n_labeled`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Graph`] for a non-square weight matrix and
    /// [`Error::InvalidConfig`] when `n_labeled` exceeds the node count.
    /// complexity: O(n^2)
    /// deterministic
    pub fn new(weights: &Matrix, n_labeled: usize) -> Result<Self> {
        if n_labeled > weights.rows() {
            return Err(Error::InvalidConfig {
                message: format!(
                    "n_labeled {n_labeled} exceeds the {} fitted nodes",
                    weights.rows()
                ),
            });
        }
        let partition = component_partition(weights, 0.0)?;
        let mut node_to_shard = vec![0usize; weights.rows()];
        let mut shards = Vec::with_capacity(partition.len());
        for (shard_index, members) in partition.into_iter().enumerate() {
            for &node in &members {
                node_to_shard[node] = shard_index;
            }
            // `component_partition` pushes vertices in ascending order, so
            // the labeled members (globals < n_labeled) form a prefix.
            let labeled = members.iter().take_while(|&&m| m < n_labeled).count();
            shards.push(Shard {
                members,
                n_labeled: labeled,
            });
        }
        Ok(ShardPlan {
            shards,
            node_to_shard,
        })
    }

    /// Rehydrates a plan from snapshot state: the shards as recorded at
    /// fit time, over a graph of `n_nodes` vertices. Trusts the codec's
    /// checksum for internal consistency but still rejects out-of-range
    /// or doubly-assigned members.
    pub(crate) fn from_parts(shards: Vec<Shard>, n_nodes: usize) -> Result<Self> {
        let mut node_to_shard = vec![usize::MAX; n_nodes];
        for (shard_index, shard) in shards.iter().enumerate() {
            for &node in &shard.members {
                if node >= n_nodes || node_to_shard[node] != usize::MAX {
                    return Err(Error::Snapshot {
                        message: format!("shard member {node} is out of range or assigned twice"),
                    });
                }
                node_to_shard[node] = shard_index;
            }
        }
        if node_to_shard.iter().any(|&s| s == usize::MAX) {
            return Err(Error::Snapshot {
                message: "shard plan does not cover every node".to_owned(),
            });
        }
        Ok(ShardPlan {
            shards,
            node_to_shard,
        })
    }

    /// Builds one shard record from snapshot fields.
    pub(crate) fn shard_from_parts(members: Vec<usize>, n_labeled: usize) -> Shard {
        Shard { members, n_labeled }
    }

    /// Number of shards (graph components).
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shards, in canonical smallest-member-first order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// The shard containing a global node index, or `None` out of range.
    pub fn shard_of(&self, node: usize) -> Option<usize> {
        self.node_to_shard.get(node).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interleaved() -> Matrix {
        // {0, 2, 4} and {1, 3} as two cliques.
        Matrix::from_fn(
            5,
            5,
            |i, j| {
                if i != j && i % 2 == j % 2 {
                    1.0
                } else {
                    0.0
                }
            },
        )
    }

    #[test]
    fn plan_splits_interleaved_components() {
        let plan = ShardPlan::new(&interleaved(), 2).unwrap();
        assert_eq!(plan.n_shards(), 2);
        assert_eq!(plan.shards()[0].members(), &[0, 2, 4]);
        assert_eq!(plan.shards()[1].members(), &[1, 3]);
        // Labeled-first: globals 0 and 1 are labeled, one per shard.
        assert_eq!(plan.shards()[0].n_labeled(), 1);
        assert_eq!(plan.shards()[1].n_labeled(), 1);
        assert_eq!(plan.shard_of(4), Some(0));
        assert_eq!(plan.shard_of(3), Some(1));
        assert_eq!(plan.shard_of(9), None);
        assert_eq!(plan.shards()[1].local_index_of(3), Some(1));
        assert_eq!(plan.shards()[1].local_index_of(0), None);
        assert_eq!(plan.shards()[0].len(), 3);
        assert!(!plan.shards()[0].is_empty());
    }

    #[test]
    fn plan_validates_inputs() {
        assert!(matches!(
            ShardPlan::new(&interleaved(), 6),
            Err(Error::InvalidConfig { .. })
        ));
        assert!(matches!(
            ShardPlan::new(&Matrix::zeros(2, 3), 1),
            Err(Error::Graph(_))
        ));
    }

    #[test]
    fn row_extraction_is_bitwise() {
        let full = Matrix::from_fn(5, 2, |i, j| (i * 2 + j) as f64 * 0.1);
        let plan = ShardPlan::new(&interleaved(), 2).unwrap();
        let shard = &plan.shards()[1]; // members [1, 3]
        let sub = shard.extract_rows(&full);
        assert_eq!(sub.rows(), 2);
        for (local, &global) in shard.members().iter().enumerate() {
            for j in 0..2 {
                assert_eq!(sub.get(local, j).to_bits(), full.get(global, j).to_bits());
            }
        }
        let labeled = shard.extract_labeled_rows(&full, 1);
        assert_eq!(labeled.rows(), 1);
        assert_eq!(labeled.get(0, 0).to_bits(), full.get(1, 0).to_bits());
    }
}
