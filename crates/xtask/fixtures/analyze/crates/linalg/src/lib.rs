//! Analyze fixture: shape-contract violations — a missing annotation, a
//! malformed annotation, and a definite literal shape mismatch at a
//! `matmul` call site.

/// Matrix-producing pub fn with no `/// shape:` line (flagged: missing).
pub fn zeros(rows: usize, cols: usize) -> Matrix {
    Matrix::alloc(rows, cols)
}

/// shape: (rows, oops.bad)
pub fn filled(rows: usize, cols: usize) -> Matrix {
    Matrix::alloc(rows, cols)
}

/// shape: (2, 3)
pub fn left() -> Matrix {
    Matrix::alloc(2, 3)
}

/// shape: (4, 5)
pub fn right() -> Matrix {
    Matrix::alloc(4, 5)
}

/// shape: (2, 5)
pub fn bad_product() -> Matrix {
    let x = left();
    let y = right();
    let z = x.matmul(&y);
    z
}
