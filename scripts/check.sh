#!/usr/bin/env bash
# Full workspace gate: format check (when rustfmt is installed), the
# project's own static-analysis pass, release build, and the test suite
# with and without the runtime numeric sanitizer.
set -euo pipefail
cd "$(dirname "$0")/.."

if cargo fmt --version >/dev/null 2>&1; then
    echo "== cargo fmt --check"
    cargo fmt --all -- --check
else
    echo "== cargo fmt unavailable; skipping format check"
fi

echo "== gssl-xtask check"
cargo run -q -p gssl-xtask -- check

echo "== gssl-xtask analyze --json"
# Semantic passes (panic-reachability, shape contracts, concurrency, the
# perf pass: hot propagation, complexity contracts, alloc/bounds lints,
# and the determinism pass: float total-order, nondeterministic-source
# and chunk-reduction-order lints with `/// deterministic` contract
# propagation); exits 0 when clean, 1 on any finding not covered by
# crates/xtask/analyze.baseline (including stale entries), 2 on I/O
# errors. JSON goes to the log so CI can archive the machine-readable
# report; any nonzero exit fails the gate.
cargo run -q -p gssl-xtask -- analyze --json || {
    status=$?
    echo "gssl-xtask analyze failed with exit code ${status}" >&2
    exit "${status}"
}

echo "== cargo build --release"
cargo build --release

echo "== cargo test"
cargo test -q --workspace

echo "== cargo test --features strict-checks"
cargo test -q --features strict-checks

echo "== serve_demo smoke run"
cargo run --release -q -p gssl-bench --bin serve_demo >/dev/null

echo "== policy_demo smoke run"
# Exercises the SolverPolicy selector end to end; the binary exits
# nonzero when any backend's solve residual exceeds its threshold.
cargo run --release -q -p gssl-bench --bin policy_demo -- --json >/dev/null

echo "== threads_scaling bench (writes BENCH_parallel.json)"
# Times assembly / hard fit / soft fit / predict_batch at 1/2/4/8 workers
# and exits nonzero if any parallel output is not bit-identical to the
# 1-worker run. Timing is recorded, never gated: speedup depends on the
# host's core count (see host_parallelism in the JSON).
cargo run --release -q -p gssl-bench --bin threads_scaling -- --quiet

echo "== scale bench, ci sizes (writes BENCH_scale_ci.json)"
# Assembles kNN graphs through the spatial index and fits the hard
# criterion end to end at CI-sized point counts, then exits nonzero if
# the tree index disagrees with the brute-force oracle on a query
# subsample or the assembled graph differs across worker counts. The
# committed BENCH_scale.json comes from the full run
# (`--bin scale`, no flags: 10^4..10^6 points) and is not touched here.
cargo run --release -q -p gssl-bench --bin scale -- --ci --quiet
rm -f BENCH_scale_ci.json

echo "== solver crossover bench, ci sizes (writes BENCH_solver_ci.json)"
# Sweeps grid-Laplacian systems through every factorization backend
# (dense Cholesky, Jacobi-CG, block-Jacobi PCG, IC(0) PCG, AMG) and
# exits nonzero if any solve misses its residual gate or IC(0) needs
# more CG iterations than plain Jacobi — deterministic correctness
# properties, never timing. The committed BENCH_solver.json comes from
# the full run (`--bin solver_crossover`, no flags) and is not touched.
cargo run --release -q -p gssl-bench --bin solver_crossover -- --ci --quiet
rm -f BENCH_solver_ci.json

echo "== serve traffic bench, ci sizes (writes BENCH_serve_ci.json)"
# Replays a seeded open-loop Poisson arrival stream through the
# admission-controlled batch queue into the sharded engine and exits
# nonzero if sharded predictions are not bitwise-identical to the
# monolithic engine, any admitted query is lost or double-served, or the
# snapshot/restore roundtrip is not bitwise — agreement properties,
# never timing. The committed BENCH_serve.json comes from the full run
# (`--bin serve_traffic`, no flags) and is not touched here.
cargo run --release -q -p gssl-bench --bin serve_traffic -- --ci --quiet
rm -f BENCH_serve_ci.json

echo "All checks passed."
