//! Core dataset containers and the labeled/unlabeled arrangement used by
//! transductive learners.

use crate::error::{Error, Result};
use gssl_linalg::Matrix;

/// A supervised dataset: inputs (rows of a matrix), observed targets, and —
/// for synthetic data — the true regression function `q(X) = E[Y | X]`
/// evaluated at each input.
///
/// `true_probabilities` is what the paper's RMSE compares against (its
/// synthetic studies score `q̂` against `q(X)`, not against the noisy
/// labels).
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    inputs: Matrix,
    targets: Vec<f64>,
    true_probabilities: Option<Vec<f64>>,
}

impl Dataset {
    /// Creates a dataset from inputs (rows are samples) and targets.
    ///
    /// # Errors
    ///
    /// Returns [`Error::LengthMismatch`] when counts differ.
    pub fn new(inputs: Matrix, targets: Vec<f64>) -> Result<Self> {
        if inputs.rows() != targets.len() {
            return Err(Error::LengthMismatch {
                operation: "dataset",
                left: inputs.rows(),
                right: targets.len(),
            });
        }
        Ok(Dataset {
            inputs,
            targets,
            true_probabilities: None,
        })
    }

    /// Creates a dataset that also records the true regression function.
    ///
    /// # Errors
    ///
    /// Returns [`Error::LengthMismatch`] when any of the lengths differ.
    pub fn with_truth(inputs: Matrix, targets: Vec<f64>, truth: Vec<f64>) -> Result<Self> {
        if truth.len() != targets.len() {
            return Err(Error::LengthMismatch {
                operation: "dataset truth",
                left: targets.len(),
                right: truth.len(),
            });
        }
        let mut ds = Dataset::new(inputs, targets)?;
        ds.true_probabilities = Some(truth);
        Ok(ds)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// Returns `true` when the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Input dimension.
    pub fn dim(&self) -> usize {
        self.inputs.cols()
    }

    /// Borrows the input matrix (rows are samples).
    pub fn inputs(&self) -> &Matrix {
        &self.inputs
    }

    /// Borrows the observed targets.
    pub fn targets(&self) -> &[f64] {
        &self.targets
    }

    /// Borrows the true regression function values, when known.
    pub fn true_probabilities(&self) -> Option<&[f64]> {
        self.true_probabilities.as_deref()
    }

    /// Arranges the dataset for transduction: the samples at
    /// `labeled_indices` come first (their targets are revealed), all other
    /// samples follow (their targets are hidden).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `labeled_indices` is empty,
    /// contains duplicates, or references out-of-range samples.
    pub fn arrange(&self, labeled_indices: &[usize]) -> Result<SemiSupervisedData> {
        let total = self.len();
        if labeled_indices.is_empty() {
            return Err(Error::InvalidParameter {
                message: "at least one labeled index is required".to_owned(),
            });
        }
        let mut is_labeled = vec![false; total];
        for &i in labeled_indices {
            if i >= total {
                return Err(Error::InvalidParameter {
                    message: format!("labeled index {i} out of range for {total} samples"),
                });
            }
            if is_labeled[i] {
                return Err(Error::InvalidParameter {
                    message: format!("labeled index {i} appears twice"),
                });
            }
            is_labeled[i] = true;
        }

        let unlabeled: Vec<usize> = (0..total).filter(|&i| !is_labeled[i]).collect();
        let order: Vec<usize> = labeled_indices
            .iter()
            .copied()
            .chain(unlabeled.iter().copied())
            .collect();

        let mut inputs = Matrix::zeros(total, self.dim());
        for (row, &src) in order.iter().enumerate() {
            inputs.row_mut(row).copy_from_slice(self.inputs.row(src));
        }
        let labels: Vec<f64> = labeled_indices.iter().map(|&i| self.targets[i]).collect();
        let hidden_targets: Vec<f64> = unlabeled.iter().map(|&i| self.targets[i]).collect();
        let hidden_truth = self
            .true_probabilities
            .as_ref()
            .map(|q| unlabeled.iter().map(|&i| q[i]).collect());

        Ok(SemiSupervisedData {
            inputs,
            labels,
            hidden_targets,
            hidden_truth,
            original_order: order,
        })
    }

    /// Arranges the *first* `n_labeled` samples as labeled and the rest as
    /// unlabeled — the layout of the paper's Section II.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `n_labeled` is 0 or exceeds
    /// the sample count.
    pub fn arrange_prefix(&self, n_labeled: usize) -> Result<SemiSupervisedData> {
        if n_labeled == 0 || n_labeled > self.len() {
            return Err(Error::InvalidParameter {
                message: format!("n_labeled must be in 1..={}, got {n_labeled}", self.len()),
            });
        }
        let indices: Vec<usize> = (0..n_labeled).collect();
        self.arrange(&indices)
    }
}

/// A dataset arranged for transduction: labeled samples first.
#[derive(Debug, Clone, PartialEq)]
pub struct SemiSupervisedData {
    /// All inputs, labeled rows first (`n + m` rows total).
    pub inputs: Matrix,
    /// Observed responses for the first `labels.len()` rows.
    pub labels: Vec<f64>,
    /// The held-out responses of the unlabeled rows (for evaluation only).
    pub hidden_targets: Vec<f64>,
    /// The true regression values `q(X)` of the unlabeled rows, when known.
    pub hidden_truth: Option<Vec<f64>>,
    /// Mapping from arranged row index to index in the original dataset.
    pub original_order: Vec<usize>,
}

impl SemiSupervisedData {
    /// Number of labeled samples `n`.
    pub fn n_labeled(&self) -> usize {
        self.labels.len()
    }

    /// Number of unlabeled samples `m`.
    pub fn n_unlabeled(&self) -> usize {
        self.inputs.rows() - self.labels.len()
    }

    /// Hidden binary targets as booleans (`target > 0.5` is positive) —
    /// convenient for AUC evaluation.
    pub fn hidden_targets_binary(&self) -> Vec<bool> {
        self.hidden_targets.iter().map(|&y| y > 0.5).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let inputs = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]).unwrap();
        Dataset::with_truth(inputs, vec![0.0, 1.0, 0.0, 1.0], vec![0.1, 0.9, 0.2, 0.8]).unwrap()
    }

    #[test]
    fn construction_validates_lengths() {
        let inputs = Matrix::zeros(3, 2);
        assert!(Dataset::new(inputs.clone(), vec![1.0; 2]).is_err());
        assert!(Dataset::with_truth(inputs.clone(), vec![1.0; 3], vec![0.5; 2]).is_err());
        let ds = Dataset::new(inputs, vec![1.0; 3]).unwrap();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.dim(), 2);
        assert!(!ds.is_empty());
        assert!(ds.true_probabilities().is_none());
    }

    #[test]
    fn arrange_reorders_labeled_first() {
        let ds = toy();
        let ssl = ds.arrange(&[2, 0]).unwrap();
        assert_eq!(ssl.n_labeled(), 2);
        assert_eq!(ssl.n_unlabeled(), 2);
        // Row 0 = original 2, row 1 = original 0, rows 2-3 = originals 1, 3.
        assert_eq!(ssl.inputs.row(0), &[2.0]);
        assert_eq!(ssl.inputs.row(1), &[0.0]);
        assert_eq!(ssl.inputs.row(2), &[1.0]);
        assert_eq!(ssl.inputs.row(3), &[3.0]);
        assert_eq!(ssl.labels, vec![0.0, 0.0]);
        assert_eq!(ssl.hidden_targets, vec![1.0, 1.0]);
        assert_eq!(ssl.hidden_truth.as_deref(), Some(&[0.9, 0.8][..]));
        assert_eq!(ssl.original_order, vec![2, 0, 1, 3]);
    }

    #[test]
    fn arrange_prefix_matches_paper_layout() {
        let ds = toy();
        let ssl = ds.arrange_prefix(3).unwrap();
        assert_eq!(ssl.labels, vec![0.0, 1.0, 0.0]);
        assert_eq!(ssl.hidden_targets, vec![1.0]);
        assert_eq!(ssl.inputs.row(0), &[0.0]);
        assert_eq!(ssl.inputs.row(3), &[3.0]);
    }

    #[test]
    fn arrange_validates_indices() {
        let ds = toy();
        assert!(ds.arrange(&[]).is_err());
        assert!(ds.arrange(&[9]).is_err());
        assert!(ds.arrange(&[1, 1]).is_err());
        assert!(ds.arrange_prefix(0).is_err());
        assert!(ds.arrange_prefix(5).is_err());
    }

    #[test]
    fn binary_view_thresholds_targets() {
        let ds = toy();
        let ssl = ds.arrange_prefix(2).unwrap();
        assert_eq!(ssl.hidden_targets_binary(), vec![false, true]);
    }

    #[test]
    fn fully_labeled_arrangement_is_allowed() {
        let ds = toy();
        let ssl = ds.arrange_prefix(4).unwrap();
        assert_eq!(ssl.n_unlabeled(), 0);
        assert!(ssl.hidden_targets.is_empty());
    }
}
