//! Special functions needed by the inference module: log-gamma, the
//! regularized incomplete beta function, and the error function.
//!
//! Implemented from the classic Lanczos / continued-fraction recipes
//! (Numerical Recipes §6) since no special-function crate is on the
//! approved dependency list. Accuracy is ~1e-10 over the ranges the
//! inference module uses, which the tests check against known values.

use gssl_linalg::float::{is_exactly_one, is_exactly_zero};

/// Natural log of the gamma function, via the Lanczos approximation
/// (g = 7, n = 9 coefficients).
///
/// # Panics
///
/// Panics when `x <= 0` (the real-valued log-gamma is undefined there).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    #[allow(clippy::excessive_precision)]
    const COEFFICIENTS: [f64; 9] = [
        0.99999999999980993,
        676.5203681218851,
        -1259.1392167224028,
        771.32342877765313,
        -176.61502916214059,
        12.507343278686905,
        -0.13857109526572012,
        9.9843695780195716e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps the Lanczos series in its sweet spot.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut sum = COEFFICIENTS[0];
    for (i, &c) in COEFFICIENTS.iter().enumerate().skip(1) {
        sum += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + sum.ln()
}

/// Regularized incomplete beta function `I_x(a, b)` by the Lentz
/// continued fraction.
///
/// # Panics
///
/// Panics when `a <= 0`, `b <= 0`, or `x` is outside `[0, 1]`.
pub fn regularized_incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "beta parameters must be positive");
    assert!((0.0..=1.0).contains(&x), "x must be in [0, 1], got {x}");
    if is_exactly_zero(x) {
        return 0.0;
    }
    if is_exactly_one(x) {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // The symmetry relation keeps the continued fraction convergent; the
    // normalizing front is symmetric in (a, x) ↔ (b, 1−x), so both
    // branches are evaluated directly (no recursion).
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_continued_fraction(a, b, x) / a
    } else {
        1.0 - front * beta_continued_fraction(b, a, 1.0 - x) / b
    }
}

fn beta_continued_fraction(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITERATIONS: usize = 300;
    const EPSILON: f64 = 1e-15;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut result = d;
    for m in 1..=MAX_ITERATIONS {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let numerator = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + numerator * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + numerator / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        result *= d * c;
        // Odd step.
        let numerator = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + numerator * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + numerator / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        result *= delta;
        if (delta - 1.0).abs() < EPSILON {
            break;
        }
    }
    result
}

/// The error function `erf(x)`, via Abramowitz & Stegun 7.1.26-style
/// rational approximation refined with one series term — absolute error
/// below 1.5e-7, adequate for p-values.
pub fn erf(x: f64) -> f64 {
    if is_exactly_zero(x) {
        return 0.0;
    }
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    // A&S formula 7.1.26.
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal cumulative distribution function.
pub fn standard_normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Two-sided p-value of a Student-t statistic with `dof` degrees of
/// freedom: `P(|T| >= |t|)`.
///
/// # Panics
///
/// Panics when `dof <= 0`.
pub fn student_t_two_sided_p(t: f64, dof: f64) -> f64 {
    assert!(dof > 0.0, "degrees of freedom must be positive");
    let x = dof / (dof + t * t);
    regularized_incomplete_beta(dof / 2.0, 0.5, x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let factorials = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (n, &fact) in factorials.iter().enumerate() {
            let expected: f64 = fact;
            assert!(
                (ln_gamma((n + 1) as f64) - expected.ln()).abs() < 1e-10,
                "Γ({}) mismatch",
                n + 1
            );
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π.
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
        // Γ(3/2) = √π / 2.
        assert!((ln_gamma(1.5) - (std::f64::consts::PI.sqrt() / 2.0).ln()).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "ln_gamma requires x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }

    #[test]
    fn incomplete_beta_known_values() {
        // I_x(1, 1) = x (uniform CDF).
        for &x in &[0.0, 0.25, 0.5, 0.9, 1.0] {
            assert!((regularized_incomplete_beta(1.0, 1.0, x) - x).abs() < 1e-12);
        }
        // I_x(1, b) = 1 - (1-x)^b.
        let x = 0.3;
        let b = 4.0;
        let expected = 1.0 - (1.0f64 - x).powf(b);
        assert!((regularized_incomplete_beta(1.0, b, x) - expected).abs() < 1e-10);
        // Symmetry: I_x(a, b) = 1 - I_{1-x}(b, a).
        let (a, b, x) = (2.5, 3.5, 0.4);
        let lhs = regularized_incomplete_beta(a, b, x);
        let rhs = 1.0 - regularized_incomplete_beta(b, a, 1.0 - x);
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn erf_known_values() {
        assert_eq!(erf(0.0), 0.0);
        assert!((erf(1.0) - 0.8427007929497149).abs() < 2e-7);
        assert!((erf(2.0) - 0.9953222650189527).abs() < 2e-7);
        assert!((erf(-1.0) + erf(1.0)).abs() < 1e-15); // odd function
        assert!(erf(6.0) > 0.999999);
    }

    #[test]
    fn normal_cdf_quantiles() {
        assert!((standard_normal_cdf(0.0) - 0.5).abs() < 1e-12);
        assert!((standard_normal_cdf(1.959964) - 0.975).abs() < 1e-4);
        assert!((standard_normal_cdf(-1.959964) - 0.025).abs() < 1e-4);
    }

    #[test]
    fn student_t_matches_known_quantiles() {
        // For dof = 10, t = 2.228 is the 97.5% quantile => two-sided p = 0.05.
        assert!((student_t_two_sided_p(2.228, 10.0) - 0.05).abs() < 1e-3);
        // t = 0 gives p = 1.
        assert!((student_t_two_sided_p(0.0, 5.0) - 1.0).abs() < 1e-12);
        // Huge statistic gives tiny p.
        assert!(student_t_two_sided_p(50.0, 20.0) < 1e-10);
        // With dof -> infinity the t converges to the normal: at 1.96,
        // p ≈ 0.05.
        assert!((student_t_two_sided_p(1.96, 100_000.0) - 0.05).abs() < 2e-3);
    }
}
