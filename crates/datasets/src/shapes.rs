//! Procedural renderer for the synthetic COIL substitute.
//!
//! The real Columbia Object Image Library photographs 24 physical objects
//! on a turntable at 72 viewing angles. We do not ship that data; instead
//! each "object" here is a parametric 2-D shape rendered into a 16×16
//! grayscale image (the paper also uses 16×16 pixel inputs) and "rotated"
//! by rotating the shape before rasterization. Anisotropic shapes make the
//! rotation orbit a genuine 1-D manifold in 256-dimensional pixel space —
//! the structural property graph-based SSL exploits on the real COIL.

use crate::error::{Error, Result};
use gssl_stats::dist::Normal;
use rand::Rng;

/// Side length of a rendered image.
pub const IMAGE_SIZE: usize = 16;

/// Number of pixels per image (the input dimension).
pub const PIXEL_COUNT: usize = IMAGE_SIZE * IMAGE_SIZE;

/// The six shape families, one per COIL class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShapeFamily {
    /// Superellipse `|u/a|^p + |v/b|^p ≤ 1` with family-specific exponent.
    Superellipse,
    /// Two overlapping disks (a "peanut").
    Peanut,
    /// Axis-aligned rectangle (rotates to any orientation).
    Rectangle,
    /// Isoceles triangle.
    Triangle,
    /// Five-pointed star `r(θ) = s(1 + q·cos 5θ)`.
    Star,
    /// A plus-shaped cross.
    Cross,
}

impl ShapeFamily {
    /// All families in class order.
    pub fn all() -> [ShapeFamily; 6] {
        [
            ShapeFamily::Superellipse,
            ShapeFamily::Peanut,
            ShapeFamily::Rectangle,
            ShapeFamily::Triangle,
            ShapeFamily::Star,
            ShapeFamily::Cross,
        ]
    }
}

/// A fully parameterized object: family plus continuous shape parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShapeSpec {
    /// Shape family (determines the class).
    pub family: ShapeFamily,
    /// Overall size in `(0, 1]` (object-frame units; the image spans
    /// `[-1, 1]²`).
    pub scale: f64,
    /// Height/width anisotropy in `(0, 1]`; values below 1 make rotation
    /// visible.
    pub aspect: f64,
    /// Family-specific parameter (superellipse exponent, peanut separation,
    /// star pointiness, cross arm width, …).
    pub param: f64,
    /// Base brightness in `(0, 1]`.
    pub intensity: f64,
}

impl ShapeSpec {
    /// Validates the parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when any parameter leaves its
    /// documented range.
    pub fn validate(&self) -> Result<()> {
        let ok = (0.0..=1.0).contains(&self.scale)
            && self.scale > 0.0
            && (0.0..=1.0).contains(&self.aspect)
            && self.aspect > 0.0
            && self.param.is_finite()
            && self.param > 0.0
            && (0.0..=1.0).contains(&self.intensity)
            && self.intensity > 0.0;
        if ok {
            Ok(())
        } else {
            Err(Error::InvalidParameter {
                message: format!("shape parameters out of range: {self:?}"),
            })
        }
    }

    /// Inside test in the object frame (no rotation), coordinates in
    /// `[-1, 1]`.
    fn contains(&self, u: f64, v: f64) -> bool {
        let a = self.scale;
        let b = self.scale * self.aspect;
        match self.family {
            ShapeFamily::Superellipse => {
                let p = self.param;
                (u / a).abs().powf(p) + (v / b).abs().powf(p) <= 1.0
            }
            ShapeFamily::Peanut => {
                let sep = self.param * a;
                let r = a * 0.55;
                let d1 = (u - sep).powi(2) + (v / self.aspect.max(0.2)).powi(2);
                let d2 = (u + sep).powi(2) + (v / self.aspect.max(0.2)).powi(2);
                d1 <= r * r || d2 <= r * r
            }
            ShapeFamily::Rectangle => u.abs() <= a && v.abs() <= b,
            ShapeFamily::Triangle => {
                // Vertices (0, b), (-a, -b), (a, -b).
                if v < -b || v > b {
                    return false;
                }
                let half_width_at_v = a * (b - v) / (2.0 * b);
                u.abs() <= half_width_at_v
            }
            ShapeFamily::Star => {
                let theta = v.atan2(u / self.aspect.max(0.2));
                let radius = ((u / self.aspect.max(0.2)).powi(2) + v * v).sqrt();
                let boundary = a * (1.0 + self.param * (5.0 * theta).cos()) / (1.0 + self.param);
                radius <= boundary
            }
            ShapeFamily::Cross => {
                let w = self.param * a;
                (u.abs() <= w && v.abs() <= a) || (v.abs() <= w * self.aspect && u.abs() <= a)
            }
        }
    }

    /// Renders the shape rotated by `angle` radians into a `PIXEL_COUNT`
    /// grayscale vector with values in `[0, 1]`.
    ///
    /// Pixels are supersampled 2×2 for soft edges; `noise_std` adds
    /// clamped Gaussian pixel noise (sensor noise in the real COIL).
    ///
    /// # Errors
    ///
    /// * Propagates [`ShapeSpec::validate`] errors.
    /// * Returns [`Error::InvalidParameter`] when `noise_std < 0`.
    pub fn render(&self, angle: f64, noise_std: f64, rng: &mut impl Rng) -> Result<Vec<f64>> {
        self.validate()?;
        if noise_std < 0.0 {
            return Err(Error::InvalidParameter {
                message: format!("noise_std must be nonnegative, got {noise_std}"),
            });
        }
        let noise = Normal::new(0.0, noise_std).map_err(crate::error::Error::from)?;
        let (sin, cos) = angle.sin_cos();
        let mut pixels = Vec::with_capacity(PIXEL_COUNT);
        let step = 2.0 / IMAGE_SIZE as f64;
        // 2x2 subsample offsets within a pixel.
        let offsets = [(0.25, 0.25), (0.75, 0.25), (0.25, 0.75), (0.75, 0.75)];
        for py in 0..IMAGE_SIZE {
            for px in 0..IMAGE_SIZE {
                let mut coverage = 0.0;
                let mut shade = 0.0;
                for &(ox, oy) in &offsets {
                    let x = -1.0 + (px as f64 + ox) * step;
                    let y = -1.0 + (py as f64 + oy) * step;
                    // Rotate the sampling point into the object frame.
                    let u = cos * x + sin * y;
                    let v = -sin * x + cos * y;
                    if self.contains(u, v) {
                        coverage += 0.25;
                        // Gentle radial shading so interiors carry signal.
                        let r2 = u * u + v * v;
                        shade += 0.25 * (1.0 - 0.35 * r2);
                    }
                }
                let mut value = self.intensity * shade.min(coverage);
                if noise_std > 0.0 {
                    value += noise.sample(rng);
                }
                pixels.push(value.clamp(0.0, 1.0));
            }
        }
        Ok(pixels)
    }
}

/// The 24 objects of the synthetic library: four variants per family.
///
/// Variants differ in scale, aspect, family parameter and brightness, like
/// the four distinct physical objects per class in the COIL benchmark's
/// 6-class grouping.
pub fn object_catalog() -> Vec<ShapeSpec> {
    let mut objects = Vec::with_capacity(24);
    for (f, family) in ShapeFamily::all().into_iter().enumerate() {
        for variant in 0..4usize {
            let t = variant as f64 / 3.0; // 0, 1/3, 2/3, 1
            let param = match family {
                ShapeFamily::Superellipse => 0.8 + 2.4 * t, // exponent 0.8..3.2
                ShapeFamily::Peanut => 0.35 + 0.3 * t,      // disk separation
                ShapeFamily::Rectangle => 1.0,              // unused
                ShapeFamily::Triangle => 1.0,               // unused
                ShapeFamily::Star => 0.25 + 0.35 * t,       // pointiness
                ShapeFamily::Cross => 0.2 + 0.2 * t,        // arm width
            };
            objects.push(ShapeSpec {
                family,
                scale: 0.62 + 0.09 * t,
                aspect: 0.45 + 0.14 * t + 0.02 * f as f64,
                param,
                intensity: 0.70 + 0.10 * t,
            });
        }
    }
    objects
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    fn sample_spec(family: ShapeFamily) -> ShapeSpec {
        ShapeSpec {
            family,
            scale: 0.7,
            aspect: 0.5,
            param: 0.9,
            intensity: 0.8,
        }
    }

    #[test]
    fn catalog_has_24_valid_objects_in_class_order() {
        let catalog = object_catalog();
        assert_eq!(catalog.len(), 24);
        for (i, spec) in catalog.iter().enumerate() {
            spec.validate().unwrap();
            assert_eq!(spec.family, ShapeFamily::all()[i / 4]);
        }
    }

    #[test]
    fn render_produces_normalized_pixels() {
        for family in ShapeFamily::all() {
            let img = sample_spec(family).render(0.3, 0.02, &mut rng()).unwrap();
            assert_eq!(img.len(), PIXEL_COUNT);
            for &p in &img {
                assert!((0.0..=1.0).contains(&p));
            }
            // Shape occupies some but not all of the frame.
            let lit = img.iter().filter(|&&p| p > 0.1).count();
            assert!(lit > 8, "{family:?} renders almost empty ({lit} lit)");
            assert!(lit < PIXEL_COUNT, "{family:?} floods the frame");
        }
    }

    #[test]
    fn rotation_changes_the_image() {
        for family in ShapeFamily::all() {
            let spec = sample_spec(family);
            let a = spec.render(0.0, 0.0, &mut rng()).unwrap();
            let b = spec
                .render(std::f64::consts::FRAC_PI_3, 0.0, &mut rng())
                .unwrap();
            let diff: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
            assert!(diff > 0.5, "{family:?} is rotation-invariant (diff {diff})");
        }
    }

    #[test]
    fn nearby_angles_give_nearby_images() {
        // The rotation orbit is a smooth manifold: 5° steps move the image
        // much less than 90° steps.
        let spec = sample_spec(ShapeFamily::Rectangle);
        let base = spec.render(0.0, 0.0, &mut rng()).unwrap();
        let near = spec.render(5f64.to_radians(), 0.0, &mut rng()).unwrap();
        let far = spec.render(90f64.to_radians(), 0.0, &mut rng()).unwrap();
        let d_near: f64 = base.iter().zip(&near).map(|(a, b)| (a - b).powi(2)).sum();
        let d_far: f64 = base.iter().zip(&far).map(|(a, b)| (a - b).powi(2)).sum();
        assert!(
            d_near < d_far / 2.0,
            "manifold not smooth: near {d_near}, far {d_far}"
        );
    }

    #[test]
    fn full_turn_returns_to_start() {
        let spec = sample_spec(ShapeFamily::Star);
        let a = spec.render(0.1, 0.0, &mut rng()).unwrap();
        let b = spec
            .render(0.1 + std::f64::consts::TAU, 0.0, &mut rng())
            .unwrap();
        let diff: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff < 1e-9);
    }

    #[test]
    fn render_is_deterministic_without_noise() {
        let spec = sample_spec(ShapeFamily::Cross);
        let a = spec.render(1.0, 0.0, &mut rng()).unwrap();
        let b = spec.render(1.0, 0.0, &mut rng()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn noise_perturbs_but_stays_clamped() {
        let spec = sample_spec(ShapeFamily::Triangle);
        let clean = spec.render(0.5, 0.0, &mut rng()).unwrap();
        let noisy = spec.render(0.5, 0.1, &mut rng()).unwrap();
        assert_ne!(clean, noisy);
        for &p in &noisy {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let mut spec = sample_spec(ShapeFamily::Rectangle);
        spec.scale = 0.0;
        assert!(spec.validate().is_err());
        spec.scale = 0.5;
        spec.intensity = 1.5;
        assert!(spec.validate().is_err());
        spec.intensity = 0.5;
        spec.param = -1.0;
        assert!(spec.validate().is_err());
        let good = sample_spec(ShapeFamily::Rectangle);
        assert!(good.render(0.0, -0.1, &mut rng()).is_err());
    }

    #[test]
    fn distinct_objects_render_distinct_images() {
        let catalog = object_catalog();
        let mut images: Vec<Vec<f64>> = Vec::new();
        for spec in catalog.iter().take(8) {
            images.push(spec.render(0.0, 0.0, &mut rng()).unwrap());
        }
        for i in 0..images.len() {
            for j in (i + 1)..images.len() {
                let diff: f64 = images[i]
                    .iter()
                    .zip(&images[j])
                    .map(|(a, b)| (a - b).abs())
                    .sum();
                assert!(diff > 0.1, "objects {i} and {j} are identical");
            }
        }
    }
}
