//! Timings of graph construction: kernel evaluation, affinity matrices,
//! bandwidth rules and sparse graph builders.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gssl_datasets::synthetic::{paper_dataset, PaperModel};
use gssl_graph::{
    affinity::{affinity_matrix, pairwise_squared_distances},
    bandwidth::{median_heuristic, paper_rate},
    epsilon_graph, knn_graph, laplacian, Kernel, LaplacianKind, Symmetrization,
};
use gssl_linalg::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn sample_points(count: usize) -> Matrix {
    let mut rng = StdRng::seed_from_u64(2);
    paper_dataset(PaperModel::Linear, count, &mut rng)
        .expect("generation")
        .inputs()
        .clone()
}

fn bench_affinity_by_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("affinity_300pts_by_kernel");
    group.sample_size(20);
    let points = sample_points(300);
    for kernel in Kernel::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(kernel),
            &kernel,
            |b, &kernel| {
                b.iter(|| affinity_matrix(&points, kernel, 0.5).expect("affinity"));
            },
        );
    }
    group.finish();
}

fn bench_affinity_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("affinity_scaling_gaussian");
    group.sample_size(10);
    for &count in &[100usize, 300, 600] {
        let points = sample_points(count);
        group.bench_with_input(BenchmarkId::from_parameter(count), &points, |b, pts| {
            b.iter(|| affinity_matrix(pts, Kernel::Gaussian, 0.5).expect("affinity"));
        });
    }
    group.finish();
}

fn bench_bandwidth_rules(c: &mut Criterion) {
    let mut group = c.benchmark_group("bandwidth_rules_300pts");
    group.sample_size(20);
    let points = sample_points(300);
    group.bench_function("median_heuristic", |b| {
        b.iter(|| median_heuristic(&points).expect("median"));
    });
    group.bench_function("paper_rate", |b| {
        b.iter(|| paper_rate(300, 5).expect("rate"));
    });
    group.bench_function("pairwise_distances", |b| {
        b.iter(|| pairwise_squared_distances(&points).expect("distances"));
    });
    group.finish();
}

fn bench_sparse_builders(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_graphs_300pts");
    group.sample_size(10);
    let points = sample_points(300);
    group.bench_function("knn_k10_union", |b| {
        b.iter(|| {
            knn_graph(&points, 10, Kernel::Gaussian, 0.5, Symmetrization::Union).expect("knn graph")
        });
    });
    group.bench_function("epsilon_0p5", |b| {
        b.iter(|| epsilon_graph(&points, 0.5, Kernel::Gaussian, 0.5).expect("epsilon graph"));
    });
    group.finish();
}

fn bench_laplacians(c: &mut Criterion) {
    let mut group = c.benchmark_group("laplacian_300pts");
    group.sample_size(20);
    let points = sample_points(300);
    let w = affinity_matrix(&points, Kernel::Gaussian, 0.5).expect("affinity");
    for kind in [
        LaplacianKind::Unnormalized,
        LaplacianKind::Symmetric,
        LaplacianKind::RandomWalk,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind:?}")),
            &kind,
            |b, &kind| {
                b.iter(|| laplacian(&w, kind).expect("laplacian"));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_affinity_by_kernel,
    bench_affinity_scaling,
    bench_bandwidth_rules,
    bench_sparse_builders,
    bench_laplacians
);
criterion_main!(benches);
