//! End-to-end self-test of the workspace checker: the seeded fixture tree
//! must be flagged with exactly the expected violations, and the real
//! workspace must come back clean. Running this under `cargo test` keeps
//! `gssl-xtask check` honest in both directions — a rule that stops
//! firing breaks the fixture expectations, and a regression in the tree
//! breaks the clean check.

use gssl_xtask::rules::Rule;
use gssl_xtask::{check_workspace, count_rule};
use std::path::PathBuf;

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("bad")
}

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
}

#[test]
fn fixture_tree_is_flagged() {
    let report = check_workspace(&fixture_root()).expect("fixture tree is readable");
    assert!(!report.is_clean());
    let dump = || format!("{:#?}", report.violations);

    // Missing `#![forbid(unsafe_code)]` and `#![deny(missing_docs)]`.
    assert_eq!(count_rule(&report, Rule::RootAttrs), 2, "{}", dump());
    // `pub fn undocumented`.
    assert_eq!(count_rule(&report, Rule::MissingDoc), 1, "{}", dump());
    // `v.unwrap()` in library code.
    assert_eq!(count_rule(&report, Rule::NoPanic), 1, "{}", dump());
    // `x == 0.0` (the `x != 1.0` site carries an inline marker, so it is
    // reported as allow_unlisted, not float_eq).
    assert_eq!(count_rule(&report, Rule::FloatEq), 1, "{}", dump());
    // Missing `#[non_exhaustive]` plus one undocumented variant.
    assert_eq!(count_rule(&report, Rule::ErrorEnum), 2, "{}", dump());
    // Inline marker with no allowlist registration.
    assert_eq!(count_rule(&report, Rule::AllowUnlisted), 1, "{}", dump());
    // One stale entry, one unknown rule key.
    assert_eq!(count_rule(&report, Rule::AllowStale), 2, "{}", dump());

    assert_eq!(report.violations.len(), 10, "{}", dump());
}

#[test]
fn fixture_test_code_is_exempt() {
    let report = check_workspace(&fixture_root()).expect("fixture tree is readable");
    // The `#[cfg(test)]` module in the fixture repeats the unwrap and the
    // float comparisons; none of those lines (>= 30) may be reported.
    assert!(
        report
            .violations
            .iter()
            .all(|v| !v.file.ends_with("demo/src/lib.rs") || v.line < 30),
        "{:#?}",
        report.violations
    );
}

#[test]
fn real_workspace_is_clean() {
    let report = check_workspace(&workspace_root()).expect("workspace is readable");
    assert!(
        report.is_clean(),
        "gssl-xtask check found violations in the real tree:\n{:#?}",
        report.violations
    );
    assert!(report.files_scanned > 50);
}
