//! Spectral-methods integration: the unsupervised view of the cluster
//! assumption that motivates graph-based SSL.

use gssl_datasets::synthetic::{gaussian_blobs, two_moons};
use gssl_graph::{
    affinity::affinity_matrix,
    spectral::{fiedler_vector, spectral_clusters, spectral_embedding},
    Kernel,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn fiedler_vector_separates_two_moons() {
    let mut rng = StdRng::seed_from_u64(3);
    let ds = two_moons(80, 0.04, &mut rng).expect("generation");
    let w = affinity_matrix(ds.inputs(), Kernel::Gaussian, 0.25).expect("affinity");
    let v = fiedler_vector(&w).expect("fiedler");
    // Thresholding at 0 should align with the moon labels (up to a global
    // sign flip).
    let predicted: Vec<bool> = v.iter().map(|x| x >= 0.0).collect();
    let truth: Vec<bool> = ds.targets().iter().map(|&y| y > 0.5).collect();
    let agree = predicted.iter().zip(&truth).filter(|(p, t)| p == t).count();
    let accuracy = agree.max(truth.len() - agree) as f64 / truth.len() as f64;
    assert!(
        accuracy > 0.9,
        "Fiedler cut should recover the moons, accuracy {accuracy}"
    );
}

#[test]
fn spectral_clustering_recovers_three_blobs() {
    let mut rng = StdRng::seed_from_u64(8);
    let centers = vec![vec![0.0, 0.0], vec![8.0, 0.0], vec![4.0, 7.0]];
    let ds = gaussian_blobs(25, &centers, 0.5, &mut rng).expect("generation");
    let w = affinity_matrix(ds.inputs(), Kernel::Gaussian, 1.5).expect("affinity");
    let labels = spectral_clusters(&w, 3).expect("clustering");

    // Every blob should map to a single, distinct cluster id.
    for blob in 0..3 {
        let ids: std::collections::HashSet<usize> =
            (0..25).map(|i| labels[blob * 25 + i]).collect();
        assert_eq!(ids.len(), 1, "blob {blob} split across clusters {ids:?}");
    }
    let firsts: std::collections::HashSet<usize> = (0..3).map(|b| labels[b * 25]).collect();
    assert_eq!(firsts.len(), 3, "blobs merged: {firsts:?}");
}

#[test]
fn embedding_dimensions_are_orthogonal() {
    let mut rng = StdRng::seed_from_u64(12);
    let ds = two_moons(40, 0.05, &mut rng).expect("generation");
    let w = affinity_matrix(ds.inputs(), Kernel::Gaussian, 0.3).expect("affinity");
    let e = spectral_embedding(&w, 3).expect("embedding");
    assert_eq!(e.shape(), (40, 3));
    for a in 0..3 {
        for b in (a + 1)..3 {
            let dot: f64 = (0..40).map(|i| e.get(i, a) * e.get(i, b)).sum();
            assert!(
                dot.abs() < 1e-8,
                "columns {a} and {b} not orthogonal: {dot}"
            );
        }
    }
}
