//! The paper's stated future work, made executable: "investigate the
//! theoretical properties of other indicators of prediction accuracy such
//! as AUC and MCC". This experiment tracks AUC and MCC of the hard and
//! soft criteria (binary decisions at 0.5) as the labeled sample grows —
//! the empirical counterpart of the open asymptotic question.

use gssl::{HardCriterion, Problem, SoftCriterion};
use gssl_bench::runner::CliArgs;
use gssl_datasets::synthetic::{paper_dataset, PaperModel, PAPER_DIM};
use gssl_graph::{affinity::affinity_matrix, bandwidth::paper_rate, Kernel};
use gssl_stats::metrics::ConfusionMatrix;
use gssl_stats::roc::auc;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct MetricAverages {
    auc: f64,
    mcc: f64,
    accuracy: f64,
}

fn evaluate(
    n: usize,
    m: usize,
    lambda: f64,
    reps: u64,
    seed: u64,
) -> Result<MetricAverages, Box<dyn std::error::Error>> {
    let mut auc_sum = 0.0;
    let mut mcc_sum = 0.0;
    let mut acc_sum = 0.0;
    let mut informative = 0usize;
    for rep in 0..reps {
        let mut rng = StdRng::seed_from_u64(seed + rep);
        let ds = paper_dataset(PaperModel::Linear, n + m, &mut rng)?;
        let ssl = ds.arrange_prefix(n)?;
        let truth = ssl.hidden_targets_binary();
        if truth.iter().all(|&t| t) || truth.iter().all(|&t| !t) {
            continue; // AUC undefined; skip this repetition
        }
        let h = paper_rate(n, PAPER_DIM)?;
        let w = affinity_matrix(&ssl.inputs, Kernel::Gaussian, h)?;
        let problem = Problem::new(w, ssl.labels.clone())?;
        let scores = if lambda == 0.0 {
            HardCriterion::new().fit(&problem)?
        } else {
            SoftCriterion::new(lambda)?.fit(&problem)?
        };
        auc_sum += auc(scores.unlabeled(), &truth)?;
        let cm = ConfusionMatrix::from_scores(scores.unlabeled(), &truth, 0.5)?;
        mcc_sum += cm.mcc().unwrap_or(0.0);
        acc_sum += cm.accuracy();
        informative += 1;
    }
    if informative == 0 {
        return Err("every repetition was single-class".into());
    }
    let count = informative as f64;
    Ok(MetricAverages {
        auc: auc_sum / count,
        mcc: mcc_sum / count,
        accuracy: acc_sum / count,
    })
}

fn main() {
    let args = match CliArgs::parse(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    let reps = args.repetitions.unwrap_or(25) as u64;
    let seed = args.seed.unwrap_or(86420);
    let m = 30;
    let n_grid: &[usize] = if args.full {
        &[30, 100, 300, 800, 1500]
    } else {
        &[30, 100, 300]
    };

    println!("== Future work: AUC / MCC asymptotics (Model 1, m = {m}, {reps} reps) ==\n");
    println!(
        "{:>6} {:>8} {:>10} {:>10} {:>10}",
        "n", "lambda", "AUC", "MCC", "accuracy"
    );
    for &n in n_grid {
        for &lambda in &[0.0, 0.1, 5.0] {
            match evaluate(n, m, lambda, reps, seed) {
                Ok(metrics) => println!(
                    "{n:>6} {lambda:>8} {:>10.4} {:>10.4} {:>10.4}",
                    metrics.auc, metrics.mcc, metrics.accuracy
                ),
                Err(error) => {
                    eprintln!("cell n = {n}, lambda = {lambda} failed: {error}");
                    std::process::exit(1);
                }
            }
        }
        println!();
    }
    println!("Expected pattern: every indicator improves with n. Thresholded");
    println!("metrics (MCC, accuracy) collapse at large λ because the soft scores");
    println!("compress toward the label mean and the 0.5 threshold goes blind,");
    println!("while AUC — which only sees the ranking — degrades far less. This");
    println!("gap is exactly why the paper flags AUC/MCC asymptotics as open.");
}
