//! Deprecated compatibility wrapper over the unified [`Problem`] API.
//!
//! Sparse graphs used to live in a parallel `SparseProblem` type with its
//! own matrix-free solvers. That split is gone: [`Problem::new`] accepts a
//! [`CsrMatrix`] directly (via [`crate::Weights`]), and the criteria route
//! sparse systems through the shared [`gssl_linalg::Factorization`]
//! backend layer. This module keeps the old surface alive — every method
//! delegates to the unified path — so downstream code migrates on its own
//! schedule.

#![allow(deprecated)]

use crate::error::{Error, Result};
use crate::hard::{HardCriterion, HardSolver};
use crate::problem::{Problem, Scores};
use crate::propagation::LabelPropagation;
use crate::soft::SoftCriterion;
use gssl_linalg::{CgOptions, CsrMatrix, SolverPolicy};

/// A transductive problem over a sparse symmetric affinity graph.
///
/// Deprecated: construct a [`Problem`] from the [`CsrMatrix`] instead and
/// fit any criterion on it — the solvers pick sparse-aware backends
/// automatically.
///
/// ```
/// use gssl::SparseProblem;
/// use gssl_linalg::CsrMatrix;
/// # #[allow(deprecated)]
/// # fn main() -> Result<(), gssl::Error> {
/// // Chain 0 - 1 - 2 with unit weights; vertex 0 labeled 1.
/// let w = CsrMatrix::from_triplets(3, 3, &[
///     (0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0), (2, 1, 1.0),
/// ]).expect("valid triplets");
/// let problem = SparseProblem::new(w, vec![1.0])?;
/// let scores = problem.solve_hard(&Default::default())?;
/// // Everything connects to the single label: all scores are 1.
/// assert!((scores.unlabeled()[0] - 1.0).abs() < 1e-8);
/// # Ok(())
/// # }
/// ```
#[deprecated(
    since = "0.5.0",
    note = "construct `Problem::new(csr_matrix, labels)` and fit criteria directly; the unified solver stack handles sparse graphs"
)]
#[derive(Debug, Clone, PartialEq)]
pub struct SparseProblem {
    inner: Problem,
}

impl SparseProblem {
    /// Creates a sparse problem.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidProblem`] when the matrix is not square or
    /// not symmetric, weights are negative/non-finite, or the label count
    /// is empty or exceeds the vertex count.
    pub fn new(weights: CsrMatrix, labels: Vec<f64>) -> Result<Self> {
        Ok(SparseProblem {
            inner: Problem::new(weights, labels)?,
        })
    }

    /// Number of labeled vertices `n`.
    pub fn n_labeled(&self) -> usize {
        self.inner.n_labeled()
    }

    /// Number of unlabeled vertices `m`.
    pub fn n_unlabeled(&self) -> usize {
        self.inner.n_unlabeled()
    }

    /// Borrows the sparse affinity matrix.
    /// shape: (total, total)
    pub fn weights(&self) -> &CsrMatrix {
        self.inner
            .weights()
            .as_sparse()
            .expect("SparseProblem always holds CSR weights") // lint: allow(no_panic)
    }

    /// Borrows the observed labels.
    pub fn labels(&self) -> &[f64] {
        self.inner.labels()
    }

    /// Borrows the unified problem this wrapper delegates to.
    pub fn as_problem(&self) -> &Problem {
        &self.inner
    }

    /// Unwraps into the unified [`Problem`] — the migration exit.
    pub fn into_problem(self) -> Problem {
        self.inner
    }

    /// Checks that every unlabeled vertex reaches a labeled vertex through
    /// positive-weight edges (BFS over the sparse structure).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnanchoredUnlabeled`] naming the first stranded
    /// vertex.
    pub fn require_anchored(&self) -> Result<()> {
        self.inner.require_anchored(0.0)
    }

    /// Solves the hard criterion with the iterative sparse backend
    /// (Jacobi-preconditioned conjugate gradient on the CSR system).
    ///
    /// # Errors
    ///
    /// * [`Error::UnanchoredUnlabeled`] when the system is singular.
    /// * [`Error::Linalg`] when CG exhausts its budget.
    pub fn solve_hard(&self, options: &CgOptions) -> Result<Scores> {
        HardCriterion::new()
            .solver(HardSolver::ConjugateGradient(options.clone()))
            .fit(&self.inner)
    }

    /// Solves the **soft criterion** `(V + λL) f = (Y; 0)` with the
    /// iterative sparse backend (`λ > 0`; use [`SparseProblem::solve_hard`]
    /// for the λ = 0 limit).
    ///
    /// `V + λL` is symmetric positive definite exactly when every
    /// component of the graph contains a labeled vertex — the same
    /// anchoring condition as the hard criterion.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidParameter`] when `lambda <= 0` or not finite.
    /// * [`Error::UnanchoredUnlabeled`] when a component has no label.
    /// * [`Error::Linalg`] when CG exhausts its budget.
    pub fn solve_soft(&self, lambda: f64, options: &CgOptions) -> Result<Scores> {
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(Error::InvalidParameter {
                message: format!(
                    "sparse soft criterion requires finite lambda > 0, got {lambda}; \
                     use solve_hard for lambda = 0"
                ),
            });
        }
        SoftCriterion::new(lambda)?
            .policy(SolverPolicy::with_cg(options.clone()))
            .fit(&self.inner)
    }

    /// Solves the hard criterion by Jacobi label propagation over the
    /// sparse structure, returning scores and sweep count.
    ///
    /// # Errors
    ///
    /// * [`Error::UnanchoredUnlabeled`] when the system is singular.
    /// * [`Error::Linalg`] wrapping `NotConverged` on budget exhaustion.
    pub fn propagate(&self, max_sweeps: usize, tolerance: f64) -> Result<(Scores, usize)> {
        // Preserve the historical default budget (0 meant 100 000 sweeps).
        let budget = if max_sweeps == 0 { 100_000 } else { max_sweeps };
        LabelPropagation::new()
            .max_iterations(budget)
            .tolerance(tolerance)
            .fit_with_iterations(&self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hard::HardCriterion;
    use crate::problem::Problem;

    fn random_sparse_graph(total: usize, seed: u64) -> CsrMatrix {
        // Deterministic pseudo-random sparse symmetric graph with a
        // guaranteed spanning path (so everything is anchored).
        let mut state = seed.max(1);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let mut triplets = Vec::new();
        for i in 0..total - 1 {
            let w = 0.2 + 0.8 * next();
            triplets.push((i, i + 1, w));
            triplets.push((i + 1, i, w));
        }
        for i in 0..total {
            for j in (i + 2)..total {
                if next() < 0.2 {
                    let w = next();
                    triplets.push((i, j, w));
                    triplets.push((j, i, w));
                }
            }
        }
        CsrMatrix::from_triplets(total, total, &triplets).expect("valid triplets")
    }

    #[test]
    fn matches_dense_solution() {
        // The behavioral claim lives on the unified API: a CSR-backed
        // `Problem` fits through the same criteria as its dense twin.
        let sparse = random_sparse_graph(25, 3);
        let labels = vec![1.0, 0.0, 1.0, 0.0, 0.5];
        let sparse_problem = Problem::new(sparse.clone(), labels.clone()).unwrap();
        let dense_problem = Problem::new(sparse.to_dense(), labels).unwrap();

        let dense = HardCriterion::new().fit(&dense_problem).unwrap();
        let cg = HardCriterion::new()
            .solver(crate::hard::HardSolver::ConjugateGradient(CgOptions {
                tolerance: 1e-12,
                ..CgOptions::default()
            }))
            .fit(&sparse_problem)
            .unwrap();
        let (prop, sweeps) = LabelPropagation::new()
            .max_iterations(100_000)
            .tolerance(1e-12)
            .fit_with_iterations(&sparse_problem)
            .unwrap();
        assert!(sweeps > 0);
        for ((d, c), p) in dense
            .unlabeled()
            .iter()
            .zip(cg.unlabeled())
            .zip(prop.unlabeled())
        {
            assert!((d - c).abs() < 1e-7, "CG diverges: {d} vs {c}");
            assert!((d - p).abs() < 1e-7, "propagation diverges: {d} vs {p}");
        }
    }

    #[test]
    fn sparse_soft_matches_dense_soft() {
        let sparse = random_sparse_graph(20, 7);
        let labels = vec![1.0, 0.0, 0.7];
        let sparse_problem = Problem::new(sparse.clone(), labels.clone()).unwrap();
        let dense_problem = Problem::new(sparse.to_dense(), labels).unwrap();
        for &lambda in &[0.05, 0.5, 2.0] {
            let dense = crate::soft::SoftCriterion::new(lambda)
                .unwrap()
                .fit(&dense_problem)
                .unwrap();
            let via_cg = crate::soft::SoftCriterion::new(lambda)
                .unwrap()
                .policy(SolverPolicy::with_cg(CgOptions {
                    tolerance: 1e-12,
                    max_iterations: 10_000,
                }))
                .fit(&sparse_problem)
                .unwrap();
            for (a, b) in dense.all().iter().zip(via_cg.all()) {
                assert!((a - b).abs() < 1e-7, "lambda {lambda}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn sparse_soft_validates_lambda_and_anchoring() {
        // The wrapper's λ validation is part of the deprecated surface
        // being kept alive, so this test exercises it directly.
        let p = SparseProblem::new(random_sparse_graph(8, 2), vec![1.0]).unwrap();
        assert!(p.solve_soft(0.0, &CgOptions::default()).is_err());
        assert!(p.solve_soft(-1.0, &CgOptions::default()).is_err());
        assert!(p.solve_soft(f64::NAN, &CgOptions::default()).is_err());
        let disconnected = CsrMatrix::from_triplets(3, 3, &[(0, 1, 1.0), (1, 0, 1.0)]).unwrap();
        let stranded = SparseProblem::new(disconnected, vec![1.0]).unwrap();
        assert!(matches!(
            stranded.solve_soft(0.5, &CgOptions::default()),
            Err(Error::UnanchoredUnlabeled { .. })
        ));
    }

    #[test]
    fn validation_rules() {
        let w = random_sparse_graph(5, 1);
        assert!(SparseProblem::new(w.clone(), vec![]).is_err());
        assert!(SparseProblem::new(w.clone(), vec![1.0; 6]).is_err());
        assert!(SparseProblem::new(w.clone(), vec![f64::NAN]).is_err());
        let rect = CsrMatrix::zeros(2, 3);
        assert!(SparseProblem::new(rect, vec![1.0]).is_err());
        let asym = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0)]).unwrap();
        assert!(SparseProblem::new(asym, vec![1.0]).is_err());
        let negative = CsrMatrix::from_triplets(2, 2, &[(0, 1, -1.0), (1, 0, -1.0)]).unwrap();
        assert!(SparseProblem::new(negative, vec![1.0]).is_err());
    }

    #[test]
    fn detects_stranded_components() {
        // Two disconnected edges; only the first component is labeled.
        let w =
            CsrMatrix::from_triplets(4, 4, &[(0, 1, 1.0), (1, 0, 1.0), (2, 3, 1.0), (3, 2, 1.0)])
                .unwrap();
        let p = Problem::new(w, vec![1.0]).unwrap();
        assert_eq!(
            p.require_anchored(0.0),
            Err(Error::UnanchoredUnlabeled { unlabeled_index: 1 })
        );
        assert!(HardCriterion::new()
            .solver(crate::hard::HardSolver::ConjugateGradient(
                CgOptions::default()
            ))
            .fit(&p)
            .is_err());
        assert!(LabelPropagation::new()
            .max_iterations(100)
            .fit_with_iterations(&p)
            .is_err());
    }

    #[test]
    fn maximum_principle_on_sparse_graphs() {
        let p = Problem::new(random_sparse_graph(40, 9), vec![0.0, 1.0, 0.3]).unwrap();
        let scores = HardCriterion::new()
            .solver(crate::hard::HardSolver::ConjugateGradient(
                CgOptions::default(),
            ))
            .fit(&p)
            .unwrap();
        for &s in scores.unlabeled() {
            assert!((-1e-9..=1.0 + 1e-9).contains(&s));
        }
    }

    #[test]
    fn fully_labeled_short_circuits() {
        let w = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 1.0)]).unwrap();
        let p = Problem::new(w, vec![0.2, 0.9]).unwrap();
        let scores = HardCriterion::new()
            .solver(crate::hard::HardSolver::ConjugateGradient(
                CgOptions::default(),
            ))
            .fit(&p)
            .unwrap();
        assert_eq!(scores.all(), &[0.2, 0.9]);
        let (prop, sweeps) = LabelPropagation::new()
            .max_iterations(10)
            .tolerance(1e-8)
            .fit_with_iterations(&p)
            .unwrap();
        assert_eq!(sweeps, 0);
        assert!(prop.unlabeled().is_empty());
    }

    #[test]
    fn propagation_budget_is_enforced() {
        let p = Problem::new(random_sparse_graph(30, 5), vec![1.0, 0.0]).unwrap();
        assert!(matches!(
            LabelPropagation::new()
                .max_iterations(1)
                .tolerance(1e-15)
                .fit_with_iterations(&p),
            Err(Error::Linalg(gssl_linalg::Error::NotConverged { .. }))
        ));
    }

    #[test]
    fn accessors() {
        let w = random_sparse_graph(10, 2);
        let p = SparseProblem::new(w.clone(), vec![1.0, 0.0, 1.0]).unwrap();
        assert_eq!(p.n_labeled(), 3);
        assert_eq!(p.n_unlabeled(), 7);
        assert_eq!(p.labels(), &[1.0, 0.0, 1.0]);
        assert_eq!(p.weights().nnz(), w.nnz());
        assert!(p.as_problem().weights().is_sparse());
        assert!(p.clone().into_problem().weights().is_sparse());
    }

    #[test]
    fn dense_matrix_equivalence_on_grid_graph() {
        // 1-D grid graph, labeled at both ends: harmonic solution is the
        // linear interpolation — check it exactly.
        let total = 12;
        let mut triplets = Vec::new();
        // Arrange labels first: vertices 0 and 1 are the two ends.
        // Path: 0 - 2 - 3 - ... - 11 - 1.
        let path: Vec<usize> = std::iter::once(0)
            .chain(2..total)
            .chain(std::iter::once(1))
            .collect();
        for pair in path.windows(2) {
            triplets.push((pair[0], pair[1], 1.0));
            triplets.push((pair[1], pair[0], 1.0));
        }
        let w = CsrMatrix::from_triplets(total, total, &triplets).unwrap();
        let p = Problem::new(w, vec![0.0, 1.0]).unwrap();
        let scores = HardCriterion::new()
            .solver(crate::hard::HardSolver::ConjugateGradient(CgOptions {
                tolerance: 1e-13,
                ..CgOptions::default()
            }))
            .fit(&p)
            .unwrap();
        // Vertex path[k] should score k / (total - 1).
        let f = scores.all();
        for (k, &v) in path.iter().enumerate() {
            let expected = k as f64 / (total - 1) as f64;
            assert!(
                (f[v] - expected).abs() < 1e-8,
                "grid vertex {v}: {} vs {expected}",
                f[v]
            );
        }
    }
}
