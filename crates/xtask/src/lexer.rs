//! A real token lexer for Rust sources.
//!
//! PR 1's checker reduced files to blanked lines and matched substrings;
//! that is too coarse for call graphs and shape contracts, and it
//! mis-handled two edge cases (nested `#[cfg(test)]` modules and the
//! `'\''` char literal). This module lexes a file into a flat token
//! stream — identifiers, literals, punctuation, doc/line comments — with
//! line/column positions, while *also* producing the blanked per-line
//! view the PR-1 rules still consume. One pass, one source of truth.
//!
//! The lexer understands: line and (nested) block comments, doc comments
//! (`///`, `//!`), string literals with escapes spanning lines, raw
//! strings `r#"…"#` with any hash count, byte and byte-raw strings, raw
//! identifiers (`r#match`), char literals (including `'\''`) versus
//! lifetimes, decimal/hex/octal/binary numbers with suffixes and
//! exponents. It does not build an AST — the item extractor
//! ([`crate::items`]) layers approximate structure on top.

/// Kinds of tokens the lexer produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (raw identifiers are normalized: `r#match`
    /// lexes as `match`).
    Ident,
    /// A lifetime such as `'a` (text excludes the quote).
    Lifetime,
    /// Integer literal (any base, with optional suffix).
    Int,
    /// Float literal (decimal point and/or exponent, optional suffix).
    Float,
    /// Any string-family literal: `"…"`, `r#"…"#`, `b"…"`, `br"…"`.
    /// The text is the literal body (delimiters stripped).
    Str,
    /// Char or byte-char literal; text is the body between quotes.
    Char,
    /// One punctuation character (`{`, `[`, `/`, `-`, …).
    Punct,
    /// A doc comment line (`///` or `//!`); text is the body.
    Doc,
    /// A non-doc comment (`//` or `/* … */`); text is the body.
    Comment,
}

/// One lexed token with its position.
#[derive(Debug, Clone)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// Token text (see [`TokKind`] for what is included).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: usize,
}

impl Tok {
    /// Whether this token is the punctuation character `c`.
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// Whether this token is the identifier/keyword `word`.
    #[must_use]
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokKind::Ident && self.text == word
    }
}

/// One analyzed source line (the PR-1 view, kept for the line rules).
#[derive(Debug, Clone)]
pub struct Line {
    /// Original text, unmodified.
    pub raw: String,
    /// The line with string/char-literal bodies and all comments replaced
    /// by spaces; token searches run against this.
    pub code: String,
    /// Text of the trailing `//` line comment (without the slashes),
    /// empty when there is none (doc comments included, matching PR 1).
    pub comment: String,
    /// Whether the line is (part of) a doc comment (`///` or `//!`).
    pub is_doc: bool,
}

/// Lexer output: the token stream plus the blanked per-line view.
#[derive(Debug)]
pub struct LexOutput {
    /// All tokens in source order.
    pub tokens: Vec<Tok>,
    /// Per-line blanked view.
    pub lines: Vec<Line>,
}

/// Internal cursor over the source characters.
struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    /// Blanked code text of the line under construction.
    code: String,
    /// Trailing line-comment text of the line under construction.
    comment: String,
    /// Whether the current line's visible content is a doc comment.
    is_doc: bool,
    /// Finished blanked lines.
    lines: Vec<(String, String, bool)>,
}

impl Cursor {
    fn new(source: &str) -> Self {
        Cursor {
            chars: source.chars().collect(),
            pos: 0,
            line: 1,
            code: String::new(),
            comment: String::new(),
            is_doc: false,
            lines: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consumes one char, echoing `echo` into the blanked line (newlines
    /// finish the current line regardless of `echo`).
    fn bump(&mut self, echo: Option<char>) {
        let c = self.chars[self.pos];
        self.pos += 1;
        if c == '\n' {
            self.flush_line();
        } else if let Some(e) = echo {
            self.code.push(e);
        }
    }

    fn flush_line(&mut self) {
        self.lines.push((
            std::mem::take(&mut self.code),
            std::mem::take(&mut self.comment),
            self.is_doc,
        ));
        self.is_doc = false;
        self.line += 1;
    }

    fn at_end(&self) -> bool {
        self.pos >= self.chars.len()
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Counts `#` characters at `from` and requires a following `"` for a raw
/// string opener; returns the hash count.
fn raw_opener_hashes(cur: &Cursor, from: usize) -> Option<usize> {
    let mut hashes = 0;
    while cur.peek(from + hashes) == Some('#') {
        hashes += 1;
    }
    (cur.peek(from + hashes) == Some('"')).then_some(hashes)
}

/// Lexes a whole source file.
#[must_use]
pub fn lex(source: &str) -> LexOutput {
    let mut cur = Cursor::new(source);
    let mut tokens = Vec::new();

    while !cur.at_end() {
        let c = cur.chars[cur.pos];
        let line = cur.line;
        match c {
            '\n' | ' ' | '\t' | '\r' => cur.bump(if c == '\n' { None } else { Some(c) }),
            '/' if cur.peek(1) == Some('/') => lex_line_comment(&mut cur, &mut tokens),
            '/' if cur.peek(1) == Some('*') => lex_block_comment(&mut cur, &mut tokens),
            '"' => lex_string(&mut cur, &mut tokens, 0, false),
            'r' if raw_opener_hashes(&cur, 1).is_some() => {
                let hashes = raw_opener_hashes(&cur, 1).unwrap_or(0);
                cur.bump(Some('"')); // the `r`, echoed as the open marker
                for _ in 0..hashes {
                    cur.bump(Some(' '));
                }
                lex_string(&mut cur, &mut tokens, hashes, true);
            }
            'r' if cur.peek(1) == Some('#')
                && cur.peek(2).is_some_and(is_ident_start)
                && raw_opener_hashes(&cur, 1).is_none() =>
            {
                // Raw identifier r#ident: skip the prefix, lex the ident.
                cur.bump(Some('r'));
                cur.bump(Some('#'));
                lex_ident(&mut cur, &mut tokens);
            }
            'b' if cur.peek(1) == Some('"') => {
                cur.bump(Some('b'));
                lex_string(&mut cur, &mut tokens, 0, false);
            }
            'b' if cur.peek(1) == Some('r') && raw_opener_hashes(&cur, 2).is_some() => {
                let hashes = raw_opener_hashes(&cur, 2).unwrap_or(0);
                cur.bump(Some('b'));
                cur.bump(Some('"'));
                for _ in 0..hashes {
                    cur.bump(Some(' '));
                }
                lex_string(&mut cur, &mut tokens, hashes, true);
            }
            'b' if cur.peek(1) == Some('\'') => {
                cur.bump(Some('b'));
                lex_char_or_lifetime(&mut cur, &mut tokens);
            }
            '\'' => lex_char_or_lifetime(&mut cur, &mut tokens),
            _ if c.is_ascii_digit() => lex_number(&mut cur, &mut tokens),
            _ if is_ident_start(c) => lex_ident(&mut cur, &mut tokens),
            _ => {
                tokens.push(Tok {
                    kind: TokKind::Punct,
                    text: c.to_string(),
                    line,
                });
                cur.bump(Some(c));
            }
        }
    }
    cur.flush_line();

    let lines = source
        .lines()
        .zip(cur.lines)
        .map(|(raw, (code, comment, is_doc))| Line {
            raw: raw.to_owned(),
            code,
            comment,
            is_doc,
        })
        .collect();
    LexOutput { tokens, lines }
}

fn lex_line_comment(cur: &mut Cursor, tokens: &mut Vec<Tok>) {
    let line = cur.line;
    cur.bump(Some(' ')); // `/`
    cur.bump(Some(' ')); // `/`
    let doc = matches!(cur.peek(0), Some('/') | Some('!'));
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if c == '\n' {
            break;
        }
        text.push(c);
        cur.bump(None);
    }
    // PR-1 semantics: `comment` is everything after the first two slashes,
    // and a line is "doc" when the doc marker is its first visible code.
    if doc && cur.code.trim().is_empty() {
        cur.is_doc = true;
    }
    cur.comment = text.clone();
    // Strip the leading doc marker from the stored token text.
    let body = text
        .strip_prefix('/')
        .or_else(|| text.strip_prefix('!'))
        .unwrap_or(&text);
    tokens.push(Tok {
        kind: if doc { TokKind::Doc } else { TokKind::Comment },
        text: body.trim().to_owned(),
        line,
    });
}

fn lex_block_comment(cur: &mut Cursor, tokens: &mut Vec<Tok>) {
    let line = cur.line;
    cur.bump(Some(' ')); // `/`
    cur.bump(Some(' ')); // `*`
    let mut depth = 1usize;
    let mut text = String::new();
    while !cur.at_end() && depth > 0 {
        if cur.peek(0) == Some('*') && cur.peek(1) == Some('/') {
            depth -= 1;
            cur.bump(Some(' '));
            cur.bump(Some(' '));
        } else if cur.peek(0) == Some('/') && cur.peek(1) == Some('*') {
            depth += 1;
            cur.bump(Some(' '));
            cur.bump(Some(' '));
        } else {
            let c = cur.chars[cur.pos];
            if c != '\n' {
                text.push(c);
            }
            cur.bump(Some(' '));
        }
    }
    tokens.push(Tok {
        kind: TokKind::Comment,
        text: text.trim().to_owned(),
        line,
    });
}

/// Lexes a string body starting at the opening `"`; `hashes` is the raw
/// marker count and `is_raw` disables escape processing (the raw opener's
/// `r#…#` prefix has already been consumed and echoed by the caller).
fn lex_string(cur: &mut Cursor, tokens: &mut Vec<Tok>, hashes: usize, is_raw: bool) {
    let line = cur.line;
    if is_raw {
        cur.bump(None); // the quote char itself; marker already echoed
    } else {
        cur.bump(Some('"')); // opening quote of an ordinary string
    }
    let mut text = String::new();
    while !cur.at_end() {
        let c = cur.chars[cur.pos];
        if c == '\\' && !is_raw {
            text.push(c);
            cur.bump(Some(' '));
            if !cur.at_end() {
                text.push(cur.chars[cur.pos]);
                cur.bump(Some(' '));
            }
        } else if c == '"' && (0..hashes).all(|k| cur.peek(1 + k) == Some('#')) {
            cur.bump(Some('"'));
            for _ in 0..hashes {
                cur.bump(Some(' '));
            }
            break;
        } else {
            text.push(c);
            cur.bump(Some(' '));
        }
    }
    tokens.push(Tok {
        kind: TokKind::Str,
        text,
        line,
    });
}

/// Lexes either a lifetime (`'a`) or a char literal (`'x'`, `'\n'`,
/// `'\''`). Unlike the PR-1 scanner this handles `'\''` exactly: the
/// escaped quote is part of the body, the literal ends at the *next*
/// quote.
fn lex_char_or_lifetime(cur: &mut Cursor, tokens: &mut Vec<Tok>) {
    let line = cur.line;
    let next = cur.peek(1);
    let literal = next == Some('\\') || cur.peek(2) == Some('\'');
    if literal {
        cur.bump(Some('\'')); // opening quote
        let mut text = String::new();
        if cur.peek(0) == Some('\\') {
            text.push('\\');
            cur.bump(Some(' '));
            if !cur.at_end() {
                text.push(cur.chars[cur.pos]);
                cur.bump(Some(' '));
            }
        } else if !cur.at_end() {
            text.push(cur.chars[cur.pos]);
            cur.bump(Some(' '));
        }
        while !cur.at_end() && cur.peek(0) != Some('\'') && cur.peek(0) != Some('\n') {
            text.push(cur.chars[cur.pos]);
            cur.bump(Some(' '));
        }
        if cur.peek(0) == Some('\'') {
            cur.bump(Some('\''));
        }
        tokens.push(Tok {
            kind: TokKind::Char,
            text,
            line,
        });
    } else {
        // Lifetime: quote plus identifier characters.
        cur.bump(Some('\''));
        let mut text = String::new();
        while let Some(c) = cur.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            text.push(c);
            cur.bump(Some(c));
        }
        tokens.push(Tok {
            kind: TokKind::Lifetime,
            text,
            line,
        });
    }
}

fn lex_number(cur: &mut Cursor, tokens: &mut Vec<Tok>) {
    let line = cur.line;
    let mut text = String::new();
    let mut is_float = false;

    let radix_prefix = cur.peek(0) == Some('0')
        && matches!(
            cur.peek(1),
            Some('x') | Some('X') | Some('o') | Some('O') | Some('b') | Some('B')
        );
    if radix_prefix {
        for _ in 0..2 {
            text.push(cur.chars[cur.pos]);
            let c = cur.chars[cur.pos];
            cur.bump(Some(c));
        }
        while let Some(c) = cur.peek(0) {
            if c.is_ascii_hexdigit() || c == '_' {
                text.push(c);
                cur.bump(Some(c));
            } else {
                break;
            }
        }
    } else {
        while let Some(c) = cur.peek(0) {
            if c.is_ascii_digit() || c == '_' {
                text.push(c);
                cur.bump(Some(c));
            } else {
                break;
            }
        }
        // A decimal point belongs to the number only when not starting a
        // range (`1..n`) or a method call (`1.max(2)`).
        if cur.peek(0) == Some('.')
            && cur.peek(1) != Some('.')
            && !cur.peek(1).is_some_and(is_ident_start)
        {
            is_float = true;
            text.push('.');
            cur.bump(Some('.'));
            while let Some(c) = cur.peek(0) {
                if c.is_ascii_digit() || c == '_' {
                    text.push(c);
                    cur.bump(Some(c));
                } else {
                    break;
                }
            }
        }
        // Exponent.
        if matches!(cur.peek(0), Some('e') | Some('E')) {
            let sign = matches!(cur.peek(1), Some('+') | Some('-'));
            let digit_at = if sign { 2 } else { 1 };
            if cur.peek(digit_at).is_some_and(|c| c.is_ascii_digit()) {
                is_float = true;
                for _ in 0..digit_at {
                    let c = cur.chars[cur.pos];
                    text.push(c);
                    cur.bump(Some(c));
                }
                while let Some(c) = cur.peek(0) {
                    if c.is_ascii_digit() || c == '_' {
                        text.push(c);
                        cur.bump(Some(c));
                    } else {
                        break;
                    }
                }
            }
        }
    }
    // Type suffix (`f64`, `u32`, `usize`, …).
    let mut suffix = String::new();
    while let Some(c) = cur.peek(0) {
        if is_ident_continue(c) {
            suffix.push(c);
            cur.bump(Some(c));
        } else {
            break;
        }
    }
    if suffix.starts_with('f') {
        is_float = true;
    }
    text.push_str(&suffix);
    tokens.push(Tok {
        kind: if is_float {
            TokKind::Float
        } else {
            TokKind::Int
        },
        text,
        line,
    });
}

fn lex_ident(cur: &mut Cursor, tokens: &mut Vec<Tok>) {
    let line = cur.line;
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if is_ident_continue(c) {
            text.push(c);
            cur.bump(Some(c));
        } else {
            break;
        }
    }
    tokens.push(Tok {
        kind: TokKind::Ident,
        text,
        line,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_numbers_puncts() {
        let toks = kinds("let x2 = 4.5e-3f64 + 0x1F;");
        assert_eq!(toks[0], (TokKind::Ident, "let".into()));
        assert_eq!(toks[1], (TokKind::Ident, "x2".into()));
        assert_eq!(toks[2], (TokKind::Punct, "=".into()));
        assert_eq!(toks[3], (TokKind::Float, "4.5e-3f64".into()));
        assert_eq!(toks[4], (TokKind::Punct, "+".into()));
        assert_eq!(toks[5], (TokKind::Int, "0x1F".into()));
    }

    #[test]
    fn int_method_call_and_range_are_not_floats() {
        let toks = kinds("0.max(1); 1..n; 2.0_f64;");
        assert_eq!(toks[0], (TokKind::Int, "0".into()));
        assert!(toks.iter().any(|t| t == &(TokKind::Ident, "max".into())));
        assert!(toks.contains(&(TokKind::Int, "1".into())));
        assert!(toks.contains(&(TokKind::Float, "2.0_f64".into())));
    }

    #[test]
    fn raw_strings_with_hashes_and_quotes() {
        let toks = kinds(r####"let s = r##"a "# b"##; f();"####);
        assert!(toks.contains(&(TokKind::Str, "a \"# b".into())));
        assert!(toks.iter().any(|t| t == &(TokKind::Ident, "f".into())));
    }

    #[test]
    fn raw_identifier_is_normalized() {
        let toks = kinds("let r#type = 1;");
        assert!(toks.contains(&(TokKind::Ident, "type".into())));
    }

    #[test]
    fn escaped_quote_char_literal() {
        // `'\''` broke the PR-1 scanner; the lexer must consume all four
        // characters as one Char token.
        let toks = kinds(r"let c = '\''; let d = 'x';");
        assert_eq!(
            toks.iter().filter(|t| t.0 == TokKind::Char).count(),
            2,
            "{toks:?}"
        );
        assert!(toks.contains(&(TokKind::Char, "\\'".into())));
        assert!(toks.contains(&(TokKind::Char, "x".into())));
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let toks = kinds("fn f<'a>(x: &'a str) {}");
        assert!(toks.contains(&(TokKind::Lifetime, "a".into())));
        assert!(toks.iter().all(|t| t.0 != TokKind::Char));
    }

    #[test]
    fn doc_and_plain_comments() {
        let out = lex("/// doc text\n// plain\nfn x() {} /* block */");
        assert_eq!(out.tokens[0].kind, TokKind::Doc);
        assert_eq!(out.tokens[0].text, "doc text");
        assert_eq!(out.tokens[1].kind, TokKind::Comment);
        assert!(out.lines[0].is_doc);
        assert!(!out.lines[1].is_doc);
        assert!(out
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Comment && t.text == "block"));
    }

    #[test]
    fn blanked_lines_match_pr1_semantics() {
        let out = lex(r#"let x = "panic!(no)"; call(); // lint: allow(no_panic)"#);
        assert!(!out.lines[0].code.contains("panic!"));
        assert!(out.lines[0].code.contains("call()"));
        assert!(out.lines[0].comment.contains("lint: allow(no_panic)"));
    }

    #[test]
    fn multiline_string_and_block_comment_blanking() {
        let out = lex("let s = \"a\nb.unwrap()\nc\"; let t = 1;\n/* x\n.unwrap()\n*/ ok();");
        assert!(!out.lines[1].code.contains("unwrap"));
        assert!(out.lines[2].code.contains("let t"));
        assert!(!out.lines[4].code.contains("unwrap"));
        assert!(out.lines[5].code.contains("ok()"));
    }

    #[test]
    fn multiline_raw_string_blanking() {
        let out = lex("let s = r#\"first\n.unwrap() inside\nlast\"#; tail();");
        assert!(!out.lines[1].code.contains("unwrap"));
        assert!(out.lines[2].code.contains("tail()"));
        let strs: Vec<_> = lex("let s = r#\"first\n.unwrap()\nlast\"#;")
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Str)
            .collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].text.contains(".unwrap()"));
    }

    #[test]
    fn token_lines_are_recorded() {
        let out = lex("a\nbb\n  ccc");
        let lines: Vec<usize> = out.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }
}
