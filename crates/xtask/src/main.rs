//! Command-line entry point for the workspace checker/analyzer.
//!
//! ```text
//! cargo run -p gssl-xtask -- check   [--root PATH] [--json]
//! cargo run -p gssl-xtask -- analyze [--root PATH] [--json]
//! ```
//!
//! Exit codes (both subcommands): `0` clean, `1` violations/findings,
//! `2` usage or I/O error. `--json` emits one JSON object on stdout with
//! the same fields for both passes, so CI can diff them uniformly.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: gssl-xtask <check|analyze> [--root PATH] [--json]";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    if command != "check" && command != "analyze" {
        eprintln!("unknown command `{command}`\n{USAGE}");
        return ExitCode::from(2);
    }

    let mut root: Option<PathBuf> = None;
    let mut json = false;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--root" => match args.next() {
                Some(value) => root = Some(PathBuf::from(value)),
                None => {
                    eprintln!("--root requires a value\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--json" => json = true,
            other => {
                eprintln!("unknown flag `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    // Default root: the workspace containing this crate (compile-time
    // manifest dir), so the binary works from any current directory.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
    });

    if command == "check" {
        return run_check(&root, json);
    }
    run_analyze(&root, json)
}

/// Runs the PR-1 line-rule pass.
fn run_check(root: &PathBuf, json: bool) -> ExitCode {
    match gssl_xtask::check_workspace(root) {
        Ok(report) => {
            if json {
                println!("{}", gssl_xtask::analysis::check_json(&report));
                return if report.is_clean() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::from(1)
                };
            }
            for violation in &report.violations {
                println!("{violation}");
            }
            if report.is_clean() {
                println!(
                    "gssl-xtask check: {} files scanned, no violations",
                    report.files_scanned
                );
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "gssl-xtask check: {} violation(s) in {} files",
                    report.violations.len(),
                    report.files_scanned
                );
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("gssl-xtask check: cannot scan {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}

/// Runs the semantic analyze pass (panic-reachability, shape contracts,
/// concurrency lints, the perf pass, and the determinism pass).
fn run_analyze(root: &PathBuf, json: bool) -> ExitCode {
    match gssl_xtask::analysis::analyze_workspace(root) {
        Ok(report) => {
            if json {
                println!("{}", gssl_xtask::analysis::analyze_json(&report));
                return if report.is_clean() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::from(1)
                };
            }
            for finding in &report.findings {
                println!("{finding}");
            }
            if report.is_clean() {
                println!(
                    "gssl-xtask analyze: {} files analyzed, no findings ({} baselined)",
                    report.files_scanned, report.suppressed
                );
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "gssl-xtask analyze: {} finding(s) in {} files ({} baselined)",
                    report.findings.len(),
                    report.files_scanned,
                    report.suppressed
                );
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("gssl-xtask analyze: cannot analyze {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}
