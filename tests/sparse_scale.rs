//! Integration tests of the sparse, matrix-free solver path at sizes
//! where the dense path would allocate hundreds of MB — now expressed
//! through the unified `Problem` holding CSR weights.

use gssl::{HardCriterion, HardSolver, LabelPropagation, Problem};
use gssl_datasets::synthetic::two_moons;
use gssl_graph::{knn_graph, Kernel, Symmetrization};
use gssl_linalg::CgOptions;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn moons_sparse(total: usize, k: usize) -> (Problem, Vec<bool>) {
    let mut rng = StdRng::seed_from_u64(77);
    let ds = two_moons(total, 0.05, &mut rng).expect("generation");
    let ssl = ds.arrange(&[total / 4, 3 * total / 4]).expect("labels");
    let graph =
        knn_graph(&ssl.inputs, k, Kernel::Gaussian, 0.2, Symmetrization::Union).expect("knn graph");
    let truth = ssl.hidden_targets_binary();
    (
        Problem::new(graph, ssl.labels.clone()).expect("valid problem"),
        truth,
    )
}

fn cg_solver(options: CgOptions) -> HardCriterion {
    HardCriterion::new().solver(HardSolver::ConjugateGradient(options))
}

#[test]
fn sparse_cg_solves_large_two_moons() {
    let (problem, truth) = moons_sparse(2000, 10);
    let scores = cg_solver(CgOptions::default())
        .fit(&problem)
        .expect("cg solve");
    let accuracy = scores
        .unlabeled_predictions(0.5)
        .iter()
        .zip(&truth)
        .filter(|(p, t)| p == t)
        .count() as f64
        / truth.len() as f64;
    assert!(accuracy > 0.95, "accuracy only {accuracy}");
}

#[test]
fn sparse_propagation_agrees_with_cg_at_scale() {
    let (problem, _) = moons_sparse(1500, 10);
    let cg = cg_solver(CgOptions {
        tolerance: 1e-11,
        ..CgOptions::default()
    })
    .fit(&problem)
    .expect("cg solve");
    let (prop, sweeps) = LabelPropagation::new()
        .max_iterations(100_000)
        .tolerance(1e-11)
        .fit_with_iterations(&problem)
        .expect("propagation");
    assert!(sweeps > 1);
    let gap = cg
        .unlabeled()
        .iter()
        .zip(prop.unlabeled())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(gap < 1e-6, "solvers disagree by {gap}");
}

#[test]
fn sparse_and_dense_paths_agree_on_moderate_graph() {
    let (sparse_problem, _) = moons_sparse(300, 8);
    let dense_problem = Problem::new(
        sparse_problem.weights().to_dense(),
        sparse_problem.labels().to_vec(),
    )
    .expect("dense problem");
    let dense = HardCriterion::new()
        .fit(&dense_problem)
        .expect("dense solve");
    let sparse = cg_solver(CgOptions {
        tolerance: 1e-12,
        ..CgOptions::default()
    })
    .fit(&sparse_problem)
    .expect("sparse solve");
    let gap = dense
        .unlabeled()
        .iter()
        .zip(sparse.unlabeled())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(gap < 1e-7, "paths disagree by {gap}");
}

#[test]
fn sparse_scores_obey_maximum_principle() {
    let (problem, _) = moons_sparse(800, 12);
    let scores = cg_solver(CgOptions::default())
        .fit(&problem)
        .expect("solve");
    for &s in scores.unlabeled() {
        assert!((-1e-8..=1.0 + 1e-8).contains(&s), "score {s} out of range");
    }
}
