//! The unified factorization backend layer.
//!
//! Every solver in the workspace — the hard criterion's `D₂₂ − W₂₂`, the
//! soft criterion's `V + λL`, and the serving engine's cached systems —
//! reduces to "factor once, solve many". [`Factorization`] captures that
//! contract behind one object-safe trait, implemented by the dense direct
//! backends ([`Cholesky`], [`Lu`]), by [`PrecondCg`] — a preconditioned
//! conjugate-gradient backend that keeps sparse systems in CSR form and
//! pairs them with a pluggable [`crate::Preconditioner`] (Jacobi,
//! block-Jacobi, or incomplete Cholesky) — and by [`crate::AmgCg`], an
//! algebraic-multigrid V-cycle PCG for the largest graph Laplacians.
//! [`SolverPolicy`] picks among them from size, symmetry, nonzero density,
//! and bandwidth, so callers can stay representation-agnostic.

use crate::amg::{AmgCg, AmgOptions};
use crate::cg::{preconditioned_cg_with, CgOptions};
use crate::cholesky::Cholesky;
use crate::error::{Error, Result};
use crate::lu::Lu;
use crate::matrix::Matrix;
use crate::ops::LinearOperator;
use crate::precond::{Precond, PrecondKind, DEFAULT_BLOCK_DIM};
use crate::sparse::CsrMatrix;
use crate::strict;
use crate::vector::{dot_slices, Vector};
use gssl_runtime::Executor;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// A factored (or factor-free iterative) linear system `A x = b`, ready to
/// solve against many right-hand sides.
///
/// The trait is object-safe: downstream layers can hold a
/// `Box<dyn Factorization>` when the backend is chosen at runtime, though
/// most callers use the concrete [`SolverBackend`] enum.
pub trait Factorization {
    /// Dimension of the factored system.
    fn dim(&self) -> usize;

    /// Solves `A x = b` for a single right-hand side.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when `b.len() != dim()`, and
    /// backend-specific errors (e.g. [`Error::NotConverged`] from the
    /// iterative backend).
    /// shape: (b.len,)
    fn solve(&self, b: &Vector) -> Result<Vector>;

    /// Solves `A X = B` column by column against the same factorization.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when `b.rows() != dim()`, plus
    /// any per-column error from [`Factorization::solve`].
    /// shape: (b.rows, b.cols)
    fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(Error::DimensionMismatch {
                operation: "factorization solve_matrix",
                left: (n, n),
                right: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let x = self.solve(&b.col(j))?;
            for i in 0..n {
                out.set(i, j, x[i]);
            }
        }
        Ok(out)
    }

    /// Applies the *original* operator: computes `A x` from the stored
    /// factors (direct backends reconstruct it as `L(Lᵀx)` / `Pᵀ(L(Ux))`;
    /// the iterative backend applies the stored system exactly).
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when `x.len() != dim()`.
    /// shape: (x.len,)
    fn apply(&self, x: &Vector) -> Result<Vector>;

    /// Residual report `‖A x − b‖∞` for a candidate solution, computed
    /// through [`Factorization::apply`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when lengths disagree with
    /// `dim()`.
    fn residual(&self, x: &Vector, b: &Vector) -> Result<f64> {
        let n = self.dim();
        if b.len() != n {
            return Err(Error::DimensionMismatch {
                operation: "factorization residual",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        let ax = self.apply(x)?;
        let mut worst = 0.0f64;
        for (ai, bi) in ax.as_slice().iter().zip(b.as_slice()) {
            worst = worst.max((ai - bi).abs());
        }
        Ok(worst)
    }

    /// Inverse of the factored matrix, formed column by column.
    ///
    /// Direct backends pay `n` extra solves; the iterative backend pays `n`
    /// full CG runs — prefer [`Factorization::solve`] whenever only
    /// `A⁻¹ b` is needed.
    ///
    /// # Errors
    ///
    /// Propagates errors from the underlying solves.
    /// shape: (n, n)
    fn inverse(&self) -> Result<Matrix> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }

    /// Which concrete backend is behind this factorization.
    fn kind(&self) -> BackendKind;

    /// Structured summary of the factorization for logs and diagnostics.
    ///
    /// Iterative backends override this to also report the iteration count
    /// and final residual of their most recent solve.
    fn report(&self) -> FactorReport {
        FactorReport {
            backend: self.kind(),
            dim: self.dim(),
            iterations: None,
            final_residual: None,
        }
    }
}

/// The concrete backend a [`SolverPolicy`] selected (or a caller forced).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Dense Cholesky (`A = LLᵀ`); symmetric positive-definite systems.
    DenseCholesky,
    /// Dense LU with partial pivoting; general nonsingular systems.
    DenseLu,
    /// Jacobi-preconditioned conjugate gradient over a (usually sparse)
    /// operator; SPD systems too large or too sparse to factor densely.
    SparseCg,
    /// Block-Jacobi-preconditioned CG: dense Cholesky factors of
    /// fixed-width diagonal blocks strengthen the Jacobi scaling.
    SparseBlockJacobiCg,
    /// Incomplete-Cholesky IC(0)-preconditioned CG: a zero-fill factor on
    /// the pattern of `tril(A)` — exact on banded systems, and the default
    /// iterative choice for sparse SPD systems.
    SparseIcCg,
    /// Algebraic-multigrid V-cycle-preconditioned CG over a heavy-edge
    /// matched Galerkin hierarchy; for the largest wide-band Laplacians.
    Amg,
}

impl BackendKind {
    /// Stable lowercase identifier (used by JSON diagnostics).
    pub fn as_str(self) -> &'static str {
        match self {
            BackendKind::DenseCholesky => "dense-cholesky",
            BackendKind::DenseLu => "dense-lu",
            BackendKind::SparseCg => "sparse-cg",
            BackendKind::SparseBlockJacobiCg => "sparse-block-jacobi-cg",
            BackendKind::SparseIcCg => "sparse-ic-cg",
            BackendKind::Amg => "amg",
        }
    }

    /// Whether the backend solves iteratively (no stored dense factor).
    pub fn is_iterative(self) -> bool {
        matches!(
            self,
            BackendKind::SparseCg
                | BackendKind::SparseBlockJacobiCg
                | BackendKind::SparseIcCg
                | BackendKind::Amg
        )
    }
}

/// Summary of a factorization, as returned by [`Factorization::report`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FactorReport {
    /// The backend that produced the factorization.
    pub backend: BackendKind,
    /// Dimension of the factored system.
    pub dim: usize,
    /// Iterations of the backend's most recent solve (`None` for direct
    /// backends, and for iterative ones that have not solved yet).
    pub iterations: Option<usize>,
    /// Final residual norm `‖b − A x‖₂` of the most recent iterative
    /// solve (`None` like [`FactorReport::iterations`]).
    pub final_residual: Option<f64>,
}

impl Factorization for Cholesky {
    fn dim(&self) -> usize {
        Cholesky::dim(self)
    }

    /// shape: (b.len,)
    fn solve(&self, b: &Vector) -> Result<Vector> {
        Cholesky::solve(self, b)
    }

    /// shape: (b.rows, b.cols)
    fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        Cholesky::solve_matrix(self, b)
    }

    /// Computes `A x = L (Lᵀ x)` from the stored factor.
    /// shape: (x.len,)
    fn apply(&self, x: &Vector) -> Result<Vector> {
        let n = Cholesky::dim(self);
        if x.len() != n {
            return Err(Error::DimensionMismatch {
                operation: "cholesky apply",
                left: (n, n),
                right: (x.len(), 1),
            });
        }
        let l = self.lower();
        // y = Lᵀ x (upper-triangular product), then out = L y.
        let mut y = vec![0.0; n];
        for (i, yi) in y.iter_mut().enumerate() {
            let mut sum = 0.0;
            for (j, &xj) in x.as_slice().iter().enumerate().skip(i) {
                sum += l.get(j, i) * xj;
            }
            *yi = sum;
        }
        let mut out = vec![0.0; n];
        for (i, oi) in out.iter_mut().enumerate() {
            let mut sum = 0.0;
            for (j, yj) in y.iter().enumerate().take(i + 1) {
                sum += l.get(i, j) * yj;
            }
            *oi = sum;
        }
        Ok(Vector::from(out))
    }

    fn kind(&self) -> BackendKind {
        BackendKind::DenseCholesky
    }
}

impl Factorization for Lu {
    fn dim(&self) -> usize {
        Lu::dim(self)
    }

    /// shape: (b.len,)
    fn solve(&self, b: &Vector) -> Result<Vector> {
        Lu::solve(self, b)
    }

    /// shape: (b.rows, b.cols)
    fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        Lu::solve_matrix(self, b)
    }

    /// Computes `A x = Pᵀ (L (U x))` from the packed factors.
    /// shape: (x.len,)
    fn apply(&self, x: &Vector) -> Result<Vector> {
        let n = Lu::dim(self);
        if x.len() != n {
            return Err(Error::DimensionMismatch {
                operation: "lu apply",
                left: (n, n),
                right: (x.len(), 1),
            });
        }
        let f = self.factors();
        // y = U x (upper triangle, including the diagonal).
        let mut y = vec![0.0; n];
        for (i, yi) in y.iter_mut().enumerate() {
            let mut sum = 0.0;
            for (fij, xj) in f.row(i)[i..].iter().zip(&x.as_slice()[i..]) {
                sum += fij * xj;
            }
            *yi = sum;
        }
        // z = L y (unit lower triangle).
        let mut z = vec![0.0; n];
        for (i, zi) in z.iter_mut().enumerate() {
            let mut sum = y[i];
            for (j, yj) in y.iter().enumerate().take(i) {
                sum += f.get(i, j) * yj;
            }
            *zi = sum;
        }
        // Undo the row permutation: (P A) x = L U x, so (A x)[perm[i]] = z[i].
        let mut out = vec![0.0; n];
        for (&p, &zi) in self.perm().iter().zip(&z) {
            out[p] = zi;
        }
        Ok(Vector::from(out))
    }

    fn kind(&self) -> BackendKind {
        BackendKind::DenseLu
    }
}

/// The system held by the iterative backend: dense or CSR, applied as a
/// [`LinearOperator`] without ever factoring.
#[derive(Debug, Clone)]
pub enum CgSystem {
    /// Dense system matrix.
    Dense(Matrix),
    /// Sparse CSR system matrix.
    Sparse(CsrMatrix),
}

impl LinearOperator for CgSystem {
    fn dim(&self) -> usize {
        match self {
            CgSystem::Dense(a) => a.rows(),
            CgSystem::Sparse(a) => a.rows(),
        }
    }

    fn apply(&self, x: &[f64], out: &mut [f64]) {
        match self {
            CgSystem::Dense(a) => a.apply(x, out),
            CgSystem::Sparse(a) => a.apply(x, out),
        }
    }
}

/// A [`CgSystem`] whose matvec is sharded across an [`Executor`].
///
/// Each output element is one row's dot product, computed by exactly one
/// worker with the same operations as the sequential
/// `LinearOperator::apply` — so CG sees bit-identical iterates regardless
/// of worker count.
struct ShardedCgSystem<'a> {
    system: &'a CgSystem,
    executor: &'a Executor,
}

impl LinearOperator for ShardedCgSystem<'_> {
    fn dim(&self) -> usize {
        LinearOperator::dim(self.system)
    }

    fn apply(&self, x: &[f64], out: &mut [f64]) {
        let rows = out.len();
        let block = rows
            .div_ceil(self.executor.workers().saturating_mul(4))
            .max(1);
        let sharded = self
            .executor
            .for_each_chunk_mut(out, block, |start, chunk| {
                for (local, o) in chunk.iter_mut().enumerate() {
                    let i = start + local;
                    *o = match self.system {
                        CgSystem::Dense(a) => dot_slices(a.row(i), x),
                        CgSystem::Sparse(a) => {
                            let mut sum = 0.0;
                            for (j, v) in a.row_iter(i) {
                                sum += v * x[j];
                            }
                            sum
                        }
                    };
                }
            });
        if sharded.is_err() {
            // `LinearOperator::apply` is infallible and the chunk width is
            // always >= 1, so this arm is unreachable in practice; recompute
            // sequentially rather than panic if it ever fires.
            self.system.apply(x, out);
        }
    }
}

/// Preconditioned conjugate-gradient backend.
///
/// "Factoring" validates the system and builds the chosen
/// [`PrecondKind`] (Jacobi diagonal scaling by default, block-Jacobi, or
/// incomplete Cholesky IC(0)); every [`PrecondCg::solve`] call then runs
/// [`preconditioned_cg_with`] against the stored operator. The system must
/// be symmetric positive definite — CG reports [`Error::NotConverged`]
/// otherwise. The most recent solve's iteration count and residual are
/// recorded for [`Factorization::report`].
#[derive(Debug)]
pub struct PrecondCg {
    system: CgSystem,
    precond: Precond,
    options: CgOptions,
    executor: Executor,
    // Last-solve diagnostics, written with SeqCst so concurrent serve
    // readers observe a consistent snapshot; `usize::MAX` / NaN bits mean
    // "no solve recorded yet".
    last_iterations: AtomicUsize,
    last_residual: AtomicU64,
}

impl Clone for PrecondCg {
    fn clone(&self) -> Self {
        PrecondCg {
            system: self.system.clone(),
            precond: self.precond.clone(),
            options: self.options.clone(),
            executor: self.executor.clone(),
            last_iterations: AtomicUsize::new(self.last_iterations.load(Ordering::SeqCst)),
            last_residual: AtomicU64::new(self.last_residual.load(Ordering::SeqCst)),
        }
    }
}

/// The pre-PR-9 name of [`PrecondCg`], from before preconditioners were
/// pluggable. The alias still builds the Jacobi preconditioner it always
/// did (that is [`PrecondCg::factor_dense`]'s / `factor_sparse`'s default).
#[deprecated(
    since = "0.10.0",
    note = "renamed to PrecondCg; Jacobi is now one PrecondKind among several"
)]
pub type JacobiCg = PrecondCg;

impl PrecondCg {
    /// Builds the iterative backend around a dense system with the
    /// historical Jacobi (diagonal) preconditioner.
    ///
    /// # Errors
    ///
    /// * [`Error::NotSquare`] when `a` is not square.
    /// * [`Error::NotPositiveDefinite`] when a diagonal entry is `<= 0` or
    ///   non-finite (an SPD matrix has a strictly positive diagonal).
    pub fn factor_dense(a: &Matrix, options: CgOptions) -> Result<Self> {
        PrecondCg::factor_dense_with(a, PrecondKind::Jacobi, options)
    }

    /// Builds the iterative backend around a dense system with an explicit
    /// preconditioner choice.
    ///
    /// # Errors
    ///
    /// * [`Error::NotSquare`] when `a` is not square.
    /// * [`Error::NotPositiveDefinite`] when the preconditioner cannot be
    ///   built (non-positive diagonal, indefinite block, IC(0) breakdown).
    pub fn factor_dense_with(a: &Matrix, kind: PrecondKind, options: CgOptions) -> Result<Self> {
        if !a.is_square() {
            return Err(Error::NotSquare { shape: a.shape() });
        }
        strict::check_finite_matrix("precond_cg.factor input", a)?;
        let precond = match kind {
            // The Jacobi diagonal comes straight off the dense storage —
            // no CSR conversion, and bit-identical to the pre-PR-9 path.
            PrecondKind::Jacobi => Precond::Jacobi(crate::precond::JacobiPrecond::from_diagonal(
                (0..a.rows()).map(|i| a.get(i, i)),
            )?),
            other => Precond::build(&CsrMatrix::from_dense(a, 0.0), &other)?,
        };
        Ok(PrecondCg {
            system: CgSystem::Dense(a.clone()),
            precond,
            options,
            executor: Executor::default(),
            last_iterations: AtomicUsize::new(usize::MAX),
            last_residual: AtomicU64::new(f64::NAN.to_bits()),
        })
    }

    /// Builds the iterative backend around a CSR system with the
    /// historical Jacobi (diagonal) preconditioner.
    ///
    /// # Errors
    ///
    /// * [`Error::NotSquare`] when `a` is not square.
    /// * [`Error::NotPositiveDefinite`] when a diagonal entry is `<= 0` or
    ///   non-finite.
    pub fn factor_sparse(a: &CsrMatrix, options: CgOptions) -> Result<Self> {
        PrecondCg::factor_sparse_with(a, PrecondKind::Jacobi, options)
    }

    /// Builds the iterative backend around a CSR system with an explicit
    /// preconditioner choice.
    ///
    /// # Errors
    ///
    /// * [`Error::NotSquare`] when `a` is not square.
    /// * [`Error::NotPositiveDefinite`] when the preconditioner cannot be
    ///   built (non-positive diagonal, indefinite block, IC(0) breakdown).
    /// deterministic
    pub fn factor_sparse_with(
        a: &CsrMatrix,
        kind: PrecondKind,
        options: CgOptions,
    ) -> Result<Self> {
        if a.rows() != a.cols() {
            return Err(Error::NotSquare {
                shape: (a.rows(), a.cols()),
            });
        }
        let precond = Precond::build(a, &kind)?;
        Ok(PrecondCg {
            system: CgSystem::Sparse(a.clone()),
            precond,
            options,
            executor: Executor::default(),
            last_iterations: AtomicUsize::new(usize::MAX),
            last_residual: AtomicU64::new(f64::NAN.to_bits()),
        })
    }

    /// Runs every solve's matvecs on `executor` (row-sharded, with output
    /// bit-identical to the sequential backend at any worker count).
    #[must_use]
    pub fn with_executor(mut self, executor: Executor) -> Self {
        self.executor = executor;
        self
    }

    /// Borrows the stored system operator.
    pub fn system(&self) -> &CgSystem {
        &self.system
    }

    /// The preconditioner built at factor time.
    pub fn precond(&self) -> &Precond {
        &self.precond
    }

    /// The executor the matvecs of every solve run on.
    pub fn executor(&self) -> &Executor {
        &self.executor
    }

    /// The CG options every solve runs with.
    pub fn options(&self) -> &CgOptions {
        &self.options
    }

    /// Iterations of the most recent [`Factorization::solve`] call on this
    /// handle (`None` before the first solve; clones start fresh from the
    /// value at clone time).
    pub fn last_iterations(&self) -> Option<usize> {
        let v = self.last_iterations.load(Ordering::SeqCst);
        if v == usize::MAX {
            None
        } else {
            Some(v)
        }
    }

    /// Final residual norm of the most recent solve (`None` before the
    /// first solve).
    pub fn last_residual(&self) -> Option<f64> {
        let v = f64::from_bits(self.last_residual.load(Ordering::SeqCst));
        if v.is_nan() {
            None
        } else {
            Some(v)
        }
    }

    fn record(&self, iterations: usize, residual: f64) {
        self.last_iterations.store(iterations, Ordering::SeqCst);
        self.last_residual
            .store(residual.to_bits(), Ordering::SeqCst);
    }
}

impl Factorization for PrecondCg {
    fn dim(&self) -> usize {
        LinearOperator::dim(&self.system)
    }

    /// shape: (b.len,)
    fn solve(&self, b: &Vector) -> Result<Vector> {
        let outcome = if self.executor.is_sequential() {
            preconditioned_cg_with(&self.system, b, &self.precond, &self.options)
        } else {
            let sharded = ShardedCgSystem {
                system: &self.system,
                executor: &self.executor,
            };
            preconditioned_cg_with(&sharded, b, &self.precond, &self.options)
        };
        match outcome {
            Ok(out) => {
                self.record(out.iterations, out.residual_norm);
                Ok(out.solution)
            }
            Err(Error::NotConverged {
                iterations,
                residual,
            }) => {
                // Record the failed attempt too, so serve-side diagnostics
                // can observe a refit that hit its iteration cap.
                self.record(iterations, residual);
                Err(Error::NotConverged {
                    iterations,
                    residual,
                })
            }
            Err(e) => Err(e),
        }
    }

    /// Applies the stored system exactly.
    /// shape: (x.len,)
    fn apply(&self, x: &Vector) -> Result<Vector> {
        let n = Factorization::dim(self);
        if x.len() != n {
            return Err(Error::DimensionMismatch {
                operation: "precond_cg apply",
                left: (n, n),
                right: (x.len(), 1),
            });
        }
        let mut out = vec![0.0; n];
        LinearOperator::apply(&self.system, x.as_slice(), &mut out);
        Ok(Vector::from(out))
    }

    fn kind(&self) -> BackendKind {
        match self.precond {
            Precond::Jacobi(_) => BackendKind::SparseCg,
            Precond::BlockJacobi(_) => BackendKind::SparseBlockJacobiCg,
            Precond::Ic0(_) => BackendKind::SparseIcCg,
        }
    }

    fn report(&self) -> FactorReport {
        FactorReport {
            backend: self.kind(),
            dim: Factorization::dim(self),
            iterations: self.last_iterations(),
            final_residual: self.last_residual(),
        }
    }
}

/// One factored system behind a single concrete type: what
/// [`SolverPolicy`] hands back, and what downstream layers cache.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum SolverBackend {
    /// Dense Cholesky factorization.
    Cholesky(Cholesky),
    /// Dense LU factorization.
    Lu(Lu),
    /// Preconditioned CG (no stored dense factor).
    Cg(PrecondCg),
    /// Algebraic-multigrid V-cycle PCG.
    Amg(AmgCg),
}

impl Factorization for SolverBackend {
    fn dim(&self) -> usize {
        match self {
            SolverBackend::Cholesky(f) => Factorization::dim(f),
            SolverBackend::Lu(f) => Factorization::dim(f),
            SolverBackend::Cg(f) => Factorization::dim(f),
            SolverBackend::Amg(f) => Factorization::dim(f),
        }
    }

    /// shape: (b.len,)
    fn solve(&self, b: &Vector) -> Result<Vector> {
        match self {
            SolverBackend::Cholesky(f) => Factorization::solve(f, b),
            SolverBackend::Lu(f) => Factorization::solve(f, b),
            SolverBackend::Cg(f) => Factorization::solve(f, b),
            SolverBackend::Amg(f) => Factorization::solve(f, b),
        }
    }

    /// shape: (b.rows, b.cols)
    fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        match self {
            SolverBackend::Cholesky(f) => Factorization::solve_matrix(f, b),
            SolverBackend::Lu(f) => Factorization::solve_matrix(f, b),
            SolverBackend::Cg(f) => Factorization::solve_matrix(f, b),
            SolverBackend::Amg(f) => Factorization::solve_matrix(f, b),
        }
    }

    /// shape: (x.len,)
    fn apply(&self, x: &Vector) -> Result<Vector> {
        match self {
            SolverBackend::Cholesky(f) => Factorization::apply(f, x),
            SolverBackend::Lu(f) => Factorization::apply(f, x),
            SolverBackend::Cg(f) => Factorization::apply(f, x),
            SolverBackend::Amg(f) => Factorization::apply(f, x),
        }
    }

    fn kind(&self) -> BackendKind {
        match self {
            SolverBackend::Cholesky(f) => Factorization::kind(f),
            SolverBackend::Lu(f) => Factorization::kind(f),
            SolverBackend::Cg(f) => Factorization::kind(f),
            SolverBackend::Amg(f) => Factorization::kind(f),
        }
    }

    fn report(&self) -> FactorReport {
        match self {
            SolverBackend::Cholesky(f) => Factorization::report(f),
            SolverBackend::Lu(f) => Factorization::report(f),
            SolverBackend::Cg(f) => Factorization::report(f),
            SolverBackend::Amg(f) => Factorization::report(f),
        }
    }
}

/// Which iterative backend [`SolverPolicy`] builds once a system has been
/// classified as large and sparse.
#[derive(Debug, Clone, PartialEq, Default)]
#[non_exhaustive]
pub enum SparseStrategy {
    /// Cost-model the system: AMG when it is large
    /// ([`SolverPolicy::amg_dim_cutoff`]) and mesh-like — bandwidth at
    /// least [`SolverPolicy::amg_bandwidth_floor`] but still small
    /// relative to the dimension ([`SolverPolicy::amg_locality_factor`]);
    /// IC(0)-PCG otherwise. Narrow-band systems stay on IC-PCG because
    /// IC(0) discards no fill-in there — it *is* the exact factor — while
    /// AMG's hierarchy only pays off once the bandwidth (and hence the
    /// fill-in a direct or one-level method would suffer) grows with the
    /// problem. When bandwidth ≈ dim the ordering carries no locality at
    /// all (e.g. a kNN graph in spatial-index order), the measure says
    /// nothing about conditioning, and IC-PCG's cheaper iterations are
    /// the robust default.
    #[default]
    Auto,
    /// Always plain Jacobi (diagonal) PCG — the pre-PR-9 behavior.
    Jacobi,
    /// Always block-Jacobi PCG with the given block width.
    BlockJacobi {
        /// Rows per diagonal block.
        block_dim: usize,
    },
    /// Always incomplete-Cholesky IC(0) PCG.
    Ic0,
    /// Always algebraic multigrid with the given hierarchy options (the
    /// outer CG run still uses [`SolverPolicy::cg`] unless overridden
    /// here).
    Amg(AmgOptions),
}

/// Auto-selection policy: dense Cholesky vs dense LU vs the iterative
/// sparse backends, decided from system size, symmetry, nonzero density,
/// and bandwidth.
///
/// The decision rule (see [`SolverPolicy::select_dense`] /
/// [`SolverPolicy::select_sparse`]): systems with at least
/// `direct_dim_cutoff` rows whose density is at or below
/// `density_threshold` go to an iterative CSR backend chosen by
/// [`SparseStrategy`] — by default IC(0)-PCG, escalating to AMG when the
/// system has at least `amg_dim_cutoff` rows *and* a bandwidth that is at
/// least `amg_bandwidth_floor` yet at most `dim / amg_locality_factor`
/// (genuinely multi-dimensional structure in an ordering that still
/// carries locality). Everything else is factored directly — Cholesky
/// when symmetric within `symmetry_tolerance`, LU otherwise.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverPolicy {
    /// Systems smaller than this are always factored directly, regardless
    /// of sparsity (direct factorization is cheap at small dimensions).
    pub direct_dim_cutoff: usize,
    /// Fraction of nonzero entries (`nnz / n²`) at or below which a large
    /// system is routed to an iterative sparse backend.
    pub density_threshold: f64,
    /// Absolute entrywise tolerance used to classify a system as symmetric
    /// (and hence Cholesky-eligible).
    pub symmetry_tolerance: f64,
    /// Which iterative backend to build for large sparse systems.
    pub sparse: SparseStrategy,
    /// Under [`SparseStrategy::Auto`], AMG requires at least this many
    /// rows: below it, IC-PCG's lighter setup wins even on wide-band
    /// systems.
    pub amg_dim_cutoff: usize,
    /// Under [`SparseStrategy::Auto`], AMG requires bandwidth (max stored
    /// `|i − j|`) at least this large: narrow bands keep IC(0) exact or
    /// near-exact, so the hierarchy has nothing to add.
    pub amg_bandwidth_floor: usize,
    /// Under [`SparseStrategy::Auto`], AMG additionally requires
    /// `bandwidth * amg_locality_factor <= dim`. A 2-D mesh of n rows has
    /// bandwidth ≈ √n — wide, but far below n. When bandwidth ≈ dim the
    /// row ordering carries no locality (a kNN graph in spatial-index
    /// order hits this), the bandwidth measure says nothing about the
    /// graph, and such systems in this repo are anchored and
    /// well-conditioned — IC-PCG's cheaper iterations win there.
    pub amg_locality_factor: usize,
    /// Options for the iterative backends' CG runs.
    pub cg: CgOptions,
    /// Executor every selected backend factors (and, for CG, solves) on.
    /// Sequential by default; parallel executors leave results bit-identical.
    pub executor: Executor,
}

impl Default for SolverPolicy {
    fn default() -> Self {
        SolverPolicy {
            direct_dim_cutoff: 128,
            density_threshold: 0.25,
            symmetry_tolerance: 1e-9,
            sparse: SparseStrategy::Auto,
            amg_dim_cutoff: 4096,
            amg_bandwidth_floor: 128,
            amg_locality_factor: 8,
            cg: CgOptions::default(),
            executor: Executor::default(),
        }
    }
}

/// Counts entries of a dense matrix with magnitude above zero.
fn dense_nnz(a: &Matrix) -> usize {
    let mut nnz = 0;
    for i in 0..a.rows() {
        for v in a.row(i) {
            if v.abs() > 0.0 {
                nnz += 1;
            }
        }
    }
    nnz
}

/// Fraction of stored entries relative to a full `rows × cols` matrix
/// (defined as 1.0 for empty shapes).
fn density(nnz: usize, rows: usize, cols: usize) -> f64 {
    if rows == 0 || cols == 0 {
        return 1.0;
    }
    nnz as f64 / (rows as f64 * cols as f64)
}

/// Maximum `|i − j|` over entries of a dense matrix with magnitude above
/// zero — the same bandwidth [`CsrMatrix::bandwidth`] reports after
/// `CsrMatrix::from_dense(a, 0.0)`.
fn dense_bandwidth(a: &Matrix) -> usize {
    let mut band = 0usize;
    for i in 0..a.rows() {
        for (j, v) in a.row(i).iter().enumerate() {
            if v.abs() > 0.0 {
                band = band.max(i.abs_diff(j));
            }
        }
    }
    band
}

impl SolverPolicy {
    /// Policy with a custom CG configuration for the iterative backend.
    pub fn with_cg(cg: CgOptions) -> Self {
        SolverPolicy {
            cg,
            ..SolverPolicy::default()
        }
    }

    /// Runs every factorization this policy selects on `executor`.
    ///
    /// Backend choice is unaffected — only how the chosen backend computes.
    /// Parallel executors keep factors and solves bit-identical to the
    /// sequential ones.
    #[must_use]
    pub fn with_executor(mut self, executor: Executor) -> Self {
        self.executor = executor;
        self
    }

    /// Which iterative backend the [`SparseStrategy`] yields for a system
    /// of `dim` rows with the given bandwidth.
    fn select_iterative(&self, dim: usize, bandwidth: usize) -> BackendKind {
        match &self.sparse {
            SparseStrategy::Auto => {
                if dim >= self.amg_dim_cutoff
                    && bandwidth >= self.amg_bandwidth_floor
                    && bandwidth.saturating_mul(self.amg_locality_factor) <= dim
                {
                    BackendKind::Amg
                } else {
                    BackendKind::SparseIcCg
                }
            }
            SparseStrategy::Jacobi => BackendKind::SparseCg,
            SparseStrategy::BlockJacobi { .. } => BackendKind::SparseBlockJacobiCg,
            SparseStrategy::Ic0 => BackendKind::SparseIcCg,
            SparseStrategy::Amg(_) => BackendKind::Amg,
        }
    }

    /// Which backend [`SolverPolicy::factor_dense`] would pick for `a`.
    ///
    /// A breakdown-driven fallback (IC(0) → Jacobi, Cholesky → LU) can
    /// still land on a different backend at factor time.
    pub fn select_dense(&self, a: &Matrix) -> BackendKind {
        if a.rows() >= self.direct_dim_cutoff
            && density(dense_nnz(a), a.rows(), a.cols()) <= self.density_threshold
        {
            return self.select_iterative(a.rows(), dense_bandwidth(a));
        }
        if a.is_symmetric(self.symmetry_tolerance) {
            BackendKind::DenseCholesky
        } else {
            BackendKind::DenseLu
        }
    }

    /// Which backend [`SolverPolicy::factor_sparse`] would pick for `a`.
    ///
    /// A breakdown-driven fallback (IC(0) → Jacobi, Cholesky → LU) can
    /// still land on a different backend at factor time.
    pub fn select_sparse(&self, a: &CsrMatrix) -> BackendKind {
        if a.rows() >= self.direct_dim_cutoff
            && density(a.nnz(), a.rows(), a.cols()) <= self.density_threshold
        {
            return self.select_iterative(a.rows(), a.bandwidth());
        }
        if a.is_symmetric(self.symmetry_tolerance) {
            BackendKind::DenseCholesky
        } else {
            BackendKind::DenseLu
        }
    }

    /// Builds the iterative backend [`SolverPolicy::select_iterative`]
    /// picked for a CSR system.
    ///
    /// IC(0) and block-Jacobi can break down on SPD systems that are far
    /// from diagonally dominant even though the exact factorization
    /// exists; in that case the policy falls back to the always-buildable
    /// Jacobi preconditioner instead of failing the solve. The fallback
    /// depends only on the matrix values, never on timing or thread count.
    fn factor_iterative(&self, a: &CsrMatrix) -> Result<SolverBackend> {
        match self.select_iterative(a.rows(), a.bandwidth()) {
            BackendKind::Amg => {
                let options = match &self.sparse {
                    SparseStrategy::Amg(options) => options.clone(),
                    _ => AmgOptions {
                        cg: self.cg.clone(),
                        ..AmgOptions::default()
                    },
                };
                Ok(SolverBackend::Amg(
                    AmgCg::factor_sparse(a, options)?.with_executor(self.executor.clone()),
                ))
            }
            kind => {
                let precond_kind = match (&kind, &self.sparse) {
                    (BackendKind::SparseCg, _) => PrecondKind::Jacobi,
                    (
                        BackendKind::SparseBlockJacobiCg,
                        SparseStrategy::BlockJacobi { block_dim },
                    ) => PrecondKind::BlockJacobi {
                        block_dim: *block_dim,
                    },
                    (BackendKind::SparseBlockJacobiCg, _) => PrecondKind::BlockJacobi {
                        block_dim: DEFAULT_BLOCK_DIM,
                    },
                    _ => PrecondKind::Ic0,
                };
                let jacobi = matches!(precond_kind, PrecondKind::Jacobi);
                match PrecondCg::factor_sparse_with(a, precond_kind, self.cg.clone()) {
                    Ok(f) => Ok(SolverBackend::Cg(f.with_executor(self.executor.clone()))),
                    Err(Error::NotPositiveDefinite { .. }) if !jacobi => Ok(SolverBackend::Cg(
                        PrecondCg::factor_sparse(a, self.cg.clone())?
                            .with_executor(self.executor.clone()),
                    )),
                    Err(e) => Err(e),
                }
            }
        }
    }

    /// Factors a dense system with the auto-selected backend.
    ///
    /// A symmetric system that turns out not to be positive definite falls
    /// back from Cholesky to LU instead of failing.
    ///
    /// # Errors
    ///
    /// * [`Error::NotSquare`] when `a` is not square.
    /// * [`Error::Singular`] when the (LU-factored) system is singular.
    /// * [`Error::NotPositiveDefinite`] when the iterative backend sees a
    ///   non-positive diagonal.
    /// deterministic
    pub fn factor_dense(&self, a: &Matrix) -> Result<SolverBackend> {
        match self.select_dense(a) {
            kind if kind.is_iterative() => {
                let csr = CsrMatrix::from_dense(a, 0.0);
                self.factor_iterative(&csr)
            }
            BackendKind::DenseCholesky => match Cholesky::factor_with(a, &self.executor) {
                Ok(f) => Ok(SolverBackend::Cholesky(f)),
                Err(Error::NotPositiveDefinite { .. }) => {
                    Ok(SolverBackend::Lu(Lu::factor_with(a, &self.executor)?))
                }
                Err(e) => Err(e),
            },
            _ => Ok(SolverBackend::Lu(Lu::factor_with(a, &self.executor)?)),
        }
    }

    /// Factors a CSR system with the auto-selected backend (densifying
    /// first when the system is small or dense enough for direct methods).
    ///
    /// # Errors
    ///
    /// Same as [`SolverPolicy::factor_dense`].
    /// deterministic
    pub fn factor_sparse(&self, a: &CsrMatrix) -> Result<SolverBackend> {
        match self.select_sparse(a) {
            kind if kind.is_iterative() => self.factor_iterative(a),
            _ => self.factor_dense(&a.to_dense()),
        }
    }

    /// Factors a dense system *known* to be symmetric positive definite
    /// (e.g. the soft criterion's `V + λL`): Cholesky first, LU as a
    /// robustness fallback when rounding pushed a pivot non-positive, CG
    /// when the system qualifies as large and sparse.
    ///
    /// # Errors
    ///
    /// Same as [`SolverPolicy::factor_dense`].
    /// deterministic
    pub fn factor_spd(&self, a: &Matrix) -> Result<SolverBackend> {
        if a.rows() >= self.direct_dim_cutoff
            && density(dense_nnz(a), a.rows(), a.cols()) <= self.density_threshold
        {
            let csr = CsrMatrix::from_dense(a, 0.0);
            return self.factor_iterative(&csr);
        }
        match Cholesky::factor_with(a, &self.executor) {
            Ok(f) => Ok(SolverBackend::Cholesky(f)),
            Err(Error::NotPositiveDefinite { .. }) => {
                Ok(SolverBackend::Lu(Lu::factor_with(a, &self.executor)?))
            }
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd_sample(n: usize) -> Matrix {
        // Diagonally dominant symmetric tridiagonal: SPD at every size.
        Matrix::from_fn(n, n, |i, j| {
            if i == j {
                3.0 + (i as f64) * 0.1
            } else if i.abs_diff(j) == 1 {
                -1.0
            } else {
                0.0
            }
        })
    }

    fn rhs(n: usize) -> Vector {
        Vector::from_fn(n, |i| ((i as f64) * 0.7).sin() + 0.2)
    }

    #[test]
    fn all_backends_solve_the_same_system() {
        let a = spd_sample(12);
        let b = rhs(12);
        let reference = crate::lu::solve(&a, &b).unwrap();

        let chol = Cholesky::factor(&a).unwrap();
        let lu = Lu::factor(&a).unwrap();
        let cg = PrecondCg::factor_dense(&a, CgOptions::default()).unwrap();
        let ic = PrecondCg::factor_dense_with(&a, PrecondKind::Ic0, CgOptions::default()).unwrap();
        let block = PrecondCg::factor_dense_with(
            &a,
            PrecondKind::BlockJacobi { block_dim: 4 },
            CgOptions::default(),
        )
        .unwrap();
        let amg =
            AmgCg::factor_sparse(&CsrMatrix::from_dense(&a, 0.0), AmgOptions::default()).unwrap();
        for backend in [
            SolverBackend::Cholesky(chol),
            SolverBackend::Lu(lu),
            SolverBackend::Cg(cg),
            SolverBackend::Cg(ic),
            SolverBackend::Cg(block),
            SolverBackend::Amg(amg),
        ] {
            let x = backend.solve(&b).unwrap();
            assert!(
                x.approx_eq(&reference, 1e-8),
                "{:?} disagrees",
                backend.kind()
            );
            assert!(backend.residual(&x, &b).unwrap() < 1e-8);
            assert_eq!(Factorization::dim(&backend), 12);
        }
    }

    #[test]
    fn apply_reconstructs_operator_for_every_backend() {
        // Use an asymmetric matrix for LU to exercise the permutation path.
        let asym =
            Matrix::from_rows(&[&[0.0, 2.0, 1.0], &[3.0, 1.0, 0.5], &[1.0, -1.0, 4.0]]).unwrap();
        let x = Vector::from(vec![1.0, -2.0, 0.5]);
        let lu = Lu::factor(&asym).unwrap();
        let ax = Factorization::apply(&lu, &x).unwrap();
        assert!(ax.approx_eq(&asym.matvec(&x).unwrap(), 1e-12));

        let spd = spd_sample(5);
        let x5 = rhs(5);
        let chol = Cholesky::factor(&spd).unwrap();
        let ax = Factorization::apply(&chol, &x5).unwrap();
        assert!(ax.approx_eq(&spd.matvec(&x5).unwrap(), 1e-12));

        let cg = PrecondCg::factor_dense(&spd, CgOptions::default()).unwrap();
        let ax = Factorization::apply(&cg, &x5).unwrap();
        assert!(ax.approx_eq(&spd.matvec(&x5).unwrap(), 1e-14));
    }

    #[test]
    fn solve_matrix_and_inverse_agree_across_backends() {
        let a = spd_sample(6);
        let id = Matrix::identity(6);
        for backend in [
            SolverPolicy::default().factor_dense(&a).unwrap(),
            SolverBackend::Cg(PrecondCg::factor_dense(&a, CgOptions::default()).unwrap()),
        ] {
            let inv = backend.inverse().unwrap();
            assert!(a.matmul(&inv).unwrap().approx_eq(&id, 1e-7));
        }
    }

    #[test]
    fn precond_cg_rejects_nonpositive_diagonal() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 0.0]]).unwrap();
        assert!(matches!(
            PrecondCg::factor_dense(&a, CgOptions::default()),
            Err(Error::NotPositiveDefinite { pivot: 1 })
        ));
        let csr = CsrMatrix::from_triplets(2, 2, &[(0, 0, -1.0), (1, 1, 1.0)]).unwrap();
        assert!(matches!(
            PrecondCg::factor_sparse(&csr, CgOptions::default()),
            Err(Error::NotPositiveDefinite { pivot: 0 })
        ));
    }

    #[test]
    fn precond_cg_rejects_non_square() {
        assert!(matches!(
            PrecondCg::factor_dense(&Matrix::zeros(2, 3), CgOptions::default()),
            Err(Error::NotSquare { .. })
        ));
        assert!(matches!(
            PrecondCg::factor_sparse(&CsrMatrix::zeros(2, 3), CgOptions::default()),
            Err(Error::NotSquare { .. })
        ));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_jacobi_cg_alias_still_resolves() {
        let a = spd_sample(6);
        let f = JacobiCg::factor_dense(&a, CgOptions::default()).unwrap();
        assert_eq!(f.kind(), BackendKind::SparseCg);
        let x = f.solve(&rhs(6)).unwrap();
        assert!(f.residual(&x, &rhs(6)).unwrap() < 1e-8);
    }

    #[test]
    fn report_carries_iteration_diagnostics_for_iterative_backends() {
        let n = 32;
        let a = spd_sample(n);
        let b = rhs(n);
        let cg = PrecondCg::factor_dense_with(&a, PrecondKind::Ic0, CgOptions::default()).unwrap();
        // Before any solve the diagnostics are unset.
        assert_eq!(cg.report().iterations, None);
        assert_eq!(cg.report().final_residual, None);
        let _ = cg.solve(&b).unwrap();
        let report = cg.report();
        assert_eq!(report.backend, BackendKind::SparseIcCg);
        // IC(0) is exact on tridiagonal systems: PCG converges immediately.
        assert!(report.iterations.unwrap() <= 2, "{report:?}");
        assert!(report.final_residual.unwrap() < 1e-8);

        // Direct backends never report iteration counts.
        let chol = SolverPolicy::default()
            .factor_dense(&spd_sample(8))
            .unwrap();
        let _ = chol.solve(&rhs(8)).unwrap();
        assert_eq!(chol.report().iterations, None);
    }

    #[test]
    fn ic_pcg_needs_no_more_iterations_than_jacobi_pcg() {
        // 2D grid Laplacian plus anchor: sparse, not IC-exact.
        let side = 16;
        let dense = Matrix::from_fn(side * side, side * side, |i, j| {
            let (ri, ci) = (i / side, i % side);
            let (rj, cj) = (j / side, j % side);
            if i == j {
                4.05
            } else if (ri == rj && ci.abs_diff(cj) == 1) || (ci == cj && ri.abs_diff(rj) == 1) {
                -1.0
            } else {
                0.0
            }
        });
        let b = rhs(side * side);
        let jacobi = PrecondCg::factor_dense(&dense, CgOptions::default()).unwrap();
        let ic =
            PrecondCg::factor_dense_with(&dense, PrecondKind::Ic0, CgOptions::default()).unwrap();
        let xj = jacobi.solve(&b).unwrap();
        let xi = ic.solve(&b).unwrap();
        assert!(xj.approx_eq(&xi, 1e-6));
        assert!(
            ic.last_iterations().unwrap() <= jacobi.last_iterations().unwrap(),
            "ic={:?} jacobi={:?}",
            ic.last_iterations(),
            jacobi.last_iterations()
        );
    }

    #[test]
    fn policy_picks_cholesky_for_small_symmetric() {
        let a = spd_sample(10);
        let policy = SolverPolicy::default();
        assert_eq!(policy.select_dense(&a), BackendKind::DenseCholesky);
        assert!(matches!(
            policy.factor_dense(&a).unwrap(),
            SolverBackend::Cholesky(_)
        ));
    }

    #[test]
    fn policy_picks_lu_for_asymmetric() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 3.0]]).unwrap();
        let policy = SolverPolicy::default();
        assert_eq!(policy.select_dense(&a), BackendKind::DenseLu);
        assert!(matches!(
            policy.factor_dense(&a).unwrap(),
            SolverBackend::Lu(_)
        ));
    }

    #[test]
    fn policy_picks_ic_pcg_for_large_narrow_band_sparse() {
        let n = 200;
        let a = spd_sample(n); // tridiagonal: density ~ 3/n << 0.25, bandwidth 1
        let policy = SolverPolicy::default();
        assert_eq!(policy.select_dense(&a), BackendKind::SparseIcCg);
        let backend = policy.factor_dense(&a).unwrap();
        assert_eq!(backend.kind(), BackendKind::SparseIcCg);
        let b = rhs(n);
        let x = backend.solve(&b).unwrap();
        assert!(backend.residual(&x, &b).unwrap() < 1e-7);

        let csr = CsrMatrix::from_dense(&a, 0.0);
        assert_eq!(policy.select_sparse(&csr), BackendKind::SparseIcCg);
        let sparse_backend = policy.factor_sparse(&csr).unwrap();
        let xs = sparse_backend.solve(&b).unwrap();
        assert!(xs.approx_eq(&x, 1e-8));
    }

    #[test]
    fn policy_strategy_overrides_route_to_each_backend() {
        let n = 200;
        let a = spd_sample(n);
        let csr = CsrMatrix::from_dense(&a, 0.0);
        let b = rhs(n);
        let reference = SolverPolicy::default()
            .factor_sparse(&csr)
            .unwrap()
            .solve(&b)
            .unwrap();
        for (strategy, expected) in [
            (SparseStrategy::Jacobi, BackendKind::SparseCg),
            (
                SparseStrategy::BlockJacobi { block_dim: 16 },
                BackendKind::SparseBlockJacobiCg,
            ),
            (SparseStrategy::Ic0, BackendKind::SparseIcCg),
            (SparseStrategy::Amg(AmgOptions::default()), BackendKind::Amg),
        ] {
            let policy = SolverPolicy {
                sparse: strategy.clone(),
                ..SolverPolicy::default()
            };
            assert_eq!(policy.select_sparse(&csr), expected, "{strategy:?}");
            let backend = policy.factor_sparse(&csr).unwrap();
            assert_eq!(backend.kind(), expected, "{strategy:?}");
            let x = backend.solve(&b).unwrap();
            assert!(x.approx_eq(&reference, 1e-7), "{strategy:?} disagrees");
        }
    }

    #[test]
    fn auto_policy_prefers_amg_for_large_mesh_like_systems() {
        let policy = SolverPolicy::default();
        // Narrow band stays on IC-PCG regardless of size.
        assert_eq!(policy.select_iterative(1 << 20, 1), BackendKind::SparseIcCg);
        // Large dimension alone is not enough.
        assert_eq!(
            policy.select_iterative(policy.amg_dim_cutoff, policy.amg_bandwidth_floor - 1),
            BackendKind::SparseIcCg
        );
        // Wide band alone is not enough.
        assert_eq!(
            policy.select_iterative(policy.amg_dim_cutoff - 1, 1 << 20),
            BackendKind::SparseIcCg
        );
        // Bandwidth ≈ dim means the ordering carries no locality (kNN
        // graphs in index order): the bandwidth signal is uninformative
        // and the robust IC-PCG default applies.
        let dim = 1 << 20;
        assert_eq!(
            policy.select_iterative(dim, dim - 1),
            BackendKind::SparseIcCg
        );
        assert_eq!(
            policy.select_iterative(dim, dim / policy.amg_locality_factor + 1),
            BackendKind::SparseIcCg
        );
        // Mesh-like: large, wide-band, and local — a 2-D grid of n rows
        // has bandwidth √n, far below the locality ceiling.
        assert_eq!(
            policy.select_iterative(dim, dim / policy.amg_locality_factor),
            BackendKind::Amg
        );
        assert_eq!(
            policy.select_iterative(policy.amg_dim_cutoff * 4, policy.amg_bandwidth_floor),
            BackendKind::Amg
        );
    }

    #[test]
    fn ic_breakdown_falls_back_to_jacobi_pcg() {
        // Kershaw's matrix: SPD (leading minors 3, 5, 3, 1) yet IC(0) hits
        // a negative last pivot because the zero pattern drops the fill-in
        // that exact Cholesky would have used.
        let a = Matrix::from_rows(&[
            &[3.0, -2.0, 0.0, 2.0],
            &[-2.0, 3.0, -2.0, 0.0],
            &[0.0, -2.0, 3.0, -2.0],
            &[2.0, 0.0, -2.0, 3.0],
        ])
        .unwrap();
        let csr = CsrMatrix::from_dense(&a, 0.0);
        assert!(matches!(
            PrecondCg::factor_sparse_with(&csr, PrecondKind::Ic0, CgOptions::default()),
            Err(Error::NotPositiveDefinite { .. })
        ));
        let policy = SolverPolicy {
            direct_dim_cutoff: 0,
            density_threshold: 1.0,
            sparse: SparseStrategy::Ic0,
            ..SolverPolicy::default()
        };
        let backend = policy.factor_sparse(&csr).unwrap();
        // The policy recovered with the always-buildable Jacobi PCG.
        assert_eq!(backend.kind(), BackendKind::SparseCg);
        let b = Vector::from(vec![1.0, 0.5, -0.25, 0.75]);
        let x = backend.solve(&b).unwrap();
        assert!(backend.residual(&x, &b).unwrap() < 1e-8);
    }

    #[test]
    fn policy_densifies_small_sparse_systems() {
        let a = spd_sample(8);
        let csr = CsrMatrix::from_dense(&a, 0.0);
        let policy = SolverPolicy::default();
        assert_eq!(policy.select_sparse(&csr), BackendKind::DenseCholesky);
        let backend = policy.factor_sparse(&csr).unwrap();
        assert!(matches!(backend, SolverBackend::Cholesky(_)));
    }

    #[test]
    fn spd_route_falls_back_to_lu_on_indefinite() {
        // Symmetric but indefinite: Cholesky fails, LU must take over.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        let policy = SolverPolicy::default();
        let backend = policy.factor_spd(&a).unwrap();
        assert!(matches!(backend, SolverBackend::Lu(_)));
        let b = Vector::from(vec![1.0, 0.0]);
        let x = backend.solve(&b).unwrap();
        assert!(backend.residual(&x, &b).unwrap() < 1e-12);
    }

    #[test]
    fn policy_with_executor_is_bit_identical_across_worker_counts() {
        // Small dense SPD (Cholesky route) and large sparse (CG route):
        // both must produce byte-for-byte the sequential solution.
        for n in [40, 200] {
            let a = spd_sample(n);
            let b = rhs(n);
            let sequential = SolverPolicy::default()
                .factor_dense(&a)
                .unwrap()
                .solve(&b)
                .unwrap();
            for workers in [1, 2, 4] {
                let policy = SolverPolicy::default().with_executor(Executor::with_workers(workers));
                let backend = policy.factor_dense(&a).unwrap();
                // The executor must not change which backend is selected.
                assert_eq!(backend.kind(), SolverPolicy::default().select_dense(&a));
                let x = backend.solve(&b).unwrap();
                assert_eq!(
                    x.as_slice(),
                    sequential.as_slice(),
                    "n={n} workers={workers} diverged from sequential"
                );
            }
        }
    }

    #[test]
    fn precond_cg_with_executor_matches_sequential_matvec_path() {
        let a = spd_sample(64);
        let b = rhs(64);
        let sequential = PrecondCg::factor_dense(&a, CgOptions::default())
            .unwrap()
            .solve(&b)
            .unwrap();
        let parallel = PrecondCg::factor_dense(&a, CgOptions::default())
            .unwrap()
            .with_executor(Executor::with_workers(3));
        assert_eq!(parallel.executor().workers(), 3);
        assert_eq!(
            parallel.solve(&b).unwrap().as_slice(),
            sequential.as_slice()
        );
    }

    #[test]
    fn report_names_the_backend() {
        let a = spd_sample(4);
        let backend = SolverPolicy::default().factor_dense(&a).unwrap();
        let report = backend.report();
        assert_eq!(report.backend, BackendKind::DenseCholesky);
        assert_eq!(report.dim, 4);
        assert_eq!(report.backend.as_str(), "dense-cholesky");
        assert!(!report.backend.is_iterative());
        assert!(BackendKind::SparseCg.is_iterative());
    }

    #[test]
    fn works_as_trait_object() {
        let a = spd_sample(5);
        let b = rhs(5);
        let boxed: Box<dyn Factorization> = Box::new(Cholesky::factor(&a).unwrap());
        let x = boxed.solve(&b).unwrap();
        assert!(boxed.residual(&x, &b).unwrap() < 1e-10);
    }
}
