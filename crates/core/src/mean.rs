//! The λ = ∞ limit of the soft criterion (Proposition II.2).
//!
//! On a connected graph, letting `λ → ∞` in Eq. 2 forces all scores equal,
//! and the common value minimizing the loss is the labeled mean
//! `f̂(∞) = (1/n) Σ_i Y_i`. By the law of large numbers this converges to
//! `E[q(X)]`, *not* to `q(X_{n+a})` — the paper's counterexample proving
//! the soft criterion inconsistent for large λ.

use crate::error::Result;
use crate::problem::{Problem, Scores};
use crate::traits::TransductiveModel;

/// Predicts the labeled mean for every unlabeled vertex — the soft
/// criterion's λ = ∞ limit on connected graphs.
///
/// ```
/// use gssl::{MeanPredictor, Problem, TransductiveModel};
/// use gssl_linalg::Matrix;
/// # fn main() -> Result<(), gssl::Error> {
/// let w = Matrix::filled(4, 4, 1.0);
/// let problem = Problem::new(w, vec![1.0, 0.0, 1.0])?;
/// let scores = MeanPredictor::new().fit(&problem)?;
/// assert!((scores.unlabeled()[0] - 2.0 / 3.0).abs() < 1e-15);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MeanPredictor {
    _private: (),
}

impl MeanPredictor {
    /// Creates the predictor.
    pub fn new() -> Self {
        MeanPredictor::default()
    }

    /// Scores every vertex with the labeled mean (unlabeled) or the
    /// observation (labeled — matching the λ → ∞ constrained problem of
    /// the paper's Eq. 8, whose solution fits the labeled block by the
    /// common mean as well; we report the mean uniformly on unlabeled
    /// vertices and the mean on labeled ones, the exact minimizer of
    /// Eq. 8).
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::InvalidProblem`] when the problem has no
    /// labeled vertices (unreachable for a constructed [`Problem`], which
    /// guarantees at least one label).
    pub fn fit(&self, problem: &Problem) -> Result<Scores> {
        if problem.n_labeled() == 0 {
            return Err(crate::Error::InvalidProblem {
                message: "mean predictor needs at least one labeled vertex".to_owned(),
            });
        }
        let n = problem.n_labeled() as f64;
        let mean = problem.labels().iter().sum::<f64>() / n;
        let labeled = vec![mean; problem.n_labeled()];
        let unlabeled = vec![mean; problem.n_unlabeled()];
        Ok(Scores::from_parts(&labeled, &unlabeled))
    }
}

impl TransductiveModel for MeanPredictor {
    fn fit(&self, problem: &Problem) -> Result<Scores> {
        MeanPredictor::fit(self, problem)
    }

    fn name(&self) -> String {
        "mean predictor (lambda = infinity)".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::soft::SoftCriterion;
    use gssl_linalg::Matrix;

    #[test]
    fn predicts_label_mean_everywhere() {
        let w = Matrix::filled(5, 5, 1.0);
        let p = Problem::new(w, vec![1.0, 1.0, 0.0]).unwrap();
        let scores = MeanPredictor::new().fit(&p).unwrap();
        for &s in scores.all() {
            assert!((s - 2.0 / 3.0).abs() < 1e-15);
        }
    }

    #[test]
    fn soft_criterion_converges_to_mean_as_lambda_grows() {
        // Proposition II.2: on a connected graph the soft solution tends
        // to the constant labeled mean.
        let w = Matrix::from_rows(&[
            &[1.0, 0.6, 0.3, 0.2],
            &[0.6, 1.0, 0.5, 0.3],
            &[0.3, 0.5, 1.0, 0.7],
            &[0.2, 0.3, 0.7, 1.0],
        ])
        .unwrap();
        let p = Problem::new(w, vec![1.0, 0.0]).unwrap();
        let limit = MeanPredictor::new().fit(&p).unwrap();
        let mut prev_gap = f64::INFINITY;
        for &lambda in &[1.0, 10.0, 100.0, 1000.0] {
            let soft = SoftCriterion::new(lambda).unwrap().fit(&p).unwrap();
            let gap: f64 = soft
                .all()
                .iter()
                .zip(limit.all())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            assert!(gap < prev_gap, "gap did not shrink at lambda {lambda}");
            prev_gap = gap;
        }
        assert!(prev_gap < 1e-3, "soft(1000) still {prev_gap} from the mean");
    }

    #[test]
    fn single_label_mean_is_that_label() {
        let w = Matrix::filled(3, 3, 1.0);
        let p = Problem::new(w, vec![0.8]).unwrap();
        let scores = MeanPredictor::new().fit(&p).unwrap();
        assert_eq!(scores.unlabeled(), &[0.8, 0.8]);
    }

    #[test]
    fn name_mentions_infinity() {
        assert!(MeanPredictor::new().name().contains("infinity"));
    }
}
