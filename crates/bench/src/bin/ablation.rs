//! Ablations over the design choices DESIGN.md calls out:
//!
//! 1. **Kernel family** — the paper's experiments use the Gaussian RBF,
//!    which violates the compact-support condition (ii) of Theorem II.1;
//!    the compactly supported kernels satisfy all three conditions. Does
//!    the choice matter in practice?
//! 2. **Bandwidth rule** — the paper's `(log n/n)^{1/d}` rate vs the
//!    median heuristic vs Silverman's rule.
//! 3. **Criterion variant** — hard vs Nadaraya–Watson vs LLGC (Zhou et
//!    al., the paper's reference \[12\]) vs the soft criterion.

use gssl::{
    HardCriterion, LocalGlobalConsistency, NadarayaWatson, PLaplacian, Problem, SoftCriterion,
    TransductiveModel,
};
use gssl_bench::runner::CliArgs;
use gssl_datasets::synthetic::{paper_dataset, PaperModel, PAPER_DIM};
use gssl_graph::{affinity::affinity_matrix, Bandwidth, Kernel};
use gssl_stats::metrics::rmse;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn average_rmse(
    kernel: Kernel,
    bandwidth: Bandwidth,
    model: &dyn TransductiveModel,
    n: usize,
    m: usize,
    reps: u64,
    seed: u64,
) -> Result<f64, Box<dyn std::error::Error>> {
    let mut total = 0.0;
    for rep in 0..reps {
        let mut rng = StdRng::seed_from_u64(seed + rep);
        let ds = paper_dataset(PaperModel::Linear, n + m, &mut rng)?;
        let ssl = ds.arrange_prefix(n)?;
        let truth = ssl.hidden_truth.as_ref().expect("synthetic truth");
        let h = bandwidth.resolve(&ssl.inputs, Some(n))?;
        let w = affinity_matrix(&ssl.inputs, kernel, h)?;
        let problem = Problem::new(w, ssl.labels.clone())?;
        let scores = model.fit(&problem)?;
        total += rmse(truth, scores.unlabeled())?;
    }
    Ok(total / reps as f64)
}

fn run(args: &CliArgs) -> Result<(), Box<dyn std::error::Error>> {
    let reps = args.repetitions.unwrap_or(20) as u64;
    let seed = args.seed.unwrap_or(1357);
    let (n, m) = (200, 30);
    let hard = HardCriterion::new();

    println!("== Ablation 1: kernel family (hard criterion, n = {n}, m = {m}, {reps} reps) ==");
    println!(
        "{:>14} {:>12} {:>12} {:>22}",
        "kernel", "RMSE @ h_n", "RMSE @ 3h_n", "meets Thm II.1 (i-iii)"
    );
    let h_n = gssl_graph::bandwidth::paper_rate(n, PAPER_DIM)?;
    for kernel in Kernel::all() {
        // At the paper's bandwidth compact kernels may strand vertices
        // (their support is finite); report instead of aborting — that IS
        // a finding. At 3x the rate every kernel connects.
        let narrow = average_rmse(kernel, Bandwidth::Fixed(h_n), &hard, n, m, reps, seed)
            .map(|v| format!("{v:.4}"))
            .unwrap_or_else(|_| "stranded".to_owned());
        let wide = average_rmse(kernel, Bandwidth::Fixed(3.0 * h_n), &hard, n, m, reps, seed)
            .map(|v| format!("{v:.4}"))
            .unwrap_or_else(|_| "stranded".to_owned());
        println!(
            "{:>14} {:>12} {:>12} {:>22}",
            kernel.to_string(),
            narrow,
            wide,
            kernel.satisfies_consistency_conditions()
        );
    }

    println!("\n== Ablation 2: bandwidth rule (Gaussian, hard criterion) ==");
    println!("{:>18} {:>10}", "rule", "RMSE");
    let rules: [(&str, Bandwidth); 3] = [
        ("paper rate", Bandwidth::PaperRate),
        ("median heuristic", Bandwidth::MedianHeuristic),
        ("silverman", Bandwidth::Silverman),
    ];
    for (name, rule) in rules {
        let value = average_rmse(Kernel::Gaussian, rule, &hard, n, m, reps, seed)?;
        println!("{name:>18} {value:>10.4}");
    }

    println!("\n== Ablation 3: criterion variant (Gaussian, paper-rate bandwidth) ==");
    println!("{:>38} {:>10}", "criterion", "RMSE");
    let models: Vec<Box<dyn TransductiveModel>> = vec![
        Box::new(HardCriterion::new()),
        Box::new(NadarayaWatson::new()),
        Box::new(SoftCriterion::new(0.1)?),
        Box::new(SoftCriterion::new(5.0)?),
        Box::new(LocalGlobalConsistency::new(0.5)?),
        Box::new(LocalGlobalConsistency::new(0.99)?),
        Box::new(PLaplacian::new(1.5)?),
        Box::new(PLaplacian::new(3.0)?),
    ];
    for model in &models {
        let value = average_rmse(
            Kernel::Gaussian,
            Bandwidth::PaperRate,
            model.as_ref(),
            n,
            m,
            reps,
            seed,
        )?;
        println!("{:>38} {value:>10.4}", model.name());
    }

    println!("\nReading: (1) the Gaussian kernel's compact-support violation is");
    println!("harmless here — compact kernels behave comparably when their support");
    println!("covers enough neighbours, and strand vertices when it does not;");
    println!("(2) the paper-rate bandwidth is competitive with data-driven rules;");
    println!("(3) the hard criterion and Nadaraya–Watson track each other (the");
    println!("coupling of Theorem II.1), and heavily smoothed variants trail.");
    Ok(())
}

fn main() {
    let args = match CliArgs::parse(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    if let Err(error) = run(&args) {
        eprintln!("ablation failed: {error}");
        std::process::exit(1);
    }
}
