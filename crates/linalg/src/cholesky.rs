//! Cholesky factorization for symmetric positive-definite systems.
//!
//! The hard-criterion system matrix `D₂₂ − W₂₂` and the soft-criterion
//! matrix `V + λL` are symmetric and (on suitable graphs) positive definite,
//! so Cholesky is the natural direct backend: half the work of LU and an
//! SPD-validity check for free.

use crate::error::{Error, Result};
use crate::matrix::Matrix;
use crate::strict;
use crate::vector::Vector;

/// Absolute symmetry tolerance applied by the `strict-checks` sanitizer to
/// Cholesky inputs (the criteria's system matrices are symmetric exactly,
/// up to assembly rounding).
const STRICT_SYMMETRY_TOL: f64 = 1e-9;

/// A Cholesky factorization `A = L Lᵀ` with `L` lower triangular.
///
/// ```
/// use gssl_linalg::{Cholesky, Matrix, Vector};
/// # fn main() -> Result<(), gssl_linalg::Error> {
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]])?;
/// let chol = Cholesky::factor(&a)?;
/// let x = chol.solve(&Vector::from(vec![6.0, 5.0]))?;
/// let back = a.matvec(&x)?;
/// assert!(back.approx_eq(&Vector::from(vec![6.0, 5.0]), 1e-12));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor, stored dense (upper part zero).
    lower: Matrix,
}

impl Cholesky {
    /// Factorizes a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; symmetry of the input is the
    /// caller's responsibility (use [`Matrix::is_symmetric`] to check).
    ///
    /// # Errors
    ///
    /// * [`Error::NotSquare`] when `a` is not square.
    /// * [`Error::NotPositiveDefinite`] when a diagonal pivot is `<= 0`
    ///   (or not finite).
    /// * [`Error::NonFiniteValue`] / [`Error::InvalidArgument`] under
    ///   `strict-checks` when `a` is non-finite or asymmetric.
    pub fn factor(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(Error::NotSquare { shape: a.shape() });
        }
        strict::check_finite_matrix("cholesky.factor input", a)?;
        strict::check_symmetric("cholesky.factor input", a, STRICT_SYMMETRY_TOL)?;
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            let mut diag = a.get(j, j);
            for k in 0..j {
                let v = l.get(j, k);
                diag -= v * v;
            }
            if !(diag > 0.0) || !diag.is_finite() {
                return Err(Error::NotPositiveDefinite { pivot: j });
            }
            let diag_sqrt = diag.sqrt();
            l.set(j, j, diag_sqrt);
            for i in (j + 1)..n {
                let mut sum = a.get(i, j);
                for k in 0..j {
                    sum -= l.get(i, k) * l.get(j, k);
                }
                l.set(i, j, sum / diag_sqrt);
            }
        }
        Ok(Cholesky { lower: l })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lower.rows()
    }

    /// Borrows the lower-triangular factor `L`.
    /// shape: (n, n)
    pub fn lower(&self) -> &Matrix {
        &self.lower
    }

    /// Solves `A x = b` via forward and back substitution.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when `b.len() != dim()`, or
    /// [`Error::NonFiniteValue`] under `strict-checks` when the right-hand
    /// side or the computed solution is non-finite.
    /// shape: (b.len,)
    pub fn solve(&self, b: &Vector) -> Result<Vector> {
        let n = self.dim();
        if b.len() != n {
            return Err(Error::DimensionMismatch {
                operation: "cholesky solve",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        strict::check_finite("cholesky.solve rhs", b.as_slice())?;
        // Forward: L y = b.
        let mut x = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for j in 0..i {
                sum -= self.lower.get(i, j) * x[j];
            }
            x[i] = sum / self.lower.get(i, i);
        }
        // Backward: Lᵀ x = y.
        for i in (0..n).rev() {
            let mut sum = x[i];
            for j in (i + 1)..n {
                sum -= self.lower.get(j, i) * x[j];
            }
            x[i] = sum / self.lower.get(i, i);
        }
        strict::check_finite("cholesky.solve output", &x)?;
        Ok(Vector::from(x))
    }

    /// Solves `A X = B` column by column.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when `B.rows() != dim()`.
    /// shape: (b.rows, b.cols)
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(Error::DimensionMismatch {
                operation: "cholesky solve_matrix",
                left: (n, n),
                right: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let x = self.solve(&b.col(j))?;
            for i in 0..n {
                out.set(i, j, x[i]);
            }
        }
        Ok(out)
    }

    /// Determinant (product of squared diagonal entries of `L`).
    pub fn det(&self) -> f64 {
        let mut det = 1.0;
        for i in 0..self.dim() {
            let d = self.lower.get(i, i);
            det *= d * d;
        }
        det
    }

    /// Log-determinant, numerically stable for large well-conditioned
    /// matrices where [`Cholesky::det`] would overflow.
    pub fn log_det(&self) -> f64 {
        (0..self.dim())
            .map(|i| 2.0 * self.lower.get(i, i).ln())
            .sum()
    }

    /// Inverse of the factored matrix.
    ///
    /// # Errors
    ///
    /// Propagates errors from the underlying solves.
    /// shape: (n, n)
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }
}

/// Tests whether a symmetric matrix is positive definite by attempting a
/// Cholesky factorization.
pub fn is_positive_definite(a: &Matrix) -> bool {
    Cholesky::factor(a).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd_sample() -> Matrix {
        // A = Bᵀ B + I is SPD for any B.
        let b =
            Matrix::from_rows(&[&[1.0, 2.0, 0.5], &[0.0, 1.0, -1.0], &[2.0, 0.0, 1.0]]).unwrap();
        &b.transpose().matmul(&b).unwrap() + &Matrix::identity(3)
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let a = spd_sample();
        let chol = Cholesky::factor(&a).unwrap();
        let l = chol.lower();
        let back = l.matmul(&l.transpose()).unwrap();
        assert!(back.approx_eq(&a, 1e-12));
    }

    #[test]
    fn lower_factor_is_lower_triangular() {
        let chol = Cholesky::factor(&spd_sample()).unwrap();
        let l = chol.lower();
        for i in 0..3 {
            for j in (i + 1)..3 {
                assert_eq!(l.get(i, j), 0.0);
            }
        }
    }

    #[test]
    fn solve_has_small_residual() {
        let a = spd_sample();
        let b = Vector::from(vec![1.0, -2.0, 0.5]);
        let x = Cholesky::factor(&a).unwrap().solve(&b).unwrap();
        let back = a.matvec(&x).unwrap();
        assert!(back.approx_eq(&b, 1e-12));
    }

    #[test]
    fn solve_matrix_matches_identity_inverse() {
        let a = spd_sample();
        let chol = Cholesky::factor(&a).unwrap();
        let inv = chol.inverse().unwrap();
        assert!(a
            .matmul(&inv)
            .unwrap()
            .approx_eq(&Matrix::identity(3), 1e-11));
    }

    #[test]
    fn rejects_indefinite_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(matches!(
            Cholesky::factor(&a),
            Err(Error::NotPositiveDefinite { pivot: 1 })
        ));
        assert!(!is_positive_definite(&a));
        assert!(is_positive_definite(&Matrix::identity(2)));
    }

    #[test]
    fn rejects_non_square() {
        assert!(matches!(
            Cholesky::factor(&Matrix::zeros(2, 3)),
            Err(Error::NotSquare { .. })
        ));
    }

    #[test]
    fn rejects_zero_matrix() {
        assert!(matches!(
            Cholesky::factor(&Matrix::zeros(2, 2)),
            Err(Error::NotPositiveDefinite { pivot: 0 })
        ));
    }

    #[test]
    fn det_and_log_det_agree() {
        let a = spd_sample();
        let chol = Cholesky::factor(&a).unwrap();
        assert!((chol.det().ln() - chol.log_det()).abs() < 1e-10);
        // Cross-check against LU determinant.
        let lu_det = crate::lu::Lu::factor(&a).unwrap().det();
        assert!((chol.det() - lu_det).abs() < 1e-8 * lu_det.abs());
    }

    #[test]
    fn solve_rejects_wrong_len() {
        let chol = Cholesky::factor(&Matrix::identity(2)).unwrap();
        assert!(chol.solve(&Vector::zeros(3)).is_err());
        assert!(chol.solve_matrix(&Matrix::zeros(1, 1)).is_err());
    }

    #[test]
    fn matches_lu_solution() {
        let a = spd_sample();
        let b = Vector::from(vec![3.0, 1.0, 4.0]);
        let x_chol = Cholesky::factor(&a).unwrap().solve(&b).unwrap();
        let x_lu = crate::lu::solve(&a, &b).unwrap();
        assert!(x_chol.approx_eq(&x_lu, 1e-10));
    }
}
