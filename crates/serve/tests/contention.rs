//! Pool-contention test: several reader threads hammer `predict_batch`
//! (each call spawning its own scoped worker pool) while a writer thread
//! streams labels in via `observe_label`, all interleaved through a
//! barrier-sequenced lockstep — no sleeps, no timing assumptions. Every
//! round's concurrent predictions must match a serial twin that applied
//! the same labels one at a time followed by a full refit, to 1e-10.

use gssl_datasets::synthetic::two_moons;
use gssl_datasets::SemiSupervisedData;
use gssl_graph::Kernel;
use gssl_serve::{EngineConfig, Prediction, QueryPoint, ServingEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Barrier, RwLock};

const BANDWIDTH: f64 = 0.7;
const READERS: usize = 3;
const ROUNDS: usize = 6;

/// Two-moons data arranged labeled-first with the labeled set strided
/// across the whole index range, so both classes are represented.
fn moons(count: usize, n_labeled: usize, seed: u64) -> SemiSupervisedData {
    let ds = two_moons(count, 0.08, &mut StdRng::seed_from_u64(seed)).expect("two_moons");
    let stride = count / n_labeled;
    let labeled: Vec<usize> = (0..n_labeled).map(|i| i * stride).collect();
    ds.arrange(&labeled).expect("arrange")
}

/// A batch of out-of-sample queries wide enough to engage the pool's
/// parallel path on every `predict_batch` call.
fn query_grid() -> Vec<QueryPoint> {
    let mut queries = Vec::new();
    for i in 0..8 {
        for j in 0..4 {
            let x = -1.2 + 3.4 * (i as f64) / 7.0;
            let y = -0.8 + 1.9 * (j as f64) / 3.0;
            queries.push(QueryPoint::new(vec![x, y]));
        }
    }
    queries
}

fn assert_close(round: usize, got: &[Prediction], want: &[Prediction]) {
    assert_eq!(got.len(), want.len());
    for (q, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            (g.score - w.score).abs() < 1e-10,
            "round {round}, query {q}: concurrent {} vs serial twin {}",
            g.score,
            w.score
        );
        assert_eq!(g.class, w.class, "round {round}, query {q}");
    }
}

#[test]
fn interleaved_observe_and_predict_match_serial_refit_twin() {
    let ssl = moons(40, 8, 13);
    let n_labeled = ssl.n_labeled();
    let queries = query_grid();

    // Labels streamed in during the run: the true targets of the first
    // ROUNDS unlabeled vertices.
    let updates: Vec<(usize, f64)> = (0..ROUNDS)
        .map(|r| (n_labeled + r, ssl.hidden_targets[r]))
        .collect();

    // Serial refit twin: same fit, same update sequence, but each label is
    // followed by a full refit, and predictions are taken single-threaded.
    // expected[r] is the batch after r labels have been applied.
    let twin_config = EngineConfig::new(Kernel::Gaussian, BANDWIDTH)
        .workers(1)
        .refactor_every(0)
        .residual_tolerance(1e-3);
    let mut twin = ServingEngine::fit(&ssl.inputs, &ssl.labels, twin_config).expect("twin fit");
    let mut expected: Vec<Vec<Prediction>> = Vec::with_capacity(ROUNDS + 1);
    expected.push(twin.predict_batch(&queries).expect("twin predict"));
    for &(node, y) in &updates {
        twin.observe_label(node, y).expect("twin observe");
        twin.refit().expect("twin refit");
        expected.push(twin.predict_batch(&queries).expect("twin predict"));
    }

    // Shared engine: rank-1 updates only, multi-worker batch pool.
    let config = EngineConfig::new(Kernel::Gaussian, BANDWIDTH)
        .workers(4)
        .refactor_every(0)
        .residual_tolerance(1e-3);
    let engine = ServingEngine::fit(&ssl.inputs, &ssl.labels, config).expect("engine fit");
    let shared = RwLock::new(engine);

    // Lockstep: two barriers per round. Between `start` and `mid` the
    // readers hold read locks and predict concurrently (their pools
    // contend); the writer stays out. After `mid` the writer applies the
    // round's label; readers cannot pass the next `start` until it has,
    // because the writer only arrives there after writing.
    let start = Barrier::new(READERS + 1);
    let mid = Barrier::new(READERS + 1);

    let reader_results: Vec<Vec<Vec<Prediction>>> = std::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            for &(node, y) in &updates {
                start.wait();
                mid.wait();
                let mut guard = shared.write().expect("write lock");
                guard.observe_label(node, y).expect("observe_label");
            }
            // Final round: readers observe the fully-updated state.
            start.wait();
            mid.wait();
        });

        let readers: Vec<_> = (0..READERS)
            .map(|_| {
                scope.spawn(|| {
                    let mut rounds = Vec::with_capacity(ROUNDS + 1);
                    for _ in 0..=ROUNDS {
                        start.wait();
                        let batch = {
                            let guard = shared.read().expect("read lock");
                            guard.predict_batch(&queries).expect("predict_batch")
                        };
                        rounds.push(batch);
                        mid.wait();
                    }
                    rounds
                })
            })
            .collect();

        let results = readers
            .into_iter()
            .map(|h| h.join().expect("reader thread"))
            .collect();
        writer.join().expect("writer thread");
        results
    });

    for (reader, rounds) in reader_results.iter().enumerate() {
        assert_eq!(rounds.len(), ROUNDS + 1, "reader {reader}");
        for (round, batch) in rounds.iter().enumerate() {
            // All readers of one round saw the identical engine state, so
            // their batches must agree exactly with reader 0's.
            assert_eq!(
                batch, &reader_results[0][round],
                "reader {reader} diverged in round {round}"
            );
            // And the concurrent rank-1 engine must track the serial
            // refit twin to tight tolerance.
            assert_close(round, batch, &expected[round]);
        }
    }

    // The streamed labels must have actually taken effect.
    let final_engine = shared.into_inner().expect("into_inner");
    assert_eq!(final_engine.n_labeled(), n_labeled + ROUNDS);
}

/// The guarded-refactor fallback re-factors the rank-1-maintained cached
/// system without reassembling it from the graph. Forcing that path on
/// every update (`refactor_every(1)`) must still track a serial twin that
/// does a full rebuild-from-scratch refit after each label, to 1e-10 —
/// i.e. the cached system/rhs stay exactly equal to a fresh assembly.
#[test]
fn guarded_refactor_matches_full_refit_twin() {
    let ssl = moons(40, 8, 13);
    let n_labeled = ssl.n_labeled();
    let queries = query_grid();
    let updates: Vec<(usize, f64)> = (0..ROUNDS)
        .map(|r| (n_labeled + r, ssl.hidden_targets[r]))
        .collect();

    let base = EngineConfig::new(Kernel::Gaussian, BANDWIDTH).workers(1);
    let mut guarded = ServingEngine::fit(&ssl.inputs, &ssl.labels, base.clone().refactor_every(1))
        .expect("guarded fit");
    let mut twin =
        ServingEngine::fit(&ssl.inputs, &ssl.labels, base.refactor_every(0)).expect("twin fit");

    for (round, &(node, y)) in updates.iter().enumerate() {
        guarded.observe_label(node, y).expect("guarded observe");
        twin.observe_label(node, y).expect("twin observe");
        twin.refit().expect("twin refit");
        let got = guarded.predict_batch(&queries).expect("guarded predict");
        let want = twin.predict_batch(&queries).expect("twin predict");
        assert_close(round, &got, &want);
    }
    // Every update triggered the periodic guard exactly once.
    assert_eq!(guarded.metrics().guarded_refactors, ROUNDS);
}
