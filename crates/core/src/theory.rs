//! Executable diagnostics for the quantities in the proof of Theorem II.1.
//!
//! The paper's consistency argument controls three quantities:
//!
//! 1. the **tiny-element bound**: `‖D₂₂⁻¹W₂₂‖_max ≤ M / (n h_n^d)` with
//!    probability → 1, which makes the Neumann series
//!    `(I − D₂₂⁻¹W₂₂)⁻¹ = I + S` converge with `S` also tiny;
//! 2. the **coupling gap** `g_{n+a}` between the hard-criterion row
//!    weights `w_{i,n+a}/d_{n+a}` and the Nadaraya–Watson weights
//!    `w_{i,n+a}/Σ_{k≤n} w_{k,n+a}`, bounded by `mM/(n h_n^d)`;
//! 3. the **regime ratio** `m/(n h_n^d)`, which must vanish
//!    (`m = o(n h_n^d)`) for consistency.
//!
//! [`TheoryDiagnostics`] measures all three on a concrete problem so the
//! asymptotic statements can be watched converging in experiments.

use crate::error::Result;
use crate::hard::HardCriterion;
use crate::nadaraya_watson::NadarayaWatson;
use crate::problem::Problem;
use gssl_graph::spectral::{spectral_radius, PowerIterationOptions};
use gssl_linalg::Matrix;

/// Measured values of the quantities appearing in the proof of
/// Theorem II.1.
#[derive(Debug, Clone, PartialEq)]
pub struct TheoryDiagnostics {
    /// `‖D₂₂⁻¹W₂₂‖_max` — the "tiny elements" of the proof.
    pub substochastic_max: f64,
    /// Spectral radius of `D₂₂⁻¹W₂₂`; `< 1` iff the Neumann series
    /// converges (equivalently, the problem is anchored).
    pub spectral_radius: f64,
    /// `max_a |g_{n+a}|` — the worst coupling gap between the hard
    /// criterion's direct term and the Nadaraya–Watson estimator.
    pub coupling_gap_max: f64,
    /// `max_a |f̂_{n+a} − q̂_{n+a}|` — the realized disagreement between
    /// the full hard solution and Nadaraya–Watson (what the proof bounds).
    pub solution_gap_max: f64,
    /// The regime ratio `m / (n h^d)` (requires the bandwidth used to
    /// build the graph).
    pub regime_ratio: f64,
}

impl TheoryDiagnostics {
    /// Computes all diagnostics for a problem built with bandwidth `h` on
    /// `d`-dimensional inputs.
    ///
    /// # Errors
    ///
    /// * Propagates solver errors (unanchored problems, zero kernel mass).
    /// * The spectral radius is reported as `NaN` when power iteration
    ///   does not settle (rare; e.g. symmetric eigenvalue ties).
    pub fn compute(problem: &Problem, bandwidth: f64, dim: usize) -> Result<Self> {
        let n = problem.n_labeled();
        let m = problem.n_unlabeled();
        let blocks = problem.weight_blocks()?;
        let degrees = problem.degrees();

        // D₂₂⁻¹W₂₂ and its max element / spectral radius.
        let mut substochastic = Matrix::zeros(m, m);
        for a in 0..m {
            let d = degrees[n + a];
            for b in 0..m {
                substochastic.set(a, b, blocks.a22.get(a, b) / d);
            }
        }
        let substochastic_max = substochastic.norm_max();
        let radius = if m == 0 {
            0.0
        } else {
            spectral_radius(&substochastic, &PowerIterationOptions::default()).unwrap_or(f64::NAN)
        };

        // Coupling gap g_{n+a} (paper, Section IV): with |Y| ≤ max|Y|,
        // |g| ≤ Σ_{k>n} w_{k,n+a} / d_{n+a} · max|Y| — we measure the
        // exact weight discrepancy (unlabeled share of the degree).
        let y_max = problem
            .labels()
            .iter()
            .fold(0.0f64, |acc, y| acc.max(y.abs()))
            .max(1.0);
        let mut coupling_gap_max = 0.0f64;
        for a in 0..m {
            let unlabeled_mass: f64 = (0..m).map(|b| blocks.a22.get(a, b)).sum();
            let gap = y_max * unlabeled_mass / degrees[n + a];
            coupling_gap_max = coupling_gap_max.max(gap);
        }

        // Realized disagreement between the two estimators.
        let solution_gap_max = if m == 0 {
            0.0
        } else {
            let hard = HardCriterion::new().fit(problem)?;
            let nw = NadarayaWatson::new().fit(problem)?;
            hard.unlabeled()
                .iter()
                .zip(nw.unlabeled())
                .map(|(a, b)| (a - b).abs())
                .fold(
                    0.0,
                    |acc, x| if x.total_cmp(&acc).is_gt() { x } else { acc },
                )
        };

        let regime_ratio = m as f64 / (n as f64 * bandwidth.powi(dim as i32));

        Ok(TheoryDiagnostics {
            substochastic_max,
            spectral_radius: radius,
            coupling_gap_max,
            solution_gap_max,
            regime_ratio,
        })
    }
}

/// Verifies the Neumann-series step of the proof on a concrete problem:
/// truncating `(I − P)⁻¹ = I + P + P² + …` (with `P = D₂₂⁻¹W₂₂`) after
/// `terms` powers, how far is the truncation from the exact inverse?
///
/// Returns the max-norm error per truncation length `1..=terms` — a
/// strictly decreasing sequence whenever `ρ(P) < 1`, which is exactly
/// what the paper's "tiny elements" argument establishes.
///
/// # Errors
///
/// * Propagates partition errors.
/// * [`crate::Error::Linalg`] when `I − P` is singular (unanchored
///   problem).
pub fn neumann_truncation_errors(problem: &Problem, terms: usize) -> Result<Vec<f64>> {
    let n = problem.n_labeled();
    let m = problem.n_unlabeled();
    if m == 0 {
        return Ok(vec![0.0; terms]);
    }
    let blocks = problem.weight_blocks()?;
    let degrees = problem.degrees();
    let mut p = Matrix::zeros(m, m);
    for a in 0..m {
        for b in 0..m {
            p.set(a, b, blocks.a22.get(a, b) / degrees[n + a]);
        }
    }
    let identity = Matrix::identity(m);
    let exact = gssl_linalg::inverse(&(&identity - &p))?;

    let mut errors = Vec::with_capacity(terms);
    let mut partial = identity.clone();
    let mut power = identity;
    for _ in 0..terms {
        power = power.matmul(&p)?;
        partial = &partial + &power;
        errors.push((&exact - &partial).norm_max());
    }
    Ok(errors)
}

/// Evaluates the paper's theoretical bound `M/(n h^d)` with
/// `M = 2k*/(sβ)` for a kernel meeting conditions (i)–(iii), using the
/// kernel's own `(β, δ)` certificate and a density lower bound `s`.
///
/// Useful for checking that the measured [`TheoryDiagnostics`] fall under
/// the bound in simulation.
pub fn tiny_element_bound(
    kernel: gssl_graph::Kernel,
    density_lower_bound: f64,
    n: usize,
    bandwidth: f64,
    dim: usize,
) -> f64 {
    let (beta, _delta) = kernel.lower_bound_ball();
    let k_star = kernel.upper_bound();
    // Degenerate inputs (no samples, vanishing density or bandwidth) make
    // the bound vacuous; return it explicitly instead of dividing by zero.
    if n == 0 || density_lower_bound <= 0.0 || bandwidth <= 0.0 || beta <= 0.0 {
        return f64::INFINITY;
    }
    let m_const = 2.0 * k_star / (density_lower_bound * beta);
    m_const / (n as f64 * bandwidth.powi(dim as i32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gssl_graph::{affinity::affinity_matrix, Kernel};

    fn grid_problem(n: usize, m: usize, h: f64) -> Problem {
        // Points on a 1-D grid in [0, 1]; labeled first.
        let total = n + m;
        let points = Matrix::from_fn(total, 1, |i, _| i as f64 / total as f64);
        let w = affinity_matrix(&points, Kernel::Gaussian, h).unwrap();
        let labels: Vec<f64> = (0..n).map(|i| (i % 2) as f64).collect();
        Problem::new(w, labels).unwrap()
    }

    #[test]
    fn diagnostics_are_finite_and_in_range() {
        let p = grid_problem(20, 5, 0.3);
        let d = TheoryDiagnostics::compute(&p, 0.3, 1).unwrap();
        assert!(d.substochastic_max > 0.0 && d.substochastic_max < 1.0);
        assert!(d.spectral_radius > 0.0 && d.spectral_radius < 1.0);
        assert!(d.coupling_gap_max >= 0.0);
        assert!(d.solution_gap_max >= 0.0);
        assert!((d.regime_ratio - 5.0 / (20.0 * 0.3)).abs() < 1e-12);
    }

    #[test]
    fn more_labels_shrink_every_gap() {
        // Fixed m; growing n should shrink the tiny elements, the coupling
        // gap and the realized hard-vs-NW disagreement.
        let small = TheoryDiagnostics::compute(&grid_problem(10, 5, 0.4), 0.4, 1).unwrap();
        let large = TheoryDiagnostics::compute(&grid_problem(200, 5, 0.4), 0.4, 1).unwrap();
        assert!(large.substochastic_max < small.substochastic_max);
        assert!(large.coupling_gap_max < small.coupling_gap_max);
        assert!(large.solution_gap_max < small.solution_gap_max);
        assert!(large.regime_ratio < small.regime_ratio);
    }

    #[test]
    fn more_unlabeled_grows_the_regime_ratio() {
        let few = TheoryDiagnostics::compute(&grid_problem(50, 5, 0.4), 0.4, 1).unwrap();
        let many = TheoryDiagnostics::compute(&grid_problem(50, 100, 0.4), 0.4, 1).unwrap();
        assert!(many.regime_ratio > few.regime_ratio);
        assert!(many.coupling_gap_max > few.coupling_gap_max);
    }

    #[test]
    fn spectral_radius_below_one_iff_anchored() {
        let p = grid_problem(30, 10, 0.3);
        let d = TheoryDiagnostics::compute(&p, 0.3, 1).unwrap();
        assert!(d.spectral_radius < 1.0);
    }

    #[test]
    fn fully_labeled_problem_has_trivial_diagnostics() {
        let p = grid_problem(10, 0, 0.3);
        let d = TheoryDiagnostics::compute(&p, 0.3, 1).unwrap();
        assert_eq!(d.substochastic_max, 0.0);
        assert_eq!(d.spectral_radius, 0.0);
        assert_eq!(d.coupling_gap_max, 0.0);
        assert_eq!(d.solution_gap_max, 0.0);
        assert_eq!(d.regime_ratio, 0.0);
    }

    #[test]
    fn neumann_truncation_converges_monotonically() {
        let p = grid_problem(40, 8, 0.3);
        let errors = neumann_truncation_errors(&p, 30).unwrap();
        assert_eq!(errors.len(), 30);
        for pair in errors.windows(2) {
            assert!(
                pair[1] <= pair[0] + 1e-12,
                "truncation error grew: {pair:?}"
            );
        }
        assert!(
            errors.last().unwrap() < &1e-6,
            "30 terms should nearly exactly invert, got {}",
            errors.last().unwrap()
        );
        // Fully labeled: trivially zero.
        let trivial = neumann_truncation_errors(&grid_problem(10, 0, 0.3), 3).unwrap();
        assert_eq!(trivial, vec![0.0; 3]);
    }

    #[test]
    fn bound_formula_decreases_in_n() {
        let b10 = tiny_element_bound(Kernel::Epanechnikov, 0.5, 10, 0.3, 2);
        let b1000 = tiny_element_bound(Kernel::Epanechnikov, 0.5, 1000, 0.3, 2);
        assert!(b1000 < b10);
        assert!(b1000 > 0.0);
    }
}
