//! The matrix-free path at a scale where dense solves get painful: a kNN
//! graph over several thousand two-moons points, solved by the
//! policy-selected sparse backend (preconditioned CG or AMG, chosen from
//! the system's size and bandwidth) and by label propagation without
//! ever materializing a dense matrix.
//!
//! ```text
//! cargo run --release --example sparse_large_scale
//! ```

use gssl::{HardCriterion, HardSolver, LabelPropagation, Problem};
use gssl_datasets::synthetic::two_moons;
use gssl_graph::{knn_graph, Kernel, Symmetrization};
use gssl_linalg::{CsrMatrix, SolverPolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let total = 2000;
    let mut rng = StdRng::seed_from_u64(123);
    let ds = two_moons(total, 0.05, &mut rng)?;
    // One label per moon, mid-arc.
    let ssl = ds.arrange(&[total / 4, 3 * total / 4])?;

    let t0 = Instant::now();
    let graph = knn_graph(
        &ssl.inputs,
        12,
        Kernel::Gaussian,
        0.2,
        Symmetrization::Union,
    )?;
    println!(
        "kNN graph: {} vertices, {} edges ({:.1?}) — density {:.4}%",
        total,
        graph.nnz() / 2,
        t0.elapsed(),
        100.0 * graph.nnz() as f64 / (total * total) as f64
    );

    // The unified Problem holds the CSR graph directly; every criterion
    // below runs matrix-free on it.
    let problem = Problem::new(graph, ssl.labels.clone())?;
    let truth = ssl.hidden_targets_binary();

    // The solver policy inspects the Eq. 5 system's size, density and
    // bandwidth and picks the backend: dense direct for small systems,
    // IC(0)-preconditioned CG for narrow bands, AMG for large wide-band
    // graphs like this one.
    let policy = SolverPolicy::default();
    let system: CsrMatrix = problem.unlabeled_system_csr()?;
    println!(
        "policy on the {}-dim system (bandwidth {}): {}",
        system.rows(),
        system.bandwidth(),
        policy.select_sparse(&system).as_str()
    );

    let t1 = Instant::now();
    let cg_scores = HardCriterion::new()
        .solver(HardSolver::Auto(policy))
        .fit(&problem)?;
    let cg_time = t1.elapsed();

    // Jacobi sweeps converge slowly on long chain-like manifolds (the
    // spectral gap is tiny), so this takes thousands of sweeps where CG
    // needs a few hundred matvecs — which is the point of the comparison.
    let t2 = Instant::now();
    let (prop_scores, sweeps) = LabelPropagation::new()
        .max_iterations(200_000)
        .tolerance(1e-8)
        .fit_with_iterations(&problem)?;
    let prop_time = t2.elapsed();

    let accuracy = |scores: &gssl::Scores| {
        scores
            .unlabeled_predictions(0.5)
            .iter()
            .zip(&truth)
            .filter(|(p, t)| p == t)
            .count() as f64
            / truth.len() as f64
    };

    println!(
        "policy-selected fit: {:.1?}, accuracy {:.2}%",
        cg_time,
        accuracy(&cg_scores) * 100.0
    );
    println!(
        "label propagation:   {:.1?} ({sweeps} sweeps), accuracy {:.2}%",
        prop_time,
        accuracy(&prop_scores) * 100.0
    );

    let gap = cg_scores
        .unlabeled()
        .iter()
        .zip(prop_scores.unlabeled())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("max CG-vs-propagation gap: {gap:.2e}");

    assert!(
        accuracy(&cg_scores) > 0.95,
        "two moons at scale should solve"
    );
    println!("\n{total} points classified from 2 labels, no dense matrix built ✓");
    Ok(())
}
