//! A small dependency-free scoped thread pool (`std::thread` only).
//!
//! The workloads in this workspace — batch prediction, row-blocked kernel
//! assembly, trailing-matrix updates, one-class-per-task multiclass fits —
//! are embarrassingly parallel: every task reads shared immutable state
//! and writes one independent result. The pool shards an index space into
//! contiguous chunks, hands chunks to scoped worker threads through an
//! atomic cursor, and reassembles results in input order. There are no
//! sleeps, channels or timing assumptions — workers run until the cursor
//! is exhausted and `std::thread::scope` joins them — so behaviour is
//! deterministic up to scheduling and results are **bit-identical** to the
//! sequential loop (each item is computed by exactly one worker with the
//! same per-item operation order, and reduction happens in input order on
//! the calling thread).

use crate::error::{Error, Result};
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// Chunk width used to shard a batch of `len` items across `workers`
/// threads: small enough to balance skewed per-item cost, large enough to
/// amortize the atomic increment. Always at least 1.
///
/// Shared with the deterministic interleaving harness in [`crate::sim`] so
/// the schedules it enumerates exercise exactly the production protocol.
pub(crate) fn chunk_size(len: usize, workers: usize) -> usize {
    let workers = workers.max(1);
    (len / (workers * 4)).max(1)
}

/// One step of the chunk-claim protocol: atomically advances the shared
/// cursor by `chunk` and returns the claimed half-open range, or `None`
/// once the batch is exhausted.
///
/// The single `fetch_add` is the *only* synchronization between claimants;
/// `Ordering::Relaxed` suffices because the read-modify-write total order
/// alone makes claims disjoint and exhaustive (no other memory is
/// published through the cursor — results go through a mutex and the
/// scope join). [`crate::sim::enumerate_schedules`] and
/// [`crate::sim::enumerate_schedules_with_width`] check this exhaustively
/// over all bounded interleavings.
pub(crate) fn claim(cursor: &AtomicUsize, chunk: usize, len: usize) -> Option<(usize, usize)> {
    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
    if start >= len {
        return None;
    }
    Some((start, (start + chunk).min(len)))
}

/// Sequential reference path for [`ThreadPool::map`]; also the
/// `Executor::Sequential` implementation, so both sides of every
/// determinism comparison run exactly this loop.
pub(crate) fn map_sequential<T, R, E, F>(items: &[T], f: F) -> Result<Vec<R>, E>
where
    F: Fn(usize, &T) -> Result<R, E>,
{
    items.iter().enumerate().map(|(i, x)| f(i, x)).collect()
}

/// Sequential reference path for [`ThreadPool::map_chunks`]: walks ranges
/// of `width` in ascending order and concatenates results, enforcing the
/// same per-chunk length contract as the parallel path.
pub(crate) fn map_chunks_sequential<R, E, F>(len: usize, width: usize, f: F) -> Result<Vec<R>, E>
where
    E: From<Error>,
    F: Fn(Range<usize>) -> Result<Vec<R>, E>,
{
    check_width(width)?;
    let mut out = Vec::with_capacity(len);
    let mut start = 0;
    while start < len {
        let end = (start + width).min(len);
        let chunk = f(start..end)?;
        check_chunk_len(start, end, chunk.len())?;
        out.extend(chunk);
        start = end;
    }
    Ok(out)
}

/// Sequential reference path for [`ThreadPool::for_each_chunk_mut`].
pub(crate) fn for_each_chunk_mut_sequential<T, F>(
    data: &mut [T],
    width: usize,
    f: F,
) -> Result<(), Error>
where
    F: Fn(usize, &mut [T]),
{
    check_width(width)?;
    for (index, chunk) in data.chunks_mut(width).enumerate() {
        f(index * width, chunk);
    }
    Ok(())
}

fn check_width(width: usize) -> Result<(), Error> {
    if width == 0 {
        return Err(Error::InvalidConfig {
            message: "chunk width must be at least one item".to_owned(),
        });
    }
    Ok(())
}

fn check_chunk_len(start: usize, end: usize, got: usize) -> Result<(), Error> {
    let expected = end - start;
    if got != expected {
        return Err(Error::Internal {
            message: format!(
                "map_chunks closure returned {got} results for range {start}..{end} \
                 (expected {expected})"
            ),
        });
    }
    Ok(())
}

/// A fixed-width scoped thread pool.
///
/// The pool owns no threads between calls: each batch primitive opens a
/// `std::thread::scope`, spawns up to `workers` threads for the duration
/// of the batch and joins them before returning. This keeps the type
/// trivially `Send + Sync` and free of shutdown protocols.
///
/// ```
/// use gssl_runtime::{Error, ThreadPool};
/// # fn main() -> Result<(), Error> {
/// let pool = ThreadPool::new(4)?;
/// let squares = pool.map(&[1.0, 2.0, 3.0], |_, x| Ok::<f64, Error>(x * x))?;
/// assert_eq!(squares, vec![1.0, 4.0, 9.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadPool {
    workers: usize,
}

impl ThreadPool {
    /// Creates a pool with exactly `workers` worker threads per batch.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when `workers == 0`.
    pub fn new(workers: usize) -> Result<Self> {
        if workers == 0 {
            return Err(Error::InvalidConfig {
                message: "thread pool needs at least one worker".to_owned(),
            });
        }
        Ok(ThreadPool { workers })
    }

    /// Creates a pool sized to the host's available parallelism (at least
    /// one worker).
    pub fn with_available_parallelism() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ThreadPool { workers }
    }

    /// Number of worker threads the pool spawns per batch.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Applies `f(index, &item)` to every item, sharding the slice across
    /// the pool's workers, and returns the results in input order.
    ///
    /// `f` runs concurrently on several threads, so it must be `Sync`;
    /// with a single worker (or a batch of at most one item) everything
    /// runs on the calling thread and no threads are spawned. The error
    /// type is generic so callers map with their own error enum — it only
    /// needs a `From<gssl_runtime::Error>` conversion for the (internal)
    /// lost-slot failure.
    ///
    /// # Errors
    ///
    /// When one or more invocations fail, the error of the *lowest input
    /// index* is returned (deterministic regardless of scheduling);
    /// remaining work is still drained and all threads joined first.
    pub fn map<T, R, E, F>(&self, items: &[T], f: F) -> Result<Vec<R>, E>
    where
        T: Sync,
        R: Send,
        E: Send + From<Error>,
        F: Fn(usize, &T) -> Result<R, E> + Sync,
    {
        // Chunked work-stealing via an atomic cursor; see `chunk_size` and
        // `claim` for the protocol and its correctness argument.
        self.map_with_chunk(items, chunk_size(items.len(), self.workers), f)
    }

    /// Like [`ThreadPool::map`] but with width-1 claims: every item is its
    /// own claim unit, so a handful of wildly uneven tasks (per-shard
    /// factorizations whose cost scales with the cube of shard size)
    /// load-balance instead of travelling together inside one chunk.
    ///
    /// Results are reassembled in input order, so for a deterministic `f`
    /// the output is bit-identical to [`map_sequential`] at any worker
    /// count — the claim width only changes who computes an item, never
    /// the per-item operation order.
    ///
    /// # Errors
    ///
    /// Same contract as [`ThreadPool::map`]: lowest-input-index error
    /// wins, internal error when the claim protocol loses a slot.
    pub fn map_tasks<T, R, E, F>(&self, items: &[T], f: F) -> Result<Vec<R>, E>
    where
        T: Sync,
        R: Send,
        E: Send + From<Error>,
        F: Fn(usize, &T) -> Result<R, E> + Sync,
    {
        self.map_with_chunk(items, 1, f)
    }

    fn map_with_chunk<T, R, E, F>(&self, items: &[T], chunk: usize, f: F) -> Result<Vec<R>, E>
    where
        T: Sync,
        R: Send,
        E: Send + From<Error>,
        F: Fn(usize, &T) -> Result<R, E> + Sync,
    {
        if self.workers == 1 || items.len() <= 1 {
            return map_sequential(items, f);
        }

        let cursor = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<Result<R, E>>>> =
            Mutex::new((0..items.len()).map(|_| None).collect());

        let threads = self.workers.min(items.len());
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let Some((start, end)) = claim(&cursor, chunk, items.len()) else {
                        break;
                    };
                    // Compute the whole chunk locally, then publish under
                    // one short lock.
                    let mut local = Vec::with_capacity(end - start);
                    for (i, item) in items[start..end].iter().enumerate() {
                        local.push(f(start + i, item));
                    }
                    let mut guard = slots.lock().unwrap_or_else(PoisonError::into_inner);
                    for (offset, outcome) in local.into_iter().enumerate() {
                        guard[start + offset] = Some(outcome);
                    }
                });
            }
        });

        let collected = slots.into_inner().unwrap_or_else(PoisonError::into_inner);
        let mut out = Vec::with_capacity(items.len());
        for (i, slot) in collected.into_iter().enumerate() {
            match slot {
                Some(Ok(value)) => out.push(value),
                Some(Err(e)) => return Err(e),
                None => {
                    return Err(E::from(Error::Internal {
                        message: format!("batch item {i} was never claimed by a worker"),
                    }))
                }
            }
        }
        Ok(out)
    }

    /// Applies `f(start..end)` to caller-sized ranges of an index space of
    /// `len` items and concatenates the per-range result vectors in
    /// ascending range order.
    ///
    /// This is the row-blocked work-horse: a caller that produces one
    /// result per row passes `len = rows` and computes whole row blocks
    /// per call, amortizing claim overhead over `width` rows. Each closure
    /// invocation must return exactly `end - start` results; ranges are
    /// claimed through the same cursor protocol as [`ThreadPool::map`]
    /// (proven by [`crate::sim::enumerate_schedules_with_width`]), and the
    /// concatenation order is fixed by range start, so the output is
    /// bit-identical to the sequential loop for any worker count.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] (converted into `E`) when
    /// `width == 0`, the lowest-range error from `f` when one or more
    /// invocations fail, and [`Error::Internal`] when a closure violates
    /// the per-range length contract.
    pub fn map_chunks<R, E, F>(&self, len: usize, width: usize, f: F) -> Result<Vec<R>, E>
    where
        R: Send,
        E: Send + From<Error>,
        F: Fn(Range<usize>) -> Result<Vec<R>, E> + Sync,
    {
        check_width(width)?;
        let nchunks = len.div_ceil(width);
        if self.workers == 1 || nchunks <= 1 {
            return map_chunks_sequential(len, width, f);
        }

        let cursor = AtomicUsize::new(0);
        // One slot per range; the cursor starts at zero and advances by
        // exactly `width`, so `start / width` is an exact range index.
        let slots: Mutex<Vec<Option<Result<Vec<R>, E>>>> =
            Mutex::new((0..nchunks).map(|_| None).collect());

        let threads = self.workers.min(nchunks);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let Some((start, end)) = claim(&cursor, width, len) else {
                        break;
                    };
                    let outcome = f(start..end);
                    let mut guard = slots.lock().unwrap_or_else(PoisonError::into_inner);
                    guard[start / width] = Some(outcome);
                });
            }
        });

        let collected = slots.into_inner().unwrap_or_else(PoisonError::into_inner);
        let mut out = Vec::with_capacity(len);
        for (index, slot) in collected.into_iter().enumerate() {
            let start = index * width;
            let end = (start + width).min(len);
            match slot {
                Some(Ok(chunk)) => {
                    check_chunk_len(start, end, chunk.len())?;
                    out.extend(chunk);
                }
                Some(Err(e)) => return Err(e),
                None => {
                    return Err(E::from(Error::Internal {
                        message: format!("range {start}..{end} was never claimed by a worker"),
                    }))
                }
            }
        }
        Ok(out)
    }

    /// Runs `f(start_index, chunk)` over disjoint `width`-sized mutable
    /// chunks of `data`, in parallel across the pool's workers.
    ///
    /// Chunks are carved with `chunks_mut`, so disjointness is enforced by
    /// the borrow checker; workers pop pre-split jobs from a shared stack
    /// under a short lock and run `f` outside it. Because every element
    /// belongs to exactly one chunk and `f` receives the chunk's starting
    /// index in `data`, a deterministic `f` yields output identical to the
    /// sequential loop for any worker count. `f` is infallible — this
    /// primitive backs hot in-place kernels (matvec rows, trailing panel
    /// updates) whose per-element math cannot fail.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when `width == 0`.
    pub fn for_each_chunk_mut<T, F>(&self, data: &mut [T], width: usize, f: F) -> Result<(), Error>
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        check_width(width)?;
        let nchunks = data.len().div_ceil(width);
        if self.workers == 1 || nchunks <= 1 {
            return for_each_chunk_mut_sequential(data, width, f);
        }

        // Pre-split jobs; reversed so `pop()` hands them out in ascending
        // start order (not required for determinism — `f` sees disjoint
        // chunks — but it keeps first-touch locality predictable).
        let mut jobs: Vec<(usize, &mut [T])> = data
            .chunks_mut(width)
            .enumerate()
            .map(|(index, chunk)| (index * width, chunk))
            .collect();
        jobs.reverse();
        let jobs = Mutex::new(jobs);

        let threads = self.workers.min(nchunks);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let job = {
                        let mut guard = jobs.lock().unwrap_or_else(PoisonError::into_inner);
                        guard.pop()
                    };
                    let Some((start, chunk)) = job else {
                        break;
                    };
                    f(start, chunk);
                });
            }
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_workers() {
        assert!(matches!(
            ThreadPool::new(0),
            Err(Error::InvalidConfig { .. })
        ));
    }

    #[test]
    fn available_parallelism_pool_has_workers() {
        assert!(ThreadPool::with_available_parallelism().workers() >= 1);
    }

    #[test]
    fn preserves_input_order() {
        for workers in [1, 2, 3, 8] {
            let pool = ThreadPool::new(workers).unwrap();
            let items: Vec<usize> = (0..257).collect();
            let out = pool
                .map(&items, |i, &x| Ok::<usize, Error>(i * 1000 + x))
                .unwrap();
            let expected: Vec<usize> = (0..257).map(|i| i * 1000 + i).collect();
            assert_eq!(out, expected, "workers = {workers}");
        }
    }

    #[test]
    fn parallel_results_match_sequential() {
        let items: Vec<f64> = (0..500).map(|i| i as f64 * 0.25).collect();
        let sequential = ThreadPool::new(1)
            .unwrap()
            .map(&items, |_, x| Ok::<f64, Error>(x.sin() * x.cos()))
            .unwrap();
        let parallel = ThreadPool::new(6)
            .unwrap()
            .map(&items, |_, x| Ok::<f64, Error>(x.sin() * x.cos()))
            .unwrap();
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn lowest_index_error_wins() {
        let pool = ThreadPool::new(4).unwrap();
        let items: Vec<usize> = (0..100).collect();
        let result: Result<Vec<usize>> = pool.map(&items, |i, &x| {
            if i == 13 || i == 77 {
                Err(Error::Internal {
                    message: format!("boom at {i}"),
                })
            } else {
                Ok(x)
            }
        });
        assert_eq!(
            result,
            Err(Error::Internal {
                message: "boom at 13".to_owned()
            })
        );
    }

    #[test]
    fn empty_and_singleton_batches() {
        let pool = ThreadPool::new(4).unwrap();
        let empty: Vec<usize> = Vec::new();
        assert_eq!(
            pool.map(&empty, |_, &x| Ok::<usize, Error>(x)).unwrap(),
            Vec::<usize>::new()
        );
        assert_eq!(
            pool.map(&[42usize], |_, &x| Ok::<usize, Error>(x)).unwrap(),
            vec![42]
        );
    }

    #[test]
    fn map_tasks_matches_map_bitwise() {
        let items: Vec<f64> = (0..37).map(|i| i as f64 * 1.7).collect();
        let f = |i: usize, x: &f64| Ok::<f64, Error>(x.sin() + (i as f64).sqrt());
        let reference = ThreadPool::new(1).unwrap().map(&items, f).unwrap();
        for workers in [1, 2, 3, 8] {
            let pool = ThreadPool::new(workers).unwrap();
            assert_eq!(pool.map_tasks(&items, f).unwrap(), reference);
        }
    }

    #[test]
    fn map_tasks_lowest_index_error_wins() {
        let pool = ThreadPool::new(4).unwrap();
        let items: Vec<usize> = (0..16).collect();
        let result: Result<Vec<usize>> = pool.map_tasks(&items, |i, &x| {
            if i % 5 == 2 {
                Err(Error::Internal {
                    message: format!("boom at {i}"),
                })
            } else {
                Ok(x)
            }
        });
        assert_eq!(
            result,
            Err(Error::Internal {
                message: "boom at 2".to_owned()
            })
        );
    }

    #[test]
    fn map_chunks_concatenates_in_range_order() {
        for workers in [1, 2, 3, 8] {
            for width in [1, 3, 7, 64] {
                let pool = ThreadPool::new(workers).unwrap();
                let out = pool
                    .map_chunks(100, width, |range| {
                        Ok::<Vec<usize>, Error>(range.map(|i| i * 2).collect())
                    })
                    .unwrap();
                let expected: Vec<usize> = (0..100).map(|i| i * 2).collect();
                assert_eq!(out, expected, "workers = {workers}, width = {width}");
            }
        }
    }

    #[test]
    fn map_chunks_rejects_zero_width() {
        let pool = ThreadPool::new(2).unwrap();
        let result: Result<Vec<usize>> = pool.map_chunks(10, 0, |range| Ok(range.collect()));
        assert!(matches!(result, Err(Error::InvalidConfig { .. })));
    }

    #[test]
    fn map_chunks_lowest_range_error_wins() {
        for workers in [1, 4] {
            let pool = ThreadPool::new(workers).unwrap();
            let result: Result<Vec<usize>> = pool.map_chunks(50, 5, |range| {
                if range.start >= 20 {
                    Err(Error::Internal {
                        message: format!("chunk {} failed", range.start),
                    })
                } else {
                    Ok(range.collect())
                }
            });
            assert_eq!(
                result,
                Err(Error::Internal {
                    message: "chunk 20 failed".to_owned()
                }),
                "workers = {workers}"
            );
        }
    }

    #[test]
    fn map_chunks_detects_length_contract_violation() {
        for workers in [1, 4] {
            let pool = ThreadPool::new(workers).unwrap();
            let result: Result<Vec<usize>> = pool.map_chunks(20, 4, |range| {
                // Drop one element from the second chunk.
                let drop_one = usize::from(range.start == 4);
                Ok(range.skip(drop_one).collect())
            });
            assert!(
                matches!(result, Err(Error::Internal { .. })),
                "workers = {workers}"
            );
        }
    }

    #[test]
    fn map_chunks_empty_input() {
        let pool = ThreadPool::new(4).unwrap();
        let out: Vec<usize> = pool
            .map_chunks(0, 8, |range| Ok::<Vec<usize>, Error>(range.collect()))
            .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn for_each_chunk_mut_matches_sequential() {
        let fill = |pool: &ThreadPool| {
            let mut data = vec![0.0f64; 203];
            pool.for_each_chunk_mut(&mut data, 16, |start, chunk| {
                for (offset, value) in chunk.iter_mut().enumerate() {
                    let i = (start + offset) as f64;
                    *value = i.sin() * (i + 1.0).sqrt();
                }
            })
            .unwrap();
            data
        };
        let sequential = fill(&ThreadPool::new(1).unwrap());
        for workers in [2, 3, 8] {
            let parallel = fill(&ThreadPool::new(workers).unwrap());
            assert_eq!(sequential, parallel, "workers = {workers}");
        }
    }

    #[test]
    fn for_each_chunk_mut_rejects_zero_width() {
        let pool = ThreadPool::new(2).unwrap();
        let mut data = vec![0u8; 4];
        assert!(matches!(
            pool.for_each_chunk_mut(&mut data, 0, |_, _| {}),
            Err(Error::InvalidConfig { .. })
        ));
    }

    #[test]
    fn for_each_chunk_mut_covers_every_element_once() {
        for workers in [1, 2, 5] {
            let pool = ThreadPool::new(workers).unwrap();
            let mut data = vec![0usize; 97];
            pool.for_each_chunk_mut(&mut data, 10, |start, chunk| {
                for (offset, value) in chunk.iter_mut().enumerate() {
                    *value += start + offset + 1;
                }
            })
            .unwrap();
            let expected: Vec<usize> = (1..=97).collect();
            assert_eq!(data, expected, "workers = {workers}");
        }
    }
}
