//! Approximate item extraction: functions, signatures, calls and
//! panic-relevant sites, recovered from the token stream.
//!
//! This is deliberately *not* a Rust parser. It recognizes `fn` items
//! (including methods inside `impl` blocks), their visibility, parameter
//! names, return-type tokens and brace-matched bodies, and then scans each
//! body for:
//!
//! * **calls** — `name(…)`, `.method(…)`, `Path::name(…)` — the edges of
//!   the approximate call graph;
//! * **panic sites** — unguarded indexing `x[i]`, integer/float division
//!   `a / b` (and `%`), and slice arithmetic inside index brackets
//!   (`x[i - 1]`) — the seeds of the panic-reachability pass;
//! * **guard evidence** — `assert!`/`debug_assert!` macros, calls into
//!   `check_*`/`validate*`/`require_*`/`ensure_*` helpers, comparisons
//!   against `len`/`rows`/`cols`/`dim` and early `Err` returns — which
//!   downgrade the sites that follow them.
//!
//! Closures and nested functions are attributed to the enclosing `fn`.

use crate::lexer::{Tok, TokKind};
use crate::scanner::SourceFile;

/// Kinds of panic-relevant sites found inside a function body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SiteKind {
    /// Raw `x[i]` indexing (panics on out-of-bounds).
    Index,
    /// Division or remainder by a non-literal divisor (panics on zero for
    /// integers, poisons with inf/NaN for floats).
    Div,
    /// Subtraction inside index brackets (`x[i - 1]`), the classic usize
    /// underflow panic.
    SliceArith,
}

impl SiteKind {
    /// Stable key used in findings and the ratchet baseline.
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            SiteKind::Index => "index",
            SiteKind::Div => "div",
            SiteKind::SliceArith => "slice_arith",
        }
    }
}

/// One panic-relevant site.
#[derive(Debug, Clone)]
pub struct Site {
    /// What kind of hazard this is.
    pub kind: SiteKind,
    /// 1-based source line.
    pub line: usize,
    /// Whether guard evidence appeared earlier in the same function.
    pub guarded: bool,
}

/// A call found inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Call {
    /// Qualifying path segment (`Matrix` in `Matrix::zeros(…)`), when
    /// present.
    pub qual: Option<String>,
    /// The called function/method name.
    pub name: String,
    /// 1-based source line of the call.
    pub line: usize,
}

/// One extracted function.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Simple name.
    pub name: String,
    /// `Type::name` for methods, `name` for free functions.
    pub qual: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Whether the function is unrestricted `pub` (i.e. part of the crate
    /// API; `pub(crate)` and private both count as non-pub).
    pub is_pub: bool,
    /// Whether the function takes a `self` receiver.
    pub has_self: bool,
    /// Parameter names (patterns other than plain identifiers are
    /// skipped).
    pub params: Vec<String>,
    /// Token texts of the return type (empty for `()`).
    pub ret: Vec<String>,
    /// Doc-comment lines directly above the item (attributes skipped).
    pub doc: Vec<String>,
    /// Calls made in the body.
    pub calls: Vec<Call>,
    /// Panic-relevant sites in the body.
    pub sites: Vec<Site>,
    /// Whether the function lives in a `#[cfg(test)]` region.
    pub in_test: bool,
    /// Token range of the body (inside the braces), for further passes.
    pub body: std::ops::Range<usize>,
}

/// Words that look like calls but are control flow.
const NON_CALL_KEYWORDS: [&str; 10] = [
    "if", "while", "for", "match", "loop", "return", "fn", "move", "in", "else",
];

/// Identifier fragments whose call is treated as guard evidence.
fn is_guard_call(name: &str) -> bool {
    name.starts_with("check_")
        || name.starts_with("validate")
        || name.starts_with("require")
        || name.starts_with("ensure")
        || name.starts_with("guard")
        || matches!(
            name,
            "is_empty"
                | "is_square"
                | "min"
                | "max"
                | "clamp"
                | "saturating_sub"
                | "checked_sub"
                | "checked_div"
                | "position"
                | "is_finite"
                | "abs"
                | "windows"
                | "chunks"
                | "enumerate"
        )
}

/// Identifiers that, compared against something, constitute bounds/shape
/// evidence (`if i < v.len()`, `if a.rows() != b.rows()` …).
fn is_dim_ident(name: &str) -> bool {
    matches!(
        name,
        "len"
            | "rows"
            | "cols"
            | "dim"
            | "shape"
            | "n"
            | "m"
            | "d"
            | "k"
            | "total"
            | "size"
            | "n_nodes"
            | "n_labeled"
            | "n_unlabeled"
            | "count"
    )
}

/// Extracts every function from an analyzed file.
#[must_use]
pub fn extract(file: &str, source: &SourceFile) -> Vec<FnInfo> {
    // Comment-free view with original indices retained for doc lookup.
    let toks: Vec<(usize, &Tok)> = source
        .tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.kind, TokKind::Comment | TokKind::Doc))
        .collect();

    let mut fns = Vec::new();
    // Stack of (brace depth, impl type name) for method qualification.
    let mut impls: Vec<(usize, String)> = Vec::new();
    let mut depth = 0usize;

    let mut i = 0;
    while i < toks.len() {
        let (_, t) = toks[i];
        if t.is_punct('{') {
            depth += 1;
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            while impls.last().is_some_and(|&(d, _)| d > depth) {
                impls.pop();
            }
            i += 1;
            continue;
        }
        if t.is_ident("impl") {
            // Scan to the opening `{`; the impl type is the last ident at
            // angle-depth 0 (`impl<T> Foo<T>` → Foo, `impl X for Y` → Y).
            let mut angle = 0i32;
            let mut ty = String::new();
            let mut j = i + 1;
            while j < toks.len() && !toks[j].1.is_punct('{') {
                let tj = toks[j].1;
                if tj.is_punct('<') {
                    angle += 1;
                } else if tj.is_punct('>') {
                    angle -= 1;
                } else if tj.kind == TokKind::Ident && angle <= 0 && !tj.is_ident("for") {
                    ty = tj.text.clone();
                }
                j += 1;
            }
            impls.push((depth, ty));
            i = j;
            continue;
        }
        if t.is_ident("fn")
            && toks
                .get(i + 1)
                .is_some_and(|(_, n)| n.kind == TokKind::Ident)
        {
            let (consumed, info) = parse_fn(file, source, &toks, i, depth, &impls);
            fns.push(info);
            i = consumed;
            continue;
        }
        i += 1;
    }
    fns
}

/// Parses one `fn` starting at `toks[at]` (the `fn` keyword). Returns the
/// index to resume the outer walk at (just past the signature, so nested
/// fns are still discovered) and the extracted info.
fn parse_fn(
    file: &str,
    source: &SourceFile,
    toks: &[(usize, &Tok)],
    at: usize,
    depth: usize,
    impls: &[(usize, String)],
) -> (usize, FnInfo) {
    let fn_line = toks[at].1.line;
    let name = toks[at + 1].1.text.clone();

    // Visibility: walk back over the item prefix (attributes, `const`,
    // `async`, `unsafe`, `extern "C"`) until an item boundary.
    let mut is_pub = false;
    let mut b = at;
    while b > 0 {
        b -= 1;
        let tb = toks[b].1;
        if tb.is_punct('{') || tb.is_punct('}') || tb.is_punct(';') {
            break;
        }
        if tb.is_ident("pub") {
            // `pub(crate)` restricts visibility: not part of the API.
            is_pub = !toks.get(b + 1).is_some_and(|(_, n)| n.is_punct('('));
            break;
        }
    }

    // Doc comment lines directly above (walking the line view upward over
    // attributes).
    let mut doc = Vec::new();
    let mut li = fn_line.saturating_sub(1); // 0-based index of fn line
    while li > 0 {
        li -= 1;
        let line = &source.lines[li];
        let trimmed = line.code.trim();
        if trimmed.starts_with("#[") || trimmed.starts_with("#![") {
            continue;
        }
        if line.is_doc {
            doc.push(
                line.comment
                    .trim_start_matches(['/', '!'])
                    .trim()
                    .to_owned(),
            );
        } else {
            break;
        }
    }
    doc.reverse();

    // Generics between name and `(`.
    let mut j = at + 2;
    if toks.get(j).is_some_and(|(_, t)| t.is_punct('<')) {
        let mut angle = 0i32;
        while j < toks.len() {
            let tj = toks[j].1;
            if tj.is_punct('<') {
                angle += 1;
            } else if tj.is_punct('>') {
                angle -= 1;
                if angle == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
    }

    // Parameters.
    let mut params = Vec::new();
    let mut has_self = false;
    if toks.get(j).is_some_and(|(_, t)| t.is_punct('(')) {
        let mut paren = 0i32;
        while j < toks.len() {
            let tj = toks[j].1;
            if tj.is_punct('(') {
                paren += 1;
            } else if tj.is_punct(')') {
                paren -= 1;
                if paren == 0 {
                    j += 1;
                    break;
                }
            } else if paren == 1 && tj.is_ident("self") {
                has_self = true;
            } else if paren == 1
                && tj.kind == TokKind::Ident
                && toks.get(j + 1).is_some_and(|(_, n)| n.is_punct(':'))
                && !tj.is_ident("mut")
            {
                params.push(tj.text.clone());
            }
            j += 1;
        }
    }

    // Return type: tokens between `->` and the body `{` (or `;`/`where`).
    let mut ret = Vec::new();
    if toks.get(j).is_some_and(|(_, t)| t.is_punct('-'))
        && toks.get(j + 1).is_some_and(|(_, t)| t.is_punct('>'))
    {
        j += 2;
        while j < toks.len() {
            let tj = toks[j].1;
            if tj.is_punct('{') || tj.is_punct(';') || tj.is_ident("where") {
                break;
            }
            ret.push(tj.text.clone());
            j += 1;
        }
    }
    // Skip a `where` clause.
    while j < toks.len() && !toks[j].1.is_punct('{') && !toks[j].1.is_punct(';') {
        j += 1;
    }

    // Body: brace-matched token range (in comment-free indices).
    let mut body = j..j;
    if toks.get(j).is_some_and(|(_, t)| t.is_punct('{')) {
        let mut brace = 0i32;
        let mut k = j;
        while k < toks.len() {
            let tk = toks[k].1;
            if tk.is_punct('{') {
                brace += 1;
            } else if tk.is_punct('}') {
                brace -= 1;
                if brace == 0 {
                    break;
                }
            }
            k += 1;
        }
        body = (j + 1)..k.min(toks.len());
    }

    let qual = impls
        .last()
        .filter(|(_, ty)| !ty.is_empty() && depth > 0)
        .map_or_else(|| name.clone(), |(_, ty)| format!("{ty}::{name}"));

    let (calls, sites) = scan_body(toks, body.clone());
    let in_test = source
        .test_mask
        .get(fn_line.saturating_sub(1))
        .copied()
        .unwrap_or(false);

    let info = FnInfo {
        name,
        qual,
        file: file.to_owned(),
        line: fn_line,
        is_pub,
        has_self,
        params,
        ret,
        doc,
        calls,
        sites,
        in_test,
        body: body.clone(),
    };
    // Resume at the body's opening `{` (or the trailing `;`) so the outer
    // walk keeps its brace depth balanced and still discovers nested fns.
    (j.max(at + 2), info)
}

/// Scans a body token range for calls, panic sites and guard evidence.
fn scan_body(toks: &[(usize, &Tok)], body: std::ops::Range<usize>) -> (Vec<Call>, Vec<Site>) {
    let mut calls = Vec::new();
    let mut raw_sites: Vec<(SiteKind, usize)> = Vec::new();
    // Lines at which guard evidence appears.
    let mut guard_lines: Vec<usize> = Vec::new();

    let mut k = body.start;
    while k < body.end {
        let t = toks[k].1;
        let next = toks.get(k + 1).map(|(_, n)| *n);
        let prev = (k > body.start).then(|| toks[k - 1].1);

        if t.kind == TokKind::Ident {
            let is_macro = next.is_some_and(|n| n.is_punct('!'));
            if is_macro {
                if t.text.contains("assert") {
                    guard_lines.push(t.line);
                }
                k += 2;
                continue;
            }
            if next.is_some_and(|n| n.is_punct('('))
                && !NON_CALL_KEYWORDS.contains(&t.text.as_str())
            {
                let qual = prev.filter(|p| p.is_punct(':')).and_then(|_| {
                    // `Path::name(` — the segment two tokens back.
                    (k >= body.start + 3
                        && toks[k - 2].1.is_punct(':')
                        && toks[k - 3].1.kind == TokKind::Ident)
                        .then(|| toks[k - 3].1.text.clone())
                });
                if is_guard_call(&t.text) {
                    guard_lines.push(t.line);
                }
                calls.push(Call {
                    qual,
                    name: t.text.clone(),
                    line: t.line,
                });
            }
            // `if a.len() < b` style comparisons: an `if`/`while` line that
            // also mentions a dimension identifier counts as a guard.
            if (t.is_ident("if") || t.is_ident("while"))
                && scan_line_has_dim_compare(toks, k, &body)
            {
                guard_lines.push(t.line);
            }
            // Loop-bounded iteration: `for i in 0..v.len()` and iterator
            // loops (`.iter()`, `.enumerate()`, `.windows(…)`) derive
            // every index from the collection itself.
            if t.is_ident("for") && scan_line_has_loop_bound(toks, k, &body) {
                guard_lines.push(t.line);
            }
            // Early error returns are shape-guard evidence.
            if t.is_ident("Err")
                && prev.is_some_and(|p| p.kind == TokKind::Ident && p.is_ident("return"))
            {
                guard_lines.push(t.line);
            }
            k += 1;
            continue;
        }

        // Indexing: `[` preceded by an expression terminator.
        if t.is_punct('[')
            && prev.is_some_and(|p| {
                (p.kind == TokKind::Ident && !p.is_ident("mut"))
                    || p.is_punct(')')
                    || p.is_punct(']')
            })
        {
            // Walk the bracket group looking for arithmetic.
            let mut brk = 0i32;
            let mut kk = k;
            let mut arith = false;
            while kk < body.end {
                let tk = toks[kk].1;
                if tk.is_punct('[') {
                    brk += 1;
                } else if tk.is_punct(']') {
                    brk -= 1;
                    if brk == 0 {
                        break;
                    }
                } else if brk == 1 && tk.is_punct('-') {
                    arith = true;
                }
                kk += 1;
            }
            raw_sites.push((
                if arith {
                    SiteKind::SliceArith
                } else {
                    SiteKind::Index
                },
                t.line,
            ));
            k += 1;
            continue;
        }

        // Division / remainder by a non-literal divisor.
        if (t.is_punct('/') || t.is_punct('%'))
            && prev.is_some_and(|p| {
                p.is_punct(')')
                    || p.is_punct(']')
                    || matches!(p.kind, TokKind::Ident | TokKind::Int | TokKind::Float)
            })
        {
            let literal_divisor = next.is_some_and(|n| {
                matches!(n.kind, TokKind::Int | TokKind::Float)
                    && n.text.trim_start_matches(['0', '_', '.']) != ""
            });
            if !literal_divisor {
                raw_sites.push((SiteKind::Div, t.line));
            }
            k += 1;
            continue;
        }

        k += 1;
    }

    let sites = raw_sites
        .into_iter()
        .map(|(kind, line)| Site {
            kind,
            line,
            guarded: guard_lines.iter().any(|&g| g <= line),
        })
        .collect();
    (calls, sites)
}

/// Whether a `for` loop header on this source line bounds its indices by
/// a dimension (`0..v.len()`) or iterates the collection directly
/// (`.iter()`, `.enumerate()`, `.windows(…)`, `.zip(…)`).
fn scan_line_has_loop_bound(
    toks: &[(usize, &Tok)],
    at: usize,
    body: &std::ops::Range<usize>,
) -> bool {
    let line = toks[at].1.line;
    let mut k = at;
    while k < body.end && toks[k].1.line == line {
        let t = toks[k].1;
        if t.kind == TokKind::Ident
            && (is_dim_ident(&t.text)
                || matches!(
                    t.text.as_str(),
                    "iter" | "iter_mut" | "enumerate" | "windows" | "chunks" | "zip"
                ))
        {
            return true;
        }
        k += 1;
    }
    false
}

/// Whether the statement starting at an `if`/`while` token compares a
/// dimension identifier (`len`, `rows`, …) on the same source line.
fn scan_line_has_dim_compare(
    toks: &[(usize, &Tok)],
    at: usize,
    body: &std::ops::Range<usize>,
) -> bool {
    let line = toks[at].1.line;
    let mut has_dim = false;
    let mut has_cmp = false;
    let mut k = at;
    while k < body.end && toks[k].1.line == line {
        let t = toks[k].1;
        if t.kind == TokKind::Ident && is_dim_ident(&t.text) {
            has_dim = true;
        }
        // Comparison against a zero literal is a positivity/emptiness
        // guard (`if d > 0.0`, `if total == 0 { return … }`).
        if matches!(t.kind, TokKind::Int | TokKind::Float)
            && t.text.trim_start_matches(['0', '_', '.']).is_empty()
        {
            has_dim = true;
        }
        if t.is_punct('<') || t.is_punct('>') || t.is_punct('=') || t.is_punct('!') {
            has_cmp = true;
        }
        k += 1;
    }
    has_dim && has_cmp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::analyze;

    fn extract_src(src: &str) -> Vec<FnInfo> {
        extract("test.rs", &analyze(src))
    }

    #[test]
    fn finds_pub_and_private_fns() {
        let fns = extract_src("pub fn a() {}\nfn b() {}\npub(crate) fn c() {}");
        assert_eq!(fns.len(), 3);
        assert!(fns[0].is_pub);
        assert!(!fns[1].is_pub);
        assert!(!fns[2].is_pub, "pub(crate) is not API-public");
    }

    #[test]
    fn methods_are_qualified_by_impl_type() {
        let fns = extract_src("impl Matrix {\n  pub fn get(&self, i: usize) -> f64 { 0.0 }\n}");
        assert_eq!(fns[0].qual, "Matrix::get");
        assert!(fns[0].has_self);
        assert_eq!(fns[0].params, vec!["i"]);
        assert_eq!(fns[0].ret, vec!["f64"]);
    }

    #[test]
    fn generic_impl_resolves_base_type() {
        let fns = extract_src("impl<T> Wrapper<T> {\n  fn inner(&self) {}\n}");
        assert_eq!(fns[0].qual, "Wrapper::inner");
    }

    #[test]
    fn later_methods_keep_their_impl_qualifier() {
        // Regression: resuming past the body's opening brace unbalanced
        // the outer depth tracking, dropping the impl context for every
        // method after the first.
        let fns = extract_src(
            "impl Pool {\n  pub fn new() -> Self { Pool }\n  pub fn workers(&self) -> usize { 1 }\n  pub fn map(&self) {}\n}",
        );
        let quals: Vec<&str> = fns.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(quals, vec!["Pool::new", "Pool::workers", "Pool::map"]);
    }

    #[test]
    fn trait_impl_uses_self_type() {
        let fns = extract_src("impl Display for Matrix {\n  fn fmt(&self) {}\n}");
        assert_eq!(fns[0].qual, "Matrix::fmt");
    }

    #[test]
    fn collects_calls_with_qualifiers() {
        let fns = extract_src("fn f() { let a = Matrix::zeros(3, 3); a.solve(); helper(1); }");
        let calls = &fns[0].calls;
        assert!(calls
            .iter()
            .any(|c| c.name == "zeros" && c.qual.as_deref() == Some("Matrix")));
        assert!(calls.iter().any(|c| c.name == "solve" && c.qual.is_none()));
        assert!(calls.iter().any(|c| c.name == "helper"));
    }

    #[test]
    fn unguarded_index_is_a_site() {
        let fns = extract_src("fn f(v: &[f64], i: usize) -> f64 { v[i] }");
        assert_eq!(fns[0].sites.len(), 1);
        assert_eq!(fns[0].sites[0].kind, SiteKind::Index);
        assert!(!fns[0].sites[0].guarded);
    }

    #[test]
    fn assert_guard_downgrades_index() {
        let fns = extract_src("fn f(v: &[f64], i: usize) -> f64 { assert!(i < v.len()); v[i] }");
        assert_eq!(fns[0].sites.len(), 1);
        assert!(fns[0].sites[0].guarded);
    }

    #[test]
    fn if_len_compare_is_guard_evidence() {
        let fns = extract_src(
            "fn f(v: &[f64], i: usize) -> f64 { if i >= v.len() { return 0.0; } v[i] }",
        );
        assert!(fns[0].sites.iter().all(|s| s.guarded));
    }

    #[test]
    fn division_by_variable_is_a_site_by_literal_is_not() {
        let fns = extract_src("fn f(a: f64, b: f64) -> f64 { a / b + a / 2.0 }");
        let divs: Vec<_> = fns[0]
            .sites
            .iter()
            .filter(|s| s.kind == SiteKind::Div)
            .collect();
        assert_eq!(divs.len(), 1);
    }

    #[test]
    fn slice_arithmetic_is_flagged() {
        let fns = extract_src("fn f(v: &[f64], i: usize) -> f64 { v[i - 1] }");
        assert_eq!(fns[0].sites[0].kind, SiteKind::SliceArith);
    }

    #[test]
    fn array_literals_are_not_index_sites() {
        let fns = extract_src("fn f() -> [f64; 2] { [0.0, 1.0] }");
        assert!(fns[0].sites.is_empty());
    }

    #[test]
    fn test_fns_are_marked() {
        let fns = extract_src("#[cfg(test)]\nmod tests {\n  fn t(v: &[f64]) -> f64 { v[0] }\n}");
        assert!(fns[0].in_test);
    }

    #[test]
    fn doc_lines_are_attached() {
        let fns = extract_src("/// shape: (n, n)\n/// more.\n#[must_use]\npub fn f() {}");
        assert_eq!(fns[0].doc, vec!["shape: (n, n)", "more."]);
    }
}
