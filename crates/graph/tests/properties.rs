//! Property-style tests for graph construction invariants.
//!
//! Originally written against `proptest`; the workspace is now fully
//! offline and dependency-free, so each property is exercised over a
//! deterministic sweep of seeded random cases instead of a shrinking
//! strategy. Seeds are fixed, so failures are exactly reproducible.

use gssl_graph::{
    affinity::{affinity_matrix, pairwise_squared_distances},
    components::{connected_components, is_connected},
    degrees, dirichlet_energy, epsilon_graph, knn_graph, laplacian, Kernel, LaplacianKind,
    Symmetrization,
};
use gssl_linalg::{Matrix, Vector};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

const N_POINTS: usize = 8;
const DIM: usize = 3;
const CASES: u64 = 24;

fn point_cloud(rng: &mut StdRng) -> Matrix {
    Matrix::from_fn(N_POINTS, DIM, |_, _| rng.gen::<f64>() * 4.0 - 2.0)
}

fn any_kernel(rng: &mut StdRng) -> Kernel {
    *Kernel::all().choose(rng).expect("kernel list is non-empty")
}

fn scores(rng: &mut StdRng) -> Vector {
    Vector::from_fn(N_POINTS, |_| rng.gen::<f64>() * 2.0 - 1.0)
}

/// Runs `body` once per seeded case.
fn for_cases(mut body: impl FnMut(&mut StdRng)) {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x6A17 + seed);
        body(&mut rng);
    }
}

#[test]
fn affinity_is_symmetric_in_unit_range() {
    for_cases(|rng| {
        let pts = point_cloud(rng);
        let kernel = any_kernel(rng);
        let h = rng.gen_range(0.1..3.0);
        let w = affinity_matrix(&pts, kernel, h).unwrap();
        assert!(w.is_symmetric(0.0));
        for i in 0..N_POINTS {
            assert_eq!(w.get(i, i), 1.0);
            for j in 0..N_POINTS {
                let v = w.get(i, j);
                assert!((0.0..=1.0).contains(&v));
            }
        }
    });
}

#[test]
fn affinity_decreases_with_distance_rank() {
    for_cases(|rng| {
        // For the Gaussian kernel, larger distance => no larger weight.
        let pts = point_cloud(rng);
        let h = rng.gen_range(0.2..2.0);
        let d2 = pairwise_squared_distances(&pts).unwrap();
        let w = affinity_matrix(&pts, Kernel::Gaussian, h).unwrap();
        for i in 0..N_POINTS {
            for j in 0..N_POINTS {
                for k in 0..N_POINTS {
                    if d2.get(i, j) <= d2.get(i, k) {
                        assert!(w.get(i, j) >= w.get(i, k) - 1e-15);
                    }
                }
            }
        }
    });
}

#[test]
fn laplacian_rows_sum_to_zero_and_psd() {
    for_cases(|rng| {
        let pts = point_cloud(rng);
        let kernel = any_kernel(rng);
        let h = rng.gen_range(0.1..3.0);
        let f = scores(rng);
        let w = affinity_matrix(&pts, kernel, h).unwrap();
        let l = laplacian(&w, LaplacianKind::Unnormalized).unwrap();
        assert!(l.is_symmetric(1e-12));
        for s in l.row_sums().iter() {
            assert!(s.abs() < 1e-10);
        }
        let quad = f.dot(&l.matvec(&f).unwrap()).unwrap();
        assert!(quad >= -1e-10);
        // The paper's penalty is exactly twice the quadratic form.
        let energy = dirichlet_energy(&w, &f).unwrap();
        assert!((energy - 2.0 * quad).abs() <= 1e-9 * energy.abs().max(1.0));
    });
}

#[test]
fn degrees_are_at_least_self_weight() {
    for_cases(|rng| {
        let pts = point_cloud(rng);
        let kernel = any_kernel(rng);
        let h = rng.gen_range(0.1..3.0);
        let w = affinity_matrix(&pts, kernel, h).unwrap();
        for d in degrees(&w).unwrap().iter() {
            assert!(d >= 1.0 - 1e-15); // w_ii = 1 contributes
        }
    });
}

#[test]
fn knn_graph_is_symmetric_without_self_loops() {
    for_cases(|rng| {
        let pts = point_cloud(rng);
        let k = rng.gen_range(1..N_POINTS);
        let h = rng.gen_range(0.2..2.0);
        let g = knn_graph(&pts, k, Kernel::Gaussian, h, Symmetrization::Union).unwrap();
        assert!(g.is_symmetric(1e-12));
        for i in 0..N_POINTS {
            assert_eq!(g.get(i, i), 0.0);
        }
        // Union graph has at least k edges incident per vertex... at least
        // the out-edges survive (Gaussian weight is always positive).
        for i in 0..N_POINTS {
            assert!(g.row_iter(i).count() >= k);
        }
    });
}

#[test]
fn mutual_knn_is_subgraph_of_union() {
    for_cases(|rng| {
        let pts = point_cloud(rng);
        let k = rng.gen_range(1..N_POINTS);
        let h = rng.gen_range(0.2..2.0);
        let union = knn_graph(&pts, k, Kernel::Gaussian, h, Symmetrization::Union).unwrap();
        let mutual = knn_graph(&pts, k, Kernel::Gaussian, h, Symmetrization::Mutual).unwrap();
        assert!(mutual.nnz() <= union.nnz());
        for i in 0..N_POINTS {
            for (j, v) in mutual.row_iter(i) {
                assert!((union.get(i, j) - v).abs() < 1e-15);
            }
        }
    });
}

#[test]
fn epsilon_graph_edges_respect_radius() {
    for_cases(|rng| {
        let pts = point_cloud(rng);
        let eps = rng.gen_range(0.5..4.0);
        let g = epsilon_graph(&pts, eps, Kernel::Gaussian, 1.0).unwrap();
        let d2 = pairwise_squared_distances(&pts).unwrap();
        for i in 0..N_POINTS {
            for (j, _) in g.row_iter(i) {
                assert!(d2.get(i, j) <= eps * eps + 1e-12);
            }
        }
    });
}

#[test]
fn full_gaussian_graph_is_connected() {
    for_cases(|rng| {
        // Gaussian weights are strictly positive => one component. (At
        // much smaller bandwidths exp(-d²/h²) underflows to exactly 0 in
        // f64, so the bandwidth range here keeps weights representable.)
        let pts = point_cloud(rng);
        let h = rng.gen_range(1.0..3.0);
        let w = affinity_matrix(&pts, Kernel::Gaussian, h).unwrap();
        assert!(is_connected(&w, 0.0).unwrap());
        let labels = connected_components(&w, 0.0).unwrap();
        assert!(labels.iter().all(|&l| l == 0));
    });
}

#[test]
fn component_labels_are_contiguous() {
    for_cases(|rng| {
        let pts = point_cloud(rng);
        let eps = rng.gen_range(0.2..3.0);
        let g = epsilon_graph(&pts, eps, Kernel::Boxcar, eps).unwrap();
        let labels = connected_components(&g.to_dense(), 0.0).unwrap();
        let max = labels.iter().copied().max().unwrap();
        for expect in 0..=max {
            assert!(labels.contains(&expect), "label {expect} skipped");
        }
    });
}
