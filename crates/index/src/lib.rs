//! # gssl-index — spatial neighbor search for graph assembly and serving
//!
//! The paper's regime of interest is large-`n` asymptotics, yet pairwise
//! affinity assembly is Θ(n²·d): at 10⁶ points that is 10¹² distance
//! evaluations before a single linear system is touched. This crate
//! removes that wall with *exact* spatial indexes behind one trait:
//!
//! * [`BruteForce`] — the linear scan, extracted from the original kNN
//!   assembly loop in `gssl-graph`. It is the oracle: every tree backend
//!   is property-tested to agree with it bit for bit.
//! * [`KdTree`] — median-split axis-aligned tree for low dimension.
//! * [`CoverTree`] — metric-ball tree for high dimension.
//! * [`SpatialIndex`] — facade that picks a backend from `d`.
//!
//! # Determinism contract
//!
//! Three properties combine to make index-backed graph assembly
//! bit-identical to the historical O(n²) path, at any worker count:
//!
//! 1. **Shared distance kernel** — every backend computes candidate
//!    distances with the same [`squared_distance`] over identically
//!    laid-out slices, so equal neighbor sets imply bitwise-equal
//!    distances.
//! 2. **Canonical order** — results sort by `(dist2, index)` under
//!    `total_cmp`, the same tie-break the brute scan's stable sort has
//!    always produced.
//! 3. **Exact pruning** — tree traversals only skip subtrees that
//!    provably cannot contain a neighbor at or under the current bound
//!    (see the backend module docs for the floating-point argument), so
//!    tree and scan return the same *set*.
//!
//! Batched queries ([`k_nearest_batch`], [`self_k_nearest_batch`],
//! [`self_within_radius_batch`]) run on `gssl_runtime::Executor` with
//! fixed chunk claims and input-order reassembly: each query is a pure
//! function of the frozen index, so the concatenated output is the same
//! at 1, 2, 4 or 8 workers.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod auto;
mod brute;
mod cover;
mod error;
mod kdtree;
mod neighbor;
mod points;

pub use auto::{SpatialIndex, KD_MAX_DIM};
pub use brute::BruteForce;
pub use cover::CoverTree;
pub use error::{Error, Result};
pub use kdtree::KdTree;
pub use neighbor::{
    k_nearest_batch, self_k_nearest_batch, self_within_radius_batch, Neighbor, NeighborSearch,
};
pub use points::squared_distance;
