//! Determinism suite for the shared execution layer: every parallel code
//! path in the workspace must produce output **bit-identical** (`==` on
//! `f64` slices, not epsilon-close) to its sequential counterpart, at
//! every worker count.
//!
//! The claim being tested is the `gssl-runtime` contract: work is split
//! into contiguous chunks, each item is computed by exactly one worker
//! with the same per-item operation order as the sequential loop, and
//! results are reassembled in input order. Under that protocol the
//! floating-point result cannot depend on the worker count — which the
//! tests here check end to end for kernel assembly, hard and soft fits,
//! one-vs-rest multiclass, and batch serving, and which
//! `sim::enumerate_schedules` proves exhaustively for the claim protocol
//! itself.

use gssl::{HardCriterion, OneVsRest, Problem, SoftCriterion};
use gssl_graph::{
    affinity::{affinity_matrix, affinity_matrix_with},
    knn_graph, knn_graph_with, Kernel, KernelGraph, Symmetrization,
};
use gssl_index::{k_nearest_batch, NeighborSearch, SpatialIndex};
use gssl_linalg::{Matrix, SolverPolicy};
use gssl_runtime::{sim, Executor};
use gssl_serve::{EngineConfig, QueryPoint, ServingEngine};

const WORKER_COUNTS: [usize; 4] = [1, 2, 3, 4];

/// Deterministic low-discrepancy points (no RNG state to thread through).
fn points(n: usize, d: usize) -> Matrix {
    Matrix::from_fn(n, d, |i, j| {
        (((i * 131 + j * 37 + 11) as f64) * 0.618_033_988_749_894_9).fract()
    })
}

#[test]
fn kernel_assembly_is_bit_identical_across_worker_counts() {
    let pts = points(61, 5);
    let reference = affinity_matrix(&pts, Kernel::Gaussian, 0.7).expect("sequential affinity");
    for workers in WORKER_COUNTS {
        let executor = Executor::with_workers(workers);
        let parallel = affinity_matrix_with(&pts, Kernel::Gaussian, 0.7, &executor)
            .expect("parallel affinity");
        assert_eq!(
            reference.as_slice(),
            parallel.as_slice(),
            "affinity assembly diverged at {workers} workers"
        );
    }
}

#[test]
fn kernel_graph_weights_are_bit_identical_across_worker_counts() {
    let graph = KernelGraph::fit(points(53, 4), Kernel::Epanechnikov, 0.9).expect("graph fit");
    let reference = graph.weights().expect("sequential weights");
    for workers in WORKER_COUNTS {
        let executor = Executor::with_workers(workers);
        let parallel = graph.weights_with(&executor).expect("parallel weights");
        assert_eq!(
            reference.as_slice(),
            parallel.as_slice(),
            "KernelGraph::weights_with diverged at {workers} workers"
        );
    }
}

#[test]
fn knn_assembly_is_bit_identical_across_worker_counts() {
    let pts = points(47, 3);
    for symmetrization in [Symmetrization::Union, Symmetrization::Mutual] {
        let reference = knn_graph(&pts, 6, Kernel::Gaussian, 0.8, symmetrization)
            .expect("sequential knn graph");
        for workers in WORKER_COUNTS {
            let executor = Executor::with_workers(workers);
            let parallel =
                knn_graph_with(&pts, 6, Kernel::Gaussian, 0.8, symmetrization, &executor)
                    .expect("parallel knn graph");
            assert_eq!(reference.nnz(), parallel.nnz());
            assert_eq!(
                reference.to_dense().as_slice(),
                parallel.to_dense().as_slice(),
                "knn assembly diverged at {workers} workers ({symmetrization:?})"
            );
        }
    }
}

#[test]
fn spatial_index_build_and_batched_queries_are_bit_identical() {
    // Two independent builds of the same cloud must be the same tree
    // (construction is deterministic, no RNG, no address-dependent
    // ordering), and batched queries against it must not depend on the
    // worker count — the chunks reassemble in input order.
    let pts = points(90, 3);
    let queries = points(33, 3);
    let index = SpatialIndex::build(&pts).expect("index build");
    let rebuilt = SpatialIndex::build(&pts).expect("index rebuild");
    let reference =
        k_nearest_batch(&index, &queries, 5, &Executor::Sequential).expect("sequential batch");
    let twin =
        k_nearest_batch(&rebuilt, &queries, 5, &Executor::Sequential).expect("rebuilt batch");
    for workers in [1, 2, 4, 8] {
        let executor = Executor::with_workers(workers);
        let parallel = k_nearest_batch(&index, &queries, 5, &executor).expect("parallel batch");
        for (pair, (r, p)) in reference.iter().zip(&parallel).enumerate() {
            assert_eq!(r.len(), p.len(), "query {pair} at {workers} workers");
            for (a, b) in r.iter().zip(p) {
                assert_eq!(a.index, b.index, "query {pair} at {workers} workers");
                assert_eq!(
                    a.dist2.to_bits(),
                    b.dist2.to_bits(),
                    "query {pair} distance at {workers} workers"
                );
            }
        }
    }
    for (r, t) in reference.iter().zip(&twin) {
        assert_eq!(r, t, "independent builds answered differently");
    }
}

#[test]
fn knn_graph_with_is_bit_identical_at_high_worker_counts() {
    // The 1/2/3/4 sweep above pins tree-vs-brute equality; this one
    // extends the worker grid to 8 (more workers than chunks for some
    // block sizes) on the accelerated builder alone.
    let pts = points(64, 3);
    let reference = knn_graph(&pts, 7, Kernel::Gaussian, 0.8, Symmetrization::Union)
        .expect("sequential knn graph");
    for workers in [1, 2, 4, 8] {
        let executor = Executor::with_workers(workers);
        let parallel = knn_graph_with(
            &pts,
            7,
            Kernel::Gaussian,
            0.8,
            Symmetrization::Union,
            &executor,
        )
        .expect("parallel knn graph");
        assert_eq!(
            reference.to_dense().as_slice(),
            parallel.to_dense().as_slice(),
            "knn_graph_with diverged at {workers} workers"
        );
    }
}

/// A dense anchored two-class problem shared by the fit tests.
fn fit_problem() -> Problem {
    let weights = affinity_matrix(&points(72, 3), Kernel::Gaussian, 0.6).expect("affinity");
    let labels: Vec<f64> = (0..14).map(|i| f64::from(i as u8 % 2)).collect();
    Problem::new(weights, labels).expect("problem")
}

#[test]
fn hard_fit_is_bit_identical_across_worker_counts() {
    let problem = fit_problem();
    let reference = HardCriterion::new().fit(&problem).expect("sequential fit");
    for workers in WORKER_COUNTS {
        let parallel = HardCriterion::new()
            .with_executor(Executor::with_workers(workers))
            .fit(&problem)
            .expect("parallel fit");
        assert_eq!(
            reference.all(),
            parallel.all(),
            "hard fit diverged at {workers} workers"
        );
    }
}

#[test]
fn soft_fit_is_bit_identical_across_worker_counts() {
    let problem = fit_problem();
    let criterion = SoftCriterion::new(0.75).expect("lambda");
    let reference = criterion.fit(&problem).expect("sequential fit");
    for workers in WORKER_COUNTS {
        let parallel = SoftCriterion::new(0.75)
            .expect("lambda")
            .policy(SolverPolicy::default().with_executor(Executor::with_workers(workers)))
            .fit(&problem)
            .expect("parallel fit");
        assert_eq!(
            reference.all(),
            parallel.all(),
            "soft fit diverged at {workers} workers"
        );
    }
}

#[test]
fn multiclass_fit_is_bit_identical_across_worker_counts() {
    let weights = affinity_matrix(&points(60, 3), Kernel::Gaussian, 0.6).expect("affinity");
    let class_labels: Vec<usize> = (0..60).map(|i| i % 3).collect();
    let reference = OneVsRest::new(HardCriterion::new(), 3)
        .expect("ovr")
        .fit(&weights, &class_labels)
        .expect("sequential fit");
    for workers in WORKER_COUNTS {
        let parallel = OneVsRest::new(HardCriterion::new(), 3)
            .expect("ovr")
            .with_executor(Executor::with_workers(workers))
            .fit(&weights, &class_labels)
            .expect("parallel fit");
        assert_eq!(
            reference.scores().as_slice(),
            parallel.scores().as_slice(),
            "one-vs-rest score matrix diverged at {workers} workers"
        );
        assert_eq!(reference.predictions(), parallel.predictions());
    }
}

#[test]
fn predict_batch_is_bit_identical_across_worker_counts() {
    let pts = points(48, 2);
    let labels: Vec<f64> = (0..10).map(|i| f64::from(i as u8 % 2)).collect();
    let queries: Vec<QueryPoint> = (0..37)
        .map(|q| {
            QueryPoint::new(vec![
                (((q * 131 + 11) as f64) * 0.618_033_988_749_894_9).fract(),
                (((q * 131 + 48) as f64) * 0.618_033_988_749_894_9).fract(),
            ])
        })
        .collect();
    let fit = |workers: usize| {
        let config = EngineConfig::new(Kernel::Gaussian, 0.5).workers(workers);
        let engine = ServingEngine::fit(&pts, &labels, config).expect("engine fit");
        engine.predict_batch(&queries).expect("batch predict")
    };
    let reference = fit(1);
    for workers in WORKER_COUNTS {
        let parallel = fit(workers);
        assert_eq!(reference.len(), parallel.len());
        for (i, (r, p)) in reference.iter().zip(&parallel).enumerate() {
            assert_eq!(r.class, p.class, "query {i} class at {workers} workers");
            assert_eq!(
                r.score.to_bits(),
                p.score.to_bits(),
                "query {i} score at {workers} workers"
            );
            let same = r.per_class.len() == p.per_class.len()
                && r.per_class
                    .iter()
                    .zip(&p.per_class)
                    .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "query {i} per-class scores at {workers} workers");
        }
    }
}

/// The exhaustive proof backing the `map_chunks` determinism claim: every
/// bounded interleaving of the chunk-claim protocol yields disjoint,
/// exhaustive claims with results published once each — for the same
/// (len, workers, width) grid shapes the library uses (width from
/// `len.div_ceil(workers * 4).max(1)` plus adversarial widths).
#[test]
fn schedule_enumeration_proves_the_map_chunks_claim_protocol() {
    for len in [1usize, 2, 5, 6] {
        for workers in [1usize, 2, 3] {
            let library_width = len.div_ceil(workers.saturating_mul(4)).max(1);
            for width in [library_width, 1, 2, len] {
                let report = sim::enumerate_schedules_with_width(len, workers, width)
                    .unwrap_or_else(|violation| {
                        panic!("len={len} workers={workers} width={width}: {violation}")
                    });
                assert!(report.schedules > 0);
                assert_eq!(report.chunks, len.div_ceil(width));
            }
        }
    }
    // And the production `ThreadPool::map` width selection itself.
    let report = sim::enumerate_schedules(6, 2).expect("map chunk protocol");
    assert!(report.schedules > 0);
}
