//! Conjugate-gradient solver for symmetric positive-definite systems.
//!
//! Used as the matrix-free backend for the hard criterion: `D₂₂ − W₂₂` is
//! SPD whenever every unlabeled vertex is connected (possibly through other
//! unlabeled vertices) to a labeled vertex.

use crate::error::{Error, Result};
use crate::float::is_exactly_zero;
use crate::ops::LinearOperator;
use crate::precond::Preconditioner;
use crate::strict;
use crate::vector::{dot_slices, Vector};

/// Options controlling a conjugate-gradient run.
#[derive(Debug, Clone, PartialEq)]
pub struct CgOptions {
    /// Maximum number of iterations (0 means `2 * dim`).
    pub max_iterations: usize,
    /// Convergence threshold on the *relative* residual `‖r‖/‖b‖`.
    pub tolerance: f64,
}

impl Default for CgOptions {
    fn default() -> Self {
        CgOptions {
            max_iterations: 0,
            tolerance: 1e-10,
        }
    }
}

/// Outcome of a successful conjugate-gradient run.
#[derive(Debug, Clone, PartialEq)]
pub struct CgOutcome {
    /// The approximate solution.
    pub solution: Vector,
    /// Iterations performed.
    pub iterations: usize,
    /// Final absolute residual norm `‖b − A x‖₂`.
    pub residual_norm: f64,
}

/// Solves `A x = b` by the conjugate-gradient method.
///
/// `A` must be symmetric positive definite; this is *not* checked (CG simply
/// fails to converge otherwise).
///
/// # Errors
///
/// * [`Error::DimensionMismatch`] when `b.len() != op.dim()`.
/// * [`Error::InvalidArgument`] when the tolerance is not positive.
/// * [`Error::NotConverged`] when the iteration budget is exhausted.
/// * [`Error::NonFiniteValue`] under `strict-checks` when the right-hand
///   side or the computed solution is non-finite.
///
/// ```
/// use gssl_linalg::{conjugate_gradient, CgOptions, Matrix, Vector};
/// # fn main() -> Result<(), gssl_linalg::Error> {
/// let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
/// let b = Vector::from(vec![1.0, 2.0]);
/// let out = conjugate_gradient(&a, &b, &CgOptions::default())?;
/// assert!(a.matvec(&out.solution)?.approx_eq(&b, 1e-8));
/// # Ok(())
/// # }
/// ```
/// hot
/// complexity: O(iters * n)
pub fn conjugate_gradient(
    op: &(impl LinearOperator + ?Sized),
    b: &Vector,
    options: &CgOptions,
) -> Result<CgOutcome> {
    let n = op.dim();
    if b.len() != n {
        return Err(Error::DimensionMismatch {
            operation: "conjugate_gradient",
            left: (n, n),
            right: (b.len(), 1),
        });
    }
    if !(options.tolerance > 0.0) {
        return Err(Error::InvalidArgument {
            message: format!("tolerance must be positive, got {}", options.tolerance),
        });
    }
    strict::check_finite("conjugate_gradient rhs", b.as_slice())?;
    let max_iterations = if options.max_iterations == 0 {
        (2 * n).max(50)
    } else {
        options.max_iterations
    };

    let b_norm = b.norm_l2();
    if is_exactly_zero(b_norm) {
        return Ok(CgOutcome {
            solution: Vector::zeros(n),
            iterations: 0,
            residual_norm: 0.0,
        });
    }
    let threshold = options.tolerance * b_norm;

    let mut x = vec![0.0; n];
    let mut r = b.as_slice().to_vec();
    let mut p = r.clone();
    let mut ap = vec![0.0; n];
    let mut rs_old = dot_slices(&r, &r);

    for k in 0..max_iterations {
        if rs_old.sqrt() <= threshold {
            strict::check_finite("conjugate_gradient output", &x)?;
            return Ok(CgOutcome {
                solution: Vector::from(x),
                iterations: k,
                residual_norm: rs_old.sqrt(),
            });
        }
        op.apply(&p, &mut ap);
        let p_ap = dot_slices(&p, &ap);
        if p_ap <= 0.0 || !p_ap.is_finite() {
            // Direction of non-positive curvature: A is not SPD (or we hit
            // numerical breakdown). Report as non-convergence.
            return Err(Error::NotConverged {
                iterations: k,
                residual: rs_old.sqrt(),
            });
        }
        let alpha = rs_old / p_ap;
        for ((xi, pi), (ri, api)) in x.iter_mut().zip(&p).zip(r.iter_mut().zip(&ap)) {
            *xi += alpha * pi;
            *ri -= alpha * api;
        }
        let rs_new = dot_slices(&r, &r);
        let beta = rs_new / rs_old;
        for (pi, ri) in p.iter_mut().zip(&r) {
            *pi = ri + beta * *pi;
        }
        rs_old = rs_new;
    }

    if rs_old.sqrt() <= threshold {
        strict::check_finite("conjugate_gradient output", &x)?;
        Ok(CgOutcome {
            solution: Vector::from(x),
            iterations: max_iterations,
            residual_norm: rs_old.sqrt(),
        })
    } else {
        Err(Error::NotConverged {
            iterations: max_iterations,
            residual: rs_old.sqrt(),
        })
    }
}

/// Solves `A x = b` by the preconditioned conjugate-gradient method with a
/// diagonal (Jacobi) preconditioner `M⁻¹ = diag(inv_diag)`.
///
/// `A` must be symmetric positive definite and `inv_diag` must hold the
/// elementwise inverse of a positive approximation of `diag(A)`; neither is
/// checked here (the [`crate::JacobiCg`] backend validates the diagonal at
/// factor time). Convergence is measured on the *true* residual
/// `‖b − A x‖₂ / ‖b‖₂`, the same criterion as [`conjugate_gradient`].
///
/// # Errors
///
/// * [`Error::DimensionMismatch`] when `b.len() != op.dim()` or
///   `inv_diag.len() != op.dim()`.
/// * [`Error::InvalidArgument`] when the tolerance is not positive.
/// * [`Error::NotConverged`] when the iteration budget is exhausted or a
///   direction of non-positive curvature is met.
/// * [`Error::NonFiniteValue`] under `strict-checks` when the right-hand
///   side or the computed solution is non-finite.
/// hot
/// complexity: O(iters * n)
pub fn preconditioned_conjugate_gradient(
    op: &(impl LinearOperator + ?Sized),
    b: &Vector,
    inv_diag: &[f64],
    options: &CgOptions,
) -> Result<CgOutcome> {
    // A bare inverse diagonal *is* the Jacobi preconditioner; the general
    // driver applies it with the identical elementwise multiply, so this
    // wrapper is bit-for-bit the historical Jacobi-PCG.
    preconditioned_cg_with(op, b, inv_diag, options)
}

/// Solves `A x = b` by the preconditioned conjugate-gradient method with an
/// arbitrary SPD [`Preconditioner`] `M⁻¹`.
///
/// `A` must be symmetric positive definite and the preconditioner must be
/// SPD; neither is checked here (the [`crate::PrecondCg`] backend validates
/// at factor time, and breakdown is reported as non-convergence).
/// Convergence is measured on the *true* residual `‖b − A x‖₂ / ‖b‖₂`, the
/// same criterion as [`conjugate_gradient`].
///
/// # Errors
///
/// * [`Error::DimensionMismatch`] when `b.len() != op.dim()` or
///   `precond.dim() != op.dim()`.
/// * [`Error::InvalidArgument`] when the tolerance is not positive.
/// * [`Error::NotConverged`] when the iteration budget is exhausted or a
///   direction of non-positive curvature is met.
/// * [`Error::NonFiniteValue`] under `strict-checks` when the right-hand
///   side or the computed solution is non-finite.
/// hot
/// complexity: O(iters * nnz)
pub fn preconditioned_cg_with(
    op: &(impl LinearOperator + ?Sized),
    b: &Vector,
    precond: &(impl Preconditioner + ?Sized),
    options: &CgOptions,
) -> Result<CgOutcome> {
    let n = op.dim();
    if b.len() != n {
        return Err(Error::DimensionMismatch {
            operation: "preconditioned_conjugate_gradient",
            left: (n, n),
            right: (b.len(), 1),
        });
    }
    if precond.dim() != n {
        return Err(Error::DimensionMismatch {
            operation: "preconditioned_conjugate_gradient preconditioner",
            left: (n, n),
            right: (precond.dim(), 1),
        });
    }
    if !(options.tolerance > 0.0) {
        return Err(Error::InvalidArgument {
            message: format!("tolerance must be positive, got {}", options.tolerance),
        });
    }
    strict::check_finite("preconditioned_conjugate_gradient rhs", b.as_slice())?;
    let max_iterations = if options.max_iterations == 0 {
        (2 * n).max(50)
    } else {
        options.max_iterations
    };

    let b_norm = b.norm_l2();
    if is_exactly_zero(b_norm) {
        return Ok(CgOutcome {
            solution: Vector::zeros(n),
            iterations: 0,
            residual_norm: 0.0,
        });
    }
    let threshold = options.tolerance * b_norm;

    let mut x = vec![0.0; n];
    let mut r = b.as_slice().to_vec();
    let mut z = vec![0.0; n];
    precond.apply(&r, &mut z);
    let mut p = z.clone();
    let mut ap = vec![0.0; n];
    let mut rz_old = dot_slices(&r, &z);
    let mut r_norm2 = dot_slices(&r, &r);

    for k in 0..max_iterations {
        if r_norm2.sqrt() <= threshold {
            strict::check_finite("preconditioned_conjugate_gradient output", &x)?;
            return Ok(CgOutcome {
                solution: Vector::from(x),
                iterations: k,
                residual_norm: r_norm2.sqrt(),
            });
        }
        op.apply(&p, &mut ap);
        let p_ap = dot_slices(&p, &ap);
        if p_ap <= 0.0 || !p_ap.is_finite() || rz_old <= 0.0 {
            // Non-positive curvature or an indefinite preconditioned system:
            // A (or M) is not SPD, or we hit numerical breakdown.
            return Err(Error::NotConverged {
                iterations: k,
                residual: r_norm2.sqrt(),
            });
        }
        let alpha = rz_old / p_ap;
        for ((xi, pi), (ri, api)) in x.iter_mut().zip(&p).zip(r.iter_mut().zip(&ap)) {
            *xi += alpha * pi;
            *ri -= alpha * api;
        }
        precond.apply(&r, &mut z);
        let rz_new = dot_slices(&r, &z);
        let beta = rz_new / rz_old;
        for (pi, zi) in p.iter_mut().zip(&z) {
            *pi = zi + beta * *pi;
        }
        rz_old = rz_new;
        r_norm2 = dot_slices(&r, &r);
    }

    if r_norm2.sqrt() <= threshold {
        strict::check_finite("preconditioned_conjugate_gradient output", &x)?;
        Ok(CgOutcome {
            solution: Vector::from(x),
            iterations: max_iterations,
            residual_norm: r_norm2.sqrt(),
        })
    } else {
        Err(Error::NotConverged {
            iterations: max_iterations,
            residual: r_norm2.sqrt(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::ops::ShiftedOperator;

    #[test]
    fn solves_small_spd_system() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]).unwrap();
        let b = Vector::from(vec![1.0, 2.0]);
        let out = conjugate_gradient(&a, &b, &CgOptions::default()).unwrap();
        let exact = crate::lu::solve(&a, &b).unwrap();
        assert!(out.solution.approx_eq(&exact, 1e-8));
        assert!(out.iterations <= 2 + 1); // CG converges in <= n steps exactly
    }

    #[test]
    fn zero_rhs_returns_zero_immediately() {
        let a = Matrix::identity(3);
        let out = conjugate_gradient(&a, &Vector::zeros(3), &CgOptions::default()).unwrap();
        assert_eq!(out.solution, Vector::zeros(3));
        assert_eq!(out.iterations, 0);
    }

    #[test]
    fn rejects_dimension_mismatch() {
        let a = Matrix::identity(2);
        let err = conjugate_gradient(&a, &Vector::zeros(3), &CgOptions::default()).unwrap_err();
        assert!(matches!(err, Error::DimensionMismatch { .. }));
    }

    #[test]
    fn rejects_nonpositive_tolerance() {
        let a = Matrix::identity(2);
        let opts = CgOptions {
            tolerance: 0.0,
            ..CgOptions::default()
        };
        assert!(matches!(
            conjugate_gradient(&a, &Vector::ones(2), &opts),
            Err(Error::InvalidArgument { .. })
        ));
    }

    #[test]
    fn reports_non_convergence_on_tiny_budget() {
        // A moderately conditioned SPD matrix cannot converge in one step.
        let a =
            Matrix::from_rows(&[&[10.0, 1.0, 0.0], &[1.0, 5.0, 1.0], &[0.0, 1.0, 1.0]]).unwrap();
        let opts = CgOptions {
            max_iterations: 1,
            tolerance: 1e-14,
        };
        let err = conjugate_gradient(&a, &Vector::ones(3), &opts).unwrap_err();
        assert!(matches!(err, Error::NotConverged { iterations: 1, .. }));
    }

    #[test]
    fn detects_indefinite_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, -1.0]]).unwrap();
        let b = Vector::from(vec![0.0, 1.0]);
        assert!(conjugate_gradient(&a, &b, &CgOptions::default()).is_err());
    }

    #[test]
    fn works_through_operator_abstraction() {
        // Solve (L + I) x = b with L a graph Laplacian given lazily.
        let l =
            Matrix::from_rows(&[&[1.0, -1.0, 0.0], &[-1.0, 2.0, -1.0], &[0.0, -1.0, 1.0]]).unwrap();
        let shifted = ShiftedOperator::new(&l, 1.0);
        let b = Vector::from(vec![1.0, 0.0, -1.0]);
        let out = conjugate_gradient(&shifted, &b, &CgOptions::default()).unwrap();
        let dense = &l + &Matrix::identity(3);
        let exact = crate::lu::solve(&dense, &b).unwrap();
        assert!(out.solution.approx_eq(&exact, 1e-8));
    }

    #[test]
    fn preconditioned_matches_plain_cg() {
        // Badly scaled SPD diagonal-dominant matrix: Jacobi preconditioning
        // should converge in no more iterations than plain CG.
        let n = 40;
        let a = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                1.0 + 100.0 * (i as f64)
            } else if i.abs_diff(j) == 1 {
                -0.5
            } else {
                0.0
            }
        });
        let b = Vector::from_fn(n, |i| ((i + 1) as f64).cos());
        let inv_diag: Vec<f64> = (0..n).map(|i| 1.0 / a.get(i, i)).collect();
        let plain = conjugate_gradient(&a, &b, &CgOptions::default()).unwrap();
        let pcg =
            preconditioned_conjugate_gradient(&a, &b, &inv_diag, &CgOptions::default()).unwrap();
        assert!(pcg.solution.approx_eq(&plain.solution, 1e-7));
        assert!(pcg.iterations <= plain.iterations);
    }

    #[test]
    fn preconditioned_zero_rhs_short_circuits() {
        let a = Matrix::identity(3);
        let out = preconditioned_conjugate_gradient(
            &a,
            &Vector::zeros(3),
            &[1.0; 3],
            &CgOptions::default(),
        )
        .unwrap();
        assert_eq!(out.solution, Vector::zeros(3));
        assert_eq!(out.iterations, 0);
    }

    #[test]
    fn preconditioned_rejects_bad_preconditioner_len() {
        let a = Matrix::identity(3);
        let err = preconditioned_conjugate_gradient(
            &a,
            &Vector::ones(3),
            &[1.0; 2],
            &CgOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, Error::DimensionMismatch { .. }));
    }

    #[test]
    fn preconditioned_detects_indefinite_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, -1.0]]).unwrap();
        let b = Vector::from(vec![0.0, 1.0]);
        assert!(
            preconditioned_conjugate_gradient(&a, &b, &[1.0, 1.0], &CgOptions::default()).is_err()
        );
    }

    #[test]
    fn larger_laplacian_like_system() {
        // Path-graph Laplacian plus diagonal anchor, n = 50.
        let n = 50;
        let a = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                2.5
            } else if i.abs_diff(j) == 1 {
                -1.0
            } else {
                0.0
            }
        });
        let b = Vector::from_fn(n, |i| (i as f64 / n as f64).sin());
        let out = conjugate_gradient(&a, &b, &CgOptions::default()).unwrap();
        let exact = crate::lu::solve(&a, &b).unwrap();
        assert!(out.solution.approx_eq(&exact, 1e-7));
    }
}
