//! The shard-decomposed serving engine: per-component fitting, epoch
//! snapshot/swap label folding, global Eq. 6 querying.
//!
//! # Why sharding is exact
//!
//! Both criterion systems are block-diagonal across connected components
//! of the kernel graph (see [`crate::shard`]), and every cross-component
//! weight is *exactly* `0.0` — compact kernels truncate to zero, and the
//! component relation is defined by `w > 0`. Summing a run of exact
//! zeros into a non-negative accumulator never changes its bits, so the
//! full-graph degrees, the per-block right-hand sides, and the dense
//! factorization recurrences all produce bit-identical values whether
//! the zeros are present (monolithic, interleaved system) or absent
//! (per-shard systems). The kernel row of the out-of-sample extension is
//! **not** block-diagonal — a Gaussian query sees every node — so
//! prediction runs over the globally reassembled score matrix through
//! the same [`crate::extend::QueryPlane`] code path as the monolithic
//! engine. Net: [`ShardedEngine`] predictions are bitwise-identical to
//! [`ServingEngine`] under the direct solver route (iterative backends
//! have a *global* stopping criterion, so they agree only to solver
//! tolerance).
//!
//! # Epoch protocol
//!
//! Readers never block on writers. The fitted state lives in an
//! immutable [`EpochModel`] behind `RwLock<Arc<_>>`; `predict_batch`
//! clones the `Arc` under a brief read lock and serves the whole batch
//! from that pinned epoch. A label fold takes the single writer mutex,
//! deep-clones *only the affected shard's engine*, folds the rank-1
//! update into the clone, reassembles a fresh global score matrix, and
//! publishes a new epoch whose unaffected shards share the previous
//! epoch's engines by `Arc`. In-flight batches keep serving the old
//! epoch until they finish; the swap is a pointer store.

use crate::config::EngineConfig;
use crate::engine::ServingEngine;
use crate::error::{Error, Result};
use crate::extend::QueryPlane;
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::shard::ShardPlan;
use crate::types::{Prediction, QueryPoint};
use gssl::Problem;
use gssl_graph::KernelGraph;
use gssl_index::{NeighborSearch, SpatialIndex};
use gssl_linalg::Matrix;
use gssl_runtime::Executor;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock};

use crate::config::QueryPath;

/// One immutable published generation of the fitted state: the per-shard
/// engines plus the globally reassembled score matrix they imply.
#[derive(Debug)]
pub(crate) struct EpochModel {
    /// Monotone epoch counter (1 after fit, +1 per fold).
    pub(crate) id: u64,
    /// One fitted engine per shard, in plan order. Unchanged shards are
    /// shared with the previous epoch via `Arc`.
    pub(crate) engines: Vec<Arc<ServingEngine>>,
    /// Global `N × k` scores scattered from the shard engines.
    pub(crate) scores: Matrix,
}

/// Shard-decomposed serving engine: one [`ServingEngine`] per graph
/// component, fitted in parallel, queried through the same Eq. 6 plane
/// as the monolithic engine, updated by epoch snapshot/swap.
///
/// ```
/// use gssl_graph::Kernel;
/// use gssl_linalg::Matrix;
/// use gssl_serve::{EngineConfig, QueryPoint, ShardedEngine};
/// # fn main() -> Result<(), gssl_serve::Error> {
/// // Two well-separated 1-D clusters under a compact kernel: two shards.
/// let points = Matrix::from_rows(&[&[0.0], &[10.0], &[0.4], &[10.4]])
///     .map_err(gssl_serve::Error::Linalg)?;
/// let engine = ShardedEngine::fit(
///     &points,
///     &[0.0, 1.0],
///     EngineConfig::new(Kernel::Epanechnikov, 1.0),
/// )?;
/// assert_eq!(engine.n_shards(), 2);
/// let out = engine.predict_batch(&[QueryPoint::new(vec![0.2])])?;
/// assert_eq!(out[0].class, 0);
/// // Folding a label publishes a new epoch; readers never block.
/// engine.observe_label(2, 0.0)?;
/// assert_eq!(engine.epoch(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ShardedEngine {
    config: EngineConfig,
    /// Global kernel graph over all `N` points (prediction needs the full
    /// kernel row; it is not block-diagonal).
    graph: KernelGraph,
    /// Global spatial index for the index-backed query paths.
    index: Option<SpatialIndex>,
    executor: Executor,
    multiclass: bool,
    class_count: usize,
    plan: ShardPlan,
    /// The published epoch; `predict_batch` pins it with an `Arc` clone.
    current: RwLock<Arc<EpochModel>>,
    /// Serializes label folds. Held only by writers; readers use the
    /// `RwLock` above and never wait on a fold in progress.
    writer: Mutex<()>,
    metrics: Mutex<ServeMetrics>,
}

impl ShardedEngine {
    /// Fits a binary sharded engine; the arguments and the labeled-first
    /// convention match [`ServingEngine::fit`]. Each graph component is
    /// fitted as its own task on the engine's executor, so independent
    /// factorizations overlap.
    ///
    /// # Errors
    ///
    /// As [`ServingEngine::fit`] — in particular [`Error::Core`] when a
    /// component has no labeled anchor, detected globally *before* any
    /// shard is fitted.
    /// deterministic
    pub fn fit(points: &Matrix, labels: &[f64], config: EngineConfig) -> Result<Self> {
        if let Some(i) = labels.iter().position(|y| !y.is_finite()) {
            return Err(Error::NonFiniteValue {
                context: "serve.fit labels",
                index: i,
            });
        }
        let targets = Matrix::from_fn(labels.len(), 1, |i, _| labels[i]);
        Self::fit_targets(points, targets, false, 2, config)
    }

    /// Fits a multiclass sharded engine via one-vs-rest, matching
    /// [`ServingEngine::fit_multiclass`].
    ///
    /// # Errors
    ///
    /// As [`ShardedEngine::fit`], plus [`Error::InvalidLabel`] when
    /// `class_count < 2` or a class label is out of range.
    /// deterministic
    pub fn fit_multiclass(
        points: &Matrix,
        class_labels: &[usize],
        class_count: usize,
        config: EngineConfig,
    ) -> Result<Self> {
        if class_count < 2 {
            return Err(Error::InvalidLabel {
                message: format!("class_count must be at least 2, got {class_count}"),
            });
        }
        if let Some(&bad) = class_labels.iter().find(|&&c| c >= class_count) {
            return Err(Error::InvalidLabel {
                message: format!("class label {bad} out of range for {class_count} classes"),
            });
        }
        let targets = Matrix::from_fn(class_labels.len(), class_count, |i, j| {
            if class_labels[i] == j {
                1.0
            } else {
                0.0
            }
        });
        Self::fit_targets(points, targets, true, class_count, config)
    }

    fn fit_targets(
        points: &Matrix,
        initial_targets: Matrix,
        multiclass: bool,
        class_count: usize,
        config: EngineConfig,
    ) -> Result<Self> {
        config.validate()?;
        let n = initial_targets.rows();
        let total = points.rows();
        if n == 0 {
            return Err(Error::InvalidLabel {
                message: "at least one labeled point is required".to_owned(),
            });
        }
        if n > total {
            return Err(Error::InvalidLabel {
                message: format!("{n} labels supplied for {total} points"),
            });
        }

        let executor = Executor::with_workers(config.workers);
        let graph = KernelGraph::fit(points.clone(), config.kernel, config.bandwidth)?;
        let index = if config.query_path == QueryPath::Dense {
            None
        } else {
            Some(SpatialIndex::build(points)?)
        };
        let weights = graph.weights_with(&executor)?;
        // Global anchoring check first, so an unanchored component fails
        // with the same Error::Core the monolithic engine reports instead
        // of a confusing per-shard "no labels" error.
        let anchor_labels: Vec<f64> = (0..n).map(|i| initial_targets.get(i, 0)).collect();
        let problem = Problem::new(weights.clone(), anchor_labels)?;
        problem.require_anchored(0.0)?;

        let plan = ShardPlan::new(&weights, n)?;
        // One task per shard: component sizes are wildly uneven, so
        // width-1 claims keep a large component from queueing small ones
        // behind it. Per-shard engines are sequential (the parallelism is
        // across shards) and always dense-path (they are never queried
        // directly — the global plane owns the index).
        let shard_config = config.clone().workers(1).query_path(QueryPath::Dense);
        let engines = executor.map_tasks(plan.shards(), |_, shard| {
            let shard_points = shard.extract_rows(points);
            let shard_targets = shard.extract_labeled_rows(&initial_targets, shard.n_labeled());
            ServingEngine::fit_internal(
                &shard_points,
                shard_targets,
                multiclass,
                class_count,
                shard_config.clone(),
            )
            .map(Arc::new)
        })?;

        let k = initial_targets.cols();
        let scores = scatter_scores(total, k, &plan, &engines)?;
        let mut metrics = ServeMetrics::default();
        for _ in 0..plan.n_shards() {
            metrics.record_factorization();
        }
        Ok(ShardedEngine {
            config,
            graph,
            index,
            executor,
            multiclass,
            class_count,
            plan,
            current: RwLock::new(Arc::new(EpochModel {
                id: 1,
                engines,
                scores,
            })),
            writer: Mutex::new(()),
            metrics: Mutex::new(metrics),
        })
    }

    // ------------------------------------------------------------------
    // Query path
    // ------------------------------------------------------------------

    /// Scores a batch of out-of-sample queries against the current epoch.
    ///
    /// The epoch is pinned with one `Arc` clone under a brief read lock,
    /// so a concurrent label fold never tears a batch: every query in the
    /// batch sees the same generation. The evaluation itself is the exact
    /// [`QueryPlane`] code the monolithic engine runs, over the globally
    /// reassembled score matrix.
    ///
    /// # Errors
    ///
    /// As [`ServingEngine::predict_batch`].
    /// hot
    /// complexity: O(b * n * c)
    /// deterministic
    pub fn predict_batch(&self, queries: &[QueryPoint]) -> Result<Vec<Prediction>> {
        let model = self.current_model();
        let plane = QueryPlane {
            graph: &self.graph,
            index: self.index.as_ref(),
            scores: &model.scores,
            config: &self.config,
            multiclass: self.multiclass,
        };
        let outcome = plane.predict_batch(&self.executor, queries)?;
        self.lock_metrics()
            .record_batch(&outcome.latencies, outcome.batch_seconds);
        Ok(outcome.predictions)
    }

    // ------------------------------------------------------------------
    // Epoch folds
    // ------------------------------------------------------------------

    /// Folds a newly observed binary label into the shard that owns
    /// `node` and publishes a new epoch.
    ///
    /// Only the affected shard's engine is cloned and updated (its rank-1
    /// chain, residual guard and periodic refactor all apply unchanged on
    /// the shard-local system); every other shard is shared with the
    /// previous epoch by reference. Readers serving the old epoch are
    /// never blocked — the publish is a pointer swap.
    ///
    /// # Errors
    ///
    /// As [`ServingEngine::observe_label`], with node indices reported in
    /// global coordinates.
    pub fn observe_label(&self, node: usize, y: f64) -> Result<()> {
        if self.multiclass {
            return Err(Error::InvalidLabel {
                message: "engine was fitted for multiclass labels; use observe_class_label"
                    .to_owned(),
            });
        }
        if !y.is_finite() {
            return Err(Error::NonFiniteValue {
                context: "serve.observe_label target",
                index: 0,
            });
        }
        self.fold_with(node, |engine, local| engine.observe_label(local, y))
    }

    /// Multiclass counterpart of [`ShardedEngine::observe_label`].
    ///
    /// # Errors
    ///
    /// As [`ServingEngine::observe_class_label`], with node indices
    /// reported in global coordinates.
    pub fn observe_class_label(&self, node: usize, class: usize) -> Result<()> {
        if !self.multiclass {
            return Err(Error::InvalidLabel {
                message: "engine was fitted for binary labels; use observe_label".to_owned(),
            });
        }
        if class >= self.class_count {
            return Err(Error::InvalidLabel {
                message: format!(
                    "class {class} out of range for {} classes",
                    self.class_count
                ),
            });
        }
        self.fold_with(node, |engine, local| {
            engine.observe_class_label(local, class)
        })
    }

    fn fold_with<F>(&self, node: usize, apply: F) -> Result<()>
    where
        F: FnOnce(&mut ServingEngine, usize) -> Result<()>,
    {
        if node >= self.n_nodes() {
            return Err(Error::UnknownNode { node });
        }
        let shard_id = self
            .plan
            .shard_of(node)
            .ok_or(Error::UnknownNode { node })?;
        let local = self.plan.shards()[shard_id]
            .local_index_of(node)
            .ok_or_else(|| Error::Internal {
                message: format!("node {node} missing from shard {shard_id} membership"),
            })?;

        // One writer at a time; readers keep cloning the old epoch Arc.
        let _guard = self.lock_writer();
        let model = self.current_model();
        if model.engines[shard_id].labeled_mask()[local] {
            return Err(Error::AlreadyLabeled { node });
        }

        // Copy-on-write: deep-clone only the affected shard's engine and
        // fold the label into the clone on its shard-local index.
        let mut engine = ServingEngine::clone(&model.engines[shard_id]);
        apply(&mut engine, local)?;

        // Reassemble the global scores: copy the previous epoch's matrix
        // and overwrite only the updated shard's rows.
        let mut scores = model.scores.clone();
        let members = self.plan.shards()[shard_id].members();
        let shard_scores = engine.scores();
        for (local_row, &global_row) in members.iter().enumerate() {
            for c in 0..scores.cols() {
                scores.set(global_row, c, shard_scores.get(local_row, c));
            }
        }

        let mut engines = model.engines.clone();
        engines[shard_id] = Arc::new(engine);
        let next = Arc::new(EpochModel {
            id: model.id + 1,
            engines,
            scores,
        });
        self.publish(next);
        self.lock_metrics().record_rank1_update();
        Ok(())
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The current epoch id (1 after fit, +1 per published fold).
    pub fn epoch(&self) -> u64 {
        self.current_model().id
    }

    /// Number of shards (connected components of the fitted graph).
    pub fn n_shards(&self) -> usize {
        self.plan.n_shards()
    }

    /// The shard decomposition plan.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The shard containing a global node, or `None` out of range.
    pub fn shard_of(&self, node: usize) -> Option<usize> {
        self.plan.shard_of(node)
    }

    /// Number of nodes in the fitted graph.
    pub fn n_nodes(&self) -> usize {
        self.graph.len()
    }

    /// Input dimension the engine was fitted on.
    pub fn dim(&self) -> usize {
        self.graph.dim()
    }

    /// Number of nodes whose label has been observed, over all shards.
    pub fn n_labeled(&self) -> usize {
        self.current_model()
            .engines
            .iter()
            .map(|e| e.n_labeled())
            .sum()
    }

    /// Number of classes (2 for a binary engine).
    pub fn class_count(&self) -> usize {
        self.class_count
    }

    /// Whether the engine was fitted with one-vs-rest multiclass targets.
    pub fn is_multiclass(&self) -> bool {
        self.multiclass
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Worker count of the engine's executor (1 when sequential).
    pub fn workers(&self) -> usize {
        self.executor.workers()
    }

    /// The global fitted kernel graph.
    pub fn graph(&self) -> &KernelGraph {
        &self.graph
    }

    /// A copy of the current epoch's global score matrix (`N × k`).
    pub fn scores(&self) -> Matrix {
        self.current_model().scores.clone()
    }

    /// Convenience: the binary score of one fitted node.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidLabel`] on a multiclass engine,
    /// [`Error::UnknownNode`] for an out-of-range index.
    pub fn score(&self, node: usize) -> Result<f64> {
        if self.multiclass {
            return Err(Error::InvalidLabel {
                message: "score() is binary-only; use scores() for multiclass".to_owned(),
            });
        }
        if node >= self.n_nodes() {
            return Err(Error::UnknownNode { node });
        }
        Ok(self.current_model().scores.get(node, 0))
    }

    /// Snapshot of the engine's latency/throughput counters. Per-fold
    /// factorization activity inside shards (guarded refactors) is
    /// tracked by the shard engines; this aggregate counts fit-time
    /// factorizations and published folds.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.lock_metrics().snapshot()
    }

    // ------------------------------------------------------------------
    // Crate-internal plumbing (snapshot codec, benches)
    // ------------------------------------------------------------------

    /// The current epoch, pinned. Readers hold the lock only long enough
    /// to clone the `Arc`.
    pub(crate) fn current_model(&self) -> Arc<EpochModel> {
        Arc::clone(&self.current.read().unwrap_or_else(PoisonError::into_inner))
    }

    fn publish(&self, next: Arc<EpochModel>) {
        *self.current.write().unwrap_or_else(PoisonError::into_inner) = next;
    }

    fn lock_writer(&self) -> MutexGuard<'_, ()> {
        self.writer.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_metrics(&self) -> MutexGuard<'_, ServeMetrics> {
        self.metrics.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Rebuilds a sharded engine from restored parts: the global graph,
    /// index and score plane are recomputed/adopted without factoring
    /// anything — the per-shard engines arrive with their cached
    /// factorization state intact.
    pub(crate) fn from_restored(
        points: &Matrix,
        config: EngineConfig,
        multiclass: bool,
        class_count: usize,
        plan: ShardPlan,
        engines: Vec<ServingEngine>,
        scores: Matrix,
        epoch: u64,
    ) -> Result<Self> {
        config.validate()?;
        let executor = Executor::with_workers(config.workers);
        let graph = KernelGraph::fit(points.clone(), config.kernel, config.bandwidth)?;
        let index = if config.query_path == QueryPath::Dense {
            None
        } else {
            Some(SpatialIndex::build(points)?)
        };
        Ok(ShardedEngine {
            config,
            graph,
            index,
            executor,
            multiclass,
            class_count,
            plan,
            current: RwLock::new(Arc::new(EpochModel {
                id: epoch,
                engines: engines.into_iter().map(Arc::new).collect(),
                scores,
            })),
            writer: Mutex::new(()),
            metrics: Mutex::new(ServeMetrics::default()),
        })
    }
}

/// Scatters per-shard score rows into a global `total × k` matrix.
fn scatter_scores(
    total: usize,
    k: usize,
    plan: &ShardPlan,
    engines: &[Arc<ServingEngine>],
) -> Result<Matrix> {
    if engines.len() != plan.n_shards() {
        return Err(Error::Internal {
            message: format!(
                "{} shard engines for {} shards",
                engines.len(),
                plan.n_shards()
            ),
        });
    }
    let mut scores = Matrix::zeros(total, k);
    for (shard, engine) in plan.shards().iter().zip(engines) {
        let local = engine.scores();
        for (local_row, &global_row) in shard.members().iter().enumerate() {
            for c in 0..k {
                scores.set(global_row, c, local.get(local_row, c));
            }
        }
    }
    Ok(scores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gssl_graph::Kernel;

    /// Three well-separated 1-D clusters under a compact kernel: three
    /// shards, labeled-first nodes 0..3 one per cluster.
    fn clustered_points() -> Matrix {
        let coords = [0.0, 10.0, 20.0, 0.4, 10.3, 19.6, 0.7, 10.7, 20.3];
        Matrix::from_fn(coords.len(), 1, |i, _| coords[i])
    }

    fn compact_config() -> EngineConfig {
        EngineConfig::new(Kernel::Epanechnikov, 1.2).workers(1)
    }

    #[test]
    fn fit_discovers_components_and_serves() {
        let engine =
            ShardedEngine::fit(&clustered_points(), &[0.0, 1.0, 0.0], compact_config()).unwrap();
        assert_eq!(engine.n_shards(), 3);
        assert_eq!(engine.epoch(), 1);
        assert_eq!(engine.n_nodes(), 9);
        assert_eq!(engine.n_labeled(), 3);
        assert_eq!(engine.metrics().factorizations, 3);
        let out = engine
            .predict_batch(&[
                QueryPoint::new(vec![0.2]),
                QueryPoint::new(vec![10.2]),
                QueryPoint::new(vec![19.9]),
            ])
            .unwrap();
        assert_eq!(out[0].class, 0);
        assert_eq!(out[1].class, 1);
        assert_eq!(out[2].class, 0);
    }

    #[test]
    fn folds_touch_only_the_owning_shard() {
        let engine =
            ShardedEngine::fit(&clustered_points(), &[0.0, 1.0, 0.0], compact_config()).unwrap();
        let before = engine.current_model();
        engine.observe_label(4, 1.0).unwrap(); // node 4 lives in cluster 1
        assert_eq!(engine.epoch(), 2);
        let after = engine.current_model();
        let owner = engine.shard_of(4).unwrap();
        for shard_id in 0..engine.n_shards() {
            let shared = Arc::ptr_eq(&before.engines[shard_id], &after.engines[shard_id]);
            assert_eq!(
                shared,
                shard_id != owner,
                "shard {shard_id} sharing is wrong after folding into shard {owner}"
            );
        }
        // The pinned old epoch still serves its original scores.
        assert_eq!(before.id, 1);
        assert_eq!(engine.score(4).unwrap(), 1.0);
        assert_eq!(engine.n_labeled(), 4);
    }

    #[test]
    fn fold_validations_use_global_indices() {
        let engine =
            ShardedEngine::fit(&clustered_points(), &[0.0, 1.0, 0.0], compact_config()).unwrap();
        assert!(matches!(
            engine.observe_label(99, 1.0),
            Err(Error::UnknownNode { node: 99 })
        ));
        assert!(matches!(
            engine.observe_label(1, 1.0),
            Err(Error::AlreadyLabeled { node: 1 })
        ));
        assert!(matches!(
            engine.observe_label(5, f64::NAN),
            Err(Error::NonFiniteValue { .. })
        ));
        assert!(matches!(
            engine.observe_class_label(5, 0),
            Err(Error::InvalidLabel { .. })
        ));
        // Failed folds never publish.
        assert_eq!(engine.epoch(), 1);
    }

    #[test]
    fn unanchored_component_fails_like_monolithic() {
        // Third cluster (nodes 2, 5, 8) has no labeled node when only two
        // labels are supplied — globally detected anchoring failure.
        let err = ShardedEngine::fit(&clustered_points(), &[0.0, 1.0], compact_config());
        assert!(matches!(err, Err(Error::Core(_))));
        let mono = ServingEngine::fit(&clustered_points(), &[0.0, 1.0], compact_config());
        assert!(matches!(mono, Err(Error::Core(_))));
    }

    #[test]
    fn multiclass_sharded_engine_serves_and_folds() {
        let engine =
            ShardedEngine::fit_multiclass(&clustered_points(), &[0, 1, 2], 3, compact_config())
                .unwrap();
        assert!(engine.is_multiclass());
        assert_eq!(engine.class_count(), 3);
        assert!(engine.score(0).is_err());
        let out = engine
            .predict_batch(&[QueryPoint::new(vec![19.8])])
            .unwrap();
        assert_eq!(out[0].class, 2);
        engine.observe_class_label(8, 2).unwrap();
        assert_eq!(engine.epoch(), 2);
        assert_eq!(engine.scores().get(8, 2), 1.0);
        assert!(matches!(
            engine.observe_class_label(7, 9),
            Err(Error::InvalidLabel { .. })
        ));
        assert!(matches!(
            engine.observe_label(7, 1.0),
            Err(Error::InvalidLabel { .. })
        ));
    }

    #[test]
    fn fit_validations_match_monolithic() {
        let points = clustered_points();
        assert!(matches!(
            ShardedEngine::fit(&points, &[], compact_config()),
            Err(Error::InvalidLabel { .. })
        ));
        assert!(matches!(
            ShardedEngine::fit(&points, &[0.0; 10], compact_config()),
            Err(Error::InvalidLabel { .. })
        ));
        assert!(matches!(
            ShardedEngine::fit(&points, &[f64::NAN, 1.0, 0.0], compact_config()),
            Err(Error::NonFiniteValue { .. })
        ));
        assert!(matches!(
            ShardedEngine::fit_multiclass(&points, &[0, 1, 2], 1, compact_config()),
            Err(Error::InvalidLabel { .. })
        ));
        assert!(matches!(
            ShardedEngine::fit_multiclass(&points, &[0, 9, 2], 3, compact_config()),
            Err(Error::InvalidLabel { .. })
        ));
    }
}
