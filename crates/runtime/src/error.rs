//! Error type for the execution layer.

use std::fmt;

/// Errors returned by the runtime's pool and executor primitives.
///
/// Downstream crates embed these through a `From<gssl_runtime::Error>`
/// conversion on their own error enums, so the generic map primitives can
/// surface runtime failures (a zero-width chunk, a lost batch slot) through
/// whatever error type the mapped closure uses.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// The executor or pool configuration is invalid (e.g. zero workers or
    /// a zero chunk width).
    InvalidConfig {
        /// Description of the violated requirement.
        message: String,
    },
    /// An internal invariant of the chunk-claim protocol was violated —
    /// always a bug in this crate, never caller error.
    Internal {
        /// Description of the broken invariant.
        message: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidConfig { message } => write!(f, "invalid executor config: {message}"),
            Error::Internal { message } => write!(f, "internal runtime error: {message}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias: runtime operations default to the runtime [`Error`],
/// while the generic map primitives substitute the caller's error type.
pub type Result<T, E = Error> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(Error::InvalidConfig {
            message: "zero workers".into()
        }
        .to_string()
        .contains("zero workers"));
        assert!(Error::Internal {
            message: "slot missing".into()
        }
        .to_string()
        .contains("slot missing"));
    }
}
