//! Bandwidth selection rules for kernel graphs.
//!
//! Theorem II.1 needs `h_n → 0` with `n·h_n^d → ∞`; the paper's synthetic
//! experiments use `h_n = (log n / n)^{1/d}` with `d = 5`, and the COIL
//! experiment uses the median heuristic `σ² = median‖x_i − x_j‖²`.

use crate::error::{Error, Result};
use gssl_linalg::Matrix;

/// The paper's bandwidth rate `h_n = (log n / n)^{1/d}`.
///
/// Satisfies both conditions of Theorem II.1: `h_n → 0` and
/// `n h_n^d = log n → ∞`.
///
/// # Errors
///
/// Returns [`Error::InvalidArgument`] when `n < 2` (so `log n > 0`) or
/// `dim == 0`.
///
/// ```
/// use gssl_graph::bandwidth::paper_rate;
/// let h = paper_rate(100, 5).unwrap();
/// assert!((h - (100f64.ln() / 100.0).powf(0.2)).abs() < 1e-15);
/// ```
pub fn paper_rate(n: usize, dim: usize) -> Result<f64> {
    if n < 2 {
        return Err(Error::InvalidArgument {
            message: format!("paper_rate requires n >= 2, got {n}"),
        });
    }
    if dim == 0 {
        return Err(Error::InvalidArgument {
            message: "paper_rate requires dim >= 1".to_owned(),
        });
    }
    let n = n as f64;
    Ok((n.ln() / n).powf(1.0 / dim as f64))
}

/// The median heuristic: bandwidth `σ` with `σ²` the median of all
/// pairwise *squared* Euclidean distances (the rule the paper uses for
/// the COIL experiment).
///
/// # Errors
///
/// * [`Error::EmptyInput`] when fewer than two points are given.
/// * [`Error::InvalidBandwidth`] when all points coincide (median distance
///   zero gives an unusable bandwidth).
pub fn median_heuristic(points: &Matrix) -> Result<f64> {
    let n = points.rows();
    if n < 2 {
        return Err(Error::EmptyInput {
            required: "at least two points",
        });
    }
    let mut dists = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            dists.push(squared_distance(points.row(i), points.row(j)));
        }
    }
    dists.sort_by(|a, b| a.total_cmp(b));
    let mid = dists.len() / 2;
    let median = if dists.len() % 2 == 0 {
        0.5 * (dists[mid - 1] + dists[mid])
    } else {
        dists[mid]
    };
    if median <= 0.0 {
        return Err(Error::InvalidBandwidth { value: 0.0 });
    }
    Ok(median.sqrt())
}

/// Silverman's rule of thumb `h = σ̂ (4 / ((d + 2) n))^{1/(d+4)}`, with
/// `σ̂` the average per-coordinate standard deviation.
///
/// # Errors
///
/// * [`Error::EmptyInput`] when fewer than two points are given.
/// * [`Error::InvalidBandwidth`] when the data has zero variance.
pub fn silverman(points: &Matrix) -> Result<f64> {
    let n = points.rows();
    let d = points.cols();
    if n < 2 || d == 0 {
        return Err(Error::EmptyInput {
            required: "at least two points of dimension >= 1",
        });
    }
    let mut sigma_sum = 0.0;
    for j in 0..d {
        let col = points.col(j);
        let mean = col.mean();
        let var = col.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0);
        sigma_sum += var.sqrt();
    }
    let sigma = sigma_sum / d as f64;
    if sigma <= 0.0 {
        return Err(Error::InvalidBandwidth { value: sigma });
    }
    let factor = (4.0 / ((d as f64 + 2.0) * n as f64)).powf(1.0 / (d as f64 + 4.0));
    Ok(sigma * factor)
}

/// A declarative bandwidth rule, resolved against data when the graph is
/// built.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Bandwidth {
    /// Use the given bandwidth as-is.
    Fixed(f64),
    /// The paper's `(log n / n)^{1/d}` rate, with `n` the number of points
    /// the rule is resolved against (the paper resolves it with the labeled
    /// sample size).
    PaperRate,
    /// Median of pairwise squared distances (square-rooted).
    MedianHeuristic,
    /// Silverman's rule of thumb.
    Silverman,
}

impl Bandwidth {
    /// Resolves the rule to a concrete bandwidth for `points`.
    ///
    /// For [`Bandwidth::PaperRate`], `rate_n` overrides the sample size used
    /// in the formula (the paper uses the *labeled* count `n` even though
    /// the graph spans `n + m` points); when `None`, `points.rows()` is used.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidBandwidth`] when a fixed bandwidth is not positive.
    /// * Errors from the underlying rules otherwise.
    pub fn resolve(self, points: &Matrix, rate_n: Option<usize>) -> Result<f64> {
        match self {
            Bandwidth::Fixed(h) => {
                if h > 0.0 {
                    Ok(h)
                } else {
                    Err(Error::InvalidBandwidth { value: h })
                }
            }
            Bandwidth::PaperRate => paper_rate(rate_n.unwrap_or(points.rows()), points.cols()),
            Bandwidth::MedianHeuristic => median_heuristic(points),
            Bandwidth::Silverman => silverman(points),
        }
    }
}

/// Squared Euclidean distance between two equal-length slices.
///
/// # Panics
///
/// Panics in debug builds when the slices have different lengths.
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "points must share a dimension");
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rate_formula_and_limits() {
        let h100 = paper_rate(100, 5).unwrap();
        assert!((h100 - (100f64.ln() / 100.0).powf(0.2)).abs() < 1e-15);
        // h_n -> 0 ...
        let h_big = paper_rate(1_000_000, 5).unwrap();
        assert!(h_big < h100);
        // ... while n h^d = log n -> infinity.
        let n = 1_000_000f64;
        assert!((n * h_big.powi(5) - n.ln()).abs() < 1e-6);
    }

    #[test]
    fn paper_rate_validates() {
        assert!(paper_rate(1, 5).is_err());
        assert!(paper_rate(10, 0).is_err());
    }

    #[test]
    fn median_heuristic_on_known_points() {
        // Three collinear points: pairwise squared distances 1, 1, 4.
        let pts = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0]]).unwrap();
        let h = median_heuristic(&pts).unwrap();
        assert!((h - 1.0).abs() < 1e-15); // median of {1,1,4} is 1
    }

    #[test]
    fn median_heuristic_even_count_averages() {
        // Four points on a line: distances² {1, 4, 9, 1, 4, 1} sorted
        // {1,1,1,4,4,9}; median = (1+4)/2 = 2.5.
        let pts = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]).unwrap();
        let h = median_heuristic(&pts).unwrap();
        assert!((h - 2.5f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn median_heuristic_rejects_degenerate_input() {
        let one = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        assert!(matches!(
            median_heuristic(&one),
            Err(Error::EmptyInput { .. })
        ));
        let same = Matrix::from_rows(&[&[1.0], &[1.0], &[1.0]]).unwrap();
        assert!(matches!(
            median_heuristic(&same),
            Err(Error::InvalidBandwidth { .. })
        ));
    }

    #[test]
    fn silverman_positive_on_spread_data() {
        let pts = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 2.0], &[2.0, 1.0], &[3.0, 4.0]]).unwrap();
        let h = silverman(&pts).unwrap();
        assert!(h > 0.0);
    }

    #[test]
    fn silverman_rejects_constant_data() {
        let pts = Matrix::filled(4, 2, 3.0);
        assert!(silverman(&pts).is_err());
    }

    #[test]
    fn bandwidth_rule_resolution() {
        let pts = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0]]).unwrap();
        assert_eq!(Bandwidth::Fixed(0.3).resolve(&pts, None).unwrap(), 0.3);
        assert!(Bandwidth::Fixed(0.0).resolve(&pts, None).is_err());
        let h_rate = Bandwidth::PaperRate.resolve(&pts, Some(100)).unwrap();
        assert!((h_rate - paper_rate(100, 1).unwrap()).abs() < 1e-15);
        let h_med = Bandwidth::MedianHeuristic.resolve(&pts, None).unwrap();
        assert!((h_med - 1.0).abs() < 1e-15);
    }

    #[test]
    fn squared_distance_basic() {
        assert_eq!(squared_distance(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(squared_distance(&[], &[]), 0.0);
    }
}
