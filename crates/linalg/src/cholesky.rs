//! Cholesky factorization for symmetric positive-definite systems.
//!
//! The hard-criterion system matrix `D₂₂ − W₂₂` and the soft-criterion
//! matrix `V + λL` are symmetric and (on suitable graphs) positive definite,
//! so Cholesky is the natural direct backend: half the work of LU and an
//! SPD-validity check for free.

use crate::error::{Error, Result};
use crate::matrix::Matrix;
use crate::strict;
use crate::vector::Vector;

/// Absolute symmetry tolerance applied by the `strict-checks` sanitizer to
/// Cholesky inputs (the criteria's system matrices are symmetric exactly,
/// up to assembly rounding).
const STRICT_SYMMETRY_TOL: f64 = 1e-9;

/// A Cholesky factorization `A = L Lᵀ` with `L` lower triangular.
///
/// ```
/// use gssl_linalg::{Cholesky, Matrix, Vector};
/// # fn main() -> Result<(), gssl_linalg::Error> {
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]])?;
/// let chol = Cholesky::factor(&a)?;
/// let x = chol.solve(&Vector::from(vec![6.0, 5.0]))?;
/// let back = a.matvec(&x)?;
/// assert!(back.approx_eq(&Vector::from(vec![6.0, 5.0]), 1e-12));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor, stored dense (upper part zero).
    lower: Matrix,
}

impl Cholesky {
    /// Factorizes a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; symmetry of the input is the
    /// caller's responsibility (use [`Matrix::is_symmetric`] to check).
    ///
    /// # Errors
    ///
    /// * [`Error::NotSquare`] when `a` is not square.
    /// * [`Error::NotPositiveDefinite`] when a diagonal pivot is `<= 0`
    ///   (or not finite).
    /// * [`Error::NonFiniteValue`] / [`Error::InvalidArgument`] under
    ///   `strict-checks` when `a` is non-finite or asymmetric.
    /// hot
    /// complexity: O(n^3)
    /// deterministic
    pub fn factor(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(Error::NotSquare { shape: a.shape() });
        }
        strict::check_finite_matrix("cholesky.factor input", a)?;
        strict::check_symmetric("cholesky.factor input", a, STRICT_SYMMETRY_TOL)?;
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            let mut diag = a.get(j, j);
            for &v in &l.row(j)[..j] {
                diag -= v * v;
            }
            if !(diag > 0.0) || !diag.is_finite() {
                return Err(Error::NotPositiveDefinite { pivot: j });
            }
            let diag_sqrt = diag.sqrt();
            l.set(j, j, diag_sqrt);
            for i in (j + 1)..n {
                let mut sum = a.get(i, j);
                for (lik, ljk) in l.row(i)[..j].iter().zip(&l.row(j)[..j]) {
                    sum -= lik * ljk;
                }
                l.set(i, j, sum / diag_sqrt);
            }
        }
        Ok(Cholesky { lower: l })
    }

    /// Factorizes a symmetric positive-definite matrix with trailing-block
    /// updates parallelized across `executor`, producing a factor
    /// **bit-identical** to [`Cholesky::factor`].
    ///
    /// The algorithm is a right-looking blocked factorization over a
    /// working copy of `a`: each panel of [`Self::PANEL_WIDTH`] columns is
    /// factored sequentially, then every trailing row subtracts the
    /// panel's outer products independently — one worker per row block,
    /// reading a snapshot of the panel's `L` columns so no worker reads a
    /// row another is writing. Bit-identity holds because each element's
    /// value sees exactly the left-looking sequence of operations: the
    /// subtractions `l[i][k] · l[j][k]` in globally increasing `k`, then
    /// one division by the pivot (or one square root on the diagonal).
    ///
    /// # Errors
    ///
    /// Same as [`Cholesky::factor`].
    /// hot
    /// complexity: O(n^3)
    /// deterministic
    pub fn factor_with(a: &Matrix, executor: &gssl_runtime::Executor) -> Result<Self> {
        if executor.is_sequential() {
            return Cholesky::factor(a);
        }
        if !a.is_square() {
            return Err(Error::NotSquare { shape: a.shape() });
        }
        strict::check_finite_matrix("cholesky.factor input", a)?;
        strict::check_symmetric("cholesky.factor input", a, STRICT_SYMMETRY_TOL)?;
        let n = a.rows();
        // Working copy: the lower triangle turns into L panel by panel;
        // the upper triangle is never read and is zeroed at the end.
        let mut w = a.clone();

        let mut j0 = 0;
        while j0 < n {
            let j1 = (j0 + Self::PANEL_WIDTH).min(n);
            // Panel factorization: columns j0..j1 sequentially. Entries in
            // these columns already carry the subtractions for k < j0 from
            // earlier trailing updates, so only the within-panel k remain.
            for j in j0..j1 {
                let mut diag = w.get(j, j);
                for &v in &w.row(j)[j0..j] {
                    diag -= v * v;
                }
                if !(diag > 0.0) || !diag.is_finite() {
                    return Err(Error::NotPositiveDefinite { pivot: j });
                }
                let diag_sqrt = diag.sqrt();
                w.set(j, j, diag_sqrt);
                for i in (j + 1)..n {
                    let mut sum = w.get(i, j);
                    for (lik, ljk) in w.row(i)[j0..j].iter().zip(&w.row(j)[j0..j]) {
                        sum -= lik * ljk;
                    }
                    w.set(i, j, sum / diag_sqrt);
                }
            }
            if j1 == n {
                break;
            }
            // Snapshot the finished panel columns of the trailing rows
            // (`L21`), stored column-major (one contiguous run per panel
            // column): trailing row i reads rows j >= j1 of this block
            // while their owners write other columns of the same rows, so
            // the read side must not alias the write side — and the
            // transposed layout makes the innermost update a contiguous
            // zip instead of a strided indexed walk.
            let pw = j1 - j0;
            let trailing_rows = n - j1;
            let mut l21t = vec![0.0; pw * trailing_rows];
            for k_off in 0..pw {
                let col = &mut l21t[k_off * trailing_rows..(k_off + 1) * trailing_rows];
                for (dst, i) in col.iter_mut().zip(j1..n) {
                    *dst = w.get(i, j0 + k_off);
                }
            }
            // Trailing update, parallel by row block: lower-triangle entry
            // (i, j) with j >= j1 subtracts l[i][k] * l[j][k] for the
            // panel's k in increasing order — the same operations, on the
            // same running value, as the left-looking inner loop.
            let block_rows = trailing_rows
                .div_ceil(executor.workers().saturating_mul(4))
                .max(1);
            let data = w.as_mut_slice();
            let tail = &mut data[j1 * n..];
            let l21t = &l21t[..];
            executor.for_each_chunk_mut(tail, block_rows * n, |start, chunk| {
                let first_row = j1 + start / n;
                for (local, row) in chunk.chunks_mut(n).enumerate() {
                    let i = first_row + local;
                    for k_off in 0..pw {
                        let lk = &l21t[k_off * trailing_rows..(k_off + 1) * trailing_rows];
                        let lik = lk[i - j1];
                        let updated = &mut row[j1..=i];
                        for (value, ljk) in updated.iter_mut().zip(lk) {
                            *value -= lik * ljk;
                        }
                    }
                }
            })?;
            j0 = j1;
        }

        // The sequential factor writes into a zero matrix; mirror that by
        // clearing the never-read upper triangle of the working copy.
        for i in 0..n {
            for j in (i + 1)..n {
                w.set(i, j, 0.0);
            }
        }
        Ok(Cholesky { lower: w })
    }

    /// Panel width of the blocked [`Cholesky::factor_with`] algorithm:
    /// wide enough to amortize the sequential panel work, narrow enough
    /// that trailing updates dominate and parallelize.
    const PANEL_WIDTH: usize = 32;

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lower.rows()
    }

    /// Borrows the lower-triangular factor `L`.
    /// shape: (n, n)
    pub fn lower(&self) -> &Matrix {
        &self.lower
    }

    /// Solves `A x = b` via forward and back substitution.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when `b.len() != dim()`, or
    /// [`Error::NonFiniteValue`] under `strict-checks` when the right-hand
    /// side or the computed solution is non-finite.
    /// shape: (b.len,)
    /// hot
    /// complexity: O(n^2)
    pub fn solve(&self, b: &Vector) -> Result<Vector> {
        let n = self.dim();
        if b.len() != n {
            return Err(Error::DimensionMismatch {
                operation: "cholesky solve",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        strict::check_finite("cholesky.solve rhs", b.as_slice())?;
        // Forward: L y = b.
        let mut x = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for (lij, xj) in self.lower.row(i)[..i].iter().zip(&x[..i]) {
                sum -= lij * xj;
            }
            x[i] = sum / self.lower.get(i, i);
        }
        // Backward: Lᵀ x = y (column access on L, so the row slice is on x).
        for i in (0..n).rev() {
            let mut sum = x[i];
            for (j, xj) in (i + 1..n).zip(&x[i + 1..]) {
                sum -= self.lower.get(j, i) * xj;
            }
            x[i] = sum / self.lower.get(i, i);
        }
        strict::check_finite("cholesky.solve output", &x)?;
        Ok(Vector::from(x))
    }

    /// Solves `A X = B` column by column.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when `B.rows() != dim()`.
    /// shape: (b.rows, b.cols)
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(Error::DimensionMismatch {
                operation: "cholesky solve_matrix",
                left: (n, n),
                right: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let x = self.solve(&b.col(j))?;
            for (i, &xi) in x.as_slice().iter().enumerate() {
                out.set(i, j, xi);
            }
        }
        Ok(out)
    }

    /// Determinant (product of squared diagonal entries of `L`).
    pub fn det(&self) -> f64 {
        let mut det = 1.0;
        for i in 0..self.dim() {
            let d = self.lower.get(i, i);
            det *= d * d;
        }
        det
    }

    /// Log-determinant, numerically stable for large well-conditioned
    /// matrices where [`Cholesky::det`] would overflow.
    pub fn log_det(&self) -> f64 {
        (0..self.dim())
            .map(|i| 2.0 * self.lower.get(i, i).ln())
            .sum()
    }

    /// Inverse of the factored matrix.
    ///
    /// # Errors
    ///
    /// Propagates errors from the underlying solves.
    /// shape: (n, n)
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }
}

/// Tests whether a symmetric matrix is positive definite by attempting a
/// Cholesky factorization.
pub fn is_positive_definite(a: &Matrix) -> bool {
    Cholesky::factor(a).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd_sample() -> Matrix {
        // A = Bᵀ B + I is SPD for any B.
        let b =
            Matrix::from_rows(&[&[1.0, 2.0, 0.5], &[0.0, 1.0, -1.0], &[2.0, 0.0, 1.0]]).unwrap();
        &b.transpose().matmul(&b).unwrap() + &Matrix::identity(3)
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let a = spd_sample();
        let chol = Cholesky::factor(&a).unwrap();
        let l = chol.lower();
        let back = l.matmul(&l.transpose()).unwrap();
        assert!(back.approx_eq(&a, 1e-12));
    }

    #[test]
    fn lower_factor_is_lower_triangular() {
        let chol = Cholesky::factor(&spd_sample()).unwrap();
        let l = chol.lower();
        for i in 0..3 {
            for j in (i + 1)..3 {
                assert_eq!(l.get(i, j), 0.0);
            }
        }
    }

    #[test]
    fn solve_has_small_residual() {
        let a = spd_sample();
        let b = Vector::from(vec![1.0, -2.0, 0.5]);
        let x = Cholesky::factor(&a).unwrap().solve(&b).unwrap();
        let back = a.matvec(&x).unwrap();
        assert!(back.approx_eq(&b, 1e-12));
    }

    #[test]
    fn solve_matrix_matches_identity_inverse() {
        let a = spd_sample();
        let chol = Cholesky::factor(&a).unwrap();
        let inv = chol.inverse().unwrap();
        assert!(a
            .matmul(&inv)
            .unwrap()
            .approx_eq(&Matrix::identity(3), 1e-11));
    }

    #[test]
    fn rejects_indefinite_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(matches!(
            Cholesky::factor(&a),
            Err(Error::NotPositiveDefinite { pivot: 1 })
        ));
        assert!(!is_positive_definite(&a));
        assert!(is_positive_definite(&Matrix::identity(2)));
    }

    #[test]
    fn rejects_non_square() {
        assert!(matches!(
            Cholesky::factor(&Matrix::zeros(2, 3)),
            Err(Error::NotSquare { .. })
        ));
    }

    #[test]
    fn rejects_zero_matrix() {
        assert!(matches!(
            Cholesky::factor(&Matrix::zeros(2, 2)),
            Err(Error::NotPositiveDefinite { pivot: 0 })
        ));
    }

    #[test]
    fn factor_with_is_bit_identical_to_sequential() {
        // Larger than one 32-wide panel so the blocked path exercises both
        // the panel loop and the parallel trailing update.
        let n = 83;
        let b = Matrix::from_fn(n, n, |i, j| ((i * 31 + j * 17) as f64 * 0.37).sin());
        let mut a = b.transpose().matmul(&b).unwrap();
        for i in 0..n {
            a.set(i, i, a.get(i, i) + n as f64);
        }
        let sequential = Cholesky::factor(&a).unwrap();
        for workers in [1, 2, 3, 4] {
            let executor = gssl_runtime::Executor::with_workers(workers);
            let parallel = Cholesky::factor_with(&a, &executor).unwrap();
            assert_eq!(
                parallel.lower().as_slice(),
                sequential.lower().as_slice(),
                "cholesky factor differs from sequential at {workers} workers"
            );
        }
    }

    #[test]
    fn factor_with_propagates_indefiniteness() {
        // Indefinite past the first panel: identity with one flipped
        // diagonal entry deep in the matrix.
        let n = 48;
        let pivot = 40;
        let mut a = Matrix::identity(n);
        a.set(pivot, pivot, -1.0);
        let executor = gssl_runtime::Executor::with_workers(3);
        assert!(matches!(
            Cholesky::factor_with(&a, &executor),
            Err(Error::NotPositiveDefinite { pivot: p }) if p == pivot
        ));
    }

    #[test]
    fn det_and_log_det_agree() {
        let a = spd_sample();
        let chol = Cholesky::factor(&a).unwrap();
        assert!((chol.det().ln() - chol.log_det()).abs() < 1e-10);
        // Cross-check against LU determinant.
        let lu_det = crate::lu::Lu::factor(&a).unwrap().det();
        assert!((chol.det() - lu_det).abs() < 1e-8 * lu_det.abs());
    }

    #[test]
    fn solve_rejects_wrong_len() {
        let chol = Cholesky::factor(&Matrix::identity(2)).unwrap();
        assert!(chol.solve(&Vector::zeros(3)).is_err());
        assert!(chol.solve_matrix(&Matrix::zeros(1, 1)).is_err());
    }

    #[test]
    fn matches_lu_solution() {
        let a = spd_sample();
        let b = Vector::from(vec![3.0, 1.0, 4.0]);
        let x_chol = Cholesky::factor(&a).unwrap().solve(&b).unwrap();
        let x_lu = crate::lu::solve(&a, &b).unwrap();
        assert!(x_chol.approx_eq(&x_lu, 1e-10));
    }
}
