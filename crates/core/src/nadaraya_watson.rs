//! The Nadaraya–Watson kernel-regression estimator (Eq. 6 of the paper).
//!
//! ```text
//! q̂_{n+a} = Σ_{i≤n} w_{n+a,i} Y_i / Σ_{k≤n} w_{n+a,k}
//! ```
//!
//! The paper's Theorem II.1 proves hard-criterion consistency by coupling
//! the hard solution to this estimator: the gap `g_{n+a}` between the two
//! (see [`crate::theory`]) vanishes in probability when `m = o(n h_n^d)`.

use crate::error::{Error, Result};
use crate::problem::{Problem, Scores};
use crate::traits::TransductiveModel;
use gssl_graph::{affinity::pairwise_squared_distances, Kernel};
use gssl_linalg::{strict, Matrix};

/// The Nadaraya–Watson estimator applied transductively: each unlabeled
/// vertex is scored by the similarity-weighted mean of the *labeled*
/// responses only (unlabeled–unlabeled similarities are ignored).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NadarayaWatson {
    _private: (),
}

impl NadarayaWatson {
    /// Creates the estimator.
    pub fn new() -> Self {
        NadarayaWatson::default()
    }

    /// Scores the unlabeled vertices of a prebuilt problem.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ZeroKernelMass`] when some unlabeled vertex has no
    /// similarity mass on the labeled set (possible with compactly
    /// supported kernels).
    pub fn fit(&self, problem: &Problem) -> Result<Scores> {
        let blocks = problem.weight_blocks()?;
        let y = problem.labels();
        let m = problem.n_unlabeled();
        let mut unlabeled = Vec::with_capacity(m);
        for a in 0..m {
            let row = blocks.a21.row(a);
            let mass: f64 = row.iter().sum();
            if mass <= 0.0 {
                return Err(Error::ZeroKernelMass { unlabeled_index: a });
            }
            let weighted: f64 = row.iter().zip(y).map(|(w, yi)| w * yi).sum();
            unlabeled.push(weighted / mass);
        }
        strict::check_finite("nadaraya-watson output", &unlabeled)?;
        Ok(Scores::from_parts(y, &unlabeled))
    }

    /// Classic inductive kernel regression: predicts at arbitrary query
    /// points from `(train_inputs, train_targets)`.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidProblem`] on length mismatches or empty training
    ///   data.
    /// * [`Error::Graph`] when the bandwidth is invalid.
    /// * [`Error::ZeroKernelMass`] when a query sees no training mass.
    /// hot
    /// complexity: O(q * n * d)
    pub fn predict(
        &self,
        train_inputs: &Matrix,
        train_targets: &[f64],
        queries: &Matrix,
        kernel: Kernel,
        bandwidth: f64,
    ) -> Result<Vec<f64>> {
        if train_inputs.rows() != train_targets.len() {
            return Err(Error::InvalidProblem {
                message: format!(
                    "{} training inputs but {} targets",
                    train_inputs.rows(),
                    train_targets.len()
                ),
            });
        }
        if train_inputs.rows() == 0 {
            return Err(Error::InvalidProblem {
                message: "training set is empty".to_owned(),
            });
        }
        if train_inputs.cols() != queries.cols() {
            return Err(Error::InvalidProblem {
                message: format!(
                    "training dimension {} differs from query dimension {}",
                    train_inputs.cols(),
                    queries.cols()
                ),
            });
        }
        // Validate the bandwidth once for the whole batch; the per-pair
        // loop then evaluates the kernel without re-checking arguments
        // (squared distances are nonnegative by construction).
        kernel.weight(0.0, bandwidth)?;
        let mut out = Vec::with_capacity(queries.rows());
        for q in 0..queries.rows() {
            let query_row = queries.row(q);
            let mut mass = 0.0;
            let mut weighted = 0.0;
            for (i, &target) in train_targets.iter().enumerate() {
                let d2 = gssl_graph::bandwidth::squared_distance(query_row, train_inputs.row(i));
                let w = kernel.weight_unchecked(d2, bandwidth);
                mass += w;
                weighted += w * target;
            }
            if mass <= 0.0 {
                return Err(Error::ZeroKernelMass { unlabeled_index: q });
            }
            out.push(weighted / mass);
        }
        strict::check_finite("nadaraya-watson predictions", &out)?;
        Ok(out)
    }
}

impl TransductiveModel for NadarayaWatson {
    fn fit(&self, problem: &Problem) -> Result<Scores> {
        NadarayaWatson::fit(self, problem)
    }

    fn name(&self) -> String {
        "nadaraya-watson".to_owned()
    }
}

/// Builds a [`Problem`]-compatible affinity matrix and immediately runs
/// kernel regression on raw points (labeled rows first) — a convenience
/// mirroring the paper's experimental pipeline.
///
/// # Errors
///
/// Propagates graph-construction and estimator errors.
/// hot
/// complexity: O(n^2 * d)
pub fn kernel_regression(
    points: &Matrix,
    labels: &[f64],
    kernel: Kernel,
    bandwidth: f64,
) -> Result<Vec<f64>> {
    let n = labels.len();
    if n == 0 || n > points.rows() {
        return Err(Error::InvalidProblem {
            message: format!("{} labels for {} points", n, points.rows()),
        });
    }
    let d2 = pairwise_squared_distances(points)?;
    // One bandwidth check for the whole sweep, as in `predict`.
    kernel.weight(0.0, bandwidth)?;
    let mut out = Vec::with_capacity(points.rows() - n);
    for q in n..points.rows() {
        let mut mass = 0.0;
        let mut weighted = 0.0;
        for (i, &label) in labels.iter().enumerate() {
            let w = kernel.weight_unchecked(d2.get(q, i), bandwidth);
            mass += w;
            weighted += w * label;
        }
        if mass <= 0.0 {
            return Err(Error::ZeroKernelMass {
                unlabeled_index: q - n,
            });
        }
        out.push(weighted / mass);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_average_of_labeled_responses() {
        // Unlabeled vertex 2 with similarities 3 and 1 to labels 1 and 0.
        let w =
            Matrix::from_rows(&[&[1.0, 0.0, 0.75], &[0.0, 1.0, 0.25], &[0.75, 0.25, 1.0]]).unwrap();
        let p = Problem::new(w, vec![1.0, 0.0]).unwrap();
        let scores = NadarayaWatson::new().fit(&p).unwrap();
        assert!((scores.unlabeled()[0] - 0.75).abs() < 1e-15);
    }

    #[test]
    fn ignores_unlabeled_unlabeled_similarity() {
        // Two unlabeled vertices strongly tied to each other must not
        // influence each other's NW score.
        let w =
            Matrix::from_rows(&[&[1.0, 0.5, 0.5], &[0.5, 1.0, 0.99], &[0.5, 0.99, 1.0]]).unwrap();
        let p = Problem::new(w, vec![1.0]).unwrap();
        let scores = NadarayaWatson::new().fit(&p).unwrap();
        // Both unlabeled vertices see only the single labeled y = 1.
        assert_eq!(scores.unlabeled(), &[1.0, 1.0]);
    }

    #[test]
    fn zero_mass_is_detected() {
        let w = Matrix::from_rows(&[&[1.0, 0.0, 0.5], &[0.0, 1.0, 0.5], &[0.5, 0.5, 1.0]]).unwrap();
        // Vertex 1 is unlabeled with zero similarity to the only labeled
        // vertex 0.
        let p = Problem::new(w, vec![1.0]).unwrap();
        let result = NadarayaWatson::new().fit(&p);
        assert_eq!(result, Err(Error::ZeroKernelMass { unlabeled_index: 0 }));
    }

    #[test]
    fn inductive_predict_matches_transductive_fit() {
        let points = Matrix::from_rows(&[&[0.0], &[1.0], &[0.4], &[0.7]]).unwrap();
        let labels = [0.0, 1.0];
        let p = Problem::from_points(&points, labels.to_vec(), Kernel::Gaussian, 0.8).unwrap();
        let transductive = NadarayaWatson::new().fit(&p).unwrap();
        let train = points.submatrix(0, 2, 0, 1);
        let queries = points.submatrix(2, 4, 0, 1);
        let inductive = NadarayaWatson::new()
            .predict(&train, &labels, &queries, Kernel::Gaussian, 0.8)
            .unwrap();
        for (t, i) in transductive.unlabeled().iter().zip(&inductive) {
            assert!((t - i).abs() < 1e-12);
        }
        // And the helper agrees too.
        let helper = kernel_regression(&points, &labels, Kernel::Gaussian, 0.8).unwrap();
        for (t, h) in transductive.unlabeled().iter().zip(&helper) {
            assert!((t - h).abs() < 1e-12);
        }
    }

    #[test]
    fn predict_validates_inputs() {
        let nw = NadarayaWatson::new();
        let train = Matrix::zeros(2, 3);
        let queries = Matrix::zeros(1, 3);
        assert!(nw
            .predict(&train, &[1.0], &queries, Kernel::Gaussian, 1.0)
            .is_err());
        assert!(nw
            .predict(&Matrix::zeros(0, 3), &[], &queries, Kernel::Gaussian, 1.0)
            .is_err());
        assert!(nw
            .predict(
                &train,
                &[1.0, 0.0],
                &Matrix::zeros(1, 2),
                Kernel::Gaussian,
                1.0
            )
            .is_err());
        assert!(nw
            .predict(&train, &[1.0, 0.0], &queries, Kernel::Gaussian, 0.0)
            .is_err());
    }

    #[test]
    fn compact_kernel_far_query_has_zero_mass() {
        let train = Matrix::from_rows(&[&[0.0]]).unwrap();
        let queries = Matrix::from_rows(&[&[100.0]]).unwrap();
        let result = NadarayaWatson::new().predict(&train, &[1.0], &queries, Kernel::Boxcar, 1.0);
        assert_eq!(result, Err(Error::ZeroKernelMass { unlabeled_index: 0 }));
    }

    #[test]
    fn constant_labels_are_reproduced_exactly() {
        let points = Matrix::from_rows(&[&[0.0], &[0.5], &[0.9], &[0.3]]).unwrap();
        let scores = kernel_regression(&points, &[0.7, 0.7], Kernel::Gaussian, 1.0).unwrap();
        for s in scores {
            assert!((s - 0.7).abs() < 1e-12);
        }
    }

    #[test]
    fn scores_respect_label_range() {
        let points = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[0.5], &[1.5]]).unwrap();
        let scores = kernel_regression(&points, &[0.0, 1.0, 0.5], Kernel::Gaussian, 0.7).unwrap();
        for s in scores {
            assert!((0.0..=1.0).contains(&s));
        }
    }
}
