//! Classical stationary iterative solvers: Jacobi and Gauss–Seidel.
//!
//! The hard criterion's fixed point `f_i = Σ_j w_ij f_j / d_i` *is* a
//! Jacobi sweep on `(D₂₂ − W₂₂) f_U = W₂₁ Y`; these solvers make that
//! correspondence executable and give the label-propagation backend in
//! `gssl` a well-tested numerical core.

use crate::error::{Error, Result};
use crate::matrix::Matrix;
use crate::vector::Vector;

/// Options controlling a stationary iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationOptions {
    /// Maximum number of sweeps (0 means `100 * dim`, capped at 100_000).
    pub max_iterations: usize,
    /// Convergence threshold on the max-norm change between sweeps.
    pub tolerance: f64,
}

impl Default for IterationOptions {
    fn default() -> Self {
        IterationOptions {
            max_iterations: 0,
            tolerance: 1e-10,
        }
    }
}

impl IterationOptions {
    fn effective_max(&self, n: usize) -> usize {
        if self.max_iterations == 0 {
            (100 * n).clamp(1000, 100_000)
        } else {
            self.max_iterations
        }
    }
}

/// Outcome of a successful stationary iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationOutcome {
    /// The approximate solution.
    pub solution: Vector,
    /// Sweeps performed.
    pub iterations: usize,
    /// Max-norm change of the final sweep.
    pub last_change: f64,
}

fn check_system(a: &Matrix, b: &Vector, operation: &'static str) -> Result<usize> {
    if !a.is_square() {
        return Err(Error::NotSquare { shape: a.shape() });
    }
    if b.len() != a.rows() {
        return Err(Error::DimensionMismatch {
            operation,
            left: a.shape(),
            right: (b.len(), 1),
        });
    }
    for i in 0..a.rows() {
        if crate::float::is_exactly_zero(a.get(i, i)) {
            return Err(Error::Singular { pivot: i });
        }
    }
    Ok(a.rows())
}

/// Solves `A x = b` by Jacobi iteration starting from `x0` (zeros when
/// `None`).
///
/// Converges when `A` is strictly diagonally dominant — which holds for
/// `D₂₂ − W₂₂` whenever every unlabeled point has some similarity mass on
/// labeled points.
///
/// # Errors
///
/// * [`Error::NotSquare`] / [`Error::DimensionMismatch`] on bad shapes.
/// * [`Error::Singular`] when a diagonal entry is zero.
/// * [`Error::NotConverged`] when the sweep budget is exhausted.
pub fn jacobi(
    a: &Matrix,
    b: &Vector,
    x0: Option<&Vector>,
    options: &IterationOptions,
) -> Result<IterationOutcome> {
    let n = check_system(a, b, "jacobi")?;
    let mut x = match x0 {
        Some(v) if v.len() == n => v.clone(),
        Some(v) => {
            return Err(Error::DimensionMismatch {
                operation: "jacobi",
                left: (n, n),
                right: (v.len(), 1),
            })
        }
        None => Vector::zeros(n),
    };
    let max_iterations = options.effective_max(n);
    let mut next = Vector::zeros(n);

    for sweep in 1..=max_iterations {
        let mut change: f64 = 0.0;
        for i in 0..n {
            let mut sum = b[i];
            let row = a.row(i);
            for (j, (&a_ij, &xj)) in row.iter().zip(x.as_slice()).enumerate() {
                if j != i {
                    sum -= a_ij * xj;
                }
            }
            let xi = sum / a.get(i, i);
            change = change.max((xi - x[i]).abs());
            next[i] = xi;
        }
        std::mem::swap(&mut x, &mut next);
        if change <= options.tolerance {
            return Ok(IterationOutcome {
                solution: x,
                iterations: sweep,
                last_change: change,
            });
        }
    }

    Err(Error::NotConverged {
        iterations: max_iterations,
        residual: residual_norm(a, &x, b),
    })
}

/// Solves `A x = b` by Gauss–Seidel iteration starting from `x0` (zeros
/// when `None`).
///
/// Typically converges about twice as fast as Jacobi on diagonally dominant
/// systems because updated components are used within the same sweep.
///
/// # Errors
///
/// Same contract as [`jacobi`].
pub fn gauss_seidel(
    a: &Matrix,
    b: &Vector,
    x0: Option<&Vector>,
    options: &IterationOptions,
) -> Result<IterationOutcome> {
    let n = check_system(a, b, "gauss_seidel")?;
    let mut x = match x0 {
        Some(v) if v.len() == n => v.clone(),
        Some(v) => {
            return Err(Error::DimensionMismatch {
                operation: "gauss_seidel",
                left: (n, n),
                right: (v.len(), 1),
            })
        }
        None => Vector::zeros(n),
    };
    let max_iterations = options.effective_max(n);

    for sweep in 1..=max_iterations {
        let mut change: f64 = 0.0;
        for i in 0..n {
            let mut sum = b[i];
            let row = a.row(i);
            for (j, (&a_ij, &xj)) in row.iter().zip(x.as_slice()).enumerate() {
                if j != i {
                    sum -= a_ij * xj;
                }
            }
            let xi = sum / a.get(i, i);
            change = change.max((xi - x[i]).abs());
            x[i] = xi;
        }
        if change <= options.tolerance {
            return Ok(IterationOutcome {
                solution: x,
                iterations: sweep,
                last_change: change,
            });
        }
    }

    Err(Error::NotConverged {
        iterations: max_iterations,
        residual: residual_norm(a, &x, b),
    })
}

fn residual_norm(a: &Matrix, x: &Vector, b: &Vector) -> f64 {
    match a.matvec(x) {
        Ok(ax) => (&ax - b).norm_l2(),
        Err(_) => f64::NAN,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dominant_system() -> (Matrix, Vector, Vector) {
        let a = Matrix::from_rows(&[&[10.0, -1.0, 2.0], &[-1.0, 11.0, -1.0], &[2.0, -1.0, 10.0]])
            .unwrap();
        let b = Vector::from(vec![6.0, 25.0, -11.0]);
        let exact = crate::lu::solve(&a, &b).unwrap();
        (a, b, exact)
    }

    #[test]
    fn jacobi_converges_on_dominant_system() {
        let (a, b, exact) = dominant_system();
        let out = jacobi(&a, &b, None, &IterationOptions::default()).unwrap();
        assert!(out.solution.approx_eq(&exact, 1e-8));
        assert!(out.last_change <= 1e-10);
    }

    #[test]
    fn gauss_seidel_converges_faster_than_jacobi() {
        let (a, b, exact) = dominant_system();
        let opts = IterationOptions::default();
        let j = jacobi(&a, &b, None, &opts).unwrap();
        let gs = gauss_seidel(&a, &b, None, &opts).unwrap();
        assert!(gs.solution.approx_eq(&exact, 1e-8));
        assert!(gs.iterations <= j.iterations);
    }

    #[test]
    fn warm_start_reduces_iterations() {
        let (a, b, exact) = dominant_system();
        let opts = IterationOptions::default();
        let cold = gauss_seidel(&a, &b, None, &opts).unwrap();
        let warm = gauss_seidel(&a, &b, Some(&exact), &opts).unwrap();
        assert!(warm.iterations < cold.iterations);
    }

    #[test]
    fn rejects_zero_diagonal() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 1.0]]).unwrap();
        let b = Vector::ones(2);
        assert!(matches!(
            jacobi(&a, &b, None, &IterationOptions::default()),
            Err(Error::Singular { pivot: 0 })
        ));
    }

    #[test]
    fn rejects_shape_errors() {
        let a = Matrix::zeros(2, 3);
        assert!(jacobi(&a, &Vector::zeros(2), None, &IterationOptions::default()).is_err());
        let sq = Matrix::identity(2);
        assert!(gauss_seidel(&sq, &Vector::zeros(3), None, &IterationOptions::default()).is_err());
        assert!(jacobi(
            &sq,
            &Vector::zeros(2),
            Some(&Vector::zeros(5)),
            &IterationOptions::default()
        )
        .is_err());
    }

    #[test]
    fn reports_non_convergence() {
        // Not diagonally dominant; Jacobi diverges.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 1.0]]).unwrap();
        let b = Vector::ones(2);
        let opts = IterationOptions {
            max_iterations: 25,
            tolerance: 1e-12,
        };
        assert!(matches!(
            jacobi(&a, &b, None, &opts),
            Err(Error::NotConverged { iterations: 25, .. })
        ));
    }

    #[test]
    fn identity_converges_in_one_sweep() {
        let a = Matrix::identity(4);
        let b = Vector::from(vec![1.0, 2.0, 3.0, 4.0]);
        let out = jacobi(&a, &b, None, &IterationOptions::default()).unwrap();
        assert_eq!(out.solution, b);
        // One sweep to land, one more to observe zero change is not needed
        // because change is measured against the previous iterate.
        assert!(out.iterations <= 2);
    }
}
