//! End-to-end self-test of the workspace checker: the seeded fixture tree
//! must be flagged with exactly the expected violations, and the real
//! workspace must come back clean. Running this under `cargo test` keeps
//! `gssl-xtask check` honest in both directions — a rule that stops
//! firing breaks the fixture expectations, and a regression in the tree
//! breaks the clean check.

use gssl_xtask::analysis::{analyze_workspace, AnalyzeRule};
use gssl_xtask::rules::Rule;
use gssl_xtask::{check_workspace, count_rule};
use std::path::PathBuf;

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("bad")
}

fn analyze_fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("analyze")
}

fn perf_fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("perf")
}

fn determinism_fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("determinism")
}

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
}

#[test]
fn fixture_tree_is_flagged() {
    let report = check_workspace(&fixture_root()).expect("fixture tree is readable");
    assert!(!report.is_clean());
    let dump = || format!("{:#?}", report.violations);

    // Missing `#![forbid(unsafe_code)]` and `#![deny(missing_docs)]`.
    assert_eq!(count_rule(&report, Rule::RootAttrs), 2, "{}", dump());
    // `pub fn undocumented`.
    assert_eq!(count_rule(&report, Rule::MissingDoc), 1, "{}", dump());
    // `v.unwrap()` in library code.
    assert_eq!(count_rule(&report, Rule::NoPanic), 1, "{}", dump());
    // `x == 0.0` (the `x != 1.0` site carries an inline marker, so it is
    // reported as allow_unlisted, not float_eq).
    assert_eq!(count_rule(&report, Rule::FloatEq), 1, "{}", dump());
    // Missing `#[non_exhaustive]` plus one undocumented variant.
    assert_eq!(count_rule(&report, Rule::ErrorEnum), 2, "{}", dump());
    // Inline marker with no allowlist registration.
    assert_eq!(count_rule(&report, Rule::AllowUnlisted), 1, "{}", dump());
    // One stale entry, one unknown rule key.
    assert_eq!(count_rule(&report, Rule::AllowStale), 2, "{}", dump());

    assert_eq!(report.violations.len(), 10, "{}", dump());
}

#[test]
fn fixture_test_code_is_exempt() {
    let report = check_workspace(&fixture_root()).expect("fixture tree is readable");
    // The `#[cfg(test)]` module in the fixture repeats the unwrap and the
    // float comparisons; none of those lines (>= 30) may be reported.
    assert!(
        report
            .violations
            .iter()
            .all(|v| !v.file.ends_with("demo/src/lib.rs") || v.line < 30),
        "{:#?}",
        report.violations
    );
}

#[test]
fn analyze_fixture_tree_is_flagged() {
    let report = analyze_workspace(&analyze_fixture_root()).expect("fixture tree is readable");
    assert!(!report.is_clean());
    let dump = || format!("{:#?}", report.findings);
    let count = |rule| report.findings.iter().filter(|f| f.rule == rule).count();

    // `api -> pick` reaches an unguarded index; `baselined` is suppressed
    // by the fixture baseline and `guarded` stays silent.
    assert_eq!(count(AnalyzeRule::PanicReach), 1, "{}", dump());
    let reach = report
        .findings
        .iter()
        .find(|f| f.rule == AnalyzeRule::PanicReach)
        .expect("panic_reach finding");
    assert!(reach.message.contains("api -> pick"), "{}", dump());
    // `zeros` missing its annotation, `filled` carrying a malformed one.
    assert_eq!(count(AnalyzeRule::ShapeAnnotation), 2, "{}", dump());
    // (2, 3) · (4, 5): inner dimensions differ by literal arithmetic.
    assert_eq!(count(AnalyzeRule::ShapeMismatch), 1, "{}", dump());
    // One of each concurrency violation in the threaded fixture.
    assert_eq!(count(AnalyzeRule::RelaxedOrdering), 1, "{}", dump());
    assert_eq!(count(AnalyzeRule::LockAcrossJoin), 1, "{}", dump());
    assert_eq!(count(AnalyzeRule::NonSyncShared), 1, "{}", dump());
    // The stale `ghost` entry and the unknown rule key.
    assert_eq!(count(AnalyzeRule::BaselineStale), 2, "{}", dump());

    assert_eq!(report.findings.len(), 9, "{}", dump());
    assert_eq!(report.suppressed, 1, "{}", dump());
    assert_eq!(report.files_scanned, 3);
}

#[test]
fn perf_fixture_tree_is_flagged() {
    let report = analyze_workspace(&perf_fixture_root()).expect("fixture tree is readable");
    assert!(!report.is_clean());
    let dump = || format!("{:#?}", report.findings);
    let count = |rule| report.findings.iter().filter(|f| f.rule == rule).count();

    // `hot_entry` declares O(n) but nests two counted loops.
    assert_eq!(count(AnalyzeRule::ComplexityMismatch), 1, "{}", dump());
    // `hot_alloc` loops without a contract; `hot_malformed` declares a sum.
    assert_eq!(count(AnalyzeRule::ComplexityContract), 2, "{}", dump());
    // `helper` (hot only through propagation from `hot_entry`) pushes into
    // an unreserved buffer; `hot_alloc` formats per iteration. The seeded
    // `vec![…]` in `hot_baselined` is suppressed, and `cold_alloc` — the
    // same body without hotness — stays silent.
    assert_eq!(count(AnalyzeRule::HotAlloc), 2, "{}", dump());
    let propagated = report
        .findings
        .iter()
        .filter(|f| f.rule == AnalyzeRule::HotAlloc || f.rule == AnalyzeRule::HotBounds)
        .any(|f| f.func == "helper");
    assert!(propagated, "hotness must reach `helper` via the call graph");
    // `row[j]` in `helper`'s innermost loop; `tmp[0]` is a constant index.
    assert_eq!(count(AnalyzeRule::HotBounds), 1, "{}", dump());
    // The `ghost_fn` baseline entry points at nothing.
    assert_eq!(count(AnalyzeRule::BaselineStale), 1, "{}", dump());

    assert_eq!(report.findings.len(), 7, "{}", dump());
    assert_eq!(report.suppressed, 1, "{}", dump());
    assert_eq!(report.files_scanned, 1);
}

#[test]
fn determinism_fixture_tree_is_flagged() {
    let report = analyze_workspace(&determinism_fixture_root()).expect("fixture tree is readable");
    assert!(!report.is_clean());
    let dump = || format!("{:#?}", report.findings);
    let count = |rule| report.findings.iter().filter(|f| f.rule == rule).count();

    // `selection` (f64::max selection) and `rank` (partial_cmp sort key);
    // the match-handled `ordered` stays silent.
    assert_eq!(count(AnalyzeRule::FloatTotalOrder), 2, "{}", dump());
    // Only `selection` is reachable from a `/// deterministic` marker, so
    // only its finding carries the contract chain.
    let selection = report
        .findings
        .iter()
        .find(|f| f.func == "selection")
        .expect("selection finding");
    assert!(
        selection.message.contains("det_entry -> selection"),
        "{}",
        dump()
    );
    let rank = report
        .findings
        .iter()
        .find(|f| f.func == "rank")
        .expect("rank finding");
    assert!(!rank.message.contains("deterministic"), "{}", dump());
    // `tally` (HashMap), `jitter` (thread_rng), `addr_key` (pointer cast);
    // the `latency` wall-clock read is suppressed by the fixture baseline.
    assert_eq!(count(AnalyzeRule::NondetSource), 3, "{}", dump());
    // `chunk_merge` (.sum over per-chunk partials) and `chunk_accumulate`
    // (captured accumulator); the blessed `chunk_scale` stays silent.
    assert_eq!(count(AnalyzeRule::ReductionOrder), 2, "{}", dump());
    // `mislabeled` carries the `deterministic:` colon qualifier.
    assert_eq!(count(AnalyzeRule::DetAnnotation), 1, "{}", dump());
    // The `ghost_fn` baseline entry points at nothing.
    assert_eq!(count(AnalyzeRule::BaselineStale), 1, "{}", dump());

    assert_eq!(report.findings.len(), 9, "{}", dump());
    assert_eq!(report.suppressed, 1, "{}", dump());
    assert_eq!(report.files_scanned, 1);
}

#[test]
fn deterministic_annotation_inventory_is_pinned() {
    // Count every `/// deterministic` marker in the library tree. The
    // bitwise coverage test in the umbrella crate (tests/determinism.rs)
    // pins the same inventory by (file, fn) — this count keeps the two in
    // lockstep: add a marker and both tests demand a covering bitwise test.
    let crates_dir = workspace_root().join("crates");
    let mut markers = 0usize;
    let mut stack = vec![crates_dir];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).expect("crates tree is readable") {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                if path
                    .file_name()
                    .is_some_and(|n| n == "fixtures" || n == "target")
                {
                    continue;
                }
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let text = std::fs::read_to_string(&path).expect("source is readable");
                markers += text
                    .lines()
                    .filter(|l| l.trim() == "/// deterministic")
                    .count();
            }
        }
    }
    assert_eq!(
        markers, 56,
        "the `/// deterministic` inventory drifted from the pinned 56 \
         entry points; update tests/determinism.rs coverage alongside"
    );
}

#[test]
fn analyze_real_workspace_is_baseline_clean() {
    let report = analyze_workspace(&workspace_root()).expect("workspace is readable");
    assert!(
        report.is_clean(),
        "gssl-xtask analyze found findings in the real tree:\n{:#?}",
        report.findings
    );
    assert!(report.files_scanned > 50);
    // Every committed baseline entry must still be live — the ratchet
    // reports both regressions (counts up) and staleness (counts down).
    assert_eq!(
        report.suppressed, 108,
        "baseline drifted from the committed 108 entries"
    );
}

#[test]
fn real_workspace_is_clean() {
    let report = check_workspace(&workspace_root()).expect("workspace is readable");
    assert!(
        report.is_clean(),
        "gssl-xtask check found violations in the real tree:\n{:#?}",
        report.violations
    );
    assert!(report.files_scanned > 50);
}
