//! # gssl-runtime — the shared deterministic execution layer
//!
//! Every parallel code path in this workspace — kernel-matrix assembly in
//! `gssl-graph`, dense matmul / panel factorization / CG matvec in
//! `gssl-linalg`, one-vs-rest multiclass fits in `gssl`, and batch
//! prediction in `gssl-serve` — runs on the primitives in this crate.
//! Centralizing them buys three things:
//!
//! 1. **One determinism contract.** Work is sharded into contiguous
//!    chunks claimed through a single atomic cursor; each item is computed
//!    by exactly one worker with the same per-item operation order as the
//!    sequential loop, and results are reassembled in input order on the
//!    calling thread. For deterministic closures the output is therefore
//!    **bit-identical** across worker counts — `==`, not epsilon.
//! 2. **One proof.** The [`sim`] module exhaustively enumerates every
//!    bounded interleaving of the claim/publish protocol (a mini-loom),
//!    which is what justifies the single `Ordering::Relaxed` atomic in
//!    [`pool`].
//! 3. **One knob.** The [`Executor`] handle ([`Executor::Sequential`] by
//!    default, [`Executor::Pool`] to opt in) threads through every layer
//!    via `with_executor(..)` builders, so call sites pick a worker count
//!    once and the whole pipeline — assembly, factorization, fit, serve —
//!    honours it.
//!
//! The crate is dependency-free (`std::thread` only) and spawns no
//! long-lived threads: every batch opens a `std::thread::scope` and joins
//! it before returning.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Error and result types shared by the executor and pool.
pub mod error;
/// The [`Executor`] handle: sequential by default, pooled on request.
pub mod executor;
/// The scoped worker pool and its chunk-claim protocol.
pub mod pool;
/// Exhaustive interleaving enumeration for the claim protocol (mini-loom).
pub mod sim;

pub use error::{Error, Result};
pub use executor::Executor;
pub use pool::ThreadPool;
