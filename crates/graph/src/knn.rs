//! Sparse graph constructions: k-nearest-neighbour and ε-threshold graphs.
//!
//! Dense kernel graphs scale as `O((n+m)²)` memory; for large unlabeled
//! pools the standard alternative (Chapelle et al., §11) is to keep only
//! the strongest edges. These builders produce [`CsrMatrix`] affinities
//! compatible with the iterative solvers in `gssl`.

use crate::bandwidth::squared_distance;
use crate::error::{Error, Result};
use crate::kernel::Kernel;
use gssl_index::{self_k_nearest_batch, BruteForce, Neighbor, NeighborSearch, SpatialIndex};
use gssl_linalg::{CsrMatrix, Matrix};

/// How to symmetrize a directed kNN relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Symmetrization {
    /// Keep an edge when *either* endpoint lists the other among its k
    /// nearest neighbours (the usual choice; keeps the graph connected
    /// longer).
    #[default]
    Union,
    /// Keep an edge only when *both* endpoints list each other.
    Mutual,
}

/// Shared argument validation for the kNN builders.
fn check_knn_args(n: usize, k: usize, bandwidth: f64) -> Result<()> {
    if n == 0 {
        return Err(Error::EmptyInput {
            required: "at least one point",
        });
    }
    if k == 0 || k >= n {
        return Err(Error::InvalidArgument {
            message: format!("k must satisfy 1 <= k < n (= {n}), got {k}"),
        });
    }
    if !(bandwidth > 0.0) {
        return Err(Error::InvalidBandwidth { value: bandwidth });
    }
    Ok(())
}

/// Builds a symmetric k-nearest-neighbour affinity graph.
///
/// Edge weights are `kernel.weight(dist², bandwidth)`. Self-loops are not
/// included (the paper's dense `W` has them, but they cancel in `D − W`;
/// sparse graphs conventionally omit them).
///
/// The neighbour relation is resolved by the [`BruteForce`] backend of
/// `gssl-index` — the exact linear scan this function always performed,
/// now shared with the spatial trees as their test oracle. Ties at the
/// k-th distance break by ascending index, exactly as the historical
/// stable sort did.
///
/// # Errors
///
/// * [`Error::EmptyInput`] when `points` has no rows.
/// * [`Error::InvalidArgument`] when `k == 0` or `k >= points.rows()`.
/// * [`Error::InvalidBandwidth`] when `bandwidth <= 0`.
/// shape: (points.rows, points.rows)
/// complexity: O(n^2 * d)
/// deterministic
pub fn knn_graph(
    points: &Matrix,
    k: usize,
    kernel: Kernel,
    bandwidth: f64,
    symmetrization: Symmetrization,
) -> Result<CsrMatrix> {
    check_knn_args(points.rows(), k, bandwidth)?;
    let index = BruteForce::build(points)?;
    let neighbors = self_k_nearest_batch(&index, k, &gssl_runtime::Executor::Sequential)?;
    symmetrize_knn(&neighbors, kernel, bandwidth, symmetrization)
}

/// [`knn_graph`] accelerated by a spatial index and sharded across
/// `executor`, producing a graph **bit-identical** to the sequential
/// brute-force one.
///
/// The point cloud is indexed once (`O(n log n)` for the KD-tree that
/// low-dimensional data selects) and each vertex then resolves its k
/// nearest in sublinear time — the `O(n²·d)` wall this crate used to hit
/// at scale is gone even at one worker. Bit-identity to [`knn_graph`]
/// holds because the trees are exact and canonicalize ties by index (see
/// the `gssl-index` crate docs for the full argument), and the batched
/// queries reassemble in input order at any worker count.
///
/// # Errors
///
/// Same as [`knn_graph`].
/// shape: (points.rows, points.rows)
/// hot
/// complexity: O(n * k * d)
/// deterministic
pub fn knn_graph_with(
    points: &Matrix,
    k: usize,
    kernel: Kernel,
    bandwidth: f64,
    symmetrization: Symmetrization,
    executor: &gssl_runtime::Executor,
) -> Result<CsrMatrix> {
    check_knn_args(points.rows(), k, bandwidth)?;
    let index = SpatialIndex::build(points)?;
    let neighbors = self_k_nearest_batch(&index, k, executor)?;
    symmetrize_knn(&neighbors, kernel, bandwidth, symmetrization)
}

/// Shared tail of the kNN builders: turns the directed neighbour relation
/// into a symmetric weighted CSR graph (sequentially, in row order).
///
/// Weights reuse the squared distances the neighbour search already
/// computed — `Neighbor::dist2` comes from the same `squared_distance`
/// call, in the same argument order, as the historical recomputation, so
/// edge weights are bitwise unchanged.
fn symmetrize_knn(
    neighbors: &[Vec<Neighbor>],
    kernel: Kernel,
    bandwidth: f64,
    symmetrization: Symmetrization,
) -> Result<CsrMatrix> {
    let n = neighbors.len();
    // Neighbor ids come from a search over these same n points, so every
    // stored index is a valid list position.
    debug_assert!(neighbors.iter().flatten().all(|nb| nb.index < n));
    let lists_mention = |j: usize, i: usize| neighbors[j].iter().any(|nb| nb.index == i);
    // Every directed edge yields at most one symmetric pair.
    let mut triplets = Vec::with_capacity(2 * neighbors.iter().map(Vec::len).sum::<usize>());
    for (i, nbrs) in neighbors.iter().enumerate() {
        for nb in nbrs {
            let j = nb.index;
            let keep = match symmetrization {
                Symmetrization::Union => true,
                Symmetrization::Mutual => lists_mention(j, i),
            };
            // Emit each undirected edge once: from the lower-index side
            // when it lists the other, otherwise from the higher-index
            // side (a union edge the lower side never discovered).
            let emit = keep && (i < j || (j < i && !lists_mention(j, i)));
            if emit {
                let w = kernel.weight(nb.dist2, bandwidth)?;
                if w > 0.0 {
                    triplets.push((i, j, w));
                    triplets.push((j, i, w));
                }
            }
        }
    }
    Ok(CsrMatrix::from_triplets(n, n, &triplets)?)
}

/// Builds an ε-neighbourhood affinity graph: vertices within Euclidean
/// distance `epsilon` are connected with kernel weights.
///
/// # Errors
///
/// * [`Error::EmptyInput`] when `points` has no rows.
/// * [`Error::InvalidArgument`] when `epsilon <= 0`.
/// * [`Error::InvalidBandwidth`] when `bandwidth <= 0`.
/// shape: (points.rows, points.rows)
/// deterministic
pub fn epsilon_graph(
    points: &Matrix,
    epsilon: f64,
    kernel: Kernel,
    bandwidth: f64,
) -> Result<CsrMatrix> {
    let n = points.rows();
    if n == 0 {
        return Err(Error::EmptyInput {
            required: "at least one point",
        });
    }
    if !(epsilon > 0.0) {
        return Err(Error::InvalidArgument {
            message: format!("epsilon must be positive, got {epsilon}"),
        });
    }
    if !(bandwidth > 0.0) {
        return Err(Error::InvalidBandwidth { value: bandwidth });
    }
    let eps2 = epsilon * epsilon;
    let mut triplets = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            let d2 = squared_distance(points.row(i), points.row(j));
            if d2 <= eps2 {
                let w = kernel.weight(d2, bandwidth)?;
                if w > 0.0 {
                    triplets.push((i, j, w));
                    triplets.push((j, i, w));
                }
            }
        }
    }
    Ok(CsrMatrix::from_triplets(n, n, &triplets)?)
}

/// [`epsilon_graph`] accelerated by a spatial index and sharded across
/// `executor`: each vertex finds its ε-ball with a range query instead
/// of scanning all n points, and the result is **bit-identical** to the
/// sequential double loop (membership `dist² <= ε²` and the edge weights
/// are computed by the very same expressions).
///
/// # Errors
///
/// Same as [`epsilon_graph`].
/// shape: (points.rows, points.rows)
/// hot
/// complexity: O(n * k * d)
/// deterministic
pub fn epsilon_graph_with(
    points: &Matrix,
    epsilon: f64,
    kernel: Kernel,
    bandwidth: f64,
    executor: &gssl_runtime::Executor,
) -> Result<CsrMatrix> {
    let n = points.rows();
    if n == 0 {
        return Err(Error::EmptyInput {
            required: "at least one point",
        });
    }
    if !(epsilon > 0.0) {
        return Err(Error::InvalidArgument {
            message: format!("epsilon must be positive, got {epsilon}"),
        });
    }
    if !(bandwidth > 0.0) {
        return Err(Error::InvalidBandwidth { value: bandwidth });
    }
    let index = SpatialIndex::build(points)?;
    let balls = gssl_index::self_within_radius_batch(&index, epsilon, executor)?;
    // Each undirected pair appears in both endpoint balls and is emitted
    // once as two triplets, so the ball populations bound the total.
    let mut triplets = Vec::with_capacity(balls.iter().map(Vec::len).sum::<usize>());
    for (i, ball) in balls.iter().enumerate() {
        for nb in ball {
            // Each undirected pair appears in both balls; emit once.
            if nb.index > i {
                let w = kernel.weight(nb.dist2, bandwidth)?;
                if w > 0.0 {
                    triplets.push((i, nb.index, w));
                    triplets.push((nb.index, i, w));
                }
            }
        }
    }
    Ok(CsrMatrix::from_triplets(n, n, &triplets)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Five points on a line at 0, 1, 2, 10, 11.
    fn line_points() -> Matrix {
        Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[10.0], &[11.0]]).unwrap()
    }

    #[test]
    fn knn_graph_is_symmetric() {
        let g = knn_graph(
            &line_points(),
            2,
            Kernel::Gaussian,
            1.0,
            Symmetrization::Union,
        )
        .unwrap();
        assert!(g.is_symmetric(1e-15));
        assert_eq!(g.rows(), 5);
    }

    #[test]
    fn knn_union_vs_mutual() {
        // Point 2's 1-NN is point 1; point 3's 1-NN is point 4.
        // Union(1-NN) keeps 1-2 and 3-4 edges; mutual keeps only pairs that
        // choose each other: (0,1)? 0's NN is 1; 1's NN is 0 or 2 (dist 1
        // both, sort stable -> 0 first). Check counts differ or mutual ⊆ union.
        let union = knn_graph(
            &line_points(),
            2,
            Kernel::Gaussian,
            5.0,
            Symmetrization::Union,
        )
        .unwrap();
        let mutual = knn_graph(
            &line_points(),
            2,
            Kernel::Gaussian,
            5.0,
            Symmetrization::Mutual,
        )
        .unwrap();
        assert!(mutual.nnz() <= union.nnz());
        // Every mutual edge is a union edge with equal weight.
        for i in 0..5 {
            for (j, v) in mutual.row_iter(i) {
                assert!((union.get(i, j) - v).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn knn_has_no_self_loops() {
        let g = knn_graph(
            &line_points(),
            3,
            Kernel::Gaussian,
            1.0,
            Symmetrization::Union,
        )
        .unwrap();
        for i in 0..5 {
            assert_eq!(g.get(i, i), 0.0);
        }
    }

    #[test]
    fn knn_weights_match_kernel() {
        let g = knn_graph(
            &line_points(),
            1,
            Kernel::Gaussian,
            2.0,
            Symmetrization::Union,
        )
        .unwrap();
        // Edge 0-1 has distance 1 => weight exp(-1/4).
        assert!((g.get(0, 1) - (-0.25f64).exp()).abs() < 1e-15);
    }

    #[test]
    fn knn_validates_arguments() {
        let pts = line_points();
        assert!(knn_graph(&pts, 0, Kernel::Gaussian, 1.0, Symmetrization::Union).is_err());
        assert!(knn_graph(&pts, 5, Kernel::Gaussian, 1.0, Symmetrization::Union).is_err());
        assert!(knn_graph(&pts, 2, Kernel::Gaussian, 0.0, Symmetrization::Union).is_err());
        assert!(knn_graph(
            &Matrix::zeros(0, 1),
            1,
            Kernel::Gaussian,
            1.0,
            Symmetrization::Union
        )
        .is_err());
    }

    #[test]
    fn epsilon_graph_connects_only_near_points() {
        let g = epsilon_graph(&line_points(), 1.5, Kernel::Boxcar, 2.0).unwrap();
        assert!(g.get(0, 1) > 0.0);
        assert!(g.get(1, 2) > 0.0);
        assert_eq!(g.get(2, 3), 0.0); // distance 8 > epsilon
        assert!(g.get(3, 4) > 0.0);
        assert!(g.is_symmetric(1e-15));
    }

    #[test]
    fn epsilon_graph_cluster_structure() {
        let g = epsilon_graph(&line_points(), 2.5, Kernel::Gaussian, 1.0).unwrap();
        let dense = g.to_dense();
        let labels = crate::components::connected_components(&dense, 0.0).unwrap();
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
    }

    #[test]
    fn epsilon_graph_validates_arguments() {
        let pts = line_points();
        assert!(epsilon_graph(&pts, 0.0, Kernel::Gaussian, 1.0).is_err());
        assert!(epsilon_graph(&pts, 1.0, Kernel::Gaussian, -1.0).is_err());
        assert!(epsilon_graph(&Matrix::zeros(0, 1), 1.0, Kernel::Gaussian, 1.0).is_err());
    }

    #[test]
    fn parallel_knn_is_bit_identical_to_sequential() {
        use gssl_runtime::Executor;
        let pts = Matrix::from_fn(48, 2, |i, j| ((i * 13 + j * 5) as f64 * 0.47).cos());
        for symmetrization in [Symmetrization::Union, Symmetrization::Mutual] {
            let sequential = knn_graph(&pts, 4, Kernel::Gaussian, 0.9, symmetrization).unwrap();
            for workers in [1, 2, 4] {
                let executor = Executor::with_workers(workers);
                let parallel =
                    knn_graph_with(&pts, 4, Kernel::Gaussian, 0.9, symmetrization, &executor)
                        .unwrap();
                assert_eq!(parallel.nnz(), sequential.nnz());
                assert_eq!(
                    parallel.to_dense().as_slice(),
                    sequential.to_dense().as_slice(),
                    "kNN graph differs at {workers} workers ({symmetrization:?})"
                );
            }
        }
    }

    #[test]
    fn parallel_knn_validates_arguments() {
        use gssl_runtime::Executor;
        let pts = line_points();
        let executor = Executor::with_workers(2);
        for bad_k in [0, 5] {
            assert!(knn_graph_with(
                &pts,
                bad_k,
                Kernel::Gaussian,
                1.0,
                Symmetrization::Union,
                &executor
            )
            .is_err());
        }
    }

    #[test]
    fn parallel_epsilon_graph_is_bit_identical_to_sequential() {
        use gssl_runtime::Executor;
        let pts = Matrix::from_fn(48, 2, |i, j| ((i * 13 + j * 5) as f64 * 0.47).cos());
        let sequential = epsilon_graph(&pts, 0.6, Kernel::Gaussian, 0.9).unwrap();
        for workers in [1, 2, 4] {
            let executor = Executor::with_workers(workers);
            let indexed = epsilon_graph_with(&pts, 0.6, Kernel::Gaussian, 0.9, &executor).unwrap();
            assert_eq!(indexed.nnz(), sequential.nnz());
            assert_eq!(
                indexed.to_dense().as_slice(),
                sequential.to_dense().as_slice(),
                "epsilon graph differs at {workers} workers"
            );
        }
    }

    #[test]
    fn parallel_epsilon_graph_validates_arguments() {
        use gssl_runtime::Executor;
        let pts = line_points();
        let executor = Executor::with_workers(2);
        assert!(epsilon_graph_with(&pts, 0.0, Kernel::Gaussian, 1.0, &executor).is_err());
        assert!(epsilon_graph_with(&pts, 1.0, Kernel::Gaussian, -1.0, &executor).is_err());
        assert!(
            epsilon_graph_with(&Matrix::zeros(0, 1), 1.0, Kernel::Gaussian, 1.0, &executor)
                .is_err()
        );
    }

    #[test]
    fn knn_graph_with_handles_high_dimension_via_cover_tree() {
        use gssl_runtime::Executor;
        // 20-dimensional points route to the cover tree backend; the
        // result must still equal the brute-force oracle bit for bit.
        let pts = Matrix::from_fn(40, 20, |i, j| ((i * 17 + j * 7) as f64 * 0.31).sin());
        let sequential = knn_graph(&pts, 5, Kernel::Gaussian, 1.4, Symmetrization::Union).unwrap();
        let indexed = knn_graph_with(
            &pts,
            5,
            Kernel::Gaussian,
            1.4,
            Symmetrization::Union,
            &Executor::Sequential,
        )
        .unwrap();
        assert_eq!(
            indexed.to_dense().as_slice(),
            sequential.to_dense().as_slice()
        );
    }

    #[test]
    fn compact_kernel_can_zero_out_knn_edges() {
        // Boxcar with bandwidth 0.5: even nearest neighbours at distance 1
        // get weight 0, so the edge is dropped entirely.
        let g = knn_graph(
            &line_points(),
            1,
            Kernel::Boxcar,
            0.5,
            Symmetrization::Union,
        )
        .unwrap();
        assert_eq!(g.nnz(), 0);
    }
}
