//! An exact cover tree — the backend for dimensions where KD-tree
//! axis-aligned pruning loses its bite.
//!
//! # Invariants
//!
//! For every node at integer scale `level` (covering radius
//! `covdist = 2^level`):
//!
//! * **Covering** — every child `c` satisfies
//!   `d(node, c) <= covdist(node.level)` and `c.level <= node.level - 1`.
//! * **Subtree bound** — by induction over the covering invariant, every
//!   descendant `x` satisfies `d(node, x) <= Σ_{j<=level} 2^j =
//!   2^(level+1) =: maxdist(node)`.
//!
//! Insertion (also the build step — construction folds points in row
//! order) descends to the first child, in creation order, whose covering
//! ball contains the new point, and otherwise attaches it one scale
//! below the current node, raising the root scale first when the point
//! falls outside the root ball. Both choices are deterministic, so the
//! same input always builds the same tree.
//!
//! # Exactness of pruning
//!
//! A subtree rooted at `c` is skipped only when
//! `d(q, c) > (bound + maxdist(c)) * (1 + PRUNE_SLACK)`, where `bound`
//! is the current k-th best (or radius) distance. Every descendant is
//! within `maxdist(c)` of `c`, so by the triangle inequality its
//! distance to `q` is at least `d(q, c) - maxdist(c) > bound`: it can
//! neither beat nor tie the bound. The relative slack absorbs the few
//! ulps of rounding in `sqrt`/addition — it can only *widen* the search,
//! so agreement with the brute-force oracle is bit-exact (membership is
//! always decided on `dist2` computed by the shared
//! [`crate::points::squared_distance`], never on the pruning estimate).

use crate::error::Result;
use crate::neighbor::{check_k, check_radius, KBest, Neighbor, NeighborSearch};
use crate::points::PointStore;
use gssl_linalg::Matrix;

/// Relative widening of the pruning radius; covers accumulated rounding
/// (≈1e-12 over the deepest representable scale chain) with six orders
/// of magnitude to spare, at the cost of visiting a few boundary nodes.
const PRUNE_SLACK: f64 = 1e-9;

/// Covering radius at integer scale `level`: `2^level` (exact in f64 for
/// every scale that a finite distance can produce).
fn covdist(level: i32) -> f64 {
    2f64.powi(level)
}

/// Upper bound on the distance from a node at `level` to any descendant.
fn maxdist(level: i32) -> f64 {
    covdist(level.saturating_add(1))
}

/// Whether a subtree with root distance `d` and scale bound `maxd` may
/// still contain a point at or under the current bound (squared).
fn may_contain(d: f64, bound2: f64, maxd: f64) -> bool {
    if bound2.is_infinite() {
        return true;
    }
    d <= (bound2.sqrt() + maxd) * (1.0 + PRUNE_SLACK)
}

#[derive(Debug, Clone, PartialEq)]
struct CoverNode {
    /// Id of the stored point this node carries.
    point: usize,
    /// Integer scale: children lie within `2^level`.
    level: i32,
    /// Children in creation order (descent is first-cover-wins).
    children: Vec<usize>,
}

/// Exact cover tree with deterministic incremental construction.
///
/// Build is `O(n · depth)`; queries are `O(polylog n)` for bounded
/// expansion constant and never worse than the brute scan plus tree
/// overhead. Works at any dimension because pruning only uses metric
/// balls, not axis-aligned planes.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverTree {
    points: PointStore,
    nodes: Vec<CoverNode>,
    root: usize,
}

impl CoverTree {
    /// Number of tree nodes — one per point; a structural fingerprint
    /// used by determinism tests.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Distance between two stored points.
    ///
    /// hot
    /// complexity: O(d)
    fn distance(&self, a: usize, b: usize) -> f64 {
        self.points.dist2_to(self.points.point(a), b).sqrt()
    }

    /// Threads stored point `id` into the tree (the shared step behind
    /// both `build` and `insert`).
    ///
    /// complexity: O(n * d)
    fn insert_id(&mut self, id: usize) {
        if self.nodes.is_empty() {
            self.nodes.push(CoverNode {
                point: id,
                level: 0,
                children: Vec::new(),
            });
            return;
        }
        let root = self.root;
        let d_root = self.distance(id, self.nodes[root].point);
        // Raise the root scale until its ball covers the new point.
        while d_root > covdist(self.nodes[root].level) {
            self.nodes[root].level = self.nodes[root].level.saturating_add(1);
        }
        let mut cur = root;
        loop {
            let mut next = None;
            for &c in &self.nodes[cur].children {
                let dc = self.distance(id, self.nodes[c].point);
                if dc <= covdist(self.nodes[c].level) {
                    next = Some(c);
                    break;
                }
            }
            match next {
                Some(c) => cur = c,
                None => {
                    // No child ball covers the point; it becomes a new
                    // child one scale below `cur`. Covering holds because
                    // descent maintained d(cur, id) <= covdist(cur.level).
                    let level = self.nodes[cur].level.saturating_sub(1);
                    self.nodes.push(CoverNode {
                        point: id,
                        level,
                        children: Vec::new(),
                    });
                    let nid = self.nodes.len() - 1;
                    self.nodes[cur].children.push(nid);
                    return;
                }
            }
        }
    }
}

impl NeighborSearch for CoverTree {
    /// complexity: O(n^2 * d)
    fn build(points: &Matrix) -> Result<Self> {
        let store = PointStore::from_matrix(points)?;
        let n = store.len();
        let mut tree = CoverTree {
            points: store,
            nodes: Vec::with_capacity(n),
            root: 0,
        };
        for id in 0..n {
            tree.insert_id(id);
        }
        Ok(tree)
    }

    fn len(&self) -> usize {
        self.points.len()
    }

    fn dim(&self) -> usize {
        self.points.dim()
    }

    fn point(&self, i: usize) -> &[f64] {
        self.points.point(i)
    }

    fn insert(&mut self, point: &[f64]) -> Result<usize> {
        let id = self.points.push(point)?;
        self.insert_id(id);
        Ok(id)
    }

    /// hot
    /// complexity: O(n * d)
    fn k_nearest_excluding(
        &self,
        query: &[f64],
        k: usize,
        exclude: Option<usize>,
    ) -> Result<Vec<Neighbor>> {
        self.points.check_query(query)?;
        check_k(self.len(), k, exclude)?;
        let mut best = KBest::new(k);
        let root_point = self.nodes[self.root].point;
        if Some(root_point) != exclude {
            best.offer(Neighbor {
                index: root_point,
                dist2: self.points.dist2_to(query, root_point),
            });
        }
        let mut stack: Vec<usize> = Vec::with_capacity(64);
        stack.push(self.root);
        while let Some(n) = stack.pop() {
            for &c in &self.nodes[n].children {
                let cp = self.nodes[c].point;
                let dist2 = self.points.dist2_to(query, cp);
                if Some(cp) != exclude {
                    best.offer(Neighbor { index: cp, dist2 });
                }
                // Prune on the *current* bound; it only shrinks, so a
                // skipped subtree could never contribute later either.
                if may_contain(
                    dist2.sqrt(),
                    best.bound_dist2(),
                    maxdist(self.nodes[c].level),
                ) {
                    stack.push(c);
                }
            }
        }
        Ok(best.into_sorted())
    }

    /// hot
    /// complexity: O(n * d)
    fn within_radius(&self, query: &[f64], radius: f64) -> Result<Vec<Neighbor>> {
        self.points.check_query(query)?;
        check_radius(radius)?;
        let r2 = radius * radius;
        let mut hits = Vec::new();
        let root_point = self.nodes[self.root].point;
        let d2_root = self.points.dist2_to(query, root_point);
        if d2_root <= r2 {
            hits.push(Neighbor {
                index: root_point,
                dist2: d2_root,
            });
        }
        let mut stack: Vec<usize> = Vec::with_capacity(64);
        stack.push(self.root);
        while let Some(n) = stack.pop() {
            for &c in &self.nodes[n].children {
                let cp = self.nodes[c].point;
                let dist2 = self.points.dist2_to(query, cp);
                if dist2 <= r2 {
                    hits.push(Neighbor { index: cp, dist2 });
                }
                if may_contain(dist2.sqrt(), r2, maxdist(self.nodes[c].level)) {
                    stack.push(c);
                }
            }
        }
        hits.sort_by(Neighbor::key_cmp);
        Ok(hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::BruteForce;

    fn cloud(n: usize, d: usize) -> Matrix {
        Matrix::from_fn(n, d, |i, j| {
            (((i * 131 + j * 37 + 11) as f64) * 0.6180339887498949).fract()
        })
    }

    /// Walks the tree verifying covering and scale invariants.
    fn check_invariants(tree: &CoverTree) {
        for (nid, node) in tree.nodes.iter().enumerate() {
            for &c in &node.children {
                let child = &tree.nodes[c];
                assert!(
                    child.level < node.level,
                    "child {c} of {nid} must live at a smaller scale"
                );
                let d = tree.distance(node.point, child.point);
                assert!(
                    d <= covdist(node.level),
                    "child {c} of {nid} violates covering: d = {d}, covdist = {}",
                    covdist(node.level)
                );
            }
        }
    }

    #[test]
    fn build_respects_covering_invariants() {
        let tree = CoverTree::build(&cloud(300, 8)).unwrap();
        assert_eq!(tree.node_count(), 300);
        check_invariants(&tree);
    }

    #[test]
    fn build_is_deterministic() {
        let pts = cloud(200, 5);
        let a = CoverTree::build(&pts).unwrap();
        let b = CoverTree::build(&pts).unwrap();
        assert_eq!(a, b, "same input must build the identical tree");
    }

    #[test]
    fn agrees_with_brute_force_in_high_dimension() {
        let pts = cloud(211, 8);
        let tree = CoverTree::build(&pts).unwrap();
        let brute = BruteForce::build(&pts).unwrap();
        for qi in 0..30 {
            let q: Vec<f64> = (0..8)
                .map(|j| (((qi * 97 + j * 13 + 5) as f64) * 0.414).fract())
                .collect();
            assert_eq!(
                tree.k_nearest(&q, 6).unwrap(),
                brute.k_nearest(&q, 6).unwrap(),
                "query {qi}"
            );
            assert_eq!(
                tree.within_radius(&q, 0.7).unwrap(),
                brute.within_radius(&q, 0.7).unwrap(),
                "radius query {qi}"
            );
        }
    }

    #[test]
    fn duplicate_points_stay_searchable() {
        // 40 copies of one point plus a few distinct ones: descent builds
        // a chain, queries must still see every id.
        let pts = Matrix::from_fn(44, 2, |i, _| if i < 40 { 0.25 } else { i as f64 });
        let tree = CoverTree::build(&pts).unwrap();
        check_invariants(&tree);
        let out = tree.k_nearest(&[0.25, 0.25], 40).unwrap();
        let ids: Vec<usize> = out.iter().map(|n| n.index).collect();
        assert_eq!(ids, (0..40).collect::<Vec<_>>(), "ties break by index");
        assert!(out.iter().all(|n| n.dist2 == 0.0));
    }

    #[test]
    fn root_scale_raises_for_far_inserts() {
        let pts = Matrix::from_fn(2, 1, |i, _| i as f64 * 0.125);
        let mut tree = CoverTree::build(&pts).unwrap();
        let id = tree.insert(&[1000.0]).unwrap();
        assert_eq!(id, 2);
        check_invariants(&tree);
        let out = tree.k_nearest(&[999.0], 1).unwrap();
        assert_eq!(out[0].index, 2);
    }

    #[test]
    fn insert_keeps_queries_exact() {
        let pts = cloud(64, 3);
        let mut tree = CoverTree::build(&pts).unwrap();
        let mut brute = BruteForce::build(&pts).unwrap();
        for i in 0..100 {
            let p: Vec<f64> = (0..3)
                .map(|j| (((i * 53 + j * 29 + 7) as f64) * 0.37).fract() * 3.0 - 1.0)
                .collect();
            assert_eq!(tree.insert(&p).unwrap(), brute.insert(&p).unwrap());
        }
        check_invariants(&tree);
        for qi in 0..20 {
            let q = [(qi as f64) * 0.06 - 0.2, (qi as f64) * 0.045, 0.3];
            assert_eq!(
                tree.k_nearest(&q, 8).unwrap(),
                brute.k_nearest(&q, 8).unwrap(),
                "query {qi} after inserts"
            );
        }
    }
}
