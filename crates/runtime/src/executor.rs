//! The [`Executor`] handle: the one knob every layer of the workspace
//! takes to choose between the sequential reference path and the scoped
//! thread pool.
//!
//! An executor is cheap to clone (it is a worker count, not a thread
//! handle) and `Sequential` is the `Default`, so existing call sites keep
//! compiling unchanged while `with_executor(..)` builders opt individual
//! pipelines into parallelism. Every primitive on this type has a fixed
//! reduction order, so for a deterministic closure the output is
//! bit-identical across worker counts — the determinism test suite pins
//! this with exact `==` comparisons.

use crate::error::{Error, Result};
use crate::pool::{self, ThreadPool};
use std::ops::Range;

/// Execution strategy shared by graph assembly, factorization, fitting and
/// serving.
///
/// `Sequential` runs every batch on the calling thread with zero
/// synchronization; `Pool` shards batches across a scoped
/// [`ThreadPool`]. Both produce bit-identical results for deterministic
/// closures because items are computed independently and reassembled in
/// input order.
///
/// ```
/// use gssl_runtime::{Error, Executor};
/// # fn main() -> Result<(), Error> {
/// let sequential = Executor::default();
/// let parallel = Executor::pool(4)?;
/// let f = |i: usize, x: &f64| Ok::<f64, Error>(x * i as f64);
/// let items = [1.0, 2.0, 3.0];
/// assert_eq!(sequential.map(&items, f)?, parallel.map(&items, f)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Executor {
    /// Run everything on the calling thread (the default).
    #[default]
    Sequential,
    /// Shard batches across a scoped thread pool.
    Pool(ThreadPool),
}

impl Executor {
    /// The sequential executor (same as `Executor::default()`).
    pub fn sequential() -> Self {
        Executor::Sequential
    }

    /// An executor backed by a pool of exactly `workers` threads.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when `workers == 0`; use
    /// [`Executor::with_workers`] if zero should mean "host parallelism".
    pub fn pool(workers: usize) -> Result<Self> {
        Ok(Executor::Pool(ThreadPool::new(workers)?))
    }

    /// An executor sized to the host's available parallelism.
    pub fn with_available_parallelism() -> Self {
        Executor::Pool(ThreadPool::with_available_parallelism())
    }

    /// Builds an executor from a worker-count knob where `0` means "use
    /// the host's available parallelism" and `1` means sequential — the
    /// convention used by `EngineConfig::workers` and the benches.
    pub fn with_workers(workers: usize) -> Self {
        match workers {
            0 => Executor::with_available_parallelism(),
            1 => Executor::Sequential,
            n => match ThreadPool::new(n) {
                Ok(pool) => Executor::Pool(pool),
                // Unreachable (n >= 2), but degrade gracefully rather
                // than panic in a constructor.
                Err(_) => Executor::Sequential,
            },
        }
    }

    /// Number of worker threads batches may use (`1` for `Sequential`).
    pub fn workers(&self) -> usize {
        match self {
            Executor::Sequential => 1,
            Executor::Pool(pool) => pool.workers(),
        }
    }

    /// `true` when batches run on the calling thread only.
    pub fn is_sequential(&self) -> bool {
        self.workers() == 1
    }

    /// Applies `f(index, &item)` to every item and returns the results in
    /// input order; see [`ThreadPool::map`] for the parallel protocol.
    ///
    /// # Errors
    ///
    /// Propagates the lowest-input-index error from `f`, or an internal
    /// runtime error (converted into `E`) if the claim protocol loses a
    /// slot.
    /// deterministic
    pub fn map<T, R, E, F>(&self, items: &[T], f: F) -> Result<Vec<R>, E>
    where
        T: Sync,
        R: Send,
        E: Send + From<Error>,
        F: Fn(usize, &T) -> Result<R, E> + Sync,
    {
        match self {
            Executor::Sequential => pool::map_sequential(items, f),
            Executor::Pool(pool) => pool.map(items, f),
        }
    }

    /// Applies `f(index, &item)` to every item with width-1 claims — one
    /// task per claim — and returns the results in input order; see
    /// [`ThreadPool::map_tasks`]. Use this instead of [`Executor::map`]
    /// when the batch is small and per-item cost is wildly uneven (one
    /// factorization per graph shard), so slow tasks never queue behind a
    /// chunk-mate.
    ///
    /// # Errors
    ///
    /// Propagates the lowest-input-index error from `f`, or an internal
    /// runtime error (converted into `E`) if the claim protocol loses a
    /// slot.
    /// deterministic
    pub fn map_tasks<T, R, E, F>(&self, items: &[T], f: F) -> Result<Vec<R>, E>
    where
        T: Sync,
        R: Send,
        E: Send + From<Error>,
        F: Fn(usize, &T) -> Result<R, E> + Sync,
    {
        match self {
            Executor::Sequential => pool::map_sequential(items, f),
            Executor::Pool(pool) => pool.map_tasks(items, f),
        }
    }

    /// Applies `f(start..end)` to `width`-sized ranges of `0..len` and
    /// concatenates the results in ascending range order; see
    /// [`ThreadPool::map_chunks`] for the contract.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] (converted into `E`) for a zero
    /// `width`, the lowest-range error from `f`, or [`Error::Internal`]
    /// when a closure breaks the per-range length contract.
    /// deterministic
    pub fn map_chunks<R, E, F>(&self, len: usize, width: usize, f: F) -> Result<Vec<R>, E>
    where
        R: Send,
        E: Send + From<Error>,
        F: Fn(Range<usize>) -> Result<Vec<R>, E> + Sync,
    {
        match self {
            Executor::Sequential => pool::map_chunks_sequential(len, width, f),
            Executor::Pool(pool) => pool.map_chunks(len, width, f),
        }
    }

    /// Runs `f(start_index, chunk)` over disjoint `width`-sized mutable
    /// chunks of `data`; see [`ThreadPool::for_each_chunk_mut`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when `width == 0`.
    /// deterministic
    pub fn for_each_chunk_mut<T, F>(&self, data: &mut [T], width: usize, f: F) -> Result<(), Error>
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        match self {
            Executor::Sequential => pool::for_each_chunk_mut_sequential(data, width, f),
            Executor::Pool(pool) => pool.for_each_chunk_mut(data, width, f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sequential() {
        assert_eq!(Executor::default(), Executor::Sequential);
        assert!(Executor::default().is_sequential());
        assert_eq!(Executor::default().workers(), 1);
    }

    #[test]
    fn pool_rejects_zero_workers() {
        assert!(matches!(
            Executor::pool(0),
            Err(Error::InvalidConfig { .. })
        ));
    }

    #[test]
    fn with_workers_knob_conventions() {
        assert!(Executor::with_workers(0).workers() >= 1);
        assert_eq!(Executor::with_workers(1), Executor::Sequential);
        assert_eq!(Executor::with_workers(4).workers(), 4);
        assert!(!Executor::with_workers(4).is_sequential());
    }

    #[test]
    fn map_agrees_across_executors() {
        let items: Vec<f64> = (0..300).map(|i| i as f64 * 0.5).collect();
        let f = |i: usize, x: &f64| Ok::<f64, Error>(x.sin() + i as f64);
        let sequential = Executor::Sequential.map(&items, f).unwrap();
        for workers in [2, 4] {
            let parallel = Executor::pool(workers).unwrap().map(&items, f).unwrap();
            assert_eq!(sequential, parallel, "workers = {workers}");
        }
    }

    #[test]
    fn map_tasks_agrees_across_executors() {
        let items: Vec<f64> = (0..23).map(|i| i as f64 * 0.9).collect();
        let f = |i: usize, x: &f64| Ok::<f64, Error>(x.cos() * i as f64);
        let sequential = Executor::Sequential.map_tasks(&items, f).unwrap();
        for workers in [2, 4] {
            let parallel = Executor::pool(workers)
                .unwrap()
                .map_tasks(&items, f)
                .unwrap();
            assert_eq!(sequential, parallel, "workers = {workers}");
        }
    }

    #[test]
    fn map_chunks_agrees_across_executors() {
        let f =
            |range: Range<usize>| Ok::<Vec<f64>, Error>(range.map(|i| (i as f64).sqrt()).collect());
        let sequential = Executor::Sequential.map_chunks(151, 8, f).unwrap();
        for workers in [2, 4] {
            let parallel = Executor::pool(workers)
                .unwrap()
                .map_chunks(151, 8, f)
                .unwrap();
            assert_eq!(sequential, parallel, "workers = {workers}");
        }
    }

    #[test]
    fn for_each_chunk_mut_agrees_across_executors() {
        let fill = |executor: &Executor| {
            let mut data = vec![0.0f64; 77];
            executor
                .for_each_chunk_mut(&mut data, 9, |start, chunk| {
                    for (offset, value) in chunk.iter_mut().enumerate() {
                        *value = ((start + offset) as f64).cos();
                    }
                })
                .unwrap();
            data
        };
        let sequential = fill(&Executor::Sequential);
        for workers in [2, 4] {
            assert_eq!(
                sequential,
                fill(&Executor::pool(workers).unwrap()),
                "workers = {workers}"
            );
        }
    }
}
