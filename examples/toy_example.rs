//! Section III of the paper as a runnable program: when every input is
//! the same constant the hard criterion cannot use geometry — and its
//! solution degrades gracefully to the best available answer, the labeled
//! mean.
//!
//! ```text
//! cargo run --example toy_example
//! ```

use gssl::{HardCriterion, NadarayaWatson, Problem, SoftCriterion, TransductiveModel};
use gssl_linalg::Matrix;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 4; // labeled
    let m = 2; // unlabeled
    let labels = vec![1.0, 1.0, 0.0, 1.0];
    let mean = 0.75;

    // Identical inputs => RBF similarities are all exactly 1.
    let w = Matrix::filled(n + m, n + m, 1.0);
    let problem = Problem::new(w, labels)?;

    println!(
        "all {} inputs identical; labeled responses 1,1,0,1 (mean {mean})\n",
        n + m
    );

    let models: Vec<Box<dyn TransductiveModel>> = vec![
        Box::new(HardCriterion::new()),
        Box::new(SoftCriterion::new(0.5)?),
        Box::new(NadarayaWatson::new()),
    ];
    for model in models {
        let scores = model.fit(&problem)?;
        println!(
            "{:<28} unlabeled scores: {:?}",
            model.name(),
            scores.unlabeled()
        );
    }

    let hard = HardCriterion::new().fit(&problem)?;
    for &s in hard.unlabeled() {
        assert!((s - mean).abs() < 1e-12);
    }
    println!("\nhard criterion returns exactly the labeled mean — \"the best");
    println!("solution one can expect\" (paper, Section III) ✓");
    Ok(())
}
