//! Property-based tests for the linear-algebra substrate.

use gssl_linalg::stationary::{gauss_seidel, jacobi, IterationOptions};
use gssl_linalg::{
    conjugate_gradient, symmetric_eigen, BlockPartition, CgOptions, Cholesky, CsrMatrix,
    EigenOptions, Lu, Matrix, Vector,
};
use proptest::prelude::*;

const DIM: usize = 6;

/// Strategy: a square matrix with entries in [-1, 1].
fn square_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-1.0f64..1.0, n * n)
        .prop_map(move |data| Matrix::from_vec(n, n, data).expect("length fixed by strategy"))
}

/// Strategy: a vector with entries in [-1, 1].
fn vector(n: usize) -> impl Strategy<Value = Vector> {
    prop::collection::vec(-1.0f64..1.0, n).prop_map(Vector::from)
}

/// Strategy: a strictly diagonally dominant SPD-ish matrix `BᵀB + (n)·I`.
fn spd_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    square_matrix(n).prop_map(move |b| {
        let bt_b = b.transpose().matmul(&b).expect("square product");
        let mut shift = Matrix::identity(n);
        shift.scale(n as f64);
        &bt_b + &shift
    })
}

proptest! {
    #[test]
    fn transpose_is_involution(a in square_matrix(DIM)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matmul_identity_is_noop(a in square_matrix(DIM)) {
        let i = Matrix::identity(DIM);
        prop_assert!(a.matmul(&i).unwrap().approx_eq(&a, 1e-14));
        prop_assert!(i.matmul(&a).unwrap().approx_eq(&a, 1e-14));
    }

    #[test]
    fn matmul_transpose_identity(a in square_matrix(DIM), b in square_matrix(DIM)) {
        // (A B)ᵀ = Bᵀ Aᵀ
        let left = a.matmul(&b).unwrap().transpose();
        let right = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!(left.approx_eq(&right, 1e-12));
    }

    #[test]
    fn matvec_is_linear(a in square_matrix(DIM), x in vector(DIM), y in vector(DIM)) {
        let sum = &x + &y;
        let lhs = a.matvec(&sum).unwrap();
        let rhs = &a.matvec(&x).unwrap() + &a.matvec(&y).unwrap();
        prop_assert!(lhs.approx_eq(&rhs, 1e-12));
    }

    #[test]
    fn dot_is_symmetric_and_cauchy_schwarz(x in vector(DIM), y in vector(DIM)) {
        let xy = x.dot(&y).unwrap();
        let yx = y.dot(&x).unwrap();
        prop_assert!((xy - yx).abs() < 1e-14);
        prop_assert!(xy.abs() <= x.norm_l2() * y.norm_l2() + 1e-12);
    }

    #[test]
    fn triangle_inequality(x in vector(DIM), y in vector(DIM)) {
        prop_assert!((&x + &y).norm_l2() <= x.norm_l2() + y.norm_l2() + 1e-12);
        prop_assert!((&x + &y).norm_l1() <= x.norm_l1() + y.norm_l1() + 1e-12);
        prop_assert!((&x + &y).norm_max() <= x.norm_max() + y.norm_max() + 1e-12);
    }

    #[test]
    fn lu_solve_roundtrip(a in spd_matrix(DIM), b in vector(DIM)) {
        let x = Lu::factor(&a).unwrap().solve(&b).unwrap();
        let back = a.matvec(&x).unwrap();
        prop_assert!(back.approx_eq(&b, 1e-8));
    }

    #[test]
    fn lu_det_of_product(a in spd_matrix(DIM), b in spd_matrix(DIM)) {
        // det(AB) = det(A) det(B), all dets here are >= n^n > 0.
        let da = Lu::factor(&a).unwrap().det();
        let db = Lu::factor(&b).unwrap().det();
        let dab = Lu::factor(&a.matmul(&b).unwrap()).unwrap().det();
        prop_assert!((dab - da * db).abs() <= 1e-8 * dab.abs().max(1.0));
    }

    #[test]
    fn cholesky_reconstructs_and_solves(a in spd_matrix(DIM), b in vector(DIM)) {
        let chol = Cholesky::factor(&a).unwrap();
        let l = chol.lower();
        prop_assert!(l.matmul(&l.transpose()).unwrap().approx_eq(&a, 1e-10));
        let x = chol.solve(&b).unwrap();
        prop_assert!(a.matvec(&x).unwrap().approx_eq(&b, 1e-8));
    }

    #[test]
    fn all_direct_and_iterative_solvers_agree(a in spd_matrix(DIM), b in vector(DIM)) {
        let lu = Lu::factor(&a).unwrap().solve(&b).unwrap();
        let chol = Cholesky::factor(&a).unwrap().solve(&b).unwrap();
        let cg = conjugate_gradient(&a, &b, &CgOptions::default()).unwrap().solution;
        let iter_opts = IterationOptions { max_iterations: 20_000, tolerance: 1e-12 };
        let jac = jacobi(&a, &b, None, &iter_opts).unwrap().solution;
        let gs = gauss_seidel(&a, &b, None, &iter_opts).unwrap().solution;
        prop_assert!(lu.approx_eq(&chol, 1e-8));
        prop_assert!(lu.approx_eq(&cg, 1e-6));
        prop_assert!(lu.approx_eq(&jac, 1e-6));
        prop_assert!(lu.approx_eq(&gs, 1e-6));
    }

    #[test]
    fn csr_matvec_matches_dense(a in square_matrix(DIM), x in vector(DIM)) {
        let sparse = CsrMatrix::from_dense(&a, 0.0);
        let dense_out = a.matvec(&x).unwrap();
        let sparse_out = sparse.matvec(x.as_slice());
        prop_assert!(Vector::from(sparse_out).approx_eq(&dense_out, 1e-13));
    }

    #[test]
    fn csr_dense_roundtrip(a in square_matrix(DIM)) {
        let sparse = CsrMatrix::from_dense(&a, 0.0);
        prop_assert!(sparse.to_dense().approx_eq(&a, 0.0));
        prop_assert!(sparse.transpose().to_dense().approx_eq(&a.transpose(), 0.0));
    }

    #[test]
    fn csr_from_triplets_matches_dense_accumulation(
        triplets in prop::collection::vec(
            (0usize..DIM, 0usize..DIM, -2.0f64..2.0), 0..40)
    ) {
        // Reference semantics: duplicates sum, zeros drop.
        let mut dense = Matrix::zeros(DIM, DIM);
        for &(r, c, v) in &triplets {
            dense.set(r, c, dense.get(r, c) + v);
        }
        let sparse = CsrMatrix::from_triplets(DIM, DIM, &triplets).unwrap();
        for i in 0..DIM {
            for j in 0..DIM {
                prop_assert!(
                    (sparse.get(i, j) - dense.get(i, j)).abs() < 1e-12,
                    "entry ({i}, {j}): {} vs {}", sparse.get(i, j), dense.get(i, j)
                );
            }
        }
        // matvec agrees too.
        let x = Vector::ones(DIM);
        let dense_out = dense.matvec(&x).unwrap();
        let sparse_out = Vector::from(sparse.matvec(x.as_slice()));
        prop_assert!(sparse_out.approx_eq(&dense_out, 1e-12));
    }

    #[test]
    fn block_partition_roundtrip(a in square_matrix(DIM), split in 0usize..=DIM) {
        let blocks = BlockPartition::split(&a, split).unwrap();
        prop_assert_eq!(blocks.assemble().unwrap(), a);
    }

    #[test]
    fn spd_matrices_pass_positive_definite_check(a in spd_matrix(DIM)) {
        prop_assert!(gssl_linalg::is_positive_definite(&a));
    }

    #[test]
    fn inverse_is_two_sided(a in spd_matrix(DIM)) {
        let inv = gssl_linalg::inverse(&a).unwrap();
        let i = Matrix::identity(DIM);
        prop_assert!(a.matmul(&inv).unwrap().approx_eq(&i, 1e-8));
        prop_assert!(inv.matmul(&a).unwrap().approx_eq(&i, 1e-8));
    }

    #[test]
    fn eigendecomposition_reconstructs_symmetric_matrices(b in square_matrix(DIM)) {
        let a = &b + &b.transpose();
        let eig = symmetric_eigen(&a, &EigenOptions::default()).unwrap();
        // A = V Λ Vᵀ.
        let v = eig.eigenvectors();
        let lambda = Matrix::from_diag(eig.eigenvalues().as_slice());
        let back = v.matmul(&lambda).unwrap().matmul(&v.transpose()).unwrap();
        prop_assert!(back.approx_eq(&a, 1e-8));
        // Orthonormal eigenvectors and ascending eigenvalues.
        let vtv = v.transpose().matmul(v).unwrap();
        prop_assert!(vtv.approx_eq(&Matrix::identity(DIM), 1e-9));
        for pair in eig.eigenvalues().as_slice().windows(2) {
            prop_assert!(pair[0] <= pair[1] + 1e-12);
        }
        // Trace identity.
        let trace_gap = (eig.eigenvalues().sum() - a.trace().unwrap()).abs();
        prop_assert!(trace_gap < 1e-9);
    }

    #[test]
    fn spd_matrices_have_positive_spectra(a in spd_matrix(DIM)) {
        let eig = symmetric_eigen(&a, &EigenOptions::default()).unwrap();
        for v in eig.eigenvalues().iter() {
            prop_assert!(v > 0.0, "SPD matrix produced eigenvalue {v}");
        }
    }

    #[test]
    fn row_sums_equal_matvec_with_ones(a in square_matrix(DIM)) {
        let ones = Vector::ones(DIM);
        prop_assert!(a.row_sums().approx_eq(&a.matvec(&ones).unwrap(), 1e-13));
    }
}
