//! Command-line entry point for the workspace checker.
//!
//! ```text
//! cargo run -p gssl-xtask -- check [--root PATH]
//! ```
//!
//! Exit codes: `0` clean, `1` violations found, `2` usage or I/O error.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: gssl-xtask check [--root PATH]";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    if command != "check" {
        eprintln!("unknown command `{command}`\n{USAGE}");
        return ExitCode::from(2);
    }

    let mut root: Option<PathBuf> = None;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--root" => match args.next() {
                Some(value) => root = Some(PathBuf::from(value)),
                None => {
                    eprintln!("--root requires a value\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown flag `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    // Default root: the workspace containing this crate (compile-time
    // manifest dir), so the binary works from any current directory.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
    });

    match gssl_xtask::check_workspace(&root) {
        Ok(report) => {
            for violation in &report.violations {
                println!("{violation}");
            }
            if report.is_clean() {
                println!(
                    "gssl-xtask check: {} files scanned, no violations",
                    report.files_scanned
                );
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "gssl-xtask check: {} violation(s) in {} files",
                    report.violations.len(),
                    report.files_scanned
                );
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("gssl-xtask check: cannot scan {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}
