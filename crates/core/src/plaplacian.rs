//! ℓp-Laplacian regularization (El Alaoui et al., COLT 2016 — the
//! paper's reference [19]).
//!
//! The hard criterion generalizes from the quadratic penalty to
//!
//! ```text
//! min_f Σ_ij w_ij |f_i − f_j|^p    subject to   f_i = Y_i on labels
//! ```
//!
//! Reference [19] shows a phase transition in `p`: for `p ≤ d` the
//! solution degenerates in the infinite-unlabeled limit, for `p > d` it
//! stays informative (and `p → ∞` approaches Lipschitz learning). We
//! solve the minimization by iteratively reweighted least squares (IRLS):
//! each round solves the *quadratic* hard criterion on the reweighted
//! graph `w_ij |f_i − f_j|^{p−2}` until the scores stabilize. At `p = 2`
//! this reduces to a single hard-criterion solve exactly.

use crate::error::{Error, Result};
use crate::hard::HardCriterion;
use crate::problem::{Problem, Scores};
use crate::traits::TransductiveModel;
use gssl_linalg::Matrix;

/// Regularization floor that keeps IRLS weights finite when two scores
/// coincide (the `|f_i − f_j|^{p−2}` factor blows up for `p < 2` and
/// vanishes for `p > 2`).
const IRLS_EPSILON: f64 = 1e-4;

/// The p-Laplacian hard criterion solved by IRLS.
///
/// ```
/// use gssl::{PLaplacian, Problem, TransductiveModel};
/// use gssl_linalg::Matrix;
/// # fn main() -> Result<(), gssl::Error> {
/// let w = Matrix::from_rows(&[
///     &[1.0, 0.8, 0.1],
///     &[0.8, 1.0, 0.5],
///     &[0.1, 0.5, 1.0],
/// ])?;
/// let problem = Problem::new(w, vec![1.0])?;
/// let scores = PLaplacian::new(3.0)?.fit(&problem)?;
/// assert!(scores.unlabeled().iter().all(|&s| (0.0..=1.0).contains(&s)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PLaplacian {
    p: f64,
    max_rounds: usize,
    tolerance: f64,
}

impl PLaplacian {
    /// Creates a p-Laplacian solver.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `p < 1` or `p` is not
    /// finite (the penalty is non-convex below 1).
    pub fn new(p: f64) -> Result<Self> {
        if !p.is_finite() || p < 1.0 {
            return Err(Error::InvalidParameter {
                message: format!("p must be finite and >= 1, got {p}"),
            });
        }
        Ok(PLaplacian {
            p,
            max_rounds: 300,
            tolerance: 1e-6,
        })
    }

    /// The exponent p.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Sets the maximum number of IRLS rounds (default 100).
    pub fn max_rounds(mut self, rounds: usize) -> Self {
        self.max_rounds = rounds;
        self
    }

    /// Sets the convergence tolerance on the max-norm score change per
    /// round (default 1e-8).
    pub fn tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Runs IRLS, returning the scores and the number of rounds used.
    ///
    /// # Errors
    ///
    /// * [`Error::UnanchoredUnlabeled`] when the problem is ill posed.
    /// * [`Error::Linalg`] wrapping `NotConverged` when `max_rounds`
    ///   rounds do not stabilize the scores.
    pub fn fit_with_rounds(&self, problem: &Problem) -> Result<(Scores, usize)> {
        problem.require_anchored(0.0)?;
        let hard = HardCriterion::new();

        // Round 0: the quadratic solution (also the exact answer at p = 2).
        let mut scores = hard.fit(problem)?;
        if (self.p - 2.0).abs() < 1e-12 || problem.n_unlabeled() == 0 {
            return Ok((scores, 1));
        }

        let total = problem.len();
        let base = problem.weights();
        for round in 1..=self.max_rounds {
            // Reweight: w'_ij = w_ij * (|f_i - f_j| + eps)^(p-2).
            let f = scores.all();
            let mut reweighted = Matrix::zeros(total, total);
            for i in 0..total {
                for j in 0..total {
                    let w = base.get(i, j);
                    if w > 0.0 && i != j {
                        let gap = (f[i] - f[j]).abs() + IRLS_EPSILON;
                        reweighted.set(i, j, w * gap.powf(self.p - 2.0));
                    }
                }
            }
            let subproblem = Problem::new(reweighted, problem.labels().to_vec())?;
            let next = hard.fit(&subproblem)?;
            // Damped update: plain IRLS oscillates for p far from 2, and
            // the farther p is from 2 the smaller the stable step size;
            // labels stay clamped since both iterates agree on them.
            let step = (2.0 / self.p.max(2.0 - self.p + 2.0)).clamp(0.1, 0.5);
            let damped: Vec<f64> = next
                .all()
                .iter()
                .zip(scores.all())
                .map(|(a, b)| step * a + (1.0 - step) * b)
                .collect();
            let change = damped
                .iter()
                .zip(scores.all())
                .map(|(a, b)| (a - b).abs())
                .fold(
                    0.0f64,
                    |acc, x| if x.total_cmp(&acc).is_gt() { x } else { acc },
                );
            let n = problem.n_labeled();
            scores = Scores::from_parts(&damped[..n], &damped[n..]);
            if change <= self.tolerance {
                return Ok((scores, round));
            }
        }
        Err(Error::Linalg(gssl_linalg::Error::NotConverged {
            iterations: self.max_rounds,
            residual: f64::NAN,
        }))
    }

    /// The p-Dirichlet energy `Σ_ij w_ij |f_i − f_j|^p` of a score vector.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidProblem`] when `scores` has the wrong
    /// length.
    pub fn energy(&self, problem: &Problem, scores: &[f64]) -> Result<f64> {
        if scores.len() != problem.len() {
            return Err(Error::InvalidProblem {
                message: format!(
                    "scores must have {} entries, got {}",
                    problem.len(),
                    scores.len()
                ),
            });
        }
        let w = problem.weights();
        let mut energy = 0.0;
        for i in 0..problem.len() {
            for j in 0..problem.len() {
                energy += w.get(i, j) * (scores[i] - scores[j]).abs().powf(self.p);
            }
        }
        Ok(energy)
    }
}

impl TransductiveModel for PLaplacian {
    fn fit(&self, problem: &Problem) -> Result<Scores> {
        Ok(self.fit_with_rounds(problem)?.0)
    }

    fn name(&self) -> String {
        format!("p-laplacian (p = {})", self.p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_problem() -> Problem {
        let w = Matrix::from_rows(&[
            &[1.0, 0.3, 0.8, 0.1],
            &[0.3, 1.0, 0.2, 0.9],
            &[0.8, 0.2, 1.0, 0.4],
            &[0.1, 0.9, 0.4, 1.0],
        ])
        .unwrap();
        Problem::new(w, vec![1.0, 0.0]).unwrap()
    }

    #[test]
    fn p_validation() {
        assert!(PLaplacian::new(0.5).is_err());
        assert!(PLaplacian::new(f64::NAN).is_err());
        assert!(PLaplacian::new(f64::INFINITY).is_err());
        assert_eq!(PLaplacian::new(3.0).unwrap().p(), 3.0);
    }

    #[test]
    fn p_equals_two_reduces_to_hard_criterion() {
        let p = sample_problem();
        let hard = HardCriterion::new().fit(&p).unwrap();
        let (plap, rounds) = PLaplacian::new(2.0).unwrap().fit_with_rounds(&p).unwrap();
        assert_eq!(rounds, 1);
        for (a, b) in hard.all().iter().zip(plap.all()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn irls_converges_and_lowers_p_energy() {
        let problem = sample_problem();
        for &p in &[1.5, 3.0, 4.0] {
            let solver = PLaplacian::new(p).unwrap();
            let (scores, rounds) = solver.fit_with_rounds(&problem).unwrap();
            assert!(rounds >= 1, "p = {p}");
            // The p-solution should not have larger p-energy than the
            // quadratic solution (it optimizes that energy).
            let quadratic = HardCriterion::new().fit(&problem).unwrap();
            let e_p = solver.energy(&problem, scores.all()).unwrap();
            let e_quad = solver.energy(&problem, quadratic.all()).unwrap();
            assert!(
                e_p <= e_quad + 1e-6,
                "p = {p}: energy {e_p} vs quadratic start {e_quad}"
            );
        }
    }

    #[test]
    fn maximum_principle_holds_for_all_p() {
        let problem = sample_problem();
        for &p in &[1.2, 2.0, 3.5, 6.0] {
            let scores = PLaplacian::new(p).unwrap().fit(&problem).unwrap();
            for &s in scores.unlabeled() {
                assert!(
                    (-1e-9..=1.0 + 1e-9).contains(&s),
                    "p = {p}: score {s} escapes label range"
                );
            }
        }
    }

    #[test]
    fn labels_stay_clamped() {
        let problem = sample_problem();
        let scores = PLaplacian::new(3.0).unwrap().fit(&problem).unwrap();
        assert_eq!(scores.labeled(), problem.labels());
    }

    #[test]
    fn rejects_unanchored_problems() {
        let w = Matrix::from_diag(&[1.0, 1.0]);
        let problem = Problem::new(w, vec![1.0]).unwrap();
        assert!(matches!(
            PLaplacian::new(3.0).unwrap().fit(&problem),
            Err(Error::UnanchoredUnlabeled { .. })
        ));
    }

    #[test]
    fn round_budget_is_enforced() {
        let problem = sample_problem();
        let solver = PLaplacian::new(4.0)
            .unwrap()
            .max_rounds(1)
            .tolerance(1e-300);
        assert!(matches!(
            solver.fit_with_rounds(&problem),
            Err(Error::Linalg(gssl_linalg::Error::NotConverged { .. }))
        ));
    }

    #[test]
    fn energy_validates_length() {
        let problem = sample_problem();
        assert!(PLaplacian::new(2.0)
            .unwrap()
            .energy(&problem, &[0.0])
            .is_err());
    }

    #[test]
    fn large_p_flattens_toward_midrange() {
        // As p grows the solution approaches the Lipschitz extension,
        // which on a symmetric two-anchor geometry pulls interior scores
        // toward the midpoint of the labels.
        let w = Matrix::from_rows(&[
            &[1.0, 0.0, 0.7, 0.3],
            &[0.0, 1.0, 0.3, 0.7],
            &[0.7, 0.3, 1.0, 0.8],
            &[0.3, 0.7, 0.8, 1.0],
        ])
        .unwrap();
        let problem = Problem::new(w, vec![1.0, 0.0]).unwrap();
        let p2 = PLaplacian::new(2.0).unwrap().fit(&problem).unwrap();
        let p8 = PLaplacian::new(8.0).unwrap().fit(&problem).unwrap();
        let spread = |s: &Scores| {
            s.unlabeled()
                .iter()
                .map(|v| (v - 0.5).abs())
                .fold(0.0f64, f64::max)
        };
        assert!(spread(&p8) <= spread(&p2) + 1e-9);
    }

    #[test]
    fn name_mentions_p() {
        assert!(PLaplacian::new(3.0).unwrap().name().contains("3"));
    }
}
