//! Integration tests for the `strict-checks` runtime sanitizer.
//!
//! Only compiled with the feature enabled (`cargo test --features
//! strict-checks`): each test drives a NaN or infinity into a sanitized
//! boundary and asserts it is rejected as [`gssl::Error::NonFiniteValue`]
//! naming that boundary, and that clean inputs still solve exactly as the
//! paper prescribes.

#![cfg(feature = "strict-checks")]

use gssl::{Error, HardCriterion, NadarayaWatson, Problem, SoftCriterion, TransductiveModel};
use gssl_linalg::Matrix;

fn symmetric_with(bad: f64) -> Matrix {
    Matrix::from_rows(&[&[1.0, 0.5, bad], &[0.5, 1.0, 0.4], &[bad, 0.4, 1.0]]).expect("3x3 rows")
}

#[test]
fn nan_weight_rejected_at_problem_construction() {
    let err = Problem::new(symmetric_with(f64::NAN), vec![1.0]).unwrap_err();
    match err {
        Error::NonFiniteValue { context, .. } => {
            assert!(context.contains("Problem::new weights"), "{context}");
        }
        other => panic!("expected NonFiniteValue, got {other:?}"),
    }
}

#[test]
fn infinite_weight_rejected_at_problem_construction() {
    let err = Problem::new(symmetric_with(f64::INFINITY), vec![1.0]).unwrap_err();
    assert!(matches!(err, Error::NonFiniteValue { .. }), "{err:?}");
}

#[test]
fn nan_label_rejected_with_position() {
    let err = Problem::new(symmetric_with(0.2), vec![1.0, f64::NAN]).unwrap_err();
    match err {
        Error::NonFiniteValue { context, index } => {
            assert!(context.contains("Problem::new labels"), "{context}");
            assert_eq!(index, 1);
        }
        other => panic!("expected NonFiniteValue, got {other:?}"),
    }
}

#[test]
fn linalg_solvers_reject_non_finite_rhs() {
    use gssl_linalg::{Lu, Vector};
    let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).expect("2x2");
    let lu = Lu::factor(&a).expect("nonsingular");
    let err = lu.solve(&Vector::from(vec![1.0, f64::NAN])).unwrap_err();
    assert!(
        matches!(err, gssl_linalg::Error::NonFiniteValue { .. }),
        "{err:?}"
    );
}

#[test]
fn solvers_produce_finite_scores_with_checks_active() {
    let problem = Problem::new(symmetric_with(0.2), vec![1.0, 0.0]).expect("valid problem");
    for model in [
        Box::new(HardCriterion::new()) as Box<dyn TransductiveModel>,
        Box::new(SoftCriterion::new(0.5).expect("valid lambda")),
        Box::new(NadarayaWatson::new()),
    ] {
        let scores = model.fit(&problem).expect("clean solve");
        assert!(scores.all().iter().all(|s| s.is_finite()));
    }
}

/// The paper's toy sanity example: when every pairwise similarity is
/// identical, the hard criterion scores every unlabeled vertex at the mean
/// of the observed labels — and does so with the sanitizer active.
#[test]
fn toy_identical_inputs_score_at_label_mean() {
    let n = 4; // labeled
    let m = 3; // unlabeled
    let total = n + m;
    let w = Matrix::from_fn(total, total, |_, _| 1.0);
    let labels = vec![0.2, 0.4, 0.6, 1.2];
    let mean = labels.iter().sum::<f64>() / labels.len() as f64;

    let problem = Problem::new(w, labels).expect("valid problem");
    let hard = HardCriterion::new().fit(&problem).expect("solvable");
    for &score in hard.unlabeled() {
        assert!((score - mean).abs() < 1e-10, "{score} vs mean {mean}");
    }
    // Nadaraya–Watson degenerates to the same mean on identical weights.
    let nw = NadarayaWatson::new().fit(&problem).expect("solvable");
    for &score in nw.unlabeled() {
        assert!((score - mean).abs() < 1e-10, "{score} vs mean {mean}");
    }
}
