//! Engine configuration: criterion, kernel graph parameters, update
//! policy and thread-pool width.

use crate::error::{Error, Result};
use gssl_graph::Kernel;
use gssl_linalg::SolverPolicy;

/// Which of the paper's criteria the engine caches a factorization of.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum ServeCriterion {
    /// The hard criterion (Eq. 5): the engine caches the Cholesky
    /// factorization and explicit inverse of the `m × m` unlabeled-block
    /// system `D₂₂ − W₂₂`. Labeled scores are clamped to the
    /// observations. Label arrival is an exact rank-1 deletion update.
    Hard,
    /// The soft criterion in its full-system form (Eq. 3): the engine
    /// caches the LU factorization and explicit inverse of the
    /// `(n+m) × (n+m)` system `V + λL`. Label arrival is a textbook
    /// Sherman–Morrison update (`V` gains `eᵢeᵢᵀ`, exactly rank 1).
    Soft {
        /// The tuning parameter `λ > 0` (the full system is singular at
        /// `λ = 0`; use [`ServeCriterion::Hard`] for that limit, per
        /// Proposition II.1).
        lambda: f64,
    },
}

/// How the engine factors its cached criterion system.
#[derive(Debug, Clone, PartialEq, Default)]
#[non_exhaustive]
pub enum EngineSolver {
    /// The legacy direct route: Cholesky for the hard system, LU for the
    /// soft full system, always with an explicit cached inverse so label
    /// arrivals stay exact rank-1 updates.
    #[default]
    Direct,
    /// Route every factorization through a [`SolverPolicy`], which picks
    /// dense Cholesky, dense LU, or Jacobi-preconditioned CG from the
    /// system's size and sparsity. When the policy selects the iterative
    /// backend no explicit inverse is formed — label arrivals re-solve
    /// the exactly-maintained cached system instead of updating an
    /// inverse, trading per-update cost for `O(nnz)` memory.
    Auto(SolverPolicy),
}

/// Configuration for [`crate::ServingEngine::fit`].
///
/// ```
/// use gssl_graph::Kernel;
/// use gssl_serve::{EngineConfig, ServeCriterion};
/// let config = EngineConfig::new(Kernel::Gaussian, 0.4)
///     .criterion(ServeCriterion::Hard)
///     .refactor_every(128)
///     .workers(4);
/// assert!(config.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Kernel used for both the fitted graph and out-of-sample rows.
    pub kernel: Kernel,
    /// Bandwidth `h > 0` shared by fit and query paths.
    pub bandwidth: f64,
    /// Criterion whose factorization is cached.
    pub criterion: ServeCriterion,
    /// Periodic fallback: force a full refactorization after this many
    /// rank-1 updates (`0` disables the periodic trigger; the residual
    /// guard below still applies).
    pub refactor_every: usize,
    /// Residual guard: after each rank-1 update the engine checks
    /// `‖A f − b‖∞` of the cached system and refactors from scratch when
    /// it exceeds this tolerance.
    pub residual_tolerance: f64,
    /// Thread-pool width for `predict_batch` (`0` = host parallelism).
    pub workers: usize,
    /// Factorization backend selection for the cached system.
    pub solver: EngineSolver,
}

impl EngineConfig {
    /// Creates a configuration with the given kernel graph parameters and
    /// default policy: hard criterion, refactor every 64 updates,
    /// residual tolerance `1e-8`, auto-sized pool.
    pub fn new(kernel: Kernel, bandwidth: f64) -> Self {
        EngineConfig {
            kernel,
            bandwidth,
            criterion: ServeCriterion::Hard,
            refactor_every: 64,
            residual_tolerance: 1e-8,
            workers: 0,
            solver: EngineSolver::Direct,
        }
    }

    /// Selects the cached criterion.
    pub fn criterion(mut self, criterion: ServeCriterion) -> Self {
        self.criterion = criterion;
        self
    }

    /// Sets the periodic refactor interval (`0` disables it).
    pub fn refactor_every(mut self, every: usize) -> Self {
        self.refactor_every = every;
        self
    }

    /// Sets the residual-guard tolerance.
    pub fn residual_tolerance(mut self, tolerance: f64) -> Self {
        self.residual_tolerance = tolerance;
        self
    }

    /// Sets the thread-pool width (`0` = host parallelism).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Selects the factorization backend route.
    pub fn solver(mut self, solver: EngineSolver) -> Self {
        self.solver = solver;
        self
    }

    /// Checks every parameter's domain.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when the bandwidth, residual
    /// tolerance or soft-criterion `λ` is outside its valid domain.
    pub fn validate(&self) -> Result<()> {
        if !self.bandwidth.is_finite() || !(self.bandwidth > 0.0) {
            return Err(Error::InvalidConfig {
                message: format!(
                    "bandwidth must be finite and positive, got {}",
                    self.bandwidth
                ),
            });
        }
        if !self.residual_tolerance.is_finite() || !(self.residual_tolerance > 0.0) {
            return Err(Error::InvalidConfig {
                message: format!(
                    "residual tolerance must be finite and positive, got {}",
                    self.residual_tolerance
                ),
            });
        }
        if let ServeCriterion::Soft { lambda } = self.criterion {
            if !lambda.is_finite() || !(lambda > 0.0) {
                return Err(Error::InvalidConfig {
                    message: format!(
                        "soft-criterion lambda must be finite and positive, got {lambda} \
                         (use ServeCriterion::Hard for the lambda = 0 limit)"
                    ),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        assert!(EngineConfig::new(Kernel::Gaussian, 1.0).validate().is_ok());
    }

    #[test]
    fn builder_methods_set_fields() {
        let c = EngineConfig::new(Kernel::Boxcar, 0.5)
            .criterion(ServeCriterion::Soft { lambda: 0.1 })
            .refactor_every(7)
            .residual_tolerance(1e-6)
            .workers(3);
        assert_eq!(c.kernel, Kernel::Boxcar);
        assert_eq!(c.bandwidth, 0.5);
        assert_eq!(c.criterion, ServeCriterion::Soft { lambda: 0.1 });
        assert_eq!(c.refactor_every, 7);
        assert_eq!(c.residual_tolerance, 1e-6);
        assert_eq!(c.workers, 3);
    }

    #[test]
    fn solver_route_defaults_direct_and_is_selectable() {
        let c = EngineConfig::new(Kernel::Gaussian, 1.0);
        assert_eq!(c.solver, EngineSolver::Direct);
        let auto = c.solver(EngineSolver::Auto(SolverPolicy::default()));
        assert_eq!(auto.solver, EngineSolver::Auto(SolverPolicy::default()));
        assert!(auto.validate().is_ok());
    }

    #[test]
    fn rejects_invalid_domains() {
        assert!(EngineConfig::new(Kernel::Gaussian, 0.0).validate().is_err());
        assert!(EngineConfig::new(Kernel::Gaussian, f64::NAN)
            .validate()
            .is_err());
        assert!(EngineConfig::new(Kernel::Gaussian, 1.0)
            .residual_tolerance(0.0)
            .validate()
            .is_err());
        assert!(EngineConfig::new(Kernel::Gaussian, 1.0)
            .criterion(ServeCriterion::Soft { lambda: 0.0 })
            .validate()
            .is_err());
        assert!(EngineConfig::new(Kernel::Gaussian, 1.0)
            .criterion(ServeCriterion::Soft {
                lambda: f64::INFINITY
            })
            .validate()
            .is_err());
    }
}
