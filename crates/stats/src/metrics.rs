//! Regression and classification metrics.
//!
//! The paper evaluates with the root mean squared error between the true
//! regression function `q(X)` and the estimated scores (synthetic study,
//! Figures 1–4) and with the AUC (COIL study, Figure 5; see
//! [`crate::roc`]). MCC is included because the paper names it as future
//! work.

use crate::error::{Error, Result};
use gssl_linalg::float::is_exactly_zero;

fn check_paired(operation: &'static str, a: &[f64], b: &[f64]) -> Result<()> {
    if a.len() != b.len() {
        return Err(Error::LengthMismatch {
            operation,
            left: a.len(),
            right: b.len(),
        });
    }
    if a.is_empty() {
        return Err(Error::EmptyInput {
            required: "at least one pair",
        });
    }
    Ok(())
}

/// Mean squared error between `truth` and `estimate`.
///
/// # Errors
///
/// Returns [`Error::LengthMismatch`] / [`Error::EmptyInput`] on bad inputs.
pub fn mse(truth: &[f64], estimate: &[f64]) -> Result<f64> {
    check_paired("mse", truth, estimate)?;
    let sum: f64 = truth
        .iter()
        .zip(estimate)
        .map(|(t, e)| (t - e) * (t - e))
        .sum();
    Ok(sum / truth.len() as f64)
}

/// Root mean squared error — the paper's synthetic-study metric:
/// `sqrt((1/m) Σ_a (q(X_{n+a}) − q̂_{n+a})²)`.
///
/// # Errors
///
/// Returns [`Error::LengthMismatch`] / [`Error::EmptyInput`] on bad inputs.
///
/// ```
/// use gssl_stats::metrics::rmse;
/// let r = rmse(&[1.0, 2.0], &[1.0, 4.0]).unwrap();
/// assert!((r - 2.0f64.sqrt()).abs() < 1e-15);
/// ```
pub fn rmse(truth: &[f64], estimate: &[f64]) -> Result<f64> {
    Ok(mse(truth, estimate)?.sqrt())
}

/// Mean absolute error.
///
/// # Errors
///
/// Returns [`Error::LengthMismatch`] / [`Error::EmptyInput`] on bad inputs.
pub fn mae(truth: &[f64], estimate: &[f64]) -> Result<f64> {
    check_paired("mae", truth, estimate)?;
    let sum: f64 = truth.iter().zip(estimate).map(|(t, e)| (t - e).abs()).sum();
    Ok(sum / truth.len() as f64)
}

/// A binary confusion matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConfusionMatrix {
    /// Positives classified positive.
    pub true_positives: usize,
    /// Negatives classified positive.
    pub false_positives: usize,
    /// Negatives classified negative.
    pub true_negatives: usize,
    /// Positives classified negative.
    pub false_negatives: usize,
}

impl ConfusionMatrix {
    /// Builds the confusion matrix by thresholding `scores` at `threshold`
    /// (score `>= threshold` predicts the positive class) against boolean
    /// `labels`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::LengthMismatch`] / [`Error::EmptyInput`] on bad
    /// inputs.
    pub fn from_scores(scores: &[f64], labels: &[bool], threshold: f64) -> Result<Self> {
        if scores.len() != labels.len() {
            return Err(Error::LengthMismatch {
                operation: "confusion matrix",
                left: scores.len(),
                right: labels.len(),
            });
        }
        if scores.is_empty() {
            return Err(Error::EmptyInput {
                required: "at least one scored example",
            });
        }
        let mut cm = ConfusionMatrix::default();
        for (&s, &y) in scores.iter().zip(labels) {
            match (s >= threshold, y) {
                (true, true) => cm.true_positives += 1,
                (true, false) => cm.false_positives += 1,
                (false, false) => cm.true_negatives += 1,
                (false, true) => cm.false_negatives += 1,
            }
        }
        Ok(cm)
    }

    /// Total number of examples.
    pub fn total(&self) -> usize {
        self.true_positives + self.false_positives + self.true_negatives + self.false_negatives
    }

    /// Fraction of correct predictions (`NaN` for an empty matrix, the
    /// same value the unguarded `0 / 0` division used to produce).
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return f64::NAN;
        }
        (self.true_positives + self.true_negatives) as f64 / total as f64
    }

    /// Precision `TP / (TP + FP)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Undefined`] when no example was predicted positive.
    pub fn precision(&self) -> Result<f64> {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            return Err(Error::Undefined {
                reason: "no positive predictions".to_owned(),
            });
        }
        Ok(self.true_positives as f64 / denom as f64)
    }

    /// Recall (sensitivity, true-positive rate) `TP / (TP + FN)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Undefined`] when there are no positive examples.
    pub fn recall(&self) -> Result<f64> {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            return Err(Error::Undefined {
                reason: "no positive examples".to_owned(),
            });
        }
        Ok(self.true_positives as f64 / denom as f64)
    }

    /// Specificity (true-negative rate) `TN / (TN + FP)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Undefined`] when there are no negative examples.
    pub fn specificity(&self) -> Result<f64> {
        let denom = self.true_negatives + self.false_positives;
        if denom == 0 {
            return Err(Error::Undefined {
                reason: "no negative examples".to_owned(),
            });
        }
        Ok(self.true_negatives as f64 / denom as f64)
    }

    /// F1 score, the harmonic mean of precision and recall.
    ///
    /// # Errors
    ///
    /// Propagates [`ConfusionMatrix::precision`] / [`ConfusionMatrix::recall`]
    /// errors, and reports [`Error::Undefined`] when both are zero.
    pub fn f1(&self) -> Result<f64> {
        let p = self.precision()?;
        let r = self.recall()?;
        if is_exactly_zero(p + r) {
            return Err(Error::Undefined {
                reason: "precision and recall are both zero".to_owned(),
            });
        }
        Ok(2.0 * p * r / (p + r))
    }

    /// Matthews correlation coefficient.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Undefined`] when any marginal is empty (MCC's
    /// denominator vanishes).
    pub fn mcc(&self) -> Result<f64> {
        let tp = self.true_positives as f64;
        let fp = self.false_positives as f64;
        let tn = self.true_negatives as f64;
        let fn_ = self.false_negatives as f64;
        let denom = ((tp + fp) * (tp + fn_) * (tn + fp) * (tn + fn_)).sqrt();
        if is_exactly_zero(denom) {
            return Err(Error::Undefined {
                reason: "a confusion-matrix marginal is empty".to_owned(),
            });
        }
        Ok((tp * tn - fp * fn_) / denom)
    }
}

/// Accuracy of thresholded scores against boolean labels (score `>= 0.5`
/// predicts positive — the natural threshold when scores estimate
/// `P(Y = 1 | X)`).
///
/// # Errors
///
/// Propagates [`ConfusionMatrix::from_scores`] errors.
pub fn accuracy(scores: &[f64], labels: &[bool]) -> Result<f64> {
    Ok(ConfusionMatrix::from_scores(scores, labels, 0.5)?.accuracy())
}

/// Brier score: mean squared error of probability estimates against
/// binary outcomes. Proper scoring rule — it rewards calibrated
/// probabilities, which is exactly what the consistency result promises
/// the hard criterion delivers asymptotically.
///
/// # Errors
///
/// * [`Error::LengthMismatch`] / [`Error::EmptyInput`] on bad inputs.
/// * [`Error::InvalidParameter`] when a probability leaves `[0, 1]`.
pub fn brier_score(probabilities: &[f64], outcomes: &[bool]) -> Result<f64> {
    if probabilities.len() != outcomes.len() {
        return Err(Error::LengthMismatch {
            operation: "brier score",
            left: probabilities.len(),
            right: outcomes.len(),
        });
    }
    if probabilities.is_empty() {
        return Err(Error::EmptyInput {
            required: "at least one prediction",
        });
    }
    if probabilities.iter().any(|p| !(0.0..=1.0).contains(p)) {
        return Err(Error::InvalidParameter {
            message: "probabilities must lie in [0, 1]".to_owned(),
        });
    }
    let sum: f64 = probabilities
        .iter()
        .zip(outcomes)
        .map(|(p, &y)| {
            let target = if y { 1.0 } else { 0.0 };
            (p - target) * (p - target)
        })
        .sum();
    Ok(sum / probabilities.len() as f64)
}

/// Logarithmic loss (cross-entropy) of probability estimates, with
/// probabilities clipped to `[eps, 1 − eps]` (`eps = 1e-12`) so hard 0/1
/// predictions stay finite.
///
/// # Errors
///
/// Same contract as [`brier_score`].
pub fn log_loss(probabilities: &[f64], outcomes: &[bool]) -> Result<f64> {
    if probabilities.len() != outcomes.len() {
        return Err(Error::LengthMismatch {
            operation: "log loss",
            left: probabilities.len(),
            right: outcomes.len(),
        });
    }
    if probabilities.is_empty() {
        return Err(Error::EmptyInput {
            required: "at least one prediction",
        });
    }
    if probabilities.iter().any(|p| !(0.0..=1.0).contains(p)) {
        return Err(Error::InvalidParameter {
            message: "probabilities must lie in [0, 1]".to_owned(),
        });
    }
    const EPS: f64 = 1e-12;
    let sum: f64 = probabilities
        .iter()
        .zip(outcomes)
        .map(|(p, &y)| {
            let p = p.clamp(EPS, 1.0 - EPS);
            if y {
                -p.ln()
            } else {
                -(1.0 - p).ln()
            }
        })
        .sum();
    Ok(sum / probabilities.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_rmse_mae_closed_forms() {
        let truth = [1.0, 2.0, 3.0];
        let est = [2.0, 2.0, 1.0];
        assert!((mse(&truth, &est).unwrap() - 5.0 / 3.0).abs() < 1e-15);
        assert!((rmse(&truth, &est).unwrap() - (5.0f64 / 3.0).sqrt()).abs() < 1e-15);
        assert!((mae(&truth, &est).unwrap() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn perfect_estimate_has_zero_error() {
        let xs = [0.3, 0.7, 0.1];
        assert_eq!(rmse(&xs, &xs).unwrap(), 0.0);
        assert_eq!(mae(&xs, &xs).unwrap(), 0.0);
    }

    #[test]
    fn errors_validate_inputs() {
        assert!(matches!(
            rmse(&[1.0], &[1.0, 2.0]),
            Err(Error::LengthMismatch { .. })
        ));
        assert!(matches!(rmse(&[], &[]), Err(Error::EmptyInput { .. })));
    }

    fn sample_cm() -> ConfusionMatrix {
        // scores: predict + for >= 0.5
        let scores = [0.9, 0.8, 0.3, 0.6, 0.1, 0.4];
        let labels = [true, true, true, false, false, false];
        ConfusionMatrix::from_scores(&scores, &labels, 0.5).unwrap()
    }

    #[test]
    fn confusion_matrix_counts() {
        let cm = sample_cm();
        assert_eq!(cm.true_positives, 2);
        assert_eq!(cm.false_negatives, 1);
        assert_eq!(cm.false_positives, 1);
        assert_eq!(cm.true_negatives, 2);
        assert_eq!(cm.total(), 6);
    }

    #[test]
    fn derived_rates() {
        let cm = sample_cm();
        assert!((cm.accuracy() - 4.0 / 6.0).abs() < 1e-15);
        assert!((cm.precision().unwrap() - 2.0 / 3.0).abs() < 1e-15);
        assert!((cm.recall().unwrap() - 2.0 / 3.0).abs() < 1e-15);
        assert!((cm.specificity().unwrap() - 2.0 / 3.0).abs() < 1e-15);
        assert!((cm.f1().unwrap() - 2.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn mcc_known_values() {
        // Perfect classifier: MCC = 1.
        let perfect = ConfusionMatrix {
            true_positives: 5,
            true_negatives: 5,
            false_positives: 0,
            false_negatives: 0,
        };
        assert!((perfect.mcc().unwrap() - 1.0).abs() < 1e-15);
        // Perfectly wrong: MCC = -1.
        let inverted = ConfusionMatrix {
            true_positives: 0,
            true_negatives: 0,
            false_positives: 5,
            false_negatives: 5,
        };
        assert!((inverted.mcc().unwrap() + 1.0).abs() < 1e-15);
    }

    #[test]
    fn undefined_metrics_are_reported() {
        let all_negative_predictions = ConfusionMatrix {
            true_positives: 0,
            false_positives: 0,
            true_negatives: 3,
            false_negatives: 2,
        };
        assert!(all_negative_predictions.precision().is_err());
        let no_positives = ConfusionMatrix {
            true_positives: 0,
            false_positives: 1,
            true_negatives: 3,
            false_negatives: 0,
        };
        assert!(no_positives.recall().is_err());
        assert!(no_positives.mcc().is_err());
    }

    #[test]
    fn accuracy_helper_uses_half_threshold() {
        let scores = [0.6, 0.4];
        let labels = [true, false];
        assert_eq!(accuracy(&scores, &labels).unwrap(), 1.0);
    }

    #[test]
    fn confusion_validates_inputs() {
        assert!(ConfusionMatrix::from_scores(&[0.1], &[], 0.5).is_err());
        assert!(ConfusionMatrix::from_scores(&[], &[], 0.5).is_err());
    }

    #[test]
    fn brier_score_closed_forms() {
        // Perfect confident predictions: 0. Maximally wrong: 1.
        assert_eq!(brier_score(&[1.0, 0.0], &[true, false]).unwrap(), 0.0);
        assert_eq!(brier_score(&[0.0, 1.0], &[true, false]).unwrap(), 1.0);
        // Constant 0.5 scores 0.25 regardless of outcomes.
        assert!(
            (brier_score(&[0.5; 4], &[true, false, true, false]).unwrap() - 0.25).abs() < 1e-15
        );
    }

    #[test]
    fn log_loss_closed_forms() {
        // Constant 0.5 gives ln 2.
        let ll = log_loss(&[0.5; 3], &[true, false, true]).unwrap();
        assert!((ll - std::f64::consts::LN_2).abs() < 1e-12);
        // Confident correct predictions give a tiny loss; confident wrong
        // ones a huge (but finite) loss.
        assert!(log_loss(&[1.0], &[true]).unwrap() < 1e-10);
        let wrong = log_loss(&[1.0], &[false]).unwrap();
        assert!(wrong > 20.0 && wrong.is_finite());
    }

    #[test]
    fn probability_metrics_validate_inputs() {
        assert!(brier_score(&[0.5], &[]).is_err());
        assert!(brier_score(&[], &[]).is_err());
        assert!(brier_score(&[1.5], &[true]).is_err());
        assert!(log_loss(&[0.5, 0.5], &[true]).is_err());
        assert!(log_loss(&[-0.1], &[true]).is_err());
    }

    #[test]
    fn brier_decomposes_as_mse_against_indicator() {
        let probs = [0.2, 0.7, 0.9];
        let outcomes = [false, true, false];
        let targets: Vec<f64> = outcomes.iter().map(|&y| f64::from(y as u8)).collect();
        let via_mse = mse(&targets, &probs).unwrap();
        let via_brier = brier_score(&probs, &outcomes).unwrap();
        assert!((via_mse - via_brier).abs() < 1e-15);
    }
}
