//! Paired significance tests for method comparisons.
//!
//! The paper claims the hard criterion "constantly outperforms" the soft
//! criterion; these tests quantify that claim across Monte-Carlo
//! repetitions: a paired t-test on per-repetition metric differences and
//! an exact sign test that makes no distributional assumptions.

use crate::error::{Error, Result};
use crate::special::{standard_normal_cdf, student_t_two_sided_p};
use gssl_linalg::float::is_exactly_zero;

/// Result of a paired t-test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TTestResult {
    /// The t statistic of the mean paired difference.
    pub statistic: f64,
    /// Degrees of freedom (`pairs − 1`).
    pub degrees_of_freedom: usize,
    /// Two-sided p-value.
    pub p_value: f64,
    /// Mean of the paired differences `a_i − b_i`.
    pub mean_difference: f64,
}

/// Paired two-sided t-test of `H₀: mean(a − b) = 0`.
///
/// # Errors
///
/// * [`Error::LengthMismatch`] when the samples differ in length.
/// * [`Error::EmptyInput`] with fewer than two pairs.
/// * [`Error::Undefined`] when every pair is identical (zero variance).
///
/// ```
/// use gssl_stats::inference::paired_t_test;
/// let hard = [0.10, 0.12, 0.09, 0.11, 0.10];
/// let soft = [0.15, 0.16, 0.14, 0.17, 0.15];
/// let result = paired_t_test(&hard, &soft).unwrap();
/// assert!(result.p_value < 0.01); // clearly different
/// assert!(result.mean_difference < 0.0); // hard is smaller (better RMSE)
/// ```
pub fn paired_t_test(a: &[f64], b: &[f64]) -> Result<TTestResult> {
    if a.len() != b.len() {
        return Err(Error::LengthMismatch {
            operation: "paired t-test",
            left: a.len(),
            right: b.len(),
        });
    }
    if a.len() < 2 {
        return Err(Error::EmptyInput {
            required: "at least two pairs",
        });
    }
    let n = a.len() as f64;
    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    let mean = diffs.iter().sum::<f64>() / n;
    let var = diffs.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / (n - 1.0);
    if is_exactly_zero(var) {
        return Err(Error::Undefined {
            reason: "paired differences have zero variance".to_owned(),
        });
    }
    let statistic = mean / (var / n).sqrt();
    let dof = a.len() - 1;
    Ok(TTestResult {
        statistic,
        degrees_of_freedom: dof,
        p_value: student_t_two_sided_p(statistic, dof as f64),
        mean_difference: mean,
    })
}

/// Result of a sign test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignTestResult {
    /// Pairs where `a_i > b_i`.
    pub wins: usize,
    /// Pairs where `a_i < b_i`.
    pub losses: usize,
    /// Pairs with `a_i == b_i` (excluded from the test).
    pub ties: usize,
    /// Two-sided p-value of `H₀: P(a > b) = 1/2`.
    pub p_value: f64,
}

/// Two-sided exact sign test (normal approximation beyond 50 informative
/// pairs).
///
/// # Errors
///
/// * [`Error::LengthMismatch`] when the samples differ in length.
/// * [`Error::EmptyInput`] when no informative (non-tied) pair remains.
pub fn sign_test(a: &[f64], b: &[f64]) -> Result<SignTestResult> {
    if a.len() != b.len() {
        return Err(Error::LengthMismatch {
            operation: "sign test",
            left: a.len(),
            right: b.len(),
        });
    }
    let mut wins = 0usize;
    let mut losses = 0usize;
    let mut ties = 0usize;
    for (x, y) in a.iter().zip(b) {
        match x.partial_cmp(y) {
            Some(std::cmp::Ordering::Greater) => wins += 1,
            Some(std::cmp::Ordering::Less) => losses += 1,
            _ => ties += 1,
        }
    }
    let informative = wins + losses;
    if informative == 0 {
        return Err(Error::EmptyInput {
            required: "at least one non-tied pair",
        });
    }
    let k = wins.min(losses);
    let p_value = if informative <= 50 {
        // Exact: 2 * P(Binomial(n, 1/2) <= k), capped at 1.
        (2.0 * binomial_cdf_half(k, informative)).min(1.0)
    } else {
        // Normal approximation with continuity correction.
        let n = informative as f64;
        let z = (k as f64 + 0.5 - n / 2.0) / (n / 4.0).sqrt();
        (2.0 * standard_normal_cdf(z)).min(1.0)
    };
    Ok(SignTestResult {
        wins,
        losses,
        ties,
        p_value,
    })
}

/// `P(Binomial(n, 1/2) <= k)` computed in log space.
fn binomial_cdf_half(k: usize, n: usize) -> f64 {
    let ln_half_n = n as f64 * 0.5f64.ln();
    (0..=k).map(|i| (ln_choose(n, i) + ln_half_n).exp()).sum()
}

fn ln_choose(n: usize, k: usize) -> f64 {
    use crate::special::ln_gamma;
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// Result of a Wilcoxon signed-rank test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WilcoxonResult {
    /// The smaller of the positive/negative rank sums (the W statistic).
    pub statistic: f64,
    /// Informative (non-tied) pairs used.
    pub pairs_used: usize,
    /// Two-sided p-value (normal approximation with tie correction).
    pub p_value: f64,
}

/// Two-sided Wilcoxon signed-rank test of `H₀: the paired differences are
/// symmetric about 0` — more powerful than the sign test because it uses
/// the magnitudes of the differences, without the t-test's normality
/// assumption.
///
/// Uses the normal approximation with midranks and tie correction;
/// accurate from roughly 10 informative pairs upward.
///
/// # Errors
///
/// * [`Error::LengthMismatch`] when the samples differ in length.
/// * [`Error::EmptyInput`] when fewer than 6 informative pairs remain
///   (the approximation is meaningless below that).
pub fn wilcoxon_signed_rank(a: &[f64], b: &[f64]) -> Result<WilcoxonResult> {
    if a.len() != b.len() {
        return Err(Error::LengthMismatch {
            operation: "wilcoxon signed-rank",
            left: a.len(),
            right: b.len(),
        });
    }
    let mut diffs: Vec<f64> = a
        .iter()
        .zip(b)
        .map(|(x, y)| x - y)
        .filter(|d| !is_exactly_zero(*d))
        .collect();
    if diffs.len() < 6 {
        return Err(Error::EmptyInput {
            required: "at least 6 non-tied pairs",
        });
    }
    let n = diffs.len();
    diffs.sort_by(|x, y| x.abs().total_cmp(&y.abs()));
    // Midranks over |d|, accumulating tie groups for the variance
    // correction.
    let mut ranks = vec![0.0f64; n];
    let mut tie_correction = 0.0f64;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j < n && diffs[j].abs() == diffs[i].abs() {
            j += 1;
        }
        let midrank = (i + 1 + j) as f64 / 2.0;
        for r in ranks.iter_mut().take(j).skip(i) {
            *r = midrank;
        }
        let t = (j - i) as f64;
        tie_correction += t * t * t - t;
        i = j;
    }
    let w_plus: f64 = diffs
        .iter()
        .zip(&ranks)
        .filter(|(d, _)| **d > 0.0)
        .map(|(_, r)| r)
        .sum();
    let n_f = n as f64;
    let w_minus = n_f * (n_f + 1.0) / 2.0 - w_plus;
    let statistic = w_plus.min(w_minus);
    let mean = n_f * (n_f + 1.0) / 4.0;
    let variance = n_f * (n_f + 1.0) * (2.0 * n_f + 1.0) / 24.0 - tie_correction / 48.0;
    // Continuity-corrected z for the smaller tail.
    let z = (statistic + 0.5 - mean) / variance.sqrt();
    let p_value = (2.0 * standard_normal_cdf(z)).min(1.0);
    Ok(WilcoxonResult {
        statistic,
        pairs_used: n,
        p_value,
    })
}

/// A bootstrap confidence interval for a sample mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapInterval {
    /// Sample mean of the original data.
    pub mean: f64,
    /// Lower percentile bound.
    pub lower: f64,
    /// Upper percentile bound.
    pub upper: f64,
    /// Confidence level used (e.g. 0.95).
    pub level: f64,
}

/// Percentile bootstrap confidence interval for the mean, with
/// `resamples` bootstrap replicates.
///
/// # Errors
///
/// * [`Error::EmptyInput`] for empty data.
/// * [`Error::InvalidParameter`] when `level` is outside `(0, 1)` or
///   `resamples == 0`.
///
/// ```
/// use gssl_stats::inference::bootstrap_mean_ci;
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let data = [1.0, 1.2, 0.8, 1.1, 0.9, 1.0, 1.05, 0.95];
/// let ci = bootstrap_mean_ci(&data, 0.95, 2000, &mut rng).unwrap();
/// assert!(ci.lower <= ci.mean && ci.mean <= ci.upper);
/// assert!(ci.lower > 0.8 && ci.upper < 1.2);
/// ```
pub fn bootstrap_mean_ci(
    data: &[f64],
    level: f64,
    resamples: usize,
    rng: &mut impl rand::Rng,
) -> Result<BootstrapInterval> {
    if data.is_empty() {
        return Err(Error::EmptyInput {
            required: "at least one observation",
        });
    }
    if !(0.0 < level && level < 1.0) || resamples == 0 {
        return Err(Error::InvalidParameter {
            message: format!("need level in (0, 1) and resamples > 0, got ({level}, {resamples})"),
        });
    }
    let n = data.len();
    let mean = data.iter().sum::<f64>() / n as f64;
    let mut replicate_means = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let sum: f64 = (0..n).map(|_| data[rng.gen_range(0..n)]).sum();
        replicate_means.push(sum / n as f64);
    }
    replicate_means.sort_by(f64::total_cmp);
    let alpha = (1.0 - level) / 2.0;
    let index = |q: f64| {
        let pos = (q * (resamples as f64 - 1.0)).round() as usize;
        replicate_means[pos.min(resamples - 1)]
    };
    Ok(BootstrapInterval {
        mean,
        lower: index(alpha),
        upper: index(1.0 - alpha),
        level,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_test_detects_clear_difference() {
        let a = [1.0, 1.1, 0.9, 1.05, 0.95, 1.02];
        let b = [2.0, 2.1, 1.9, 2.05, 1.95, 2.02];
        let result = paired_t_test(&a, &b).unwrap();
        assert!(result.p_value < 1e-6);
        assert!((result.mean_difference + 1.0).abs() < 1e-12);
        assert_eq!(result.degrees_of_freedom, 5);
        assert!(result.statistic < 0.0);
    }

    #[test]
    fn t_test_accepts_identical_distributions() {
        // Paired differences symmetric around zero => large p.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = [1.1, 1.9, 3.1, 3.9, 5.1, 5.9];
        let result = paired_t_test(&a, &b).unwrap();
        assert!(result.p_value > 0.5, "p = {}", result.p_value);
    }

    #[test]
    fn t_test_validates_inputs() {
        assert!(paired_t_test(&[1.0], &[1.0, 2.0]).is_err());
        assert!(paired_t_test(&[1.0], &[2.0]).is_err());
        assert!(paired_t_test(&[1.0, 2.0], &[1.0, 2.0]).is_err()); // zero variance
    }

    #[test]
    fn sign_test_exact_small_sample() {
        // 6 wins, 0 losses: p = 2 * (1/2)^6 = 0.03125.
        let a = [2.0; 6];
        let b = [1.0; 6];
        let result = sign_test(&a, &b).unwrap();
        assert_eq!(result.wins, 6);
        assert_eq!(result.losses, 0);
        assert!((result.p_value - 0.03125).abs() < 1e-10);
    }

    #[test]
    fn sign_test_handles_ties() {
        let a = [1.0, 2.0, 3.0, 5.0];
        let b = [1.0, 1.0, 4.0, 4.0];
        let result = sign_test(&a, &b).unwrap();
        assert_eq!(result.ties, 1);
        assert_eq!(result.wins, 2);
        assert_eq!(result.losses, 1);
        assert!(result.p_value > 0.5);
    }

    #[test]
    fn sign_test_balanced_sample_is_insignificant() {
        let a = [1.0, 3.0, 1.0, 3.0, 1.0, 3.0];
        let b = [2.0, 2.0, 2.0, 2.0, 2.0, 2.0];
        let result = sign_test(&a, &b).unwrap();
        assert_eq!(result.wins, 3);
        assert_eq!(result.losses, 3);
        assert!(result.p_value > 0.9);
    }

    #[test]
    fn sign_test_large_sample_uses_normal_tail() {
        // 80 wins out of 100: strongly significant.
        let mut a = vec![2.0; 80];
        a.extend(vec![0.0; 20]);
        let b = vec![1.0; 100];
        let result = sign_test(&a, &b).unwrap();
        assert!(result.p_value < 1e-6, "p = {}", result.p_value);
    }

    #[test]
    fn sign_test_validates_inputs() {
        assert!(sign_test(&[1.0], &[1.0, 2.0]).is_err());
        assert!(sign_test(&[1.0, 2.0], &[1.0, 2.0]).is_err()); // all ties
    }

    #[test]
    fn wilcoxon_detects_consistent_shift() {
        // b exceeds a by ~1 in every pair: strongly significant.
        let a: Vec<f64> = (0..20).map(|i| i as f64 * 0.1).collect();
        let b: Vec<f64> = a.iter().map(|x| x + 1.0 + 0.01 * x).collect();
        let result = wilcoxon_signed_rank(&a, &b).unwrap();
        assert_eq!(result.pairs_used, 20);
        assert!(result.p_value < 1e-3, "p = {}", result.p_value);
        // The W statistic is the zero rank sum (all differences negative).
        assert_eq!(result.statistic, 0.0);
    }

    #[test]
    fn wilcoxon_accepts_symmetric_differences() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let b = [1.5, 1.5, 3.5, 3.5, 5.5, 4.5, 7.5, 7.5];
        let result = wilcoxon_signed_rank(&a, &b).unwrap();
        assert!(result.p_value > 0.3, "p = {}", result.p_value);
    }

    #[test]
    fn wilcoxon_validates_inputs() {
        assert!(wilcoxon_signed_rank(&[1.0], &[1.0, 2.0]).is_err());
        // All ties => no informative pairs.
        assert!(wilcoxon_signed_rank(&[1.0; 10], &[1.0; 10]).is_err());
        // Too few informative pairs.
        assert!(wilcoxon_signed_rank(&[1.0, 2.0, 3.0], &[2.0, 3.0, 4.0]).is_err());
    }

    #[test]
    fn wilcoxon_agrees_with_sign_test_direction() {
        // 15 wins of similar magnitude: both tests reject.
        let a = vec![2.0; 15];
        let b: Vec<f64> = (0..15).map(|i| 1.0 + 0.01 * i as f64).collect();
        let w = wilcoxon_signed_rank(&a, &b).unwrap();
        let s = sign_test(&a, &b).unwrap();
        assert!(w.p_value < 0.01);
        assert!(s.p_value < 0.01);
    }

    #[test]
    fn bootstrap_interval_brackets_the_mean() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let data: Vec<f64> = (0..50).map(|i| 2.0 + (i as f64 * 0.7).sin()).collect();
        let ci = bootstrap_mean_ci(&data, 0.9, 1000, &mut rng).unwrap();
        assert!(ci.lower <= ci.mean && ci.mean <= ci.upper);
        assert!(ci.upper - ci.lower < 1.0, "interval suspiciously wide");
        // A wider level gives a wider interval.
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(9);
        let ci99 = bootstrap_mean_ci(&data, 0.99, 1000, &mut rng2).unwrap();
        assert!(ci99.upper - ci99.lower >= ci.upper - ci.lower);
    }

    #[test]
    fn bootstrap_validates_inputs() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        assert!(bootstrap_mean_ci(&[], 0.95, 100, &mut rng).is_err());
        assert!(bootstrap_mean_ci(&[1.0], 1.0, 100, &mut rng).is_err());
        assert!(bootstrap_mean_ci(&[1.0], 0.95, 0, &mut rng).is_err());
        // A constant sample has a zero-width interval.
        let ci = bootstrap_mean_ci(&[3.0; 10], 0.95, 100, &mut rng).unwrap();
        assert_eq!(ci.lower, 3.0);
        assert_eq!(ci.upper, 3.0);
    }

    #[test]
    fn binomial_cdf_half_sanity() {
        // P(Bin(4, 1/2) <= 2) = (1 + 4 + 6) / 16.
        assert!((binomial_cdf_half(2, 4) - 11.0 / 16.0).abs() < 1e-12);
        assert!((binomial_cdf_half(4, 4) - 1.0).abs() < 1e-12);
    }
}
