//! Error type for graph construction.

use std::fmt;

/// Errors returned by kernel, bandwidth and graph constructors.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// The input point set is empty (or otherwise too small).
    EmptyInput {
        /// What the operation needed, e.g. `"at least two points"`.
        required: &'static str,
    },
    /// Points have inconsistent dimensions.
    DimensionMismatch {
        /// Dimension of the first point.
        expected: usize,
        /// Dimension of the offending point.
        actual: usize,
        /// Index of the offending point.
        index: usize,
    },
    /// A bandwidth (or other scale parameter) must be strictly positive.
    InvalidBandwidth {
        /// The offending value.
        value: f64,
    },
    /// A parameter was outside its valid domain.
    InvalidArgument {
        /// Description of the violated requirement.
        message: String,
    },
    /// An underlying linear-algebra operation failed.
    Linalg(gssl_linalg::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::EmptyInput { required } => {
                write!(f, "input is too small: {required} required")
            }
            Error::DimensionMismatch {
                expected,
                actual,
                index,
            } => write!(
                f,
                "point {index} has dimension {actual}, expected {expected}"
            ),
            Error::InvalidBandwidth { value } => {
                write!(f, "bandwidth must be strictly positive, got {value}")
            }
            Error::InvalidArgument { message } => write!(f, "invalid argument: {message}"),
            Error::Linalg(inner) => write!(f, "linear algebra error: {inner}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Linalg(inner) => Some(inner),
            _ => None,
        }
    }
}

impl From<gssl_linalg::Error> for Error {
    fn from(inner: gssl_linalg::Error) -> Self {
        Error::Linalg(inner)
    }
}

impl From<gssl_runtime::Error> for Error {
    fn from(inner: gssl_runtime::Error) -> Self {
        // Runtime failures (zero chunk width, a lost batch slot) are
        // configuration/protocol problems, not graph-construction ones.
        Error::InvalidArgument {
            message: inner.to_string(),
        }
    }
}

impl From<gssl_index::Error> for Error {
    fn from(inner: gssl_index::Error) -> Self {
        // The spatial-index error space is a subset of the graph one; map
        // structurally where a counterpart exists.
        match inner {
            gssl_index::Error::EmptyInput { required } => Error::EmptyInput { required },
            gssl_index::Error::DimensionMismatch { expected, actual } => Error::DimensionMismatch {
                expected,
                actual,
                index: 0,
            },
            other => Error::InvalidArgument {
                message: other.to_string(),
            },
        }
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(Error::EmptyInput {
            required: "at least two points"
        }
        .to_string()
        .contains("two points"));
        assert!(Error::InvalidBandwidth { value: -1.0 }
            .to_string()
            .contains("-1"));
        let e = Error::DimensionMismatch {
            expected: 3,
            actual: 2,
            index: 7,
        };
        assert!(e.to_string().contains("point 7"));
    }

    #[test]
    fn wraps_linalg_errors() {
        let inner = gssl_linalg::Error::Singular { pivot: 0 };
        let err: Error = inner.clone().into();
        assert_eq!(err, Error::Linalg(inner));
        assert!(std::error::Error::source(&err).is_some());
    }
}
