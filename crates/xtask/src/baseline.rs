//! The ratchet baseline for `analyze` findings.
//!
//! `crates/xtask/analyze.baseline` registers findings that are understood
//! and proven acceptable (e.g. a `Relaxed` ordering whose soundness the
//! interleaving harness establishes). Each entry carries a justification
//! and a *count*; the ratchet is two-sided:
//!
//! * a keyed finding group whose count **exceeds** its baseline count is
//!   reported in full (regressions never hide behind the baseline);
//! * a baseline entry whose count **exceeds** reality is a
//!   `baseline_stale` finding (the baseline must shrink as code improves —
//!   counts only go down).
//!
//! Format, one entry per line:
//!
//! ```text
//! <file> <rule> <function> <count> <justification…>
//! ```
//!
//! Blank lines and `#` comments are skipped. `<function>` is the
//! qualified name (`Type::method`), or `-` for file-level findings.

use crate::analysis::{AnalyzeRule, Finding};
use std::collections::HashMap;

/// One baseline registration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Workspace-relative file path (forward slashes).
    pub file: String,
    /// Rule being baselined.
    pub rule: AnalyzeRule,
    /// Qualified function name, `-` for file-level findings.
    pub func: String,
    /// Number of sanctioned findings under this key.
    pub count: usize,
    /// Justification recorded for reviewers.
    pub reason: String,
    /// 1-based line in the baseline file.
    pub line: usize,
}

/// Parses the baseline text; malformed lines become findings against the
/// baseline file itself.
#[must_use]
pub fn parse(text: &str, list_path: &str) -> (Vec<Entry>, Vec<Finding>) {
    let mut entries = Vec::new();
    let mut problems = Vec::new();
    let mut bad = |line: usize, message: String| {
        problems.push(Finding {
            rule: AnalyzeRule::BaselineStale,
            file: list_path.to_owned(),
            func: "-".to_owned(),
            line,
            message,
        });
    };
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(5, char::is_whitespace);
        let file = parts.next().unwrap_or("").to_owned();
        let rule_key = parts.next().unwrap_or("");
        let func = parts.next().unwrap_or("").to_owned();
        let count = parts.next().unwrap_or("");
        let reason = parts.next().unwrap_or("").trim().to_owned();
        let Some(rule) = AnalyzeRule::from_key(rule_key) else {
            bad(i + 1, format!("unknown rule `{rule_key}` in baseline"));
            continue;
        };
        let Ok(count) = count.parse::<usize>() else {
            bad(i + 1, format!("baseline count `{count}` is not a number"));
            continue;
        };
        if reason.is_empty() {
            bad(i + 1, "baseline entry has no justification text".to_owned());
            continue;
        }
        if count == 0 {
            bad(
                i + 1,
                "baseline count 0 is meaningless; delete the entry".to_owned(),
            );
            continue;
        }
        entries.push(Entry {
            file,
            rule,
            func,
            count,
            reason,
            line: i + 1,
        });
    }
    (entries, problems)
}

/// Applies the ratchet: returns the findings that survive (regressions)
/// plus `baseline_stale` findings for over-generous entries.
#[must_use]
pub fn reconcile(findings: Vec<Finding>, entries: &[Entry], list_path: &str) -> Vec<Finding> {
    // Group findings by key.
    let mut groups: HashMap<(String, AnalyzeRule, String), Vec<Finding>> = HashMap::new();
    for f in findings {
        groups
            .entry((f.file.clone(), f.rule, f.func.clone()))
            .or_default()
            .push(f);
    }

    let mut out = Vec::new();
    for entry in entries {
        let key = (entry.file.clone(), entry.rule, entry.func.clone());
        let actual = groups.get(&key).map_or(0, Vec::len);
        if actual < entry.count {
            out.push(Finding {
                rule: AnalyzeRule::BaselineStale,
                file: list_path.to_owned(),
                func: entry.func.clone(),
                line: entry.line,
                message: format!(
                    "stale baseline: {} {} in `{}` registers {} finding(s) but only {actual} \
                     remain — ratchet the count down",
                    entry.file,
                    entry.rule.key(),
                    entry.func,
                    entry.count
                ),
            });
        }
        if actual <= entry.count {
            groups.remove(&key);
        }
        // actual > entry.count: leave the whole group to be reported — a
        // regression must show every site, not just the excess.
    }
    for (_, group) in groups {
        out.extend(group);
    }
    out.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule.key()).cmp(&(b.file.as_str(), b.line, b.rule.key()))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, rule: AnalyzeRule, func: &str, line: usize) -> Finding {
        Finding {
            rule,
            file: file.to_owned(),
            func: func.to_owned(),
            line,
            message: "m".to_owned(),
        }
    }

    #[test]
    fn parses_entries() {
        let (entries, problems) = parse(
            "# c\n\ncrates/serve/src/pool.rs relaxed_ordering ThreadPool::map 1 proven by harness\n",
            "b",
        );
        assert!(problems.is_empty());
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].count, 1);
        assert_eq!(entries[0].func, "ThreadPool::map");
    }

    #[test]
    fn rejects_malformed_lines() {
        let (entries, problems) = parse(
            "a.rs bogus f 1 why\na.rs panic_reach f x why\na.rs panic_reach f 1\na.rs panic_reach f 0 why\n",
            "b",
        );
        assert!(entries.is_empty());
        assert_eq!(problems.len(), 4);
    }

    #[test]
    fn at_or_under_baseline_is_suppressed() {
        let (entries, _) = parse("a.rs panic_reach f 2 ok\n", "b");
        let findings = vec![
            finding("a.rs", AnalyzeRule::PanicReach, "f", 1),
            finding("a.rs", AnalyzeRule::PanicReach, "f", 2),
        ];
        assert!(reconcile(findings, &entries, "b").is_empty());
    }

    #[test]
    fn over_baseline_reports_whole_group() {
        let (entries, _) = parse("a.rs panic_reach f 1 ok\n", "b");
        let findings = vec![
            finding("a.rs", AnalyzeRule::PanicReach, "f", 1),
            finding("a.rs", AnalyzeRule::PanicReach, "f", 2),
        ];
        assert_eq!(reconcile(findings, &entries, "b").len(), 2);
    }

    #[test]
    fn under_baseline_is_stale() {
        let (entries, _) = parse("a.rs panic_reach f 2 ok\n", "b");
        let findings = vec![finding("a.rs", AnalyzeRule::PanicReach, "f", 1)];
        let out = reconcile(findings, &entries, "b");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, AnalyzeRule::BaselineStale);
    }

    #[test]
    fn unrelated_findings_pass_through() {
        let (entries, _) = parse("a.rs panic_reach f 1 ok\n", "b");
        let findings = vec![finding("z.rs", AnalyzeRule::ShapeMismatch, "g", 9)];
        let out = reconcile(findings, &entries, "b");
        // The unrelated finding passes through AND the unused entry is stale.
        assert_eq!(out.len(), 2);
        assert!(out.iter().any(|f| f.file == "z.rs"));
        assert!(out.iter().any(|f| f.rule == AnalyzeRule::BaselineStale));
    }
}
