//! The unified similarity-matrix representation behind [`crate::Problem`].
//!
//! Historically dense problems lived in `Problem` and sparse ones in a
//! parallel `SparseProblem` API. [`Weights`] merges the two: a problem
//! holds either a dense [`Matrix`] or a CSR [`CsrMatrix`], and every
//! criterion queries it through the same accessors, so hard and soft
//! solves run unchanged on either representation.

use crate::error::{Error, Result};
use gssl_linalg::{CsrMatrix, Matrix, Vector};

/// A symmetric nonnegative similarity matrix, dense or sparse.
///
/// Construct one via `From<Matrix>` / `From<CsrMatrix>` (or pass either
/// matrix type straight to [`crate::Problem::new`], which takes
/// `impl Into<Weights>`).
#[derive(Debug, Clone, PartialEq)]
pub enum Weights {
    /// Dense row-major storage — the representation of the paper's
    /// closed-form experiments.
    Dense(Matrix),
    /// Compressed sparse rows — kNN / ε-threshold graphs at production
    /// scale.
    Sparse(CsrMatrix),
}

impl From<Matrix> for Weights {
    fn from(w: Matrix) -> Self {
        Weights::Dense(w)
    }
}

impl From<CsrMatrix> for Weights {
    fn from(w: CsrMatrix) -> Self {
        Weights::Sparse(w)
    }
}

impl Weights {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        match self {
            Weights::Dense(w) => w.rows(),
            Weights::Sparse(w) => w.rows(),
        }
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        match self {
            Weights::Dense(w) => w.cols(),
            Weights::Sparse(w) => w.cols(),
        }
    }

    /// Whether the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows() == self.cols()
    }

    /// Whether the sparse representation backs this instance.
    pub fn is_sparse(&self) -> bool {
        matches!(self, Weights::Sparse(_))
    }

    /// Entry `w_ij` (zero for unstored sparse coordinates).
    ///
    /// # Panics
    ///
    /// Panics when the indices are out of bounds, matching the underlying
    /// matrix types.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        match self {
            Weights::Dense(w) => w.get(i, j),
            Weights::Sparse(w) => w.get(i, j),
        }
    }

    /// Number of structurally nonzero entries (dense counts entries with
    /// nonzero magnitude).
    pub fn nnz(&self) -> usize {
        match self {
            Weights::Dense(w) => {
                let mut nnz = 0;
                for i in 0..w.rows() {
                    for v in w.row(i) {
                        if v.abs() > 0.0 {
                            nnz += 1;
                        }
                    }
                }
                nnz
            }
            Weights::Sparse(w) => w.nnz(),
        }
    }

    /// Fraction of nonzero entries, `nnz / (rows · cols)` (1.0 for empty
    /// shapes).
    pub fn density(&self) -> f64 {
        let (r, c) = (self.rows(), self.cols());
        if r == 0 || c == 0 {
            return 1.0;
        }
        self.nnz() as f64 / (r as f64 * c as f64)
    }

    /// Borrows the dense representation, if that is what is stored.
    /// shape: (rows, cols)
    pub fn as_dense(&self) -> Option<&Matrix> {
        match self {
            Weights::Dense(w) => Some(w),
            Weights::Sparse(_) => None,
        }
    }

    /// Borrows the sparse representation, if that is what is stored.
    /// shape: (rows, cols)
    pub fn as_sparse(&self) -> Option<&CsrMatrix> {
        match self {
            Weights::Dense(_) => None,
            Weights::Sparse(w) => Some(w),
        }
    }

    /// Expands to a dense matrix (clones when already dense).
    /// shape: (rows, cols)
    pub fn to_dense(&self) -> Matrix {
        match self {
            Weights::Dense(w) => w.clone(),
            Weights::Sparse(w) => w.to_dense(),
        }
    }

    /// Converts to CSR (clones when already sparse; exact-zero entries are
    /// dropped when converting from dense).
    /// shape: (rows, cols)
    pub fn to_csr(&self) -> CsrMatrix {
        match self {
            Weights::Dense(w) => CsrMatrix::from_dense(w, 0.0),
            Weights::Sparse(w) => w.clone(),
        }
    }

    /// Degree vector `d_i = Σ_j w_ij`.
    /// shape: (rows,)
    pub fn degrees(&self) -> Vector {
        match self {
            Weights::Dense(w) => w.row_sums(),
            Weights::Sparse(w) => Vector::from(w.row_sums()),
        }
    }

    /// Whether the matrix equals its transpose within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        match self {
            Weights::Dense(w) => w.is_symmetric(tol),
            Weights::Sparse(w) => w.is_symmetric(tol),
        }
    }

    /// Iterates the structurally nonzero `(col, value)` pairs of row `i`
    /// (dense rows skip exact zeros so both representations agree).
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of bounds, matching the underlying matrix
    /// types.
    pub fn row_entries(&self, i: usize) -> Box<dyn Iterator<Item = (usize, f64)> + '_> {
        match self {
            Weights::Dense(w) => Box::new(
                w.row(i)
                    .iter()
                    .copied()
                    .enumerate()
                    .filter(|&(_, v)| v.abs() > 0.0),
            ),
            Weights::Sparse(w) => Box::new(w.row_iter(i)),
        }
    }

    /// Dirichlet energy `Σ_ij w_ij (f_i − f_j)²` of a score vector over
    /// this graph (both orientations of each edge counted, as in
    /// [`gssl_graph::dirichlet_energy`]).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidProblem`] when `f.len() != rows`.
    pub fn dirichlet_energy(&self, f: &Vector) -> Result<f64> {
        if f.len() != self.rows() || !self.is_square() {
            return Err(Error::InvalidProblem {
                message: format!(
                    "dirichlet energy needs a square graph matching the {} scores, got {}x{}",
                    f.len(),
                    self.rows(),
                    self.cols()
                ),
            });
        }
        match self {
            Weights::Dense(w) => Ok(gssl_graph::dirichlet_energy(w, f)?),
            Weights::Sparse(w) => {
                let mut energy = 0.0;
                for i in 0..w.rows() {
                    for (j, v) in w.row_iter(i) {
                        let diff = f[i] - f[j];
                        energy += v * diff * diff;
                    }
                }
                Ok(energy)
            }
        }
    }

    /// Extracts the sub-problem induced by `members`: the square submatrix
    /// `W[members, members]`, preserving the storage representation.
    ///
    /// `members` must be strictly increasing and in bounds — the canonical
    /// component order produced by `gssl_graph::component_partition` — so
    /// the extraction is a pure reindexing: entry `(a, b)` of the result
    /// is `w(members[a], members[b])` bit-for-bit. Sharded solvers rely on
    /// this to reproduce the monolithic system blocks exactly.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidProblem`] when the matrix is not square or
    /// `members` is out of bounds or not strictly increasing.
    pub fn extract(&self, members: &[usize]) -> Result<Weights> {
        if !self.is_square() {
            return Err(Error::InvalidProblem {
                message: format!(
                    "sub-problem extraction needs a square matrix, got {}x{}",
                    self.rows(),
                    self.cols()
                ),
            });
        }
        let n = self.rows();
        if members.windows(2).any(|w| w[1] <= w[0]) || members.last().is_some_and(|&m| m >= n) {
            return Err(Error::InvalidProblem {
                message: format!("member list must be strictly increasing and below {n}"),
            });
        }
        let m = members.len();
        // Inverse map: global index -> local position (usize::MAX = absent).
        let mut local = vec![usize::MAX; n];
        for (pos, &g) in members.iter().enumerate() {
            local[g] = pos;
        }
        match self {
            Weights::Dense(w) => {
                let mut sub = Matrix::zeros(m, m);
                for (a, &i) in members.iter().enumerate() {
                    let row = w.row(i);
                    for (b, &j) in members.iter().enumerate() {
                        sub.set(a, b, row[j]);
                    }
                }
                Ok(Weights::Dense(sub))
            }
            Weights::Sparse(w) => {
                let mut triplets = Vec::new();
                for (a, &i) in members.iter().enumerate() {
                    for (j, v) in w.row_iter(i) {
                        if local[j] != usize::MAX {
                            triplets.push((a, local[j], v));
                        }
                    }
                }
                Ok(Weights::Sparse(CsrMatrix::from_triplets(m, m, &triplets)?))
            }
        }
    }

    /// Validates the graph for use in a problem: finite nonnegative
    /// entries, square shape, symmetry within `tol`.
    pub(crate) fn validate(&self, tol: f64) -> Result<()> {
        if !self.is_square() {
            return Err(Error::InvalidProblem {
                message: format!(
                    "similarity matrix must be square, got {}x{}",
                    self.rows(),
                    self.cols()
                ),
            });
        }
        for i in 0..self.rows() {
            for (_, v) in self.row_entries(i) {
                if !v.is_finite() || v < 0.0 {
                    return Err(Error::InvalidProblem {
                        message: "weights must be finite and nonnegative".to_owned(),
                    });
                }
            }
        }
        // Dense NaN entries are skipped by the nonzero filter above when
        // they compare false to the threshold; scan the raw storage too.
        if let Weights::Dense(w) = self {
            if w.as_slice().iter().any(|v| !v.is_finite()) {
                return Err(Error::InvalidProblem {
                    message: "weights must be finite and nonnegative".to_owned(),
                });
            }
        }
        if !self.is_symmetric(tol) {
            return Err(Error::InvalidProblem {
                message: "similarity matrix must be symmetric".to_owned(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_dense() -> Matrix {
        Matrix::from_rows(&[&[1.0, 1.0, 0.0], &[1.0, 1.0, 1.0], &[0.0, 1.0, 1.0]]).unwrap()
    }

    #[test]
    fn representations_agree_on_accessors() {
        let dense = Weights::from(chain_dense());
        let sparse = Weights::from(CsrMatrix::from_dense(&chain_dense(), 0.0));
        assert_eq!(dense.rows(), 3);
        assert_eq!(sparse.rows(), 3);
        assert!(!dense.is_sparse());
        assert!(sparse.is_sparse());
        assert_eq!(dense.nnz(), sparse.nnz());
        assert!((dense.density() - sparse.density()).abs() < 1e-15);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(dense.get(i, j), sparse.get(i, j));
            }
            let d: Vec<_> = dense.row_entries(i).collect();
            let s: Vec<_> = sparse.row_entries(i).collect();
            assert_eq!(d, s);
        }
        assert_eq!(dense.degrees().as_slice(), sparse.degrees().as_slice());
        assert_eq!(sparse.to_dense(), chain_dense());
        assert_eq!(dense.to_csr(), sparse.to_csr());
        assert!(dense.is_symmetric(1e-12) && sparse.is_symmetric(1e-12));
    }

    #[test]
    fn dirichlet_energy_matches_dense_reference() {
        let f = Vector::from(vec![1.0, 0.5, 0.0]);
        let dense = Weights::from(chain_dense());
        let sparse = Weights::from(CsrMatrix::from_dense(&chain_dense(), 0.0));
        let reference = gssl_graph::dirichlet_energy(&chain_dense(), &f).unwrap();
        assert!((dense.dirichlet_energy(&f).unwrap() - reference).abs() < 1e-15);
        assert!((sparse.dirichlet_energy(&f).unwrap() - reference).abs() < 1e-15);
        assert!(dense.dirichlet_energy(&Vector::zeros(2)).is_err());
    }

    #[test]
    fn validation_catches_bad_graphs() {
        assert!(Weights::from(Matrix::zeros(2, 3)).validate(1e-9).is_err());
        let asym = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0)]).unwrap();
        assert!(Weights::from(asym).validate(1e-9).is_err());
        let negative = CsrMatrix::from_triplets(2, 2, &[(0, 1, -1.0), (1, 0, -1.0)]).unwrap();
        assert!(Weights::from(negative).validate(1e-9).is_err());
        let mut nan = chain_dense();
        nan.set(0, 0, f64::NAN);
        assert!(Weights::from(nan).validate(1e-9).is_err());
        assert!(Weights::from(chain_dense()).validate(1e-9).is_ok());
    }

    #[test]
    fn extract_preserves_representation_and_bits() {
        let dense = Weights::from(chain_dense());
        let sparse = Weights::from(CsrMatrix::from_dense(&chain_dense(), 0.0));
        for w in [&dense, &sparse] {
            let sub = w.extract(&[0, 2]).unwrap();
            assert_eq!(sub.is_sparse(), w.is_sparse());
            assert_eq!(sub.rows(), 2);
            for (a, &i) in [0usize, 2].iter().enumerate() {
                for (b, &j) in [0usize, 2].iter().enumerate() {
                    assert_eq!(sub.get(a, b).to_bits(), w.get(i, j).to_bits());
                }
            }
        }
        // Full extraction is the identity, empty extraction is empty.
        assert_eq!(dense.extract(&[0, 1, 2]).unwrap(), dense);
        assert_eq!(dense.extract(&[]).unwrap().rows(), 0);
    }

    #[test]
    fn extract_validates_members() {
        let dense = Weights::from(chain_dense());
        assert!(dense.extract(&[0, 3]).is_err());
        assert!(dense.extract(&[1, 0]).is_err());
        assert!(dense.extract(&[1, 1]).is_err());
        assert!(Weights::from(Matrix::zeros(2, 3)).extract(&[0]).is_err());
    }

    #[test]
    fn as_variants() {
        let dense = Weights::from(chain_dense());
        assert!(dense.as_dense().is_some());
        assert!(dense.as_sparse().is_none());
        let sparse = Weights::from(CsrMatrix::zeros(2, 2));
        assert!(sparse.as_dense().is_none());
        assert!(sparse.as_sparse().is_some());
    }
}
