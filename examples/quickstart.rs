//! Quickstart: label two points, let the graph label the rest.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use gssl::{Criterion, GsslModel};
use gssl_graph::{Bandwidth, Kernel};
use gssl_linalg::Matrix;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Eight points in two clusters; only the first point of each cluster
    // is labeled (labeled rows must come first).
    let points = Matrix::from_rows(&[
        &[0.0, 0.0],  // labeled: class 0
        &[5.0, 5.0],  // labeled: class 1
        &[0.2, 0.1],  // unlabeled, cluster A
        &[0.1, 0.3],  // unlabeled, cluster A
        &[-0.2, 0.2], // unlabeled, cluster A
        &[5.1, 4.8],  // unlabeled, cluster B
        &[4.9, 5.2],  // unlabeled, cluster B
        &[5.3, 5.1],  // unlabeled, cluster B
    ])?;
    let labels = [0.0, 1.0];

    let scores = GsslModel::builder()
        .kernel(Kernel::Gaussian)
        .bandwidth(Bandwidth::Fixed(1.5))
        .criterion(Criterion::Hard)
        .fit(&points, &labels)?;

    println!("hard-criterion scores (0 = cluster A, 1 = cluster B):");
    for (i, &score) in scores.unlabeled().iter().enumerate() {
        let class = if score >= 0.5 { "B" } else { "A" };
        println!("  point {}: score {score:.4} -> cluster {class}", i + 2);
    }

    let predictions = scores.unlabeled_predictions(0.5);
    assert_eq!(predictions, vec![false, false, false, true, true, true]);
    println!("\nall six unlabeled points recovered their cluster ✓");
    Ok(())
}
