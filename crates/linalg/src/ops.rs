//! The [`LinearOperator`] abstraction: anything that can apply `x ↦ A x`.
//!
//! Iterative solvers ([`crate::cg`], [`crate::iterative`]) are written
//! against this trait so they work identically with dense matrices, sparse
//! CSR matrices, and composed/shifted operators without materializing them.

use crate::matrix::Matrix;
use crate::sparse::CsrMatrix;
use crate::vector::dot_slices;

/// A square linear operator on `R^dim`.
///
/// Implementors must write `A x` into `out`; both slices have length
/// [`LinearOperator::dim`]. The trait is object-safe so solvers can accept
/// `&dyn LinearOperator`.
pub trait LinearOperator {
    /// Dimension of the (square) operator.
    fn dim(&self) -> usize;

    /// Computes `out = A x`.
    ///
    /// # Panics
    ///
    /// Implementations may panic when `x.len()` or `out.len()` differ from
    /// [`LinearOperator::dim`].
    fn apply(&self, x: &[f64], out: &mut [f64]);
}

impl LinearOperator for Matrix {
    fn dim(&self) -> usize {
        debug_assert!(self.is_square(), "LinearOperator requires a square matrix");
        self.rows()
    }

    fn apply(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols(), "operand length mismatch");
        assert_eq!(out.len(), self.rows(), "output length mismatch");
        for (i, o) in out.iter_mut().enumerate() {
            *o = dot_slices(self.row(i), x);
        }
    }
}

impl LinearOperator for CsrMatrix {
    fn dim(&self) -> usize {
        debug_assert_eq!(self.rows(), self.cols());
        self.rows()
    }

    fn apply(&self, x: &[f64], out: &mut [f64]) {
        self.matvec_into(x, out);
    }
}

/// The operator `A + shift·I`, applied lazily.
///
/// Used for the soft criterion's `V + λL` style systems without forming the
/// sum explicitly.
#[derive(Debug, Clone)]
pub struct ShiftedOperator<'a, A: ?Sized> {
    inner: &'a A,
    shift: f64,
}

impl<'a, A: LinearOperator + ?Sized> ShiftedOperator<'a, A> {
    /// Wraps `inner` as `inner + shift·I`.
    pub fn new(inner: &'a A, shift: f64) -> Self {
        ShiftedOperator { inner, shift }
    }
}

impl<A: LinearOperator + ?Sized> LinearOperator for ShiftedOperator<'_, A> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn apply(&self, x: &[f64], out: &mut [f64]) {
        self.inner.apply(x, out);
        for (o, xi) in out.iter_mut().zip(x) {
            *o += self.shift * xi;
        }
    }
}

/// A diagonal operator `x ↦ diag(d) x`.
#[derive(Debug, Clone)]
pub struct DiagonalOperator {
    diag: Vec<f64>,
}

impl DiagonalOperator {
    /// Creates the operator from its diagonal entries.
    pub fn new(diag: Vec<f64>) -> Self {
        DiagonalOperator { diag }
    }

    /// Borrows the diagonal entries.
    pub fn diag(&self) -> &[f64] {
        &self.diag
    }
}

impl LinearOperator for DiagonalOperator {
    fn dim(&self) -> usize {
        self.diag.len()
    }

    fn apply(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.diag.len(), "operand length mismatch");
        for ((o, xi), d) in out.iter_mut().zip(x).zip(&self.diag) {
            *o = d * xi;
        }
    }
}

/// The sum `A + c·B` of two operators, applied lazily.
#[derive(Debug, Clone)]
pub struct SumOperator<'a, A: ?Sized, B: ?Sized> {
    a: &'a A,
    b: &'a B,
    b_scale: f64,
}

impl<'a, A, B> SumOperator<'a, A, B>
where
    A: LinearOperator + ?Sized,
    B: LinearOperator + ?Sized,
{
    /// Wraps `a + b_scale·b`.
    ///
    /// # Panics
    ///
    /// Panics when the operand dimensions differ.
    pub fn new(a: &'a A, b: &'a B, b_scale: f64) -> Self {
        assert_eq!(a.dim(), b.dim(), "operator dimension mismatch");
        SumOperator { a, b, b_scale }
    }
}

impl<A, B> LinearOperator for SumOperator<'_, A, B>
where
    A: LinearOperator + ?Sized,
    B: LinearOperator + ?Sized,
{
    fn dim(&self) -> usize {
        self.a.dim()
    }

    fn apply(&self, x: &[f64], out: &mut [f64]) {
        self.a.apply(x, out);
        let mut tmp = vec![0.0; x.len()];
        self.b.apply(x, &mut tmp);
        for (o, t) in out.iter_mut().zip(&tmp) {
            *o += self.b_scale * t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    fn apply_to_vec(op: &dyn LinearOperator, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; op.dim()];
        op.apply(x, &mut out);
        out
    }

    #[test]
    fn matrix_as_operator_matches_matvec() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let out = apply_to_vec(&a, &[1.0, 1.0]);
        assert_eq!(out, vec![3.0, 7.0]);
    }

    #[test]
    fn shifted_operator_adds_identity_multiple() {
        let a = Matrix::zeros(2, 2);
        let shifted = ShiftedOperator::new(&a, 2.5);
        assert_eq!(shifted.dim(), 2);
        assert_eq!(apply_to_vec(&shifted, &[2.0, -4.0]), vec![5.0, -10.0]);
    }

    #[test]
    fn diagonal_operator_scales_componentwise() {
        let d = DiagonalOperator::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(d.diag(), &[1.0, 2.0, 3.0]);
        assert_eq!(apply_to_vec(&d, &[1.0, 1.0, 1.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn sum_operator_combines() {
        let a = Matrix::identity(2);
        let b = Matrix::filled(2, 2, 1.0);
        let sum = SumOperator::new(&a, &b, 0.5);
        // (I + 0.5*ones) [1, 1]ᵀ = [1 + 1, 1 + 1]
        assert_eq!(apply_to_vec(&sum, &[1.0, 1.0]), vec![2.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "operator dimension mismatch")]
    fn sum_operator_rejects_mismatched_dims() {
        let a = Matrix::identity(2);
        let b = Matrix::identity(3);
        let _ = SumOperator::new(&a, &b, 1.0);
    }

    #[test]
    fn operators_are_object_safe() {
        let a = Matrix::identity(2);
        let boxed: Box<dyn LinearOperator> = Box::new(a);
        assert_eq!(boxed.dim(), 2);
    }
}
