//! Regenerates every figure of the paper in one run and prints the
//! paper-style tables (Figures 1–4: RMSE; Figure 5: AUC).
//!
//! ```text
//! cargo run --release -p gssl-bench --bin all_figures -- --reps 30
//! ```

use gssl_bench::figures::{report_figure5, run_figure5, SyntheticFigure};
use gssl_bench::runner::CliArgs;

fn main() {
    let args = match CliArgs::parse(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    for figure in [
        SyntheticFigure::Fig1,
        SyntheticFigure::Fig2,
        SyntheticFigure::Fig3,
        SyntheticFigure::Fig4,
    ] {
        if let Err(error) = figure.run_and_report(&args) {
            eprintln!("figure {} failed: {error}", figure.number());
            std::process::exit(1);
        }
    }
    match run_figure5(&args) {
        Ok(points) => report_figure5(&points),
        Err(error) => {
            eprintln!("figure 5 failed: {error}");
            std::process::exit(1);
        }
    }
}
