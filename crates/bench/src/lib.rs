//! # gssl-bench
//!
//! Experiment harness reproducing every figure in the evaluation of Du,
//! Zhao & Wang (ICDCS 2019), plus solver-complexity and ablation
//! benchmarks.
//!
//! The library half hosts the experiment definitions ([`experiment`]), a
//! parallel Monte-Carlo [`runner`], and paper-style [`report`] formatting;
//! the binaries in `src/bin/` (one per figure, plus the toy example,
//! counterexample and theory diagnostics) wire them to the command line,
//! and `benches/` holds the Criterion timing targets.
//!
//! Run a figure with, e.g.:
//!
//! ```text
//! cargo run --release -p gssl-bench --bin fig1 -- --reps 50
//! cargo run --release -p gssl-bench --bin fig5 -- --full   # paper-scale
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod experiment;
pub mod figures;
pub mod report;
pub mod runner;
