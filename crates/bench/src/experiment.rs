//! Experiment definitions reproducing the paper's evaluation section.
//!
//! Each figure of the paper corresponds to one config type here; the
//! binaries in `src/bin/` wire them to the command line and the Criterion
//! benches reuse single repetitions as timed units.

use crate::runner::average_over_repetitions;
use gssl::{HardCriterion, Problem, SoftCriterion};
use gssl_datasets::coil::SyntheticCoil;
use gssl_datasets::synthetic::{paper_dataset, PaperModel, PAPER_DIM};
use gssl_graph::{affinity::affinity_from_distances, affinity::pairwise_squared_distances, Kernel};
use gssl_stats::roc::auc;
use gssl_stats::split::KFold;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The λ grid of the synthetic figures (Figures 1–4).
pub const SYNTHETIC_LAMBDAS: [f64; 4] = [0.0, 0.01, 0.1, 5.0];

/// The λ grid of the COIL figure (Figure 5).
pub const COIL_LAMBDAS: [f64; 7] = [0.0, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0];

/// The labeled-sample sizes of Figures 1 and 3.
pub const FIG1_N_VALUES: [usize; 10] = [10, 30, 50, 100, 200, 300, 500, 800, 1000, 1500];

/// The unlabeled-sample sizes of Figures 2 and 4.
pub const FIG2_M_VALUES: [usize; 6] = [30, 60, 100, 300, 500, 1000];

/// One measured point of a figure: a (λ, x) cell with its averaged metric.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesPoint {
    /// Tuning parameter (0 = hard criterion).
    pub lambda: f64,
    /// The swept quantity (n for Figures 1/3, m for Figures 2/4, the
    /// labeled fraction for Figure 5).
    pub x: f64,
    /// Mean of the metric over repetitions (RMSE or AUC).
    pub mean: f64,
    /// Standard error of that mean.
    pub std_error: f64,
    /// Number of repetitions that contributed.
    pub repetitions: usize,
}

/// Configuration of one synthetic experiment cell (fixed `n`, `m`, model).
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticConfig {
    /// Which logit model generates responses.
    pub model: PaperModel,
    /// Labeled sample size `n`.
    pub n_labeled: usize,
    /// Unlabeled sample size `m`.
    pub n_unlabeled: usize,
    /// λ grid; 0 runs the hard criterion.
    pub lambdas: Vec<f64>,
    /// Monte-Carlo repetitions (paper: 1000).
    pub repetitions: usize,
    /// Base RNG seed; repetition `r` uses `seed + r`.
    pub seed: u64,
}

impl SyntheticConfig {
    /// The paper's bandwidth for this cell: `σ = h_n = (log n / n)^{1/5}`.
    ///
    /// # Panics
    ///
    /// Panics when `n_labeled < 2` (the rate is undefined).
    pub fn bandwidth(&self) -> f64 {
        gssl_graph::bandwidth::paper_rate(self.n_labeled, PAPER_DIM)
            .expect("n_labeled >= 2 required for the paper rate")
    }

    /// Runs one repetition: returns the RMSE of each λ (aligned with
    /// `self.lambdas`).
    ///
    /// # Errors
    ///
    /// Propagates data-generation and solver errors as a boxed error for
    /// the runner to surface.
    pub fn run_once(&self, repetition: usize) -> Result<Vec<f64>, Box<dyn std::error::Error>> {
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(repetition as u64));
        let total = self.n_labeled + self.n_unlabeled;
        let dataset = paper_dataset(self.model, total, &mut rng)?;
        let ssl = dataset.arrange_prefix(self.n_labeled)?;
        let truth = ssl
            .hidden_truth
            .as_ref()
            .expect("paper datasets carry the true q(X)");

        // One affinity matrix per repetition, shared across the λ sweep.
        let h = self.bandwidth();
        let d2 = pairwise_squared_distances(&ssl.inputs)?;
        let w = affinity_from_distances(&d2, Kernel::Gaussian, h)?;
        let problem = Problem::new(w, ssl.labels.clone())?;

        let mut rmses = Vec::with_capacity(self.lambdas.len());
        for &lambda in &self.lambdas {
            let scores = if lambda == 0.0 {
                HardCriterion::new().fit(&problem)?
            } else {
                SoftCriterion::new(lambda)?.fit(&problem)?
            };
            rmses.push(gssl_stats::metrics::rmse(truth, scores.unlabeled())?);
        }
        Ok(rmses)
    }

    /// Runs all repetitions and aggregates one [`SeriesPoint`] per λ,
    /// with `x` set to `x_value`.
    ///
    /// # Errors
    ///
    /// Propagates the first repetition error encountered.
    pub fn run(&self, x_value: f64) -> Result<Vec<SeriesPoint>, Box<dyn std::error::Error>> {
        let per_rep = average_over_repetitions(self.repetitions, |r| self.run_once(r))?;
        Ok(aggregate(&self.lambdas, &per_rep, x_value))
    }
}

/// How the COIL data is split into labeled and unlabeled parts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabeledRatio {
    /// 80% labeled / 20% unlabeled: 5 folds, four labeled (paper setting 1).
    FourFifths,
    /// 20% labeled / 80% unlabeled: 5 folds, one labeled (paper setting 2).
    OneFifth,
    /// 10% labeled / 90% unlabeled: 10 folds, one labeled (paper setting 3).
    OneTenth,
}

impl LabeledRatio {
    /// Labeled fraction as a number (for plotting).
    pub fn fraction(self) -> f64 {
        match self {
            LabeledRatio::FourFifths => 0.8,
            LabeledRatio::OneFifth => 0.2,
            LabeledRatio::OneTenth => 0.1,
        }
    }

    /// Human-readable name matching the paper's legend.
    pub fn label(self) -> &'static str {
        match self {
            LabeledRatio::FourFifths => "labeled-to-unlabeled ratio 80/20",
            LabeledRatio::OneFifth => "labeled-to-unlabeled ratio 20/80",
            LabeledRatio::OneTenth => "labeled-to-unlabeled ratio 10/90",
        }
    }

    /// All three ratios of Figure 5.
    pub fn all() -> [LabeledRatio; 3] {
        [
            LabeledRatio::FourFifths,
            LabeledRatio::OneFifth,
            LabeledRatio::OneTenth,
        ]
    }

    fn fold_count(self) -> usize {
        match self {
            LabeledRatio::FourFifths | LabeledRatio::OneFifth => 5,
            LabeledRatio::OneTenth => 10,
        }
    }

    fn train_is_single_fold(self) -> bool {
        !matches!(self, LabeledRatio::FourFifths)
    }
}

/// Configuration of the COIL experiment (Figure 5).
#[derive(Debug, Clone, PartialEq)]
pub struct CoilConfig {
    /// Images kept per class (paper: 250 → 1500 total; scale down for
    /// quick runs).
    pub images_per_class: usize,
    /// λ grid.
    pub lambdas: Vec<f64>,
    /// How many times the split-rotate protocol is repeated (paper: 100).
    pub repetitions: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl CoilConfig {
    /// Runs one repetition at `ratio`: renders a library, splits it with
    /// the paper's fold protocol, and returns the mean AUC per λ over the
    /// folds of this repetition.
    ///
    /// # Errors
    ///
    /// Propagates rendering, split and solver errors.
    pub fn run_once(
        &self,
        ratio: LabeledRatio,
        repetition: usize,
    ) -> Result<Vec<f64>, Box<dyn std::error::Error>> {
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(repetition as u64));
        let coil = SyntheticCoil::builder()
            .images_per_class(self.images_per_class)
            .build(&mut rng)?;
        let dataset = coil.dataset();

        // The paper's kernel: Gaussian RBF with σ² the median pairwise
        // squared distance.
        let sigma = gssl_graph::bandwidth::median_heuristic(dataset.inputs())?;
        let d2 = pairwise_squared_distances(dataset.inputs())?;

        let kfold = KFold::new(ratio.fold_count())?;
        let splits = if ratio.train_is_single_fold() {
            kfold.inverted_splits(dataset.len(), &mut rng)?
        } else {
            kfold.splits(dataset.len(), &mut rng)?
        };

        let mut auc_sums = vec![0.0; self.lambdas.len()];
        for split in &splits {
            let ssl = dataset.arrange(&split.train)?;
            // Re-order the cached distance matrix to the arranged order.
            let order = &ssl.original_order;
            let total = order.len();
            let mut d2_arranged = gssl_linalg::Matrix::zeros(total, total);
            for (i, &oi) in order.iter().enumerate() {
                for (j, &oj) in order.iter().enumerate() {
                    d2_arranged.set(i, j, d2.get(oi, oj));
                }
            }
            let w = affinity_from_distances(&d2_arranged, Kernel::Gaussian, sigma)?;
            let problem = Problem::new(w, ssl.labels.clone())?;
            let truth = ssl.hidden_targets_binary();
            for (k, &lambda) in self.lambdas.iter().enumerate() {
                let scores = if lambda == 0.0 {
                    HardCriterion::new().fit(&problem)?
                } else {
                    SoftCriterion::new(lambda)?.fit(&problem)?
                };
                auc_sums[k] += auc(scores.unlabeled(), &truth)?;
            }
        }
        Ok(auc_sums
            .into_iter()
            .map(|s| s / splits.len() as f64)
            .collect())
    }

    /// Runs all repetitions at `ratio`, aggregating per-λ series points.
    ///
    /// # Errors
    ///
    /// Propagates the first repetition error encountered.
    pub fn run(&self, ratio: LabeledRatio) -> Result<Vec<SeriesPoint>, Box<dyn std::error::Error>> {
        let per_rep = average_over_repetitions(self.repetitions, |r| self.run_once(ratio, r))?;
        Ok(aggregate(&self.lambdas, &per_rep, ratio.fraction()))
    }
}

/// Aggregates per-repetition metric vectors (one entry per λ) into series
/// points with means and standard errors.
fn aggregate(lambdas: &[f64], per_rep: &[Vec<f64>], x_value: f64) -> Vec<SeriesPoint> {
    lambdas
        .iter()
        .enumerate()
        .map(|(k, &lambda)| {
            let values: Vec<f64> = per_rep.iter().map(|rep| rep[k]).collect();
            let mean = values.iter().sum::<f64>() / values.len() as f64;
            let std_error = if values.len() > 1 {
                let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>()
                    / (values.len() as f64 - 1.0);
                (var / values.len() as f64).sqrt()
            } else {
                0.0
            };
            SeriesPoint {
                lambda,
                x: x_value,
                mean,
                std_error,
                repetitions: values.len(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_synthetic(n: usize, m: usize) -> SyntheticConfig {
        SyntheticConfig {
            model: PaperModel::Linear,
            n_labeled: n,
            n_unlabeled: m,
            lambdas: vec![0.0, 0.1],
            repetitions: 3,
            seed: 7,
        }
    }

    #[test]
    fn synthetic_cell_produces_finite_rmses() {
        let config = tiny_synthetic(30, 10);
        let points = config.run(30.0).unwrap();
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.mean.is_finite() && p.mean > 0.0);
            assert!(p.std_error >= 0.0);
            assert_eq!(p.repetitions, 3);
            assert_eq!(p.x, 30.0);
        }
    }

    #[test]
    fn hard_beats_large_lambda_on_average() {
        // The paper's headline: RMSE grows with λ. Use λ = 5 for contrast
        // and a few more repetitions for stability.
        let config = SyntheticConfig {
            lambdas: vec![0.0, 5.0],
            repetitions: 8,
            ..tiny_synthetic(60, 15)
        };
        let points = config.run(60.0).unwrap();
        assert!(
            points[0].mean < points[1].mean,
            "hard ({}) should beat soft λ=5 ({})",
            points[0].mean,
            points[1].mean
        );
    }

    #[test]
    fn bandwidth_matches_paper_rate() {
        let config = tiny_synthetic(100, 30);
        let h = config.bandwidth();
        assert!((h - (100f64.ln() / 100.0).powf(0.2)).abs() < 1e-15);
    }

    #[test]
    fn repetitions_are_reproducible() {
        let config = tiny_synthetic(25, 8);
        let a = config.run_once(0).unwrap();
        let b = config.run_once(0).unwrap();
        assert_eq!(a, b);
        let c = config.run_once(1).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn coil_cell_produces_valid_aucs() {
        let config = CoilConfig {
            images_per_class: 8,
            lambdas: vec![0.0, 1.0],
            repetitions: 2,
            seed: 3,
        };
        let points = config.run(LabeledRatio::OneFifth).unwrap();
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!((0.0..=1.0).contains(&p.mean), "AUC {}", p.mean);
            assert_eq!(p.x, 0.2);
        }
    }

    #[test]
    fn ratio_metadata() {
        assert_eq!(LabeledRatio::FourFifths.fraction(), 0.8);
        assert_eq!(LabeledRatio::OneTenth.fold_count(), 10);
        assert!(LabeledRatio::OneFifth.train_is_single_fold());
        assert!(!LabeledRatio::FourFifths.train_is_single_fold());
        assert!(LabeledRatio::OneTenth.label().contains("10/90"));
    }
}
