//! The oracle property: every tree backend must return *exactly* the
//! brute-force neighbor set — same indices, bitwise-equal distances,
//! canonical `(dist2, index)` order — on seeded random point clouds
//! across low, medium and high dimension.
//!
//! Seeds are fixed, so a failure is exactly reproducible; clouds mix
//! continuous coordinates with snapped-to-grid ones so distance ties
//! (the hardest case for deterministic tie-breaking) actually occur.

use gssl_index::{
    k_nearest_batch, self_k_nearest_batch, self_within_radius_batch, BruteForce, CoverTree, KdTree,
    Neighbor, NeighborSearch, SpatialIndex,
};
use gssl_linalg::Matrix;
use gssl_runtime::Executor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 12;
const DIMS: [usize; 3] = [1, 2, 8];

/// Runs `body` once per (seed, dimension) pair.
fn for_cases(mut body: impl FnMut(&mut StdRng, usize)) {
    for &d in &DIMS {
        for seed in 0..CASES {
            let mut rng = StdRng::seed_from_u64(0x1D1CE5 + seed * 131 + d as u64);
            body(&mut rng, d);
        }
    }
}

/// A cloud with deliberate duplicate coordinates: half the points snap
/// to a coarse grid so equidistant neighbors (ties) are common.
fn tied_cloud(rng: &mut StdRng, n: usize, d: usize) -> Matrix {
    Matrix::from_fn(n, d, |i, _| {
        let x: f64 = rng.gen_range(-2.0..2.0);
        if i % 2 == 0 {
            (x * 2.0).round() / 2.0
        } else {
            x
        }
    })
}

fn assert_same(a: &[Neighbor], b: &[Neighbor], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: result lengths differ");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.index, y.index, "{what}: neighbor ids diverge");
        assert_eq!(
            x.dist2.to_bits(),
            y.dist2.to_bits(),
            "{what}: distances are not bitwise equal"
        );
    }
}

#[test]
fn kd_and_cover_knn_match_the_brute_force_oracle() {
    for_cases(|rng, d| {
        let n = rng.gen_range(20_i64..120) as usize;
        let pts = tied_cloud(rng, n, d);
        let brute = BruteForce::build(&pts).expect("brute build");
        let kd = KdTree::build(&pts).expect("kd build");
        let cover = CoverTree::build(&pts).expect("cover build");
        let k = rng.gen_range(1.0..(n.min(12) as f64)) as usize;
        for qi in 0..12 {
            let q: Vec<f64> = (0..d).map(|_| rng.gen_range(-2.2..2.2)).collect();
            let expect = brute.k_nearest(&q, k).expect("oracle query");
            assert_same(
                &kd.k_nearest(&q, k).expect("kd query"),
                &expect,
                &format!("kd d={d} q={qi}"),
            );
            assert_same(
                &cover.k_nearest(&q, k).expect("cover query"),
                &expect,
                &format!("cover d={d} q={qi}"),
            );
        }
    });
}

#[test]
fn self_excluding_knn_matches_the_oracle() {
    for_cases(|rng, d| {
        let n = rng.gen_range(20_i64..80) as usize;
        let pts = tied_cloud(rng, n, d);
        let brute = BruteForce::build(&pts).expect("brute build");
        let idx = SpatialIndex::build(&pts).expect("auto build");
        let k = rng.gen_range(1.0..(n.min(9) as f64)) as usize;
        for i in 0..n {
            let expect = brute
                .k_nearest_excluding(brute.point(i), k, Some(i))
                .expect("oracle self query");
            let got = idx
                .k_nearest_excluding(idx.point(i), k, Some(i))
                .expect("tree self query");
            assert!(
                got.iter().all(|nb| nb.index != i),
                "self id must be excluded"
            );
            assert_same(&got, &expect, &format!("self d={d} i={i}"));
        }
    });
}

#[test]
fn within_radius_matches_the_oracle() {
    for_cases(|rng, d| {
        let n = rng.gen_range(20_i64..100) as usize;
        let pts = tied_cloud(rng, n, d);
        let brute = BruteForce::build(&pts).expect("brute build");
        let kd = KdTree::build(&pts).expect("kd build");
        let cover = CoverTree::build(&pts).expect("cover build");
        for qi in 0..8 {
            let q: Vec<f64> = (0..d).map(|_| rng.gen_range(-2.2..2.2)).collect();
            let r = rng.gen_range(0.0..2.5);
            let expect = brute.within_radius(&q, r).expect("oracle range");
            assert_same(
                &kd.within_radius(&q, r).expect("kd range"),
                &expect,
                &format!("kd range d={d} q={qi}"),
            );
            assert_same(
                &cover.within_radius(&q, r).expect("cover range"),
                &expect,
                &format!("cover range d={d} q={qi}"),
            );
        }
    });
}

#[test]
fn inserted_points_keep_the_oracle_property() {
    for_cases(|rng, d| {
        let n = rng.gen_range(16_i64..48) as usize;
        let pts = tied_cloud(rng, n, d);
        let mut brute = BruteForce::build(&pts).expect("brute build");
        let mut kd = KdTree::build(&pts).expect("kd build");
        let mut cover = CoverTree::build(&pts).expect("cover build");
        for _ in 0..n {
            let p: Vec<f64> = (0..d).map(|_| rng.gen_range(-2.5..2.5)).collect();
            let id = brute.insert(&p).expect("brute insert");
            assert_eq!(kd.insert(&p).expect("kd insert"), id);
            assert_eq!(cover.insert(&p).expect("cover insert"), id);
        }
        let k = rng.gen_range(1.0..9.0) as usize;
        for qi in 0..6 {
            let q: Vec<f64> = (0..d).map(|_| rng.gen_range(-2.5..2.5)).collect();
            let expect = brute.k_nearest(&q, k).expect("oracle query");
            assert_same(
                &kd.k_nearest(&q, k).expect("kd query"),
                &expect,
                &format!("kd post-insert d={d} q={qi}"),
            );
            assert_same(
                &cover.k_nearest(&q, k).expect("cover query"),
                &expect,
                &format!("cover post-insert d={d} q={qi}"),
            );
        }
    });
}

#[test]
fn batched_queries_are_bit_identical_across_worker_counts() {
    for_cases(|rng, d| {
        let n = rng.gen_range(30_i64..90) as usize;
        let pts = tied_cloud(rng, n, d);
        let idx = SpatialIndex::build(&pts).expect("auto build");
        let queries = tied_cloud(rng, 25, d);
        let k = rng.gen_range(1.0..7.0) as usize;
        let r = rng.gen_range(0.2..1.5);
        let seq = Executor::Sequential;
        let knn_ref = k_nearest_batch(&idx, &queries, k, &seq).expect("seq batch");
        let self_ref = self_k_nearest_batch(&idx, k, &seq).expect("seq self batch");
        let range_ref = self_within_radius_batch(&idx, r, &seq).expect("seq range batch");
        for workers in [2, 4] {
            let ex = Executor::with_workers(workers);
            let knn = k_nearest_batch(&idx, &queries, k, &ex).expect("par batch");
            let selfs = self_k_nearest_batch(&idx, k, &ex).expect("par self batch");
            let ranges = self_within_radius_batch(&idx, r, &ex).expect("par range batch");
            for (a, b) in knn_ref.iter().zip(&knn) {
                assert_same(a, b, &format!("batch d={d} w={workers}"));
            }
            for (a, b) in self_ref.iter().zip(&selfs) {
                assert_same(a, b, &format!("self batch d={d} w={workers}"));
            }
            for (a, b) in range_ref.iter().zip(&ranges) {
                assert_same(a, b, &format!("range batch d={d} w={workers}"));
            }
        }
    });
}
